(* XCVerifier as continuous integration — the paper's Section VI-B vision.

   "Future work will ... aim to integrate our verification tool into LibXC,
   e.g., as part of the continuous integration (CI) for LibXC."

   What does a CI failure look like? A regression in a functional's
   implementation: a transcribed constant goes wrong, a correction term is
   applied twice, a sign flips. This example *injects* exactly such bugs
   into PBE and shows that the exact-condition verifier flips from verified
   to refuted — with a concrete counterexample a developer could paste into
   a bug report. It also shows the limits: a small parameter perturbation
   that happens to respect all exact conditions stays green (the conditions
   are necessary, not sufficient, for correctness).

   Run with:  dune exec examples/ci_mutation.exe *)

let config =
  {
    Verify.threshold = 0.3;
    solver =
      { Icp.default_config with fuel = 400; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 20.0;
    workers = 1;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let gate label (dfa : Registry.t) cond =
  match Verify.run_pair ~config dfa cond with
  | None -> ()
  | Some o ->
      let verdict = Outcome.classification_symbol (Outcome.classify o) in
      Format.printf "  %-16s %-4s: %-4s" label (Conditions.name cond) verdict;
      (match Outcome.first_counterexample o with
      | Some m ->
          Format.printf " counterexample:";
          List.iter (fun (v, x) -> Format.printf " %s=%.4g" v x) m
      | None -> ());
      Format.printf "@."

let () =
  let pbe = Registry.find "pbe" in

  print_endline "=== Gate 1: pristine PBE (expected: no X verdicts) ===";
  List.iter (gate "pbe" pbe) [ Conditions.Ec1; Conditions.Ec5 ];
  print_newline ();

  (* Mutant A: kappa transcribed as 2.004 instead of 0.804 (digit slip).
     kappa = 0.804 is precisely the value that keeps F_x <= 1.804 and hence
     F_xc within the Lieb-Oxford extension (EC5); with 2.004 the exchange
     enhancement tops 2.46 inside the domain and EC5 must be refuted. *)
  print_endline "=== Gate 2: mutant kappa = 2.004 (digit slip; breaks EC5) ===";
  let mutant_kappa =
    {
      pbe with
      Registry.name = "pbe-kappa2";
      label = "pbe-kappa2";
      eps_x =
        Some
          (Expr.mul Uniform.eps_x
             (Gga_pbe.f_x_with ~kappa:2.004 ~mu:Gga_pbe.mu));
      description = "mutant of pbe";
    }
  in
  List.iter (gate "pbe-kappa2" mutant_kappa) [ Conditions.Ec1; Conditions.Ec5 ];
  print_newline ();

  (* Mutant B: the gradient correction H applied twice (a classic
     double-counting bug). Since H -> -eps_c^PW92 at large reduced
     gradients, eps_c = PW92 + 2H tends to -eps_c^PW92 > 0 there: EC1 must
     be refuted at high s. *)
  print_endline "=== Gate 3: mutant with H applied twice (breaks EC1) ===";
  let mutant_2h =
    {
      pbe with
      Registry.name = "pbe-2h";
      label = "pbe-2h";
      eps_c =
        Some
          (Expr.add Lda_pw92.eps_c
             (Expr.mul Expr.two Gga_pbe.h_term));
      description = "mutant of pbe";
    }
  in
  List.iter (gate "pbe-2h" mutant_2h) [ Conditions.Ec1 ];
  print_newline ();

  (* Mutant C: a transcription bug in the PW92 substrate that PBE
     correlation is built on — alpha_1 = 0.2137 typed as 0.2237. The Mutate
     module rewrites the literal constant inside the hash-consed
     implementation DAG. No exact condition flips: the perturbed PW92 is
     still negative and monotone, so the verifier correctly keeps the build
     green even though the mutant is numerically wrong everywhere. *)
  print_endline "=== Gate 4: mutant PW92 alpha1 +0.01 (stays green: conditions";
  print_endline "    are necessary, not sufficient, for correctness) ===";
  let mutant_a1 =
    Mutate.mutant_of pbe ~name:"pbe-a1typo" ~mutate:(fun e ->
        let e', n =
          Mutate.tweak_constant ~from_const:0.2137 ~to_const:0.2237 e
        in
        if n > 0 then Format.printf "  (rewrote %d constant site(s))@." n;
        e')
  in
  (* the mutant really is a different function *)
  let delta_at_1 =
    Eval.eval
      [ (Dft_vars.rs_name, 1.0); (Dft_vars.s_name, 0.0) ]
      (Option.get mutant_a1.Registry.eps_c)
    -. Gga_pbe.eps_c_at ~rs:1.0 ~s:0.0
  in
  Format.printf "  (mutant shifts eps_c(1, 0) by %+.2e Ha)@." delta_at_1;
  List.iter (gate "pbe-a1typo" mutant_a1) [ Conditions.Ec1; Conditions.Ec5 ];
  print_newline ();

  print_endline
    "A CI hook would run the applicable conditions for each changed\n\
     functional and fail the build on any new X verdict, attaching the\n\
     certified counterexample from the Witness module."
