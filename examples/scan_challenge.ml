(* The SCAN challenge (paper Sections IV-B and VI-A).

   SCAN was designed to satisfy every known exact condition, yet the paper's
   verifier times out on *all* of them — even on the simple EC1 and even
   after shrinking the input domain 32x. The complexity comes from SCAN's
   piecewise switching function with an essential singularity at alpha = 1,
   nested exp/log, and three input dimensions.

   This example reproduces that phenomenon, then measures the paper's
   suggested way forward — the regularized rSCAN functional — and finds a
   nuance: rSCAN removes the essential singularity (good for float grids)
   but its switching polynomial *adds* operations, so for an interval
   solver it is no easier than SCAN at equal budgets.

   Run with:  dune exec examples/scan_challenge.exe *)

let budget = { Icp.default_config with fuel = 2000; delta = 1e-3 }

let solve_ec1 name domain =
  let dfa = Registry.find name in
  let problem = Option.get (Encoder.encode dfa Conditions.Ec1) in
  let verdict, stats = Icp.solve budget domain problem.Encoder.negated in
  (verdict, stats)

let describe = function
  | Icp.Unsat -> "UNSAT (condition verified)"
  | Icp.Sat { certified = true; _ } -> "SAT (counterexample)"
  | Icp.Sat { certified = false; _ } -> "delta-SAT (model to re-check)"
  | Icp.Timeout -> "TIMEOUT"

let shrink factor box =
  (* Reduce every dimension to 1/factor of its width (from the low end) —
     the paper's "input domain reduced 32x" experiment. *)
  List.fold_left
    (fun b v ->
      let iv = Box.get b v in
      let lo = Interval.inf iv in
      let w = Interval.width iv /. factor in
      Box.set b v (Interval.make lo (lo +. w)))
    box (Box.vars box)

let () =
  let scan = Registry.find "scan" in
  let full = Domain_spec.box_for scan in

  print_endline "=== SCAN: E_c non-positivity (EC1), single solver call ===";
  Format.printf "domain: %a@." Box.pp full;
  let v, stats = solve_ec1 "scan" full in
  Format.printf "full domain:        %s after %d expansions@." (describe v)
    stats.Icp.expansions;

  List.iter
    (fun factor ->
      let v, stats = solve_ec1 "scan" (shrink factor full) in
      Format.printf "domain reduced %3.0fx: %s after %d expansions@." factor
        (describe v) stats.Icp.expansions)
    [ 2.0; 8.0; 32.0 ];
  print_newline ();

  print_endline "=== Why: the encoded condition's complexity ===";
  List.iter
    (fun name ->
      let dfa = Registry.find name in
      let p = Option.get (Encoder.encode dfa Conditions.Ec1) in
      Format.printf "%-8s EC1 psi: %5d operations (%4d dag nodes), %d input dims@."
        dfa.Registry.label (Encoder.operation_count p)
        (Expr.size p.Encoder.psi.Form.expr)
        (Box.dim p.Encoder.domain))
    [ "vwn_rpa"; "pbe"; "lyp"; "am05"; "scan"; "rscan" ];
  print_newline ();

  print_endline "=== With Algorithm 1 (domain splitting), small budget ===";
  let config =
    {
      Verify.threshold = 0.7;
      solver = { Icp.default_config with fuel = 150; contractor_rounds = 2 };
      deadline_seconds = Some 25.0;
      workers = 1;
      use_taylor = false;
      use_tape = true;
      split_heuristic = `Widest;
      retry = Verify.no_retry;
      jit = false;
      jit_cache = None;
    }
  in
  List.iter
    (fun name ->
      let dfa = Registry.find name in
      match Verify.run_pair ~config dfa Conditions.Ec1 with
      | Some o -> Format.printf "%a@." Outcome.pp_summary o
      | None -> ())
    [ "scan"; "rscan" ];
  print_newline ();
  print_endline
    "Paper reference: SCAN times out for all seven conditions (Table I),\n\
     'even when the input domain is reduced 32x' (Sec. VI-A). The rSCAN\n\
     regularization replaces the essential singularity at alpha = 1 with a\n\
     degree-7 polynomial, which is exactly the kind of reformulation the\n\
     paper's discussion anticipates will help formal tools."
