(* Hunting the LYP violations (the paper's Figure 2 scenario).

   LYP is the one empirical functional in the paper's evaluation, and the
   only DFA for which XCVerifier finds counterexamples to *every* applicable
   exact condition. This example reproduces that result:

   - runs Algorithm 1 for each of LYP's five applicable conditions,
   - extracts a concrete counterexample point per condition,
   - re-checks each counterexample independently in float arithmetic,
   - compares the violation boundary against the PB grid baseline and the
     paper's reported numbers (e.g. EC1 violated for s > 1.6563).

   Run with:  dune exec examples/lyp_counterexamples.exe *)

let config =
  {
    Verify.threshold = 0.15625;
    solver =
      { Icp.default_config with fuel = 300; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 30.0;
    workers = 1;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let () =
  let lyp = Registry.find "lyp" in
  Format.printf "Functional: %a@.@." Registry.pp lyp;
  List.iter
    (fun cond ->
      let outcome = Option.get (Verify.run_pair ~config lyp cond) in
      Format.printf "== %s (Eq. %d) ==@." (Conditions.label cond)
        (Conditions.equation cond);
      Format.printf "%a@." Outcome.pp_summary outcome;
      (match Outcome.first_counterexample outcome with
      | Some model ->
          Format.printf "counterexample at:";
          List.iter (fun (v, x) -> Format.printf " %s = %.6g" v x) model;
          Format.printf "@.";
          (* independent recheck *)
          let atom = Option.get (Conditions.local_condition cond lyp) in
          Format.printf "float recheck: psi(%s) = %s@."
            (String.concat ", " (List.map fst model))
            (if Form.holds_at model atom then
               "HOLDS (not a real violation?)"
             else "violated, as claimed")
      | None -> Format.printf "no counterexample found@.");
      (* PB baseline comparison *)
      (match Pbcheck.check ~n:80 lyp cond with
      | Some pb ->
          Format.printf "PB baseline: %.2f%% of grid points violate%s@."
            (100.0 *. pb.Pbcheck.violation_fraction)
            (match Pbcheck.violation_boundary_s pb with
            | Some s -> Printf.sprintf " (first at s = %.4f)" s
            | None -> "")
      | None -> ());
      print_string (Render.outcome_map ~nx:40 ~ny:12 outcome);
      print_newline ())
    (Conditions.applicable lyp);
  print_endline
    "Paper reference (Table I): LYP = X for all five conditions, with the\n\
     EC1 violation region at s > 1.6563 (Fig. 2d) and the EC2 region at\n\
     rs < 2.5, s > 1.4844 (Fig. 2e)."
