(* Numerical issues in DFA implementations (paper Section VI-C).

   The discussion section singles out the Perdew-Zunger 1981 LDA
   parametrization: its two independently fitted pieces meet at rs = 1 with
   "potentially inaccurate numerical constants that lead to discontinuities
   of the exchange-correlation energy at a given matching point".

   This example quantifies that defect with the tools of this library:

   1. symbolic one-sided derivatives at the matching point,
   2. an interval enclosure of the jump (proving it is nonzero — a formal
      certificate that the implementation is not C^1),
   3. the effect on the exact-condition checks: EC2 needs dF_c/drs, and a
      derivative discontinuity shows up in the solver's behaviour on boxes
      straddling rs = 1.

   Run with:  dune exec examples/pz81_discontinuity.exe *)

let rs_n = Dft_vars.rs_name

let () =
  print_endline "=== PZ81 at the rs = 1 matching point ===";
  Format.printf "eps_c(1 - 1e-7) = %.10f@." (Lda_pz81.eps_c_at 0.9999999);
  Format.printf "eps_c(1 + 1e-7) = %.10f@." (Lda_pz81.eps_c_at 1.0000001);
  Format.printf "value jump      ~ %.3e Ha (nearly continuous)@."
    (Float.abs (Lda_pz81.eps_c_at 0.9999999 -. Lda_pz81.eps_c_at 1.0000001));
  Format.printf "derivative jump = %.6e Ha/bohr (NOT C^1)@.@."
    (Lda_pz81.derivative_jump_at_matching_point ());

  (* Interval certificate: enclose d eps/d rs on a shrinking box around 1
     from each side; the enclosures separate, proving the jump. *)
  print_endline "=== Interval certificate of the derivative jump ===";
  let d = Deriv.diff ~wrt:rs_n Lda_pz81.eps_c in
  let enclose lo hi = Ieval.eval [ (rs_n, Interval.make lo hi) ] d in
  let eps = 1e-6 in
  let left = enclose (1.0 -. eps) (1.0 -. (eps /. 2.0)) in
  let right = enclose (1.0 +. (eps /. 2.0)) (1.0 +. eps) in
  Format.printf "d/drs over [1-1e-6, 1-5e-7]: %a@." Interval.pp left;
  Format.printf "d/drs over [1+5e-7, 1+1e-6]: %a@." Interval.pp right;
  if Interval.sup right < Interval.inf left then
    Format.printf
      "certified: the one-sided derivatives are separated by >= %.3e@.@."
      (Interval.inf left -. Interval.sup right)
  else Format.printf "enclosures overlap at this radius@.@.";

  (* Contrast with PW92, which was *designed* to interpolate smoothly. *)
  print_endline "=== PW92 has no such seam ===";
  let d92 = Deriv.diff ~wrt:rs_n Lda_pw92.eps_c in
  let e92 lo hi = Ieval.eval [ (rs_n, Interval.make lo hi) ] d92 in
  let l92 = e92 (1.0 -. eps) (1.0 -. (eps /. 2.0)) in
  let r92 = e92 (1.0 +. (eps /. 2.0)) (1.0 +. eps) in
  Format.printf "PW92 d/drs left : %a@." Interval.pp l92;
  Format.printf "PW92 d/drs right: %a@." Interval.pp r92;
  Format.printf "overlap: %b (smooth)@.@."
    (not (Interval.is_empty (Interval.meet l92 r92)));

  (* Condition checks still pass for PZ81 despite the seam. *)
  print_endline "=== Exact conditions for PZ81 ===";
  let pz = Registry.find "pz81" in
  let config =
    {
      Verify.threshold = 0.15625;
      solver = { Icp.default_config with fuel = 500; contractor_rounds = 3 };
      deadline_seconds = Some 10.0;
      workers = 1;
      use_taylor = false;
      use_tape = true;
      split_heuristic = `Widest;
      retry = Verify.no_retry;
      jit = false;
      jit_cache = None;
    }
  in
  List.iter
    (fun cond ->
      match Verify.run_pair ~config pz cond with
      | Some o -> Format.printf "%a@." Outcome.pp_summary o
      | None -> ())
    (Conditions.applicable pz)
