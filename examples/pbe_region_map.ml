(* PBE region maps — the paper's Figure 1 scenario.

   PBE is a non-empirical GGA and mostly satisfies the exact conditions it
   was constructed around, with one famous exception: the conjectured T_c
   upper bound (EC7), violated over a large upper-left region of the
   (rs, s) plane (Figure 1f). This example renders the PB-vs-XCVerifier
   figure for every applicable PBE condition.

   Run with:  dune exec examples/pbe_region_map.exe
   (set XCV_FAST=1 to use a coarser, faster configuration) *)

let fast = Sys.getenv_opt "XCV_FAST" <> None

let config =
  if fast then Verify.quick_config
  else
    {
      Verify.threshold = 0.15625;
      solver =
        {
          Icp.default_config with
          fuel = 800;
          delta = 1e-3;
          contractor_rounds = 3;
        };
      deadline_seconds = Some 45.0;
      workers = 1;
      use_taylor = false;
      use_tape = true;
      split_heuristic = `Widest;
      retry = Verify.no_retry;
      jit = false;
      jit_cache = None;
    }

let () =
  let pbe = Registry.find "pbe" in
  Format.printf "Functional: %a@.@." Registry.pp pbe;
  List.iter
    (fun cond ->
      let outcome = Option.get (Verify.run_pair ~config pbe cond) in
      let pb = Pbcheck.check ~n:80 pbe cond in
      let title =
        Printf.sprintf "PBE / %s (Eq. %d)" (Conditions.label cond)
          (Conditions.equation cond)
      in
      print_string (Render.figure ~title ~pb outcome);
      (match pb with
      | Some pb ->
          let c, overlap = Report.consistency_of outcome pb in
          Format.printf "consistency with PB: %s (overlap %.0f%%)@.@."
            (Report.consistency_symbol c)
            (100.0 *. overlap)
      | None -> ());
      print_newline ())
    (Conditions.applicable pbe);
  print_endline
    "Paper reference (Table I, PBE column): EC1 OK*, EC2 OK*, EC3 ?,\n\
     EC6 OK*, EC7 X (large upper-left counterexample region), LO OK*,\n\
     LO-extension OK."
