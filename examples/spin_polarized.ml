(* Spin-polarized verification — extension beyond the paper's zeta = 0 slice.

   LibXC functionals are spin-resolved; the paper (following Pederson &
   Burke) verifies the spin-unpolarized slice. This example uses the full
   spin machinery of the [Spin] module to check the correlation
   non-positivity condition EC1 for the spin-resolved PBE over the
   three-dimensional (rs, s, zeta) domain, and the exchange non-positivity
   over the same space — demonstrating that Algorithm 1 is agnostic to
   where the condition comes from (via Verify.run_custom).

   Run with:  dune exec examples/spin_polarized.exe *)

let rs_n = Dft_vars.rs_name
let s_n = Dft_vars.s_name

let () =
  print_endline "=== Spin-resolved PBE: reduction checks ===";
  List.iter
    (fun (rs, s) ->
      Printf.printf
        "  eps_c(rs=%g, s=%g): zeta=0 %+0.6f (unpolarized %+0.6f) | \
         zeta=0.7 %+0.6f | zeta=1 %+0.6f\n"
        rs s
        (Spin.eval3 ~rs ~s ~zeta:0.0 Spin.eps_c_pbe_spin)
        (Gga_pbe.eps_c_at ~rs ~s)
        (Spin.eval3 ~rs ~s ~zeta:0.7 Spin.eps_c_pbe_spin)
        (Spin.eval3 ~rs ~s ~zeta:0.9999 Spin.eps_c_pbe_spin))
    [ (0.5, 0.5); (1.0, 1.0); (3.0, 2.0) ];
  print_newline ();

  let nonneg_vars = [ rs_n; s_n; Spin.zeta_name ] in
  let domain =
    Box.make
      [
        (rs_n, Interval.make 0.0001 5.0);
        (s_n, Interval.make 0.0 5.0);
        (* zeta in [0, 0.95]: the zeta -> 1 edge needs ferromagnetic-limit
           care (log of vanishing channel densities) and is excluded as in
           standard practice *)
        (Spin.zeta_name, Interval.make 0.0 0.95);
      ]
  in
  let config =
    {
      Verify.threshold = 0.4;
      solver =
        { Icp.default_config with fuel = 400; delta = 1e-3; contractor_rounds = 2 };
      deadline_seconds = Some 60.0;
      workers = 1;
      use_taylor = false;
      use_tape = true;
      split_heuristic = `Widest;
      retry = Verify.no_retry;
      jit = false;
      jit_cache = None;
    }
  in

  print_endline "=== EC1 (eps_c <= 0) for spin-resolved PBE over (rs, s, zeta) ===";
  let f_c = Enhancement.f_of Spin.eps_c_pbe_spin in
  let psi = Form.ge (Simplify.with_nonneg nonneg_vars f_c) in
  let outcome =
    Verify.run_custom ~config ~dfa_label:"PBE(zeta)" ~condition_label:"ec1"
      ~domain ~psi ()
  in
  Format.printf "%a@." Outcome.pp_summary outcome;
  print_string (Render.outcome_map ~nx:40 ~ny:12 outcome);
  print_newline ();

  print_endline "=== Exchange non-positivity (eps_x <= 0 <=> F_x >= 0) ===";
  let f_x_spin =
    Simplify.with_nonneg nonneg_vars
      (Expr.div Spin.eps_x_pbe_spin Uniform.eps_x)
  in
  let outcome_x =
    Verify.run_custom ~config ~dfa_label:"PBE(zeta)" ~condition_label:"x-nonpos"
      ~domain ~psi:(Form.ge f_x_spin) ()
  in
  Format.printf "%a@." Outcome.pp_summary outcome_x;
  print_newline ();
  print_endline
    "Spin scaling and the PW92 three-channel interpolation are validated\n\
     against their unpolarized limits in the test suite (test_spin.ml)."
