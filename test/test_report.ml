open Testutil

let fast_config =
  {
    Verify.threshold = 0.7;
    solver =
      { Icp.default_config with fuel = 300; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 15.0;
    workers = 1;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let outcome dfa cond =
  Option.get (Xcverifier.verify ~config:fast_config ~dfa ~condition:cond ())

let pb dfa cond =
  Option.get (Pbcheck.check ~n:40 (Registry.find dfa) (Conditions.of_name cond))

let test_consistent_refutation () =
  (* LYP EC1: both methods find violations in the same region. *)
  let o = outcome "lyp" "ec1" and p = pb "lyp" "ec1" in
  let c, overlap = Report.consistency_of o p in
  check_true "consistent" (c = Report.Consistent);
  check_true
    (Printf.sprintf "PB violations inside flagged regions (%.2f)" overlap)
    (overlap > 0.9)

let test_not_inconsistent () =
  (* VWN EC1: verifier proves it, PB sees no violations. *)
  let o = outcome "vwn_rpa" "ec1" and p = pb "vwn_rpa" "ec1" in
  let c, _ = Report.consistency_of o p in
  check_true "not inconsistent" (c = Report.Not_inconsistent)

let test_undecidable () =
  let o =
    let base = outcome "pbe" "ec2" in
    (* Fabricate an all-timeout outcome to exercise the ? symbol. *)
    {
      base with
      Outcome.regions =
        [
          {
            Outcome.box = base.Outcome.domain;
            status = Outcome.Timeout;
            depth = 0;
          };
        ];
    }
  in
  let p = pb "pbe" "ec2" in
  let c, _ = Report.consistency_of o p in
  check_true "undecidable" (c = Report.Undecidable)

let test_table1_layout () =
  let outcomes = [ outcome "lyp" "ec1"; outcome "vwn_rpa" "ec1" ] in
  let t = Report.table1 outcomes in
  check_true "has header" (String.length t > 200);
  (* LYP column carries an X on the EC1 row; missing pairs are dashes *)
  let lines = String.split_on_char '\n' t in
  let ec1_row =
    List.find
      (fun l ->
        String.length l > 10 && String.sub l 0 10 = "E_c non-po")
      lines
  in
  check_true "X in EC1 row" (String.contains ec1_row 'X');
  let ec3_row =
    List.find
      (fun l -> String.length l > 10 && String.sub l 0 6 = "U_c mo")
      lines
  in
  check_true "dashes for unrun pairs" (String.contains ec3_row '-')

let test_table2_layout () =
  let outcomes = [ outcome "lyp" "ec1" ] in
  let pbs = [ pb "lyp" "ec1" ] in
  let t = Report.table2 outcomes pbs in
  check_true "has content" (String.length t > 200);
  check_true "contains consistency symbol" (String.contains t 'C')

let test_paper_reference_table () =
  (* the reference data encodes all 29 applicable pairs + 6 dashes *)
  Alcotest.(check int) "35 cells" 35 (List.length Report.paper_table1);
  let dashes =
    List.length (List.filter (fun (_, c) -> c = "-") Report.paper_table1)
  in
  Alcotest.(check int) "6 not-applicable" 6 dashes;
  (* the paper's headline numbers: 13 decided, 7 partial, 9 timeouts *)
  let count sym =
    List.length (List.filter (fun (_, c) -> c = sym) Report.paper_table1)
  in
  Alcotest.(check int) "9 timeouts" 9 (count "?");
  Alcotest.(check int) "7 partials" 7 (count "OK*");
  Alcotest.(check int) "13 decided" 13 (count "OK" + count "X")

let test_symbols () =
  Alcotest.(check string) "consistent" "C"
    (Report.consistency_symbol Report.Consistent);
  Alcotest.(check string) "not inconsistent" "C*"
    (Report.consistency_symbol Report.Not_inconsistent);
  Alcotest.(check string) "undecidable" "?"
    (Report.consistency_symbol Report.Undecidable);
  Alcotest.(check string) "inconsistent" "!"
    (Report.consistency_symbol Report.Inconsistent)

let test_pb_map_render () =
  let p = pb "lyp" "ec1" in
  let map = Render.pb_map ~nx:24 ~ny:8 p in
  check_true "violations rendered" (String.contains map '#');
  check_true "passes rendered" (String.contains map '.')

let test_figure_layout () =
  let o = outcome "lyp" "ec1" and p = pb "lyp" "ec1" in
  let fig = Render.figure ~title:"LYP / ec1" ~pb:(Some p) o in
  check_true "mentions PB section"
    (String.length fig > 0
    && contains_sub fig "PB grid search");
  check_true "mentions verifier section"
    (contains_sub fig "XCVerifier")

let suite =
  [
    case "consistent refutation (LYP)" test_consistent_refutation;
    case "not-inconsistent (VWN)" test_not_inconsistent;
    case "undecidable symbol" test_undecidable;
    case "Table I layout" test_table1_layout;
    case "Table II layout" test_table2_layout;
    case "paper reference cells" test_paper_reference_table;
    case "consistency symbols" test_symbols;
    case "PB map rendering" test_pb_map_render;
    case "figure layout" test_figure_layout;
  ]
