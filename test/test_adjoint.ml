(* Reverse-mode adjoint sweep over the interval tape, and the two consumers
   built on it: the tape-native mean-value contractor and smear-guided
   splitting.

   Soundness oracles, from cheapest to deepest:
   - forward-mode dual numbers ([Dual.eval]) give the true pointwise
     derivative at box midpoints; every adjoint partial must enclose it;
   - the symbolic gradient ([Deriv.diff] + [Ieval.eval]) gives an
     independent interval enclosure; on point boxes the two must agree to
     rounding;
   - the mean-value contractor must never lose a certified satisfying
     point, and must handle gradients that straddle zero (the relational
     division regression);
   - smear splitting may change the exploration order but never the verdict
     class, and keeps paint logs byte-identical at every worker count. *)

open Testutil
open Expr

let x = var "x"
let y = var "y"
let iv = Interval.make
let box2 (xl, xh) (yl, yh) = Box.make [ ("x", iv xl xh); ("y", iv yl yh) ]

(* rel 1e-9 + abs 1e-9 slack: the oracles compute in float arithmetic with
   different operation orders, so exact containment at the bounds is not a
   meaningful ask. *)
let widen i =
  let pad v = if Float.is_finite v then (1e-9 *. Float.abs v) +. 1e-9 else 0.0 in
  let lo = Interval.inf i and hi = Interval.sup i in
  iv (lo -. pad lo) (hi +. pad hi)

let gradient_of e b = Itape.eval_gradient (Itape.compile ~vars:[ "x"; "y" ] (Form.le e)) b

let symbolic_partial e v b =
  Ieval.eval (Box.to_env b) (Simplify.simplify (Deriv.diff ~wrt:v e))

(* ------------------------------------------------------------------ *)
(* Adjoint partials vs the forward-mode and symbolic oracles *)

let prop_adjoint_contains_dual =
  qcheck ~count:500 "adjoint partials enclose dual-number derivatives"
    QCheck2.Gen.(
      tup4 expr_gen (float_range 0.0 1.0) (float_range 0.0 1.0)
        (float_range 0.0 0.5))
    (fun (e, lx, ly, w) ->
      let b = box2 (lx, lx +. w) (ly, ly +. w) in
      let g = gradient_of e b in
      let mid = Box.midpoint b in
      List.for_all
        (fun (i, v) ->
          let p = g.Itape.partials.(i) in
          let d = (Dual.eval mid ~wrt:v e).Dual.d in
          if not (Float.is_finite d) then true
          else if Interval.is_empty p then
            (* an empty partial only ever means the forward value itself
               left the domain somewhere in the chain *)
            true
          else
            Interval.mem d (widen p)
            &&
            (* same claim against the independent symbolic enclosure *)
            let ds = symbolic_partial e v b in
            Interval.is_empty ds || Interval.mem d (widen ds))
        [ (0, "x"); (1, "y") ])

let prop_adjoint_matches_symbolic_at_point =
  qcheck ~count:300 "adjoint agrees with symbolic gradient on point boxes"
    QCheck2.Gen.(tup3 expr_gen (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (e, px, py) ->
      let b = box2 (px, px) (py, py) in
      let g = gradient_of e b in
      List.for_all
        (fun (i, v) ->
          let p = g.Itape.partials.(i) in
          let ds = symbolic_partial e v b in
          let unbounded j =
            (not (Float.is_finite (Interval.inf j)))
            || not (Float.is_finite (Interval.sup j))
          in
          if Interval.is_empty p || Interval.is_empty ds then true
          else if unbounded p || unbounded ds then true
          else Interval.subset p (widen ds) && Interval.subset ds (widen p))
        [ (0, "x"); (1, "y") ])

(* ------------------------------------------------------------------ *)
(* The mean-value contractor on the tape *)

let test_mvf_newton_step () =
  (* 2x - 1 <= 0 on [0.4, 0.6]: the linear solve cuts at x = 0.5 *)
  let prog = Itape.compile ~vars:[ "x" ] (Form.le (sub (mul two x) one)) in
  match Itape.contract_mvf prog (Box.make [ ("x", iv 0.4 0.6) ]) with
  | Itape.Infeasible -> Alcotest.fail "feasible"
  | Itape.Contracted b ->
      let xi = Box.get b "x" in
      check_true "upper bound near 0.5"
        (Interval.sup xi <= 0.5001 && Interval.sup xi >= 0.4999);
      check_close "lower bound kept" 0.4 (Interval.inf xi)

let test_mvf_infeasible () =
  (* x - x^2 + 1 in [1, 1.25] on [0.4, 0.6]: <= 0 is impossible *)
  let prog =
    Itape.compile ~vars:[ "x" ] (Form.le (add (sub x (sqr x)) one))
  in
  match Itape.contract_mvf prog (Box.make [ ("x", iv 0.4 0.6) ]) with
  | Itape.Infeasible -> ()
  | Itape.Contracted _ -> Alcotest.fail "should prove infeasible"

let test_straddling_gradient_contracts () =
  (* x^2 - 0.5 <= 0. On [0, 2] the gradient enclosure of 2x straddles zero
     (outward rounding pushes the lower bound just below 0), so relational
     division yields top: the dimension must survive as a sound no-op — the
     old mem-zero skip crashed through the same path by silently ignoring
     the dimension, and the point of div_rel is that both the no-op and the
     infeasibility sub-cases now fall out of one sound formula. Tree walk
     and tape must agree exactly. On [0.25, 2] the gradient is strictly
     positive and the same solve makes a genuine cut (true bound is
     sqrt(0.5) ~ 0.7071). *)
  let f = sub (sqr x) (const 0.5) in
  let tree b = Taylor.contract (Taylor.prepare ~vars:[ "x" ] (Form.le f)) b in
  let tape b =
    match Itape.contract_mvf (Itape.compile ~vars:[ "x" ] (Form.le f)) b with
    | Itape.Infeasible -> Hc4.Infeasible
    | Itape.Contracted b' -> Hc4.Contracted b'
  in
  let straddle = Box.make [ ("x", iv 0.0 2.0) ] in
  (match (tree straddle, tape straddle) with
  | Hc4.Contracted bt, Hc4.Contracted bv ->
      check_true "straddle: keeps sqrt(0.5)"
        (Interval.mem (Float.sqrt 0.5) (Box.get bt "x"));
      check_true "straddle: keeps 0" (Interval.mem 0.0 (Box.get bt "x"));
      check_true "straddle: tree and tape agree" (Box.equal bt bv)
  | _ -> Alcotest.fail "straddle: must stay feasible");
  let offset = Box.make [ ("x", iv 0.25 2.0) ] in
  let check_cut label = function
    | Hc4.Infeasible -> Alcotest.failf "%s: feasible" label
    | Hc4.Contracted b ->
        let xi = Box.get b "x" in
        check_true (label ^ ": cut below 0.95") (Interval.sup xi <= 0.95);
        check_true (label ^ ": keeps sqrt(0.5)")
          (Interval.mem (Float.sqrt 0.5) xi)
  in
  check_cut "tree walk" (tree offset);
  check_cut "tape" (tape offset)

let prop_mvf_soundness =
  qcheck "contract_mvf never loses certified solutions"
    QCheck2.Gen.(tup3 expr_gen (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (e, px, py) ->
      let atom = Form.le e in
      let prog = Itape.compile ~vars:[ "x"; "y" ] atom in
      let unit_box = box2 (0.0, 1.0) (0.0, 1.0) in
      let point = [ ("x", px); ("y", py) ] in
      let env = List.map (fun (v, q) -> (v, Interval.point q)) point in
      let i = Ieval.eval env e in
      if (not (Interval.is_empty i)) && Interval.certainly_lt i 0.0 then
        match Itape.contract_mvf prog unit_box with
        | Itape.Infeasible -> false
        | Itape.Contracted b -> Box.mem point b
      else true)

(* ------------------------------------------------------------------ *)
(* Smear splitting primitives *)

let test_smear_dim_follows_gradient () =
  (* equal widths, so widest_dim cannot discriminate: the smear scores
     must route the split to the steep dimension, whichever it is *)
  let b = box2 (0.0, 1.0) (0.0, 1.0) in
  let scores_for e =
    let g = gradient_of e b in
    Array.mapi
      (fun i p -> Interval.mag p *. Interval.width (Box.get_idx b i))
      g.Itape.partials
  in
  let steep_x = scores_for (add (mul (const 10.0) x) y) in
  Alcotest.(check int) "steep x picks dim 0" 0 (Box.smear_dim b ~scores:steep_x);
  let steep_y = scores_for (add x (mul (const 10.0) y)) in
  Alcotest.(check int) "steep y picks dim 1" 1 (Box.smear_dim b ~scores:steep_y)

let test_smear_dim_fallback () =
  let b = box2 (0.0, 1.0) (0.0, 2.0) in
  Alcotest.(check int) "all-zero scores fall back to widest"
    (Box.widest_dim b)
    (Box.smear_dim b ~scores:[| 0.0; 0.0 |]);
  Alcotest.(check int) "NaN scores fall back to widest" (Box.widest_dim b)
    (Box.smear_dim b ~scores:[| Float.nan; Float.nan |])

let test_midpoint_box () =
  let b = box2 (0.0, 1.0) (2.0, 4.0) in
  let m = Box.midpoint_box b in
  check_close "x midpoint" 0.5 (Interval.inf (Box.get m "x"));
  check_close "x is a point" 0.5 (Interval.sup (Box.get m "x"));
  check_close "y midpoint" 3.0 (Interval.inf (Box.get m "y"));
  Alcotest.(check (list string)) "same variable order" (Box.vars b)
    (Box.vars m)

(* ------------------------------------------------------------------ *)
(* Smear vs widest on real pairs: same verdict class, deterministic logs *)

let pair_config ~split_heuristic ~workers =
  {
    Verify.threshold = 0.4;
    solver =
      {
        Icp.default_config with
        fuel = 200;
        delta = 1e-2;
        contractor_rounds = 2;
      };
    deadline_seconds = None;
    workers;
    use_taylor = true;
    use_tape = true;
    split_heuristic;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let test_verdict_class_equivalence () =
  List.iter
    (fun (dfa, cond) ->
      let classify split_heuristic =
        match
          Verify.run_pair
            ~config:(pair_config ~split_heuristic ~workers:test_workers)
            (Registry.find dfa) cond
        with
        | Some o -> Outcome.classify o
        | None -> Alcotest.failf "%s must be applicable" dfa
      in
      let w = classify `Widest and s = classify `Smear in
      check_true
        (Printf.sprintf "%s/%s: smear and widest agree on the class (%s vs %s)"
           dfa (Conditions.name cond)
           (Outcome.classification_symbol w)
           (Outcome.classification_symbol s))
        (w = s))
    [
      ("pbe", Conditions.Ec1);
      ("pbe", Conditions.Ec7);
      ("lyp", Conditions.Ec1);
    ]

let normalized o =
  Serialize.to_string { o with Outcome.stats = Outcome.zero_stats }

let test_smear_paint_log_determinism () =
  let run workers =
    match
      Verify.run_pair
        ~config:(pair_config ~split_heuristic:`Smear ~workers)
        (Registry.find "pbe") Conditions.Ec1
    with
    | Some o -> normalized o
    | None -> Alcotest.fail "PBE/EC1 must be applicable"
  in
  let reference = run 1 in
  Alcotest.(check string) "smear paint log byte-identical (workers=4)"
    reference (run 4)

let suite =
  [
    prop_adjoint_contains_dual;
    prop_adjoint_matches_symbolic_at_point;
    case "mvf newton-like contraction" test_mvf_newton_step;
    case "mvf proves infeasibility" test_mvf_infeasible;
    case "straddling gradient still contracts" test_straddling_gradient_contracts;
    prop_mvf_soundness;
    case "smear_dim follows the gradient" test_smear_dim_follows_gradient;
    case "smear_dim fallback to widest" test_smear_dim_fallback;
    case "midpoint_box" test_midpoint_box;
    case "smear vs widest verdict classes" test_verdict_class_equivalence;
    case "smear paint log determinism" test_smear_paint_log_determinism;
  ]
