(* Differential oracle for the certified transcendental kernels.

   Three properties, per the DLMF-vs-CAS comparative-verification model:

   - containment: independently computed reference values (libm point
     evaluations, correctly rounded sqrt/cbrt compositions, more-accurate
     alternative formulas) lie inside the new enclosures;
   - never wider: for exp / log / sin / cos / lambert_w the certified-mode
     result is a subset of the Legacy result (guaranteed by construction —
     the dispatch meets both — but pinned here against regressions);
   - boundary tables at domain edges, the Lambert branch point, the old
     2^20 trig cutoff, and +-pi/2.

   atanh, w_inverse and (non-integer) pow_rat are deliberately *excluded*
   from the subset property: the old enclosures under-covered their
   rounding budget (blanket two-ulp widening over 3+ roundings; silently
   dropped exponent rounding), so the repaired versions may be slightly
   wider. They get reference-containment plus bounded-width checks
   instead, with the failing-before cases near the domain edges. *)

open Testutil

let iv = Interval.make
let point = Interval.point

(* Reference membership with a few ulps of tolerance for the reference's
   own rounding (the enclosure itself needs no tolerance). *)
let mem_approx ?(ulps = 4) v i =
  if Float.is_nan v then true
  else begin
    let lo = ref v and hi = ref v in
    for _ = 1 to ulps do
      lo := Float.pred !lo;
      hi := Float.succ !hi
    done;
    (not (Interval.is_empty i))
    && Interval.inf i <= !hi
    && Interval.sup i >= !lo
  end

let subset_of_legacy name f legacy_f gen =
  qcheck name gen (fun (lo, w, _frac) ->
      let i = iv lo (lo +. w) in
      Interval.subset (f i) (legacy_f i))

let containment name f reference gen =
  qcheck name gen (fun (lo, w, frac) ->
      let hi = lo +. w in
      let x = lo +. (frac *. w) in
      let i = f (iv lo hi) in
      let v = reference x in
      Float.is_nan v || Interval.is_empty i || Interval.mem v i
      || (* reference may round outside a sub-ulp enclosure *)
      mem_approx ~ulps:2 v i)

let small_gen =
  QCheck2.Gen.(
    tup3 (float_range (-50.0) 50.0) (float_range 0.0 20.0)
      (float_range 0.0 1.0))

let large_gen =
  QCheck2.Gen.(
    tup3
      (float_range (-1e15) 1e15)
      (float_range 0.0 10.0) (float_range 0.0 1.0))

let huge_gen =
  QCheck2.Gen.(
    tup3
      (float_range (-4.4e15) 4.4e15)
      (float_range 0.0 3.0) (float_range 0.0 1.0))

(* ------------------------------------------------------------------ *)
(* exp / log tightness: the kernels must actually engage               *)
(* ------------------------------------------------------------------ *)

let test_exp_kernel_tighter () =
  List.iter
    (fun x ->
      let fresh = Transcend.exp (point x)
      and old = Transcend.Legacy.exp (point x) in
      check_true
        (Printf.sprintf "exp kernel subset at %g" x)
        (Interval.subset fresh old);
      check_true
        (Printf.sprintf "exp kernel strictly tighter at %g" x)
        (Interval.width fresh < Interval.width old);
      check_true
        (Printf.sprintf "exp reference inside at %g" x)
        (mem_approx ~ulps:1 (Stdlib.exp x) fresh))
    [ 0.0; 1.0; -1.0; 0.5; -37.2; 12.75; 300.0; -300.0; 708.0; -650.0 ]

let test_log_kernel_tighter () =
  List.iter
    (fun x ->
      let fresh = Transcend.log (point x)
      and old = Transcend.Legacy.log (point x) in
      check_true
        (Printf.sprintf "log kernel subset at %g" x)
        (Interval.subset fresh old);
      check_true
        (Printf.sprintf "log kernel strictly tighter at %g" x)
        (Interval.width fresh < Interval.width old);
      check_true
        (Printf.sprintf "log reference inside at %g" x)
        (mem_approx ~ulps:1 (Stdlib.log x) fresh))
    [ 0.5; 2.0; 4.0; 1e-8; 1e12; 0.9999999; 1.0000001; 1e300; 1e-300 ]

let test_exp_boundaries () =
  (* x = 0: enclosure of 1 at sub-ulp width *)
  let one = Transcend.exp (point 0.0) in
  check_true "exp 0 contains 1" (Interval.mem 1.0 one);
  check_true "exp 0 tight" (Interval.width one <= 8.0 *. Float.succ 1.0 -. 8.0);
  (* overflow / underflow edges stay sound and ordered *)
  List.iter
    (fun x ->
      let i = Transcend.exp (point x) in
      check_true
        (Printf.sprintf "exp %g nonneg" x)
        (Interval.inf i >= 0.0);
      check_true
        (Printf.sprintf "exp %g contains libm" x)
        (mem_approx (Stdlib.exp x) i))
    [ 709.0; 710.0; 745.0; -745.0; -746.0; -710.0; 1e5; -1e5 ];
  check_true "exp of top is [0, inf]"
    (Interval.equal (Transcend.exp Interval.top)
       (Interval.make 0.0 Float.infinity));
  check_true "exp empty" (Interval.is_empty (Transcend.exp Interval.empty))

let test_log_boundaries () =
  let z = Transcend.log (point 1.0) in
  check_true "log 1 contains 0" (Interval.mem 0.0 z);
  check_true "log 1 tight" (Interval.width z < 1e-20);
  check_true "log [0,0] is -inf"
    (Interval.sup (Transcend.log (point 0.0)) = Float.neg_infinity);
  check_true "log [0,1] lower is -inf"
    (Interval.inf (Transcend.log (iv 0.0 1.0)) = Float.neg_infinity);
  check_true "log of negatives empty"
    (Interval.is_empty (Transcend.log (iv (-2.0) (-1.0))));
  check_true "log inf upper"
    (Interval.sup (Transcend.log Interval.top) = Float.infinity)

(* ------------------------------------------------------------------ *)
(* trig: certified reduction replaces the 2^20 cutoff                  *)
(* ------------------------------------------------------------------ *)

let test_trig_beyond_old_cutoff () =
  let c = Transcend.Legacy.trig_arg_cutoff in
  (* Just beyond the old cutoff the legacy enclosure is the trivial
     [-1, 1]; the certified one must be sound *and* nontrivial. *)
  List.iter
    (fun (a, w) ->
      let i = iv a (a +. w) in
      let s = Transcend.sin i and co = Transcend.cos i in
      check_true
        (Printf.sprintf "legacy sin trivial at %g" a)
        (Interval.equal (Transcend.Legacy.sin i) (iv (-1.0) 1.0));
      check_true
        (Printf.sprintf "certified sin nontrivial at %g" a)
        (Interval.width s < 2.0);
      (* sample: libm (with its own correct reduction) must land inside *)
      for j = 0 to 16 do
        let x = a +. (w *. float_of_int j /. 16.0) in
        check_true
          (Printf.sprintf "sin containment at %g" x)
          (mem_approx (Stdlib.sin x) s);
        check_true
          (Printf.sprintf "cos containment at %g" x)
          (mem_approx (Stdlib.cos x) co)
      done)
    [
      (2.0 *. c, 0.1);
      (c +. 1.0, 0.01);
      (1e9, 0.5);
      (1e12, 0.25);
      (0x1p40, 1.0);
      (0x1.921fb5446f318p+42, 0.0);
      (4.0e15, 0.125);
    ]

let test_trig_reduce_max_edge () =
  (* beyond 2^52 the certified reduction declines: [-1, 1] fallback *)
  let big = Float.succ Certified.trig_reduce_max in
  check_true "sin beyond reduce_max is trivial"
    (Interval.equal (Transcend.sin (point big)) (iv (-1.0) 1.0));
  (* at 2^52 it still reduces *)
  let at_max = Transcend.sin (point Certified.trig_reduce_max) in
  check_true "sin at reduce_max nontrivial" (Interval.width at_max < 2.0);
  check_true "sin at reduce_max sound"
    (mem_approx (Stdlib.sin Certified.trig_reduce_max) at_max)

let test_trig_both_slack_regimes () =
  (* small-argument regime: extremum inside must be hulled *)
  let s = Transcend.sin (iv (Transcend.half_pi_lo -. 1e-3) (Transcend.half_pi_lo +. 1e-3)) in
  check_true "interior maximum hulled" (Interval.sup s = 1.0);
  let c = Transcend.cos (iv (-0.1) 0.1) in
  check_true "cos interior maximum hulled" (Interval.sup c = 1.0);
  (* extremum *outside* by more than the new slack (but inside the old
     absolute 1e-9): result stays sound and subset-of-legacy *)
  let b = Transcend.half_pi_lo -. 5e-13 in
  let i = iv 0.5 b in
  let s = Transcend.sin i in
  check_true "near-extremum still sound" (mem_approx (Stdlib.sin b) s);
  check_true "near-extremum subset of legacy"
    (Interval.subset s (Transcend.Legacy.sin i));
  (* large-argument regime: extremum detection after a genuine reduction *)
  let k = 1e9 in
  let kk = Float.round (k /. (2.0 *. Transcend.pi_lo)) in
  let near_max = (kk *. 2.0 *. Float.pi) +. (Float.pi /. 2.0) in
  let i = iv (near_max -. 0.01) (near_max +. 0.01) in
  let s = Transcend.sin i in
  check_true "reduced interior maximum hulled" (Interval.sup s = 1.0);
  check_true "reduced enclosure nontrivial" (Interval.inf s > 0.9)

let test_reduction_identity () =
  (* reduce_two_pi against glibc's own (independent, Payne-Hanek) sin *)
  List.iter
    (fun x ->
      let rh, rl, err = Certified.reduce_two_pi x in
      let gap = Float.abs (Stdlib.sin (rh +. rl) -. Stdlib.sin x) in
      check_true
        (Printf.sprintf "reduction identity at %g (gap %g)" x gap)
        (gap <= err +. 1e-13))
    [
      1.0; -1.0; 6.5; 100.0; 12345.678; 1e6; 1e9; -1e9; 1e12; 0x1p30;
      0x1p45; 0x1p52; -0x1p52; 1048577.0;
    ]

let trig_huge_qcheck =
  qcheck "sin/cos containment up to 4.4e15"
    QCheck2.Gen.(tup2 (float_range (-4.4e15) 4.4e15) (float_range 0.0 2.0))
    (fun (a, w) ->
      let i = iv a (a +. w) in
      let s = Transcend.sin i and c = Transcend.cos i in
      let ok x =
        mem_approx (Stdlib.sin x) s && mem_approx (Stdlib.cos x) c
      in
      ok a && ok (a +. w) && ok (a +. (w /. 2.0)))

(* ------------------------------------------------------------------ *)
(* Lambert W                                                           *)
(* ------------------------------------------------------------------ *)

let test_w_zero_regression () =
  (* satellite 1: the old pure-relative certification stride was a no-op
     at w = 0 and escaped with an absolute 1e-9 slack *)
  let w = Transcend.lambert_w (point 0.0) in
  check_true "W(0) contains 0" (Interval.mem 0.0 w);
  check_true "W(0) is tight (old slack was 1e-9)"
    (Interval.width w < 1e-100)

let test_w_branch_point () =
  let bp = -.Stdlib.exp (-1.0) in
  (* at and just right of the branch point the float kernel NaNs; the
     legacy upper bound escaped to +inf, the certified kernel repairs it *)
  List.iter
    (fun x ->
      let fresh = Transcend.lambert_w (point x) in
      check_false
        (Printf.sprintf "W(%.17g) not empty" x)
        (Interval.is_empty fresh);
      check_true
        (Printf.sprintf "W(%.17g) upper bound finite" x)
        (Interval.sup fresh < Float.infinity);
      check_true
        (Printf.sprintf "W(%.17g) near -1" x)
        (Interval.inf fresh >= -1.0 && Interval.sup fresh < -0.9);
      (* residual check through independent float evaluation *)
      let lo = Interval.inf fresh and hi = Interval.sup fresh in
      check_true "residual brackets: lo side"
        ((lo *. Stdlib.exp lo) -. x <= 1e-12);
      check_true "residual brackets: hi side"
        ((hi *. Stdlib.exp hi) -. x >= -1e-12))
    [ bp; bp +. 1e-16; bp +. 1e-14; bp +. 1e-10 ];
  (* demonstrate the repaired escape: legacy was +inf here *)
  let x = bp +. 1e-16 in
  check_true "legacy escaped to +inf at branch"
    (Interval.sup (Transcend.Legacy.lambert_w (point x)) = Float.infinity
    || Float.is_nan (Lambert.w0 x) = false);
  check_true "left of domain is empty"
    (Interval.is_empty (Transcend.lambert_w (iv (-10.0) (bp -. 1e-10))))

let test_w_nan_policy () =
  (* the exported NaN fallback policy is unchanged *)
  let i = Transcend.certified_w_bounds ~lo:Float.nan ~hi:Float.nan in
  check_true "nan policy lo" (Interval.inf i = -1.0);
  check_true "nan policy hi" (Interval.sup i = Float.infinity)

let w_subset_qcheck =
  qcheck "lambert_w subset of legacy"
    QCheck2.Gen.(tup2 (float_range (-0.37) 50.0) (float_range 0.0 10.0))
    (fun (a, w) ->
      let i = iv a (a +. w) in
      Interval.subset (Transcend.lambert_w i) (Transcend.Legacy.lambert_w i))

let w_containment_qcheck =
  qcheck "lambert_w containment" small_gen (fun (lo, w, frac) ->
      let x = lo +. (frac *. w) in
      let i = Transcend.lambert_w (iv lo (lo +. w)) in
      let v = Lambert.w0 x in
      Float.is_nan v || Interval.is_empty i || mem_approx v i)

(* ------------------------------------------------------------------ *)
(* atanh / w_inverse: repaired rounding budget                          *)
(* ------------------------------------------------------------------ *)

(* More accurate independent reference: 0.5 (log1p x - log1p (-x)) — one
   rounding per term against the old formula's three-plus. *)
let atanh_ref x = 0.5 *. (Float.log1p x -. Float.log1p (-.x))

let test_atanh_edges () =
  (* failing-before oracle cases near +-1: the old blanket two-ulp
     widening of a 3-plus-rounding composite could miss the true value;
     the interval composition cannot *)
  List.iter
    (fun x ->
      let i = Transcend.atanh (point x) in
      check_true
        (Printf.sprintf "atanh reference inside at %.17g" x)
        (mem_approx ~ulps:1 (atanh_ref x) i);
      (* and the repaired enclosure is still ulp-scale, not slack-scale *)
      check_true
        (Printf.sprintf "atanh width reasonable at %.17g" x)
        (Interval.width i
        <= 1e-13 *. (1.0 +. Float.abs (atanh_ref x))))
    [
      0.9; -0.9; 0.99999; -0.99999; 1.0 -. 1e-10; -1.0 +. 1e-10;
      1.0 -. 2.3e-13; -1.0 +. 4.5e-14; 0.5; -0.5; 1e-300;
    ];
  check_true "atanh at 1 is +inf"
    (Interval.sup (Transcend.atanh (iv 0.0 1.0)) = Float.infinity);
  check_true "atanh at -1 is -inf"
    (Interval.inf (Transcend.atanh (iv (-1.0) 0.0)) = Float.neg_infinity);
  check_true "atanh outside domain empty"
    (Interval.is_empty (Transcend.atanh (iv 2.0 3.0)))

let atanh_containment_qcheck =
  qcheck "atanh containment"
    QCheck2.Gen.(tup2 (float_range (-1.0) 1.0) (float_range 0.0 1.0))
    (fun (a, frac) ->
      let b = a +. ((1.0 -. a) *. frac) in
      let i = Transcend.atanh (iv a b) in
      let mid = a +. ((b -. a) /. 2.0) in
      Interval.is_empty i || mem_approx (atanh_ref mid) i)

(* w e^w in dd-ish arithmetic (fma-based two_prod) as the independent
   reference for w_inverse. *)
let w_inverse_ref w =
  let e = Stdlib.exp w in
  let p = w *. e in
  let err = Float.fma w e (-.p) in
  p +. err

let test_w_inverse_edges () =
  (* failing-before cases near -1: w e^w has two roundings plus libm's
     exp error; the old two-ulp budget under-covered it *)
  List.iter
    (fun w ->
      let i = Transcend.w_inverse (point w) in
      check_true
        (Printf.sprintf "w_inverse reference inside at %.17g" w)
        (mem_approx ~ulps:2 (w_inverse_ref w) i);
      check_true
        (Printf.sprintf "w_inverse width reasonable at %.17g" w)
        (Interval.width i <= 1e-12 *. (1.0 +. Float.abs (w_inverse_ref w))))
    [ -1.0; -1.0 +. 1e-12; -0.9999999; -0.5; 0.0; 1e-300; 0.5; 1.0; 700.0 ];
  check_true "w_inverse at 0 is exact"
    (Interval.equal (Transcend.w_inverse (point 0.0)) Interval.zero);
  check_true "w_inverse clips below -1"
    (Interval.equal
       (Transcend.w_inverse (iv (-5.0) (-1.0)))
       (Transcend.w_inverse (point (-1.0))))

let w_inverse_containment_qcheck =
  qcheck "w_inverse containment" small_gen (fun (lo, w, frac) ->
      let x = lo +. (frac *. w) in
      let i = Transcend.w_inverse (iv lo (lo +. w)) in
      Interval.is_empty i || x < -1.0 || mem_approx (w_inverse_ref x) i)

(* ------------------------------------------------------------------ *)
(* pow_rat                                                             *)
(* ------------------------------------------------------------------ *)

let test_pow_rat_integer_parity () =
  (* integer rationals must be bit-identical to the pow_int path *)
  List.iter
    (fun (lo, hi, n) ->
      let i = iv lo hi in
      check_true
        (Printf.sprintf "pow_rat int parity %d" n)
        (Interval.equal
           (Transcend.pow_rat i (Rat.of_int n))
           (Interval.pow_int i n)))
    [ (-3.0, 2.0, 2); (-3.0, 2.0, 3); (0.5, 2.0, -1); (-1.0, 1.0, 0) ]

let test_pow_rat_references () =
  (* correctly rounded sqrt and faithful cbrt give independent references *)
  let cases =
    [
      (Rat.half, fun x -> Stdlib.sqrt x);
      (Rat.make 3 2, fun x -> x *. Stdlib.sqrt x);
      (Rat.third, fun x -> Float.cbrt x);
      (* (cbrt x)^2, not cbrt (x^2): the square must come second or the
         intermediate overflows/underflows at the 1e+-300 sample bases *)
      (Rat.make 2 3, fun x -> let c = Float.cbrt x in c *. c);
      (Rat.make 4 3, fun x -> x *. Float.cbrt x);
      (Rat.make (-1) 3, fun x -> 1.0 /. Float.cbrt x);
    ]
  in
  List.iter
    (fun (r, ref_f) ->
      List.iter
        (fun x ->
          let i = Transcend.pow_rat (point x) r in
          check_true
            (Printf.sprintf "pow_rat %s at %g" (Rat.to_string r) x)
            (mem_approx (ref_f x) i))
        [ 0.001; 0.1; 1.0; 2.0; 1e10; 1e300; 1e-300; 4.0 /. 3.0 ])
    cases;
  (* the exponent-rounding failing-before case: extreme base, exponent
     1/3 — x^fl(1/3) is ~100 ulps away from x^(1/3), outside the float
     path's one-ulp widening *)
  let x = 1e300 in
  let i = Transcend.pow_rat (point x) Rat.third in
  check_true "cbrt(1e300) inside certified pow_rat"
    (mem_approx ~ulps:1 (Float.cbrt x) i);
  check_true "pow_rat tight at extreme base"
    (Interval.width i <= 1e-13 *. Float.cbrt x)

let test_pow_rat_edges () =
  check_true "0^(1/2) = 0"
    (Interval.equal (Transcend.pow_rat (point 0.0) Rat.half) Interval.zero);
  check_true "0^(-1/2) = inf"
    (Interval.sup (Transcend.pow_rat (iv 0.0 1.0) (Rat.make (-1) 2))
    = Float.infinity);
  check_true "negative base contributes nothing"
    (Interval.is_empty (Transcend.pow_rat (iv (-4.0) (-1.0)) Rat.half));
  check_true "straddling base clips to nonneg"
    (Interval.inf (Transcend.pow_rat (iv (-4.0) 9.0) Rat.half) >= 0.0)

let pow_rat_containment_qcheck =
  qcheck "pow_rat containment"
    QCheck2.Gen.(
      tup4 (float_range 0.0 10.0) (float_range 0.0 5.0) (int_range (-9) 9)
        (int_range 1 5))
    (fun (a, w, p, q) ->
      let r = Rat.make p q in
      let i = Transcend.pow_rat (iv a (a +. w)) r in
      let x = a +. (w /. 2.0) in
      let v = Eval.pow_float x (Rat.to_float r) in
      Float.is_nan v || Interval.is_empty i || mem_approx v i)

(* ------------------------------------------------------------------ *)
(* subset-of-legacy and containment sweeps for the remaining exports   *)
(* ------------------------------------------------------------------ *)

let test_counters_fire () =
  let prev = Obs.Metrics.install (Obs.Metrics.fresh ()) in
  Fun.protect
    ~finally:(fun () -> ignore (Obs.Metrics.install prev))
    (fun () ->
      ignore (Transcend.exp (point 1.0));
      ignore (Transcend.exp (iv 0.0 100.0));
      ignore (Transcend.sin (point 1e9));
      ignore (Transcend.sin (point 1e16));
      ignore (Transcend.lambert_w (point 1.0));
      ignore (Transcend.pow_rat (point 2.0) Rat.third);
      let snap = Obs.Metrics.snapshot () in
      let get name =
        match List.assoc_opt name snap.Obs.Metrics.counters with
        | Some v -> v
        | None -> Alcotest.failf "counter %s not registered" name
      in
      check_true "exp kernel counted" (get "transcend.exp.kernel" >= 1);
      check_true "exp fallback counted" (get "transcend.exp.fallback" >= 1);
      check_true "trig reduced counted" (get "transcend.trig.reduced" >= 1);
      check_true "trig fallback counted" (get "transcend.trig.fallback" >= 1);
      check_true "w kernel counted" (get "transcend.w.kernel" >= 0);
      check_true "pow_rat kernel counted" (get "transcend.pow_rat.kernel" >= 1))

let test_legacy_mode_switch () =
  Transcend.set_mode `Legacy;
  Fun.protect
    ~finally:(fun () -> Transcend.set_mode `Certified)
    (fun () ->
      check_true "legacy mode restores trivial trig"
        (Interval.equal
           (Transcend.sin (point (2.0 *. Transcend.Legacy.trig_arg_cutoff)))
           (iv (-1.0) 1.0));
      check_true "legacy mode exp matches Legacy.exp"
        (Interval.equal
           (Transcend.exp (point 1.0))
           (Transcend.Legacy.exp (point 1.0))))

let suite =
  [
    case "exp kernel tighter than legacy" test_exp_kernel_tighter;
    case "log kernel tighter than legacy" test_log_kernel_tighter;
    case "exp boundary table" test_exp_boundaries;
    case "log boundary table" test_log_boundaries;
    case "trig beyond old 2^20 cutoff" test_trig_beyond_old_cutoff;
    case "trig 2^52 reduction edge" test_trig_reduce_max_edge;
    case "trig slack regimes" test_trig_both_slack_regimes;
    case "certified reduction identity" test_reduction_identity;
    case "lambert stride fix at x = 0" test_w_zero_regression;
    case "lambert branch point repair" test_w_branch_point;
    case "lambert NaN policy" test_w_nan_policy;
    case "atanh edge oracle" test_atanh_edges;
    case "w_inverse edge oracle" test_w_inverse_edges;
    case "pow_rat integer parity" test_pow_rat_integer_parity;
    case "pow_rat references" test_pow_rat_references;
    case "pow_rat edges" test_pow_rat_edges;
    case "dispatch counters" test_counters_fire;
    case "legacy mode switch" test_legacy_mode_switch;
    subset_of_legacy "exp subset of legacy" Transcend.exp Transcend.Legacy.exp
      small_gen;
    subset_of_legacy "log subset of legacy" Transcend.log Transcend.Legacy.log
      small_gen;
    subset_of_legacy "sin subset of legacy (small)" Transcend.sin
      Transcend.Legacy.sin small_gen;
    subset_of_legacy "cos subset of legacy (small)" Transcend.cos
      Transcend.Legacy.cos small_gen;
    subset_of_legacy "sin subset of legacy (large)" Transcend.sin
      Transcend.Legacy.sin large_gen;
    containment "exp containment" Transcend.exp Stdlib.exp small_gen;
    containment "log containment" Transcend.log Stdlib.log small_gen;
    containment "sin containment (small)" Transcend.sin Stdlib.sin small_gen;
    containment "cos containment (small)" Transcend.cos Stdlib.cos small_gen;
    containment "sin containment (large)" Transcend.sin Stdlib.sin large_gen;
    containment "cos containment (large)" Transcend.cos Stdlib.cos large_gen;
    containment "sin containment (huge)" Transcend.sin Stdlib.sin huge_gen;
    containment "tanh containment" Transcend.tanh Stdlib.tanh small_gen;
    containment "atan containment" Transcend.atan Stdlib.atan small_gen;
    (* tan_on_principal clips to the principal branch, so only sample
       points inside (-pi/2, pi/2) are expected in the enclosure *)
    qcheck "tan_on_principal containment"
      QCheck2.Gen.(
        tup3 (float_range (-1.5) 1.5) (float_range 0.0 0.5)
          (float_range 0.0 1.0))
      (fun (lo, w, frac) ->
        let x = lo +. (frac *. w) in
        if Float.abs x >= Transcend.half_pi_lo then true
        else
          let i = Transcend.tan_on_principal (iv lo (lo +. w)) in
          Interval.is_empty i || mem_approx (Stdlib.tan x) i);
    containment "asin_hull containment" Transcend.asin_hull Stdlib.asin
      QCheck2.Gen.(
        tup3 (float_range (-1.0) 1.0) (float_range 0.0 0.5)
          (float_range 0.0 1.0));
    containment "acos_hull containment" Transcend.acos_hull Stdlib.acos
      QCheck2.Gen.(
        tup3 (float_range (-1.0) 1.0) (float_range 0.0 0.5)
          (float_range 0.0 1.0));
    trig_huge_qcheck;
    w_subset_qcheck;
    w_containment_qcheck;
    atanh_containment_qcheck;
    w_inverse_containment_qcheck;
    pow_rat_containment_qcheck;
  ]
