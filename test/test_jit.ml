open Testutil

(* The JIT-compiled contraction kernel (lib/jit).

   The headline property mirrors the itape suite one level down: the
   compiled C kernel must reproduce the interpreted tape pipeline — HC4
   dirty-agenda contraction, the optional mean-value-form stage, and the
   per-atom statuses — bit for bit, for any formula, box, round budget and
   batch width. On top of that sit the operational guarantees: batched
   calls equal single-box calls, a missing/broken C compiler degrades to
   [Error] (never an exception), and the content-addressed cache serves a
   second plan without invoking the compiler. *)

(* ------------------------------------------------------------------ *)
(* Harness *)

let temp_dir () =
  let d = Filename.temp_file "xcvjit-test" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

(* One compile cache for the whole suite: across the 1- and 2-worker
   runtest passes the same generated sources recur, so most plans are
   cache hits and the suite stays fast. *)
let cache_dir =
  lazy
    (let d = Filename.concat (Filename.get_temp_dir_name ()) "xcvjit-suite" in
     (match Unix.mkdir d 0o700 with
     | () -> ()
     | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     d)

let wall name =
  match
    List.assoc_opt name (Obs.Metrics.snapshot ()).Obs.Metrics.wall_counters
  with
  | Some v -> v
  | None -> 0

let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect f ~finally:(fun () ->
      Unix.putenv key (Option.value old ~default:""))

(* ------------------------------------------------------------------ *)
(* Generators: test_itape's shapes plus the constructs the plain expr_gen
   never emits — rational powers, logs and Lambert W — so every opcode of
   the emitted tables is crossed. *)

let interval_gen =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun a b -> Interval.make (Float.min a b) (Float.max a b))
          (float_range (-3.0) 3.0) (float_range (-3.0) 3.0);
        return (Interval.point 0.0);
        map (fun x -> Interval.point x) (float_range (-2.0) 2.0);
        map (fun x -> Interval.make 0.0 x) (float_range 0.0 2.0);
      ])

let box_gen =
  QCheck2.Gen.(
    map2
      (fun ix iy -> Box.make [ ("x", ix); ("y", iy) ])
      interval_gen interval_gen)

let rat_gen =
  QCheck2.Gen.(
    map2
      (fun n d -> Rat.make n d)
      (int_range (-7) 7)
      (int_range 1 5))

let atom_expr_gen =
  QCheck2.Gen.(
    let pw =
      map3
        (fun g b d -> Expr.piecewise [ (Expr.guard_le g, b) ] d)
        expr_gen expr_gen expr_gen
    in
    let enriched =
      oneof
        [
          map2 (fun e r -> Expr.powr (Expr.abs e) r) expr_gen rat_gen;
          map (fun e -> Expr.sqrt (Expr.abs e)) expr_gen;
          map
            (fun e -> Expr.log (Expr.add (Expr.abs e) (Expr.const 0.5)))
            expr_gen;
          map (fun e -> Expr.lambert_w (Expr.mul (Expr.const 0.25) e)) expr_gen;
          map2 Expr.pow expr_gen expr_gen;
        ]
    in
    frequency [ (3, expr_gen); (2, enriched); (1, pw) ])

let rel_gen =
  QCheck2.Gen.oneofl [ Form.Le0; Form.Lt0; Form.Ge0; Form.Gt0; Form.Eq0 ]

let atom_gen =
  QCheck2.Gen.map2 (fun e rel -> Form.atom e rel) atom_expr_gen rel_gen

let formula_gen = QCheck2.Gen.(list_size (int_range 1 3) atom_gen)

(* ------------------------------------------------------------------ *)
(* Interpreted reference: exactly the pipeline Icp runs when no native
   kernel is installed (see Icp.solve_real). *)

let interpreted ~mvf ~rounds compiled box =
  let counters = Hc4.counters () in
  let result =
    match Hc4.contract_tape ~counters compiled box ~rounds with
    | Hc4.Infeasible -> Hc4.Infeasible
    | Hc4.Contracted b ->
        if mvf then Hc4.mean_value_tape compiled b else Hc4.Contracted b
  in
  let statuses =
    match result with
    | Hc4.Infeasible -> [||]
    | Hc4.Contracted b -> Array.of_list (Hc4.statuses_on compiled b)
  in
  (result, statuses, counters.Hc4.revise_calls, counters.Hc4.sweeps)

let same_result a b =
  match (a, b) with
  | Hc4.Infeasible, Hc4.Infeasible -> true
  | Hc4.Contracted b1, Hc4.Contracted b2 -> Box.equal b1 b2
  | _ -> false

let pp_status = function
  | `Holds -> "Holds"
  | `Fails -> "Fails"
  | `Unknown -> "Unknown"

let check_outcome label (outcome : Icp.native_outcome) reference =
  let ref_result, ref_statuses, ref_revise, ref_sweeps = reference in
  if not (same_result outcome.Icp.n_result ref_result) then
    QCheck2.Test.fail_reportf "%s: contracted boxes differ" label;
  (match ref_result with
  | Hc4.Infeasible -> ()
  | Hc4.Contracted _ ->
      if outcome.Icp.n_statuses <> ref_statuses then
        QCheck2.Test.fail_reportf "%s: statuses differ (jit %s, tape %s)"
          label
          (String.concat ","
             (Array.to_list (Array.map pp_status outcome.Icp.n_statuses)))
          (String.concat ","
             (Array.to_list (Array.map pp_status ref_statuses))));
  if outcome.Icp.n_revise <> ref_revise then
    QCheck2.Test.fail_reportf "%s: revise calls differ (jit %d, tape %d)"
      label outcome.Icp.n_revise ref_revise;
  if outcome.Icp.n_sweeps <> ref_sweeps then
    QCheck2.Test.fail_reportf "%s: sweeps differ (jit %d, tape %d)" label
      outcome.Icp.n_sweeps ref_sweeps;
  true

(* ------------------------------------------------------------------ *)
(* Bit-identity: JIT pipeline = interpreted pipeline *)

(* One compiled plan checked on many boxes, both one box at a time and as
   one batch: 25 formulas x 20 boxes = 500 box-level identity checks per
   run. Skipped (vacuously true) when no C compiler is present — the
   degradation test below still runs. *)
let prop_jit_identity =
  qcheck ~count:25 "jit = interpreted tape (500 boxes: status, box, counters)"
    QCheck2.Gen.(
      quad formula_gen
        (list_size (return 20) box_gen)
        (int_range 1 4) bool)
    (fun (formula, boxes, rounds, mvf) ->
      (not (Jit.available ()))
      ||
      let vars = [ "x"; "y" ] in
      let compiled = Hc4.compile ~vars formula in
      match
        Jit.plan ~cache_dir:(Lazy.force cache_dir) ~mvf ~rounds compiled
      with
      | Error e -> QCheck2.Test.fail_reportf "plan failed: %s" e
      | Ok plan ->
          let boxes = Array.of_list boxes in
          let refs =
            Array.map (interpreted ~mvf ~rounds compiled) boxes
          in
          (* single-box calls *)
          Array.iteri
            (fun i box ->
              let o = (Jit.contract_batch plan [| box |]).(0) in
              ignore (check_outcome (Printf.sprintf "box %d" i) o refs.(i)))
            boxes;
          (* one batched call must equal the single-box calls *)
          let batched = Jit.contract_batch plan boxes in
          Array.iteri
            (fun i o ->
              ignore
                (check_outcome (Printf.sprintf "batched box %d" i) o refs.(i)))
            batched;
          true)

(* The certified/legacy switch is baked into the emitted source; both
   modes must keep identity (their kernels differ a lot). *)
let test_identity_legacy_mode () =
  if Jit.available () then begin
    Transcend.set_mode `Legacy;
    Fun.protect ~finally:(fun () -> Transcend.set_mode `Certified) @@ fun () ->
    let formula =
      [
        Form.atom
          (Expr.sub
             (Expr.exp (Expr.mul (Expr.const 0.5) (Expr.var "x")))
             (Expr.powr (Expr.abs (Expr.var "y")) (Rat.make 3 2)))
          Form.Le0;
        Form.atom (Expr.lambert_w (Expr.var "x")) Form.Ge0;
      ]
    in
    let compiled = Hc4.compile ~vars:[ "x"; "y" ] formula in
    match
      Jit.plan ~cache_dir:(Lazy.force cache_dir) ~mvf:true ~rounds:3 compiled
    with
    | Error e -> Alcotest.failf "plan failed: %s" e
    | Ok plan ->
        let box =
          Box.make
            [ ("x", Interval.make (-0.25) 2.0); ("y", Interval.make 0.0 1.5) ]
        in
        ignore
          (check_outcome "legacy mode"
             (Jit.contract_batch plan [| box |]).(0)
             (interpreted ~mvf:true ~rounds:3 compiled box))
  end

(* ------------------------------------------------------------------ *)
(* Degradation: compiler failures are an [Error], counted, never fatal *)

let sample_compiled () =
  Hc4.compile ~vars:[ "x"; "y" ]
    [
      Form.atom
        (Expr.sub (Expr.mul (Expr.var "x") (Expr.var "y")) (Expr.int 1))
        Form.Le0;
    ]

let test_degrades_on_broken_cc () =
  with_env "XCV_CC" "/bin/false" @@ fun () ->
  let before = wall "jit.fallbacks" in
  let dir = temp_dir () in
  (match Jit.plan ~cache_dir:dir ~mvf:false ~rounds:2 (sample_compiled ()) with
  | Ok _ -> Alcotest.fail "plan succeeded under XCV_CC=/bin/false"
  | Error msg ->
      check_true "error mentions the compiler"
        (contains_sub msg "false" || contains_sub msg "exited"));
  check_true "fallback counted" (wall "jit.fallbacks" > before)

let test_degrades_on_missing_cc () =
  with_env "XCV_CC" "/nonexistent/xcv-no-such-cc" @@ fun () ->
  let before = wall "jit.fallbacks" in
  (match Jit.plan ~mvf:false ~rounds:2 (sample_compiled ()) with
  | Ok _ -> Alcotest.fail "plan succeeded under a nonexistent XCV_CC"
  | Error _ -> ());
  check_true "fallback counted" (wall "jit.fallbacks" > before)

(* ------------------------------------------------------------------ *)
(* Compile cache: the second plan of the same source never invokes cc *)

let test_cache_hit () =
  if Jit.available () then begin
    let dir = temp_dir () in
    let compiled = sample_compiled () in
    let plan1 = Jit.plan ~cache_dir:dir ~mvf:true ~rounds:2 compiled in
    (match plan1 with
    | Error e -> Alcotest.failf "first plan failed: %s" e
    | Ok _ -> ());
    let compiles = wall "jit.compiles" in
    let hits = wall "jit.cache_hits" in
    (match Jit.plan ~cache_dir:dir ~mvf:true ~rounds:2 compiled with
    | Error e -> Alcotest.failf "second plan failed: %s" e
    | Ok _ -> ());
    Alcotest.(check int) "no recompilation" compiles (wall "jit.compiles");
    Alcotest.(check int) "cache hit counted" (hits + 1) (wall "jit.cache_hits");
    (* a different config is a different key: must compile again *)
    (match Jit.plan ~cache_dir:dir ~mvf:true ~rounds:3 compiled with
    | Error e -> Alcotest.failf "third plan failed: %s" e
    | Ok _ -> ());
    Alcotest.(check int) "config change recompiles" (compiles + 1)
      (wall "jit.compiles")
  end

let test_cache_key_stable () =
  let compiled = sample_compiled () in
  let src () = Jit.render_source ~mvf:true ~rounds:2 compiled in
  Alcotest.(check string) "render is deterministic" (src ()) (src ());
  let k1 = Jit.cache_key (src ()) in
  let k2 = Jit.cache_key (Jit.render_source ~mvf:false ~rounds:2 compiled) in
  check_true "mvf flag changes the key" (k1 <> k2)

(* ------------------------------------------------------------------ *)
(* Workspace hygiene *)

let test_sweeps_stale_workspaces () =
  let dir = temp_dir () in
  (* a stale workspace of a dead pid, and one of a live pid (ours) *)
  let stale = Filename.concat dir "xcvjit-999999999-00002a" in
  let live =
    Filename.concat dir (Printf.sprintf "xcvjit-%d-00002a" (Unix.getpid ()))
  in
  Unix.mkdir stale 0o700;
  Unix.mkdir live 0o700;
  let oc = open_out (Filename.concat stale "k.c") in
  output_string oc "/* stale */";
  close_out oc;
  Jit.sweep_stale_workspaces ~dir ();
  check_false "dead pid's workspace removed" (Sys.file_exists stale);
  check_true "live pid's workspace kept" (Sys.file_exists live);
  check_true "unrelated entries kept" (Sys.file_exists dir)

(* ------------------------------------------------------------------ *)
(* Verifier-level paint-log identity: Algorithm 1 with the JIT kernel
   installed must paint the same log, byte for byte, as the interpreted
   tape — at 1 worker and at 4. *)

let region_fingerprint (r : Outcome.region) =
  let dims =
    String.concat ","
      (List.map
         (fun v ->
           let iv = Box.get r.Outcome.box v in
           Printf.sprintf "%s=[%h,%h]" v (Interval.inf iv) (Interval.sup iv))
         (Box.vars r.Outcome.box))
  in
  Printf.sprintf "%d|%s|%s" r.Outcome.depth
    (Outcome.status_name r.Outcome.status)
    dims

let paint_config ~jit workers =
  {
    Verify.default_config with
    Verify.threshold = 0.3;
    solver =
      { Icp.default_config with fuel = 60; delta = 1e-2; contractor_rounds = 2 };
    workers;
    jit;
    jit_cache = (if jit then Some (Lazy.force cache_dir) else None);
  }

let test_paint_log_identity () =
  if Jit.available () then begin
    (* a unit circle warped by a sine so the kernel's transcendental path
       is on the verdict-critical line *)
    let open Expr in
    let psi =
      Form.atom
        (sub
           (add (sqr (var "x")) (sqr (var "y")))
           (add one (mul (const 0.25) (sin (mul (const 3.0) (var "x"))))))
        Form.Ge0
    in
    let domain =
      Box.make
        [
          ("x", Interval.make (-1.5) 1.5);
          ("y", Interval.make (-1.5) 1.5);
        ]
    in
    let paint ~jit workers =
      let o =
        Verify.run_custom
          ~config:(paint_config ~jit workers)
          ~dfa_label:"jit" ~condition_label:"paint" ~domain ~psi ()
      in
      ( List.map region_fingerprint o.Outcome.regions,
        { o.Outcome.stats with Outcome.elapsed = 0.0 } )
    in
    let ref_log, ref_stats = paint ~jit:false 1 in
    check_true "reference log is non-trivial" (List.length ref_log > 10);
    List.iter
      (fun (jit, workers) ->
        let log, stats = paint ~jit workers in
        Alcotest.(check (list string))
          (Printf.sprintf "paint log (jit=%b, workers=%d)" jit workers)
          ref_log log;
        check_true
          (Printf.sprintf "stats (jit=%b, workers=%d)" jit workers)
          (stats = ref_stats))
      [ (false, 4); (true, 1); (true, 4) ]
  end

let suite =
  [
    prop_jit_identity;
    case "legacy-mode identity" test_identity_legacy_mode;
    case "degrades to Error on a broken compiler" test_degrades_on_broken_cc;
    case "degrades to Error on a missing compiler" test_degrades_on_missing_cc;
    case "compile cache serves the second plan" test_cache_hit;
    case "cache key is deterministic and config-sensitive" test_cache_key_stable;
    case "stale workspaces of dead pids are swept" test_sweeps_stale_workspaces;
    case "paint log is byte-identical with the JIT on, at 1 and 4 workers"
      test_paint_log_identity;
  ]
