open Testutil

(* Killed-mutant regression suite — the paper's Section VI-B CI vision as
   executable tests. For each functional a small implementation bug (sign
   flip, wrong prefactor, mistyped constant) is injected with [Mutate]; the
   verifier must flip the pair from not-refuted to refuted (the mutant is
   "killed"), while the pristine implementation stays clean on the very same
   configuration (zero false kills). *)

let config =
  {
    Verify.threshold = 0.3;
    solver =
      { Icp.default_config with fuel = 400; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 30.0;
    workers = test_workers;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = { Verify.max_retries = 2; fuel_growth = 2 };
    jit = false;
    jit_cache = None;
  }

let refuted o = Outcome.classify o = Outcome.Refuted

let check_kill ~pristine ~mutant cond =
  (match Verify.run_pair ~config pristine cond with
  | None -> Alcotest.failf "%s does not apply to %s" (Conditions.name cond) pristine.Registry.name
  | Some o ->
      check_false
        (Printf.sprintf "pristine %s not refuted on %s (false kill)"
           pristine.Registry.name (Conditions.name cond))
        (refuted o));
  match Verify.run_pair ~config mutant cond with
  | None -> Alcotest.failf "%s does not apply to mutant" (Conditions.name cond)
  | Some o ->
      check_true
        (Printf.sprintf "mutant %s refuted on %s" mutant.Registry.name
           (Conditions.name cond))
        (refuted o)

(* PZ81 with the gamma prefactor's sign flipped: eps_c becomes positive on
   the whole rs >= 1 branch, violating correlation non-positivity (EC1).
   One-dimensional, so fast enough for the quick tier. *)
let test_pz81_sign_flip () =
  let pz81 = Registry.find "pz81" in
  let mutant =
    Mutate.mutant_of pz81 ~name:"pz81-gamma-sign" ~mutate:(fun e ->
        let e', n =
          Mutate.tweak_constant ~from_const:(-0.1423) ~to_const:0.1423 e
        in
        check_true "gamma site found" (n > 0);
        e')
  in
  check_kill ~pristine:pz81 ~mutant Conditions.Ec1

(* PBE with the gradient correction applied twice (every additive term of
   eps_c mentioning s doubled): at large reduced gradient eps_c tends to
   -eps_c^PW92 > 0, breaking EC1 — the ci_mutation example's "2H" bug. *)
let test_pbe_double_gradient_term () =
  let pbe = Registry.find "pbe" in
  let mutant =
    Mutate.mutant_of pbe ~name:"pbe-2h" ~mutate:(fun e ->
        Mutate.scale_term ~factor:2.0 ~containing:Dft_vars.s_name e)
  in
  check_kill ~pristine:pbe ~mutant Conditions.Ec1

(* LYP is refuted on EC1 over the paper's full domain (Table I), so the
   full-domain kill check cannot distinguish mutant from pristine. Restrict
   to rs in [0.5, 3], s in [0, 1] — safely below the s ~ 1.66 violation
   onset — where pristine LYP verifies; flipping the sign of the a = 0.04918
   prefactor makes eps_c positive everywhere, so the mutant is refuted even
   there. *)
let lyp_subdomain =
  Box.make
    [
      (Dft_vars.rs_name, Interval.make 0.5 3.0);
      (Dft_vars.s_name, Interval.make 0.0 1.0);
    ]

let run_lyp_on_subdomain (dfa : Registry.t) =
  match Encoder.encode dfa Conditions.Ec1 with
  | None -> Alcotest.fail "EC1 applies to LYP"
  | Some p ->
      Verify.run_custom ~config ~dfa_label:dfa.Registry.label
        ~condition_label:(Conditions.name Conditions.Ec1)
        ~domain:lyp_subdomain ~psi:p.Encoder.psi ()

let test_lyp_prefactor_sign_flip () =
  let lyp = Registry.find "lyp" in
  let mutant =
    Mutate.mutant_of lyp ~name:"lyp-a-sign" ~mutate:(fun e ->
        (* the smart constructors may have folded [neg (a / denom)] into a
           negative literal, so try the constant under either sign *)
        let e', n = Mutate.flip_constant_sign 0.04918 e in
        let e', n =
          if n > 0 then (e', n) else Mutate.flip_constant_sign (-0.04918) e
        in
        check_true "a site found" (n > 0);
        e')
  in
  check_false "pristine LYP not refuted on subdomain (false kill)"
    (refuted (run_lyp_on_subdomain lyp));
  check_true "LYP sign mutant refuted on subdomain"
    (refuted (run_lyp_on_subdomain mutant))

(* VWN-RPA with the overall prefactor a = 0.0310907 sign-flipped: eps_c is
   a times a bracket that is negative on the whole rs domain, so the mutant
   is positive everywhere and EC1 refutes it at once. One-dimensional, so
   quick-tier like the PZ81 case. *)
let test_vwn_rpa_prefactor_sign_flip () =
  let vwn = Registry.find "vwn_rpa" in
  let mutant =
    Mutate.mutant_of vwn ~name:"vwn-rpa-a-sign" ~mutate:(fun e ->
        let e', n = Mutate.flip_constant_sign 0.0310907 e in
        let e', n =
          if n > 0 then (e', n) else Mutate.flip_constant_sign (-0.0310907) e
        in
        check_true "a site found" (n > 0);
        e')
  in
  check_kill ~pristine:vwn ~mutant Conditions.Ec1

(* AM05 with the correlation mixing constant gamma_c = 0.8098 sign-flipped:
   the interpolation factor X + gamma_c (1 - X) drops from [gamma_c, 1]
   to negative values once X = 1/(1 + 2.804 s^2) < 0.45, i.e. for
   s >~ 0.66 — multiplying the negative PW92 eps_c into positive territory
   over most of the (rs, s) domain, which EC1 refutes quickly. *)
let test_am05_gamma_sign_flip () =
  let am05 = Registry.find "am05" in
  let mutant =
    Mutate.mutant_of am05 ~name:"am05-gamma-sign" ~mutate:(fun e ->
        let e', n = Mutate.flip_constant_sign 0.8098 e in
        check_true "gamma_c site found" (n > 0);
        e')
  in
  check_kill ~pristine:am05 ~mutant Conditions.Ec1

(* SCAN with b1c = 0.0285764 sign-flipped (all three literal sites, i.e.
   the consistent b1c := -b1c typo): the single-orbital limit eps_lda0
   becomes +b1c/(1 + b2c sqrt(rs) + b3c rs) > 0, and at small alpha the
   interpolation eps_c1 + f_c(alpha) (eps_c0 - eps_c1) is dominated by the
   now-positive eps_c0, so eps_c > 0 in the alpha -> 0 pocket. Three
   dimensions are expensive, so the check runs on a subdomain around that
   pocket with a coarse threshold; pristine SCAN stays unrefuted there
   (boxes the solver cannot prove in budget time out, which classifies as
   unknown, never as a kill). *)
let scan_config = { config with Verify.threshold = 1.0 }

let scan_subdomain =
  Box.make
    [
      (Dft_vars.rs_name, Interval.make 0.5 3.0);
      (Dft_vars.s_name, Interval.make 0.0 2.0);
      (Dft_vars.alpha_name, Interval.make 0.0 2.0);
    ]

let run_scan_on_subdomain (dfa : Registry.t) =
  match Encoder.encode dfa Conditions.Ec1 with
  | None -> Alcotest.fail "EC1 applies to SCAN"
  | Some p ->
      Verify.run_custom ~config:scan_config ~dfa_label:dfa.Registry.label
        ~condition_label:(Conditions.name Conditions.Ec1)
        ~domain:scan_subdomain ~psi:p.Encoder.psi ()

let test_scan_b1c_sign_flip () =
  let scan = Registry.find "scan" in
  (* [mutant_of] runs the mutation over eps_c and eps_x alike; b1c lives
     only in the correlation part, so count sites across both passes. *)
  let sites = ref 0 in
  let mutant =
    Mutate.mutant_of scan ~name:"scan-b1c-sign" ~mutate:(fun e ->
        (* the smart constructors folded one site's negation into the
           literal, so the expression holds both +b1c and -b1c; flip by
           magnitude to apply the consistent b1c := -b1c typo *)
        let e', n = Mutate.flip_constant_magnitude 0.0285764 e in
        sites := !sites + n;
        e')
  in
  check_true "b1c sites found" (!sites > 0);
  check_false "pristine SCAN not refuted on subdomain (false kill)"
    (refuted (run_scan_on_subdomain scan));
  check_true "SCAN b1c sign mutant refuted on subdomain"
    (refuted (run_scan_on_subdomain mutant))

let suite =
  [
    case "PZ81 gamma sign flip killed on EC1" test_pz81_sign_flip;
    case "VWN-RPA prefactor sign flip killed on EC1"
      test_vwn_rpa_prefactor_sign_flip;
    slow_case "PBE doubled gradient term killed on EC1"
      test_pbe_double_gradient_term;
    slow_case "LYP prefactor sign flip killed on EC1"
      test_lyp_prefactor_sign_flip;
    slow_case "AM05 gamma_c sign flip killed on EC1"
      test_am05_gamma_sign_flip;
    slow_case "SCAN b1c sign flip killed on EC1" test_scan_b1c_sign_flip;
  ]
