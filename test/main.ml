let () =
  (* The dune runtest alias drives this binary twice, with XCV_TEST_WORKERS
     set to 1 and 2, so every verifier-driving suite exercises both the
     sequential and the parallel scheduler path (see Testutil.test_workers). *)
  Printf.eprintf "[xcverifier tests] XCV_TEST_WORKERS=%d\n%!"
    Testutil.test_workers;
  Alcotest.run "xcverifier"
    [
      ("testutil", Test_testutil.suite);
      ("rat", Test_rat.suite);
      ("expr", Test_expr.suite);
      ("eval-compile-parse", Test_eval.suite);
      ("deriv", Test_deriv.suite);
      ("simplify-subst", Test_simplify.suite);
      ("interval", Test_interval.suite);
      ("transcend", Test_transcend.suite);
      ("solver", Test_solver.suite);
      ("itape", Test_itape.suite);
      ("taylor", Test_taylor.suite);
      ("adjoint", Test_adjoint.suite);
      ("functionals", Test_functionals.suite);
      ("spin", Test_spin.suite);
      ("conditions", Test_conditions.suite);
      ("verifier", Test_verifier.suite);
      ("outcome", Test_outcome.suite);
      ("witness", Test_witness.suite);
      ("pb-baseline", Test_pb.suite);
      ("report", Test_report.suite);
      ("parallel", Test_parallel.suite);
      ("kohn-sham", Test_ks.suite);
      ("serialize", Test_serialize.suite);
      ("resilience", Test_resilience.suite);
      ("shard", Test_shard.suite);
      ("trace", Test_trace.suite);
      ("mutate", Test_mutate.suite);
      ("obs", Test_obs.suite);
      ("codegen", Test_codegen.suite);
      ("jit", Test_jit.suite);
      ("service", Test_service.suite);
    ]
