open Testutil

(* The verification service: crash-safe verdict cache, wire protocol,
   admission control, quota degradation, cooperative cancellation, journal
   replay — and the daemon end to end, including SIGKILL mid-commit with a
   byte-identity check across the restart. *)

(* ---- fixtures -------------------------------------------------------- *)

let temp_dir () =
  let d = Filename.temp_file "xcvservice" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_fresh_instance f =
  let prev = Obs.Metrics.install (Obs.Metrics.fresh ()) in
  Fun.protect ~finally:(fun () -> ignore (Obs.Metrics.install prev)) f

(* counter aliases (registration is idempotent by name) *)
let c_solver_calls = Obs.Metrics.counter "verify.solver_calls"
let c_hits = Obs.Metrics.counter "service.cache.hits"
let c_misses = Obs.Metrics.counter "service.cache.misses"

let c_replays =
  Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.journal_replays"

let box2 ?(x = Interval.make 0.0 1.0) ?(y = Interval.make 0.0 1.0) () =
  Box.make [ ("x", x); ("y", y) ]

let outcome ?(dfa = "pbe") ?(condition = "ec1") ?(status = Outcome.Verified)
    ?(box = box2 ()) () =
  {
    Outcome.dfa;
    condition;
    domain = box;
    regions = [ { Outcome.box; status; depth = 0 } ];
    stats = Outcome.zero_stats;
  }

let bytes_of = Serialize.to_string

(* verdict bytes modulo wall time, for comparing two independent solves *)
let strip_elapsed o =
  { o with Outcome.stats = { o.Outcome.stats with Outcome.elapsed = 0.0 } }

(* a fast real configuration for engine-level tests: coarse grid, small
   fuel, ambient faults inherited (decisions are deterministic) *)
let quick_verify ?(threshold = 0.3) ?(fuel = 25) () =
  {
    Verify.threshold;
    solver =
      {
        Icp.default_config with
        Icp.fuel;
        delta = 1e-2;
        contractor_rounds = 2;
        faults = Fault.of_env ();
      };
    deadline_seconds = None;
    workers = test_workers;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let engine_config ?(max_inflight = 8) ?fuel_quota ?default_deadline_ms
    ?kill_after ?io_faults ?verify cache_dir =
  {
    Engine.cache_dir;
    max_inflight;
    default_deadline_ms;
    fuel_quota;
    verify = (match verify with Some v -> v | None -> quick_verify ());
    io_faults;
    kill_after;
  }

(* submit one request and drain the engine, returning the non-progress
   responses in emission order *)
let run_one t client req =
  let acc = ref [] in
  (match Engine.submit t client req with
  | Some r -> acc := [ r ]
  | None ->
      Engine.drain t () ~on_response:(fun _ r ->
          match r with Protocol.Progress _ -> () | r -> acc := r :: !acc);
      acc := List.rev !acc);
  !acc

let verify_req ?(id = 1) ?(opts = Protocol.no_opts) ?(dfa = "pbe")
    ?(condition = "ec1") () =
  Protocol.Verify { id; dfa; condition; opts }

(* ---- verdict cache --------------------------------------------------- *)

let test_cache_roundtrip () =
  let dir = temp_dir () in
  let cache = Verdict_cache.open_dir dir in
  let o = outcome () in
  Verdict_cache.put cache ~config_hash:"c1" ~formula_hash:"f1" o;
  (match Verdict_cache.find cache ~config_hash:"c1" ~formula_hash:"f1"
           ~box:(box2 ())
   with
  | Some (Verdict_cache.Exact got) ->
      Alcotest.(check string) "cache hit byte-identical" (bytes_of o)
        (bytes_of got)
  | _ -> Alcotest.fail "expected exact hit");
  (* a different key misses *)
  check_true "other key misses"
    (Verdict_cache.find cache ~config_hash:"c2" ~formula_hash:"f1"
       ~box:(box2 ())
    = None);
  (* a cold handle reads the same bytes back from disk *)
  let cold = Verdict_cache.open_dir dir in
  match Verdict_cache.entries cold ~config_hash:"c1" ~formula_hash:"f1" with
  | [ got ] ->
      Alcotest.(check string) "persisted bytes" (bytes_of o) (bytes_of got)
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)

let interval_gen =
  QCheck2.Gen.(
    map2
      (fun a w -> Interval.make a (a +. w))
      (float_range (-4.0) 4.0) (float_range 0.25 4.0))

let sub_interval_gen i =
  QCheck2.Gen.(
    map2
      (fun lo hi ->
        let w = Interval.sup i -. Interval.inf i in
        Interval.make
          (Interval.inf i +. (lo *. 0.3 *. w))
          (Interval.sup i -. (hi *. 0.3 *. w)))
      (float_range 0.0 1.0) (float_range 0.0 1.0))

let qcheck_cache_hit_identity =
  qcheck ~count:20 "cache hit is byte-identical to what was stored"
    QCheck2.Gen.(map2 (fun x y -> (x, y)) interval_gen interval_gen)
    (fun (x, y) ->
      let dir = temp_dir () in
      let cache = Verdict_cache.open_dir dir in
      let o = outcome ~box:(box2 ~x ~y ()) () in
      Verdict_cache.put cache ~config_hash:"c" ~formula_hash:"f" o;
      let cold = Verdict_cache.open_dir dir in
      match
        Verdict_cache.find cold ~config_hash:"c" ~formula_hash:"f"
          ~box:(box2 ~x ~y ())
      with
      | Some (Verdict_cache.Exact got) -> bytes_of got = bytes_of o
      | _ -> false)

let qcheck_cache_subbox =
  qcheck ~count:20 "a box inside a cached verified region is verified"
    QCheck2.Gen.(
      bind (map2 (fun x y -> (x, y)) interval_gen interval_gen)
        (fun (x, y) ->
          map2
            (fun sx sy -> ((x, y), (sx, sy)))
            (sub_interval_gen x) (sub_interval_gen y)))
    (fun ((x, y), (sx, sy)) ->
      let dir = temp_dir () in
      let cache = Verdict_cache.open_dir dir in
      Verdict_cache.put cache ~config_hash:"c" ~formula_hash:"f"
        (outcome ~box:(box2 ~x ~y ()) ());
      let inner = box2 ~x:sx ~y:sy () in
      match
        Verdict_cache.find cache ~config_hash:"c" ~formula_hash:"f" ~box:inner
      with
      | Some (Verdict_cache.Exact got) | Some (Verdict_cache.Subsumed got) ->
          Box.equal got.Outcome.domain inner
          && List.for_all
               (fun r -> r.Outcome.status = Outcome.Verified)
               got.Outcome.regions
      | None -> false)

let test_cache_no_subbox_of_unverified () =
  let dir = temp_dir () in
  let cache = Verdict_cache.open_dir dir in
  Verdict_cache.put cache ~config_hash:"c" ~formula_hash:"f"
    (outcome ~status:Outcome.Timeout ());
  let inner = box2 ~x:(Interval.make 0.2 0.4) ~y:(Interval.make 0.2 0.4) () in
  check_true "timeout region subsumes nothing"
    (Verdict_cache.find cache ~config_hash:"c" ~formula_hash:"f" ~box:inner
    = None)

(* two handles on the same directory — the in-process model of two daemon
   processes sharing a cache: O_APPEND keeps whole lines intact, and both
   writers' entries survive *)
let test_cache_concurrent_writers () =
  let dir = temp_dir () in
  let a = Verdict_cache.open_dir dir in
  let b = Verdict_cache.open_dir dir in
  let o1 = outcome ~box:(box2 ~x:(Interval.make 0.0 1.0) ()) () in
  let o2 = outcome ~box:(box2 ~x:(Interval.make 2.0 3.0) ()) () in
  Verdict_cache.put a ~config_hash:"c" ~formula_hash:"f" o1;
  (* b opened before a's write; its append must not clobber a's entry *)
  Verdict_cache.put b ~config_hash:"c" ~formula_hash:"f" o2;
  let cold = Verdict_cache.open_dir dir in
  let entries =
    Verdict_cache.entries cold ~config_hash:"c" ~formula_hash:"f"
  in
  Alcotest.(check int) "both writers' entries survive" 2 (List.length entries);
  (match
     Verdict_cache.find cold ~config_hash:"c" ~formula_hash:"f"
       ~box:o1.Outcome.domain
   with
  | Some (Verdict_cache.Exact got) ->
      Alcotest.(check string) "writer A's verdict" (bytes_of o1) (bytes_of got)
  | _ -> Alcotest.fail "writer A's entry lost");
  (* re-committing an already-stored verdict is skipped, and a refresh
     folds the other writer's entry into this handle's view *)
  Verdict_cache.put a ~config_hash:"c" ~formula_hash:"f" o1;
  Verdict_cache.refresh a;
  Alcotest.(check int) "duplicate put skipped" 2
    (List.length (Verdict_cache.entries a ~config_hash:"c" ~formula_hash:"f"))

let io_plan ?(seed = 42) ?(rate = 1.0) kinds =
  Fault.make_io ~kinds ~seed ~rate ()

let test_cache_kill_mid_commit () =
  let dir = temp_dir () in
  (* commit one good entry first *)
  let clean = Verdict_cache.open_dir dir in
  let o1 = outcome ~box:(box2 ~x:(Interval.make 0.0 1.0) ()) () in
  Verdict_cache.put clean ~config_hash:"c" ~formula_hash:"f" o1;
  (* then a commit dies mid-write, leaving a torn tail *)
  let faulty =
    Verdict_cache.open_dir ~io_faults:(io_plan [ Fault.Short_write ]) dir
  in
  let o2 = outcome ~box:(box2 ~x:(Interval.make 2.0 3.0) ()) () in
  (match Verdict_cache.put faulty ~config_hash:"c" ~formula_hash:"f" o2 with
  | () -> Alcotest.fail "expected injected short write"
  | exception Fault.Io_injected (Fault.Short_write, _) -> ());
  let group = Verdict_cache.group_file clean ~config_hash:"c" ~formula_hash:"f" in
  check_true "the file has a torn tail"
    (Serialize.read_checkpoint group).Serialize.truncated;
  (* recovery: a fresh open repairs the tear; the good entry survives, the
     torn one is gone, and new commits land cleanly after it *)
  let recovered = Verdict_cache.open_dir dir in
  (match
     Verdict_cache.find recovered ~config_hash:"c" ~formula_hash:"f"
       ~box:o1.Outcome.domain
   with
  | Some (Verdict_cache.Exact got) ->
      Alcotest.(check string) "pre-crash verdict survives" (bytes_of o1)
        (bytes_of got)
  | _ -> Alcotest.fail "pre-crash verdict lost");
  check_true "torn entry is not served"
    (Verdict_cache.find recovered ~config_hash:"c" ~formula_hash:"f"
       ~box:o2.Outcome.domain
    = None);
  Verdict_cache.put recovered ~config_hash:"c" ~formula_hash:"f" o2;
  let ck = Serialize.read_checkpoint group in
  check_false "clean after repair + append" ck.Serialize.truncated;
  Alcotest.(check int) "both entries on disk" 2
    (List.length ck.Serialize.entries)

let test_cache_enospc_and_eintr () =
  let dir = temp_dir () in
  let o = outcome () in
  (* ENOSPC: the write fails cleanly, no bytes land *)
  let enospc = Verdict_cache.open_dir ~io_faults:(io_plan [ Fault.Enospc ]) dir in
  (match Verdict_cache.put enospc ~config_hash:"c" ~formula_hash:"f" o with
  | () -> Alcotest.fail "expected injected ENOSPC"
  | exception Fault.Io_injected (Fault.Enospc, _) -> ());
  let group =
    Verdict_cache.group_file enospc ~config_hash:"c" ~formula_hash:"f"
  in
  check_false "ENOSPC leaves no torn bytes"
    (Serialize.read_checkpoint group).Serialize.truncated;
  (* a permanent EINTR storm gives up after bounded retries — also clean *)
  let eintr = Verdict_cache.open_dir ~io_faults:(io_plan [ Fault.Eintr ]) dir in
  (match Verdict_cache.put eintr ~config_hash:"c" ~formula_hash:"f" o with
  | () -> Alcotest.fail "expected EINTR storm to give up"
  | exception Fault.Io_injected (Fault.Eintr, _) -> ());
  check_false "EINTR leaves no torn bytes"
    (Serialize.read_checkpoint group).Serialize.truncated;
  (* a transient EINTR (faulted attempt 0, clean attempt 1) is absorbed:
     hunt for a seed whose decisions have exactly that shape *)
  let line =
    Serialize.entry_to_string
      Serialize.{ outcome = o; paths = None; metrics_json = None }
  in
  let key = Fault.key_of_string (line ^ "\n") in
  let rec hunt seed =
    if seed > 100_000 then None
    else
      let plan = io_plan ~seed ~rate:0.7 [ Fault.Eintr ] in
      if
        Fault.io_decide plan ~attempt:0 ~key = Some Fault.Eintr
        && Fault.io_decide plan ~attempt:1 ~key = None
      then Some plan
      else hunt (seed + 1)
  in
  match hunt 0 with
  | None -> Alcotest.fail "no seed with the transient-EINTR shape"
  | Some plan ->
      let transient = Verdict_cache.open_dir ~io_faults:plan dir in
      Verdict_cache.put transient ~config_hash:"c" ~formula_hash:"f" o;
      (match
         Verdict_cache.find transient ~config_hash:"c" ~formula_hash:"f"
           ~box:o.Outcome.domain
       with
      | Some (Verdict_cache.Exact _) -> ()
      | _ -> Alcotest.fail "retried write not committed");
      check_false "retried write is clean"
        (Serialize.read_checkpoint group).Serialize.truncated

(* ---- wire protocol --------------------------------------------------- *)

let small_string_gen = QCheck2.Gen.(string_size ~gen:printable (int_range 0 12))
let nat_gen = QCheck2.Gen.(int_range 0 10_000)

let opts_gen =
  QCheck2.Gen.(
    map3
      (fun d f t -> Protocol.{ deadline_ms = d; fuel = f; threshold = t })
      (opt nat_gen) (opt nat_gen)
      (opt (float_range 1e-6 10.0)))

let request_gen =
  QCheck2.Gen.(
    oneof
      [
        return Protocol.Ping;
        map (fun id -> Protocol.Stats id) nat_gen;
        map (fun id -> Protocol.Cancel id) nat_gen;
        map3
          (fun id (dfa, condition) opts ->
            Protocol.Verify { id; dfa; condition; opts })
          nat_gen
          (map2 (fun a b -> (a, b)) small_string_gen small_string_gen)
          opts_gen;
        map3
          (fun id dfa opts -> Protocol.Campaign { id; dfa; opts })
          nat_gen small_string_gen opts_gen;
      ])

let qcheck_request_roundtrip =
  qcheck ~count:300 "protocol request roundtrip" request_gen (fun req ->
      Protocol.request_of_string (Protocol.request_to_string req) = req)

let response_gen =
  QCheck2.Gen.(
    oneof
      [
        return Protocol.Pong;
        map3
          (fun id label (boxes, solver_calls) ->
            Protocol.Progress { id; label; boxes; solver_calls })
          nat_gen small_string_gen
          (map2 (fun a b -> (a, b)) nat_gen nat_gen);
        map2
          (fun id count -> Protocol.Done { id; count })
          nat_gen nat_gen;
        map3
          (fun id inflight max_inflight ->
            Protocol.Overloaded { id; inflight; max_inflight })
          nat_gen nat_gen nat_gen;
        map2
          (fun id reason -> Protocol.Refused { id; reason })
          nat_gen small_string_gen;
        map2
          (fun id message -> Protocol.Failed { id; message })
          nat_gen small_string_gen;
        map2
          (fun id (h, m, s, p, q) ->
            Protocol.Stats_reply
              {
                id;
                stats =
                  Protocol.
                    {
                      cache_hits = h;
                      cache_misses = m;
                      solver_calls = s;
                      pending = p;
                      quota_remaining = q;
                    };
              })
          nat_gen
          (map3
             (fun h m (s, p, q) -> (h, m, s, p, q))
             nat_gen nat_gen
             (map3 (fun s p q -> (s, p, q)) nat_gen nat_gen (opt nat_gen)));
      ])

let qcheck_response_roundtrip =
  qcheck ~count:300 "protocol response roundtrip" response_gen (fun resp ->
      Protocol.response_of_string (Protocol.response_to_string resp) = resp)

let test_result_roundtrip () =
  let o = outcome () in
  let r =
    Protocol.Result { id = 7; cached = true; degraded = 1; partial = false;
                      outcome = o }
  in
  match Protocol.response_of_string (Protocol.response_to_string r) with
  | Protocol.Result got ->
      Alcotest.(check int) "id" 7 got.id;
      check_true "cached" got.cached;
      Alcotest.(check int) "degraded" 1 got.degraded;
      check_false "partial" got.partial;
      Alcotest.(check string) "outcome bytes" (bytes_of o)
        (bytes_of got.outcome)
  | _ -> Alcotest.fail "expected Result"

let test_frame_roundtrip () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ r; w ])
    (fun () ->
      let payloads = [ ""; "(ping)"; String.make 4096 'x' ] in
      List.iter (fun p -> Protocol.write_frame w p) payloads;
      List.iter
        (fun p ->
          match Protocol.read_frame r with
          | Some got -> Alcotest.(check string) "frame payload" p got
          | None -> Alcotest.fail "unexpected EOF")
        payloads;
      Unix.close w;
      check_true "EOF at frame boundary" (Protocol.read_frame r = None))

let test_frame_torn_write () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ r; w ])
    (fun () ->
      (match
         Protocol.write_frame ~io_faults:(io_plan [ Fault.Short_write ]) w
           "(ping)(ping)(ping)"
       with
      | () -> Alcotest.fail "expected injected short write"
      | exception Fault.Io_injected (Fault.Short_write, _) -> ());
      Unix.close w;
      (* the reader detects the tear instead of hanging or misparsing *)
      match Protocol.read_frame r with
      | exception Failure _ -> ()
      | None -> ()
      | Some _ -> Alcotest.fail "torn frame parsed as complete")

(* ---- engine: cache integration --------------------------------------- *)

(* the acceptance criterion: a repeated identical query is served from the
   cache with zero additional solver calls, byte-identically *)
let test_engine_cache_hit_zero_solver_calls () =
  with_fresh_instance @@ fun () ->
  let t = Engine.create (engine_config (temp_dir ())) in
  let client = Engine.new_client t in
  let first = run_one t client (verify_req ()) in
  let calls_after_first = Obs.Metrics.read c_solver_calls in
  check_true "fresh solve used the solver" (calls_after_first > 0);
  let second = run_one t client (verify_req ~id:2 ()) in
  Alcotest.(check int) "zero additional solver calls" calls_after_first
    (Obs.Metrics.read c_solver_calls);
  match (first, second) with
  | [ Protocol.Result r1 ], [ Protocol.Result r2 ] ->
      check_false "first from solver" r1.cached;
      check_true "second from cache" r2.cached;
      Alcotest.(check string) "byte-identical verdict"
        (bytes_of r1.outcome)
        (bytes_of r2.outcome);
      check_true "cache counters moved"
        (Obs.Metrics.read c_hits >= 1 && Obs.Metrics.read c_misses >= 1)
  | _ -> Alcotest.fail "expected two Result responses"

let test_engine_cache_survives_reopen () =
  with_fresh_instance @@ fun () ->
  let dir = temp_dir () in
  let t1 = Engine.create (engine_config dir) in
  let c1 = Engine.new_client t1 in
  let r1 = run_one t1 c1 (verify_req ()) in
  (* a second engine on the same cache dir — the restarted daemon *)
  let t2 = Engine.create (engine_config dir) in
  let c2 = Engine.new_client t2 in
  let r2 = run_one t2 c2 (verify_req ()) in
  match (r1, r2) with
  | [ Protocol.Result a ], [ Protocol.Result b ] ->
      check_true "served from cache after restart" b.cached;
      Alcotest.(check string) "byte-identical across restart"
        (bytes_of a.outcome)
        (bytes_of b.outcome)
  | _ -> Alcotest.fail "expected Result responses"

(* ---- engine: robustness ---------------------------------------------- *)

let test_engine_deadline_partial () =
  with_fresh_instance @@ fun () ->
  let verify = quick_verify ~threshold:0.02 ~fuel:300 () in
  let t = Engine.create (engine_config ~verify (temp_dir ())) in
  let client = Engine.new_client t in
  let opts = Protocol.{ no_opts with deadline_ms = Some 1 } in
  match run_one t client (verify_req ~opts ()) with
  | [ Protocol.Result r ] ->
      check_true "deadline-expired query is partial" r.partial;
      check_true "the remainder is painted timeout"
        (List.exists
           (fun reg -> reg.Outcome.status = Outcome.Timeout)
           r.outcome.Outcome.regions);
      (* partial maps are deadline-shaped and must not poison the cache *)
      (match run_one t client (verify_req ~id:2 ~opts ()) with
      | [ Protocol.Result r2 ] -> check_false "not cached" r2.cached
      | _ -> Alcotest.fail "expected a Result")
  | _ -> Alcotest.fail "expected a Result"

let test_engine_overload () =
  with_fresh_instance @@ fun () ->
  let t = Engine.create (engine_config ~max_inflight:1 (temp_dir ())) in
  let client = Engine.new_client t in
  check_true "first query admitted"
    (Engine.submit t client (verify_req ()) = None);
  (match Engine.submit t client (verify_req ~id:2 ()) with
  | Some (Protocol.Overloaded { id; inflight; max_inflight }) ->
      Alcotest.(check int) "rejected id" 2 id;
      Alcotest.(check int) "inflight" 1 inflight;
      Alcotest.(check int) "bound" 1 max_inflight
  | _ -> Alcotest.fail "expected Overloaded");
  (* the queue drains and frees the slot again *)
  Engine.drain t () ~on_response:(fun _ _ -> ());
  Alcotest.(check int) "idle again" 0 (Engine.pending t);
  check_true "admitted after drain"
    (Engine.submit t client (verify_req ~id:3 ()) = None);
  Engine.drain t () ~on_response:(fun _ _ -> ())

let test_engine_quota_degrades_then_refuses () =
  with_fresh_instance @@ fun () ->
  (* quota 40 against fuel 60: 2q >= fuel, so the first query lands on
     rung 1 (half fuel, double threshold) instead of being refused *)
  let t =
    Engine.create
      (engine_config ~fuel_quota:40
         ~verify:(quick_verify ~fuel:60 ())
         (temp_dir ()))
  in
  let client = Engine.new_client t in
  (match run_one t client (verify_req ()) with
  | [ Protocol.Result r ] ->
      Alcotest.(check int) "first query degraded to rung 1" 1
        r.degraded
  | _ -> Alcotest.fail "expected a Result");
  check_true "quota was charged"
    (match Engine.quota_remaining client with Some q -> q < 40 | None -> false);
  (* the run above burns far more than the quota; the next query falls
     below the last rung and is refused *)
  (match run_one t client (verify_req ~id:2 ~condition:"ec2" ()) with
  | [ Protocol.Refused { id; reason } ] ->
      Alcotest.(check int) "refused id" 2 id;
      check_true "reason names the quota" (contains_sub reason "quota")
  | _ -> Alcotest.fail "expected Refused");
  (* a fresh client has a fresh quota *)
  let client2 = Engine.new_client t in
  match run_one t client2 (verify_req ~id:3 ()) with
  | [ Protocol.Result r ] -> check_true "fresh client served" (r.degraded = 1)
  | _ -> Alcotest.fail "expected a Result for the fresh client"

let test_engine_quota_rung2 () =
  with_fresh_instance @@ fun () ->
  (* quota 20 against fuel 60: only 4q >= fuel holds — rung 2 *)
  let t =
    Engine.create
      (engine_config ~fuel_quota:20
         ~verify:(quick_verify ~fuel:60 ())
         (temp_dir ()))
  in
  let client = Engine.new_client t in
  match run_one t client (verify_req ()) with
  | [ Protocol.Result r ] ->
      Alcotest.(check int) "rung 2" 2 r.degraded
  | _ -> Alcotest.fail "expected a Result"

let test_engine_cancellation_partial () =
  with_fresh_instance @@ fun () ->
  let t = Engine.create (engine_config (temp_dir ())) in
  let client = Engine.new_client t in
  check_true "admitted" (Engine.submit t client (verify_req ~id:9 ()) = None);
  (* cancelled before it runs: the solve drains immediately into a
     whole-domain timeout paint — the partial verdict map *)
  Engine.cancel t client ~id:9;
  let acc = ref [] in
  Engine.drain t () ~on_response:(fun _ r -> acc := r :: !acc);
  match !acc with
  | [ Protocol.Result r ] ->
      check_true "cancelled query is partial" r.partial;
      check_true "verdict map is all timeout"
        (List.for_all
           (fun reg -> reg.Outcome.status = Outcome.Timeout)
           r.outcome.Outcome.regions)
  | _ -> Alcotest.fail "expected one Result"

let test_engine_campaign_stream () =
  with_fresh_instance @@ fun () ->
  let t = Engine.create (engine_config (temp_dir ())) in
  let client = Engine.new_client t in
  let rs =
    run_one t client (Protocol.Campaign { id = 4; dfa = "lyp"; opts = Protocol.no_opts })
  in
  let results, rest =
    List.partition (function Protocol.Result _ -> true | _ -> false) rs
  in
  (match rest with
  | [ Protocol.Done { id; count } ] ->
      Alcotest.(check int) "done id" 4 id;
      Alcotest.(check int) "count matches results" (List.length results) count;
      check_true "at least one pair" (count >= 1)
  | _ -> Alcotest.fail "expected a single Done terminator");
  (* re-running the campaign is served entirely from cache *)
  let calls = Obs.Metrics.read c_solver_calls in
  let rs2 =
    run_one t client (Protocol.Campaign { id = 5; dfa = "lyp"; opts = Protocol.no_opts })
  in
  Alcotest.(check int) "campaign re-run is solver-free" calls
    (Obs.Metrics.read c_solver_calls);
  check_true "all results cached"
    (List.for_all
       (function
         | Protocol.Result r -> r.cached
         | Protocol.Done _ -> true
         | _ -> false)
       rs2)

let test_engine_unknown_names () =
  with_fresh_instance @@ fun () ->
  let t = Engine.create (engine_config (temp_dir ())) in
  let client = Engine.new_client t in
  (match run_one t client (verify_req ~dfa:"nope" ()) with
  | [ Protocol.Failed { message; _ } ] ->
      check_true "names the functional" (contains_sub message "nope")
  | _ -> Alcotest.fail "expected Failed");
  match run_one t client (verify_req ~id:2 ~condition:"ec99" ()) with
  | [ Protocol.Failed { message; _ } ] ->
      check_true "names the condition" (contains_sub message "ec99")
  | _ -> Alcotest.fail "expected Failed"

let test_engine_journal_replay () =
  with_fresh_instance @@ fun () ->
  let dir = temp_dir () in
  let t1 = Engine.create (engine_config dir) in
  let c1 = Engine.new_client t1 in
  (* admitted and journaled, but the engine "crashes" before stepping *)
  check_true "admitted" (Engine.submit t1 c1 (verify_req ()) = None);
  let replays_before = Obs.Metrics.read c_replays in
  let t2 = Engine.create (engine_config dir) in
  Alcotest.(check int) "one journaled query replayed" (replays_before + 1)
    (Obs.Metrics.read c_replays);
  (* the replay warmed the cache: the same query is now solver-free *)
  let calls = Obs.Metrics.read c_solver_calls in
  let c2 = Engine.new_client t2 in
  (match run_one t2 c2 (verify_req ()) with
  | [ Protocol.Result r ] -> check_true "served from cache" r.cached
  | _ -> Alcotest.fail "expected a Result");
  Alcotest.(check int) "no new solver calls" calls
    (Obs.Metrics.read c_solver_calls);
  (* the journal was truncated: a third engine replays nothing *)
  let t3 = Engine.create (engine_config dir) in
  ignore (Engine.new_client t3);
  Alcotest.(check int) "journal reset after replay" (replays_before + 1)
    (Obs.Metrics.read c_replays)

let test_engine_ping_stats () =
  with_fresh_instance @@ fun () ->
  let t = Engine.create (engine_config ~fuel_quota:100 (temp_dir ())) in
  let client = Engine.new_client t in
  check_true "pong" (Engine.submit t client Protocol.Ping = Some Protocol.Pong);
  match Engine.submit t client (Protocol.Stats 3) with
  | Some (Protocol.Stats_reply { id; stats }) ->
      Alcotest.(check int) "stats id" 3 id;
      Alcotest.(check int) "pending" 0 stats.pending;
      check_true "quota reported" (stats.quota_remaining = Some 100)
  | _ -> Alcotest.fail "expected Stats_reply"

(* ---- daemon over a real socket --------------------------------------- *)

let test_daemon_in_process () =
  with_fresh_instance @@ fun () ->
  let dir = temp_dir () in
  let socket = Filename.concat dir "s.sock" in
  let stop = Atomic.make false in
  let cfg =
    {
      Daemon.engine = engine_config (Filename.concat dir "cache");
      socket_path = socket;
      progress_interval_ms = 0;
    }
  in
  let th = Thread.create (fun () -> Daemon.run ~stop:(fun () -> Atomic.get stop) cfg) () in
  let rec wait_ready n =
    if n = 0 then Alcotest.fail "daemon socket never came up";
    match Protocol.connect socket with
    | fd -> fd
    | exception Unix.Unix_error _ ->
        Thread.delay 0.05;
        wait_ready (n - 1)
  in
  let fd = wait_ready 100 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.set stop true;
      Thread.join th)
    (fun () ->
      check_true "ping over the socket"
        (Protocol.call fd Protocol.Ping = [ Protocol.Pong ]);
      let r1 =
        match Protocol.call fd (verify_req ()) with
        | [ Protocol.Result r ] ->
            check_false "fresh solve" r.cached;
            r.outcome
        | _ -> Alcotest.fail "expected a Result over the socket"
      in
      (* a second connection shares the daemon's cache *)
      let fd2 = wait_ready 1 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
        (fun () ->
          match Protocol.call fd2 (verify_req ~id:2 ()) with
          | [ Protocol.Result r ] ->
              check_true "cached for the second client" r.cached;
              Alcotest.(check string) "byte-identical across connections"
                (bytes_of r1)
                (bytes_of r.outcome)
          | _ -> Alcotest.fail "expected a Result on the second connection"))

(* ---- CLI daemon: SIGKILL, torn commit, restart ------------------------ *)

(* Process-level certification of the crash contract, driving the
   installed binary (supplied as XCV_CLI by the @service gate; the
   scenario is worker-count independent, so only the workers=4 pass runs
   it). Three daemons share one story:
   (a) a clean daemon solves a pair and is SIGKILLed after replying;
   (b) a daemon restarted on the same cache dir serves the identical
       bytes from the cache;
   (c) a daemon with XCV_SERVE_KILL_AFTER=1 commits, tears its own group
       file and SIGKILLs itself mid-write — the next daemon on that dir
       repairs the tail and still serves the committed verdict. *)
let test_cli_daemon_kill_restart () =
  match Sys.getenv_opt "XCV_CLI" with
  | None -> ()
  | Some _ when test_workers = 1 -> ()
  | Some cli ->
      let dir = temp_dir () in
      let path f = Filename.concat dir f in
      let serve_flags cache =
        [ "serve"; "--socket"; path "s.sock"; "--cache-dir"; path cache;
          "--fuel"; "25"; "--threshold"; "0.3"; "-j"; "2" ]
      in
      (* every spawned daemon is tracked so a failing assert cannot leak a
         live child into the zombie-free checks downstream *)
      let live = ref [] in
      let spawn ?(env = [||]) cache =
        (try Sys.remove (path "s.sock") with Sys_error _ -> ());
        let out =
          Unix.openfile (path "daemon.log")
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
            0o644
        in
        let pid =
          Unix.create_process_env cli
            (Array.of_list (cli :: serve_flags cache))
            (Array.append (Unix.environment ()) env)
            Unix.stdin out out
        in
        Unix.close out;
        live := pid :: !live;
        pid
      in
      let rec wait_ready n =
        if n = 0 then Alcotest.fail "daemon socket never came up";
        match Protocol.connect (path "s.sock") with
        | fd -> fd
        | exception Unix.Unix_error _ ->
            Unix.sleepf 0.05;
            wait_ready (n - 1)
      in
      let query fd = Protocol.call fd (verify_req ()) in
      let kill_and_reap pid =
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        live := List.filter (fun p -> p <> pid) !live
      in
      Fun.protect ~finally:(fun () -> List.iter kill_and_reap !live)
      @@ fun () ->
      (* (a) clean daemon: fresh solve *)
      let pid = spawn "cache" in
      let fd = wait_ready 200 in
      let r1 =
        match query fd with
        | [ Protocol.Result r ] -> r.outcome
        | _ -> Alcotest.fail "expected a Result from the clean daemon"
      in
      Unix.close fd;
      kill_and_reap pid;
      (* (b) restart on the same cache: cached, byte-identical *)
      let pid = spawn "cache" in
      let fd = wait_ready 200 in
      (match query fd with
      | [ Protocol.Result r ] ->
          check_true "restart serves from cache" r.cached;
          Alcotest.(check string) "byte-identical across SIGKILL restart"
            (bytes_of r1) (bytes_of r.outcome)
      | _ -> Alcotest.fail "expected a Result after restart");
      Unix.close fd;
      kill_and_reap pid;
      (* (c) kill-after-commit: the daemon tears its group file and dies *)
      let pid = spawn ~env:[| "XCV_SERVE_KILL_AFTER=1" |] "cache2" in
      let fd = wait_ready 200 in
      (match query fd with
      | _ -> Alcotest.fail "daemon should have died before replying"
      | exception (Failure _ | Unix.Unix_error _ | End_of_file) -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match Unix.waitpid [] pid with
      | _, Unix.WSIGNALED s when s = Sys.sigkill ->
          live := List.filter (fun p -> p <> pid) !live
      | _, st ->
          Alcotest.failf "expected SIGKILL, got %s"
            (Shard_supervisor.status_to_string st));
      let group =
        match
          Sys.readdir (path "cache2") |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
        with
        | [ f ] -> Filename.concat (path "cache2") f
        | fs -> Alcotest.failf "expected 1 group file, got %d" (List.length fs)
      in
      check_true "the kill left a torn tail on disk"
        (Serialize.read_checkpoint group).Serialize.truncated;
      (* the restarted daemon repairs the tail and serves the committed
         verdict — the same verdict bytes the clean daemon produced (its
         own solve, so wall time is stripped before comparing) *)
      let pid = spawn "cache2" in
      let fd = wait_ready 200 in
      (match query fd with
      | [ Protocol.Result r ] ->
          check_true "served from the repaired cache" r.cached;
          Alcotest.(check string) "byte-identical after torn-commit recovery"
            (bytes_of (strip_elapsed r1))
            (bytes_of (strip_elapsed r.outcome))
      | _ -> Alcotest.fail "expected a Result after recovery");
      Unix.close fd;
      kill_and_reap pid;
      check_false "repaired on open"
        (Serialize.read_checkpoint group).Serialize.truncated

(* ---- satellite regressions ------------------------------------------- *)

(* a checkpointed campaign that survived a kill must repair its torn tail
   before appending — otherwise the resumed pair hides behind the tear *)
let test_campaign_repairs_before_append () =
  let cfg = quick_verify () in
  let lyp = [ Registry.find "lyp" ] in
  let p = Filename.concat (temp_dir ()) "camp.ckpt" in
  let first = Verify.campaign ~config:cfg ~checkpoint:p lyp in
  let n = List.length first in
  check_true "campaign has pairs" (n >= 1);
  let clean = read_file p in
  (* simulate a kill mid-append: tear the last entry in half *)
  let torn_at = String.length clean - (String.length clean / 4) in
  let oc = open_out_bin p in
  output_string oc (String.sub clean 0 torn_at);
  close_out oc;
  check_true "tail is torn" (Serialize.read_checkpoint p).Serialize.truncated;
  let second = Verify.campaign ~config:cfg ~checkpoint:p ~resume:p lyp in
  Alcotest.(check int) "same pair count" n (List.length second);
  let ck = Serialize.read_checkpoint p in
  check_false "repaired before appending" ck.Serialize.truncated;
  Alcotest.(check int) "every pair on disk, none hidden" n
    (List.length ck.Serialize.entries);
  (* the torn pair is re-solved on resume, so wall time differs; every
     verdict-bearing byte must still match *)
  List.iter2
    (fun a b ->
      Alcotest.(check string) "identical verdict bytes"
        (bytes_of (strip_elapsed a))
        (bytes_of (strip_elapsed b)))
    first second

let sh_spawn code ~shard:_ ~resume:_ =
  Unix.create_process "/bin/sh" [| "/bin/sh"; "-c"; code |] Unix.stdin
    Unix.stdout Unix.stderr

let no_zombies () =
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
  | 0, _ -> false (* a child still running: also a leak *)
  | _ -> false

let test_supervisor_names_dead_shard () =
  (match
     Shard_supervisor.supervise ~count:2 ~max_restarts:1
       ~spawn:(fun ~shard ~resume ->
         sh_spawn (if shard = 1 then "exit 3" else "sleep 30") ~shard ~resume)
       ()
   with
  | Ok _ -> Alcotest.fail "expected the supervisor to give up"
  | Error msg ->
      check_true "the error names the dead shard"
        (contains_sub msg "shard 1 died");
      check_true "and points at its checkpoint"
        (contains_sub msg "checkpoint"));
  check_true "no zombies after give-up" (no_zombies ())

let test_supervisor_success_reaps () =
  (match
     Shard_supervisor.supervise ~count:2
       ~spawn:(fun ~shard:_ ~resume:_ -> sh_spawn "exit 0" ~shard:0 ~resume:false)
       ()
   with
  | Ok restarts -> Alcotest.(check int) "no restarts" 0 restarts
  | Error msg -> Alcotest.fail msg);
  check_true "no zombies after success" (no_zombies ())

let test_progress_relabel () =
  let path = Filename.temp_file "xcvprogress" ".log" in
  let oc = open_out path in
  let now = ref 0 in
  Obs.Clock.set (fun () -> !now);
  Fun.protect
    ~finally:(fun () ->
      Obs.Progress.disable ();
      Obs.Clock.reset ();
      close_out_noerr oc)
    (fun () ->
      Obs.Progress.enable ~interval_ns:1 ~out:oc ~label:"service"
        ~total_pairs:0 ();
      now := 10;
      Obs.Progress.tick ();
      (* the daemon retags the line with the query id it is solving *)
      Obs.Progress.relabel "query 42";
      now := 20;
      Obs.Progress.tick ();
      Obs.Progress.disable ());
  let log = read_file path in
  check_true "line carried the service label"
    (contains_sub log "[campaign service]");
  check_true "relabel retagged the line with the query id"
    (contains_sub log "[campaign query 42]")

let suite =
  [
    case "cache roundtrip" test_cache_roundtrip;
    qcheck_cache_hit_identity;
    qcheck_cache_subbox;
    case "no sub-box reuse of unverified regions"
      test_cache_no_subbox_of_unverified;
    case "concurrent writers" test_cache_concurrent_writers;
    case "kill mid-commit: torn tail repaired" test_cache_kill_mid_commit;
    case "ENOSPC and EINTR injection" test_cache_enospc_and_eintr;
    qcheck_request_roundtrip;
    qcheck_response_roundtrip;
    case "result response roundtrip" test_result_roundtrip;
    case "frame roundtrip" test_frame_roundtrip;
    case "torn frame detected" test_frame_torn_write;
    slow_case "cache hit: zero solver calls, identical bytes"
      test_engine_cache_hit_zero_solver_calls;
    slow_case "cache survives engine restart" test_engine_cache_survives_reopen;
    slow_case "deadline yields a partial verdict map"
      test_engine_deadline_partial;
    slow_case "admission control rejects past max-inflight"
      test_engine_overload;
    slow_case "quota degrades before refusing"
      test_engine_quota_degrades_then_refuses;
    slow_case "quota rung 2" test_engine_quota_rung2;
    slow_case "cancellation yields a partial verdict map"
      test_engine_cancellation_partial;
    slow_case "campaign streams results then done" test_engine_campaign_stream;
    case "unknown names fail cleanly" test_engine_unknown_names;
    slow_case "journal replay after crash" test_engine_journal_replay;
    case "ping and stats" test_engine_ping_stats;
    slow_case "daemon over a unix socket" test_daemon_in_process;
    slow_case "CLI daemon: SIGKILL, torn commit, restart byte-identity"
      test_cli_daemon_kill_restart;
    slow_case "campaign repairs torn checkpoint before appending"
      test_campaign_repairs_before_append;
    case "supervisor names the dead shard" test_supervisor_names_dead_shard;
    case "supervisor reaps on success" test_supervisor_success_reaps;
    case "progress relabel" test_progress_relabel;
  ]
