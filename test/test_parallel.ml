open Testutil

let test_sequential_fallback () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "workers=1 maps in order"
    (List.map (fun x -> x * 2) xs)
    (Pool.map ~workers:1 (fun x -> x * 2) xs)

let test_parallel_map_order () =
  let xs = List.init 500 Fun.id in
  Alcotest.(check (list int)) "workers=4 preserves order"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~workers:4 (fun x -> x * x) xs)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~workers:8 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Pool.map ~workers:8 (fun x -> x) [ 7 ])

let test_more_workers_than_items () =
  Alcotest.(check (list int)) "3 items, 16 workers" [ 2; 4; 6 ]
    (Pool.map ~workers:16 (fun x -> 2 * x) [ 1; 2; 3 ])

exception Boom

let test_exception_propagation () =
  Alcotest.check_raises "first failure re-raised" Boom (fun () ->
      ignore
        (Pool.map ~workers:4
           (fun x -> if x = 37 then raise Boom else x)
           (List.init 100 Fun.id)))

let test_map_result_collects_all () =
  (* unlike [map], every item is attempted and every failure reported *)
  let results =
    Pool.map_result ~workers:4
      (fun x -> if x mod 10 = 7 then raise Boom else x * 2)
      (List.init 50 Fun.id)
  in
  Alcotest.(check int) "one result per item" 50 (List.length results);
  let oks = List.filter_map (function Ok v -> Some v | Error _ -> None) results
  and errs = List.filter (function Error _ -> true | Ok _ -> false) results in
  Alcotest.(check int) "all five failures reported" 5 (List.length errs);
  Alcotest.(check (list int)) "successes in order, values intact"
    (List.filter_map
       (fun x -> if x mod 10 = 7 then None else Some (x * 2))
       (List.init 50 Fun.id))
    oks

let test_map_stops_claiming_after_failure () =
  (* After one worker fails, workers that observe the flag must not claim
     further items. With a failure on the first item and a barrier-free
     counter we can only assert an upper bound sanity check: strictly fewer
     than all items ran. *)
  let ran = Atomic.make 0 in
  (try
     ignore
       (Pool.map ~workers:2
          (fun x ->
            ignore (Atomic.fetch_and_add ran 1);
            if x = 0 then raise Boom;
            Domain.cpu_relax ();
            x)
          (List.init 10_000 Fun.id))
   with Boom -> ());
  check_true
    (Printf.sprintf "fail-fast skipped most of the list (ran %d)"
       (Atomic.get ran))
    (Atomic.get ran < 10_000)

let test_iter_effects () =
  let total = Atomic.make 0 in
  Pool.iter ~workers:4 (fun x -> ignore (Atomic.fetch_and_add total x))
    (List.init 101 Fun.id);
  Alcotest.(check int) "sum via iter" 5050 (Atomic.get total)

let test_default_workers () =
  check_true "at least one worker" (Pool.default_workers () >= 1)

let test_solver_calls_in_parallel () =
  (* Solver calls on prebuilt formulas are construction-free and safe to
     fan out; verify results match the sequential run. *)
  let x = Expr.var "x" in
  let atom = Form.le (Expr.sub (Expr.sqr x) (Expr.int 2)) in
  let boxes =
    List.init 8 (fun i ->
        let lo = float_of_int i in
        Box.make [ ("x", Interval.make lo (lo +. 1.0)) ])
  in
  let solve b = fst (Icp.solve Icp.default_config b [ atom ]) in
  let seq = List.map solve boxes in
  let par = Pool.map ~workers:4 solve boxes in
  List.iter2
    (fun a b ->
      let tag = function
        | Icp.Unsat -> 0
        | Icp.Sat _ -> 1
        | Icp.Timeout -> 2
      in
      Alcotest.(check int) "same verdict" (tag a) (tag b))
    seq par

(* ---- worklist scheduler -------------------------------------------- *)

let test_worklist_priority_order () =
  (* With one worker and tasks that spawn nothing, execution follows the
     comparator exactly: smallest first. *)
  let order = ref [] in
  let { Worklist.results; dropped } =
    Worklist.process ~workers:1 ~compare:Int.compare
      ~handle:(fun x ->
        order := x :: !order;
        (Some x, []))
      [ 5; 1; 4; 2; 3 ]
  in
  Alcotest.(check (list int)) "comparator order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order);
  Alcotest.(check int) "all processed" 5 (List.length results);
  Alcotest.(check (list int)) "nothing dropped" [] dropped

let test_worklist_spawns_children () =
  (* Count the nodes of a depth-bounded binary tree via spawned subtasks. *)
  let handle (depth, _id) =
    if depth >= 4 then (Some 1, [])
    else (Some 1, [ (depth + 1, 0); (depth + 1, 1) ])
  in
  List.iter
    (fun workers ->
      let { Worklist.results; dropped } =
        Worklist.process ~workers ~compare:(fun a b -> compare a b) ~handle
          [ (0, 0) ]
      in
      Alcotest.(check int)
        (Printf.sprintf "2^5 - 1 nodes at workers=%d" workers)
        31
        (List.length (List.filter_map Fun.id results));
      Alcotest.(check int) "no drops" 0 (List.length dropped))
    [ 1; 4 ]

let test_worklist_stop_drains () =
  (* A stop that trips after the third execution: the remaining initial
     tasks must come back in [dropped], not vanish. *)
  let executed = Atomic.make 0 in
  let { Worklist.results; dropped } =
    Worklist.process ~workers:1 ~compare:Int.compare
      ~stop:(fun () -> Atomic.get executed >= 3)
      ~handle:(fun x ->
        Atomic.incr executed;
        (Some x, []))
      [ 1; 2; 3; 4; 5; 6 ]
  in
  let done_ = List.filter_map Fun.id results in
  Alcotest.(check int) "stopped after three" 3 (List.length done_);
  Alcotest.(check (list int)) "rest drained in order" [ 4; 5; 6 ]
    (List.sort Int.compare dropped)

exception Kaboom

let test_worklist_exception_propagation () =
  Alcotest.check_raises "handler failure re-raised" Kaboom (fun () ->
      ignore
        (Worklist.process ~workers:4 ~compare:Int.compare
           ~handle:(fun x -> if x = 17 then raise Kaboom else (Some x, []))
           (List.init 64 Fun.id)))

let test_worklist_recover_isolates () =
  (* With a recover callback, a failing task becomes a result and every
     other task still runs — at any worker count. *)
  List.iter
    (fun workers ->
      let { Worklist.results; dropped } =
        Worklist.process ~workers ~compare:Int.compare
          ~recover:(fun x _ -> (-x, []))
          ~handle:(fun x -> if x mod 7 = 3 then raise Kaboom else (x, []))
          (List.init 64 Fun.id)
      in
      Alcotest.(check int)
        (Printf.sprintf "all tasks accounted for at workers=%d" workers)
        64 (List.length results);
      Alcotest.(check int) "nothing dropped" 0 (List.length dropped);
      Alcotest.(check int) "failures routed through recover" 9
        (List.length (List.filter (fun r -> r < 0) results)))
    [ 1; 4 ]

let test_worklist_recover_spawns_children () =
  (* Recovery can reinject subtasks (the verifier splits errored boxes). *)
  let { Worklist.results; _ } =
    Worklist.process ~workers:2 ~compare:Int.compare
      ~recover:(fun x _ -> (0, if x < 8 then [ x + 100 ] else []))
      ~handle:(fun x ->
        if x < 100 then raise Kaboom else (x, []))
      [ 1; 2 ]
  in
  Alcotest.(check int) "recovered children processed" 4 (List.length results);
  Alcotest.(check int) "children ran the normal path" 2
    (List.length (List.filter (fun r -> r > 100) results))

let test_worklist_recover_raising_aborts () =
  (* A recover that itself raises falls back to fail-fast. *)
  Alcotest.check_raises "recover failure re-raised" Kaboom (fun () ->
      ignore
        (Worklist.process ~workers:2 ~compare:Int.compare
           ~recover:(fun _ e -> raise e)
           ~handle:(fun x -> if x = 5 then raise Kaboom else (x, []))
           (List.init 16 Fun.id)))

(* ---- worker-count equivalence (QCheck) ------------------------------ *)

(* The scheduler's contract: the outcome is a pure function of the problem,
   not of the worker count. The atom is built once here, on the main domain
   (hash-consing is not thread-safe); the property then verifies random
   boxes at workers=1 and workers=4 and demands identical paint logs. *)
let circle_atom =
  Form.ge
    (Expr.sub
       (Expr.add (Expr.sqr (Expr.var "x")) (Expr.sqr (Expr.var "y")))
       (Expr.int 2))

let equiv_config workers =
  {
    Verify.threshold = 0.4;
    solver =
      { Icp.default_config with fuel = 60; delta = 1e-2; contractor_rounds = 2 };
    deadline_seconds = None;
    workers;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let region_fingerprint (r : Outcome.region) =
  let dims =
    String.concat ";"
      (List.map
         (fun v ->
           let iv = Box.get r.Outcome.box v in
           Printf.sprintf "%s=[%h,%h]" v (Interval.inf iv) (Interval.sup iv))
         (Box.vars r.Outcome.box))
  in
  Printf.sprintf "%d|%s|%s" r.Outcome.depth
    (Outcome.status_name r.Outcome.status)
    dims

let small_box_gen =
  QCheck2.Gen.(
    let dim =
      map2
        (fun lo w -> Interval.make lo (lo +. w))
        (float_range (-2.0) 1.0) (float_range 0.2 1.5)
    in
    map2 (fun ix iy -> Box.make [ ("x", ix); ("y", iy) ]) dim dim)

let verdicts workers box =
  let o =
    Verify.run_custom ~config:(equiv_config workers) ~dfa_label:"prop"
      ~condition_label:"circle" ~domain:box ~psi:circle_atom ()
  in
  List.map region_fingerprint o.Outcome.regions

let worklist_equivalence =
  qcheck ~count:40 "workers=1 and workers=4 paint identical logs"
    small_box_gen (fun box ->
      let seq = verdicts 1 box and par = verdicts 4 box in
      List.sort String.compare seq = List.sort String.compare par
      (* the path sort also makes the *order* deterministic *)
      && seq = par)

let suite =
  [
    case "sequential fallback" test_sequential_fallback;
    case "parallel map preserves order" test_parallel_map_order;
    case "empty and singleton" test_empty_and_singleton;
    case "more workers than items" test_more_workers_than_items;
    case "exception propagation" test_exception_propagation;
    case "map_result collects all failures" test_map_result_collects_all;
    case "map stops claiming after failure" test_map_stops_claiming_after_failure;
    case "iter side effects" test_iter_effects;
    case "default workers" test_default_workers;
    case "parallel solver calls" test_solver_calls_in_parallel;
    case "worklist priority order" test_worklist_priority_order;
    case "worklist spawns children" test_worklist_spawns_children;
    case "worklist stop drains remainder" test_worklist_stop_drains;
    case "worklist exception propagation" test_worklist_exception_propagation;
    case "worklist recover isolates failures" test_worklist_recover_isolates;
    case "worklist recover spawns children" test_worklist_recover_spawns_children;
    case "worklist raising recover aborts" test_worklist_recover_raising_aborts;
    worklist_equivalence;
  ]
