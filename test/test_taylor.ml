open Testutil
open Expr

let x = var "x"
let y = var "y"

let iv = Interval.make
let box2 (xl, xh) (yl, yh) = Box.make [ ("x", iv xl xh); ("y", iv yl yh) ]

let test_enclosure_tightens () =
  (* f = x - x^2 on a small box: the natural extension loses the x/x^2
     correlation; the mean value form recovers most of it. *)
  let f = sub x (sqr x) in
  let atom = Form.le f in
  let prep = Taylor.prepare ~vars:[ "x"; "y" ] atom in
  let small = Box.make [ ("x", iv 0.49 0.51) ] in
  let natural = Ieval.eval (Box.to_env small) f in
  let mvf = Taylor.enclosure prep small in
  check_true "mvf subset of natural" (Interval.subset mvf natural);
  check_true "strictly tighter" (Interval.width mvf < Interval.width natural);
  (* and still contains the true range [f(0.49), 0.25] *)
  check_true "contains f(0.49)" (Interval.mem (0.49 -. (0.49 *. 0.49)) mvf);
  check_true "contains 0.25 (max at x=1/2)" (Interval.mem 0.25 mvf)

let test_enclosure_contains_samples =
  qcheck "mvf enclosure contains sampled values"
    QCheck2.Gen.(
      tup4 expr_gen (float_range 0.0 1.0) (float_range 0.0 0.2)
        (float_range 0.0 1.0))
    (fun (e, lo, w, frac) ->
      let prep = Taylor.prepare ~vars:[ "x"; "y" ] (Form.le e) in
      let b = box2 (lo, lo +. w) (0.2, 0.4) in
      let i = Taylor.enclosure prep b in
      let xv = lo +. (frac *. w) in
      let v = Eval.eval [ ("x", xv); ("y", 0.3) ] e in
      Float.is_nan v || (not (Float.is_finite v)) || Interval.mem v i)

let test_contract_infeasible () =
  (* x - x^2 <= -1 is impossible on [0, 1] (min is 0 - 1 = ... actually
     f in [-0, 0.25]; f <= -1 infeasible); MVF on a small box proves it
     directly. *)
  let f = add (sub x (sqr x)) one in
  (* f >= 0 + 1 > 0 on [0,1]: constraint f <= 0 infeasible *)
  let prep = Taylor.prepare ~vars:[ "x" ] (Form.le f) in
  match Taylor.contract prep (Box.make [ ("x", iv 0.4 0.6) ]) with
  | Hc4.Infeasible -> ()
  | Hc4.Contracted _ -> Alcotest.fail "should prove infeasible"

let test_contract_newton_step () =
  (* Monotone constraint: 2x - 1 <= 0 on [0.4, 0.6] contracts to
     [0.4, ~0.5] via the linear solve. *)
  let f = sub (mul two x) one in
  let prep = Taylor.prepare ~vars:[ "x" ] (Form.le f) in
  match Taylor.contract prep (Box.make [ ("x", iv 0.4 0.6) ]) with
  | Hc4.Infeasible -> Alcotest.fail "feasible"
  | Hc4.Contracted b ->
      let xi = Box.get b "x" in
      check_true "upper bound near 0.5"
        (Interval.sup xi <= 0.5001 && Interval.sup xi >= 0.4999);
      check_close "lower bound kept" 0.4 (Interval.inf xi)

let test_piecewise_degrades () =
  (* undecided guard: the contractor must be a no-op, not unsound *)
  let pw = if_lt x (const 0.5) ~then_:(neg one) ~else_:one in
  let prep = Taylor.prepare ~vars:[ "x" ] (Form.le pw) in
  match Taylor.contract prep (Box.make [ ("x", iv 0.0 1.0) ]) with
  | Hc4.Infeasible -> Alcotest.fail "must not decide across the seam"
  | Hc4.Contracted b ->
      check_true "no contraction across undecided guard"
        (Interval.equal (Box.get b "x") (iv 0.0 1.0))

let test_soundness_random =
  qcheck "taylor contraction never loses solutions"
    QCheck2.Gen.(tup3 expr_gen (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (e, px, py) ->
      let atom = Form.le e in
      let prep = Taylor.prepare ~vars:[ "x"; "y" ] atom in
      let unit_box = box2 (0.0, 1.0) (0.0, 1.0) in
      let point = [ ("x", px); ("y", py) ] in
      (* certified premise, as in the HC4 soundness test *)
      let env = List.map (fun (v, q) -> (v, Interval.point q)) point in
      let i = Ieval.eval env e in
      if (not (Interval.is_empty i)) && Interval.certainly_lt i 0.0 then
        match Taylor.contract prep unit_box with
        | Hc4.Infeasible -> false
        | Hc4.Contracted b -> Box.mem point b
      else true)

let test_solver_integration () =
  (* Via the ICP pipeline: proving x - x^2 <= 0.26 valid on [0,1]
     (max of x - x^2 is 0.25; the 0.01 margin keeps the problem out of the
     delta-sat regime). Plain interval arithmetic needs splitting; with the
     MVF stage the budget shrinks. *)
  let f = sub (sub x (sqr x)) (const 0.26) in
  let atom = Form.gt f in
  (* not psi *)
  let prep = Taylor.prepare ~vars:[ "x"; "y" ] atom in
  let b = Box.make [ ("x", iv 0.0 1.0) ] in
  let cfg =
    { Icp.default_config with fuel = 10_000; delta = 1e-4; sample_check = false }
  in
  let v_plain, s_plain = Icp.solve cfg b [ atom ] in
  let v_taylor, s_taylor =
    Icp.solve ~contractors:[ Taylor.contractor prep ] cfg b [ atom ]
  in
  check_true "both unsat"
    (v_plain = Icp.Unsat && v_taylor = Icp.Unsat);
  check_true
    (Printf.sprintf "taylor needs fewer expansions (%d vs %d)"
       s_taylor.Icp.expansions s_plain.Icp.expansions)
    (s_taylor.Icp.expansions <= s_plain.Icp.expansions)

let test_verify_integration () =
  (* End to end through Algorithm 1 on a real pair. *)
  let config =
    {
      Verify.threshold = 0.7;
      solver =
        { Icp.default_config with fuel = 200; delta = 1e-3; contractor_rounds = 2 };
      deadline_seconds = Some 20.0;
      workers = 1;
      use_taylor = true;
      use_tape = true;
      split_heuristic = `Widest;
      retry = Verify.no_retry;
      jit = false;
      jit_cache = None;
    }
  in
  match Xcverifier.verify ~config ~dfa:"pbe" ~condition:"ec1" () with
  | Some o ->
      check_true "still classified correctly (OK or OK*)"
        (match Outcome.classify o with
        | Outcome.Full_verified | Outcome.Partial_verified -> true
        | _ -> false)
  | None -> Alcotest.fail "applicable"

let suite =
  [
    case "enclosure tightens on small boxes" test_enclosure_tightens;
    test_enclosure_contains_samples;
    case "proves infeasibility" test_contract_infeasible;
    case "newton-like contraction" test_contract_newton_step;
    case "degrades at undecided piecewise guards" test_piecewise_degrades;
    test_soundness_random;
    case "icp pipeline integration" test_solver_integration;
    case "verify integration (PBE EC1)" test_verify_integration;
  ]
