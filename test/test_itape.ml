open Testutil

(* The interval-tape VM (Itape / Hc4.contract_tape) and the soundness fixes
   that ride with it.

   The headline property is bit-identity: the compiled tape must reproduce
   the tree-walking HC4 revise operation for operation, so verdicts, boxes
   and paint logs are byte-identical at every worker count. The regression
   cases pin the zero-divisor, Lambert-W fallback, huge-argument trig and
   zero-progress split fixes, each of which failed before this change. *)

(* ------------------------------------------------------------------ *)
(* Generators *)

(* Intervals over a mix of magnitudes, biased toward the degenerate and
   zero-containing shapes the zero-divisor bug lives on. *)
let interval_gen =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun a b -> Interval.make (Float.min a b) (Float.max a b))
          (float_range (-3.0) 3.0) (float_range (-3.0) 3.0);
        return (Interval.point 0.0);
        map (fun x -> Interval.point x) (float_range (-2.0) 2.0);
        map (fun x -> Interval.make 0.0 x) (float_range 0.0 2.0);
      ])

let box_gen =
  QCheck2.Gen.(
    map2
      (fun ix iy -> Box.make [ ("x", ix); ("y", iy) ])
      interval_gen interval_gen)

let rel_gen =
  QCheck2.Gen.oneofl [ Form.Le0; Form.Lt0; Form.Ge0; Form.Gt0; Form.Eq0 ]

(* expr_gen plus piecewise roots, so the tape's guard-pruned branch walk is
   exercised (the plain generator never emits Piecewise). *)
let atom_expr_gen =
  QCheck2.Gen.(
    let pw =
      map3
        (fun g b d ->
          Expr.piecewise [ (Expr.guard_le g, b) ] d)
        expr_gen expr_gen expr_gen
    in
    let pw2 =
      map3
        (fun g1 (g2, b2) d ->
          Expr.piecewise
            [ (Expr.guard_lt g1, Expr.sin g1); (Expr.guard_le g2, b2) ]
            d)
        expr_gen
        (pair expr_gen expr_gen)
        expr_gen
    in
    frequency [ (4, expr_gen); (1, pw); (1, pw2) ])

let atom_gen =
  QCheck2.Gen.map2 (fun e rel -> Form.atom e rel) atom_expr_gen rel_gen

(* ------------------------------------------------------------------ *)
(* Equivalence: tape revise = tree revise, bit for bit *)

let same_result a b =
  match (a, b) with
  | Hc4.Infeasible, Hc4.Infeasible -> true
  | Hc4.Contracted b1, Hc4.Contracted b2 -> Box.equal b1 b2
  | _ -> false

let prop_revise_equiv =
  qcheck ~count:500 "tape revise = tree revise"
    QCheck2.Gen.(pair atom_gen box_gen)
    (fun (atom, box) ->
      let tape = Itape.compile ~vars:(Box.vars box) atom in
      same_result (Hc4.revise box atom) (Itape.revise tape box))

let prop_contract_equiv =
  qcheck ~count:200 "contract_tape = contract (result and sweeps)"
    QCheck2.Gen.(
      triple (list_size (int_range 1 3) atom_gen) box_gen (int_range 1 4))
    (fun (formula, box, rounds) ->
      let tree_c = Hc4.counters () and tape_c = Hc4.counters () in
      let compiled = Hc4.compile ~vars:(Box.vars box) formula in
      let tree = Hc4.contract ~counters:tree_c box formula ~rounds in
      let tape = Hc4.contract_tape ~counters:tape_c compiled box ~rounds in
      same_result tree tape
      && tree_c.Hc4.sweeps = tape_c.Hc4.sweeps
      && tape_c.Hc4.revise_calls <= tree_c.Hc4.revise_calls)

(* ------------------------------------------------------------------ *)
(* Soundness regression: multiplication by a zero factor *)

(* x * y = 0 with y = [0,0]: every x satisfies the atom, so revise must
   keep x untouched. Before div_rel, the Mul backward pass computed
   x's requirement as div [0,0] [0,0] = empty and declared the atom
   Infeasible — an unsound verdict (x = 1, y = 0 is a model). *)
let test_mul_by_zero_sound () =
  let atom = Form.eq (Expr.mul (Expr.var "x") (Expr.var "y")) in
  let box =
    Box.make [ ("x", Interval.make 1.0 2.0); ("y", Interval.point 0.0) ]
  in
  let check label = function
    | Hc4.Infeasible -> Alcotest.failf "%s: x*0 = 0 declared Infeasible" label
    | Hc4.Contracted b ->
        check_true (label ^ ": x untouched")
          (Interval.equal (Box.get b "x") (Interval.make 1.0 2.0));
        check_true (label ^ ": y untouched")
          (Interval.equal (Box.get b "y") (Interval.point 0.0))
  in
  check "tree" (Hc4.revise box atom);
  let tape = Itape.compile ~vars:(Box.vars box) atom in
  check "tape" (Itape.revise tape box)

(* x * y = 1 with y = [0,0] really is infeasible (0 not in [1,1]); the fix
   must not weaken that direction. *)
let test_mul_by_zero_still_prunes () =
  let atom =
    Form.eq (Expr.sub (Expr.mul (Expr.var "x") (Expr.var "y")) (Expr.int 1))
  in
  let box =
    Box.make [ ("x", Interval.make 1.0 2.0); ("y", Interval.point 0.0) ]
  in
  check_true "tree prunes x*0 = 1" (Hc4.revise box atom = Hc4.Infeasible);
  let tape = Itape.compile ~vars:(Box.vars box) atom in
  check_true "tape prunes x*0 = 1" (Itape.revise tape box = Hc4.Infeasible)

(* The relational division itself: when both arguments contain zero the
   projection { x | exists y in b, x*y in a } is the whole line, not the
   hull div computes; when only the divisor is zero it stays empty. *)
let test_div_rel () =
  let z = Interval.point 0.0 in
  check_true "0/0 relational = top"
    (Interval.equal (Interval.div_rel z z) Interval.top);
  check_true "straddling/straddling relational = top"
    (Interval.equal
       (Interval.div_rel (Interval.make (-1.0) 1.0) (Interval.make (-1.0) 1.0))
       Interval.top);
  check_true "nonzero/0 relational = empty"
    (Interval.is_empty (Interval.div_rel Interval.one z));
  check_true "0 not in numerator: div_rel agrees with div"
    (Interval.equal
       (Interval.div_rel (Interval.make 1.0 2.0) (Interval.make 1.0 4.0))
       (Interval.div (Interval.make 1.0 2.0) (Interval.make 1.0 4.0)))

(* ------------------------------------------------------------------ *)
(* Soundness regression: Lambert-W certified bounds under NaN *)

(* The kernel really does produce NaN just below the branch point on this
   libm — the seam the old code mapped to an upper bound of -1.0, turning
   an unknown value into an empty (infeasible) enclosure. The fallback must
   keep the enclosure valid: -1.0 is a sound *lower* bound (range of w0),
   but an unknown *upper* bound must widen to +inf. *)
let test_lambert_nan_fallback () =
  let i = Transcend.certified_w_bounds ~lo:0.5 ~hi:Float.nan in
  check_false "NaN upper certification keeps a nonempty enclosure"
    (Interval.is_empty i);
  check_close "lower bound kept" 0.5 (Interval.inf i);
  check_true "unknown upper bound widens to +inf"
    (Interval.sup i = Float.infinity);
  let j = Transcend.certified_w_bounds ~lo:Float.nan ~hi:2.0 in
  check_close "unknown lower bound falls back to -1 (range of w0)" (-1.0)
    (Interval.inf j);
  check_close "upper bound kept" 2.0 (Interval.sup j)

let test_lambert_kernel_nan_evidence () =
  (* Evidence that the seam is live: the float kernel NaNs immediately below
     the branch point -1/e, which is where certify_hi's probes can land. *)
  let branch_point = -.Float.exp (-1.0) in
  check_true "w0 NaNs just below the branch point"
    (Float.is_nan (Lambert.w0 (Float.pred branch_point)));
  (* and the interval operator stays sound across the branch point *)
  let i = Transcend.lambert_w (Interval.make (-1.0) 0.0) in
  check_false "lambert_w enclosure nonempty" (Interval.is_empty i);
  check_true "contains w0(0) = 0" (Interval.mem 0.0 i)

(* ------------------------------------------------------------------ *)
(* Soundness regression: trig of huge arguments *)

(* cos changes sign between these two adjacent floats near 2^42 (checked in
   the guard), so sin attains 1... wait, sin attains its extremum where cos
   crosses zero downward — the true maximum of sin on [a, b] is 1 up to the
   enclosure's rounding. The old endpoint-plus-slack estimate returned an
   upper bound of ~0.99999997, excluding the true maximum. The legacy
   implementation escapes to the trivially sound [-1, 1] beyond 2^20; the
   certified reduction keeps a nontrivial enclosure that still contains
   the maximum. *)
let test_trig_huge_argument_sound () =
  let a = 0x1.921fb5446f318p+42 in
  let b = Float.succ a in
  (* the deterministic witness: a true local maximum of sin inside [a,b] *)
  check_true "cos sign change brackets a maximum of sin"
    (Stdlib.cos a > 0.0 && Stdlib.cos b < 0.0);
  let s = Transcend.sin (Interval.make a b) in
  check_true "sin enclosure of huge args contains the true maximum 1"
    (Interval.mem 1.0 s);
  check_true "argument is beyond the legacy trust cutoff"
    (Interval.mag (Interval.make a b) > Transcend.Legacy.trig_arg_cutoff);
  check_true "certified reduction keeps the enclosure nontrivial"
    (Interval.width s < 2.0)

let test_trig_small_argument_still_tight () =
  (* The cutoff must not cost precision where the reconstruction is safe. *)
  let i = Transcend.sin (Interval.make 0.1 0.2) in
  check_true "still tight below the cutoff" (Interval.sup i < 0.21);
  check_true "sound" (Interval.mem (Stdlib.sin 0.15) i);
  let c = Transcend.cos (Interval.make 1000.0 1000.1) in
  check_true "cos tight at moderate magnitude" (Interval.width c < 0.2);
  check_true "cos sound at moderate magnitude"
    (Interval.mem (Stdlib.cos 1000.05) c)

(* ------------------------------------------------------------------ *)
(* Regression: zero-progress splits *)

let test_split_progress () =
  (* One float strictly inside: both children strictly narrower. *)
  let lo = 1.0 in
  let hi = Float.succ (Float.succ lo) in
  let l, r = Interval.split (Interval.make lo hi) in
  check_true "left strictly narrower" (Interval.sup l < hi);
  check_true "right strictly narrower" (Interval.inf r > lo);
  check_true "children cover" (Interval.sup l = Interval.inf r);
  (* No float strictly inside: split must refuse, not loop. *)
  (match Interval.split (Interval.make lo (Float.succ lo)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "split of an ulp-wide interval must raise");
  (* The midpoint nudge: a heavily skewed interval whose float midpoint
     collapses onto an endpoint must still make progress. *)
  let i = Interval.make (-1e308) 1e308 in
  let l, r = Interval.split i in
  check_true "huge interval splits"
    (Interval.width l < Interval.width i && Interval.width r < Interval.width i)

let prop_split_progress =
  qcheck ~count:300 "split always makes progress or raises"
    QCheck2.Gen.(
      map2
        (fun a b -> (Float.min a b, Float.max a b))
        finite_float_gen finite_float_gen)
    (fun (lo, hi) ->
      if not (lo < hi) then true
      else
        match Interval.split (Interval.make lo hi) with
        | l, r ->
            Interval.inf l = lo && Interval.sup r = hi
            && Interval.sup l = Interval.inf r
            && Interval.sup l > lo && Interval.sup l < hi
        | exception Invalid_argument _ ->
            (* only legal when no float lies strictly between *)
            Float.succ lo >= hi)

(* ------------------------------------------------------------------ *)
(* Differential oracle: tape vs tree vs point evaluation.

   Three independent evaluators of the same atom must agree: the compiled
   tape's forward pass (Itape.eval / status_on), the tree walk
   (Ieval.eval / Form.status_on), and point evaluation at the box midpoint
   (Eval.eval, with Dual.eval's value track as a fourth witness). Interval
   comparisons are exact — the tape is operation-identical to the tree —
   while the float-in-enclosure check allows point-evaluation roundoff. *)

let prop_status_eval_equiv =
  qcheck ~count:300 "tape eval/status_on = tree walk on random atoms"
    QCheck2.Gen.(pair atom_gen box_gen)
    (fun (atom, box) ->
      let tape = Itape.compile ~vars:(Box.vars box) atom in
      Interval.equal
        (Ieval.eval (Box.to_env box) atom.Form.expr)
        (Itape.eval tape box)
      && Itape.status_on tape box = Form.status_on box atom)

(* Random sub-box of a problem domain: shrink every dimension by two
   uniform cut points (kept ordered, so rounding cannot cross the ends). *)
let subbox_gen domain =
  QCheck2.Gen.(
    let shrink iv =
      map2
        (fun a b ->
          let a, b = if a <= b then (a, b) else (b, a) in
          let lo = Interval.inf iv and w = Interval.width iv in
          Interval.make (lo +. (a *. w)) (lo +. (b *. w)))
        (float_range 0.0 1.0) (float_range 0.0 1.0)
    in
    map
      (fun ivs -> Box.make (List.combine (Box.vars domain) ivs))
      (flatten_l
         (List.map (fun v -> shrink (Box.get domain v)) (Box.vars domain))))

let prop_registry_differential_oracle =
  let problems = Encoder.encode_all Registry.paper_five in
  qcheck ~count:60 "registry differential oracle: tape = tree = point"
    QCheck2.Gen.(
      oneofl problems >>= fun p ->
      map (fun b -> (p, b)) (subbox_gen p.Encoder.domain))
    (fun (p, box) ->
      let atom = p.Encoder.psi in
      let tape = Itape.compile ~vars:(Box.vars box) atom in
      let enc = Itape.eval tape box in
      let env = Box.midpoint box in
      let v = Eval.eval env atom.Form.expr in
      let dual = Dual.eval env ~wrt:(List.hd (Box.vars box)) atom.Form.expr in
      let slack = 1e-9 *. (1.0 +. Float.abs v) in
      (* the tape's enclosure and certainty test match the tree walk *)
      Interval.equal (Ieval.eval (Box.to_env box) atom.Form.expr) enc
      && Itape.status_on tape box = Form.status_on box atom
      (* dual's value track is the float evaluator, operation for operation *)
      && (dual.Dual.v = v || (Float.is_nan dual.Dual.v && Float.is_nan v))
      (* the midpoint value lies in the interval enclosure, up to point
         roundoff relative to its own magnitude *)
      && (Float.is_nan v
         || (v >= Interval.inf enc -. slack && v <= Interval.sup enc +. slack))
      (* a decided interval status agrees with the paper's float spot check,
         away from the decision boundary *)
      && (match Itape.status_on tape box with
         | `Unknown -> true
         | (`Holds | `Fails) when Float.is_nan v || Float.abs v <= slack ->
             true
         | `Holds -> Form.holds_at env atom
         | `Fails -> not (Form.holds_at env atom)))

(* ------------------------------------------------------------------ *)
(* Paint-log identity on a real campaign pair *)

let campaign_config ~use_tape ~workers =
  {
    Verify.threshold = 0.4;
    solver =
      { Icp.default_config with fuel = 60; delta = 1e-2; contractor_rounds = 2 };
    deadline_seconds = None;
    workers;
    use_taylor = false;
    use_tape;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let normalized o = Serialize.to_string { o with Outcome.stats = Outcome.zero_stats }

let test_paint_log_identity () =
  let run ~use_tape ~workers =
    match
      Verify.run_pair
        ~config:(campaign_config ~use_tape ~workers)
        (Registry.find "pbe") Conditions.Ec1
    with
    | Some o -> normalized o
    | None -> Alcotest.fail "PBE/EC1 must be applicable"
  in
  let reference = run ~use_tape:false ~workers:1 in
  Alcotest.(check string) "tape paint log byte-identical (workers=1)"
    reference
    (run ~use_tape:true ~workers:1);
  Alcotest.(check string) "tape paint log byte-identical (workers=4)"
    reference
    (run ~use_tape:true ~workers:4)

let suite =
  [
    prop_revise_equiv;
    prop_contract_equiv;
    case "mul by zero factor is not infeasible" test_mul_by_zero_sound;
    case "mul by zero still prunes real conflicts" test_mul_by_zero_still_prunes;
    case "relational division" test_div_rel;
    case "lambert NaN certification fallback" test_lambert_nan_fallback;
    case "lambert kernel NaN evidence" test_lambert_kernel_nan_evidence;
    case "trig of huge arguments is sound" test_trig_huge_argument_sound;
    case "trig below cutoff stays tight" test_trig_small_argument_still_tight;
    case "split progress" test_split_progress;
    prop_split_progress;
    prop_status_eval_equiv;
    prop_registry_differential_oracle;
    case "paint log identity tree vs tape" test_paint_log_identity;
  ]
