open Testutil

let rs_n = Dft_vars.rs_name
let s_n = Dft_vars.s_name
let a_n = Dft_vars.alpha_name

let test_metadata () =
  Alcotest.(check int) "seven conditions" 7 (List.length Conditions.all);
  List.iter
    (fun c ->
      check_true "name round-trips"
        (Conditions.of_name (Conditions.name c) = c))
    Conditions.all;
  Alcotest.check_raises "unknown name" Not_found (fun () ->
      ignore (Conditions.of_name "ec9"));
  Alcotest.(check int) "EC1 is equation 4" 4 (Conditions.equation Conditions.Ec1);
  Alcotest.(check int) "EC7 is equation 10" 10 (Conditions.equation Conditions.Ec7)

let test_applicability () =
  let pbe = Registry.find "pbe" and lyp = Registry.find "lyp" in
  let scan = Registry.find "scan" and vwn = Registry.find "vwn_rpa" in
  let am05 = Registry.find "am05" in
  check_true "LO applies to PBE" (Conditions.applies Conditions.Ec4 pbe);
  check_true "LO applies to SCAN" (Conditions.applies Conditions.Ec5 scan);
  check_false "LO not for LYP" (Conditions.applies Conditions.Ec4 lyp);
  check_false "LO not for AM05" (Conditions.applies Conditions.Ec5 am05);
  check_false "LO not for VWN" (Conditions.applies Conditions.Ec4 vwn);
  Alcotest.(check int) "PBE gets all 7" 7
    (List.length (Conditions.applicable pbe));
  Alcotest.(check int) "LYP gets 5" 5 (List.length (Conditions.applicable lyp));
  (* The paper's 29 applicable pairs over the five DFAs. *)
  Alcotest.(check int) "29 pairs" 29
    (Conditions.count_pairs Registry.paper_five)

(* The local-condition encodings must agree with direct numeric evaluation
   of the defining formulas (using dual-number derivatives as the
   independent oracle). *)
let check_encoding_at dfa cond env =
  match Conditions.local_condition cond dfa with
  | None -> ()
  | Some atom ->
      let encoded = Eval.eval env atom.Form.expr in
      let f_c = Enhancement.f_of (Option.get dfa.Registry.eps_c) in
      let rs = List.assoc rs_n env in
      let fc = Eval.eval env f_c in
      let dfc = (Dual.eval env ~wrt:rs_n f_c).Dual.d in
      let d2fc =
        let d1 = Deriv.diff ~wrt:rs_n f_c in
        (Dual.eval env ~wrt:rs_n d1).Dual.d
      in
      let reference =
        match cond with
        | Conditions.Ec1 -> fc
        | Conditions.Ec2 -> dfc
        | Conditions.Ec3 -> (rs *. d2fc) +. (2.0 *. dfc)
        | Conditions.Ec4 ->
            let fxc =
              Eval.eval env
                (Enhancement.f_of (Option.get (Registry.eps_xc dfa)))
            in
            2.27 -. fxc -. (rs *. dfc)
        | Conditions.Ec5 ->
            let fxc =
              Eval.eval env
                (Enhancement.f_of (Option.get (Registry.eps_xc dfa)))
            in
            2.27 -. fxc
        | Conditions.Ec6 ->
            let fc_inf =
              Eval.eval
                ((rs_n, Enhancement.rs_infinity)
                :: List.remove_assoc rs_n env)
                f_c
            in
            fc_inf -. fc -. (rs *. dfc)
        | Conditions.Ec7 -> fc -. (rs *. dfc)
      in
      check_close ~tol:1e-6
        (Printf.sprintf "%s/%s at rs=%g" dfa.Registry.label
           (Conditions.name cond) rs)
        reference encoded

let encoding_cases =
  let envs_2d =
    [
      [ (rs_n, 0.5); (s_n, 0.3) ];
      [ (rs_n, 1.0); (s_n, 2.0) ];
      [ (rs_n, 4.0); (s_n, 4.5) ];
    ]
  in
  let envs_3d =
    List.map (fun e -> (a_n, 0.7) :: e) envs_2d
    @ [ [ (rs_n, 1.5); (s_n, 1.0); (a_n, 2.5) ] ]
  in
  List.map
    (fun name ->
      let dfa = Registry.find name in
      let envs =
        match dfa.Registry.family with
        | Registry.Mgga -> envs_3d
        | _ -> envs_2d
      in
      case (Printf.sprintf "%s encodings match numeric oracle" name)
        (fun () ->
          List.iter
            (fun cond ->
              List.iter (fun env -> check_encoding_at dfa cond env) envs)
            (Conditions.applicable dfa)))
    [ "pbe"; "lyp"; "am05"; "vwn_rpa"; "scan" ]

let test_known_satisfaction () =
  (* Spot checks the paper's qualitative findings at concrete points. *)
  let holds dfa cond env =
    let atom = Option.get (Conditions.local_condition cond (Registry.find dfa)) in
    Form.holds_at env atom
  in
  (* LYP violates EC1 at high s, satisfies at low s *)
  check_true "LYP EC1 ok at s=0.5" (holds "lyp" Conditions.Ec1 [ (rs_n, 1.0); (s_n, 0.5) ]);
  check_false "LYP EC1 violated at s=3" (holds "lyp" Conditions.Ec1 [ (rs_n, 1.0); (s_n, 3.0) ]);
  (* PBE satisfies EC1 everywhere *)
  check_true "PBE EC1 at s=4" (holds "pbe" Conditions.Ec1 [ (rs_n, 0.5); (s_n, 4.0) ]);
  (* PBE violates the conjectured Tc bound (EC7) in the upper-left *)
  check_false "PBE EC7 violated at small rs, high s"
    (holds "pbe" Conditions.Ec7 [ (rs_n, 0.05); (s_n, 4.0) ]);
  check_true "PBE EC7 ok at large rs, small s"
    (holds "pbe" Conditions.Ec7 [ (rs_n, 4.0); (s_n, 0.2) ]);
  (* VWN RPA satisfies all its conditions at a generic point *)
  List.iter
    (fun cond ->
      check_true
        (Printf.sprintf "VWN %s at rs=2" (Conditions.name cond))
        (holds "vwn_rpa" cond [ (rs_n, 2.0) ]))
    (Conditions.applicable (Registry.find "vwn_rpa"))

let test_domain_spec () =
  let pbe_box = Domain_spec.box_for (Registry.find "pbe") in
  Alcotest.(check int) "PBE domain is 2D" 2 (Box.dim pbe_box);
  check_close "rs lower" 0.0001 (Interval.inf (Box.get pbe_box rs_n));
  check_close "s upper" 5.0 (Interval.sup (Box.get pbe_box s_n));
  let scan_box = Domain_spec.box_for (Registry.find "scan") in
  Alcotest.(check int) "SCAN domain is 3D" 3 (Box.dim scan_box);
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Domain_spec: unknown variable \"q\"") (fun () ->
      ignore (Domain_spec.box_for_vars [ "q" ]))

let test_encoder () =
  let pbe = Registry.find "pbe" in
  let p = Option.get (Encoder.encode pbe Conditions.Ec1) in
  check_true "psi is a >= atom" (p.Encoder.psi.Form.rel = Form.Ge0);
  (match p.Encoder.negated with
  | [ a ] -> check_true "negation is <" (a.Form.rel = Form.Lt0)
  | _ -> Alcotest.fail "single negated atom");
  check_true "operation count positive" (Encoder.operation_count p > 10);
  Alcotest.(check (option reject)) "EC4 not for LYP" None
    (Encoder.encode (Registry.find "lyp") Conditions.Ec4);
  Alcotest.(check int) "29 problems for paper five" 29
    (List.length (Encoder.encode_all Registry.paper_five))

let test_extra_conditions () =
  Alcotest.(check int) "two extension conditions" 2
    (List.length Extra_conditions.all);
  check_true "x1 round-trips"
    (Extra_conditions.of_name "x1" = Extra_conditions.X_nonpos);
  Alcotest.check_raises "unknown extra" Not_found (fun () ->
      ignore (Extra_conditions.of_name "x9"));
  (* applicability: exchange-carrying functionals only *)
  check_true "applies to PBE"
    (Extra_conditions.applies Extra_conditions.X_lo (Registry.find "pbe"));
  check_false "not to LYP"
    (Extra_conditions.applies Extra_conditions.X_lo (Registry.find "lyp"));
  Alcotest.(check int) "six exchange functionals" 6
    (List.length (Extra_conditions.exchange_functionals ()));
  (* encodings evaluate to the expected margins *)
  let pbe = Registry.find "pbe" in
  let x2 =
    Option.get (Extra_conditions.local_condition Extra_conditions.X_lo pbe)
  in
  let margin s =
    Eval.eval [ (rs_n, 1.0); (s_n, s) ] x2.Form.expr
  in
  (* PBE F_x(0) = 1 -> margin 0.804; F_x(inf) -> 1.804 -> margin -> 0+ *)
  check_close ~tol:1e-6 "margin at s=0" 0.804 (margin 0.0);
  check_true "margin stays positive" (margin 5.0 > 0.0);
  (* B88 violates X2 at large s *)
  let b88 = Registry.find "b88" in
  let x2b =
    Option.get (Extra_conditions.local_condition Extra_conditions.X_lo b88)
  in
  check_true "B88 margin positive at s=1"
    (Eval.eval [ (rs_n, 1.0); (s_n, 1.0) ] x2b.Form.expr > 0.0);
  check_true "B88 violates at s=4.5"
    (Eval.eval [ (rs_n, 1.0); (s_n, 4.5) ] x2b.Form.expr < 0.0)

let test_extra_verification () =
  let config =
    {
      Verify.threshold = 0.5;
      solver =
        { Icp.default_config with fuel = 200; delta = 1e-3; contractor_rounds = 2 };
      deadline_seconds = Some 10.0;
      workers = 1;
      use_taylor = false;
      use_tape = true;
      split_heuristic = `Widest;
      retry = Verify.no_retry;
      jit = false;
      jit_cache = None;
    }
  in
  let run dfa cond =
    let dfa = Registry.find dfa in
    let psi = Option.get (Extra_conditions.local_condition cond dfa) in
    Verify.run_custom ~config ~dfa_label:dfa.Registry.label
      ~condition_label:(Extra_conditions.name cond)
      ~domain:(Domain_spec.box_for dfa) ~psi ()
  in
  check_true "PBE passes the exchange LO bound"
    (Outcome.classify (run "pbe" Extra_conditions.X_lo)
    = Outcome.Full_verified);
  check_true "SCAN exchange non-positive"
    (Outcome.classify (run "scan" Extra_conditions.X_nonpos)
    = Outcome.Full_verified);
  let b88 = run "b88" Extra_conditions.X_lo in
  check_true "B88 refuted on the exchange LO bound"
    (Outcome.classify b88 = Outcome.Refuted);
  match Outcome.first_counterexample b88 with
  | Some m -> check_true "violation at high s" (List.assoc s_n m > 3.0)
  | None -> Alcotest.fail "counterexample expected"

let suite =
  [
    case "metadata" test_metadata;
    case "extension conditions (X1/X2)" test_extra_conditions;
    case "extension verification incl. B88 refutation" test_extra_verification;
    case "applicability (Table I dashes)" test_applicability;
    case "known satisfaction pattern" test_known_satisfaction;
    case "domain specification" test_domain_spec;
    case "encoder" test_encoder;
  ]
  @ encoding_cases
