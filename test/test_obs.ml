open Testutil

(* The observability layer: the snapshot/merge algebra (QCheck — merge must
   be exactly associative and commutative, since shard snapshots are folded
   in whatever order domains registered), the determinism contract (the
   deterministic section of a campaign snapshot is byte-identical at any
   worker count), and a golden file pinning the --metrics JSON layout under
   a frozen clock. *)

(* ------------------------------------------------------------------ *)
(* Generators: random snapshots over a small key pool, so merges collide *)

let assoc_gen keys value_gen =
  QCheck2.Gen.(
    map
      (List.filter_map (fun (k, ov) -> Option.map (fun v -> (k, v)) ov))
      (flatten_l
         (List.map (fun k -> map (fun v -> (k, v)) (opt value_gen)) keys)))

let counter_keys = [ "alpha"; "beta"; "gamma"; "icp.prunes" ]
let hist_keys = [ "h.depth"; "h.ratio" ]

let hist_value_gen =
  assoc_gen [ 0; 1; 2; 5; 10 ] QCheck2.Gen.(int_range 0 1000)
  |> QCheck2.Gen.map
       (List.map (fun (b, c) -> (b, c)))

let snapshot_gen =
  QCheck2.Gen.(
    map
      (fun ((c, h), (w, (g, (t, e)))) ->
        {
          Obs.Metrics.counters = c;
          histograms = h;
          wall_counters = w;
          gauges = g;
          timers = t;
          elapsed_ns = e;
        })
      (pair
         (pair
            (assoc_gen counter_keys (int_range 0 10000))
            (assoc_gen hist_keys hist_value_gen))
         (pair
            (assoc_gen [ "steals"; "pushed" ] (int_range 0 10000))
            (pair
               (assoc_gen [ "depth"; "frontier" ] (int_range 0 500))
               (pair
                  (assoc_gen [ "phase.solve"; "phase.split" ]
                     (int_range 0 1_000_000))
                  (int_range 0 1_000_000))))))

(* ------------------------------------------------------------------ *)
(* The merge algebra *)

let prop_merge_commutative =
  qcheck ~count:300 "merge is commutative"
    QCheck2.Gen.(pair snapshot_gen snapshot_gen)
    (fun (a, b) -> Obs.Metrics.merge a b = Obs.Metrics.merge b a)

let prop_merge_associative =
  qcheck ~count:300 "merge is associative"
    QCheck2.Gen.(triple snapshot_gen snapshot_gen snapshot_gen)
    (fun (a, b, c) ->
      Obs.Metrics.(merge a (merge b c) = merge (merge a b) c))

let prop_merge_identity =
  qcheck ~count:200 "empty snapshot is a merge identity" snapshot_gen
    (fun a ->
      Obs.Metrics.(merge a empty_snapshot = a && merge empty_snapshot a = a))

(* ------------------------------------------------------------------ *)
(* The same algebra over real shards of a real campaign *)

let det_config ?(retry = Verify.no_retry) workers =
  {
    Verify.threshold = 0.3;
    solver =
      {
        Icp.default_config with
        fuel = 400;
        delta = 1e-3;
        contractor_rounds = 2;
        (* the ambient XCV_FAULT_RATE hook must not leak into snapshots the
           tests compare byte for byte *)
        faults = None;
      };
    deadline_seconds = None;
    workers;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry;
    jit = false;
    jit_cache = None;
  }

(* Run pz81/EC1 under a private instance and hand back its snapshots. *)
let with_fresh_instance f =
  let prev = Obs.Metrics.install (Obs.Metrics.fresh ()) in
  Fun.protect
    ~finally:(fun () -> ignore (Obs.Metrics.install prev))
    f

let run_campaign workers =
  match
    Verify.run_pair ~config:(det_config workers) (Registry.find "pz81")
      Conditions.Ec1
  with
  | Some o -> o
  | None -> Alcotest.fail "pz81/EC1 must be applicable"

let test_shard_fold_order_irrelevant () =
  with_fresh_instance @@ fun () ->
  ignore (run_campaign test_workers);
  let shards = Obs.Metrics.shard_snapshots () in
  check_true "at least one shard" (List.length shards >= 1);
  let fold l =
    List.fold_left Obs.Metrics.merge Obs.Metrics.empty_snapshot l
  in
  check_true "forward and reverse folds agree"
    (fold shards = fold (List.rev shards));
  (* the full snapshot is the shard fold over the zero baseline: every
     shard-counted value must reappear verbatim *)
  let full = Obs.Metrics.snapshot () in
  let folded = fold shards in
  List.iter
    (fun (k, v) ->
      match List.assoc_opt k full.Obs.Metrics.counters with
      | Some v' ->
          Alcotest.(check int) (Printf.sprintf "counter %s" k) v v'
      | None -> Alcotest.failf "counter %s missing from snapshot" k)
    folded.Obs.Metrics.counters

(* ------------------------------------------------------------------ *)
(* Determinism contract: workers=1 vs workers=4 *)

let campaign_snapshot workers =
  with_fresh_instance @@ fun () ->
  ignore (run_campaign workers);
  Obs.Metrics.snapshot ()

let test_campaign_deterministic_section () =
  let s1 = campaign_snapshot 1 and s4 = campaign_snapshot 4 in
  Alcotest.(check string)
    "deterministic section byte-identical at workers=1 and workers=4"
    (Obs.Metrics.deterministic_json s1)
    (Obs.Metrics.deterministic_json s4);
  (* sanity: the campaign actually counted work *)
  check_true "boxes were counted"
    (match List.assoc_opt "verify.boxes" s1.Obs.Metrics.counters with
    | Some n -> n > 0
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Golden file: the full --metrics JSON under a frozen clock *)

let golden_path = "fixtures/metrics_golden.json"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A fixed custom problem (the trace suite's circle), so the golden file
   does not move when registry constants are tuned. Frozen clock: every
   timer and the elapsed field render as 0, leaving only work counts. *)
let golden_run () =
  let psi =
    Form.ge
      (Expr.sub
         (Expr.add (Expr.sqr (Expr.var "x")) (Expr.sqr (Expr.var "y")))
         (Expr.int 1))
  in
  let domain =
    Box.make
      [ ("x", Interval.make (-2.0) 2.0); ("y", Interval.make (-2.0) 2.0) ]
  in
  let config =
    { (det_config 1) with Verify.threshold = 1.0;
      solver = { (det_config 1).Verify.solver with fuel = 40; delta = 1e-2 } }
  in
  Obs.Clock.with_frozen 0 @@ fun () ->
  with_fresh_instance @@ fun () ->
  ignore
    (Verify.run_custom ~config ~dfa_label:"obs-golden" ~condition_label:"circle"
       ~domain ~psi ());
  Obs.Metrics.to_json (Obs.Metrics.snapshot ())

let test_metrics_golden () =
  let json = golden_run () in
  (* Regenerate with:
     XCV_WRITE_METRICS_GOLDEN=test/fixtures/metrics_golden.json \
       dune exec test/main.exe -- test obs *)
  match Sys.getenv_opt "XCV_WRITE_METRICS_GOLDEN" with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc json;
          output_char oc '\n');
      Printf.printf "golden metrics rewritten: %s\n" path
  | None ->
      let golden = String.trim (read_file golden_path) in
      Alcotest.(check string) "metrics JSON matches golden file" golden
        (String.trim json)

(* The golden run is also a fixed point: two runs in a row are identical
   (shard reuse, histogram state and zero baseline do not bleed between
   installed instances). *)
let test_golden_run_reproducible () =
  Alcotest.(check string) "golden run reproducible" (golden_run ())
    (golden_run ())

(* ------------------------------------------------------------------ *)
(* Path validation (the CLI's up-front --metrics/--checkpoint check) *)

let test_validate_output_path () =
  check_true "stdout sentinel accepted"
    (Obs.validate_output_path "-" = Ok ());
  check_true "plain file in cwd accepted"
    (Obs.validate_output_path "metrics_out.json" = Ok ());
  (match Obs.validate_output_path "/nonexistent-dir-xyz/m.json" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing parent directory must be rejected");
  match Obs.validate_output_path "." with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "a directory must be rejected as an output file"

let suite =
  [
    prop_merge_commutative;
    prop_merge_associative;
    prop_merge_identity;
    case "shard fold order irrelevant" test_shard_fold_order_irrelevant;
    case "campaign deterministic section at 1 and 4 workers"
      test_campaign_deterministic_section;
    case "metrics JSON golden file" test_metrics_golden;
    case "golden run reproducible" test_golden_run_reproducible;
    case "output path validation" test_validate_output_path;
  ]
