open Testutil

let fast_config =
  {
    Verify.threshold = 0.7;
    solver =
      { Icp.default_config with fuel = 400; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 20.0;
    workers = 1;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let run name cond = Xcverifier.verify ~config:fast_config ~dfa:name ~condition:cond ()

let test_vwn_ec1_verifies () =
  match run "vwn_rpa" "ec1" with
  | Some o ->
      check_true "fully verified" (Outcome.classify o = Outcome.Full_verified);
      let c = Outcome.coverage o in
      check_close "100% verified" 1.0 c.Outcome.verified
  | None -> Alcotest.fail "applicable"

let test_lyp_ec1_refuted () =
  match run "lyp" "ec1" with
  | Some o -> (
      check_true "refuted" (Outcome.classify o = Outcome.Refuted);
      match Outcome.first_counterexample o with
      | Some model ->
          (* the model must really violate the condition *)
          let atom =
            Option.get
              (Conditions.local_condition Conditions.Ec1 (Registry.find "lyp"))
          in
          check_false "model violates psi" (Form.holds_at model atom);
          (* and lie in the known violation region: high s *)
          check_true "violation at high s"
            (List.assoc Dft_vars.s_name model > 1.0)
      | None -> Alcotest.fail "must report a counterexample")
  | None -> Alcotest.fail "applicable"

let test_pbe_ec5_full () =
  match run "pbe" "ec5" with
  | Some o ->
      check_true "LO extension fully verified (paper: full check)"
        (Outcome.classify o = Outcome.Full_verified)
  | None -> Alcotest.fail "applicable"

let test_inapplicable () =
  Alcotest.(check (option reject)) "LYP has no LO bound" None (run "lyp" "ec4")

let test_outcome_bookkeeping () =
  match run "pbe" "ec7" with
  | Some o ->
      check_true "solver calls counted" (o.Outcome.stats.Outcome.solver_calls > 0);
      check_true "expansions counted"
        (o.Outcome.stats.Outcome.total_expansions
        >= o.Outcome.stats.Outcome.solver_calls);
      check_true "elapsed nonneg" (o.Outcome.stats.Outcome.elapsed >= 0.0);
      check_true "regions recorded" (o.Outcome.regions <> []);
      (* every region box must be inside the domain *)
      List.iter
        (fun (r : Outcome.region) ->
          List.iter
            (fun v ->
              check_true "region inside domain"
                (Interval.subset (Box.get r.Outcome.box v)
                   (Box.get o.Outcome.domain v)))
            (Box.vars r.Outcome.box))
        o.Outcome.regions
  | None -> Alcotest.fail "applicable"

let test_deadline_cutoff () =
  (* A zero deadline must stop immediately, recording timeouts. *)
  let config = { fast_config with deadline_seconds = Some 0.0 } in
  match Xcverifier.verify ~config ~dfa:"pbe" ~condition:"ec2" () with
  | Some o ->
      let c = Outcome.coverage o in
      check_true "nothing verified under zero budget" (c.Outcome.verified = 0.0);
      check_true "classified unknown" (Outcome.classify o = Outcome.Unknown)
  | None -> Alcotest.fail "applicable"

let test_threshold_controls_depth () =
  let coarse = { fast_config with threshold = 3.0 } in
  match Xcverifier.verify ~config:coarse ~dfa:"lyp" ~condition:"ec1" () with
  | Some o ->
      List.iter
        (fun (r : Outcome.region) ->
          check_true "no region below threshold depth"
            (r.Outcome.depth <= 2))
        o.Outcome.regions
  | None -> Alcotest.fail "applicable"

let test_rasterize () =
  match run "lyp" "ec1" with
  | Some o ->
      let grid =
        Outcome.rasterize o ~xdim:Dft_vars.rs_name ~ydim:Dft_vars.s_name
          ~nx:16 ~ny:16
      in
      Alcotest.(check int) "rows" 16 (Array.length grid);
      (* bottom rows (small s) verified, top rows violated *)
      let statuses_bottom = grid.(0) and statuses_top = grid.(15) in
      check_true "bottom has verified cells"
        (Array.exists (fun s -> s = Outcome.Verified) statuses_bottom);
      check_true "top has counterexample cells"
        (Array.exists
           (fun s -> match s with Outcome.Counterexample _ -> true | _ -> false)
           statuses_top)
  | None -> Alcotest.fail "applicable"

let test_render_smoke () =
  match run "lyp" "ec1" with
  | Some o ->
      let map = Render.outcome_map ~nx:24 ~ny:8 o in
      check_true "map mentions axes" (String.length map > 100);
      check_true "contains counterexample glyph" (String.contains map '#');
      check_true "contains verified glyph" (String.contains map '.')
  | None -> Alcotest.fail "applicable"

let test_classification_symbols () =
  Alcotest.(check string) "full" "OK"
    (Outcome.classification_symbol Outcome.Full_verified);
  Alcotest.(check string) "partial" "OK*"
    (Outcome.classification_symbol Outcome.Partial_verified);
  Alcotest.(check string) "unknown" "?"
    (Outcome.classification_symbol Outcome.Unknown);
  Alcotest.(check string) "refuted" "X"
    (Outcome.classification_symbol Outcome.Refuted)

let suite =
  [
    case "VWN RPA EC1 fully verifies" test_vwn_ec1_verifies;
    case "LYP EC1 refuted with valid model" test_lyp_ec1_refuted;
    case "PBE EC5 fully verifies" test_pbe_ec5_full;
    case "inapplicable pairs skipped" test_inapplicable;
    case "outcome bookkeeping" test_outcome_bookkeeping;
    case "deadline cutoff" test_deadline_cutoff;
    case "threshold bounds depth" test_threshold_controls_depth;
    case "rasterization" test_rasterize;
    case "render smoke" test_render_smoke;
    case "classification symbols" test_classification_symbols;
  ]
