open Testutil

(* The resilience machinery: deterministic fault injection (Fault), error
   isolation and bounded retry in the verifier, and checkpoint/resume at
   campaign level. The core contract under test: fault decisions are a pure
   function of (seed, box, attempt), so a faulted campaign is exactly as
   deterministic as a clean one — at every worker count. *)

let circle_atom =
  Form.ge
    (Expr.sub
       (Expr.add (Expr.sqr (Expr.var "x")) (Expr.sqr (Expr.var "y")))
       (Expr.int 2))

let domain =
  Box.make
    [ ("x", Interval.make (-2.0) 2.0); ("y", Interval.make (-2.0) 2.0) ]

let config ?faults ?(retry = Verify.no_retry) ?(workers = test_workers) () =
  {
    Verify.threshold = 0.4;
    solver =
      {
        Icp.default_config with
        fuel = 60;
        delta = 1e-2;
        contractor_rounds = 2;
        faults;
      };
    deadline_seconds = None;
    workers;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry;
    jit = false;
    jit_cache = None;
  }

let run ?faults ?retry ?workers () =
  Verify.run_custom
    ~config:(config ?faults ?retry ?workers ())
    ~dfa_label:"prop" ~condition_label:"circle" ~domain ~psi:circle_atom ()

let region_fingerprint (r : Outcome.region) =
  let dims =
    String.concat ";"
      (List.map
         (fun v ->
           let iv = Box.get r.Outcome.box v in
           Printf.sprintf "%s=[%h,%h]" v (Interval.inf iv) (Interval.sup iv))
         (Box.vars r.Outcome.box))
  in
  Printf.sprintf "%d|%s|%s" r.Outcome.depth
    (Outcome.status_name r.Outcome.status)
    dims

(* ---- the decision function ------------------------------------------ *)

let decide_is_pure =
  qcheck ~count:200 "decide is pure and rate-monotone"
    QCheck2.Gen.(
      triple (int_range 0 1_000_000) (int_range 0 5) (float_range 0.0 1.0))
    (fun (seed, attempt, rate) ->
      let key = Fault.key_of [ float_of_int seed; float_of_int attempt ] in
      let plan = Fault.make ~seed ~rate () in
      let d1 = Fault.decide plan ~attempt ~key
      and d2 = Fault.decide plan ~attempt ~key in
      let zero = Fault.make ~seed ~rate:0.0 () in
      let one = Fault.make ~seed ~rate:1.0 () in
      d1 = d2
      && Fault.decide zero ~attempt ~key = None
      && Fault.decide one ~attempt ~key <> None
      (* a faulted call at some rate stays faulted at every higher rate:
         the threshold draw is rate-independent *)
      && (d1 = None || Fault.decide one ~attempt ~key <> None))

let test_key_bit_exact () =
  let k1 = Fault.key_of [ 1.0; -0.0 ] and k2 = Fault.key_of [ 1.0; 0.0 ] in
  check_true "keys distinguish -0.0 from 0.0 (bit-exact)" (k1 <> k2);
  check_true "key is stable" (Fault.key_of [ 1.0; -0.0 ] = k1)

let test_env_hook () =
  Unix.putenv "XCV_FAULT_RATE" "0.25";
  Unix.putenv "XCV_FAULT_SEED" "7";
  (match Fault.of_env () with
  | Some p ->
      check_close "rate from env" 0.25 p.Fault.rate;
      check_true "seed from env" (p.Fault.seed = 7L)
  | None -> Alcotest.fail "of_env should pick up XCV_FAULT_RATE");
  Unix.putenv "XCV_FAULT_RATE" "junk";
  check_true "unparsable rate disables" (Fault.of_env () = None);
  Unix.putenv "XCV_FAULT_RATE" "0";
  check_true "zero rate disables" (Fault.of_env () = None)

(* ---- error isolation ------------------------------------------------- *)

(* With a Raise-only plan and no retries, a region is painted [error] iff
   the plan faults its box at attempt 0 — a fully deterministic oracle. *)
let test_error_paint_matches_plan () =
  let plan = Fault.make ~kinds:[ Fault.Raise ] ~seed:42 ~rate:0.4 () in
  let o = run ~faults:plan () in
  check_true "plan faults some box at this rate" (Outcome.has_error o);
  List.iter
    (fun (r : Outcome.region) ->
      let faulted =
        Fault.decide plan ~attempt:0 ~key:(Icp.fault_key r.Outcome.box)
        <> None
      in
      let painted_error =
        match r.Outcome.status with Outcome.Error _ -> true | _ -> false
      in
      check_true
        (Printf.sprintf "error paint == plan decision (%s)"
           (region_fingerprint r))
        (faulted = painted_error))
    o.Outcome.regions

(* Paint logs under fault injection are identical at 1 and 4 workers, and
   non-faulted boxes paint exactly as in the fault-free run. *)
let faulted_run_determinism =
  qcheck ~count:25 "faulted paints deterministic; non-faulted boxes clean"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let plan = Fault.make ~seed ~rate:0.3 () in
      let fp o = List.map region_fingerprint o.Outcome.regions in
      let faulted1 = run ~faults:plan ~workers:1 () in
      let faulted4 = run ~faults:plan ~workers:4 () in
      let clean = run ~workers:1 () in
      let clean_by_box =
        List.map
          (fun (r : Outcome.region) ->
            (Icp.fault_key r.Outcome.box,
             Outcome.status_name r.Outcome.status))
          clean.Outcome.regions
      in
      fp faulted1 = fp faulted4
      && List.for_all
           (fun (r : Outcome.region) ->
             let key = Icp.fault_key r.Outcome.box in
             if Fault.decide plan ~attempt:0 ~key <> None then true
             else
               match List.assoc_opt key clean_by_box with
               | None -> true (* box not reached by the clean run's tree *)
               | Some status ->
                   String.equal status
                     (Outcome.status_name r.Outcome.status))
           faulted1.Outcome.regions)

(* A NaN fault yields an uncertified model that float re-checking rejects:
   the box paints inconclusive, never crashes downstream consumers. *)
let test_nan_fault_is_inconclusive () =
  let plan = Fault.make ~kinds:[ Fault.Nan ] ~seed:1 ~rate:1.0 () in
  let o = run ~faults:plan () in
  check_true "has regions" (o.Outcome.regions <> []);
  List.iter
    (fun (r : Outcome.region) ->
      match r.Outcome.status with
      | Outcome.Inconclusive _ -> ()
      | s -> Alcotest.failf "expected inconclusive, got %s" (Outcome.status_name s))
    o.Outcome.regions;
  (* rendering and summaries must digest the NaN models *)
  ignore (Render.outcome_map o);
  ignore (Format.asprintf "%a" Outcome.pp_summary o)

(* ---- retry with fuel escalation -------------------------------------- *)

let test_retry_exhaustion () =
  (* rate 1.0: every attempt faults, so retries exhaust and every handled
     box paints error, with exactly max_retries retry events per box *)
  let plan = Fault.make ~kinds:[ Fault.Raise ] ~seed:3 ~rate:1.0 () in
  let retry = { Verify.max_retries = 2; fuel_growth = 2 } in
  let o = run ~faults:plan ~retry () in
  check_true "campaign completed" (o.Outcome.regions <> []);
  List.iter
    (fun (r : Outcome.region) ->
      match r.Outcome.status with
      | Outcome.Error _ -> ()
      | s -> Alcotest.failf "expected error, got %s" (Outcome.status_name s))
    o.Outcome.regions;
  Alcotest.(check int) "two retries per handled box"
    (2 * List.length o.Outcome.regions)
    o.Outcome.stats.Outcome.retries;
  Alcotest.(check int) "three attempts per handled box"
    (3 * List.length o.Outcome.regions)
    o.Outcome.stats.Outcome.solver_calls

let test_retry_rerolls_and_recovers () =
  (* Each retry re-rolls the fault dice: a region stays [error] iff the
     plan faults its box at every attempt 0..max_retries. *)
  let plan = Fault.make ~kinds:[ Fault.Raise ] ~seed:42 ~rate:0.4 () in
  let retry = { Verify.max_retries = 2; fuel_growth = 2 } in
  let no_retry_run = run ~faults:plan () in
  let retried = run ~faults:plan ~retry () in
  check_true "retries recorded" (retried.Outcome.stats.Outcome.retries > 0);
  let errors o =
    List.length
      (List.filter
         (fun (r : Outcome.region) ->
           match r.Outcome.status with Outcome.Error _ -> true | _ -> false)
         o.Outcome.regions)
  in
  check_true "retry can only reduce error paints"
    (errors retried <= errors no_retry_run);
  List.iter
    (fun (r : Outcome.region) ->
      let key = Icp.fault_key r.Outcome.box in
      let all_attempts_fault =
        List.for_all
          (fun attempt -> Fault.decide plan ~attempt ~key <> None)
          [ 0; 1; 2 ]
      in
      let painted_error =
        match r.Outcome.status with Outcome.Error _ -> true | _ -> false
      in
      check_true "error survives iff every attempt faults"
        (painted_error = all_attempts_fault))
    retried.Outcome.regions

let test_timeout_retry () =
  (* Timeout-only faults at rate 1.0 with one retry: both attempts time
     out, the box paints timeout (not error), one retry event per box. *)
  let plan = Fault.make ~kinds:[ Fault.Timeout ] ~seed:5 ~rate:1.0 () in
  let retry = { Verify.max_retries = 1; fuel_growth = 3 } in
  let o = run ~faults:plan ~retry () in
  List.iter
    (fun (r : Outcome.region) ->
      match r.Outcome.status with
      | Outcome.Timeout -> ()
      | s -> Alcotest.failf "expected timeout, got %s" (Outcome.status_name s))
    o.Outcome.regions;
  Alcotest.(check int) "one retry per handled box"
    (List.length o.Outcome.regions)
    o.Outcome.stats.Outcome.retries

let test_escalated_fuel_in_trace () =
  (* Retry events land in the trace at negative steps, before the box's
     final burst, and the trace fuel invariant still holds. *)
  let plan = Fault.make ~kinds:[ Fault.Timeout ] ~seed:5 ~rate:1.0 () in
  let retry = { Verify.max_retries = 1; fuel_growth = 3 } in
  let recorder = Trace.create () in
  let o =
    Verify.run_custom
      ~config:(config ~faults:plan ~retry ())
      ~recorder ~dfa_label:"prop" ~condition_label:"circle" ~domain
      ~psi:circle_atom ()
  in
  let events = Trace.events recorder in
  let retry_events =
    List.filter
      (fun ev ->
        match ev.Trace.kind with Trace.Retry _ -> true | _ -> false)
      events
  in
  Alcotest.(check int) "one retry event per region"
    (List.length o.Outcome.regions)
    (List.length retry_events);
  List.iter
    (fun ev -> check_true "retry steps are negative" (ev.Trace.step < 0))
    retry_events;
  Alcotest.(check int) "fuel invariant holds under retries"
    o.Outcome.stats.Outcome.total_expansions
    (Trace.total_fuel events)

(* ---- campaign-level supervision and checkpoint/resume ----------------- *)

let campaign_config =
  {
    Verify.threshold = 0.7;
    solver =
      { Icp.default_config with fuel = 80; delta = 1e-3; contractor_rounds = 2;
        faults = None };
    deadline_seconds = Some 10.0;
    workers = 1;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let lyp = [ Registry.find "lyp" ]

let outcome_fingerprint (o : Outcome.t) =
  Printf.sprintf "%s/%s:%s" o.Outcome.dfa o.Outcome.condition
    (String.concat "," (List.map region_fingerprint o.Outcome.regions))

let test_faulted_campaign_completes () =
  (* the acceptance shape: a campaign under 20% fault injection still
     completes every pair; errored boxes surface as error paints *)
  let faulted =
    {
      campaign_config with
      Verify.solver =
        {
          campaign_config.Verify.solver with
          Icp.faults = Some (Fault.make ~seed:11 ~rate:0.2 ());
        };
    }
  in
  let clean = Verify.campaign ~config:campaign_config lyp in
  let outcomes = Verify.campaign ~config:faulted lyp in
  Alcotest.(check int) "every pair has an outcome" (List.length clean)
    (List.length outcomes);
  check_true "fault injection at 20% leaves visible error paints"
    (List.exists Outcome.has_error outcomes)

let test_checkpoint_resume_reproduces () =
  let path = Filename.temp_file "xcv" ".campaign" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sys.remove path;
      let full = Verify.campaign ~config:campaign_config ~checkpoint:path lyp in
      check_true "campaign produced outcomes" (List.length full >= 2);
      (* simulate a SIGKILL after the first pair: keep the campaign header
         and one checkpoint line plus a torn tail *)
      let lines =
        String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all)
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (List.nth lines 0);
          Out_channel.output_string oc "\n";
          Out_channel.output_string oc (List.nth lines 1);
          Out_channel.output_string oc "\n(outcome 3 (dfa to");
      let resumed =
        Verify.campaign ~config:campaign_config ~resume:path lyp
      in
      Alcotest.(check (list string)) "resumed campaign repaints identically"
        (List.map outcome_fingerprint full)
        (List.map outcome_fingerprint resumed);
      Alcotest.(check string) "Table I identical after resume"
        (Report.table1 full) (Report.table1 resumed))

let test_parallel_campaign_supervised () =
  (* campaign_parallel with pair-level faults: completes all pairs too *)
  let faulted =
    {
      campaign_config with
      Verify.solver =
        {
          campaign_config.Verify.solver with
          Icp.faults = Some (Fault.make ~seed:11 ~rate:0.2 ());
        };
    }
  in
  let seq = Verify.campaign ~config:faulted lyp in
  let par = Verify.campaign_parallel ~config:faulted ~workers:test_workers lyp in
  Alcotest.(check (list string)) "parallel campaign paints identically"
    (List.map outcome_fingerprint seq)
    (List.map outcome_fingerprint par)

let suite =
  [
    decide_is_pure;
    case "fault key is bit-exact" test_key_bit_exact;
    case "environment hook" test_env_hook;
    case "error paints match the plan" test_error_paint_matches_plan;
    faulted_run_determinism;
    case "NaN faults paint inconclusive" test_nan_fault_is_inconclusive;
    case "retry exhaustion" test_retry_exhaustion;
    case "retry re-rolls and recovers" test_retry_rerolls_and_recovers;
    case "timeout faults are retried" test_timeout_retry;
    case "retry events in trace" test_escalated_fuel_in_trace;
    slow_case "faulted campaign completes" test_faulted_campaign_completes;
    slow_case "checkpoint resume reproduces" test_checkpoint_resume_reproduces;
    slow_case "parallel campaign supervised" test_parallel_campaign_supervised;
  ]
