open Testutil

(* Distributed campaigns: multi-process sharding with a deterministic,
   certified merge. The contract under test is byte-identity — a sharded
   run's merged paint log, Table I render and deterministic metrics
   section must equal the unsharded run's at any shard count and any
   per-shard worker count, including after a shard is SIGKILLed mid-run
   and restarted by the supervisor from its torn-tail checkpoint. *)

(* ---- the single-pair problem (the resilience suite's circle) --------- *)

let circle_atom =
  Form.ge
    (Expr.sub
       (Expr.add (Expr.sqr (Expr.var "x")) (Expr.sqr (Expr.var "y")))
       (Expr.int 2))

let domain =
  Box.make
    [ ("x", Interval.make (-2.0) 2.0); ("y", Interval.make (-2.0) 2.0) ]

(* faults pinned to None: the byte-compared runs must not pick up the
   ambient XCV_FAULT_RATE of the @shard/@faults gates (the campaign-level
   tests below DO inherit it, deliberately — fault decisions are box-keyed
   and therefore partition across shards like any other verdict). *)
let config ?(workers = 1) () =
  {
    Verify.threshold = 0.4;
    solver =
      {
        Icp.default_config with
        fuel = 60;
        delta = 1e-2;
        contractor_rounds = 2;
        faults = None;
      };
    deadline_seconds = None;
    workers;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let with_fresh_instance f =
  let prev = Obs.Metrics.install (Obs.Metrics.fresh ()) in
  Fun.protect
    ~finally:(fun () -> ignore (Obs.Metrics.install prev))
    f

let paint = Serialize.paint_to_string

(* One shard's slice of the circle pair, run under a private metrics
   instance — the in-memory analogue of one `campaign --shard i/N`. *)
let shard_slice ?config:(cfg = config ()) ~index ~count () =
  with_fresh_instance @@ fun () ->
  let o, paths =
    Verify.run_custom_sharded ~config:cfg
      ~shard:{ Verify.shard_index = index; shard_count = count }
      ~dfa_label:"prop" ~condition_label:"circle" ~domain ~psi:circle_atom ()
  in
  {
    Shard_merge.index;
    count;
    pairs = [ (o, paths) ];
    metrics = Obs.Metrics.snapshot ();
  }

let unsharded ?config:(cfg = config ()) () =
  with_fresh_instance @@ fun () ->
  let o, paths =
    Verify.run_custom_sharded ~config:cfg ~dfa_label:"prop"
      ~condition_label:"circle" ~domain ~psi:circle_atom ()
  in
  ((o, paths), Obs.Metrics.snapshot ())

(* ---- partition independence ------------------------------------------ *)

(* The tentpole contract at pair level: shards ∈ {1,2,4} × workers ∈ {1,4},
   merged paint bytes, Table I and deterministic metrics all equal the
   unsharded run's. *)
let test_partition_independent () =
  let (base_o, _), base_snap = unsharded () in
  let base_paint = paint base_o in
  let base_table = Report.table1 [ base_o ] in
  let base_det = Obs.Metrics.deterministic_json base_snap in
  check_true "the pair actually splits (so sharding is non-trivial)"
    (List.length base_o.Outcome.regions > 4);
  List.iter
    (fun count ->
      List.iter
        (fun workers ->
          let tag what =
            Printf.sprintf "%s at %d shards x %d workers" what count workers
          in
          let runs =
            List.init count (fun index ->
                shard_slice ~config:(config ~workers ()) ~index ~count ())
          in
          match Shard_merge.merge_runs runs with
          | Error m -> Alcotest.fail m
          | Ok m ->
              let mo = List.hd m.Shard_merge.outcomes in
              Alcotest.(check string) (tag "paint bytes") base_paint (paint mo);
              Alcotest.(check string) (tag "Table I") base_table
                (Report.table1 m.Shard_merge.outcomes);
              Alcotest.(check string)
                (tag "deterministic metrics")
                base_det
                (Obs.Metrics.deterministic_json m.Shard_merge.metrics))
        [ 1; 4 ])
    [ 1; 2; 4 ]

(* ---- the merge algebra (QCheck) -------------------------------------- *)

let slices4 = lazy (List.init 4 (fun index -> shard_slice ~index ~count:4 ()))

let pair_fp ((o : Outcome.t), paths) =
  paint o ^ "#"
  ^ String.concat "|"
      (List.map
         (fun p -> String.concat "." (List.map string_of_int p))
         paths)

let merged_fp runs =
  match Shard_merge.merge_runs runs with
  | Ok m ->
      paint (List.hd m.Shard_merge.outcomes)
      ^ Obs.Metrics.deterministic_json m.Shard_merge.metrics
  | Error e -> "error: " ^ e

(* merge_runs is insensitive to the order its shard runs arrive in. *)
let prop_merge_commutative =
  qcheck ~count:50 "shard merge is permutation-invariant"
    (QCheck2.Gen.shuffle_l [ 0; 1; 2; 3 ])
    (fun order ->
      let slices = Lazy.force slices4 in
      let shuffled = List.map (fun i -> List.nth slices i) order in
      String.equal (merged_fp shuffled) (merged_fp slices))

(* merge_pair is associative and commutative: any fold order over the four
   disjoint slices of the pair rebuilds the same full paint log. *)
let prop_merge_pair_associative =
  qcheck ~count:50 "pairwise region merge is fold-order independent"
    (QCheck2.Gen.shuffle_l [ 0; 1; 2; 3 ])
    (fun order ->
      let slices =
        List.map
          (fun (r : Shard_merge.shard_run) -> List.hd r.Shard_merge.pairs)
          (Lazy.force slices4)
      in
      let pick i = List.nth slices i in
      let left =
        List.fold_left
          (fun acc i -> Shard_merge.merge_pair acc (pick i))
          (pick (List.hd order))
          (List.tl order)
      in
      let a, b, c, d = (pick 0, pick 1, pick 2, pick 3) in
      let balanced =
        Shard_merge.merge_pair
          (Shard_merge.merge_pair a b)
          (Shard_merge.merge_pair c d)
      in
      String.equal (pair_fp left) (pair_fp balanced))

(* ---- in-memory merge validation -------------------------------------- *)

let expect_error ~sub runs =
  match Shard_merge.merge_runs runs with
  | Ok _ -> Alcotest.failf "merge accepted invalid input (wanted %S)" sub
  | Error m ->
      check_true (Printf.sprintf "error %S mentions %S" m sub)
        (contains_sub m sub)

let test_merge_rejects_bad_partitions () =
  let s0 = shard_slice ~index:0 ~count:2 ()
  and s1 = shard_slice ~index:1 ~count:2 () in
  expect_error ~sub:"overlapping shard prefixes"
    [ s0; { s1 with Shard_merge.index = 0 } ];
  expect_error ~sub:"shard count mismatch"
    [ s0; { s1 with Shard_merge.count = 3 } ];
  expect_error ~sub:"expected 2 shards" [ s0 ];
  expect_error ~sub:"different pair set" [ s0; { s1 with Shard_merge.pairs = [] } ];
  expect_error ~sub:"overlapping shard regions"
    [ s0; { s1 with Shard_merge.pairs = s0.Shard_merge.pairs } ]

(* ---- campaign-level fixtures (lyp, 2 shards, on disk) ----------------- *)

(* These inherit the ambient fault plan of the @shard gate: both the
   sharded and the unsharded side read the same XCV_FAULT_RATE, and the
   box-keyed fault decisions partition across shards exactly like
   verdicts, so byte-identity must survive a 5% fault rate. *)
let campaign_cfg =
  {
    Verify.threshold = 0.7;
    solver =
      {
        Icp.default_config with
        fuel = 60;
        delta = 1e-3;
        contractor_rounds = 2;
        faults = Fault.of_env ();
      };
    deadline_seconds = None;
    workers = test_workers;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let lyp = [ Registry.find "lyp" ]

let temp_dir () =
  let d = Filename.temp_file "xcvshard" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

(* Two shard checkpoints of the lyp campaign, written once and copied into
   scratch directories by the validation cases that mutate them. *)
let shard_files =
  lazy
    (let base = Filename.concat (temp_dir ()) "camp" in
     for i = 0 to 1 do
       ignore
         (Verify.shard_campaign ~config:campaign_cfg
            ~shard:{ Verify.shard_index = i; shard_count = 2 }
            ~checkpoint:(Shard_merge.shard_path base i)
            lyp)
     done;
     base)

let unsharded_campaign =
  lazy
    (with_fresh_instance @@ fun () ->
     let outcomes = Verify.campaign ~config:campaign_cfg lyp in
     (outcomes, Obs.Metrics.snapshot ()))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* Copy the fixture's shard files to a fresh base, optionally rewriting
   one of them, then return the new base for merge_files. *)
let scratch_base ?(mutate = fun _i s -> Some s) () =
  let base = Lazy.force shard_files in
  let dest = Filename.concat (temp_dir ()) "camp" in
  for i = 0 to 1 do
    match mutate i (read_file (Shard_merge.shard_path base i)) with
    | Some s -> write_file (Shard_merge.shard_path dest i) s
    | None -> ()
  done;
  dest

let test_merge_files_reproduces_unsharded () =
  let base = Lazy.force shard_files in
  match Shard_merge.merge_files ~base with
  | Error m -> Alcotest.fail m
  | Ok m ->
      let clean, clean_snap = Lazy.force unsharded_campaign in
      Alcotest.(check int) "pair count" (List.length clean)
        (List.length m.Shard_merge.outcomes);
      List.iter2
        (fun a b ->
          Alcotest.(check string)
            (Printf.sprintf "paint bytes of %s/%s" a.Outcome.dfa
               a.Outcome.condition)
            (paint a) (paint b))
        clean m.Shard_merge.outcomes;
      Alcotest.(check string) "Table I byte-identical" (Report.table1 clean)
        (Report.table1 m.Shard_merge.outcomes);
      Alcotest.(check string) "deterministic metrics byte-identical"
        (Obs.Metrics.deterministic_json clean_snap)
        (Obs.Metrics.deterministic_json m.Shard_merge.metrics)

let expect_files_error ~sub base =
  match Shard_merge.merge_files ~base with
  | Ok _ -> Alcotest.failf "merge_files accepted bad input (wanted %S)" sub
  | Error m ->
      check_true (Printf.sprintf "error %S mentions %S" m sub)
        (contains_sub m sub)

let rewrite_header f content =
  match String.index_opt content '\n' with
  | None -> Alcotest.fail "shard checkpoint has no header line"
  | Some nl ->
      let header = Serialize.header_of_string (String.sub content 0 nl) in
      Serialize.header_to_string (f header)
      ^ String.sub content nl (String.length content - nl)

let test_merge_files_negatives () =
  (* a missing shard file is named *)
  expect_files_error ~sub:"missing shard file"
    (scratch_base ~mutate:(fun i s -> if i = 1 then None else Some s) ());
  (* the torn-tail loader reports WHICH shard is truncated *)
  let torn =
    scratch_base
      ~mutate:(fun i s ->
        if i = 1 then Some (String.sub s 0 (String.length s - 40)) else Some s)
      ()
  in
  (match Shard_merge.merge_files ~base:torn with
  | Ok _ -> Alcotest.fail "merge accepted a truncated shard"
  | Error m ->
      check_true "truncation names shard 1" (contains_sub m "shard 1");
      check_true "truncation says torn tail" (contains_sub m "torn tail"));
  (* a checkpoint from a different campaign (formula hash) *)
  expect_files_error ~sub:"different campaign"
    (scratch_base
       ~mutate:(fun i s ->
         if i = 1 then
           Some
             (rewrite_header
                (fun h ->
                  { h with Serialize.formula_hash = Serialize.digest "other" })
                s)
         else Some s)
       ());
  (* a checkpoint from a different configuration *)
  expect_files_error ~sub:"different configuration"
    (scratch_base
       ~mutate:(fun i s ->
         if i = 1 then
           Some
             (rewrite_header
                (fun h ->
                  { h with Serialize.config_hash = Serialize.digest "other" })
                s)
         else Some s)
       ());
  (* overlapping prefixes: shard 0's file masquerading as shard 1 *)
  let base = Lazy.force shard_files in
  expect_files_error ~sub:"overlapping shard prefixes"
    (scratch_base
       ~mutate:(fun i _ ->
         Some (read_file (Shard_merge.shard_path base (if i = 1 then 0 else i))))
       ())

(* ---- the resume config-hash guard (regression) ------------------------ *)

let test_config_hash_scope () =
  let cfg = campaign_cfg in
  check_true "fuel is verdict-relevant"
    (Verify.config_hash cfg
    <> Verify.config_hash
         { cfg with Verify.solver = { cfg.Verify.solver with Icp.fuel = 61 } });
  check_true "threshold is verdict-relevant"
    (Verify.config_hash cfg
    <> Verify.config_hash { cfg with Verify.threshold = 0.71 });
  (* scheduling knobs must NOT invalidate a checkpoint: a campaign taken
     at -j4 resumes at -j1 *)
  check_true "workers are excluded"
    (Verify.config_hash cfg = Verify.config_hash { cfg with Verify.workers = 9 });
  check_true "deadline is excluded"
    (Verify.config_hash cfg
    = Verify.config_hash { cfg with Verify.deadline_seconds = Some 1.0 })

(* Serialize.load_checkpoint used to accept a checkpoint whose fuel config
   differed from the resuming run; the header guard must reject it before
   any solving happens. *)
let test_resume_rejects_config_change () =
  let cfg' =
    {
      campaign_cfg with
      Verify.solver = { campaign_cfg.Verify.solver with Icp.fuel = 61 };
    }
  in
  let header =
    {
      Serialize.config_hash = Verify.config_hash campaign_cfg;
      formula_hash = Verify.formula_hash (Encoder.encode_all lyp);
      shard = None;
    }
  in
  let path = Filename.temp_file "xcv" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.write_header path header;
      try
        ignore (Verify.campaign ~config:cfg' ~resume:path lyp);
        Alcotest.fail "resume under a different fuel config must be rejected"
      with Failure msg ->
        check_true "error names the configuration"
          (contains_sub msg "different configuration"))

let test_shard_resume_rejects_wrong_coords () =
  let base = Lazy.force shard_files in
  let dest = Filename.concat (temp_dir ()) "camp" in
  let ckpt = Shard_merge.shard_path dest 0 in
  try
    ignore
      (Verify.shard_campaign ~config:campaign_cfg
         ~shard:{ Verify.shard_index = 0; shard_count = 2 }
         ~checkpoint:ckpt
         ~resume:(Shard_merge.shard_path base 1)
         lyp);
    Alcotest.fail "resuming shard 0 from shard 1's checkpoint must fail"
  with Failure msg ->
    check_true "error names the shard coordinates"
      (contains_sub msg "shard")

(* ---- golden fixture --------------------------------------------------- *)

let golden_path = "fixtures/shard_merge_golden.json"

(* A frozen-clock 2-shard merge of a fixed pair (the obs suite's unit
   circle at a coarse threshold), pinning the merged paint log and the
   merged deterministic metrics section byte for byte. *)
let golden_json () =
  let psi =
    Form.ge
      (Expr.sub
         (Expr.add (Expr.sqr (Expr.var "x")) (Expr.sqr (Expr.var "y")))
         (Expr.int 1))
  in
  let cfg =
    {
      (config ()) with
      Verify.threshold = 1.0;
      solver = { (config ()).Verify.solver with Icp.fuel = 40 };
    }
  in
  Obs.Clock.with_frozen 0 @@ fun () ->
  let slice index =
    with_fresh_instance @@ fun () ->
    let o, paths =
      Verify.run_custom_sharded ~config:cfg
        ~shard:{ Verify.shard_index = index; shard_count = 2 }
        ~dfa_label:"shard-golden" ~condition_label:"circle" ~domain ~psi ()
    in
    {
      Shard_merge.index;
      count = 2;
      pairs = [ (o, paths) ];
      metrics = Obs.Metrics.snapshot ();
    }
  in
  match Shard_merge.merge_runs [ slice 0; slice 1 ] with
  | Error m -> Alcotest.fail m
  | Ok m ->
      let paint_lines =
        String.split_on_char '\n'
          (String.trim (paint (List.hd m.Shard_merge.outcomes)))
      in
      Serialize.Json.to_string
        (Serialize.Json.Obj
           [
             ("version", Serialize.Json.Num 1.0);
             ("shards", Serialize.Json.Num 2.0);
             ( "paint",
               Serialize.Json.Arr
                 (List.map (fun l -> Serialize.Json.Str l) paint_lines) );
             ( "deterministic",
               Serialize.Json.of_string
                 (Obs.Metrics.deterministic_json m.Shard_merge.metrics) );
           ])

let test_shard_merge_golden () =
  let json = golden_json () in
  (* Regenerate with:
     XCV_WRITE_SHARD_GOLDEN=test/fixtures/shard_merge_golden.json \
       dune exec test/main.exe -- test shard *)
  match Sys.getenv_opt "XCV_WRITE_SHARD_GOLDEN" with
  | Some path ->
      write_file path (json ^ "\n");
      Printf.printf "golden shard merge rewritten: %s\n" path
  | None ->
      let golden = String.trim (read_file golden_path) in
      Alcotest.(check string) "shard merge matches golden file" golden
        (String.trim json)

(* ---- kill a shard mid-run --------------------------------------------- *)

exception Killed

(* The in-process half of the acceptance scenario, at every scheduler
   setting: shard 0's first attempt dies right after its first pair's
   checkpoint entry is flushed (torn tail and all, exactly as a SIGKILL
   mid-append would leave it), the restart resumes from that checkpoint —
   reusing the completed pair's outcome AND its metrics snapshot — and
   the merge is still byte-identical to the unsharded campaign. *)
let test_torn_resume_merges_identically () =
  let base = Lazy.force shard_files in
  let dest = Filename.concat (temp_dir ()) "camp" in
  let ckpt0 = Shard_merge.shard_path dest 0 in
  (try
     ignore
       (Verify.shard_campaign ~config:campaign_cfg
          ~shard:{ Verify.shard_index = 0; shard_count = 2 }
          ~checkpoint:ckpt0
          ~on_pair:(fun _ ->
            let oc = open_out_gen [ Open_append; Open_binary ] 0o644 ckpt0 in
            output_string oc "(entry (outcome 3 (dfa to";
            close_out oc;
            raise Killed)
          lyp);
     Alcotest.fail "the first attempt should have died after one pair"
   with Killed -> ());
  ignore
    (Verify.shard_campaign ~config:campaign_cfg
       ~shard:{ Verify.shard_index = 0; shard_count = 2 }
       ~checkpoint:ckpt0 ~resume:ckpt0 lyp);
  write_file
    (Shard_merge.shard_path dest 1)
    (read_file (Shard_merge.shard_path base 1));
  match Shard_merge.merge_files ~base:dest with
  | Error m -> Alcotest.fail m
  | Ok m ->
      let clean, clean_snap = Lazy.force unsharded_campaign in
      Alcotest.(check string) "Table I byte-identical after torn resume"
        (Report.table1 clean)
        (Report.table1 m.Shard_merge.outcomes);
      List.iter2
        (fun a b -> Alcotest.(check string) "paint bytes" (paint a) (paint b))
        clean m.Shard_merge.outcomes;
      Alcotest.(check string)
        "deterministic metrics byte-identical after torn resume"
        (Obs.Metrics.deterministic_json clean_snap)
        (Obs.Metrics.deterministic_json m.Shard_merge.metrics)

(* ---- SIGKILL under the real supervisor (CLI end to end) --------------- *)

(* The process-level half, driving the installed binary: every shard of a
   `campaign --shards 2` run SIGKILLs itself after its first checkpointed
   pair (XCV_SHARD_KILL_AFTER, fresh attempts only), the CLI supervisor
   restarts both from their torn-tail checkpoints, and the merged --save
   archive and --metrics snapshot are byte-identical (paint log, Table I,
   deterministic section) to an unsharded CLI run with the same flags.
   OCaml 5 forbids Unix.fork once domains exist, so shards are spawned
   with create_process; the gate (test/dune) supplies the binary via
   XCV_CLI, and only the workers=2 pass runs it — the scenario is
   worker-count independent and the per-shard -j is pinned to 2. *)
let test_sigkill_under_supervisor () =
  match Sys.getenv_opt "XCV_CLI" with
  | None -> ()
  | Some _ when test_workers <> 2 -> ()
  | Some cli ->
      let dir = temp_dir () in
      let path name = Filename.concat dir name in
      let flags =
        [
          "campaign"; "--fuel"; "60"; "--threshold"; "0.7"; "--delta";
          "1e-3"; "-j"; "2";
        ]
      in
      let run_cli ?(env = [||]) args =
        let out =
          Unix.openfile (path "cli.log")
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
            0o644
        in
        let pid =
          Unix.create_process_env cli
            (Array.of_list (cli :: args))
            (Array.append (Unix.environment ()) env)
            Unix.stdin out out
        in
        Unix.close out;
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _, st ->
            Alcotest.failf "CLI %s: %s" (String.concat " " args)
              (Shard_supervisor.status_to_string st)
      in
      run_cli
        (flags
        @ [ "--checkpoint"; path "un.ckpt"; "--save"; path "un.save";
            "--metrics"; path "un.json" ]);
      run_cli
        ~env:[| "XCV_SHARD_KILL_AFTER=1" |]
        (flags
        @ [ "--shards"; "2"; "--checkpoint"; path "camp"; "--save";
            path "m.save"; "--metrics"; path "m.json" ]);
      check_true "the supervisor restarted killed shards"
        (contains_sub (read_file (path "cli.log")) "restarting shard");
      let clean = Serialize.load (path "un.save")
      and merged = Serialize.load (path "m.save") in
      Alcotest.(check int) "pair count" (List.length clean)
        (List.length merged);
      List.iter2
        (fun a b ->
          Alcotest.(check string)
            (Printf.sprintf "paint bytes of %s/%s" a.Outcome.dfa
               a.Outcome.condition)
            (paint a) (paint b))
        clean merged;
      Alcotest.(check string) "Table I byte-identical" (Report.table1 clean)
        (Report.table1 merged);
      let det p =
        Obs.Metrics.deterministic_json
          (Serialize.metrics_of_json_string (read_file p))
      in
      Alcotest.(check string) "deterministic metrics byte-identical"
        (det (path "un.json"))
        (det (path "m.json"))

let suite =
  [
    case "partition independence (pair level)" test_partition_independent;
    prop_merge_commutative;
    prop_merge_pair_associative;
    case "merge rejects bad partitions" test_merge_rejects_bad_partitions;
    slow_case "merged files reproduce the unsharded campaign"
      test_merge_files_reproduces_unsharded;
    slow_case "merge validation negatives" test_merge_files_negatives;
    case "config hash scope" test_config_hash_scope;
    case "resume rejects a config change" test_resume_rejects_config_change;
    slow_case "shard resume rejects wrong coordinates"
      test_shard_resume_rejects_wrong_coords;
    case "shard merge golden file" test_shard_merge_golden;
    slow_case "torn-tail resume merges identically"
      test_torn_resume_merges_identically;
    slow_case "SIGKILLed shards restart and merge identically (CLI)"
      test_sigkill_under_supervisor;
  ]
