open Testutil
open Expr

let x = var "x"
let y = var "y"

let test_c_structure () =
  let e = add (mul x (exp y)) (sqrt (add (sqr x) one)) in
  let c = Printer.c_to_string ~name:"f" ~vars:[ "x"; "y" ] e in
  check_true "function header" (contains_sub c "double f(double x, double y)");
  check_true "uses exp" (contains_sub c "exp(");
  check_true "uses sqrt" (contains_sub c "sqrt(");
  check_true "returns" (contains_sub c "return ");
  (* shared subterms become temporaries *)
  let shared = exp (mul x y) in
  let e2 = add (mul shared shared) shared in
  let c2 = Printer.c_to_string ~name:"g" ~vars:[ "x"; "y" ] e2 in
  check_true "temporary emitted" (contains_sub c2 "const double t1");
  (* piecewise becomes a ternary *)
  let pw = if_lt x y ~then_:(int 1) ~else_:(int 2) in
  let c3 = Printer.c_to_string ~name:"h" ~vars:[ "x"; "y" ] pw in
  check_true "ternary" (contains_sub c3 "?")

let have_cc =
  lazy (Sys.command "cc --version > /dev/null 2> /dev/null" = 0)

(* Compile [exprs] as q0..qN into one executable, evaluate each at the
   sample [points], and return the values row-major (expression-major). *)
let run_generated exprs points =
  let dir = Filename.temp_file "xcvgen" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let src = Filename.concat dir "gen.c" in
      let exe = Filename.concat dir "gen" in
      let oc = open_out src in
      output_string oc "#include <math.h>\n#include <stdio.h>\n";
      output_string oc Printer.c_prelude;
      List.iteri
        (fun i e ->
          output_string oc
            (Printer.c_to_string ~name:(Printf.sprintf "q%d" i)
               ~vars:[ "x"; "y" ] e))
        exprs;
      output_string oc "typedef double (*xcv_fn2)(double, double);\n";
      output_string oc "static const xcv_fn2 qs[] = {";
      List.iteri
        (fun i _ -> output_string oc (Printf.sprintf " q%d," i))
        exprs;
      output_string oc " };\n";
      let pts =
        String.concat ", "
          (List.map (fun (x, y) -> Printf.sprintf "{%.17g, %.17g}" x y) points)
      in
      output_string oc
        (Printf.sprintf
           "int main(void) {\n\
           \  double pts[][2] = { %s };\n\
           \  for (unsigned j = 0; j < sizeof qs / sizeof *qs; j++)\n\
           \    for (unsigned i = 0; i < sizeof pts / sizeof *pts; i++)\n\
           \      printf(\"%%.17g\\n\", qs[j](pts[i][0], pts[i][1]));\n\
           \  return 0;\n}\n"
           pts);
      close_out oc;
      let cmd =
        Printf.sprintf "cc -O2 -ffp-contract=off -o %s %s -lm 2>/dev/null" exe
          src
      in
      Alcotest.(check int) "cc succeeds" 0 (Sys.command cmd);
      let ic = Unix.open_process_in exe in
      let lines =
        List.init
          (List.length exprs * List.length points)
          (fun _ -> input_line ic)
      in
      ignore (Unix.close_process_in ic);
      List.map (fun l -> float_of_string (String.trim l)) lines)

(* One expression per constructor and per pp_c emission path, so the
   differential check below covers the whole surface even if the random
   generator happens to skip a shape. *)
let coverage_cases =
  let open Expr in
  let x = var "x" and y = var "y" in
  [
    int 3;
    rat (-7) 3;
    const 1.25e-3;
    x;
    add_n [ x; y; int 1 ];
    mul_n [ x; y; const 0.5 ];
    sqr x;
    inv (add (sqr y) one);
    powi x 7;
    powi x (-3);
    powr (abs x) (Rat.make 4 3);
    powr (abs y) (Rat.make (-1) 2);
    sqrt (abs x);
    cbrt (abs y);
    pow (abs x) y;
    exp x;
    log (abs y);
    sin x;
    cos y;
    tanh x;
    atan y;
    abs x;
    lambert_w (add (abs x) (const 0.1));
    lambert_w (const (-0.3));
    if_lt x y ~then_:x ~else_:y;
    piecewise [ (guard_le (sub x y), exp x) ] (cos y);
  ]

(* Random expressions reaching every constructor. Domains are restricted
   only where the C emission is deliberately defined more widely than the
   float evaluator (cbrt of a negative is finite in C, NaN through
   [Float.pow]) — everywhere else a one-sided NaN must count as a real
   mismatch. *)
let full_expr_gen =
  let open QCheck2.Gen in
  let rat_g = map2 Rat.make (int_range (-9) 9) (int_range 1 5) in
  sized
    (fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map Expr.const (float_range (-3.0) 3.0);
               map Expr.num rat_g;
               map Expr.int (int_range (-4) 4);
               return (Expr.var "x");
               return (Expr.var "y");
             ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map2 Expr.add sub sub;
               map2 Expr.sub sub sub;
               map2 Expr.mul sub sub;
               map2 Expr.div sub sub;
               map2 Expr.powi sub (int_range (-3) 3);
               map2 (fun e r -> Expr.powr (Expr.abs e) r) sub rat_g;
               map2 (fun a b -> Expr.pow (Expr.abs a) b) sub sub;
               map (fun e -> Expr.sqrt (Expr.abs e)) sub;
               map (fun e -> Expr.cbrt (Expr.abs e)) sub;
               map (fun e -> Expr.exp (Expr.mul (Expr.const 0.25) e)) sub;
               map (fun e -> Expr.log (Expr.add (Expr.abs e) (Expr.const 0.5))) sub;
               map Expr.sin sub;
               map Expr.cos sub;
               map Expr.tanh sub;
               map Expr.atan sub;
               map Expr.abs sub;
               map
                 (fun e ->
                   Expr.lambert_w (Expr.add (Expr.abs e) (Expr.const 0.1)))
                 sub;
               map3
                 (fun c t e -> Expr.if_lt c (Expr.var "y") ~then_:t ~else_:e)
                 sub sub sub;
             ]))

(* Agreement modulo rounding noise: the emitted C replays the evaluator's
   operation sequence, so the only legitimate divergences are ulp-level
   (cbrt vs pow 1/3, the Lambert iteration) — a hybrid tolerance absorbs
   them. Values past 1e15 of the same sign count as agreeing: a single-ulp
   divergence can land one side on the far slope of an overflow. *)
let agree expected actual =
  match (Float.is_nan expected, Float.is_nan actual) with
  | true, true -> true
  | true, false | false, true -> false
  | false, false ->
      (Float.abs expected > 1e15 && Float.abs actual > 1e15
      && expected *. actual > 0.0)
      || Float.abs (expected -. actual)
         <= 1e-6 *. (1.0 +. Float.abs expected +. Float.abs actual)

(* Differential check of a batch: compile once, compare every (expression,
   point) value, and return all mismatch reports. *)
let mismatches exprs points =
  let values = Array.of_list (run_generated exprs points) in
  let bad = ref [] in
  List.iteri
    (fun i e ->
      List.iteri
        (fun j (x, y) ->
          let got = values.((i * List.length points) + j) in
          let want = Eval.eval [ ("x", x); ("y", y) ] e in
          if not (agree want got) then
            bad :=
              Printf.sprintf "at (%g, %g): C %.17g, Eval %.17g for %s" x y got
                want (Printer.to_string e)
              :: !bad)
        points)
    exprs;
  List.rev !bad

let sample_points = [ (0.7, 1.3); (2.5, 0.4); (-1.2, 0.8) ]

(* The property ranges over a PRNG seed and draws the expressions inside:
   a failing batch then shrinks over one integer instead of re-compiling a
   C file per shrink step of 25 expression trees. *)
let test_c_vs_eval_qcheck =
  qcheck ~count:3 "emitted C matches Eval on every constructor"
    (QCheck2.Gen.int_bound 1_000_000) (fun seed ->
      (not (Lazy.force have_cc))
      ||
      let rand = Random.State.make [| 0xC0DE; seed |] in
      let random_exprs =
        QCheck2.Gen.generate ~n:25 ~rand full_expr_gen
      in
      match mismatches (coverage_cases @ random_exprs) sample_points with
      | [] -> true
      | bad ->
          QCheck2.Test.fail_reportf "%d C/Eval mismatches, first: %s"
            (List.length bad) (List.hd bad))

(* End-to-end: generate C for real functionals, compile with the system cc,
   and compare against the OCaml evaluator at sample points. *)
let test_c_compile_and_compare () =
  let cases =
    [
      ("pbe_fc", Enhancement.f_of Gga_pbe.eps_c, [ "rs"; "s" ]);
      ("lyp_fc", Enhancement.f_of Gga_lyp.eps_c, [ "rs"; "s" ]);
      ("vwn_fc", Enhancement.f_of Lda_vwn.eps_c, [ "rs" ]);
    ]
  in
  let dir = Filename.temp_file "xcvgen" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let src = Filename.concat dir "gen.c" in
      let exe = Filename.concat dir "gen" in
      let oc = open_out src in
      output_string oc "#include <math.h>\n#include <stdio.h>\n";
      output_string oc Printer.c_prelude;
      List.iter
        (fun (name, e, vars) ->
          output_string oc (Printer.c_to_string ~name ~vars e))
        cases;
      output_string oc
        "int main(void) {\n\
        \  double pts[4][2] = {{0.5, 0.3}, {1.0, 2.0}, {3.0, 4.5}, {4.9, 0.01}};\n\
        \  for (int i = 0; i < 4; i++)\n\
        \    printf(\"%.17g %.17g %.17g\\n\",\n\
        \           pbe_fc(pts[i][0], pts[i][1]),\n\
        \           lyp_fc(pts[i][0], pts[i][1]),\n\
        \           vwn_fc(pts[i][0]));\n\
        \  return 0;\n}\n";
      close_out oc;
      let cmd = Printf.sprintf "cc -O2 -o %s %s -lm 2>/dev/null" exe src in
      Alcotest.(check int) "cc succeeds" 0 (Sys.command cmd);
      let ic = Unix.open_process_in exe in
      let lines = List.init 4 (fun _ -> input_line ic) in
      ignore (Unix.close_process_in ic);
      let pts = [ (0.5, 0.3); (1.0, 2.0); (3.0, 4.5); (4.9, 0.01) ] in
      List.iter2
        (fun line (rs, s) ->
          match String.split_on_char ' ' (String.trim line) with
          | [ a; b; c ] ->
              let env = [ ("rs", rs); ("s", s) ] in
              check_close ~tol:1e-12
                (Printf.sprintf "PBE F_c at (%g, %g)" rs s)
                (Eval.eval env (Enhancement.f_of Gga_pbe.eps_c))
                (float_of_string a);
              check_close ~tol:1e-12
                (Printf.sprintf "LYP F_c at (%g, %g)" rs s)
                (Eval.eval env (Enhancement.f_of Gga_lyp.eps_c))
                (float_of_string b);
              check_close ~tol:1e-12
                (Printf.sprintf "VWN F_c at rs=%g" rs)
                (Eval.eval env (Enhancement.f_of Lda_vwn.eps_c))
                (float_of_string c)
          | _ -> Alcotest.failf "bad output line %S" line)
        lines pts)

let test_c_random_roundtrip =
  (* random expressions: generated C (compiled once per property run would
     be too slow, so this checks the generator doesn't crash and emits
     balanced code) *)
  qcheck ~count:60 "C generator emits balanced code" expr_gen (fun e ->
      let c = Printer.c_to_string ~name:"q" ~vars:[ "x"; "y" ] e in
      let count ch = String.fold_left (fun n c -> if c = ch then n + 1 else n) 0 c in
      count '(' = count ')' && count '{' = count '}')

let test_coverage_cases () =
  if Lazy.force have_cc then
    match mismatches coverage_cases sample_points with
    | [] -> ()
    | bad -> Alcotest.failf "%s" (String.concat "\n" bad)

let suite =
  [
    case "C matches Eval on the constructor coverage set" test_coverage_cases;
    case "C structure" test_c_structure;
    slow_case "generated C compiles and matches Eval" test_c_compile_and_compare;
    test_c_random_roundtrip;
    test_c_vs_eval_qcheck;
  ]
