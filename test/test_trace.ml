open Testutil

(* Trace telemetry: a fully deterministic verification run (no deadline, so
   scheduling never depends on the clock) whose JSON trace is pinned by a
   checked-in golden file, plus the structural invariants the trace must
   satisfy against the outcome it was recorded from. *)

let circle_atom =
  Form.ge
    (Expr.sub
       (Expr.add (Expr.sqr (Expr.var "x")) (Expr.sqr (Expr.var "y")))
       (Expr.int 1))

let domain =
  Box.make
    [
      ("x", Interval.make (-2.0) 2.0);
      ("y", Interval.make (-2.0) 2.0);
    ]

let config workers =
  {
    Verify.threshold = 1.0;
    solver =
      { Icp.default_config with fuel = 40; delta = 1e-2; contractor_rounds = 2 };
    deadline_seconds = None;
    workers;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let traced_run workers =
  let recorder = Trace.create () in
  let o =
    Verify.run_custom ~config:(config workers) ~recorder ~dfa_label:"trace-test"
      ~condition_label:"circle" ~domain ~psi:circle_atom ()
  in
  (o, Trace.events recorder)

let golden_path = "fixtures/trace_golden.json"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden () =
  let _, events = traced_run 1 in
  let json = Serialize.trace_to_string events in
  (* Regenerate with:
     XCV_WRITE_GOLDEN=test/fixtures/trace_golden.json \
       dune exec test/main.exe -- test trace *)
  match Sys.getenv_opt "XCV_WRITE_GOLDEN" with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc json;
          output_char oc '\n');
      Printf.printf "golden trace rewritten: %s\n" path
  | None ->
      let golden = String.trim (read_file golden_path) in
      Alcotest.(check string) "trace JSON matches golden file" golden json

let events_equal (a : Trace.event) (b : Trace.event) =
  a.Trace.path = b.Trace.path && a.Trace.depth = b.Trace.depth
  && a.Trace.step = b.Trace.step
  && Box.equal a.Trace.box b.Trace.box
  && a.Trace.kind = b.Trace.kind

let test_roundtrip () =
  let _, events = traced_run 1 in
  let events' = Serialize.trace_of_string (Serialize.trace_to_string events) in
  Alcotest.(check int) "event count" (List.length events)
    (List.length events');
  List.iter2
    (fun a b -> check_true "event round-trips bit-exactly" (events_equal a b))
    events events'

let test_fuel_sum_matches_stats () =
  let o, events = traced_run 1 in
  check_true "trace non-empty" (events <> []);
  Alcotest.(check int) "solve fuel sums to Outcome.stats.total_expansions"
    o.Outcome.stats.Outcome.total_expansions
    (Trace.total_fuel events);
  let verdicts =
    List.length
      (List.filter
         (fun (e : Trace.event) ->
           match e.Trace.kind with Trace.Verdict _ -> true | _ -> false)
         events)
  in
  Alcotest.(check int) "one verdict event per solver call"
    o.Outcome.stats.Outcome.solver_calls verdicts;
  Alcotest.(check int) "one verdict event per painted region"
    (List.length o.Outcome.regions)
    verdicts

let test_workers_invariant () =
  (* Without a deadline every above-threshold box is solved, so the sorted
     event log — and its JSON — is identical at any worker count. *)
  let _, seq = traced_run 1 in
  let _, par = traced_run 4 in
  Alcotest.(check string) "identical trace at workers=4"
    (Serialize.trace_to_string seq)
    (Serialize.trace_to_string par)

let test_report_embeds_trace () =
  let o, events = traced_run 1 in
  let report = Serialize.trace_report o events in
  let j = Serialize.Json.of_string report in
  match j with
  | Serialize.Json.Obj fields ->
      check_true "has dfa" (List.mem_assoc "dfa" fields);
      check_true "has stats" (List.mem_assoc "stats" fields);
      let trace =
        match List.assoc_opt "trace" fields with
        | Some t -> Serialize.trace_of_json t
        | None -> Alcotest.fail "report lacks trace"
      in
      Alcotest.(check int) "embedded trace intact" (List.length events)
        (List.length trace)
  | _ -> Alcotest.fail "report is not a JSON object"

let suite =
  [
    case "golden file" test_golden;
    case "JSON round-trip" test_roundtrip;
    case "fuel sum equals outcome stats" test_fuel_sum_matches_stats;
    case "trace independent of worker count" test_workers_invariant;
    case "trace report structure" test_report_embeds_trace;
  ]
