open Testutil

let config =
  {
    Verify.threshold = 0.7;
    solver =
      { Icp.default_config with fuel = 200; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 10.0;
    workers = 1;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let outcome dfa cond =
  Option.get (Xcverifier.verify ~config ~dfa ~condition:cond ())

let same_status a b =
  match a, b with
  | Outcome.Verified, Outcome.Verified | Outcome.Timeout, Outcome.Timeout ->
      true
  | Outcome.Counterexample m1, Outcome.Counterexample m2
  | Outcome.Inconclusive m1, Outcome.Inconclusive m2 ->
      m1 = m2
  | Outcome.Error e1, Outcome.Error e2 -> String.equal e1 e2
  | _ -> false

let check_roundtrip o =
  let o' = Serialize.of_string (Serialize.to_string o) in
  Alcotest.(check string) "dfa" o.Outcome.dfa o'.Outcome.dfa;
  Alcotest.(check string) "condition" o.Outcome.condition o'.Outcome.condition;
  Alcotest.(check int) "calls" o.Outcome.stats.Outcome.solver_calls
    o'.Outcome.stats.Outcome.solver_calls;
  Alcotest.(check int) "expansions" o.Outcome.stats.Outcome.total_expansions
    o'.Outcome.stats.Outcome.total_expansions;
  Alcotest.(check int) "prunes" o.Outcome.stats.Outcome.total_prunes
    o'.Outcome.stats.Outcome.total_prunes;
  Alcotest.(check int) "revise calls" o.Outcome.stats.Outcome.total_revise_calls
    o'.Outcome.stats.Outcome.total_revise_calls;
  Alcotest.(check int) "retries" o.Outcome.stats.Outcome.retries
    o'.Outcome.stats.Outcome.retries;
  check_close "elapsed" o.Outcome.stats.Outcome.elapsed
    o'.Outcome.stats.Outcome.elapsed;
  check_true "domain" (Box.equal o.Outcome.domain o'.Outcome.domain);
  Alcotest.(check int) "region count"
    (List.length o.Outcome.regions)
    (List.length o'.Outcome.regions);
  List.iter2
    (fun (a : Outcome.region) (b : Outcome.region) ->
      check_true "box bit-exact" (Box.equal a.Outcome.box b.Outcome.box);
      Alcotest.(check int) "depth" a.Outcome.depth b.Outcome.depth;
      check_true "status" (same_status a.Outcome.status b.Outcome.status))
    o.Outcome.regions o'.Outcome.regions;
  (* derived artifacts must agree exactly *)
  Alcotest.(check string) "re-rendered map"
    (Render.outcome_map o) (Render.outcome_map o');
  check_true "same classification" (Outcome.classify o = Outcome.classify o')

let test_roundtrip_lyp () = check_roundtrip (outcome "lyp" "ec1")
let test_roundtrip_vwn () = check_roundtrip (outcome "vwn_rpa" "ec7")

let test_label_escaping () =
  (* "VWN RPA" has a space; must survive the atom encoding *)
  let o = outcome "vwn_rpa" "ec1" in
  Alcotest.(check string) "label with space" "VWN RPA"
    (Serialize.of_string (Serialize.to_string o)).Outcome.dfa

let test_file_archive () =
  let outcomes = [ outcome "lyp" "ec1"; outcome "vwn_rpa" "ec1" ] in
  let path = Filename.temp_file "xcv" ".outcomes" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save path outcomes;
      let loaded = Serialize.load path in
      Alcotest.(check int) "count" 2 (List.length loaded);
      (* Table I rebuilt from the archive matches the live one *)
      Alcotest.(check string) "table from archive"
        (Report.table1 outcomes)
        (Report.table1 loaded))

let test_rejects_garbage () =
  let fails s =
    match Serialize.of_string s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "should reject %S" s
  in
  fails "(not-an-outcome)";
  fails "(outcome 999 (dfa x) (condition y))";
  fails "((("

(* ---- v3 additions: error regions, retries, checkpoints --------------- *)

let box1 = Box.make [ ("x", Interval.make 0.0 1.0) ]

let error_out msg =
  {
    Outcome.dfa = "synthetic";
    condition = "ec1";
    domain = box1;
    regions =
      [
        { Outcome.box = box1; status = Outcome.Error msg; depth = 0 };
        { Outcome.box = box1; status = Outcome.Verified; depth = 1 };
      ];
    stats = { Outcome.zero_stats with Outcome.retries = 3 };
  }

let test_error_status_roundtrip () =
  (* error messages contain spaces, parens, quotes — all must survive *)
  let o = error_out "Failure(\"interval (inverted bounds)\")" in
  check_roundtrip o;
  let o' = Serialize.of_string (Serialize.to_string o) in
  Alcotest.(check int) "retries survive" 3 o'.Outcome.stats.Outcome.retries

let test_reads_v2_archive () =
  (* a hand-built version-2 line: 4-counter stats, no error status *)
  let v2 =
    "(outcome 2 (dfa lda) (condition ec1) (box (x 0x0p+0 0x1p+0)) \
     (stats 7 40 3 12 0x1p-3) (regions (region 0 (verified) \
     (box (x 0x0p+0 0x1p+0)))))"
  in
  let o = Serialize.of_string v2 in
  Alcotest.(check string) "dfa" "lda" o.Outcome.dfa;
  Alcotest.(check int) "calls" 7 o.Outcome.stats.Outcome.solver_calls;
  Alcotest.(check int) "v2 retries default to zero" 0
    o.Outcome.stats.Outcome.retries;
  (* and version 4 is still rejected *)
  match
    Serialize.of_string
      "(outcome 4 (dfa x) (condition y) (box (x 0x0p+0 0x1p+0)) \
       (stats 1 1 1 1 1 0x0p+0) (regions))"
  with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "version 4 should be rejected"

let test_reads_v1_trace () =
  let v1 =
    "{\"version\":1,\"events\":[{\"path\":[0],\"depth\":1,\"step\":1,\
     \"box\":{\"x\":[0,1]},\"kind\":\"solve\",\"fuel\":5,\"prunes\":2}]}"
  in
  (match Serialize.trace_of_string v1 with
  | [ ev ] -> Alcotest.(check int) "v1 fuel" 5 (Trace.total_fuel [ ev ])
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs));
  match Serialize.trace_of_string "{\"version\":3,\"events\":[]}" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "trace version 3 should be rejected"

let test_retry_event_roundtrip () =
  let ev =
    {
      Trace.path = [ 1; 0 ];
      depth = 2;
      step = -999;
      box = box1;
      kind = Trace.Retry { attempt = 1; reason = "timeout"; fuel = 42 };
    }
  in
  match Serialize.trace_of_string (Serialize.trace_to_string [ ev ]) with
  | [ ev' ] ->
      check_true "retry event survives" (ev'.Trace.kind = ev.Trace.kind);
      Alcotest.(check int) "negative step survives" (-999) ev'.Trace.step;
      Alcotest.(check int) "retry fuel counted" 42 (Trace.total_fuel [ ev' ])
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs)

let test_checkpoint_roundtrip () =
  let path = Filename.temp_file "xcv" ".checkpoint" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sys.remove path;
      Alcotest.(check int) "missing file loads empty" 0
        (List.length (Serialize.load_checkpoint path));
      let a = outcome "lyp" "ec1" and b = error_out "boom" in
      Serialize.append path [ a ];
      Serialize.append path [ b ];
      let loaded = Serialize.load_checkpoint path in
      Alcotest.(check int) "incremental appends accumulate" 2
        (List.length loaded);
      Alcotest.(check string) "order preserved" "synthetic"
        (List.nth loaded 1).Outcome.dfa)

let test_checkpoint_torn_tail () =
  (* a SIGKILL mid-write leaves a torn last line: the valid prefix must
     load, [load] proper must still raise *)
  let path = Filename.temp_file "xcv" ".checkpoint" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.append path [ error_out "first" ];
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "(outcome 3 (dfa trunc";
      close_out oc;
      let loaded = Serialize.load_checkpoint path in
      Alcotest.(check int) "valid prefix survives the torn tail" 1
        (List.length loaded);
      check_true "prefix content intact"
        (Outcome.has_error (List.hd loaded));
      match Serialize.load path with
      | exception _ -> ()
      | _ -> Alcotest.fail "strict load should reject the torn tail")

let suite =
  [
    case "round-trip LYP EC1" test_roundtrip_lyp;
    case "round-trip VWN EC7" test_roundtrip_vwn;
    case "label escaping" test_label_escaping;
    case "file archive + table rebuild" test_file_archive;
    case "rejects malformed input" test_rejects_garbage;
    case "error status round-trip" test_error_status_roundtrip;
    case "reads v2 archives" test_reads_v2_archive;
    case "reads v1 traces" test_reads_v1_trace;
    case "retry event round-trip" test_retry_event_roundtrip;
    case "checkpoint append + load" test_checkpoint_roundtrip;
    case "checkpoint torn tail" test_checkpoint_torn_tail;
  ]
