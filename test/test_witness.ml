open Testutil

let config =
  {
    Verify.threshold = 0.3;
    solver =
      { Icp.default_config with fuel = 300; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 15.0;
    workers = 1;
    use_taylor = false;
    use_tape = true;
    split_heuristic = `Widest;
    retry = Verify.no_retry;
    jit = false;
    jit_cache = None;
  }

let lyp_ec1 () =
  let lyp = Registry.find "lyp" in
  let p = Option.get (Encoder.encode lyp Conditions.Ec1) in
  let o = Verify.run ~config p in
  (p, o)

let test_extract_certified () =
  let p, o = lyp_ec1 () in
  let cert, dropped = Witness.extract p o in
  check_true "witnesses found" (cert.Witness.witnesses <> []);
  Alcotest.(check int) "none dropped" 0 dropped;
  List.iter
    (fun (w : Witness.witness) ->
      check_true "psi negative at witness" (w.Witness.psi_value < 0.0);
      check_true "enclosure contains float value"
        (Interval.mem w.Witness.psi_value w.Witness.enclosure
        || Float.abs
             (w.Witness.psi_value -. Interval.midpoint w.Witness.enclosure)
           < 1e-9);
      (* LYP EC1 violations are O(0.01) — far from rounding noise, so every
         witness should be interval-certified *)
      check_true "certified" (w.Witness.strength = Witness.Certified);
      (* the witness must lie in the domain *)
      check_true "inside domain" (Box.mem w.Witness.point p.Encoder.domain))
    cert.Witness.witnesses

let test_recheck () =
  let p, o = lyp_ec1 () in
  let cert, _ = Witness.extract p o in
  check_true "recheck passes" (Witness.recheck cert p);
  (* a tampered witness must fail recheck *)
  let tampered =
    {
      cert with
      Witness.witnesses =
        List.map
          (fun (w : Witness.witness) ->
            { w with Witness.point = [ ("rs", 1.0); ("s", 0.1) ] })
          cert.Witness.witnesses;
    }
  in
  check_false "tampered witness rejected" (Witness.recheck tampered p)

let test_no_witness_for_verified () =
  let vwn = Registry.find "vwn_rpa" in
  let p = Option.get (Encoder.encode vwn Conditions.Ec1) in
  let o = Verify.run ~config p in
  let cert, dropped = Witness.extract p o in
  Alcotest.(check int) "no witnesses" 0 (List.length cert.Witness.witnesses);
  Alcotest.(check int) "none dropped" 0 dropped;
  check_false "empty certificate does not recheck" (Witness.recheck cert p)

let test_pp () =
  let p, o = lyp_ec1 () in
  let cert, _ = Witness.extract p o in
  let s = Format.asprintf "%a" Witness.pp cert in
  check_true "mentions dfa" (contains_sub s "LYP");
  check_true "mentions certification" (contains_sub s "certified")

let suite =
  [
    case "extract certified witnesses (LYP EC1)" test_extract_certified;
    case "recheck accepts genuine, rejects tampered" test_recheck;
    case "verified outcome yields empty certificate" test_no_witness_for_verified;
    case "pretty printing" test_pp;
  ]
