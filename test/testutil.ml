(* Shared helpers for the test suites. *)

(* NaN handling must be explicit: NaN == NaN is accepted (both sides agree
   the value is undefined), but NaN on only one side is always a mismatch —
   the relative-tolerance comparison would otherwise return false for it
   silently, with a misleading message. *)
let close_result ?(tol = 1e-10) expected actual =
  match Float.is_nan expected, Float.is_nan actual with
  | true, true -> Ok ()
  | true, false ->
      Error (Printf.sprintf "expected NaN, got finite %.17g" actual)
  | false, true ->
      Error (Printf.sprintf "expected %.17g, got NaN" expected)
  | false, false ->
      if
        Float.abs (expected -. actual)
        <= tol *. (1.0 +. Float.abs expected +. Float.abs actual)
      then Ok ()
      else
        Error
          (Printf.sprintf "expected %.17g, got %.17g (tol %.3g)" expected
             actual tol)

let check_close ?tol msg expected actual =
  match close_result ?tol expected actual with
  | Ok () -> ()
  | Error detail -> Alcotest.failf "%s: %s" msg detail

(* Worker-domain count for verifier-driving tests; set by the runtest
   harness (test/dune runs the suite at 1 and 2) so every suite exercises
   both the sequential and the parallel scheduler path. *)
let test_workers =
  match Sys.getenv_opt "XCV_TEST_WORKERS" with
  | Some n -> (
      match int_of_string_opt n with Some n when n > 0 -> n | _ -> 1)
  | None -> 1

let check_true msg b = Alcotest.(check bool) msg true b
let check_false msg b = Alcotest.(check bool) msg false b

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* QCheck generators used across suites. *)

(* Floats that exercise interesting magnitudes without overflow traps. *)
let finite_float_gen =
  QCheck2.Gen.(
    oneof
      [
        float_range (-10.0) 10.0;
        float_range (-1e6) 1e6;
        float_range (-1e-6) 1e-6;
        return 0.0;
        return 1.0;
        return (-1.0);
      ])

let pos_float_gen = QCheck2.Gen.float_range 1e-6 1e3

(* Random closed expressions over the variables [x] and [y], biased toward
   total functions so random evaluation rarely NaNs. *)
let expr_gen =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map Expr.const (float_range (-4.0) 4.0);
                return (Expr.var "x");
                return (Expr.var "y");
                map Expr.int (int_range (-3) 3);
              ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map2 Expr.add sub sub;
                map2 Expr.sub sub sub;
                map2 Expr.mul sub sub;
                map (fun e -> Expr.sin e) sub;
                map (fun e -> Expr.cos e) sub;
                map (fun e -> Expr.tanh e) sub;
                map (fun e -> Expr.atan e) sub;
                map (fun e -> Expr.abs e) sub;
                map (fun e -> Expr.exp (Expr.mul (Expr.const 0.25) e)) sub;
                map2 (fun e k -> Expr.powi e k) sub (int_range 0 3);
              ])
        n)

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Environments for the two grid variables. *)
let env2_gen =
  QCheck2.Gen.(
    map2
      (fun x y -> [ ("x", x); ("y", y) ])
      (float_range (-3.0) 3.0) (float_range (-3.0) 3.0))

let dfa_point_gen =
  QCheck2.Gen.(
    map2
      (fun rs s -> [ (Dft_vars.rs_name, rs); (Dft_vars.s_name, s) ])
      (float_range 0.0001 5.0) (float_range 0.0 5.0))

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0
