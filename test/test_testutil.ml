open Testutil

(* The test helpers themselves: the NaN comparison semantics of
   [close_result] regressed once (a NaN-vs-finite mismatch slipped through
   the relative-tolerance branch with a misleading message), so pin the
   contract down. *)

let test_close_finite () =
  check_true "equal" (close_result 1.0 1.0 = Ok ());
  check_true "within tol" (close_result ~tol:1e-6 1.0 (1.0 +. 1e-9) = Ok ());
  check_true "outside tol"
    (match close_result ~tol:1e-12 1.0 1.1 with Error _ -> true | Ok () -> false)

let test_close_nan_both () =
  check_true "NaN agrees with NaN" (close_result Float.nan Float.nan = Ok ())

let expect_error ~needle result =
  match result with
  | Ok () -> Alcotest.fail "NaN mismatch accepted"
  | Error msg ->
      check_true
        (Printf.sprintf "message %S mentions %S" msg needle)
        (contains_sub msg needle)

let test_close_nan_mismatch () =
  (* the regression: these must FAIL, with the NaN named explicitly *)
  expect_error ~needle:"NaN" (close_result Float.nan 1.0);
  expect_error ~needle:"NaN" (close_result 1.0 Float.nan);
  expect_error ~needle:"NaN" (close_result ~tol:1e6 Float.nan 0.0)

let test_check_close_raises_on_nan_mismatch () =
  check_true "check_close propagates the failure"
    (match check_close "nan-vs-finite" Float.nan 2.0 with
    | () -> false
    | exception _ -> true)

let test_workers_knob () =
  check_true "test_workers positive" (test_workers >= 1)

let suite =
  [
    case "close_result on finite floats" test_close_finite;
    case "close_result NaN = NaN" test_close_nan_both;
    case "close_result NaN mismatch fails" test_close_nan_mismatch;
    case "check_close raises on NaN mismatch" test_check_close_raises_on_nan_mismatch;
    case "worker knob" test_workers_knob;
  ]
