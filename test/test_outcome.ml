open Testutil

(* Hand-constructed outcomes: paint-log semantics without any solver. *)

let iv = Interval.make
let box2 (xl, xh) (yl, yh) = Box.make [ ("x", iv xl xh); ("y", iv yl yh) ]
let domain = box2 (0.0, 4.0) (0.0, 4.0)

let mk_outcome regions =
  {
    Outcome.dfa = "TEST";
    condition = "t";
    domain;
    regions;
    stats = { Outcome.zero_stats with solver_calls = List.length regions };
  }

let region ?(depth = 0) status box = { Outcome.box; status; depth }

let test_paint_order_overrides () =
  (* Parent timeout painted first, child verified repaints its quadrant. *)
  let o =
    mk_outcome
      [
        region Outcome.Timeout domain;
        region ~depth:1 Outcome.Verified (box2 (0.0, 2.0) (0.0, 2.0));
      ]
  in
  let c = Outcome.coverage ~resolution:64 o in
  check_close ~tol:0.02 "quarter verified" 0.25 c.Outcome.verified;
  check_close ~tol:0.02 "rest timeout" 0.75 c.Outcome.timeout;
  check_true "partial" (Outcome.classify o = Outcome.Partial_verified)

let test_reverse_order_is_different () =
  (* Painting the parent AFTER the child hides the child — order matters,
     as in the paper's recursion (parents always precede children). *)
  let o =
    mk_outcome
      [
        region ~depth:1 Outcome.Verified (box2 (0.0, 2.0) (0.0, 2.0));
        region Outcome.Timeout domain;
      ]
  in
  let c = Outcome.coverage ~resolution:64 o in
  check_close "child hidden" 1.0 c.Outcome.timeout

let test_counterexample_dominates_classification () =
  let model = [ ("x", 1.0); ("y", 1.0) ] in
  let o =
    mk_outcome
      [
        region Outcome.Verified domain;
        region ~depth:3 (Outcome.Counterexample model)
          (box2 (0.9, 1.1) (0.9, 1.1));
      ]
  in
  (* tiny cex region, overwhelmingly verified coverage: still Refuted *)
  check_true "refuted" (Outcome.classify o = Outcome.Refuted);
  Alcotest.(check (option (list (pair string (float 1e-12)))))
    "model retrievable" (Some model)
    (Outcome.first_counterexample o)

let test_unknown_classification () =
  let o =
    mk_outcome
      [
        region Outcome.Timeout domain;
        region ~depth:1
          (Outcome.Inconclusive [ ("x", 0.5); ("y", 0.5) ])
          (box2 (0.0, 1.0) (0.0, 1.0));
      ]
  in
  check_true "unknown" (Outcome.classify o = Outcome.Unknown);
  let c = Outcome.coverage ~resolution:32 o in
  check_close "fractions sum to 1" 1.0
    (c.Outcome.verified +. c.Outcome.counterexample +. c.Outcome.inconclusive
   +. c.Outcome.timeout)

let test_rasterize_orientation () =
  (* verified strip at high y only *)
  let o =
    mk_outcome
      [
        region Outcome.Timeout domain;
        region ~depth:1 Outcome.Verified (box2 (0.0, 4.0) (3.0, 4.0));
      ]
  in
  let grid = Outcome.rasterize o ~xdim:"x" ~ydim:"y" ~nx:8 ~ny:8 in
  (* row 0 = low y = timeout; row 7 = high y = verified *)
  check_true "low rows timeout" (grid.(0).(0) = Outcome.Timeout);
  check_true "high rows verified" (grid.(7).(0) = Outcome.Verified);
  (* the rendered map puts high y on the first printed row *)
  let map = Render.outcome_map ~nx:8 ~ny:8 o in
  let first_data_line =
    List.nth (String.split_on_char '\n' map) 1
  in
  check_true "top of map verified" (String.contains first_data_line '.')

let test_1d_outcome_render () =
  let d1 = Box.make [ ("rs", iv 0.0 4.0) ] in
  let o =
    {
      Outcome.dfa = "LDA-TEST";
      condition = "t";
      domain = d1;
      regions =
        [
          { Outcome.box = d1; status = Outcome.Timeout; depth = 0 };
          {
            Outcome.box = Box.make [ ("rs", iv 0.0 2.0) ];
            status = Outcome.Verified;
            depth = 1;
          };
          (* strictly below the domain midpoint: regression guard for the
             1-D rasterization row-check bug *)
          {
            Outcome.box = Box.make [ ("rs", iv 0.0 1.0) ];
            status = Outcome.Counterexample [ ("rs", 0.5) ];
            depth = 2;
          };
        ];
      stats = { Outcome.zero_stats with solver_calls = 2 };
    }
  in
  let map = Render.outcome_map ~nx:16 o in
  check_true "one row" (List.length (String.split_on_char '\n' map) <= 4);
  check_true "has verified glyph" (String.contains map '.');
  check_true "has timeout glyph" (String.contains map 'T');
  check_true "has counterexample glyph" (String.contains map '#');
  let c = Outcome.coverage ~resolution:16 o in
  check_close ~tol:0.07 "quarter verified" 0.25 c.Outcome.verified;
  check_close ~tol:0.07 "quarter counterexample" 0.25 c.Outcome.counterexample

let test_empty_region_log () =
  (* nothing painted: everything defaults to timeout, classified unknown *)
  let o = mk_outcome [] in
  let c = Outcome.coverage o in
  check_close "all timeout" 1.0 c.Outcome.timeout;
  check_true "unknown" (Outcome.classify o = Outcome.Unknown)

let test_summary_format () =
  let o = mk_outcome [ region Outcome.Verified domain ] in
  let s = Format.asprintf "%a" Outcome.pp_summary o in
  check_true "has dfa" (contains_sub s "TEST");
  check_true "has percentage" (contains_sub s "100.0%");
  check_true "has OK" (contains_sub s "OK")

let suite =
  [
    case "paint order: children override parents" test_paint_order_overrides;
    case "paint order is significant" test_reverse_order_is_different;
    case "counterexample dominates classification"
      test_counterexample_dominates_classification;
    case "all-unresolved classifies unknown" test_unknown_classification;
    case "rasterization orientation" test_rasterize_orientation;
    case "1-D outcomes render as a strip" test_1d_outcome_render;
    case "empty paint log" test_empty_region_log;
    case "summary formatting" test_summary_format;
  ]
