(* Command-line interface to the XCVerifier pipeline.

   Subcommands:
     list      - functionals and conditions
     encode    - print the encoded local condition for a (DFA, condition)
     verify    - run Algorithm 1 on one pair, print summary and region map
     campaign  - run all applicable pairs, print Table I
     baseline  - run the Pederson-Burke grid check on one pair
     compare   - verify + baseline + consistency, with figure-style maps *)

open Cmdliner

(* ---- validated converters ------------------------------------------ *)
(* Out-of-range numerics (zero fuel, negative thresholds, one-point grids)
   would send the solver or the baseline into nonsense loops; reject them
   at the argument parser with a proper Cmdliner error instead. *)

let bounded_int ~what ~min =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= min -> Ok n
    | Some n ->
        Error (`Msg (Printf.sprintf "%s must be >= %d, got %d" what min n))
    | None -> Error (`Msg (Printf.sprintf "invalid %s %S" what s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let positive_float ~what =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0.0 && Float.is_finite f -> Ok f
    | Some f -> Error (`Msg (Printf.sprintf "%s must be > 0, got %g" what f))
    | None -> Error (`Msg (Printf.sprintf "invalid %s %S" what s))
  in
  Arg.conv ~docv:"X" (parse, Format.pp_print_float)

let probability ~what =
  let parse s =
    match float_of_string_opt s with
    | Some f when f >= 0.0 && f <= 1.0 -> Ok f
    | Some f ->
        Error (`Msg (Printf.sprintf "%s must be in [0, 1], got %g" what f))
    | None -> Error (`Msg (Printf.sprintf "invalid %s %S" what s))
  in
  Arg.conv ~docv:"P" (parse, Format.pp_print_float)

(* Output paths ([--metrics], [--checkpoint], ...) are validated when the
   arguments are parsed: an unwritable directory fails with a Cmdliner
   error up front instead of an exception mid-campaign (or, for the
   checkpoint, after the first completed pair). "-" means stdout. *)
let writable_path ~what =
  let parse s =
    match Obs.validate_output_path s with
    | Ok () -> Ok s
    | Error msg -> Error (`Msg (Printf.sprintf "%s: %s" what msg))
  in
  Arg.conv ~docv:"FILE" (parse, Format.pp_print_string)

(* ---- shared arguments ---------------------------------------------- *)

let dfa_arg =
  let doc =
    "Functional name: pbe, scan, lyp, am05, vwn_rpa (paper five) or pw92, \
     pz81, vwn5, am05x, b88, blyp, rscan."
  in
  Arg.(required & opt (some string) None & info [ "d"; "dfa" ] ~doc ~docv:"DFA")

let condition_arg =
  let doc = "Exact condition: ec1 .. ec7." in
  Arg.(
    required
    & opt (some string) None
    & info [ "c"; "condition" ] ~doc ~docv:"COND")

let fuel_arg =
  let doc = "Solver fuel (box expansions) per dReal-style call." in
  Arg.(value & opt (bounded_int ~what:"fuel" ~min:1) 600 & info [ "fuel" ] ~doc)

let threshold_arg =
  let doc = "Domain-splitting threshold t of Algorithm 1." in
  Arg.(
    value
    & opt (positive_float ~what:"threshold") 0.05
    & info [ "t"; "threshold" ] ~doc)

let delta_arg =
  let doc = "Delta of the delta-sat decision." in
  Arg.(value & opt (positive_float ~what:"delta") 1e-4 & info [ "delta" ] ~doc)

let deadline_arg =
  let doc = "Wall-clock budget in seconds per (DFA, condition) pair." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~doc)

let map_arg =
  let doc = "Print the ASCII region map." in
  Arg.(value & flag & info [ "map" ] ~doc)

let grid_arg =
  let doc = "Grid points per axis for the PB baseline (at least 2)." in
  Arg.(value & opt (bounded_int ~what:"grid" ~min:2) 100 & info [ "n"; "grid" ] ~doc)

let taylor_arg =
  let doc =
    "Enable the mean-value-form (Taylor) contractor (tape-native adjoint \
     sweep; on by default, --taylor=false disables)."
  in
  Arg.(value & opt bool true & info [ "taylor" ] ~doc ~docv:"BOOL")

let split_arg =
  let doc =
    "Split heuristic: $(b,widest) bisects the widest dimension, $(b,smear) \
     the dimension of maximal smear |df/dx| * width (adjoint-tape guided)."
  in
  Arg.(
    value
    & opt (enum [ ("widest", `Widest); ("smear", `Smear) ]) `Widest
    & info [ "split" ] ~doc ~docv:"HEURISTIC")

let jit_arg =
  let doc =
    "JIT-compile each pair's interval tape into a batched native C kernel \
     and contract boxes through it. Paint and Table I are bit-identical to \
     the interpreted run at any worker count; only the speed changes. \
     Needs a C compiler ($(b,XCV_CC), $(b,cc) or $(b,gcc)); without one \
     the run silently stays on the interpreted tape (the $(b,jit.fallbacks) \
     metric counts it)."
  in
  Arg.(value & flag & info [ "jit" ] ~doc)

(* The JIT cache is a directory (unlike the file outputs above): accept an
   existing writable directory, or a path whose parent is writable so the
   planner can create it. *)
let jit_cache_arg =
  let parse s =
    if s = "" then Error (`Msg "jit cache path is empty")
    else if Sys.file_exists s then
      if not (Sys.is_directory s) then
        Error (`Msg (Printf.sprintf "jit cache %s is not a directory" s))
      else
        match Unix.access s [ Unix.W_OK ] with
        | () -> Ok s
        | exception Unix.Unix_error (e, _, _) ->
            Error
              (`Msg
                 (Printf.sprintf "jit cache %s is not writable (%s)" s
                    (Unix.error_message e)))
    else
      let dir = Filename.dirname s in
      if not (Sys.file_exists dir && Sys.is_directory dir) then
        Error
          (`Msg (Printf.sprintf "jit cache parent %s does not exist" dir))
      else
        match Unix.access dir [ Unix.W_OK ] with
        | () -> Ok s
        | exception Unix.Unix_error (e, _, _) ->
            Error
              (`Msg
                 (Printf.sprintf "jit cache parent %s is not writable (%s)"
                    dir (Unix.error_message e)))
  in
  let doc =
    "Cache compiled JIT kernels in $(docv) (created if absent), \
     content-addressed by generated source: later campaigns over the same \
     formulas and configuration skip the C compiler entirely."
  in
  Arg.(
    value
    & opt (some (Arg.conv ~docv:"DIR" (parse, Format.pp_print_string))) None
    & info [ "jit-cache" ] ~doc ~docv:"DIR")

let certify_arg =
  let doc = "Print an interval-certified counterexample certificate." in
  Arg.(value & flag & info [ "certify" ] ~doc)

let workers_arg =
  let doc =
    "Worker domains for the sub-box scheduler (0 = one per available core)."
  in
  Arg.(
    value
    & opt (bounded_int ~what:"workers" ~min:0) 1
    & info [ "j"; "workers" ] ~doc ~docv:"N")

let retries_arg =
  let doc =
    "Retry errored or timed-out solver calls up to $(docv) times, escalating \
     the fuel budget each attempt."
  in
  Arg.(
    value
    & opt (bounded_int ~what:"retries" ~min:0) 0
    & info [ "retries" ] ~doc ~docv:"N")

let fuel_growth_arg =
  let doc = "Fuel multiplier per retry escalation step." in
  Arg.(
    value
    & opt (bounded_int ~what:"fuel growth" ~min:1) 2
    & info [ "fuel-growth" ] ~doc ~docv:"K")

let fault_rate_arg =
  let doc =
    "Inject deterministic faults into this fraction of solver calls \
     (testing the resilience machinery; see also XCV_FAULT_RATE)."
  in
  Arg.(
    value
    & opt (some (probability ~what:"fault rate")) None
    & info [ "fault-rate" ] ~doc ~docv:"P")

let fault_seed_arg =
  let doc = "Seed of the fault-injection hash." in
  Arg.(value & opt int Fault.default_seed & info [ "fault-seed" ] ~doc ~docv:"S")

let trace_arg =
  let doc =
    "Write the per-box trace (split/contract/solve/verdict events with \
     solver counters) as JSON to $(docv); use - for stdout."
  in
  Arg.(
    value
    & opt (some (writable_path ~what:"trace file")) None
    & info [ "trace" ] ~doc ~docv:"FILE")

let metrics_arg =
  let doc =
    "Write the metrics snapshot as JSON to $(docv) (use - for stdout): \
     deterministic counters and log2-bucket histograms in one section — \
     byte-identical at any worker count for deadline-free runs — and \
     wall-clock phase timers, gauges and rates in another."
  in
  Arg.(
    value
    & opt (some (writable_path ~what:"metrics file")) None
    & info [ "metrics" ] ~doc ~docv:"FILE")

let write_metrics_json json path =
  if path = "-" then print_string json
  else begin
    match open_out path with
    | exception Sys_error msg ->
        Printf.eprintf "cannot write metrics: %s\n" msg;
        exit 2
    | oc ->
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc json);
        Printf.printf "metrics written to %s\n" path
  end

let write_metrics path =
  write_metrics_json (Obs.Metrics.to_json (Obs.Metrics.snapshot ())) path

(* --jit asked for speed; if the toolchain can't deliver it the run still
   completes (interpreted tape), so warn once instead of failing. *)
let warn_if_jit_unavailable jit =
  if jit && not (Jit.available ()) then
    prerr_endline
      "warning: --jit requested but no C compiler found (XCV_CC, cc, gcc); \
       continuing on the interpreted tape"

let config_of ?(use_taylor = true) ?(split = `Widest) ?(workers = 1)
    ?(retries = 0) ?(fuel_growth = 2) ?fault_rate
    ?(fault_seed = Fault.default_seed) ?(jit = false) ?jit_cache fuel
    threshold delta deadline =
  let faults =
    match fault_rate with
    | Some rate -> Some (Fault.make ~seed:fault_seed ~rate ())
    | None -> Fault.of_env ()
  in
  warn_if_jit_unavailable jit;
  {
    Verify.threshold;
    solver =
      { Icp.default_config with fuel; delta; contractor_rounds = 3; faults };
    deadline_seconds = deadline;
    workers = (if workers <= 0 then Pool.default_workers () else workers);
    use_taylor;
    use_tape = true;
    split_heuristic = split;
    retry = { Verify.max_retries = retries; fuel_growth };
    jit;
    jit_cache;
  }

let lookup_pair dfa cond =
  match Registry.find_opt dfa with
  | None -> Error (Printf.sprintf "unknown functional %S (try: list)" dfa)
  | Some f -> (
      match Conditions.of_name cond with
      | c -> Ok (f, c)
      | exception Not_found ->
          Error (Printf.sprintf "unknown condition %S (try: list)" cond))

(* ---- list ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    print_endline "Functionals:";
    List.iter
      (fun f -> Format.printf "  %-8s %a@." f.Registry.name Registry.pp f)
      Registry.all;
    print_endline "\nConditions:";
    List.iter
      (fun c ->
        Format.printf "  %-4s %s (local condition, Eq. %d)@."
          (Conditions.name c) (Conditions.label c) (Conditions.equation c))
      Conditions.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available functionals and exact conditions")
    Term.(const run $ const ())

(* ---- encode ---------------------------------------------------------- *)

let encode_cmd =
  let format_arg =
    let doc = "Output format: infix, sexp, python or c." in
    Arg.(value & opt string "infix" & info [ "f"; "format" ] ~doc)
  in
  let run dfa cond format =
    match lookup_pair dfa cond with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok (f, c) -> (
        match Encoder.encode f c with
        | None ->
            Printf.printf "%s does not apply to %s\n" cond dfa;
            exit 1
        | Some p ->
            let e = p.Encoder.psi.Form.expr in
            (match format with
            | "c" ->
                let name =
                  Printf.sprintf "%s_%s_psi" f.Registry.name
                    (Conditions.name c)
                in
                print_string
                  (Printer.c_to_string ~name
                     ~vars:(Registry.variables f) e)
            | _ ->
                let body =
                  match format with
                  | "sexp" -> Printer.sexp_to_string e
                  | "python" -> Printer.python_to_string e
                  | _ -> Printer.to_string e
                in
                Printf.printf "psi: %s >= 0\n" body);
            Printf.printf "operations: %d (dag nodes: %d)\n"
              (Encoder.operation_count p) (Expr.size e))
  in
  Cmd.v
    (Cmd.info "encode"
       ~doc:"Print the encoded local condition for a (DFA, condition) pair")
    Term.(const run $ dfa_arg $ condition_arg $ format_arg)

(* ---- verify ---------------------------------------------------------- *)

let verify_cmd =
  let run dfa cond fuel threshold delta deadline map use_taylor split certify
      workers trace metrics retries fuel_growth fault_rate fault_seed jit
      jit_cache =
    match lookup_pair dfa cond with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok (f, c) -> (
        let config =
          config_of ~use_taylor ~split ~workers ~retries ~fuel_growth
            ?fault_rate ~fault_seed ~jit ?jit_cache fuel threshold delta
            deadline
        in
        match Encoder.encode f c with
        | None ->
            Printf.printf "%s does not apply to %s\n" cond dfa;
            exit 1
        | Some problem ->
            let recorder = Option.map (fun _ -> Trace.create ()) trace in
            let o = Verify.run ~config ?recorder problem in
            Format.printf "%a@." Outcome.pp_summary o;
            (match Outcome.first_counterexample o with
            | Some m ->
                Format.printf "counterexample:";
                List.iter (fun (v, x) -> Format.printf " %s=%.6g" v x) m;
                Format.printf "@."
            | None -> ());
            (match trace, recorder with
            | Some path, Some r ->
                let report = Serialize.trace_report o (Trace.events r) in
                if path = "-" then print_endline report
                else begin
                  match open_out path with
                  | exception Sys_error msg ->
                      Printf.eprintf "cannot write trace: %s\n" msg;
                      exit 2
                  | oc ->
                      Fun.protect
                        ~finally:(fun () -> close_out oc)
                        (fun () ->
                          output_string oc report;
                          output_char oc '\n');
                      Printf.printf "trace written to %s\n" path
                end
            | _ -> ());
            if certify then begin
              let cert, dropped = Witness.extract problem o in
              Format.printf "%a" Witness.pp cert;
              if dropped > 0 then
                Format.printf "(%d unreproducible models dropped)@." dropped
            end;
            if map then print_string (Render.outcome_map o);
            Option.iter write_metrics metrics)
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Run Algorithm 1 on one (DFA, condition) pair")
    Term.(
      const run $ dfa_arg $ condition_arg $ fuel_arg $ threshold_arg
      $ delta_arg $ deadline_arg $ map_arg $ taylor_arg $ split_arg
      $ certify_arg $ workers_arg $ trace_arg $ metrics_arg $ retries_arg
      $ fuel_growth_arg $ fault_rate_arg $ fault_seed_arg $ jit_arg
      $ jit_cache_arg)

(* ---- extra (extension conditions) ------------------------------------ *)

let extra_cmd =
  let run fuel threshold delta deadline =
    let config = config_of fuel threshold delta deadline in
    List.iter
      (fun (f : Registry.t) ->
        List.iter
          (fun cond ->
            match Extra_conditions.local_condition cond f with
            | None -> ()
            | Some psi ->
                let o =
                  Verify.run_custom ~config ~dfa_label:f.Registry.label
                    ~condition_label:(Extra_conditions.name cond)
                    ~domain:(Domain_spec.box_for f) ~psi ()
                in
                Format.printf "%a@." Outcome.pp_summary o)
          Extra_conditions.all)
      (Extra_conditions.exchange_functionals ())
  in
  Cmd.v
    (Cmd.info "extra"
       ~doc:
         "Verify the extension conditions (exchange non-positivity and the \
          exchange Lieb-Oxford bound) for every exchange functional")
    Term.(const run $ fuel_arg $ threshold_arg $ delta_arg $ deadline_arg)

(* ---- campaign -------------------------------------------------------- *)

let campaign_cmd =
  let quick_arg =
    let doc = "Use the quick preset (coarser threshold, small fuel)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let save_arg =
    let doc = "Archive the outcomes (one s-expression per line)." in
    Arg.(
      value
      & opt (some (writable_path ~what:"save file")) None
      & info [ "save" ] ~doc ~docv:"FILE")
  in
  let checkpoint_arg =
    let doc =
      "Append each completed outcome to $(docv) as the campaign proceeds; a \
       killed run loses at most the pair in flight."
    in
    Arg.(
      value
      & opt (some (writable_path ~what:"checkpoint file")) None
      & info [ "checkpoint" ] ~doc ~docv:"FILE")
  in
  let progress_arg =
    let doc =
      "Print a progress line to stderr about once per second: completed \
       pairs, boxes/s, frontier size and an ETA lower bound."
    in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let resume_arg =
    let doc =
      "Reuse outcomes from a previous checkpoint $(docv); already-completed \
       (DFA, condition) pairs are not re-run."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~doc ~docv:"FILE")
  in
  let shard_arg =
    let parse s =
      match String.split_on_char '/' s with
      | [ i; n ] -> (
          match (int_of_string_opt i, int_of_string_opt n) with
          | Some i, Some n when n >= 1 && i >= 0 && i < n -> Ok (i, n)
          | _ ->
              Error
                (`Msg
                   (Printf.sprintf
                      "shard must be I/N with 0 <= I < N, got %S" s)))
      | _ -> Error (`Msg (Printf.sprintf "shard must look like I/N, got %S" s))
    in
    let print ppf (i, n) = Format.fprintf ppf "%d/%d" i n in
    let doc =
      "Run only shard $(docv) of the campaign (box-path-prefix slice I of \
       N). Requires --checkpoint; the checkpoint, --resume and --metrics \
       paths are suffixed .shard<I>. Merging the N shard checkpoints \
       reproduces the unsharded run byte-for-byte."
    in
    Arg.(
      value
      & opt (some (Arg.conv ~docv:"I/N" (parse, print))) None
      & info [ "shard" ] ~doc ~docv:"I/N")
  in
  let shards_arg =
    let doc =
      "Supervisor mode: fork/exec $(docv) shard processes, restart any that \
       die from their own checkpoints, then merge and print Table I. \
       Requires --checkpoint."
    in
    Arg.(
      value
      & opt (some (bounded_int ~what:"shards" ~min:1)) None
      & info [ "shards" ] ~doc ~docv:"N")
  in
  let merge_arg =
    let doc =
      "Merge shard checkpoints $(docv).shard0 .. $(docv).shard<N-1> (no \
       solving); prints the merged summaries and Table I and honours --save \
       and --metrics."
    in
    Arg.(value & opt (some string) None & info [ "merge" ] ~doc ~docv:"BASE")
  in
  let print_outcomes outcomes =
    List.iter (fun o -> Format.printf "%a@." Outcome.pp_summary o) outcomes;
    print_newline ();
    print_string (Report.table1 outcomes)
  in
  let save_outcomes save outcomes =
    match save with
    | Some path ->
        Serialize.save path outcomes;
        Printf.printf "\nsaved %d outcomes to %s\n" (List.length outcomes)
          path
    | None -> ()
  in
  let print_merged save metrics (m : Shard_merge.merged) =
    print_outcomes m.Shard_merge.outcomes;
    save_outcomes save m.Shard_merge.outcomes;
    Option.iter
      (write_metrics_json (Obs.Metrics.to_json m.Shard_merge.metrics))
      metrics
  in
  let total_pairs =
    List.length Registry.paper_five * List.length Conditions.all
  in
  let run quick fuel threshold delta deadline split workers save checkpoint
      resume metrics progress retries fuel_growth fault_rate fault_seed shard
      shards merge jit jit_cache =
    let config =
      if quick then begin
        warn_if_jit_unavailable jit;
        {
          Verify.quick_config with
          split_heuristic = split;
          workers =
            (if workers <= 0 then Pool.default_workers () else workers);
          jit;
          jit_cache;
        }
      end
      else
        config_of ~split ~workers ~retries ~fuel_growth ?fault_rate
          ~fault_seed ~jit ?jit_cache fuel threshold delta deadline
    in
    (match
       List.filter
         (fun set -> set)
         [
           Option.is_some shard; Option.is_some shards; Option.is_some merge;
         ]
     with
    | _ :: _ :: _ ->
        prerr_endline
          "--shard, --shards and --merge are mutually exclusive";
        exit 2
    | _ -> ());
    try
      match (shard, shards, merge) with
      | _, _, Some base -> (
          (* Merge-only: no solving, just validate + join + render. *)
          match Shard_merge.merge_files ~base with
          | Error msg ->
              Printf.eprintf "--merge: %s\n" msg;
              exit 2
          | Ok m -> print_merged save metrics m)
      | Some (i, n), _, _ ->
          (* One shard of a distributed campaign. *)
          let base =
            match checkpoint with
            | Some p -> p
            | None ->
                prerr_endline "--shard requires --checkpoint";
                exit 2
          in
          if Option.is_some save then
            prerr_endline
              "warning: --save is ignored in shard mode (it applies to the \
               merged run)";
          let spec = { Verify.shard_index = i; shard_count = n } in
          let ckpt = Shard_merge.shard_path base i in
          let resume = Option.map (fun r -> Shard_merge.shard_path r i) resume in
          if progress then
            Obs.Progress.enable
              ~label:(Printf.sprintf "shard %d/%d" i n)
              ~total_pairs ();
          (* Crash injection for the @shard test gate (same ambient-hook
             idiom as XCV_FAULT_RATE): on a fresh — not resumed — shard
             run, die by SIGKILL right after the Nth pair's checkpoint
             entry is flushed, leaving a torn tail exactly as a kill
             mid-append would. The supervisor must then restart the shard
             from that checkpoint without changing the merged bytes. *)
          let kill_after =
            match Sys.getenv_opt "XCV_SHARD_KILL_AFTER" with
            | Some s when resume = None -> int_of_string_opt s
            | _ -> None
          in
          let pairs_done = ref 0 in
          let on_pair _ =
            incr pairs_done;
            match kill_after with
            | Some k when !pairs_done = k ->
                let oc =
                  open_out_gen [ Open_append; Open_binary ] 0o644 ckpt
                in
                output_string oc "(entry (outcome 3 (dfa to";
                close_out oc;
                Unix.kill (Unix.getpid ()) Sys.sigkill
            | _ -> ()
          in
          let pairs, snap =
            Verify.shard_campaign ~config ~shard:spec ~checkpoint:ckpt ?resume
              ~on_pair Registry.paper_five
          in
          Obs.Progress.disable ();
          Printf.printf "shard %d/%d: %d pairs checkpointed to %s\n" i n
            (List.length pairs) ckpt;
          Option.iter
            (fun m ->
              let path = if m = "-" then m else Shard_merge.shard_path m i in
              write_metrics_json (Obs.Metrics.to_json snap) path)
            metrics
      | _, Some n, _ -> (
          (* Supervisor: fork/exec the shards, restart the dead, merge. *)
          let base =
            match checkpoint with
            | Some p -> p
            | None ->
                prerr_endline "--shards requires --checkpoint";
                exit 2
          in
          let spawn ~shard ~resume =
            let args =
              [ "campaign"; "--shard"; Printf.sprintf "%d/%d" shard n;
                "--checkpoint"; base ]
              @ (if quick then [ "--quick" ] else [])
              @ [
                  "--fuel"; string_of_int fuel;
                  "--threshold"; Printf.sprintf "%.17g" threshold;
                  "--delta"; Printf.sprintf "%.17g" delta;
                  "--split";
                  (match split with `Widest -> "widest" | `Smear -> "smear");
                  "--workers"; string_of_int workers;
                  "--retries"; string_of_int retries;
                  "--fuel-growth"; string_of_int fuel_growth;
                  "--fault-seed"; string_of_int fault_seed;
                ]
              @ (match deadline with
                | Some d -> [ "--deadline"; Printf.sprintf "%.17g" d ]
                | None -> [])
              @ (match fault_rate with
                | Some r -> [ "--fault-rate"; Printf.sprintf "%.17g" r ]
                | None -> [])
              @ (match metrics with
                | Some m when m <> "-" -> [ "--metrics"; m ]
                | _ -> [])
              @ (if jit then [ "--jit" ] else [])
              @ (match jit_cache with
                | Some d -> [ "--jit-cache"; d ]
                | None -> [])
              @ (if progress then [ "--progress" ] else [])
              @ (if resume then [ "--resume"; base ] else [])
            in
            let prog = Sys.executable_name in
            Unix.create_process prog
              (Array.of_list (prog :: args))
              Unix.stdin Unix.stdout Unix.stderr
          in
          let on_event = function
            | Shard_supervisor.Started { shard; pid; restart } ->
                Printf.eprintf "[supervisor] shard %d started (pid %d%s)\n%!"
                  shard pid
                  (if restart = 0 then ""
                   else Printf.sprintf ", restart %d" restart)
            | Shard_supervisor.Died { shard; pid; status } ->
                Printf.eprintf "[supervisor] shard %d (pid %d) %s\n%!" shard
                  pid
                  (Shard_supervisor.status_to_string status)
            | Shard_supervisor.Restarting { shard; restart } ->
                Printf.eprintf
                  "[supervisor] restarting shard %d from its checkpoint \
                   (attempt %d)\n%!"
                  shard restart
            | Shard_supervisor.Gave_up { shard } ->
                Printf.eprintf "[supervisor] giving up on shard %d\n%!" shard
          in
          match Shard_supervisor.supervise ~count:n ~on_event ~spawn () with
          | Error msg ->
              Printf.eprintf "--shards: %s\n" msg;
              exit 2
          | Ok restarts -> (
              if restarts > 0 then
                Printf.eprintf "[supervisor] %d shard restart(s)\n%!" restarts;
              match Shard_merge.merge_files ~base with
              | Error msg ->
                  Printf.eprintf "--shards: merge failed: %s\n" msg;
                  exit 2
              | Ok m -> print_merged save metrics m))
      | None, None, None ->
          if progress then Obs.Progress.enable ~total_pairs ();
          let outcomes = Xcverifier.verify_all ~config ?checkpoint ?resume () in
          Obs.Progress.disable ();
          print_outcomes outcomes;
          save_outcomes save outcomes;
          Option.iter write_metrics metrics
    with Failure msg ->
      prerr_endline msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Verify every applicable condition for the paper's five DFAs")
    Term.(
      const run $ quick_arg $ fuel_arg $ threshold_arg $ delta_arg
      $ deadline_arg $ split_arg $ workers_arg $ save_arg $ checkpoint_arg
      $ resume_arg $ metrics_arg $ progress_arg $ retries_arg
      $ fuel_growth_arg $ fault_rate_arg $ fault_seed_arg $ shard_arg
      $ shards_arg $ merge_arg $ jit_arg $ jit_cache_arg)

(* ---- replay ----------------------------------------------------------- *)

let replay_cmd =
  let file_arg =
    let doc = "Archive produced by campaign --save." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"FILE")
  in
  let run file map =
    let outcomes = Serialize.load file in
    List.iter (fun o -> Format.printf "%a@." Outcome.pp_summary o) outcomes;
    print_newline ();
    print_string (Report.table1 outcomes);
    if map then
      List.iter
        (fun o ->
          Printf.printf "\n%s / %s\n" o.Outcome.dfa o.Outcome.condition;
          print_string (Render.outcome_map o))
        outcomes
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-render tables and maps from an archived campaign without \
          re-solving")
    Term.(const run $ file_arg $ map_arg)

(* ---- baseline -------------------------------------------------------- *)

let baseline_cmd =
  let run dfa cond n map =
    match lookup_pair dfa cond with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok (f, c) -> (
        match Pbcheck.check ~n f c with
        | None ->
            Printf.printf "%s does not apply to %s\n" cond dfa;
            exit 1
        | Some r ->
            Format.printf "%a@." Pbcheck.pp_summary r;
            (match Pbcheck.violation_boundary_s r with
            | Some s -> Format.printf "violations at s >= %.4f@." s
            | None -> ());
            if map then print_string (Render.pb_map r))
  in
  Cmd.v
    (Cmd.info "baseline"
       ~doc:"Run the Pederson-Burke grid-search baseline on one pair")
    Term.(const run $ dfa_arg $ condition_arg $ grid_arg $ map_arg)

(* ---- compare --------------------------------------------------------- *)

let compare_cmd =
  let run dfa cond fuel threshold delta deadline n =
    match lookup_pair dfa cond with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok (f, c) -> (
        let config = config_of fuel threshold delta deadline in
        match Verify.run_pair ~config f c, Pbcheck.check ~n f c with
        | Some o, Some pb ->
            print_string (Xcverifier.figure o (Some pb));
            let cons, overlap = Report.consistency_of o pb in
            Format.printf
              "consistency: %s (%.0f%% of PB violations inside unverified \
               regions)@."
              (Report.consistency_symbol cons)
              (100.0 *. overlap)
        | _ ->
            Printf.printf "%s does not apply to %s\n" cond dfa;
            exit 1)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Verify and grid-check one pair; print both maps and consistency")
    Term.(
      const run $ dfa_arg $ condition_arg $ fuel_arg $ threshold_arg
      $ delta_arg $ deadline_arg $ grid_arg)

(* ---- serve / query --------------------------------------------------- *)

let socket_arg =
  let doc = "Unix-domain socket path of the verification service." in
  Arg.(value & opt string "xcv.sock" & info [ "socket" ] ~doc ~docv:"PATH")

let deadline_ms_arg =
  let doc =
    "Default per-query wall budget in milliseconds; an expired deadline \
     returns the partial verdict map painted so far."
  in
  Arg.(
    value
    & opt (some (bounded_int ~what:"deadline-ms" ~min:1)) None
    & info [ "deadline-ms" ] ~doc)

let serve_cmd =
  let cache_dir_arg =
    let doc = "Directory of the persistent verdict cache (created if absent)." in
    Arg.(value & opt string "xcv-cache" & info [ "cache-dir" ] ~doc ~docv:"DIR")
  in
  let max_inflight_arg =
    let doc =
      "Admission bound: queued + running queries beyond this are rejected \
       with an overloaded response instead of buffered."
    in
    Arg.(
      value
      & opt (bounded_int ~what:"max-inflight" ~min:1) 4
      & info [ "max-inflight" ] ~doc)
  in
  let fuel_quota_arg =
    let doc =
      "Per-client solver-fuel quota; queries degrade to coarser grids as \
       the quota runs down and are refused only when even the coarsest \
       rung is unaffordable."
    in
    Arg.(
      value
      & opt (some (bounded_int ~what:"fuel-quota" ~min:1)) None
      & info [ "fuel-quota" ] ~doc)
  in
  let progress_arg =
    let doc = "Emit the stderr progress line, retagged per query id." in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let run socket cache_dir max_inflight deadline_ms fuel_quota fuel threshold
      delta workers progress jit jit_cache =
    let verify =
      config_of ~workers ~jit ?jit_cache fuel threshold delta None
    in
    (* same ambient-hook idiom as XCV_SHARD_KILL_AFTER: tear the cache
       group file after the Nth commit and die by SIGKILL, so the restart
       test can check repair + byte-identical replay *)
    let kill_after =
      match Sys.getenv_opt "XCV_SERVE_KILL_AFTER" with
      | Some s -> int_of_string_opt s
      | None -> None
    in
    let engine =
      {
        Engine.cache_dir;
        max_inflight;
        default_deadline_ms = deadline_ms;
        fuel_quota;
        verify;
        io_faults = Fault.io_of_env ();
        kill_after;
      }
    in
    if progress then Obs.Progress.enable ~label:"service" ~total_pairs:0 ();
    Printf.printf "serving on %s (cache %s, max-inflight %d)\n%!" socket
      cache_dir max_inflight;
    match
      Daemon.run
        { Daemon.engine; socket_path = socket; progress_interval_ms = 500 }
    with
    | () -> ()
    | exception Failure msg ->
        prerr_endline msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification daemon: crash-safe verdict cache, bounded \
          admission, per-client quotas with graceful degradation")
    Term.(
      const run $ socket_arg $ cache_dir_arg $ max_inflight_arg
      $ deadline_ms_arg $ fuel_quota_arg $ fuel_arg $ threshold_arg
      $ delta_arg $ workers_arg $ progress_arg $ jit_arg $ jit_cache_arg)

let query_cmd =
  let condition_opt_arg =
    let doc =
      "Exact condition (ec1 .. ec7); omit to run every applicable \
       condition for the functional (a campaign query)."
    in
    Arg.(
      value & opt (some string) None
      & info [ "c"; "condition" ] ~doc ~docv:"COND")
  in
  let id_arg =
    let doc = "Client-chosen query id echoed in every response." in
    Arg.(value & opt int 1 & info [ "id" ] ~doc)
  in
  let fuel_opt_arg =
    let doc = "Solver fuel override for this query." in
    Arg.(
      value
      & opt (some (bounded_int ~what:"fuel" ~min:1)) None
      & info [ "fuel" ] ~doc)
  in
  let threshold_opt_arg =
    let doc = "Splitting-threshold override for this query." in
    Arg.(
      value
      & opt (some (positive_float ~what:"threshold")) None
      & info [ "t"; "threshold" ] ~doc)
  in
  let stats_arg =
    let doc = "Ask for service statistics instead of a verification." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let print_result = function
    | Protocol.Result { cached; degraded; partial; outcome; _ } ->
        Format.printf "%a@." Outcome.pp_summary outcome;
        let tags =
          List.concat
            [
              (if cached then [ "cached" ] else []);
              (if degraded > 0 then
                 [ Printf.sprintf "degraded(rung %d)" degraded ]
               else []);
              (if partial then [ "partial" ] else []);
            ]
        in
        if tags <> [] then Printf.printf "  [%s]\n" (String.concat ", " tags)
    | Protocol.Done { count; _ } -> Printf.printf "%d pair(s) verified\n" count
    | Protocol.Overloaded { inflight; max_inflight; _ } ->
        Printf.printf "overloaded: %d/%d queries in flight — retry later\n"
          inflight max_inflight;
        exit 3
    | Protocol.Refused { reason; _ } ->
        Printf.printf "refused: %s\n" reason;
        exit 3
    | Protocol.Failed { message; _ } ->
        prerr_endline message;
        exit 2
    | Protocol.Stats_reply { stats; _ } ->
        Printf.printf
          "cache hits %d  misses %d  solver calls %d  pending %d  quota %s\n"
          stats.Protocol.cache_hits stats.Protocol.cache_misses
          stats.Protocol.solver_calls stats.Protocol.pending
          (match stats.Protocol.quota_remaining with
          | Some q -> string_of_int q
          | None -> "unlimited")
    | Protocol.Pong -> print_endline "pong"
    | Protocol.Progress _ -> ()
  in
  let run socket dfa cond id deadline_ms fuel threshold stats =
    match
      let fd = Protocol.connect socket in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let req =
            if stats then Protocol.Stats id
            else
              let opts = Protocol.{ deadline_ms; fuel; threshold } in
              match cond with
              | Some condition -> Protocol.Verify { id; dfa; condition; opts }
              | None -> Protocol.Campaign { id; dfa; opts }
          in
          Protocol.call fd req
            ~on_progress:(function
              | Protocol.Progress { label; boxes; solver_calls; _ } ->
                  Printf.eprintf "[%s] boxes %d solver calls %d\n%!" label
                    boxes solver_calls
              | _ -> ()))
    with
    | responses -> List.iter print_result responses
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "query: cannot reach %s: %s\n" socket
          (Unix.error_message e);
        exit 2
    | exception Failure msg ->
        prerr_endline msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send one verification query to a running daemon")
    Term.(
      const run $ socket_arg $ dfa_arg $ condition_opt_arg $ id_arg
      $ deadline_ms_arg $ fuel_opt_arg $ threshold_opt_arg $ stats_arg)

let () =
  let info =
    Cmd.info "xcverifier" ~version:Xcverifier.version
      ~doc:
        "Formal verification of DFT exact conditions for density functional \
         approximations"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; encode_cmd; verify_cmd; campaign_cmd; baseline_cmd;
            compare_cmd; extra_cmd; replay_cmd; serve_cmd; query_cmd;
          ]))
