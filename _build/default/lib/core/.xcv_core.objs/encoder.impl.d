lib/core/encoder.ml: Box Conditions Domain_spec Expr Form List Registry
