lib/core/xcverifier.mli: Outcome Pbcheck Verify
