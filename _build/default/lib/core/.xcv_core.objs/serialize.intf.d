lib/core/serialize.mli: Outcome
