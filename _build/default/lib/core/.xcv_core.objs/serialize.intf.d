lib/core/serialize.mli: Outcome Trace
