lib/core/report.ml: Array Box Buffer Conditions List Mesh Outcome Pbcheck Registry String
