lib/core/trace.mli: Box Format
