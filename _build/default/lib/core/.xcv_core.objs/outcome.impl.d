lib/core/outcome.ml: Array Box Format Interval List String
