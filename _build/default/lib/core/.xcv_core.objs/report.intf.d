lib/core/report.mli: Outcome Pbcheck
