lib/core/render.mli: Outcome Pbcheck
