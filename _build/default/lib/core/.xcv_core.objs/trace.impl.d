lib/core/trace.ml: Box Format Int List Mutex String
