lib/core/serialize.ml: Box Buffer Char Float Format Fun Interval List Outcome Parser Printf String Trace
