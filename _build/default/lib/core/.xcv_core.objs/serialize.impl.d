lib/core/serialize.ml: Box Buffer Char Format Fun Interval List Outcome Parser Printf String
