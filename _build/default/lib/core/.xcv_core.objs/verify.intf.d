lib/core/verify.mli: Box Conditions Encoder Form Icp Outcome Registry Trace
