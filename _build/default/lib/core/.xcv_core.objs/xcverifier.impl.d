lib/core/xcverifier.ml: Conditions Outcome Pbcheck Printf Registry Render Report Verify
