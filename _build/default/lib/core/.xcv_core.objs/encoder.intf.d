lib/core/encoder.mli: Box Conditions Form Registry
