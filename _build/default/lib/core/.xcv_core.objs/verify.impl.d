lib/core/verify.ml: Box Conditions Encoder Eval Float Form Icp List Option Outcome Pool Registry Taylor Unix
