lib/core/verify.ml: Atomic Box Conditions Encoder Eval Float Form Fun Icp List Option Outcome Pool Registry Stdlib Taylor Trace Unix Worklist
