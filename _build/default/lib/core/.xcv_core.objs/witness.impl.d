lib/core/witness.ml: Encoder Eval Float Form Format Ieval Interval List Outcome
