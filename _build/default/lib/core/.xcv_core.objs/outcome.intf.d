lib/core/outcome.mli: Box Format
