lib/core/render.ml: Array Box Buffer List Mesh Outcome Pbcheck Printf Stdlib String
