lib/core/witness.mli: Encoder Format Interval Outcome
