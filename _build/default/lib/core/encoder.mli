(** XCEncoder (paper Section III-A): turn a (DFA, exact condition) pair into
    the solver problem of Equation 12.

    The paper's pipeline — Maple source, CodeGeneration to Python, symbolic
    execution to a dReal expression, SymPy for derivatives — collapses here
    to: look the functional's symbolic form up in {!Registry}, build the
    local condition with {!Conditions.local_condition} (derivatives via
    {!Deriv}), and pair it with the input-domain box of {!Domain_spec}. The
    solver decides [domain /\ not psi]; UNSAT means the condition holds. *)

type problem = {
  dfa : Registry.t;
  condition : Conditions.id;
  domain : Box.t;
  psi : Form.atom;  (** the local condition, [expr >= 0] *)
  negated : Form.t;  (** [not psi] — what the solver refutes *)
}

(** [encode dfa cond] builds the problem; [None] when the condition does not
    apply to the DFA (Table I's "-" entries). *)
val encode : Registry.t -> Conditions.id -> problem option

(** All applicable problems for a list of functionals — the paper's 29 pairs
    for {!Registry.paper_five}. *)
val encode_all : Registry.t list -> problem list

(** Operation count (tree size) of the encoded [psi] — the paper's measure
    of functional complexity ("over 300 operations" for PBE correlation). *)
val operation_count : problem -> int
