type config = {
  threshold : float;
  solver : Icp.config;
  deadline_seconds : float option;
  workers : int;
  use_taylor : bool;
}

let default_config =
  {
    threshold = 0.05;
    solver =
      { Icp.default_config with fuel = 600; delta = 1e-4; contractor_rounds = 3 };
    deadline_seconds = None;
    workers = 1;
    use_taylor = false;
  }

let quick_config =
  {
    threshold = 0.15625;
    solver =
      { Icp.default_config with fuel = 250; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 30.0;
    workers = 1;
    use_taylor = false;
  }

(* The paper's valid(x): plug the model back into the *negated* condition in
   float arithmetic; a true counterexample violates psi, i.e. satisfies
   not psi. *)
let valid_model negated model = Form.all_hold_at model negated

(* A scheduler task: one box of the splitting tree. [path] is the sequence
   of child indices from the root; it makes the paint log's pre-order
   reconstructible after out-of-order parallel execution. [width] and
   [margin] are cached at task creation so the heap comparator never
   touches the box or the expression. *)
type task = {
  box : Box.t;
  depth : int;
  path : int list;
  width : float;
  margin : float;
}

(* Widest-box-first; among boxes of equal width (siblings of one splitting
   generation), most-violating-first — the worklist generalization of the
   old recursion's violation-first child ordering, and what still reaches
   small counterexample pockets (e.g. the LYP T_c-bound corner at rs > 4.8,
   s > 2.4) long before the deadline. *)
let schedule_order a b =
  match Float.compare b.width a.width with
  | 0 -> Float.compare a.margin b.margin
  | c -> c

let run_custom ?(config = default_config) ?recorder ~dfa_label ~condition_label
    ~domain ~(psi : Form.atom) () =
  let negated = [ Form.negate_atom psi ] in
  let contractors =
    if config.use_taylor then
      List.map (fun a -> Taylor.contractor (Taylor.prepare a)) negated
    else []
  in
  let started = Unix.gettimeofday () in
  let deadline =
    Option.map (fun s -> started +. s) config.deadline_seconds
  in
  let past_deadline () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  let solver_calls = Atomic.make 0
  and total_expansions = Atomic.make 0
  and total_prunes = Atomic.make 0
  and total_revise_calls = Atomic.make 0 in
  let record path depth box step kind =
    match recorder with
    | Some r -> Trace.record r { Trace.path; depth; step; box; kind }
    | None -> ()
  in
  (* Midpoint margin towards satisfying (not psi): smaller = more violating.
     Pure search heuristic — evaluation only, no expression construction,
     so it is safe on worker domains. *)
  let margin box =
    match negated with
    | [ a ] ->
        let v = Eval.eval (Box.midpoint box) a.Form.expr in
        if Float.is_nan v then Float.infinity
        else (
          match a.Form.rel with
          | Form.Ge0 | Form.Gt0 -> -.v
          | Form.Le0 | Form.Lt0 | Form.Eq0 -> v)
    | _ -> 0.0
  in
  let children t =
    let boxes = Box.split_all t.box in
    let boxes =
      List.stable_sort
        (fun (_, m1) (_, m2) -> Float.compare m1 m2)
        (List.map (fun b -> (b, margin b)) boxes)
    in
    record t.path t.depth t.box 3 (Trace.Split (List.length boxes));
    List.mapi
      (fun i (b, m) ->
        {
          box = b;
          depth = t.depth + 1;
          path = t.path @ [ i ];
          width = Box.max_width b;
          margin = m;
        })
      boxes
  in
  (* Handle one box: solve, paint, and split when unresolved. Runs on
     worker domains; everything here is construction-free (the formula and
     contractors were built above, on the calling domain). *)
  let handle t =
    if t.width < config.threshold then (None, [])
    else begin
      Atomic.incr solver_calls;
      let verdict, stats = Icp.solve ~contractors config.solver t.box negated in
      ignore (Atomic.fetch_and_add total_expansions stats.Icp.expansions);
      ignore (Atomic.fetch_and_add total_prunes stats.Icp.prunes);
      ignore (Atomic.fetch_and_add total_revise_calls stats.Icp.revise_calls);
      record t.path t.depth t.box 0
        (Trace.Contract
           { revise_calls = stats.Icp.revise_calls; sweeps = stats.Icp.sweeps });
      record t.path t.depth t.box 1
        (Trace.Solve { fuel = stats.Icp.expansions; prunes = stats.Icp.prunes });
      let region status subtasks =
        record t.path t.depth t.box 2 (Trace.Verdict (Outcome.status_name status));
        ( Some (t.path, { Outcome.box = t.box; status; depth = t.depth }),
          subtasks )
      in
      match verdict with
      | Icp.Unsat -> region Outcome.Verified []
      | Icp.Sat { model; _ } ->
          let status =
            if valid_model negated model then Outcome.Counterexample model
            else Outcome.Inconclusive model
          in
          region status (children t)
      | Icp.Timeout -> region Outcome.Timeout (children t)
    end
  in
  let root =
    {
      box = domain;
      depth = 0;
      path = [];
      width = Box.max_width domain;
      margin = 0.0;
    }
  in
  let { Worklist.results; dropped } =
    Worklist.process ~workers:(Stdlib.max 1 config.workers)
      ~compare:schedule_order ~stop:past_deadline ~handle [ root ]
  in
  (* Graceful drain: boxes still pending at the deadline are painted as
     timeouts (the old recursion's behaviour for boxes it reached after the
     deadline), except sub-threshold boxes, which would not have been
     solved anyway. *)
  let drained =
    List.filter_map
      (fun t ->
        if t.width < config.threshold then None
        else
          Some (t.path, { Outcome.box = t.box; status = Outcome.Timeout;
                          depth = t.depth }))
      dropped
  in
  (* Restore the pre-order paint log: parents (shorter paths) before
     children, siblings in violation-first order — identical to the old
     depth-first recursion's log, and identical at every worker count. *)
  let regions =
    List.filter_map Fun.id results @ drained
    |> List.sort (fun (p1, _) (p2, _) -> Trace.compare_path p1 p2)
    |> List.map snd
  in
  {
    Outcome.dfa = dfa_label;
    condition = condition_label;
    domain;
    regions;
    stats =
      {
        Outcome.solver_calls = Atomic.get solver_calls;
        total_expansions = Atomic.get total_expansions;
        total_prunes = Atomic.get total_prunes;
        total_revise_calls = Atomic.get total_revise_calls;
        elapsed = Unix.gettimeofday () -. started;
      };
  }

let run ?config ?recorder (p : Encoder.problem) =
  run_custom ?config ?recorder ~dfa_label:p.Encoder.dfa.Registry.label
    ~condition_label:(Conditions.name p.Encoder.condition)
    ~domain:p.Encoder.domain ~psi:p.Encoder.psi ()

let run_pair ?config ?recorder dfa cond =
  Option.map (run ?config ?recorder) (Encoder.encode dfa cond)

let campaign ?config dfas =
  List.concat_map
    (fun dfa ->
      List.filter_map (fun cond -> run_pair ?config dfa cond) Conditions.all)
    dfas

let campaign_parallel ?config ~workers dfas =
  (* Expressions must be hash-consed on the main domain (the cons table is
     unsynchronized); encode everything first, then fan the construction-free
     solver runs out over the pool. *)
  let problems = Encoder.encode_all dfas in
  Pool.map ~workers (fun p -> run ?config p) problems
