type config = {
  threshold : float;
  solver : Icp.config;
  deadline_seconds : float option;
  workers : int;
  use_taylor : bool;
}

let default_config =
  {
    threshold = 0.05;
    solver =
      { Icp.default_config with fuel = 600; delta = 1e-4; contractor_rounds = 3 };
    deadline_seconds = None;
    workers = 1;
    use_taylor = false;
  }

let quick_config =
  {
    threshold = 0.15625;
    solver =
      { Icp.default_config with fuel = 250; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 30.0;
    workers = 1;
    use_taylor = false;
  }

(* The paper's valid(x): plug the model back into the *negated* condition in
   float arithmetic; a true counterexample violates psi, i.e. satisfies
   not psi. *)
let valid_model negated model = Form.all_hold_at model negated

let run_custom ?(config = default_config) ~dfa_label ~condition_label ~domain
    ~(psi : Form.atom) () =
  let negated = [ Form.negate_atom psi ] in
  let contractors =
    if config.use_taylor then
      List.map (fun a -> Taylor.contractor (Taylor.prepare a)) negated
    else []
  in
  let started = Unix.gettimeofday () in
  let deadline =
    Option.map (fun s -> started +. s) config.deadline_seconds
  in
  let past_deadline () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  let solver_calls = ref 0 and total_expansions = ref 0 in
  (* Returns the pre-order paint log of the subtree rooted at [box]. *)
  let rec go box depth =
    if Box.max_width box < config.threshold then []
    else if past_deadline () then
      [ { Outcome.box; status = Outcome.Timeout; depth } ]
    else begin
      incr solver_calls;
      let verdict, stats = Icp.solve ~contractors config.solver box negated in
      total_expansions := !total_expansions + stats.Icp.expansions;
      match verdict with
      | Icp.Unsat -> [ { Outcome.box; status = Outcome.Verified; depth } ]
      | Icp.Sat { model; _ } ->
          let status =
            if valid_model negated model then Outcome.Counterexample model
            else Outcome.Inconclusive model
          in
          { Outcome.box; status; depth } :: recurse box depth
      | Icp.Timeout ->
          { Outcome.box; status = Outcome.Timeout; depth } :: recurse box depth
    end
  and recurse box depth =
    let children = Box.split_all box in
    (* Violation-first ordering: visit children whose midpoint comes closest
       to satisfying (not psi) first. Pure search heuristic — every child is
       still visited — but it reaches small counterexample pockets (e.g. the
       LYP T_c-bound corner at rs > 4.8, s > 2.4) long before the deadline. *)
    let children =
      let margin c =
        (* negated is a single atom "expr rel 0" with rel in {Lt0, Gt0};
           smaller psi-margin = more violating. *)
        match negated with
        | [ a ] ->
            let v = Eval.eval (Box.midpoint c) a.Form.expr in
            if Float.is_nan v then Float.infinity
            else (
              match a.Form.rel with
              | Form.Ge0 | Form.Gt0 -> -.v
              | Form.Le0 | Form.Lt0 | Form.Eq0 -> v)
        | _ -> 0.0
      in
      List.stable_sort
        (fun c1 c2 -> Float.compare (margin c1) (margin c2))
        children
    in
    if depth = 0 && config.workers > 1 then
      List.concat (Pool.map ~workers:config.workers (fun c -> go c 1) children)
    else List.concat_map (fun c -> go c (depth + 1)) children
  in
  let regions = go domain 0 in
  {
    Outcome.dfa = dfa_label;
    condition = condition_label;
    domain;
    regions;
    solver_calls = !solver_calls;
    total_expansions = !total_expansions;
    elapsed = Unix.gettimeofday () -. started;
  }

let run ?config (p : Encoder.problem) =
  run_custom ?config ~dfa_label:p.Encoder.dfa.Registry.label
    ~condition_label:(Conditions.name p.Encoder.condition)
    ~domain:p.Encoder.domain ~psi:p.Encoder.psi ()

let run_pair ?config dfa cond =
  Option.map (run ?config) (Encoder.encode dfa cond)

let campaign ?config dfas =
  List.concat_map
    (fun dfa ->
      List.filter_map (fun cond -> run_pair ?config dfa cond) Conditions.all)
    dfas

let campaign_parallel ?config ~workers dfas =
  (* Expressions must be hash-consed on the main domain (the cons table is
     unsynchronized); encode everything first, then fan the construction-free
     solver runs out over the pool. *)
  let problems = Encoder.encode_all dfas in
  Pool.map ~workers (fun p -> run ?config p) problems
