(** Generation of the paper's two results tables.

    Table I: per (DFA, condition) verdict of XCVerifier — ✓ (here [OK]),
    ✓* ([OK*]), ? , ✗ ([X]) or – (not applicable).

    Table II: consistency between XCVerifier and the Pederson-Burke grid
    baseline — ⊙ (here [C], both find counterexamples, in overlapping
    regions), ⊙* ([C*], neither finds counterexamples), ? (XCVerifier timed
    out everywhere), [!] (inconsistent — should not occur). *)

(** Consistency symbol of Table II. *)
type consistency = Consistent | Not_inconsistent | Undecidable | Inconsistent

(** [consistency_of outcome pb] derives the Table II cell for one pair,
    along with the fraction of PB-violating grid points that fall inside
    XCVerifier counterexample regions (the "similar regions" check; [1.0]
    when PB finds no violations). *)
val consistency_of : Outcome.t -> Pbcheck.result -> consistency * float

val consistency_symbol : consistency -> string

(** [table1 outcomes] formats Table I from a campaign's outcomes (missing
    pairs print as [-]). *)
val table1 : Outcome.t list -> string

(** [table2 outcomes pb_results] formats Table II. *)
val table2 : Outcome.t list -> Pbcheck.result list -> string

(** Expected Table I of the paper, for EXPERIMENTS.md comparison: maps
    (dfa label, condition name) to the paper's symbol. *)
val paper_table1 : ((string * string) * string) list
