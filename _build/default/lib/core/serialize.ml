module S = Parser.Sexp

let format_version = 1

let fail fmt = Format.kasprintf (fun s -> raise (Parser.Parse_error s)) fmt

(* Labels may contain spaces ("VWN RPA") or parentheses, which would break
   atom lexing; percent-encode everything outside a safe set. *)
let encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' | '+' | '/' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)))
    s;
  Buffer.contents buf

let decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf
          (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

(* Hex float atoms round-trip bit-exactly. *)
let atom_of_float f = S.Atom (Printf.sprintf "%h" f)

let float_of_atom = function
  | S.Atom a -> (
      match float_of_string_opt a with
      | Some f -> f
      | None -> fail "expected float, got %S" a)
  | S.List _ -> fail "expected float atom"

let sexp_of_interval name iv =
  S.List [ S.Atom name; atom_of_float (Interval.inf iv); atom_of_float (Interval.sup iv) ]

let sexp_of_box box =
  S.List
    (S.Atom "box"
    :: List.map (fun v -> sexp_of_interval v (Box.get box v)) (Box.vars box))

let box_of_sexp = function
  | S.List (S.Atom "box" :: dims) ->
      Box.make
        (List.map
           (function
             | S.List [ S.Atom v; lo; hi ] ->
                 (v, Interval.make (float_of_atom lo) (float_of_atom hi))
             | _ -> fail "malformed box dimension")
           dims)
  | _ -> fail "expected (box ...)"

let sexp_of_model model =
  S.List
    (S.Atom "model"
    :: List.map
         (fun (v, x) -> S.List [ S.Atom v; atom_of_float x ])
         model)

let model_of_sexp = function
  | S.List (S.Atom "model" :: bindings) ->
      List.map
        (function
          | S.List [ S.Atom v; x ] -> (v, float_of_atom x)
          | _ -> fail "malformed model binding")
        bindings
  | _ -> fail "expected (model ...)"

let sexp_of_status = function
  | Outcome.Verified -> S.List [ S.Atom "verified" ]
  | Outcome.Timeout -> S.List [ S.Atom "timeout" ]
  | Outcome.Counterexample m -> S.List [ S.Atom "counterexample"; sexp_of_model m ]
  | Outcome.Inconclusive m -> S.List [ S.Atom "inconclusive"; sexp_of_model m ]

let status_of_sexp = function
  | S.List [ S.Atom "verified" ] -> Outcome.Verified
  | S.List [ S.Atom "timeout" ] -> Outcome.Timeout
  | S.List [ S.Atom "counterexample"; m ] -> Outcome.Counterexample (model_of_sexp m)
  | S.List [ S.Atom "inconclusive"; m ] -> Outcome.Inconclusive (model_of_sexp m)
  | _ -> fail "malformed status"

let sexp_of_region (r : Outcome.region) =
  S.List
    [
      S.Atom "region";
      S.Atom (string_of_int r.Outcome.depth);
      sexp_of_status r.Outcome.status;
      sexp_of_box r.Outcome.box;
    ]

let region_of_sexp = function
  | S.List [ S.Atom "region"; S.Atom depth; status; box ] ->
      {
        Outcome.depth = int_of_string depth;
        status = status_of_sexp status;
        box = box_of_sexp box;
      }
  | _ -> fail "malformed region"

let sexp_of_outcome (o : Outcome.t) =
  S.List
    [
      S.Atom "outcome";
      S.Atom (string_of_int format_version);
      S.List [ S.Atom "dfa"; S.Atom (encode o.Outcome.dfa) ];
      S.List [ S.Atom "condition"; S.Atom (encode o.Outcome.condition) ];
      sexp_of_box o.Outcome.domain;
      S.List
        [
          S.Atom "stats";
          S.Atom (string_of_int o.Outcome.solver_calls);
          S.Atom (string_of_int o.Outcome.total_expansions);
          atom_of_float o.Outcome.elapsed;
        ];
      S.List (S.Atom "regions" :: List.map sexp_of_region o.Outcome.regions);
    ]

let outcome_of_sexp = function
  | S.List
      [
        S.Atom "outcome"; S.Atom version;
        S.List [ S.Atom "dfa"; S.Atom dfa ];
        S.List [ S.Atom "condition"; S.Atom condition ];
        domain;
        S.List [ S.Atom "stats"; S.Atom calls; S.Atom expansions; elapsed ];
        S.List (S.Atom "regions" :: regions);
      ] ->
      if int_of_string version <> format_version then
        fail "unsupported outcome format version %s" version;
      {
        Outcome.dfa = decode dfa;
        condition = decode condition;
        domain = box_of_sexp domain;
        regions = List.map region_of_sexp regions;
        solver_calls = int_of_string calls;
        total_expansions = int_of_string expansions;
        elapsed = float_of_atom elapsed;
      }
  | _ -> fail "malformed outcome"

let to_string o =
  let buf = Buffer.create 4096 in
  S.print buf (sexp_of_outcome o);
  Buffer.contents buf

let of_string s = outcome_of_sexp (S.parse s)

let save path outcomes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun o ->
          output_string oc (to_string o);
          output_char oc '\n')
        outcomes)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line ->
            let acc =
              if String.trim line = "" then acc else of_string line :: acc
            in
            go acc
        | exception End_of_file -> List.rev acc
      in
      go [])
