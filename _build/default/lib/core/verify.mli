(** Algorithm 1 of the paper: recursive domain-splitting verification.

    For a box [D] and encoded condition [psi]:

    + if [max_width D < t] — below the splitting threshold — return;
    + run the δ-complete solver on [D /\ not psi];
    + UNSAT: record [D] as {e verified} and return;
    + SAT with model [x]: re-check [x] in float arithmetic ([valid(x)]);
      record a {e counterexample} (valid) or {e inconclusive} (spurious
      δ-sat model);
    + timeout: record a {e timeout};
    + in the SAT and timeout cases, split every dimension of [D] in two and
      recurse on each child, isolating the violating subregions.

    Differences from the paper's setup, by necessity of substrate: the
    per-call two-hour dReal limit becomes a deterministic fuel budget
    ([solver.fuel] box expansions per call), and an optional global
    wall-clock deadline stops the recursion early (remaining boxes are
    recorded as timeouts). *)

type config = {
  threshold : float;  (** the paper's [t]; default 0.05 *)
  solver : Icp.config;
  deadline_seconds : float option;
      (** global wall budget for one (DFA, condition) pair *)
  workers : int;  (** parallel workers for the top-level split *)
  use_taylor : bool;
      (** add the mean-value-form contractor ({!Taylor}) to the solver's
          contraction pipeline; helps on smooth conditions once boxes are
          small, costs one symbolic gradient per pair up front *)
}

val default_config : config

(** A quick preset for demos and benches: coarser threshold, smaller fuel. *)
val quick_config : config

(** [run ~config problem] executes Algorithm 1 and returns the full outcome
    (paint log + statistics). *)
val run : ?config:config -> Encoder.problem -> Outcome.t

(** [run_custom ~dfa_label ~condition_label ~domain ~psi ()] runs
    Algorithm 1 on an arbitrary local condition [psi] (an [expr >= 0]-style
    atom) over an arbitrary box — the entry point for conditions outside the
    registry pipeline, e.g. spin-resolved slices or user-supplied
    inequalities from the CLI. Labels are only used in the outcome record. *)
val run_custom :
  ?config:config -> dfa_label:string -> condition_label:string ->
  domain:Box.t -> psi:Form.atom -> unit -> Outcome.t

(** [run_pair ~config dfa cond] encodes and runs; [None] if the condition
    does not apply. *)
val run_pair :
  ?config:config -> Registry.t -> Conditions.id -> Outcome.t option

(** [campaign ~config dfas] runs every applicable pair (Table I's rows x
    columns), sequentially per pair. *)
val campaign : ?config:config -> Registry.t list -> Outcome.t list

(** [campaign_parallel ~config ~workers dfas] — as {!campaign}, but fanned
    out over a {!Pool} of domains. All formulas are encoded on the calling
    domain first (expression hash-consing is not thread-safe); the solver
    itself never builds expressions, so the parallel runs are safe. *)
val campaign_parallel :
  ?config:config -> workers:int -> Registry.t list -> Outcome.t list
