(** Persistence of verification outcomes.

    A full campaign is expensive; CI and analysis workflows want to archive
    the verdicts and re-render tables/maps without re-solving. Outcomes are
    written as s-expressions with hex float literals ([%h]) so every bound
    and model coordinate round-trips bit-exactly.

    The format is versioned; {!load} rejects unknown versions rather than
    guessing. *)

val format_version : int

(** [to_string outcome] serializes one outcome. *)
val to_string : Outcome.t -> string

(** [of_string s] parses a serialized outcome.
    @raise Parser.Parse_error on malformed input or version mismatch. *)
val of_string : string -> Outcome.t

(** [save path outcomes] / [load path] — a campaign archive (one
    s-expression per line). *)
val save : string -> Outcome.t list -> unit

val load : string -> Outcome.t list
