(** Counterexample certificates.

    A refutation verdict is only as credible as its witness. This module
    extracts every counterexample model from an outcome into a standalone
    certificate that a third party can re-check without trusting the solver:
    each witness carries the input point, the value of the local-condition
    expression at that point (float), and a rigorous interval enclosure of
    that value obtained by degenerate-interval evaluation — when the
    enclosure's upper bound is negative, the violation is {e proved} in
    exact real arithmetic, independent of the search that found it. *)

type strength =
  | Certified  (** interval enclosure entirely below zero: proof *)
  | Float_only
      (** float evaluation negative but the enclosure straddles zero
          (borderline violation within rounding slack) *)

type witness = {
  point : (string * float) list;
  psi_value : float;  (** float value of the condition expression *)
  enclosure : Interval.t;  (** certified enclosure of the same value *)
  strength : strength;
}

type t = {
  dfa : string;
  condition : string;
  witnesses : witness list;
}

(** [extract problem outcome] re-checks every counterexample model in the
    outcome's paint log against [problem.psi] and builds the certificate.
    Models whose violation cannot be reproduced even in float arithmetic are
    dropped (and counted). *)
val extract : Encoder.problem -> Outcome.t -> t * int

(** [recheck t problem] re-validates a certificate from scratch; [true] iff
    every witness still violates the condition. *)
val recheck : t -> Encoder.problem -> bool

val pp : Format.formatter -> t -> unit
