type problem = {
  dfa : Registry.t;
  condition : Conditions.id;
  domain : Box.t;
  psi : Form.atom;
  negated : Form.t;
}

let encode dfa condition =
  match Conditions.local_condition condition dfa with
  | None -> None
  | Some psi ->
      Some
        {
          dfa;
          condition;
          domain = Domain_spec.box_for dfa;
          psi;
          negated = [ Form.negate_atom psi ];
        }

let encode_all dfas =
  List.concat_map
    (fun dfa ->
      List.filter_map (encode dfa) Conditions.all)
    dfas

let operation_count p = Expr.tree_size p.psi.Form.expr
