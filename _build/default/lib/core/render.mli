(** ASCII rendering of verification region maps — the textual analogue of
    the paper's Figures 1 and 2.

    Cell legend (XCVerifier maps, bottom rows of the figures):
    - ['.'] verified to satisfy the condition,
    - ['#'] region containing a counterexample,
    - ['o'] inconclusive (spurious δ-sat model),
    - ['T'] solver timeout.

    PB maps (top rows) use ['#'] for grid points violating the condition and
    ['.'] for points satisfying it. The vertical axis is [s] (or the second
    variable), increasing upward; the horizontal axis is [rs]. *)

(** [outcome_map ?nx ?ny outcome] renders an XCVerifier outcome. 1-D (LDA)
    outcomes render as a single row over [rs]. *)
val outcome_map : ?nx:int -> ?ny:int -> Outcome.t -> string

(** [pb_map ?nx ?ny result] renders a PB grid result (projected onto the
    first two axes for meta-GGAs: a cell is ['#'] if any alpha violates). *)
val pb_map : ?nx:int -> ?ny:int -> Pbcheck.result -> string

(** [side_by_side top bottom] stacks two maps with headers, mirroring the
    paper's figure layout (PB above, XCVerifier below). *)
val figure : title:string -> pb:Pbcheck.result option -> Outcome.t -> string
