(** Reference floating-point evaluation of expressions.

    This is the slow, obviously-correct evaluator used by tests and by model
    validation (Algorithm 1's [valid(x)] check). Hot loops — the
    Pederson-Burke grid baseline — use {!Compile} instead. *)

type env = (string * float) list

exception Unbound_variable of string

(** [eval env e] evaluates [e] with variables bound by [env].
    Out-of-domain primitive applications (e.g. [log] of a negative number)
    follow IEEE semantics and produce [nan]/[infinity].
    @raise Unbound_variable if [e] mentions a variable missing from [env]. *)
val eval : env -> Expr.t -> float

(** [eval1 name value e] evaluates an expression of the single variable
    [name]. *)
val eval1 : string -> float -> Expr.t -> float

(** [eval2 (n1, v1) (n2, v2) e] evaluates a two-variable expression. *)
val eval2 : string * float -> string * float -> Expr.t -> float

(** [pow_float b x] is the power semantics used throughout the library:
    exact integer powers by repeated multiplication, [Float.pow] otherwise. *)
val pow_float : float -> float -> float

(** [guard_holds rel c] decides a guard given the value of its condition. *)
val guard_holds : Expr.rel -> float -> bool
