(** Parsing of expression text.

    Infix grammar (used by the CLI to accept ad-hoc conditions and by the
    test-suite round-trip properties):

    {v
    expr   := term  (('+' | '-') term)*
    term   := power (('*' | '/') power)*
    power  := '-' power | atom ('^' power)?   -- '^' right-assoc, binds
                                              -- tighter than unary '-'
    atom   := float | ident | ident '(' expr ')' | '(' expr ')'
    v}

    So [-y^2] parses as [-(y^2)] and exponents may carry signs ([x^-2]).
    Known function identifiers: [exp log sqrt cbrt sin cos tanh atan abs
    lambertw]; [pi], [inf] and [nan] are float constants. Any other
    identifier is a variable. *)

exception Parse_error of string

(** [of_string s] parses infix syntax.
    @raise Parse_error with a message pointing at the offending token. *)
val of_string : string -> Expr.t

(** [sexp_of_string s] parses the s-expression syntax emitted by
    {!Printer.pp_sexp}. Operators: [+ * ^ / le lt piecewise] and the
    function identifiers above.
    @raise Parse_error on malformed input. *)
val sexp_of_string : string -> Expr.t

(** Generic s-expressions — shared with {!Serialize}, which persists
    verification outcomes in this syntax. *)
module Sexp : sig
  type t = Atom of string | List of t list

  (** @raise Parse_error on malformed input. *)
  val parse : string -> t

  val print : Buffer.t -> t -> unit
end
