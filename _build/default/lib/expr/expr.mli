(** Hash-consed symbolic expressions over the reals.

    This module is the substrate that replaces Maple/SymPy in the XCVerifier
    pipeline: density functional approximations are built as values of type
    {!t}, then differentiated ({!Deriv}), simplified ({!Simplify}), evaluated
    ({!Eval}, {!Compile}) and finally handed to the interval solver.

    Every distinct expression is allocated exactly once (hash-consing), so
    - structural equality is pointer/ID equality ({!equal} is O(1)),
    - common subexpressions are shared, which keeps SCAN-sized derivative
      expressions tractable,
    - per-node memo tables (keyed by {!id}) make differentiation and
      simplification linear in the number of distinct subterms.

    Smart constructors perform light normalization on the fly: n-ary sums and
    products are flattened and constant-folded, like terms and like factors are
    collected, and trivial identities ([x^1 = x], [e + 0 = e], [e * 1 = e],
    [0 * e = 0]) are applied. Deeper rewriting lives in {!Simplify}. *)

(** Unary primitive functions. *)
type unop =
  | Exp
  | Log  (** natural logarithm *)
  | Sin
  | Cos
  | Tanh
  | Atan
  | Abs
  | Lambert_w  (** principal branch [W0] of the Lambert W function *)

(** Comparison relation of a piecewise guard, always against zero. *)
type rel = Le | Lt

type t = private { id : int; node : node; hash : int }

and node =
  | Num of Rat.t  (** exact rational constant *)
  | Flt of float  (** inexact (decimal/irrational) constant *)
  | Var of string
  | Add of t list  (** n-ary sum; flattened, at least two operands *)
  | Mul of t list  (** n-ary product; flattened, at least two operands *)
  | Pow of t * t
  | Apply of unop * t
  | Piecewise of (guard * t) list * t
      (** [Piecewise (branches, default)] evaluates the body of the first
          branch whose guard holds, and [default] if none does. *)

(** [guard = { cond; rel = Le }] means [cond <= 0];
    [rel = Lt] means [cond < 0]. *)
and guard = { cond : t; grel : rel }

(** {1 Identity} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val id : t -> int

(** {1 Constructors} *)

val num : Rat.t -> t
val int : int -> t

(** [rat a b] is the exact rational constant [a/b]. *)
val rat : int -> int -> t

(** [const f] is the constant [f] — represented exactly when [f] is an
    integer-valued float, as an opaque float constant otherwise. *)
val const : float -> t

val var : string -> t
val zero : t
val one : t
val two : t
val pi : t

val add : t -> t -> t
val add_n : t list -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val mul_n : t list -> t
val div : t -> t -> t
val pow : t -> t -> t

(** [powi e n] is [e^n] for an integer exponent. *)
val powi : t -> int -> t

(** [powr e r] is [e^r] for an exact rational exponent. *)
val powr : t -> Rat.t -> t

(** [sqrt e] is canonicalized to [e^(1/2)] so that power collection sees
    through it; likewise [cbrt e] is [e^(1/3)]. *)
val sqrt : t -> t

val cbrt : t -> t
val exp : t -> t
val log : t -> t
val sin : t -> t
val cos : t -> t
val tanh : t -> t
val atan : t -> t
val abs : t -> t
val lambert_w : t -> t
val sqr : t -> t
val inv : t -> t

(** [piecewise branches default] builds a piecewise expression. Branches whose
    guard is a constant are resolved statically. *)
val piecewise : (guard * t) list -> t -> t

(** [guard_le e] is the guard [e <= 0]; [guard_lt e] is [e < 0]. *)
val guard_le : t -> guard

val guard_lt : t -> guard

(** [if_lt a b ~then_ ~else_] is the expression equal to [then_] when
    [a < b] and to [else_] otherwise. *)
val if_lt : t -> t -> then_:t -> else_:t -> t

(** {1 Inspection} *)

(** [as_const e] is [Some f] when [e] is a constant (exact or float). *)
val as_const : t -> float option

(** [as_rat e] is [Some r] when [e] is an exact rational constant. *)
val as_rat : t -> Rat.t option

val is_zero : t -> bool
val is_one : t -> bool

(** [is_const e] holds for [Num] and [Flt] leaves. *)
val is_const : t -> bool

(** [vars e] is the set of free variable names, sorted. *)
val vars : t -> string list

(** [mem_var name e] tests whether [name] occurs free in [e]. *)
val mem_var : string -> t -> bool

(** [size e] counts DAG nodes (shared nodes counted once). *)
val size : t -> int

(** [tree_size e] counts tree nodes (shared nodes counted each time), i.e. the
    operation count of a naive implementation — the metric the paper uses when
    it says PBE correlation has over 300 operations. *)
val tree_size : t -> int

(** [depth e] is the height of the expression DAG. *)
val depth : t -> int

(** Fold over the distinct DAG nodes of an expression, children first. *)
val fold_dag : (t -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Memoization helper} *)

(** [memo_fix f] returns a function memoized on expression IDs; [f] receives
    the memoized function for recursive calls. *)
val memo_fix : ((t -> 'a) -> t -> 'a) -> t -> 'a
