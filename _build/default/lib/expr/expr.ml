type unop = Exp | Log | Sin | Cos | Tanh | Atan | Abs | Lambert_w

type rel = Le | Lt

type t = { id : int; node : node; hash : int }

and node =
  | Num of Rat.t
  | Flt of float
  | Var of string
  | Add of t list
  | Mul of t list
  | Pow of t * t
  | Apply of unop * t
  | Piecewise of (guard * t) list * t

and guard = { cond : t; grel : rel }

let equal a b = a == b
let compare a b = Stdlib.compare a.id b.id
let hash e = e.hash
let id e = e.id

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

let unop_tag = function
  | Exp -> 1
  | Log -> 2
  | Sin -> 3
  | Cos -> 4
  | Tanh -> 5
  | Atan -> 6
  | Abs -> 7
  | Lambert_w -> 8

let hash_list seed xs =
  List.fold_left (fun acc e -> (acc * 31) lxor e.hash) seed xs

let node_hash = function
  | Num r -> 0x11 lxor Rat.hash r
  | Flt f -> 0x22 lxor Hashtbl.hash f
  | Var v -> 0x33 lxor Hashtbl.hash v
  | Add xs -> hash_list 0x44 xs
  | Mul xs -> hash_list 0x55 xs
  | Pow (a, b) -> 0x66 lxor ((a.hash * 31) lxor b.hash)
  | Apply (op, a) -> 0x77 lxor ((unop_tag op * 131) lxor a.hash)
  | Piecewise (branches, default) ->
      List.fold_left
        (fun acc (g, e) ->
          let gh = (g.cond.hash * 2) lxor (match g.grel with Le -> 0 | Lt -> 1) in
          (acc * 31) lxor gh lxor (e.hash * 17))
        (0x88 lxor default.hash)
        branches

let node_equal n1 n2 =
  match n1, n2 with
  | Num a, Num b -> Rat.equal a b
  | Flt a, Flt b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | Var a, Var b -> String.equal a b
  | Add xs, Add ys | Mul xs, Mul ys ->
      (try List.for_all2 (fun a b -> a == b) xs ys with Invalid_argument _ -> false)
  | Pow (a1, b1), Pow (a2, b2) -> a1 == a2 && b1 == b2
  | Apply (op1, a1), Apply (op2, a2) -> op1 = op2 && a1 == a2
  | Piecewise (bs1, d1), Piecewise (bs2, d2) ->
      d1 == d2
      && (try
            List.for_all2
              (fun (g1, e1) (g2, e2) ->
                g1.cond == g2.cond && g1.grel = g2.grel && e1 == e2)
              bs1 bs2
          with Invalid_argument _ -> false)
  | (Num _ | Flt _ | Var _ | Add _ | Mul _ | Pow _ | Apply _ | Piecewise _), _ ->
      false

module Table = Hashtbl.Make (struct
  type nonrec t = node

  let equal = node_equal
  let hash = node_hash
end)

let table : t Table.t = Table.create 65536
let counter = ref 0

(* The cons table is global; guard it so expressions can also be built from
   worker domains (e.g. Taylor preparation inside a parallel campaign).
   Uncontended lock cost is negligible next to hashing. *)
let table_mutex = Mutex.create ()

let mk node =
  Mutex.protect table_mutex (fun () ->
      match Table.find_opt table node with
      | Some e -> e
      | None ->
          incr counter;
          let e = { id = !counter; node; hash = node_hash node } in
          Table.add table node e;
          e)

(* ------------------------------------------------------------------ *)
(* Constant helpers                                                    *)
(* ------------------------------------------------------------------ *)

let num r = mk (Num r)
let int n = num (Rat.of_int n)
let rat a b = num (Rat.make a b)

let flt f =
  if Float.is_integer f && Float.abs f < 1e15 then int (int_of_float f)
  else mk (Flt f)

let const = flt
let var v = mk (Var v)
let zero = int 0
let one = int 1
let two = int 2
let pi = mk (Flt Float.pi)

let as_const e =
  match e.node with
  | Num r -> Some (Rat.to_float r)
  | Flt f -> Some f
  | Var _ | Add _ | Mul _ | Pow _ | Apply _ | Piecewise _ -> None

let as_rat e =
  match e.node with
  | Num r -> Some r
  | Flt _ | Var _ | Add _ | Mul _ | Pow _ | Apply _ | Piecewise _ -> None

let is_zero e = match e.node with Num r -> Rat.is_zero r | _ -> false
let is_one e = match e.node with Num r -> Rat.is_one r | _ -> false
let is_const e = match e.node with Num _ | Flt _ -> true | _ -> false

(* Accumulated constants: exact while possible, float once contaminated. *)
type cnum = R of Rat.t | F of float

let cnum_zero = R Rat.zero
let cnum_one = R Rat.one

let cnum_of_expr e =
  match e.node with
  | Num r -> Some (R r)
  | Flt f -> Some (F f)
  | _ -> None

let cnum_to_float = function R r -> Rat.to_float r | F f -> f

let cnum_add a b =
  match a, b with
  | R x, R y -> (try R (Rat.add x y) with Rat.Overflow -> F (Rat.to_float x +. Rat.to_float y))
  | _ -> F (cnum_to_float a +. cnum_to_float b)

let cnum_mul a b =
  match a, b with
  | R x, R y -> (try R (Rat.mul x y) with Rat.Overflow -> F (Rat.to_float x *. Rat.to_float y))
  | _ -> F (cnum_to_float a *. cnum_to_float b)

let cnum_is_zero = function R r -> Rat.is_zero r | F f -> f = 0.0
let cnum_is_one = function R r -> Rat.is_one r | F f -> f = 1.0
let expr_of_cnum = function R r -> num r | F f -> flt f

(* ------------------------------------------------------------------ *)
(* Sums                                                                *)
(* ------------------------------------------------------------------ *)

(* Splits a term into (coefficient, core): [3*x*y] -> (3, x*y). *)
let coeff_core e =
  match e.node with
  | Num r -> (R r, one)
  | Flt f -> (F f, one)
  | Mul (c :: rest) -> (
      match cnum_of_expr c with
      | Some k -> (
          match rest with
          | [ single ] -> (k, single)
          | _ -> (k, mk (Mul rest)))
      | None -> (cnum_one, e))
  | _ -> (cnum_one, e)

let sort_operands xs = List.sort compare xs

let rec add_n terms =
  (* Flatten nested sums. *)
  let flat =
    List.concat_map (fun e -> match e.node with Add xs -> xs | _ -> [ e ]) terms
  in
  (* Collect like terms by core. *)
  let tbl : (int, cnum * t) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let konst = ref cnum_zero in
  List.iter
    (fun e ->
      let k, core = coeff_core e in
      if is_one core then konst := cnum_add !konst k
      else
        match Hashtbl.find_opt tbl core.id with
        | Some (k0, _) -> Hashtbl.replace tbl core.id (cnum_add k0 k, core)
        | None ->
            Hashtbl.add tbl core.id (k, core);
            order := core.id :: !order)
    flat;
  let terms =
    List.rev_map
      (fun cid ->
        let k, core = Hashtbl.find tbl cid in
        scale k core)
      !order
    |> List.filter (fun e -> not (is_zero e))
  in
  let terms = if cnum_is_zero !konst then terms else terms @ [ expr_of_cnum !konst ] in
  match terms with
  | [] -> zero
  | [ single ] -> single
  | _ -> mk (Add (sort_operands terms))

and scale k core =
  if cnum_is_zero k then zero
  else if cnum_is_one k then core
  else if is_one core then expr_of_cnum k
  else mul_n [ expr_of_cnum k; core ]

(* ------------------------------------------------------------------ *)
(* Products                                                            *)
(* ------------------------------------------------------------------ *)

and positive_const e =
  match e.node with
  | Num r -> Rat.sign r > 0
  | Flt f -> f > 0.0
  | _ -> false

and mk_mul = function [ single ] -> single | factors -> mk (Mul factors)

(* Splits a factor into (base, exponent): [x^3] -> (x, 3). *)
and base_expo e =
  match e.node with Pow (b, x) -> (b, x) | _ -> (e, one)

and mul_n factors =
  let flat =
    List.concat_map (fun e -> match e.node with Mul xs -> xs | _ -> [ e ]) factors
  in
  if List.exists is_zero flat then zero
  else begin
    let tbl : (int, t * t) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    let konst = ref cnum_one in
    List.iter
      (fun e ->
        match cnum_of_expr e with
        | Some k -> konst := cnum_mul !konst k
        | None -> (
            let base, expo = base_expo e in
            match Hashtbl.find_opt tbl base.id with
            | Some (_, x0) -> Hashtbl.replace tbl base.id (base, add_n [ x0; expo ])
            | None ->
                Hashtbl.add tbl base.id (base, expo);
                order := base.id :: !order))
      flat;
    let factors =
      List.rev_map
        (fun bid ->
          let base, expo = Hashtbl.find tbl bid in
          pow base expo)
        !order
      |> List.filter (fun e -> not (is_one e))
    in
    if cnum_is_zero !konst then zero
    else begin
      let factors =
        if cnum_is_one !konst then factors else expr_of_cnum !konst :: factors
      in
      match factors with
      | [] -> one
      | [ single ] -> single
      | c :: rest when is_const c -> mk (Mul (c :: sort_operands rest))
      | _ -> mk (Mul (sort_operands factors))
    end
  end

(* ------------------------------------------------------------------ *)
(* Powers                                                              *)
(* ------------------------------------------------------------------ *)

and pow base expo =
  match expo.node with
  | Num r when Rat.is_zero r -> one
  | Num r when Rat.is_one r -> base
  | _ -> (
      match base.node, expo.node with
      | Num b, Num r when Rat.is_int r -> (
          (* Exact integer powers of rationals, guarding against overflow. *)
          match Rat.to_int r with
          | Some n when Stdlib.abs n <= 16 -> (
              try
                let rec go acc k =
                  if k = 0 then acc else go (Rat.mul acc b) (k - 1)
                in
                let p = go Rat.one (Stdlib.abs n) in
                num (if n >= 0 then p else Rat.inv p)
              with Rat.Overflow | Division_by_zero ->
                fold_const_pow base expo)
          | _ -> fold_const_pow base expo)
      | (Num _ | Flt _), (Num _ | Flt _) -> fold_const_pow base expo
      | Pow (inner, a), Num r when Rat.is_int r ->
          (* (x^a)^n = x^(a*n) is sound for integer n wherever defined. *)
          pow inner (mul_n [ a; num r ])
      | Mul factors, Num r when Rat.is_int r ->
          (* (x*y)^n distributes for integer n. *)
          mul_n (List.map (fun f -> pow f expo) factors)
      | Mul (c :: rest), (Num _ | Flt _) when positive_const c ->
          (* (c*X)^p = c^p * X^p is sound for a positive constant c even for
             fractional p: both sides are defined (or NaN) together. *)
          mul_n [ fold_const_pow c expo; pow (mk_mul rest) expo ]
      | _ when is_one base -> one
      | _ -> mk (Pow (base, expo)))

and fold_const_pow base expo =
  match as_const base, as_const expo with
  | Some b, Some x ->
      let v = Float.pow b x in
      if Float.is_nan v || Float.is_integer x = false && b < 0.0 then
        mk (Pow (base, expo))
      else flt v
  | _ -> mk (Pow (base, expo))

let add a b = add_n [ a; b ]
let mul a b = mul_n [ a; b ]
let neg e = mul (int (-1)) e
let sub a b = add a (neg b)
let inv e = pow e (int (-1))
let div a b = mul a (inv b)
let powi e n = pow e (int n)
let powr e r = pow e (num r)
let sqr e = powi e 2
let sqrt e = powr e Rat.half
let cbrt e = powr e Rat.third

(* ------------------------------------------------------------------ *)
(* Unary functions                                                     *)
(* ------------------------------------------------------------------ *)

let apply_unop op arg =
  let fold f =
    match as_const arg with
    | Some c ->
        let v = f c in
        if Float.is_nan v then mk (Apply (op, arg)) else flt v
    | None -> mk (Apply (op, arg))
  in
  match op with
  | Exp -> fold Stdlib.exp
  | Log -> fold (fun c -> if c > 0.0 then Stdlib.log c else Float.nan)
  | Sin -> fold Stdlib.sin
  | Cos -> fold Stdlib.cos
  | Tanh -> fold Stdlib.tanh
  | Atan -> fold Stdlib.atan
  | Abs -> fold Float.abs
  | Lambert_w -> mk (Apply (Lambert_w, arg))

let exp e = apply_unop Exp e
let log e = apply_unop Log e
let sin e = apply_unop Sin e
let cos e = apply_unop Cos e
let tanh e = apply_unop Tanh e
let atan e = apply_unop Atan e

let abs e =
  match e.node with
  | Num r -> num (Rat.abs r)
  | Flt f -> flt (Float.abs f)
  | _ -> apply_unop Abs e

let lambert_w e = apply_unop Lambert_w e

(* ------------------------------------------------------------------ *)
(* Piecewise                                                           *)
(* ------------------------------------------------------------------ *)

let guard_le cond = { cond; grel = Le }
let guard_lt cond = { cond; grel = Lt }

let guard_decide g =
  match as_const g.cond with
  | Some c -> Some (match g.grel with Le -> c <= 0.0 | Lt -> c < 0.0)
  | None -> None

let piecewise branches default =
  (* Statically resolve constant guards: drop false branches; a true guard
     truncates everything after it. *)
  let rec resolve acc = function
    | [] -> (List.rev acc, default)
    | (g, e) :: rest -> (
        match guard_decide g with
        | Some true -> (List.rev acc, e)
        | Some false -> resolve acc rest
        | None -> resolve ((g, e) :: acc) rest)
  in
  match resolve [] branches with
  | [], d -> d
  | branches, d ->
      if List.for_all (fun (_, e) -> equal e d) branches then d
      else mk (Piecewise (branches, d))

let if_lt a b ~then_ ~else_ = piecewise [ (guard_lt (sub a b), then_) ] else_

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let memo_fix f =
  let memo : (int, 'a) Hashtbl.t = Hashtbl.create 256 in
  let rec g e =
    match Hashtbl.find_opt memo e.id with
    | Some v -> v
    | None ->
        let v = f g e in
        Hashtbl.replace memo e.id v;
        v
  in
  g

let children e =
  match e.node with
  | Num _ | Flt _ | Var _ -> []
  | Add xs | Mul xs -> xs
  | Pow (a, b) -> [ a; b ]
  | Apply (_, a) -> [ a ]
  | Piecewise (branches, default) ->
      List.concat_map (fun (g, body) -> [ g.cond; body ]) branches @ [ default ]

let fold_dag f e init =
  let seen = Hashtbl.create 256 in
  let acc = ref init in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.add seen e.id ();
      List.iter go (children e);
      acc := f e !acc
    end
  in
  go e;
  !acc

let vars e =
  fold_dag
    (fun e acc -> match e.node with Var v -> v :: acc | _ -> acc)
    e []
  |> List.sort_uniq String.compare

let mem_var name e =
  fold_dag
    (fun e acc -> acc || match e.node with Var v -> String.equal v name | _ -> false)
    e false

let size e = fold_dag (fun _ n -> n + 1) e 0

(* tree_size and depth build a fresh memo per call (rather than a global
   one) so they are safe to run from any domain. *)
let tree_size e =
  let f =
    memo_fix (fun self e ->
        match children e with
        | [] -> 1
        | cs -> List.fold_left (fun acc c -> acc + self c) 1 cs)
  in
  f e

let depth e =
  let f =
    memo_fix (fun self e ->
        match children e with
        | [] -> 1
        | cs -> 1 + List.fold_left (fun acc c -> Stdlib.max acc (self c)) 0 cs)
  in
  f e
