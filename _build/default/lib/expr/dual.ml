type t = { v : float; d : float }

let const v = { v; d = 0.0 }
let active v = { v; d = 1.0 }
let passive v = { v; d = 0.0 }

let add a b = { v = a.v +. b.v; d = a.d +. b.d }
let sub a b = { v = a.v -. b.v; d = a.d -. b.d }
let mul a b = { v = a.v *. b.v; d = (a.d *. b.v) +. (a.v *. b.d) }

let div a b =
  { v = a.v /. b.v; d = ((a.d *. b.v) -. (a.v *. b.d)) /. (b.v *. b.v) }

let exp a =
  let e = Stdlib.exp a.v in
  { v = e; d = e *. a.d }

let log a = { v = Stdlib.log a.v; d = a.d /. a.v }

let pow a b =
  let v = Eval.pow_float a.v b.v in
  if b.d = 0.0 then
    (* Constant exponent: d(a^c) = c a^(c-1) a', valid for a <= 0 too when
       the power itself is defined (e.g. integer exponents). *)
    { v; d = b.v *. Eval.pow_float a.v (b.v -. 1.0) *. a.d }
  else
    { v; d = v *. ((b.d *. Stdlib.log a.v) +. (b.v *. a.d /. a.v)) }

let sin a = { v = Stdlib.sin a.v; d = Stdlib.cos a.v *. a.d }
let cos a = { v = Stdlib.cos a.v; d = -.Stdlib.sin a.v *. a.d }

let tanh a =
  let t = Stdlib.tanh a.v in
  { v = t; d = (1.0 -. (t *. t)) *. a.d }

let atan a = { v = Stdlib.atan a.v; d = a.d /. (1.0 +. (a.v *. a.v)) }

let abs a =
  if a.v < 0.0 then { v = -.a.v; d = -.a.d } else { v = a.v; d = a.d }

let lambert_w a =
  let w = Lambert.w0 a.v in
  { v = w; d = a.d /. ((1.0 +. w) *. Stdlib.exp w) }

let eval env ~wrt e =
  let go =
    Expr.memo_fix (fun self e ->
        match e.Expr.node with
        | Expr.Num r -> const (Rat.to_float r)
        | Expr.Flt f -> const f
        | Expr.Var v -> (
            match List.assoc_opt v env with
            | Some x -> if String.equal v wrt then active x else passive x
            | None -> raise (Eval.Unbound_variable v))
        | Expr.Add terms ->
            List.fold_left (fun acc t -> add acc (self t)) (const 0.0) terms
        | Expr.Mul factors ->
            List.fold_left (fun acc f -> mul acc (self f)) (const 1.0) factors
        | Expr.Pow (b, x) -> pow (self b) (self x)
        | Expr.Apply (op, a) -> (
            let da = self a in
            match op with
            | Expr.Exp -> exp da
            | Expr.Log -> log da
            | Expr.Sin -> sin da
            | Expr.Cos -> cos da
            | Expr.Tanh -> tanh da
            | Expr.Atan -> atan da
            | Expr.Abs -> abs da
            | Expr.Lambert_w -> lambert_w da)
        | Expr.Piecewise (branches, default) ->
            let rec pick = function
              | [] -> self default
              | (g, body) :: rest ->
                  if Eval.guard_holds g.Expr.grel (self g.Expr.cond).v then
                    self body
                  else pick rest
            in
            pick branches)
  in
  go e
