open Expr

type env = (string * float) list

exception Unbound_variable of string

let pow_float b x =
  if Float.is_integer x && Float.abs x <= 64.0 then begin
    let n = int_of_float x in
    let rec go acc b n =
      if n = 0 then acc
      else if n land 1 = 1 then go (acc *. b) (b *. b) (n asr 1)
      else go acc (b *. b) (n asr 1)
    in
    let p = go 1.0 b (Stdlib.abs n) in
    if n >= 0 then p else 1.0 /. p
  end
  else Float.pow b x

let apply_unop op v =
  match op with
  | Exp -> Stdlib.exp v
  | Log -> Stdlib.log v
  | Sin -> Stdlib.sin v
  | Cos -> Stdlib.cos v
  | Tanh -> Stdlib.tanh v
  | Atan -> Stdlib.atan v
  | Abs -> Float.abs v
  | Lambert_w -> Lambert.w0 v

let guard_holds rel c = match rel with Le -> c <= 0.0 | Lt -> c < 0.0

let eval env e =
  (* Fresh memo table per call: values depend on the environment. *)
  let go =
    memo_fix (fun self e ->
        match e.node with
        | Num r -> Rat.to_float r
        | Flt f -> f
        | Var v -> (
            match List.assoc_opt v env with
            | Some x -> x
            | None -> raise (Unbound_variable v))
        | Add terms -> List.fold_left (fun acc t -> acc +. self t) 0.0 terms
        | Mul factors -> List.fold_left (fun acc f -> acc *. self f) 1.0 factors
        | Pow (b, x) -> pow_float (self b) (self x)
        | Apply (op, a) -> apply_unop op (self a)
        | Piecewise (branches, default) ->
            let rec pick = function
              | [] -> self default
              | (g, body) :: rest ->
                  if guard_holds g.grel (self g.cond) then self body
                  else pick rest
            in
            pick branches)
  in
  go e

let eval1 name value e = eval [ (name, value) ] e
let eval2 b1 b2 e = eval [ b1; b2 ] e
