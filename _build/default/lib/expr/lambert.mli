(** Numeric evaluation of the principal branch [W0] of the Lambert W
    function, defined by [W(x) * exp(W(x)) = x] for [x >= -1/e].

    Needed because the AM05 exchange functional is written in terms of
    [LambertW] in its LibXC Maple source. Evaluation uses a bounded number of
    Halley iterations from a branch-dependent initial guess and converges to
    within a few ulps over the domain exercised by the functionals
    ([x >= 0]). *)

(** [w0 x] is [W0(x)]. Returns [nan] for [x < -1/e]. *)
val w0 : float -> float

(** Residual [w *. exp w -. x] used by tests and by the interval enclosure to
    certify an evaluation. *)
val residual : float -> float -> float
