(** Forward-mode automatic differentiation on dual numbers.

    Independent oracle for {!Deriv}: evaluating [Deriv.diff ~wrt e] at a point
    must agree with the dual-number derivative of [e] at that point. The test
    suite cross-checks the two on every functional, which is how we guard the
    symbolic-differentiation step the paper relies on for conditions EC2-EC4,
    EC6 and EC7. *)

type t = { v : float; d : float }

val const : float -> t

(** [active x] is the variable of differentiation: value [x], derivative 1. *)
val active : float -> t

(** [passive x] is any other variable: value [x], derivative 0. *)
val passive : float -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val pow : t -> t -> t
val exp : t -> t
val log : t -> t
val sin : t -> t
val cos : t -> t
val tanh : t -> t
val atan : t -> t
val abs : t -> t
val lambert_w : t -> t

(** [eval env ~wrt e] evaluates [e] with dual arithmetic, treating [wrt] as
    the active variable. Returns value and first derivative.
    @raise Eval.Unbound_variable on a missing binding. *)
val eval : (string * float) list -> wrt:string -> Expr.t -> t
