open Expr

let diff ~wrt e =
  let d =
    memo_fix (fun self e ->
        match e.node with
        | Num _ | Flt _ -> zero
        | Var v -> if String.equal v wrt then one else zero
        | Add terms -> add_n (List.map self terms)
        | Mul factors ->
            (* n-ary product rule: sum over factors of f_i' * prod_{j<>i} f_j *)
            let rec terms before = function
              | [] -> []
              | f :: after ->
                  let df = self f in
                  let term =
                    if is_zero df then zero
                    else mul_n (df :: List.rev_append before after)
                  in
                  term :: terms (f :: before) after
            in
            add_n (terms [] factors)
        | Pow (b, x) -> (
            let db = self b and dx = self x in
            match is_zero dx, is_zero db with
            | true, true -> zero
            | true, false ->
                (* d(b^c) = c * b^(c-1) * b' *)
                mul_n [ x; pow b (sub x one); db ]
            | false, true ->
                (* d(c^x) = c^x * ln c * x' *)
                mul_n [ e; log b; dx ]
            | false, false ->
                (* General case: b^x * (x' ln b + x b'/b). *)
                mul e (add (mul dx (log b)) (mul_n [ x; db; inv b ])))
        | Apply (op, a) ->
            let da = self a in
            if is_zero da then zero
            else
              let outer =
                match op with
                | Exp -> exp a
                | Log -> inv a
                | Sin -> cos a
                | Cos -> neg (sin a)
                | Tanh -> sub one (sqr (tanh a))
                | Atan -> inv (add one (sqr a))
                | Abs -> piecewise [ (guard_lt a, int (-1)) ] one
                | Lambert_w ->
                    (* W'(x) = 1 / ((1 + W) e^W); regular at x = 0. *)
                    inv (mul (add one (lambert_w a)) (exp (lambert_w a)))
              in
              mul outer da
        | Piecewise (branches, default) ->
            piecewise
              (List.map (fun (g, body) -> (g, self body)) branches)
              (self default))
  in
  d e

let diff_n ~wrt n e =
  let rec go n e = if n = 0 then e else go (n - 1) (Simplify.simplify (diff ~wrt e)) in
  go n e
