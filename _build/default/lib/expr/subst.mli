(** Substitution and related structural operations. *)

(** [subst bindings e] simultaneously replaces each variable by its bound
    expression. Unbound variables are left in place. The result is rebuilt
    with the smart constructors. *)
val subst : (string * Expr.t) list -> Expr.t -> Expr.t

(** [subst1 name v e] replaces the single variable [name] by [v]. *)
val subst1 : string -> Expr.t -> Expr.t -> Expr.t

(** [replace ~from ~into e] replaces every occurrence of the subexpression
    [from] (by hash-consed identity) with [into]. *)
val replace : from:Expr.t -> into:Expr.t -> Expr.t -> Expr.t

(** [at_large name value e] substitutes the float [value] for [name] — the
    paper's approximation of limits at infinity (e.g. F_c at r_s -> inf is
    taken as F_c at r_s = 100, following Pederson and Burke). *)
val at_large : string -> float -> Expr.t -> Expr.t

(** [rename old_name new_name e] renames a variable. *)
val rename : string -> string -> Expr.t -> Expr.t

(** [replace_map_constants f e] rewrites every numeric leaf whose float
    value [c] has [f c = Some c'] into the constant [c']. Used by
    {!Mutate} to inject wrong-constant bugs for CI-style testing. *)
val replace_map_constants : (float -> float option) -> Expr.t -> Expr.t
