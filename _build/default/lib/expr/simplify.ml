open Expr

let is_even_int_const x =
  match as_rat x with
  | Some r -> (
      match Rat.to_int r with Some n -> n <> 0 && n mod 2 = 0 | None -> false)
  | None -> false

let rec rewrite e =
  match e.node with
  | Apply (Log, a) -> (
      match a.node with
      | Apply (Exp, x) -> x
      | _ -> e)
  | Apply (Exp, a) -> (
      match a.node with
      | Apply (Log, x) -> x
      | Mul factors -> (
          (* exp(c * log x * rest) = x^(c * rest) *)
          match
            List.partition
              (fun f -> match f.node with Apply (Log, _) -> true | _ -> false)
              factors
          with
          | [ l ], rest -> (
              match l.node with
              | Apply (Log, x) -> pow x (mul_n rest)
              | _ -> e)
          | _ -> e)
      | _ -> e)
  | Apply (Abs, a) -> (
      match a.node with
      | Apply (Abs, _) -> a
      | Pow (_, x) when is_even_int_const x -> a
      | _ -> e)
  | Pow (b, x) -> (
      match b.node with
      | Apply (Exp, inner) -> exp (mul inner x)
      | Apply (Abs, inner) when is_even_int_const x -> pow inner x
      | _ -> e)
  | Piecewise (branches, default) -> (
      (* Merge a default that is itself piecewise into a flat branch list. *)
      match default.node with
      | Piecewise (branches', default') ->
          piecewise (branches @ branches') default'
      | _ -> rewrite_guards branches default)
  | Num _ | Flt _ | Var _ | Add _ | Mul _ | Apply _ -> e

and rewrite_fix e =
  (* Chained rewrites (e.g. |exp u|^2 -> (exp u)^2 -> exp(2u)) need a local
     fixpoint; each step strictly shrinks or preserves size, so this
     terminates quickly. *)
  let e' = rewrite e in
  if equal e' e then e else rewrite_fix e'

and rewrite_guards branches default =
  (* Drop branches whose body equals the default (common after branchwise
     differentiation sends several branches to the same derivative). *)
  let branches = List.filter (fun (_, body) -> not (equal body default)) branches in
  piecewise branches default

let simplify e =
  let go =
    memo_fix (fun self e ->
        let rebuilt =
          match e.node with
          | Num _ | Flt _ | Var _ -> e
          | Add terms -> add_n (List.map self terms)
          | Mul factors -> mul_n (List.map self factors)
          | Pow (b, x) -> pow (self b) (self x)
          | Apply (Exp, a) -> exp (self a)
          | Apply (Log, a) -> log (self a)
          | Apply (Sin, a) -> sin (self a)
          | Apply (Cos, a) -> cos (self a)
          | Apply (Tanh, a) -> tanh (self a)
          | Apply (Atan, a) -> atan (self a)
          | Apply (Abs, a) -> abs (self a)
          | Apply (Lambert_w, a) -> lambert_w (self a)
          | Piecewise (branches, default) ->
              piecewise
                (List.map
                   (fun (g, body) ->
                     ({ g with cond = self g.cond }, self body))
                   branches)
                (self default)
        in
        rewrite_fix rebuilt)
  in
  (* Rewrites can synthesize new nested redexes (e.g. |exp u * v|^2 ->
     (exp u)^2 * v^2), so iterate whole passes to a global fixpoint; each
     pass over the memoized DAG is cheap. *)
  let rec fix e k =
    let e' = go e in
    if equal e' e || k = 0 then e' else fix e' (k - 1)
  in
  fix e 8

(* ------------------------------------------------------------------ *)
(* Expansion                                                           *)
(* ------------------------------------------------------------------ *)

(* Sum-of-products view: every expression is a list of monomial factor
   lists; atoms that are not sums stay opaque. *)

let terms_of e = match e.node with Add ts -> ts | _ -> [ e ]

let cross a_terms b_terms =
  List.concat_map (fun a -> List.map (fun b -> mul a b) b_terms) a_terms

let expand e =
  let go =
    memo_fix (fun self e ->
        match e.node with
        | Num _ | Flt _ | Var _ -> e
        | Add terms -> add_n (List.map self terms)
        | Mul factors ->
            let expanded = List.map self factors in
            let products =
              List.fold_left
                (fun acc f -> cross acc (terms_of f))
                [ one ] expanded
            in
            add_n products
        | Pow (b, x) -> (
            let b' = self b in
            match as_rat x with
            | Some r when Rat.is_int r -> (
                match Rat.to_int r with
                | Some n when n > 1 && n <= 8 -> (
                    match b'.node with
                    | Add _ ->
                        let rec repeat acc k =
                          if k = 0 then acc
                          else repeat (cross acc (terms_of b')) (k - 1)
                        in
                        add_n (repeat [ one ] n)
                    | _ -> pow b' x)
                | _ -> pow b' x)
            | _ -> pow b' (self x))
        | Apply (op, a) -> (
            let a' = self a in
            match op with
            | Exp -> exp a'
            | Log -> log a'
            | Sin -> sin a'
            | Cos -> cos a'
            | Tanh -> tanh a'
            | Atan -> atan a'
            | Abs -> abs a'
            | Lambert_w -> lambert_w a')
        | Piecewise (branches, default) ->
            piecewise
              (List.map
                 (fun (g, body) -> ({ g with cond = self g.cond }, self body))
                 branches)
              (self default))
  in
  go e

(* ------------------------------------------------------------------ *)
(* Nonnegativity-assisted simplification                               *)
(* ------------------------------------------------------------------ *)

let with_nonneg vars e =
  (* Syntactic nonnegativity under the assumption: assumed variables,
     nonnegative constants, exp/abs/sqrt images, even powers, any power of a
     nonneg base, and sums/products of nonnegatives. *)
  let nonneg =
    memo_fix (fun self e ->
        match e.node with
        | Num r -> Rat.sign r >= 0
        | Flt f -> f >= 0.0
        | Var v -> List.mem v vars
        | Add terms -> List.for_all self terms
        | Mul factors -> List.for_all self factors
        | Pow (b, x) -> (
            self b
            ||
            match as_rat x with
            | Some r -> (
                match Rat.to_int r with
                | Some n -> n <> 0 && n mod 2 = 0
                | None -> false)
            | None -> false)
        | Apply ((Exp | Abs), _) -> true
        | Apply ((Log | Sin | Cos | Tanh | Atan | Lambert_w), _) -> false
        | Piecewise (branches, default) ->
            self default && List.for_all (fun (_, body) -> self body) branches)
  in
  let rewrite_nn e =
    match e.node with
    | Pow (b, x) -> (
        match b.node with
        | Pow (inner, a) when nonneg inner && is_const a && is_const x ->
            pow inner (mul a x)
        | Mul factors
          when is_const x
               && List.for_all
                    (fun f -> nonneg f || match f.node with Pow (fb, _) -> nonneg fb | _ -> false)
                    factors ->
            (* All bases nonneg: (prod f_i)^p = prod f_i^p on the orthant. *)
            mul_n (List.map (fun f -> pow f x) factors)
        | _ -> e)
    | Apply (Abs, a) when nonneg a -> a
    | _ -> e
  in
  let go =
    memo_fix (fun self e ->
        let rebuilt =
          match e.node with
          | Num _ | Flt _ | Var _ -> e
          | Add terms -> add_n (List.map self terms)
          | Mul factors -> mul_n (List.map self factors)
          | Pow (b, x) -> pow (self b) (self x)
          | Apply (Exp, a) -> exp (self a)
          | Apply (Log, a) -> log (self a)
          | Apply (Sin, a) -> sin (self a)
          | Apply (Cos, a) -> cos (self a)
          | Apply (Tanh, a) -> tanh (self a)
          | Apply (Atan, a) -> atan (self a)
          | Apply (Abs, a) -> abs (self a)
          | Apply (Lambert_w, a) -> lambert_w (self a)
          | Piecewise (branches, default) ->
              piecewise
                (List.map
                   (fun (g, body) -> ({ g with cond = self g.cond }, self body))
                   branches)
                (self default)
        in
        rewrite_fix (rewrite_nn rebuilt))
  in
  let rec fix e k =
    let e' = go e in
    if equal e' e || k = 0 then e' else fix e' (k - 1)
  in
  (* Final plain-simplify pass: the nonneg rewrites create fresh nodes (e.g.
     (exp y)^(1/2)) whose own rewrite opportunities appear only afterwards. *)
  simplify (fix (simplify e) 8)
