exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Tnum of float
  | Tident of string
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tcaret
  | Tlparen
  | Trparen
  | Tcomma

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c || c = '\''

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c || c = '.' then begin
      let start = !i in
      while
        !i < n
        && (is_digit s.[!i] || s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E'
           || ((s.[!i] = '+' || s.[!i] = '-')
              && !i > start
              && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
      do
        incr i
      done;
      let text = String.sub s start (!i - start) in
      match float_of_string_opt text with
      | Some f -> tokens := Tnum f :: !tokens
      | None -> fail "invalid number %S" text
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      tokens := Tident (String.sub s start (!i - start)) :: !tokens
    end
    else begin
      (match c with
      | '+' -> tokens := Tplus :: !tokens
      | '-' -> tokens := Tminus :: !tokens
      | '*' -> tokens := Tstar :: !tokens
      | '/' -> tokens := Tslash :: !tokens
      | '^' -> tokens := Tcaret :: !tokens
      | '(' -> tokens := Tlparen :: !tokens
      | ')' -> tokens := Trparen :: !tokens
      | ',' -> tokens := Tcomma :: !tokens
      | _ -> fail "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Infix parser                                                        *)
(* ------------------------------------------------------------------ *)

let functions =
  [
    ("exp", Expr.exp);
    ("log", Expr.log);
    ("ln", Expr.log);
    ("sqrt", Expr.sqrt);
    ("cbrt", Expr.cbrt);
    ("sin", Expr.sin);
    ("cos", Expr.cos);
    ("tanh", Expr.tanh);
    ("atan", Expr.atan);
    ("arctan", Expr.atan);
    ("abs", Expr.abs);
    ("lambertw", Expr.lambert_w);
  ]

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let advance st =
  match st.tokens with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
      st.tokens <- rest;
      t

let expect st tok name =
  match advance st with t when t = tok -> () | _ -> fail "expected %s" name

let rec parse_expr st =
  let lhs = parse_term st in
  let rec loop acc =
    match peek st with
    | Some Tplus ->
        ignore (advance st);
        loop (Expr.add acc (parse_term st))
    | Some Tminus ->
        ignore (advance st);
        loop (Expr.sub acc (parse_term st))
    | _ -> acc
  in
  loop lhs

and parse_term st =
  let lhs = parse_power st in
  let rec loop acc =
    match peek st with
    | Some Tstar ->
        ignore (advance st);
        loop (Expr.mul acc (parse_power st))
    | Some Tslash ->
        ignore (advance st);
        loop (Expr.div acc (parse_power st))
    | _ -> acc
  in
  loop lhs

and parse_power st =
  (* Unary minus binds looser than '^': -y^2 is -(y^2); the exponent itself
     may carry a sign (x^-2). *)
  match peek st with
  | Some Tminus ->
      ignore (advance st);
      Expr.neg (parse_power st)
  | _ -> (
      let base = parse_atom st in
      match peek st with
      | Some Tcaret ->
          ignore (advance st);
          Expr.pow base (parse_power st)
      | _ -> base)

and parse_atom st =
  match advance st with
  | Tnum f -> Expr.const f
  | Tident "pi" -> Expr.pi
  | Tident "inf" -> Expr.const Float.infinity
  | Tident "nan" -> Expr.const Float.nan
  | Tident name -> (
      match peek st with
      | Some Tlparen -> (
          ignore (advance st);
          let arg = parse_expr st in
          expect st Trparen "')'";
          match List.assoc_opt name functions with
          | Some f -> f arg
          | None -> fail "unknown function %S" name)
      | _ -> Expr.var name)
  | Tlparen ->
      let e = parse_expr st in
      expect st Trparen "')'";
      e
  | Tplus | Tminus | Tstar | Tslash | Tcaret | Trparen | Tcomma ->
      fail "unexpected operator token"

let of_string s =
  let st = { tokens = tokenize s } in
  let e = parse_expr st in
  match st.tokens with
  | [] -> e
  | _ -> fail "trailing tokens after expression"

(* ------------------------------------------------------------------ *)
(* S-expression parser                                                 *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

let parse_sexp_text s =
  let n = String.length s in
  let rec skip i = if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t') then skip (i + 1) else i in
  let rec parse i =
    let i = skip i in
    if i >= n then fail "unexpected end of s-expression"
    else if s.[i] = '(' then begin
      let rec items acc i =
        let i = skip i in
        if i >= n then fail "unterminated s-expression"
        else if s.[i] = ')' then (List (List.rev acc), i + 1)
        else
          let item, i = parse i in
          items (item :: acc) i
      in
      items [] (i + 1)
    end
    else begin
      let start = i in
      let rec stop i =
        if i < n && s.[i] <> ' ' && s.[i] <> '(' && s.[i] <> ')' && s.[i] <> '\n' && s.[i] <> '\t'
        then stop (i + 1)
        else i
      in
      let j = stop i in
      (Atom (String.sub s start (j - start)), j)
    end
  in
  let e, i = parse 0 in
  let i = skip i in
  if i <> n then fail "trailing characters after s-expression";
  e

let rec expr_of_sexp = function
  | Atom a -> (
      match float_of_string_opt a with
      | Some f -> Expr.const f
      | None -> Expr.var a)
  | List (Atom "+" :: args) -> Expr.add_n (List.map expr_of_sexp args)
  | List (Atom "*" :: args) -> Expr.mul_n (List.map expr_of_sexp args)
  | List [ Atom "/"; a; b ] -> Expr.div (expr_of_sexp a) (expr_of_sexp b)
  | List [ Atom "^"; a; b ] -> Expr.pow (expr_of_sexp a) (expr_of_sexp b)
  | List [ Atom name; arg ] -> (
      match List.assoc_opt name functions with
      | Some f -> f (expr_of_sexp arg)
      | None -> fail "unknown s-expression operator %S" name)
  | List (Atom "piecewise" :: rest) -> (
      match List.rev rest with
      | default :: rev_branches ->
          let branch = function
            | List [ Atom "le"; c; b ] ->
                (Expr.guard_le (expr_of_sexp c), expr_of_sexp b)
            | List [ Atom "lt"; c; b ] ->
                (Expr.guard_lt (expr_of_sexp c), expr_of_sexp b)
            | _ -> fail "malformed piecewise branch"
          in
          Expr.piecewise
            (List.rev_map branch rev_branches)
            (expr_of_sexp default)
      | [] -> fail "empty piecewise")
  | List _ -> fail "malformed s-expression"

let sexp_of_string s = expr_of_sexp (parse_sexp_text s)

module Sexp = struct
  type t = sexp = Atom of string | List of t list

  let parse = parse_sexp_text

  let rec print buf = function
    | Atom a -> Buffer.add_string buf a
    | List items ->
        Buffer.add_char buf '(';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ' ';
            print buf item)
          items;
        Buffer.add_char buf ')'
end
