(** Rendering of symbolic expressions.

    Three formats are provided:
    - {!pp} / {!to_string}: human-readable infix notation with minimal
      parentheses,
    - {!pp_sexp}: fully parenthesized s-expressions (stable, parseable by
      {!Parser.sexp_of_string}),
    - {!pp_python}: Python/NumPy syntax, mirroring the paper's
      Maple-[CodeGeneration]-to-Python step so encoded functionals can be
      compared against reference implementations. *)

val pp : Format.formatter -> Expr.t -> unit
val to_string : Expr.t -> string
val pp_sexp : Format.formatter -> Expr.t -> unit
val sexp_to_string : Expr.t -> string
val pp_python : Format.formatter -> Expr.t -> unit
val python_to_string : Expr.t -> string

(** [pp_c ~name ~vars ppf e] emits a complete C99 function
    [double name(double v1, ...)] computing [e] — the reverse of the
    paper's Maple-to-code step, and the shape LibXC itself ships.
    Common subexpressions become local [t<n>] temporaries (one per shared
    DAG node), piecewise bodies become conditional expressions, and
    [lambert_w] is emitted as a call to an extern [xcv_lambert_w]. *)
val pp_c : name:string -> vars:string list -> Format.formatter -> Expr.t -> unit

val c_to_string : name:string -> vars:string list -> Expr.t -> string
