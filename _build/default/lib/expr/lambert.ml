let residual w x = (w *. Stdlib.exp w) -. x

let initial_guess x =
  if x < -0.25 then begin
    (* Series around the branch point x = -1/e. *)
    let p = Stdlib.sqrt (2.0 *. ((Float.exp 1.0 *. x) +. 1.0)) in
    -1.0 +. p -. (p *. p /. 3.0)
  end
  else if x < 0.25 then
    (* Padé-flavoured guess accurate near zero. *)
    x *. (1.0 -. x +. (1.5 *. x *. x)) /. (1.0 +. (0.5 *. x))
  else if x < 10.0 then
    (* log1p satisfies the asymptotics of W at both ends of this range and
       never degenerates (unlike log log x near x = 1). *)
    Stdlib.log1p x
  else begin
    let l1 = Stdlib.log x in
    let l2 = Stdlib.log l1 in
    l1 -. l2 +. (l2 /. l1)
  end

let w0 x =
  if Float.is_nan x then Float.nan
  else if x = Float.infinity then Float.infinity
  else if x = 0.0 then 0.0
  else if x < -.(Float.exp (-1.0)) -. 1e-15 then Float.nan
  else begin
    let w = ref (initial_guess x) in
    if !w <= -1.0 then w := -1.0 +. 1e-12;
    (* Halley iteration: cubic convergence, 4 rounds suffice from the
       guesses above; a few extra rounds cost nothing and guard pathological
       starting points. *)
    for _ = 1 to 8 do
      let ew = Stdlib.exp !w in
      let f = (!w *. ew) -. x in
      if f <> 0.0 then begin
        let w1 = !w +. 1.0 in
        let denom = (ew *. w1) -. ((!w +. 2.0) *. f /. (2.0 *. w1)) in
        if denom <> 0.0 && Float.is_finite denom then w := !w -. (f /. denom)
      end
    done;
    !w
  end
