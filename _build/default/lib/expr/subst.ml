open Expr

let replace_map lookup e =
  let go =
    memo_fix (fun self e ->
        match lookup e with
        | Some e' -> e'
        | None -> (
            match e.node with
            | Num _ | Flt _ | Var _ -> e
            | Add terms -> add_n (List.map self terms)
            | Mul factors -> mul_n (List.map self factors)
            | Pow (b, x) -> pow (self b) (self x)
            | Apply (Exp, a) -> exp (self a)
            | Apply (Log, a) -> log (self a)
            | Apply (Sin, a) -> sin (self a)
            | Apply (Cos, a) -> cos (self a)
            | Apply (Tanh, a) -> tanh (self a)
            | Apply (Atan, a) -> atan (self a)
            | Apply (Abs, a) -> abs (self a)
            | Apply (Lambert_w, a) -> lambert_w (self a)
            | Piecewise (branches, default) ->
                piecewise
                  (List.map
                     (fun (g, body) ->
                       ({ g with cond = self g.cond }, self body))
                     branches)
                  (self default)))
  in
  go e

let subst bindings e =
  replace_map
    (fun e ->
      match e.node with
      | Var v -> List.assoc_opt v bindings
      | _ -> None)
    e

let subst1 name v e = subst [ (name, v) ] e

let replace ~from ~into e =
  replace_map (fun e -> if equal e from then Some into else None) e

let replace_map_constants f e =
  replace_map
    (fun e ->
      match e.node with
      | Num r -> Option.map const (f (Rat.to_float r))
      | Flt c -> Option.map const (f c)
      | _ -> None)
    e

let at_large name value e = subst1 name (const value) e
let rename old_name new_name e = subst1 old_name (var new_name) e
