(** Symbolic differentiation.

    Replaces the SymPy step of the paper's XCEncoder: the local conditions
    EC2-EC4 and EC6-EC7 need first and second partial derivatives of the
    correlation enhancement factor with respect to the Wigner-Seitz radius,
    and the paper computes these symbolically to avoid the numerical
    approximation errors of the grid-search baseline.

    Differentiation is memoized over the expression DAG, so shared subterms
    are differentiated once. Piecewise expressions are differentiated
    branchwise (guards are kept; the measure-zero switching boundary is
    handled by the interval solver, which hulls both branches whenever a
    guard is not decided). *)

(** [diff ~wrt e] is the partial derivative of [e] with respect to the
    variable named [wrt]. The result is built with the smart constructors, so
    it is lightly normalized but not deeply simplified; pass it through
    {!Simplify.simplify} before encoding. *)
val diff : wrt:string -> Expr.t -> Expr.t

(** [diff_n ~wrt n e] is the [n]-th derivative, simplifying between
    applications. *)
val diff_n : wrt:string -> int -> Expr.t -> Expr.t
