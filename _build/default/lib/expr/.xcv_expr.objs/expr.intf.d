lib/expr/expr.mli: Rat
