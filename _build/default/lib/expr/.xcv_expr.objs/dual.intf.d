lib/expr/dual.mli: Expr
