lib/expr/rat.mli: Format
