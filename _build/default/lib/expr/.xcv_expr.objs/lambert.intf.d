lib/expr/lambert.mli:
