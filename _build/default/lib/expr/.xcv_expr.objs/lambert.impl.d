lib/expr/lambert.ml: Float Stdlib
