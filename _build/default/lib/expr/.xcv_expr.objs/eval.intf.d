lib/expr/eval.mli: Expr
