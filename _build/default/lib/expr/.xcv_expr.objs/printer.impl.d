lib/expr/printer.ml: Buffer Expr Float Format Hashtbl List Option Printf Rat String
