lib/expr/eval.ml: Expr Float Lambert List Rat Stdlib
