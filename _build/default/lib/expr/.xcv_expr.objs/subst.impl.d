lib/expr/subst.ml: Expr List Option Rat
