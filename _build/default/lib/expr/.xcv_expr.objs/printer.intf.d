lib/expr/printer.mli: Expr Format
