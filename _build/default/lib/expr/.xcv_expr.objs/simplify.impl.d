lib/expr/simplify.ml: Expr List Rat
