lib/expr/parser.mli: Buffer Expr
