lib/expr/expr.ml: Float Hashtbl Int64 List Mutex Rat Stdlib String
