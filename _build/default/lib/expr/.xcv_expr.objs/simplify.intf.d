lib/expr/simplify.mli: Expr
