lib/expr/parser.ml: Buffer Expr Float Format List String
