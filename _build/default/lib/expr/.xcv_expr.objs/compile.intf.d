lib/expr/compile.mli: Expr
