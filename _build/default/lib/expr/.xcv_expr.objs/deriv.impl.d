lib/expr/deriv.ml: Expr List Simplify String
