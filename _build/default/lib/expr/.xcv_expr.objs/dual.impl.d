lib/expr/dual.ml: Eval Expr Lambert List Rat Stdlib String
