lib/expr/rat.ml: Float Format Stdlib
