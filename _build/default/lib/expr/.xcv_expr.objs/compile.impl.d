lib/expr/compile.ml: Array Eval Expr Float Lambert List Printf Rat Stdlib String
