(** Algebraic simplification beyond the light normalization performed by the
    smart constructors.

    [simplify] rebuilds an expression bottom-up — re-running constant folding
    and like-term collection on every level, which matters after
    differentiation — and applies a set of sound local rewrites:
    - [log (exp x) = x] and [exp (log x) = x] (the latter only where [log] is
      defined, which is exactly where the original expression was defined),
    - [(exp x)^c = exp (c*x)],
    - [|x|^(2n) = x^(2n)] and [| |x| | = |x|],
    - nested piecewise flattening when a branch body repeats the default.

    All rewrites preserve the function on its natural domain; none enlarge
    the domain (so a verification verdict about the simplified form carries
    over to the original implementation). *)

val simplify : Expr.t -> Expr.t

(** [expand e] additionally distributes products and natural-number powers
    over sums, producing a sum-of-products normal form. Exponential in the
    worst case — used by tests and small canonicalization tasks only. *)
val expand : Expr.t -> Expr.t

(** [with_nonneg vars e] simplifies under the assumption that every variable
    in [vars] is nonnegative — true of all DFA inputs ([rs > 0], [s >= 0],
    [alpha >= 0]). This licenses rewrites that are unsound in general but
    hold on the nonnegative orthant under extended-real power semantics:

    - [(x^a)^b = x^(a b)] for any constant exponents,
    - [(x*y)^p] distributes when the factors are recognizably nonnegative,
    - [|x| = x],
    - [sqrt(x^2) = x].

    The encoder applies this to every local condition: the verification
    domains satisfy the assumption, and flatter power towers contract much
    better in the HC4 backward pass. *)
val with_nonneg : string list -> Expr.t -> Expr.t
