(** The Pederson-Burke grid-search baseline (paper Section IV-A): sample the
    DFA over a uniform mesh, approximate the derivatives of [F_c]
    numerically, and check each local condition pointwise. The condition is
    declared satisfied iff it holds at every grid point.

    This is the state-of-the-art methodology the paper compares against in
    Table II and the top rows of Figures 1 and 2. It scales trivially but
    offers no guarantees: violations between grid points are missed, and the
    finite-difference derivatives inject noise near domain edges. *)

type result = {
  dfa : string;
  condition : Conditions.id;
  mesh : Mesh.t;
  satisfied_mask : bool array;  (** per grid point, row-major *)
  satisfied : bool;  (** all points pass *)
  violation_fraction : float;
  first_violations : (string * float) list list;
      (** up to 10 violating grid points *)
}

(** [check ?n ?n_alpha dfa cond] runs the baseline; [None] when the
    condition does not apply to the DFA. [n] is the per-axis sample count
    for [rs] and [s] (default 100); [n_alpha] the alpha-axis count for
    meta-GGAs (default 20). *)
val check :
  ?n:int -> ?n_alpha:int -> Registry.t -> Conditions.id -> result option

(** [check_all dfas] runs every applicable pair. *)
val check_all : ?n:int -> ?n_alpha:int -> Registry.t list -> result list

(** [violation_boundary_s result] — for 2D results with violations, the
    smallest [s] among violating points (the paper quotes such boundaries,
    e.g. LYP EC1 violations at [s > 1.6563]). *)
val violation_boundary_s : result -> float option

val pp_summary : Format.formatter -> result -> unit
