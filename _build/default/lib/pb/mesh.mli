(** Uniform grids for the Pederson-Burke baseline (paper Section IV-A). *)

(** [linspace lo hi n] is [n >= 2] evenly spaced samples, inclusive of both
    endpoints.
    @raise Invalid_argument if [n < 2]. *)
val linspace : float -> float -> int -> float array

(** An N-dimensional mesh: named axes with their sample arrays, iterated in
    row-major (first axis slowest) order. *)
type t = { axes : (string * float array) list }

val make : (string * float array) list -> t
val shape : t -> int list
val size : t -> int

(** [point mesh flat_index] is the coordinate assignment of a flat index. *)
val point : t -> int -> (string * float) list

(** [values mesh flat_index] is the raw coordinate array (axis order). *)
val values : t -> int -> float array

(** [stride mesh axis_index] is the flat-index stride of one step along the
    axis. *)
val stride : t -> int -> int
