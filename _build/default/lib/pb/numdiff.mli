(** Finite-difference gradients equivalent to [numpy.gradient] — the
    numerical-derivative step of the Pederson-Burke methodology that the
    paper's symbolic encoder deliberately avoids.

    Second-order central differences in the interior, second-order one-sided
    stencils at the boundaries, supporting non-uniform spacing exactly like
    NumPy. *)

(** [gradient1d ys xs] differentiates samples [ys] taken at coordinates
    [xs].
    @raise Invalid_argument if lengths differ or fewer than 2 samples. *)
val gradient1d : float array -> float array -> float array

(** [gradient_axis values ~shape ~axis ~coords] differentiates a flattened
    row-major N-d array along [axis]. *)
val gradient_axis :
  float array -> shape:int list -> axis:int -> coords:float array ->
  float array

(** [second_derivative1d ys xs] is [gradient1d (gradient1d ys xs) xs] — the
    iterated-gradient scheme PB use for second derivatives. *)
val second_derivative1d : float array -> float array -> float array
