type result = {
  dfa : string;
  condition : Conditions.id;
  mesh : Mesh.t;
  satisfied_mask : bool array;
  satisfied : bool;
  violation_fraction : float;
  first_violations : (string * float) list list;
}

let c_lo = 2.27

let mesh_for ?(n = 100) ?(n_alpha = 20) dfa =
  let rs_lo, rs_hi = Domain_spec.rs_bounds in
  let s_lo, s_hi = Domain_spec.s_bounds in
  let a_lo, a_hi = Domain_spec.alpha_bounds in
  let axis v =
    if String.equal v Dft_vars.rs_name then (v, Mesh.linspace rs_lo rs_hi n)
    else if String.equal v Dft_vars.s_name then (v, Mesh.linspace s_lo s_hi n)
    else (v, Mesh.linspace a_lo a_hi n_alpha)
  in
  Mesh.make (List.map axis (Registry.variables dfa))

(* Evaluate a compiled tape over every mesh point, columnwise. *)
let tabulate mesh tape =
  let total = Mesh.size mesh in
  let nvars = List.length mesh.Mesh.axes in
  let cols = Array.init nvars (fun _ -> Array.make total 0.0) in
  for i = 0 to total - 1 do
    let v = Mesh.values mesh i in
    for j = 0 to nvars - 1 do
      cols.(j).(i) <- v.(j)
    done
  done;
  let out = Array.make total 0.0 in
  Compile.run_batch tape cols out;
  out

let check ?(n = 100) ?(n_alpha = 20) (dfa : Registry.t) cond =
  if not (Conditions.applies cond dfa) then None
  else begin
    let vars = Registry.variables dfa in
    let mesh = mesh_for ~n ~n_alpha dfa in
    let rs_axis =
      match mesh.Mesh.axes with (_, xs) :: _ -> xs | [] -> assert false
    in
    let shape = Mesh.shape mesh in
    let total = Mesh.size mesh in
    let f_c = Enhancement.f_of (Option.get dfa.eps_c) in
    let fc_tape = Compile.compile ~vars f_c in
    let fc = tabulate mesh fc_tape in
    let dfc =
      Numdiff.gradient_axis fc ~shape ~axis:0 ~coords:rs_axis
    in
    let d2fc =
      Numdiff.gradient_axis dfc ~shape ~axis:0 ~coords:rs_axis
    in
    (* F_c at the rs -> infinity stand-in, constant along the rs axis. *)
    let fc_inf =
      lazy
        (Array.init total (fun i ->
             let v = Mesh.values mesh i in
             v.(0) <- Enhancement.rs_infinity;
             Compile.run fc_tape v))
    in
    let fxc =
      lazy
        (let e = Option.get (Registry.eps_xc dfa) in
         tabulate mesh (Compile.compile ~vars (Enhancement.f_of e)))
    in
    let margin i =
      let rs = (Mesh.values mesh i).(0) in
      match cond with
      | Conditions.Ec1 -> fc.(i)
      | Conditions.Ec2 -> dfc.(i)
      | Conditions.Ec3 -> d2fc.(i) +. (2.0 /. rs *. dfc.(i))
      | Conditions.Ec4 -> c_lo -. ((Lazy.force fxc).(i) +. (rs *. dfc.(i)))
      | Conditions.Ec5 -> c_lo -. (Lazy.force fxc).(i)
      | Conditions.Ec6 -> (((Lazy.force fc_inf).(i) -. fc.(i)) /. rs) -. dfc.(i)
      | Conditions.Ec7 -> (fc.(i) /. rs) -. dfc.(i)
    in
    let mask = Array.init total (fun i ->
        let m = margin i in
        (* NaN margins (e.g. removable singularities at mesh edges) are
           counted as violations: the implementation failed to produce a
           value satisfying the condition there. *)
        m >= 0.0)
    in
    let violations = ref [] and nviol = ref 0 in
    Array.iteri
      (fun i ok ->
        if not ok then begin
          incr nviol;
          if List.length !violations < 10 then
            violations := Mesh.point mesh i :: !violations
        end)
      mask;
    Some
      {
        dfa = dfa.Registry.label;
        condition = cond;
        mesh;
        satisfied_mask = mask;
        satisfied = !nviol = 0;
        violation_fraction = float_of_int !nviol /. float_of_int total;
        first_violations = List.rev !violations;
      }
  end

let check_all ?n ?n_alpha dfas =
  List.concat_map
    (fun dfa ->
      List.filter_map (fun c -> check ?n ?n_alpha dfa c) Conditions.all)
    dfas

let violation_boundary_s r =
  let best = ref Float.infinity in
  Array.iteri
    (fun i ok ->
      if not ok then
        match List.assoc_opt Dft_vars.s_name (Mesh.point r.mesh i) with
        | Some s -> if s < !best then best := s
        | None -> ())
    r.satisfied_mask;
  if Float.is_finite !best then Some !best else None

let pp_summary ppf r =
  Format.fprintf ppf "PB %s / %s: %s (%.2f%% of %d grid points violate)"
    r.dfa (Conditions.name r.condition)
    (if r.satisfied then "satisfied" else "violated")
    (100.0 *. r.violation_fraction)
    (Mesh.size r.mesh)
