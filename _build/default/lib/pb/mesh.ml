let linspace lo hi n =
  if n < 2 then invalid_arg "Mesh.linspace: need at least two samples";
  Array.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

type t = { axes : (string * float array) list }

let make axes =
  if axes = [] then invalid_arg "Mesh.make: no axes";
  { axes }

let shape m = List.map (fun (_, xs) -> Array.length xs) m.axes
let size m = List.fold_left ( * ) 1 (shape m)

let unrank m flat =
  (* row-major: first axis slowest *)
  let dims = Array.of_list (shape m) in
  let k = Array.length dims in
  let idx = Array.make k 0 in
  let rec go flat i =
    if i < 0 then ()
    else begin
      idx.(i) <- flat mod dims.(i);
      go (flat / dims.(i)) (i - 1)
    end
  in
  go flat (k - 1);
  idx

let point m flat =
  let idx = unrank m flat in
  List.mapi (fun i (name, xs) -> (name, xs.(idx.(i)))) m.axes

let values m flat =
  let idx = unrank m flat in
  Array.of_list (List.mapi (fun i (_, xs) -> xs.(idx.(i))) m.axes)

let stride m axis_index =
  let dims = shape m in
  let rec go i = function
    | [] -> invalid_arg "Mesh.stride: axis out of range"
    | _ :: rest -> if i = axis_index then List.fold_left ( * ) 1 rest else go (i + 1) rest
  in
  go 0 dims
