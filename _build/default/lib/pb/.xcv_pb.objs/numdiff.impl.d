lib/pb/numdiff.ml: Array
