lib/pb/pbcheck.mli: Conditions Format Mesh Registry
