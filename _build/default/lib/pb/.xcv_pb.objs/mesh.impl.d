lib/pb/mesh.ml: Array List
