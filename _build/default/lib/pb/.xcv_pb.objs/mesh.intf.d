lib/pb/mesh.mli:
