lib/pb/numdiff.mli:
