lib/pb/pbcheck.ml: Array Compile Conditions Dft_vars Domain_spec Enhancement Float Format Lazy List Mesh Numdiff Option Registry String
