let gradient1d ys xs =
  let n = Array.length ys in
  if Array.length xs <> n then invalid_arg "Numdiff.gradient1d: length mismatch";
  if n < 2 then invalid_arg "Numdiff.gradient1d: need at least 2 samples";
  let out = Array.make n 0.0 in
  (* Interior: non-uniform second-order central difference. *)
  for i = 1 to n - 2 do
    let hs = xs.(i) -. xs.(i - 1) and hd = xs.(i + 1) -. xs.(i) in
    let a = -.hd /. (hs *. (hs +. hd)) in
    let b = (hd -. hs) /. (hs *. hd) in
    let c = hs /. (hd *. (hs +. hd)) in
    out.(i) <- (a *. ys.(i - 1)) +. (b *. ys.(i)) +. (c *. ys.(i + 1))
  done;
  if n = 2 then begin
    let d = (ys.(1) -. ys.(0)) /. (xs.(1) -. xs.(0)) in
    out.(0) <- d;
    out.(1) <- d
  end
  else begin
    (* Second-order one-sided stencils at the ends (as numpy.gradient with
       edge_order=2). *)
    let one_sided i0 i1 i2 =
      let h1 = xs.(i1) -. xs.(i0) and h2 = xs.(i2) -. xs.(i1) in
      let a = -.(2.0 *. h1 +. h2) /. (h1 *. (h1 +. h2)) in
      let b = (h1 +. h2) /. (h1 *. h2) in
      let c = -.h1 /. (h2 *. (h1 +. h2)) in
      (a *. ys.(i0)) +. (b *. ys.(i1)) +. (c *. ys.(i2))
    in
    out.(0) <- one_sided 0 1 2;
    let m = n - 1 in
    let h1 = xs.(m - 1) -. xs.(m - 2) and h2 = xs.(m) -. xs.(m - 1) in
    let a = h2 /. (h1 *. (h1 +. h2)) in
    let b = -.(h1 +. h2) /. (h1 *. h2) in
    let c = (h1 +. 2.0 *. h2) /. (h2 *. (h1 +. h2)) in
    out.(m) <- (a *. ys.(m - 2)) +. (b *. ys.(m - 1)) +. (c *. ys.(m))
  end;
  out

let second_derivative1d ys xs = gradient1d (gradient1d ys xs) xs

let gradient_axis values ~shape ~axis ~coords =
  let dims = Array.of_list shape in
  let k = Array.length dims in
  if axis < 0 || axis >= k then invalid_arg "Numdiff.gradient_axis: bad axis";
  let n_axis = dims.(axis) in
  if Array.length coords <> n_axis then
    invalid_arg "Numdiff.gradient_axis: coords length mismatch";
  let stride =
    let s = ref 1 in
    for i = axis + 1 to k - 1 do
      s := !s * dims.(i)
    done;
    !s
  in
  let total = Array.length values in
  let out = Array.make total 0.0 in
  let line = Array.make n_axis 0.0 in
  (* Enumerate all lines along [axis]: flat indices i with axis-coordinate 0
     are the line anchors. *)
  let block = stride * n_axis in
  let nblocks = total / block in
  for b = 0 to nblocks - 1 do
    for off = 0 to stride - 1 do
      let anchor = (b * block) + off in
      for j = 0 to n_axis - 1 do
        line.(j) <- values.(anchor + (j * stride))
      done;
      let d = gradient1d line coords in
      for j = 0 to n_axis - 1 do
        out.(anchor + (j * stride)) <- d.(j)
      done
    done
  done;
  out
