type id = X_nonpos | X_lo

let all = [ X_nonpos; X_lo ]

let name = function X_nonpos -> "x1" | X_lo -> "x2"

let label = function
  | X_nonpos -> "E_x non-positivity"
  | X_lo -> "Exchange LO bound (F_x <= 1.804)"

let c_xlo = 1.804

let of_name n =
  let n = String.lowercase_ascii n in
  match List.find_opt (fun c -> String.equal (name c) n) all with
  | Some c -> c
  | None -> raise Not_found

let applies _cond (dfa : Registry.t) = dfa.Registry.eps_x <> None

let nonneg_vars =
  [ Dft_vars.rs_name; Dft_vars.s_name; Dft_vars.alpha_name ]

let local_condition cond (dfa : Registry.t) =
  match dfa.Registry.eps_x with
  | None -> None
  | Some eps_x ->
      let f_x = Enhancement.f_of eps_x in
      let expr =
        match cond with
        | X_nonpos -> f_x
        | X_lo -> Expr.sub (Expr.const c_xlo) f_x
      in
      Some (Form.ge (Simplify.with_nonneg nonneg_vars expr))

let exchange_functionals () =
  List.filter (fun (f : Registry.t) -> f.Registry.eps_x <> None) Registry.all
