let rs_bounds = (0.0001, 5.0)
let s_bounds = (0.0, 5.0)
let alpha_bounds = (0.0, 5.0)

let interval_for v =
  let lo, hi =
    if String.equal v Dft_vars.rs_name then rs_bounds
    else if String.equal v Dft_vars.s_name then s_bounds
    else if String.equal v Dft_vars.alpha_name then alpha_bounds
    else invalid_arg (Printf.sprintf "Domain_spec: unknown variable %S" v)
  in
  Interval.make lo hi

let box_for_vars vars = Box.make (List.map (fun v -> (v, interval_for v)) vars)

let box_for dfa = box_for_vars (Registry.variables dfa)
