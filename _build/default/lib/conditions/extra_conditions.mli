(** Extension conditions beyond the paper's seven — the Section VI-B
    direction ("the ultimate goal ... is to be able to analyze all the 500+
    functionals in LibXC for all known DFT exact conditions").

    Two exchange-side exact conditions with simple local forms:

    - {b X1, exchange non-positivity}: the exact exchange energy satisfies
      [E_x[n] <= 0]; locally [eps_x <= 0], i.e. [F_x >= 0].
    - {b X2, exchange Lieb-Oxford bound}: the tight exchange-only form of
      the Lieb-Oxford inequality used in PBE's construction,
      [E_x >= 1.804 * E_x^LDA], locally [F_x <= 1.804]. Non-empirical GGAs
      (PBE, SCAN, AM05) are built to respect it; the empirical B88 exchange
      grows as [F_x ~ x / (6 log x)] and must violate it at large reduced
      gradients — a textbook defect this module's verifier run catches with
      a certified counterexample.

    These apply to any registered functional with an exchange part (PBE,
    SCAN, AM05 x+c, B88, BLYP, rSCAN). *)

type id = X_nonpos | X_lo

val all : id list
val name : id -> string
val label : id -> string

(** The exchange Lieb-Oxford constant [1.804] used by X2. *)
val c_xlo : float

(** @raise Not_found on unknown names. *)
val of_name : string -> id

val applies : id -> Registry.t -> bool

(** [local_condition cond dfa] — [None] when the DFA has no exchange part. *)
val local_condition : id -> Registry.t -> Form.atom option

(** Functionals from {!Registry.all} with an exchange part. *)
val exchange_functionals : unit -> Registry.t list
