(** Verification input domains (Equation 11 of the paper).

    The bounds follow Pederson & Burke: [rs in [0.0001, 5]] and
    [s in [0, 5]]; for meta-GGAs the iso-orbital indicator ranges over
    [alpha in [0, 5]] (alpha >= 0 by construction; 5 covers the
    density-overlap regimes PB sample). LDA functionals use the [rs]
    interval only. *)

val rs_bounds : float * float
val s_bounds : float * float
val alpha_bounds : float * float

(** [box_for dfa] is the full input domain of a functional as a box over its
    canonical variables. *)
val box_for : Registry.t -> Box.t

(** [box_for_vars vars] builds the domain box for an explicit variable list
    (used by ablations that restrict dimensions).
    @raise Invalid_argument on an unknown variable name. *)
val box_for_vars : string list -> Box.t
