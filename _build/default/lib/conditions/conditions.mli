(** The seven DFT exact conditions of the paper's Section II, as local
    conditions on the enhancement factors.

    Each exact condition on the global functional [E_xc] has a local
    sufficient condition on the DFA's enhancement factor; the verifier
    decides the local condition. The encodings below clear the (strictly
    positive) [rs] denominators so the solver sees polynomial-in-[1/rs]-free
    atoms; this is an equivalence on the verification domain [rs > 0]:

    - EC1 [E_c] non-positivity:         [F_c >= 0]                      (Eq. 4)
    - EC2 [E_c] scaling inequality:     [dF_c/drs >= 0]                 (Eq. 5)
    - EC3 [U_c(lambda)] monotonicity:   [rs d2F_c/drs2 + 2 dF_c/drs >= 0]
                                                                        (Eq. 6)
    - EC4 Lieb-Oxford bound:            [C_LO - F_xc - rs dF_c/drs >= 0]
                                                                        (Eq. 7)
    - EC5 LO extension to [E_xc]:       [C_LO - F_xc >= 0]              (Eq. 8)
    - EC6 [T_c] upper bound:            [F_c(inf) - F_c - rs dF_c/drs >= 0]
                                                                        (Eq. 9)
    - EC7 conjectured [T_c] bound:      [F_c - rs dF_c/drs >= 0]        (Eq. 10)

    [F_c(inf)] follows the paper: substitution of [rs = 100]
    ({!Enhancement.f_c_at_infinity}). All derivatives are computed
    symbolically ({!Deriv}), as in the paper's XCEncoder. *)

type id = Ec1 | Ec2 | Ec3 | Ec4 | Ec5 | Ec6 | Ec7

(** All seven, in paper order. *)
val all : id list

(** Short machine name, e.g. ["ec1"]. *)
val name : id -> string

(** Paper description, e.g. ["E_c non-positivity"]. *)
val label : id -> string

(** Equation number of the local condition in the paper. *)
val equation : id -> int

(** [of_name "ec3"] (case-insensitive).
    @raise Not_found for unknown names. *)
val of_name : string -> id

(** [applies cond dfa]: EC4/EC5 need both exchange and correlation; the
    others need correlation. *)
val applies : id -> Registry.t -> bool

(** [applicable dfa] lists the conditions that apply, in paper order. *)
val applicable : Registry.t -> id list

(** [local_condition cond dfa] encodes the local condition ψ as a solver
    atom. [None] when the condition does not apply. The expression is
    simplified and shares the functional's subterms. *)
val local_condition : id -> Registry.t -> Form.atom option

(** Number of applicable (DFA, condition) pairs over a list of functionals —
    the paper's count of 29 over its five DFAs. *)
val count_pairs : Registry.t list -> int
