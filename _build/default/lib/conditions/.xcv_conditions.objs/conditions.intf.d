lib/conditions/conditions.mli: Form Registry
