lib/conditions/extra_conditions.mli: Form Registry
