lib/conditions/domain_spec.ml: Box Dft_vars Interval List Printf Registry String
