lib/conditions/conditions.ml: Deriv Dft_vars Enhancement Expr Form Hashtbl List Option Registry Simplify String
