lib/conditions/extra_conditions.ml: Dft_vars Enhancement Expr Form List Registry Simplify String
