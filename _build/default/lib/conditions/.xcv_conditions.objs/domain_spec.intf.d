lib/conditions/domain_spec.mli: Box Registry
