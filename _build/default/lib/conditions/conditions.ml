type id = Ec1 | Ec2 | Ec3 | Ec4 | Ec5 | Ec6 | Ec7

let all = [ Ec1; Ec2; Ec3; Ec4; Ec5; Ec6; Ec7 ]

let name = function
  | Ec1 -> "ec1"
  | Ec2 -> "ec2"
  | Ec3 -> "ec3"
  | Ec4 -> "ec4"
  | Ec5 -> "ec5"
  | Ec6 -> "ec6"
  | Ec7 -> "ec7"

let label = function
  | Ec1 -> "E_c non-positivity"
  | Ec2 -> "E_c scaling inequality"
  | Ec3 -> "U_c monotonicity"
  | Ec4 -> "LO bound"
  | Ec5 -> "LO extension to E_xc"
  | Ec6 -> "T_c upper bound"
  | Ec7 -> "Conjectured T_c upper bound"

let equation = function
  | Ec1 -> 4
  | Ec2 -> 5
  | Ec3 -> 6
  | Ec4 -> 7
  | Ec5 -> 8
  | Ec6 -> 9
  | Ec7 -> 10

let of_name n =
  let n = String.lowercase_ascii n in
  match List.find_opt (fun c -> String.equal (name c) n) all with
  | Some c -> c
  | None -> raise Not_found

(* Lieb-Oxford constant, following Pederson & Burke. *)
let c_lo = 2.27

let applies cond (dfa : Registry.t) =
  match cond with
  | Ec4 | Ec5 -> dfa.eps_x <> None && dfa.eps_c <> None
  | Ec1 | Ec2 | Ec3 | Ec6 | Ec7 -> dfa.eps_c <> None

let applicable dfa = List.filter (fun c -> applies c dfa) all

(* All DFA inputs are nonnegative: rs > 0, s >= 0, alpha >= 0. *)
let nonneg_vars = [ Dft_vars.rs_name; Dft_vars.s_name; Dft_vars.alpha_name ]

(* Derived quantities are memoized per DFA: several conditions share F_c and
   its rs-derivatives, and building them is expensive for SCAN. *)
let fc_cache : (string, Expr.t * Expr.t * Expr.t) Hashtbl.t = Hashtbl.create 8

let fc_parts (dfa : Registry.t) =
  match Hashtbl.find_opt fc_cache dfa.name with
  | Some parts -> parts
  | None ->
      let eps_c = Option.get dfa.eps_c in
      let nn = Simplify.with_nonneg nonneg_vars in
      let f_c = nn (Enhancement.f_of eps_c) in
      let dfc = nn (Deriv.diff ~wrt:Dft_vars.rs_name f_c) in
      let d2fc = nn (Deriv.diff ~wrt:Dft_vars.rs_name dfc) in
      let parts = (f_c, dfc, d2fc) in
      Hashtbl.add fc_cache dfa.name parts;
      parts

let local_condition cond (dfa : Registry.t) =
  if not (applies cond dfa) then None
  else begin
    let open Expr in
    let rs = Dft_vars.rs in
    let f_c, dfc, d2fc = fc_parts dfa in
    let expr =
      match cond with
      | Ec1 -> f_c
      | Ec2 -> dfc
      | Ec3 ->
          (* d2F/drs2 >= -(2/rs) dF/drs, cleared by rs > 0. *)
          add (mul rs d2fc) (mul two dfc)
      | Ec4 ->
          let f_xc = Enhancement.f_of (Option.get (Registry.eps_xc dfa)) in
          sub (const c_lo) (add f_xc (mul rs dfc))
      | Ec5 ->
          let f_xc = Enhancement.f_of (Option.get (Registry.eps_xc dfa)) in
          sub (const c_lo) f_xc
      | Ec6 ->
          (* dF/drs <= (F(inf) - F)/rs, cleared by rs > 0. *)
          let fc_inf = Enhancement.f_c_at_infinity f_c in
          sub (sub fc_inf f_c) (mul rs dfc)
      | Ec7 ->
          (* dF/drs <= F/rs, cleared by rs > 0. *)
          sub f_c (mul rs dfc)
    in
    Some (Form.ge (Simplify.with_nonneg nonneg_vars expr))
  end

let count_pairs dfas =
  List.fold_left (fun acc dfa -> acc + List.length (applicable dfa)) 0 dfas
