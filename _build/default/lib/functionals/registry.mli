(** The functional registry: metadata and lookup for every DFA this library
    implements, mirroring LibXC's role as the catalogue the verifier draws
    from. *)

(** Rung of Jacob's ladder. *)
type family = Lda | Gga | Mgga

(** Design philosophy — the paper's empirical / non-empirical distinction. *)
type design = Empirical | Non_empirical

type t = {
  name : string;  (** canonical lower-case identifier, e.g. ["pbe"] *)
  label : string;  (** display name, e.g. ["PBE"] *)
  family : family;
  design : design;
  eps_x : Expr.t option;  (** exchange energy density, if implemented *)
  eps_c : Expr.t option;  (** correlation energy density, if implemented *)
  description : string;
}

(** The five DFAs evaluated in the paper, in its order:
    PBE, SCAN, LYP, AM05, VWN RPA. *)
val paper_five : t list

(** All registered functionals (the paper's five plus the substrate and
    extension functionals: PW92, PZ81, VWN5, rSCAN). *)
val all : t list

(** [find name] looks up a functional by canonical name (case-insensitive).
    @raise Not_found for unknown names. *)
val find : string -> t

val find_opt : string -> t option

(** Variables a functional's expressions depend on, in canonical order
    ([rs]; [rs, s]; or [rs, s, alpha]). *)
val variables : t -> string list

(** [eps_xc f] is the total energy density — present only when both parts
    are ([None] otherwise), matching the paper's rule that the Lieb-Oxford
    conditions only apply to functionals with both exchange and
    correlation. *)
val eps_xc : t -> Expr.t option

val family_name : family -> string
val design_name : design -> string
val pp : Format.formatter -> t -> unit
