(** Perdew-Wang 1992 parametrization of the correlation energy of the
    uniform electron gas (spin-unpolarized channel).

    PW92 is not itself one of the paper's five DFAs, but it is a substrate:
    PBE correlation, SCAN's [eps_c^1] branch and AM05 correlation are all
    built on top of [eps_c^PW92(rs)]. Reference: Phys. Rev. B 45, 13244. *)

(** Symbolic [eps_c^PW92(rs)] at zeta = 0, in Hartree. *)
val eps_c : Expr.t

(** The generic PW92 interpolation
    [G(rs) = -2A(1 + a1 rs) ln(1 + 1/(2A(b1 rs^(1/2) + b2 rs + b3 rs^(3/2)
    + b4 rs^2)))] used by all three PW92 channels; exposed for tests and for
    building the spin-resolved channels. *)
val g_function :
  a:float -> a1:float -> b1:float -> b2:float -> b3:float -> b4:float -> Expr.t

(** Numeric convenience. *)
val eps_c_at : float -> float
