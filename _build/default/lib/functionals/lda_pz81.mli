(** Perdew-Zunger 1981 parametrization of the Ceperley-Alder correlation
    energies (unpolarized channel).

    Not one of the paper's five evaluated DFAs, but the subject of its
    Section VI-C discussion of numerical issues: PZ81 is defined piecewise in
    [rs] with independently fitted pieces, and the published constants make
    the energy and especially its derivative slightly discontinuous at the
    matching point [rs = 1]. The example [pz81_discontinuity] and the
    condition checks over boxes straddling [rs = 1] exercise exactly this
    defect. *)

(** Symbolic [eps_c^PZ81(rs)]:
    [rs < 1]: [A ln rs + B + C rs ln rs + D rs];
    [rs >= 1]: [gamma / (1 + beta1 sqrt rs + beta2 rs)]. *)
val eps_c : Expr.t

val eps_c_at : float -> float

(** Magnitude of the jump of [d eps_c / d rs] at the matching point,
    evaluated symbolically from both one-sided forms. *)
val derivative_jump_at_matching_point : unit -> float
