lib/functionals/lda_pw92.ml: Dft_vars Eval Expr Rat
