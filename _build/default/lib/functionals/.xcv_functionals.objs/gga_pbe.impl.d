lib/functionals/gga_pbe.ml: Dft_vars Eval Expr Float Lda_pw92 Stdlib Uniform
