lib/functionals/gga_b88.ml: Dft_vars Eval Expr Float Uniform
