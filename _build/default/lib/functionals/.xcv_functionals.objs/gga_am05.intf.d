lib/functionals/gga_am05.mli: Expr
