lib/functionals/spin.ml: Dft_vars Eval Expr Float Gga_pbe Lda_pw92 Rat Simplify Subst Uniform
