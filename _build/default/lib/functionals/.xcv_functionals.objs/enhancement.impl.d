lib/functionals/enhancement.ml: Dft_vars Expr Simplify Subst Uniform
