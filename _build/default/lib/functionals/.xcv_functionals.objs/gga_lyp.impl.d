lib/functionals/gga_lyp.ml: Dft_vars Eval Expr Float Rat
