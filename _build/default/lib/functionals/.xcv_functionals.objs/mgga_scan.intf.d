lib/functionals/mgga_scan.mli: Expr
