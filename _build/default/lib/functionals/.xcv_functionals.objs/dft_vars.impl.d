lib/functionals/dft_vars.ml: Expr Rat
