lib/functionals/gga_lyp.mli: Expr
