lib/functionals/gga_pbe.mli: Expr
