lib/functionals/registry.ml: Dft_vars Expr Format Gga_am05 Gga_b88 Gga_lyp Gga_pbe Lda_pw92 Lda_pz81 Lda_vwn List Mgga_rscan Mgga_scan String
