lib/functionals/lda_pz81.mli: Expr
