lib/functionals/lda_vwn.mli: Expr
