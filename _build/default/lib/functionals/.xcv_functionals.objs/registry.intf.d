lib/functionals/registry.mli: Expr Format
