lib/functionals/lda_pz81.ml: Deriv Dft_vars Eval Expr Float
