lib/functionals/lda_vwn.ml: Dft_vars Eval Expr Stdlib
