lib/functionals/mutate.mli: Expr Registry
