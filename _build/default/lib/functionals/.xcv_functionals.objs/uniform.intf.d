lib/functionals/uniform.mli: Expr
