lib/functionals/gga_am05.ml: Dft_vars Eval Expr Float Lda_pw92 Rat Stdlib Uniform
