lib/functionals/dft_vars.mli: Expr
