lib/functionals/enhancement.mli: Expr
