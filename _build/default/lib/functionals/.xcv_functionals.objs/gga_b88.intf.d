lib/functionals/gga_b88.mli: Expr
