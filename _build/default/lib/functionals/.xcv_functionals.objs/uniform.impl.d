lib/functionals/uniform.ml: Dft_vars Expr Float
