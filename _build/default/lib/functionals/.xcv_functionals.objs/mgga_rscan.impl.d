lib/functionals/mgga_rscan.ml: Array Dft_vars Eval Expr Mgga_scan Subst Uniform
