lib/functionals/mutate.ml: Expr Float List Option Registry Subst
