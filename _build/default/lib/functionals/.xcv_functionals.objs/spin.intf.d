lib/functionals/spin.mli: Expr
