lib/functionals/lda_pw92.mli: Expr
