lib/functionals/mgga_rscan.mli: Expr
