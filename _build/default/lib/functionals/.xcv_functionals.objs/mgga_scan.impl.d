lib/functionals/mgga_scan.ml: Dft_vars Eval Expr Float Lda_pw92 Rat Stdlib Uniform
