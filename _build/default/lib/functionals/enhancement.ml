let f_of eps = Simplify.simplify (Expr.div eps Uniform.eps_x)

let rs_infinity = 100.0

let f_c_at_infinity f_c =
  Simplify.simplify (Subst.at_large Dft_vars.rs_name rs_infinity f_c)
