(** Canonical variables of the DFA input space.

    Following Pederson & Burke (and the paper's Section II), functionals are
    expressed for the spin-unpolarized case in terms of:

    - [rs]: the Wigner-Seitz radius, [rs = (4 pi n / 3)^(-1/3)];
    - [s]: the reduced density gradient,
      [s = |grad n| / (2 (3 pi^2)^(1/3) n^(4/3))];
    - [alpha]: the meta-GGA iso-orbital indicator,
      [alpha = (tau - tau_W) / tau_unif] (meta-GGA functionals only).

    This module fixes the variable names and provides the symbolic
    change-of-variable expressions every functional implementation uses. *)

val rs_name : string
val s_name : string
val alpha_name : string

(** The variables as expressions. *)
val rs : Expr.t

val s : Expr.t
val alpha : Expr.t

(** [density] is the electron density [n(rs) = 3 / (4 pi rs^3)]. *)
val density : Expr.t

(** [grad_n_sq] is [|grad n|^2 = 4 (3 pi^2)^(2/3) n^(8/3) s^2]. *)
val grad_n_sq : Expr.t

(** [t2] is the square of the PBE-style reduced gradient for correlation,
    [t = |grad n| / (2 k_s n)]: [t2 = (pi/4) (9 pi / 4)^(1/3) s^2 / rs]. *)
val t2 : Expr.t

(** [kf] is the Fermi wavevector [(3 pi^2 n)^(1/3) = (9 pi / 4)^(1/3) / rs]. *)
val kf : Expr.t
