open Expr

let a = 0.04918
let b = 0.132
let c = 0.2533
let d = 0.349
let c_f = 0.3 *. Float.pow (3.0 *. Float.pi *. Float.pi) (2.0 /. 3.0)

let n = Dft_vars.density

(* n^(-1/3), the recurring length scale. *)
let n13 = powr n (Rat.make (-1) 3)

let denom = add one (mul (const d) n13)

(* delta = c n^(-1/3) + d n^(-1/3) / (1 + d n^(-1/3)) *)
let delta = add (mul (const c) n13) (div (mul (const d) n13) denom)

(* omega = exp(-c n^(-1/3)) n^(-11/3) / (1 + d n^(-1/3)) *)
let omega =
  mul_n
    [ exp (mul (const (-.c)) n13); powr n (Rat.make (-11) 3); inv denom ]

(* Closed-shell energy density: see interface. Multiplying the bracket of
   the energy (per volume) expression by omega/n yields the two terms below;
   |grad n|^2 carries the s-dependence. *)
let eps_c =
  let kinetic_term = mul (const c_f) (powr n (Rat.make 11 3)) in
  let grad_coeff = add (rat 1 24) (mul (rat 7 72) delta) in
  let gradient_term = mul_n [ grad_coeff; n; Dft_vars.grad_n_sq ] in
  sub
    (neg (div (const a) denom))
    (mul_n [ const (a *. b); omega; sub kinetic_term gradient_term ])

let eps_c_at ~rs ~s =
  Eval.eval [ (Dft_vars.rs_name, rs); (Dft_vars.s_name, s) ] eps_c

let s_crossing ~rs =
  let f s = eps_c_at ~rs ~s in
  (* eps_c < 0 at s = 0 and > 0 for large s; bisect the sign change. *)
  let rec bisect lo hi k =
    if k = 0 then 0.5 *. (lo +. hi)
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if f mid < 0.0 then bisect mid hi (k - 1) else bisect lo mid (k - 1)
    end
  in
  bisect 0.0 50.0 80
