open Expr

let kappa = 0.804
let mu = 0.2195149727645171
let beta = 0.06672455060314922
let gamma = (1.0 -. Stdlib.log 2.0) /. (Float.pi *. Float.pi)

let s = Dft_vars.s

(* Parametrized form: the registered functional uses the published
   constants; mutation tests and parameter studies rebuild with others. *)
let f_x_with ~kappa ~mu =
  add_n
    [
      one;
      const kappa;
      neg
        (div (const kappa)
           (add one (mul (const (mu /. kappa)) (sqr s))));
    ]

let f_x = f_x_with ~kappa ~mu

let eps_x = mul Uniform.eps_x f_x

let t2 = Dft_vars.t2

let h_term =
  let eps_lda = Lda_pw92.eps_c in
  let a =
    div (const (beta /. gamma))
      (sub (exp (mul (const (-1.0 /. gamma)) eps_lda)) one)
  in
  let at2 = mul a t2 in
  let numerator = add one at2 in
  let denominator = add_n [ one; at2; sqr at2 ] in
  mul (const gamma)
    (log
       (add one
          (mul_n [ const (beta /. gamma); t2; div numerator denominator ])))

let eps_c = add Lda_pw92.eps_c h_term

let eps_c_at ~rs ~s =
  Eval.eval [ (Dft_vars.rs_name, rs); (Dft_vars.s_name, s) ] eps_c

let eps_x_at ~rs ~s =
  Eval.eval [ (Dft_vars.rs_name, rs); (Dft_vars.s_name, s) ] eps_x
