open Expr

let alpha_reg = 1e-3

let alpha_regularized =
  let a = Dft_vars.alpha in
  div (powi a 3) (add (sqr a) (const alpha_reg))

(* Degree-7 interpolation polynomials of Bartók & Yates (as tabulated in the
   r2SCAN supplementary material), valid on alpha' < 2.5, matched to the
   SCAN exponential tail beyond. *)
let poly_x =
  [|
    1.0; -0.667; -0.4445555; -0.663086601049; 1.451297044490;
    -0.887998041597; 0.234528941479; -0.023185843322;
  |]

let poly_c =
  [|
    1.0; -0.64; -0.4352; -1.535685604549; 3.061560252175; -1.915710236206;
    0.516884468372; -0.051848879792;
  |]

let horner coeffs x =
  let n = Array.length coeffs in
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (add (const coeffs.(i)) (mul x acc))
  in
  go (n - 2) (const coeffs.(n - 1))

let switching coeffs ~c2 ~d =
  let a' = alpha_regularized in
  piecewise
    [ (guard_lt (sub a' (const 2.5)), horner coeffs a') ]
    (mul (const (-.d)) (exp (div (const c2) (sub one a'))))

let f_alpha_x = switching poly_x ~c2:Mgga_scan.c2x ~d:Mgga_scan.dx
let f_alpha_c = switching poly_c ~c2:Mgga_scan.c2c ~d:Mgga_scan.dc

(* Exchange and correlation reuse the SCAN limits with the regularized
   indicator substituted and the polynomial switch in place of the
   essential-singularity interpolation. *)
let with_regularized_alpha e =
  Subst.subst1 Dft_vars.alpha_name alpha_regularized e

let f_x =
  let h1x = with_regularized_alpha Mgga_scan.h1x in
  mul
    (add h1x (mul f_alpha_x (sub (const Mgga_scan.h0x) h1x)))
    Mgga_scan.g_x

let eps_x = mul Uniform.eps_x f_x

let eps_c =
  add Mgga_scan.eps_c1 (mul f_alpha_c (sub Mgga_scan.eps_c0 Mgga_scan.eps_c1))

let env3 ~rs ~s ~alpha =
  [
    (Dft_vars.rs_name, rs); (Dft_vars.s_name, s); (Dft_vars.alpha_name, alpha);
  ]

let eps_c_at ~rs ~s ~alpha = Eval.eval (env3 ~rs ~s ~alpha) eps_c
let eps_x_at ~rs ~s ~alpha = Eval.eval (env3 ~rs ~s ~alpha) eps_x
