(** Vosko-Wilk-Nusair correlation functionals (paramagnetic channel).

    The paper evaluates the {b VWN RPA} variant (LibXC's [LDA_C_VWN_RPA]):
    the VWN Padé interpolation fitted to the random-phase-approximation
    correlation energies, Phys. Rev. B 22, 3812 (1980). The more common VWN5
    fit (to the Ceperley-Alder quantum Monte Carlo data) is provided as
    well; it shares the functional form and differs only in parameters.

    Functional form, with [x = sqrt rs], [X(t) = t^2 + b t + c] and
    [Q = sqrt (4c - b^2)]:

    {v
    eps_c = A [ ln(x^2 / X(x)) + (2b/Q) atan(Q / (2x + b))
              - (b x0 / X(x0)) ( ln((x - x0)^2 / X(x))
                               + (2(b + 2 x0)/Q) atan(Q / (2x + b)) ) ]
    v} *)

type params = { a : float; x0 : float; b : float; c : float }

(** RPA fit (paramagnetic): A = 0.0310907, x0 = -0.409286, b = 13.0720,
    c = 42.7198. *)
val rpa_params : params

(** VWN5 fit (paramagnetic): A = 0.0310907, x0 = -0.10498, b = 3.72744,
    c = 12.9352. *)
val vwn5_params : params

(** [eps_c_of params] builds the symbolic correlation energy for a parameter
    set. *)
val eps_c_of : params -> Expr.t

(** [eps_c] is the VWN RPA variant — the DFA verified in the paper. *)
val eps_c : Expr.t

val eps_c_vwn5 : Expr.t
val eps_c_at : float -> float
