(** Becke 1988 exchange functional (Phys. Rev. A 38, 3098) — extension
    beyond the paper's five DFAs.

    B88 is the canonical {e empirical} exchange functional; combined with
    LYP correlation it forms BLYP, one of the most-used functionals in
    molecular chemistry. Registering the pair lets the verifier exercise the
    Lieb-Oxford conditions (EC4/EC5) on an empirically designed functional —
    the paper could not, because LYP alone has no exchange part.

    Spin-unpolarized form, with the dimensionless gradient
    [x_sigma = |grad n_sigma| / n_sigma^(4/3) = 2^(1/3) * 2 (3 pi^2)^(1/3) s]:

    {v
    F_x(s) = 1 + (beta / a_x) x^2 / (1 + 6 beta x asinh x)
    v}

    where [a_x = (3/2)(3/(4 pi))^(1/3)] normalizes against the uniform-gas
    exchange and [asinh u = log (u + sqrt (u^2 + 1))] is built from the
    expression primitives. [beta = 0.0042] is Becke's fitted constant. *)

val beta : float

(** The per-spin reduced gradient [x(s)] for the closed-shell case. *)
val x_of_s : Expr.t

val f_x : Expr.t
val eps_x : Expr.t
val eps_x_at : rs:float -> s:float -> float
