open Expr

let beta = 0.0042

(* a_x such that eps_x^unif = -a_x n_sigma^(1/3) per spin channel; for the
   closed shell the standard spin-scaled constant is
   (3/2) (3/(4 pi))^(1/3). *)
let a_x = 1.5 *. Float.cbrt (3.0 /. (4.0 *. Float.pi))

(* x_sigma = |grad n_sigma| / n_sigma^(4/3); with n_sigma = n/2 and
   |grad n_sigma| = |grad n|/2 this is 2^(1/3) |grad n| / n^(4/3)
   = 2^(1/3) * 2 (3 pi^2)^(1/3) * s. *)
let x_of_s =
  mul
    (const (Float.cbrt 2.0 *. 2.0 *. Float.cbrt (3.0 *. Float.pi *. Float.pi)))
    Dft_vars.s

let asinh e = log (add e (sqrt (add (sqr e) one)))

let f_x =
  let x = x_of_s in
  add one
    (div
       (mul (const (beta /. a_x)) (sqr x))
       (add one (mul_n [ const (6.0 *. beta); x; asinh x ])))

let eps_x = mul Uniform.eps_x f_x

let eps_x_at ~rs ~s =
  Eval.eval [ (Dft_vars.rs_name, rs); (Dft_vars.s_name, s) ] eps_x
