(** The uniform electron gas exchange energy — the normalization of every
    enhancement factor (Equation 2 of the paper).

    [eps_x_unif = -(3/4) (3 n / pi)^(1/3) = -(3/4) (9/(4 pi^2))^(1/3) / rs
    ~= -0.458165 / rs] Hartree per electron. *)

(** Symbolic [eps_x^unif] as a function of [rs]. *)
val eps_x : Expr.t

(** The positive prefactor [0.4581652932831429]: [eps_x = -prefactor / rs]. *)
val prefactor : float

(** [eps_x_at rs] — numeric evaluation convenience. *)
val eps_x_at : float -> float
