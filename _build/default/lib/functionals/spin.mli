(** Spin-polarized functional forms — extension beyond the paper's
    spin-unpolarized (zeta = 0) analysis.

    LibXC implements every functional spin-resolved; Pederson & Burke and
    the paper evaluate the zeta = 0 slice. This module provides the standard
    spin machinery so conditions can be verified on the full
    (rs, s, zeta) space:

    - the relative polarization variable [zeta = (n_up - n_down) / n],
    - the exchange spin-interpolation function
      [f(zeta) = ((1+z)^(4/3) + (1-z)^(4/3) - 2) / (2 (2^(1/3) - 1))],
    - exact spin scaling of exchange,
      [E_x(n_up, n_down) = (E_x(2 n_up) + E_x(2 n_down)) / 2],
    - the full three-channel PW92 correlation (paramagnetic, ferromagnetic
      and spin-stiffness fits) with the Vosko-Wilk-Nusair interpolation
      formula PW92 adopts,
    - spin-resolved PBE correlation with its [phi(zeta)] gradient screening.

    Checks: at [zeta = 0] every form reduces exactly to its unpolarized
    counterpart in this library; at [zeta = 1] PW92 reduces to its
    ferromagnetic channel (both covered by the test suite). *)

(** The variable name ["zeta"], and the variable itself. *)
val zeta_name : string

val zeta : Expr.t

(** [f_interp] is the exchange interpolation function [f(zeta)];
    [f(0) = 0], [f(1) = 1]. *)
val f_interp : Expr.t

(** [fpp0 = f''(0) = 8 / (9 (2^(4/3) - 2))]. *)
val fpp0 : float

(** [phi] is PBE's gradient-screening factor
    [((1+z)^(2/3) + (1-z)^(2/3)) / 2]. *)
val phi : Expr.t

(** {1 Exchange} *)

(** [eps_x_lda_spin]: spin-scaled LDA exchange,
    [eps_x^unif(rs) (1 + f(zeta) (2^(1/3) - 1))]-equivalent form. *)
val eps_x_lda_spin : Expr.t

(** [scale_exchange f_x_of_s] applies exact spin scaling to a GGA exchange
    enhancement factor: each spin channel sees density [2 n_sigma] and the
    correspondingly rescaled reduced gradient
    [s_sigma = s (1 + sigma zeta)^(-1/3)]. Returns [eps_x(rs, s, zeta)]. *)
val scale_exchange : Expr.t -> Expr.t

(** {1 PW92 correlation, full spin} *)

(** Ferromagnetic (zeta = 1) channel [eps_c^PW92(rs, 1)]. *)
val pw92_ferro : Expr.t

(** Spin stiffness [alpha_c(rs)] (positive-valued expression; the PW92 fit
    G gives [-alpha_c]). *)
val pw92_alpha_c : Expr.t

(** [eps_c_pw92_spin]: the interpolation
    [eps_c(rs, z) = eps_c(rs, 0) + alpha_c(rs) (f(z)/f''(0)) (1 - z^4)
     + (eps_c(rs,1) - eps_c(rs,0)) f(z) z^4]. *)
val eps_c_pw92_spin : Expr.t

(** {1 PBE, full spin} *)

(** [eps_c_pbe_spin(rs, s, zeta)]: PW92 spin interpolation plus the
    [H(rs, t, zeta)] gradient term with [phi]-screening. Reduces to
    {!Gga_pbe.eps_c} at [zeta = 0]. *)
val eps_c_pbe_spin : Expr.t

(** [eps_x_pbe_spin(rs, s, zeta)]: spin-scaled PBE exchange. *)
val eps_x_pbe_spin : Expr.t

(** {1 Evaluation helpers} *)

val at_zeta : float -> Expr.t -> Expr.t

val eval3 : rs:float -> s:float -> zeta:float -> Expr.t -> float
