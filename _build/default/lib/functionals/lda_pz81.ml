open Expr

(* Unpolarized parameters, Perdew & Zunger 1981, Appendix C. *)
let a_p = 0.0311
let b_p = -0.048
let c_p = 0.0020
let d_p = -0.0116
let gamma_p = -0.1423
let beta1_p = 1.0529
let beta2_p = 0.3334

let rs = Dft_vars.rs

let high_density =
  add_n
    [
      mul (const a_p) (log rs);
      const b_p;
      mul_n [ const c_p; rs; log rs ];
      mul (const d_p) rs;
    ]

let low_density =
  div (const gamma_p)
    (add_n [ one; mul (const beta1_p) (sqrt rs); mul (const beta2_p) rs ])

(* rs < 1 <=> rs - 1 < 0 *)
let eps_c = piecewise [ (guard_lt (sub rs one), high_density) ] low_density

let eps_c_at r = Eval.eval1 Dft_vars.rs_name r eps_c

let derivative_jump_at_matching_point () =
  let d_high = Deriv.diff ~wrt:Dft_vars.rs_name high_density in
  let d_low = Deriv.diff ~wrt:Dft_vars.rs_name low_density in
  Float.abs
    (Eval.eval1 Dft_vars.rs_name 1.0 d_high
    -. Eval.eval1 Dft_vars.rs_name 1.0 d_low)
