open Expr

let s = Dft_vars.s
let alpha = Dft_vars.alpha
let rs = Dft_vars.rs

(* Piecewise interpolation function shared by exchange and correlation:
   alpha < 1: exp(-c1 alpha / (1 - alpha)); alpha >= 1: -d exp(c2/(1 - alpha)). *)
let interp ~c1 ~c2 ~d =
  let one_minus = sub one alpha in
  (* Three branches: alpha < 1, alpha = 1 (both exponential forms have
     essential singularities there but the function value is 0), alpha > 1.
     Without the middle branch IEEE evaluation at exactly alpha = 1 would
     give exp(c2 / +0) = +inf instead of the defined limit 0. *)
  piecewise
    [
      ( guard_lt (sub alpha one),
        exp (mul (const (-.c1)) (div alpha one_minus)) );
      (guard_le (sub alpha one), zero);
    ]
    (mul (const (-.d)) (exp (div (const c2) one_minus)))

(* ------------------------------------------------------------------ *)
(* Exchange                                                            *)
(* ------------------------------------------------------------------ *)

let h0x = 1.174
let c1x = 0.667
let c2x = 0.8
let dx = 1.24
let k1 = 0.065
let mu_ak = 10.0 /. 81.0
let b2 = Stdlib.sqrt (5913.0 /. 405000.0)
let b1 = 511.0 /. 13500.0 /. (2.0 *. b2)
let b3 = 0.5
let b4 = (mu_ak *. mu_ak /. k1) -. (1606.0 /. 18225.0) -. (b1 *. b1)
let a1 = 4.9479

let f_alpha_x = interp ~c1:c1x ~c2:c2x ~d:dx

let h1x =
  let s2 = sqr s in
  let term1 =
    mul (const mu_ak)
      (mul s2
         (add one
            (mul_n
               [
                 const (b4 /. mu_ak);
                 s2;
                 exp (mul (const (-.Float.abs b4 /. mu_ak)) s2);
               ])))
  in
  let term2 =
    sqr
      (add
         (mul (const b1) s2)
         (mul_n
            [
              const b2;
              sub one alpha;
              exp (mul (const (-.b3)) (sqr (sub one alpha)));
            ]))
  in
  let x = add term1 term2 in
  add (const (1.0 +. k1)) (neg (div (const k1) (add one (div x (const k1)))))

let g_x = sub one (exp (mul (const (-.a1)) (powr s (Rat.make (-1) 2))))

let f_x = mul (add h1x (mul f_alpha_x (sub (const h0x) h1x))) g_x

let eps_x = mul Uniform.eps_x f_x

(* ------------------------------------------------------------------ *)
(* Correlation                                                         *)
(* ------------------------------------------------------------------ *)

let c1c = 0.64
let c2c = 1.5
let dc = 0.7
let b1c = 0.0285764
let b2c = 0.0889
let b3c = 0.125541
let chi_inf = 0.12802585262625815
let gamma_c = 0.031090690869654895

let f_alpha_c = interp ~c1:c1c ~c2:c2c ~d:dc

(* Single-orbital (alpha = 0) limit. *)
let eps_lda0 =
  neg
    (div (const b1c)
       (add_n [ one; mul (const b2c) (sqrt rs); mul (const b3c) rs ]))

let eps_c0 =
  let g_inf =
    powr (add one (mul (const (4.0 *. chi_inf)) (sqr s))) (Rat.make (-1) 4)
  in
  let w0 = sub (exp (neg (div eps_lda0 (const b1c)))) one in
  let h0 = mul (const b1c) (log (add one (mul w0 (sub one g_inf)))) in
  add eps_lda0 h0

(* Slowly-varying (alpha = 1) limit: PW92 plus gradient correction with an
   rs-dependent beta (beta(rs) -> 0.066725 (1 + 0.1 rs)/(1 + 0.1778 rs)). *)
let eps_c1 =
  let eps_lsda = Lda_pw92.eps_c in
  let beta_rs =
    mul (const 0.066725)
      (div (add one (mul (const 0.1) rs)) (add one (mul (const 0.1778) rs)))
  in
  let w1 = sub (exp (neg (div eps_lsda (const gamma_c)))) one in
  let y = div (mul beta_rs Dft_vars.t2) (mul (const gamma_c) w1) in
  let g_y = powr (add one (mul (int 4) y)) (Rat.make (-1) 4) in
  let h1 = mul (const gamma_c) (log (add one (mul w1 (sub one g_y)))) in
  add eps_lsda h1

let eps_c = add eps_c1 (mul f_alpha_c (sub eps_c0 eps_c1))

let env3 ~rs ~s ~alpha =
  [
    (Dft_vars.rs_name, rs); (Dft_vars.s_name, s); (Dft_vars.alpha_name, alpha);
  ]

let eps_c_at ~rs ~s ~alpha = Eval.eval (env3 ~rs ~s ~alpha) eps_c
let eps_x_at ~rs ~s ~alpha = Eval.eval (env3 ~rs ~s ~alpha) eps_x
