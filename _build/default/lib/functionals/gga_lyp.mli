(** Lee-Yang-Parr correlation functional — the paper's representative
    {e empirical} DFA (Phys. Rev. B 37, 785), in the Miehlich-Savin-
    Stoll-Preuss reformulation (Chem. Phys. Lett. 157, 200) that eliminates
    the density Laplacian, which is the form implemented by LibXC and
    checked by Pederson & Burke.

    For the closed-shell (spin-unpolarized) case the energy density reduces
    to (derivation in DESIGN.md notation, with [n] the density, [delta] and
    [omega] the standard LYP auxiliaries):

    {v
    eps_c = -a / (1 + d n^(-1/3))
            - a b omega(n) [ C_F n^(11/3)
                           - (1/24 + 7 delta / 72) n |grad n|^2 ]
    v}

    The positive gradient term is what makes LYP violate the correlation
    non-positivity condition EC1 at large reduced gradients — the paper
    finds counterexamples for every applicable condition, with EC1
    violations appearing at [s > 1.6563]. *)

val a : float
val b : float
val c : float
val d : float

(** Thomas-Fermi constant [C_F = (3/10)(3 pi^2)^(2/3)]. *)
val c_f : float

(** [eps_c(rs, s)], closed shell. *)
val eps_c : Expr.t

val eps_c_at : rs:float -> s:float -> float

(** [s_crossing ~rs] numerically locates the reduced gradient above which
    [eps_c > 0] at the given [rs] (by bisection); used by tests to compare
    against the paper's reported violation boundary. *)
val s_crossing : rs:float -> float
