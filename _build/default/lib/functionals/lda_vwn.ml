open Expr

type params = { a : float; x0 : float; b : float; c : float }

let rpa_params = { a = 0.0310907; x0 = -0.409286; b = 13.0720; c = 42.7198 }
let vwn5_params = { a = 0.0310907; x0 = -0.10498; b = 3.72744; c = 12.9352 }

let eps_c_of { a; x0; b; c } =
  let x = sqrt Dft_vars.rs in
  let cap_x t = add_n [ sqr t; mul (const b) t; const c ] in
  let q = Stdlib.sqrt ((4.0 *. c) -. (b *. b)) in
  let atan_term = atan (div (const q) (add (mul two x) (const b))) in
  let x0e = const x0 in
  let x0_coeff = b *. x0 /. ((x0 *. x0) +. (b *. x0) +. c) in
  mul (const a)
    (add_n
       [
         log (div (sqr x) (cap_x x));
         mul (const (2.0 *. b /. q)) atan_term;
         neg
           (mul (const x0_coeff)
              (add
                 (log (div (sqr (sub x x0e)) (cap_x x)))
                 (mul (const (2.0 *. (b +. (2.0 *. x0)) /. q)) atan_term)));
       ])

let eps_c = eps_c_of rpa_params
let eps_c_vwn5 = eps_c_of vwn5_params
let eps_c_at rs = Eval.eval1 Dft_vars.rs_name rs eps_c
