let rs_name = "rs"
let s_name = "s"
let alpha_name = "alpha"

let rs = Expr.var rs_name
let s = Expr.var s_name
let alpha = Expr.var alpha_name

open Expr

(* n = 3 / (4 pi rs^3) *)
let density = mul_n [ rat 3 4; inv pi; powi rs (-3) ]

(* kf = (3 pi^2 n)^(1/3) = (9 pi / 4)^(1/3) / rs *)
let kf = mul (cbrt (mul_n [ rat 9 4; pi ])) (inv rs)

(* |grad n|^2 = (2 kf n s)^2 = 4 (3 pi^2)^(2/3) n^(8/3) s^2 *)
let grad_n_sq =
  mul_n [ int 4; powr (mul_n [ int 3; sqr pi ]) (Rat.make 2 3);
          powr density (Rat.make 8 3); sqr s ]

(* t = |grad n| / (2 ks n), ks = sqrt (4 kf / pi):
   t^2 = s^2 kf^2 / ks^2 = s^2 (pi kf / 4) = (pi/4) (9 pi/4)^(1/3) s^2/rs *)
let t2 = mul_n [ rat 1 4; pi; kf; sqr s ]
