(** Perdew-Burke-Ernzerhof 1996 generalized gradient approximation — the
    paper's flagship non-empirical GGA (Phys. Rev. Lett. 77, 3865).

    Exchange: [eps_x = eps_x^unif F_x(s)], with the enhancement factor
    [F_x(s) = 1 + kappa - kappa / (1 + mu s^2 / kappa)].

    Correlation: [eps_c = eps_c^PW92(rs) + H(rs, t)], with
    [H = gamma ln(1 + (beta/gamma) t^2 (1 + A t^2)/(1 + A t^2 + A^2 t^4))]
    and [A = (beta/gamma) / (exp(-eps_c^PW92/gamma) - 1)], evaluated at
    zeta = 0. This is the form the paper notes has over 300 operations in
    its LibXC implementation. *)

val kappa : float
val mu : float
val beta : float
val gamma : float

(** [f_x_with ~kappa ~mu] builds the enhancement factor with explicit
    parameters (the published values give {!f_x}); used by the CI-mutation
    example to inject wrong-constant regressions. *)
val f_x_with : kappa:float -> mu:float -> Expr.t

(** Exchange enhancement factor [F_x(s)]. *)
val f_x : Expr.t

(** [eps_x(rs, s)]. *)
val eps_x : Expr.t

(** [eps_c(rs, s)] at zeta = 0. *)
val eps_c : Expr.t

(** The gradient contribution [H(rs, t(rs, s))], exposed for tests. *)
val h_term : Expr.t

val eps_c_at : rs:float -> s:float -> float
val eps_x_at : rs:float -> s:float -> float
