open Expr

let zeta_name = "zeta"
let zeta = var zeta_name

let one_plus = add one zeta
let one_minus = sub one zeta

let four_thirds = Rat.make 4 3
let two_thirds = Rat.make 2 3

(* f(z) = ((1+z)^(4/3) + (1-z)^(4/3) - 2) / (2 (2^(1/3) - 1)) *)
let f_interp =
  mul
    (const (0.5 /. (Float.cbrt 2.0 -. 1.0)))
    (add_n [ powr one_plus four_thirds; powr one_minus four_thirds; int (-2) ])

let fpp0 = 8.0 /. (9.0 *. (Float.pow 2.0 (4.0 /. 3.0) -. 2.0))

let phi =
  mul (rat 1 2) (add (powr one_plus two_thirds) (powr one_minus two_thirds))

(* ---- exchange -------------------------------------------------------- *)

let spin_weight =
  mul (rat 1 2) (add (powr one_plus four_thirds) (powr one_minus four_thirds))

let eps_x_lda_spin = mul Uniform.eps_x spin_weight

let scale_exchange f_x_of_s =
  (* E_x[n_up, n_down] = (E_x[2 n_up] + E_x[2 n_down]) / 2 evaluates the
     unpolarized functional at the doubled channel density
     n~_sigma = n (1 + sigma z) with gradient scaled alike, so the channel
     reduced gradient is s_sigma = s (1 + sigma z)^(-1/3) and the energy per
     (total) particle carries the weight (1 + sigma z)^(4/3) / 2. *)
  let channel sign =
    let one_pm = if sign > 0 then one_plus else one_minus in
    let s_sigma = mul Dft_vars.s (powr one_pm (Rat.make (-1) 3)) in
    mul
      (powr one_pm four_thirds)
      (Subst.subst1 Dft_vars.s_name s_sigma f_x_of_s)
  in
  mul_n [ rat 1 2; Uniform.eps_x; add (channel 1) (channel (-1)) ]

(* ---- PW92, full spin ------------------------------------------------- *)

(* Ferromagnetic (zeta = 1) channel, PW92 Table I. *)
let pw92_ferro =
  Lda_pw92.g_function ~a:0.015545 ~a1:0.20548 ~b1:14.1189 ~b2:6.1977
    ~b3:3.3662 ~b4:0.62517

(* The PW92 fit G(rs) for the spin stiffness yields -alpha_c(rs). *)
let pw92_alpha_c =
  neg
    (Lda_pw92.g_function ~a:0.016887 ~a1:0.11125 ~b1:10.357 ~b2:3.6231
       ~b3:0.88026 ~b4:0.49671)

let zeta4 = powi zeta 4

let eps_c_pw92_spin =
  let para = Lda_pw92.eps_c in
  add_n
    [
      para;
      mul_n [ pw92_alpha_c; div f_interp (const fpp0); sub one zeta4 ];
      mul_n [ sub pw92_ferro para; f_interp; zeta4 ];
    ]

(* ---- PBE, full spin --------------------------------------------------- *)

let eps_c_pbe_spin =
  let gamma = Gga_pbe.gamma and beta = Gga_pbe.beta in
  let phi3 = powi phi 3 in
  (* t includes the phi screening: t^2 = t^2(zeta=0) / phi^2 *)
  let t2 = div Dft_vars.t2 (sqr phi) in
  let a =
    div (const (beta /. gamma))
      (sub
         (exp (neg (div eps_c_pw92_spin (mul (const gamma) phi3))))
         one)
  in
  let at2 = mul a t2 in
  let h =
    mul_n
      [
        const gamma;
        phi3;
        log
          (add one
             (mul_n
                [
                  const (beta /. gamma);
                  t2;
                  div (add one at2) (add_n [ one; at2; sqr at2 ]);
                ]));
      ]
  in
  add eps_c_pw92_spin h

let eps_x_pbe_spin = scale_exchange Gga_pbe.f_x

(* ---- helpers ----------------------------------------------------------- *)

let at_zeta z e = Simplify.simplify (Subst.subst1 zeta_name (const z) e)

let eval3 ~rs ~s ~zeta e =
  Eval.eval
    [ (Dft_vars.rs_name, rs); (Dft_vars.s_name, s); (zeta_name, zeta) ]
    e
