open Expr

(* eps_x^unif = -(3/4) (3 n / pi)^(1/3), n = 3/(4 pi rs^3). *)
let eps_x =
  neg
    (mul_n
       [ rat 3 4; cbrt (mul_n [ int 3; inv pi; Dft_vars.density ]) ])

let prefactor = 0.75 *. Float.cbrt (9.0 /. (4.0 *. Float.pi *. Float.pi))

let eps_x_at rs = -.prefactor /. rs
