open Expr

let g_function ~a ~a1 ~b1 ~b2 ~b3 ~b4 =
  let rs = Dft_vars.rs in
  let poly =
    add_n
      [
        mul (const b1) (sqrt rs);
        mul (const b2) rs;
        mul (const b3) (powr rs (Rat.make 3 2));
        mul (const b4) (sqr rs);
      ]
  in
  mul_n
    [
      const (-2.0 *. a);
      add one (mul (const a1) rs);
      log (add one (inv (mul_n [ const (2.0 *. a); poly ])));
    ]

(* Unpolarized (zeta = 0) parameters, Table I of PW92. *)
let eps_c =
  g_function ~a:0.031091 ~a1:0.21370 ~b1:7.5957 ~b2:3.5876 ~b3:1.6382
    ~b4:0.49294

let eps_c_at rs = Eval.eval1 Dft_vars.rs_name rs eps_c
