open Expr

let alpha_i = 2.804
let c_x = 0.7168

(* d = ((4/3)^(1/3) * 2 pi / 3)^4 *)
let d_x = Float.pow (Float.cbrt (4.0 /. 3.0) *. 2.0 *. Float.pi /. 3.0) 4.0

let gamma_c = 0.8098

let s = Dft_vars.s

let index_x = inv (add one (mul (const alpha_i) (sqr s)))

(* xi(s) = ((3/2) W0(s^(3/2) / (2 sqrt 6)))^(2/3) *)
let xi =
  powr
    (mul (rat 3 2)
       (lambert_w
          (mul (const (0.5 /. Stdlib.sqrt 6.0)) (powr s (Rat.make 3 2)))))
    (Rat.make 2 3)

(* F_b(s) = (pi/3) s / (xi (d + xi^2)^(1/4)) *)
let f_b =
  div
    (mul (div pi (int 3)) s)
    (mul xi (powr (add (const d_x) (sqr xi)) (Rat.make 1 4)))

(* F_x^LAA = (c s^2 + 1) / (c s^2 / F_b + 1) *)
let f_laa =
  let cs2 = mul (const c_x) (sqr s) in
  div (add cs2 one) (add (div cs2 f_b) one)

let f_x = add index_x (mul (sub one index_x) f_laa)

let eps_x = mul Uniform.eps_x f_x

let eps_c =
  mul Lda_pw92.eps_c
    (add index_x (mul (const gamma_c) (sub one index_x)))

let eps_c_at ~rs ~s =
  Eval.eval [ (Dft_vars.rs_name, rs); (Dft_vars.s_name, s) ] eps_c

let eps_x_at ~rs ~s =
  Eval.eval [ (Dft_vars.rs_name, rs); (Dft_vars.s_name, s) ] eps_x
