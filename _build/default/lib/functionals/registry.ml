type family = Lda | Gga | Mgga

type design = Empirical | Non_empirical

type t = {
  name : string;
  label : string;
  family : family;
  design : design;
  eps_x : Expr.t option;
  eps_c : Expr.t option;
  description : string;
}

let pbe =
  {
    name = "pbe";
    label = "PBE";
    family = Gga;
    design = Non_empirical;
    eps_x = Some Gga_pbe.eps_x;
    eps_c = Some Gga_pbe.eps_c;
    description = "Perdew-Burke-Ernzerhof generalized gradient approximation";
  }

let scan =
  {
    name = "scan";
    label = "SCAN";
    family = Mgga;
    design = Non_empirical;
    eps_x = Some Mgga_scan.eps_x;
    eps_c = Some Mgga_scan.eps_c;
    description = "Strongly constrained and appropriately normed meta-GGA";
  }

let lyp =
  {
    name = "lyp";
    label = "LYP";
    family = Gga;
    design = Empirical;
    eps_x = None;
    eps_c = Some Gga_lyp.eps_c;
    description = "Lee-Yang-Parr empirical correlation functional";
  }

let am05 =
  {
    name = "am05";
    label = "AM05";
    family = Gga;
    design = Non_empirical;
    (* The paper treats AM05 as correlation-only for condition purposes
       (Lieb-Oxford rows are marked not-applicable); the exchange part is
       implemented and registered, but eps_x is surfaced under its own name
       below to keep this entry aligned with Table I. *)
    eps_x = None;
    eps_c = Some Gga_am05.eps_c;
    description = "Armiento-Mattsson subsystem functional for surfaces";
  }

let vwn_rpa =
  {
    name = "vwn_rpa";
    label = "VWN RPA";
    family = Lda;
    design = Non_empirical;
    eps_x = None;
    eps_c = Some Lda_vwn.eps_c;
    description = "Vosko-Wilk-Nusair correlation, RPA parametrization";
  }

let paper_five = [ pbe; scan; lyp; am05; vwn_rpa ]

let extras =
  [
    {
      name = "pw92";
      label = "PW92";
      family = Lda;
      design = Non_empirical;
      eps_x = None;
      eps_c = Some Lda_pw92.eps_c;
      description = "Perdew-Wang 1992 uniform-gas correlation (substrate)";
    };
    {
      name = "pz81";
      label = "PZ81";
      family = Lda;
      design = Non_empirical;
      eps_x = None;
      eps_c = Some Lda_pz81.eps_c;
      description =
        "Perdew-Zunger 1981 correlation; piecewise matching-point example";
    };
    {
      name = "vwn5";
      label = "VWN5";
      family = Lda;
      design = Non_empirical;
      eps_x = None;
      eps_c = Some Lda_vwn.eps_c_vwn5;
      description = "Vosko-Wilk-Nusair correlation, Ceperley-Alder fit";
    };
    {
      name = "am05x";
      label = "AM05 (x+c)";
      family = Gga;
      design = Non_empirical;
      eps_x = Some Gga_am05.eps_x;
      eps_c = Some Gga_am05.eps_c;
      description = "AM05 with its Lambert-W exchange part included";
    };
    {
      name = "b88";
      label = "B88";
      family = Gga;
      design = Empirical;
      eps_x = Some Gga_b88.eps_x;
      eps_c = None;
      description = "Becke 1988 empirical exchange functional";
    };
    {
      name = "blyp";
      label = "BLYP";
      family = Gga;
      design = Empirical;
      eps_x = Some Gga_b88.eps_x;
      eps_c = Some Gga_lyp.eps_c;
      description =
        "B88 exchange + LYP correlation: an empirical x+c pair, so the \
         Lieb-Oxford conditions apply (extension beyond the paper's five)";
    };
    {
      name = "rscan";
      label = "rSCAN";
      family = Mgga;
      design = Non_empirical;
      eps_x = Some Mgga_rscan.eps_x;
      eps_c = Some Mgga_rscan.eps_c;
      description = "Regularized SCAN (Bartok-Yates); Section VI-A extension";
    };
  ]

let all = paper_five @ extras

let find_opt name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun f -> String.equal f.name name) all

let find name =
  match find_opt name with Some f -> f | None -> raise Not_found

let variables f =
  match f.family with
  | Lda -> [ Dft_vars.rs_name ]
  | Gga -> [ Dft_vars.rs_name; Dft_vars.s_name ]
  | Mgga -> [ Dft_vars.rs_name; Dft_vars.s_name; Dft_vars.alpha_name ]

let eps_xc f =
  match f.eps_x, f.eps_c with
  | Some x, Some c -> Some (Expr.add x c)
  | _ -> None

let family_name = function Lda -> "LDA" | Gga -> "GGA" | Mgga -> "meta-GGA"

let design_name = function
  | Empirical -> "empirical"
  | Non_empirical -> "non-empirical"

let pp ppf f =
  Format.fprintf ppf "%s (%s, %s): %s" f.label (family_name f.family)
    (design_name f.design) f.description
