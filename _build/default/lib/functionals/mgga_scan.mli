(** SCAN: the Strongly Constrained and Appropriately Normed meta-GGA of Sun,
    Ruzsinszky and Perdew (Phys. Rev. Lett. 115, 036402) — the paper's
    hardest verification target, built to satisfy all 17 known exact
    constraints yet the one DFA on which the solver times out for {e every}
    condition.

    The functional depends on three reduced variables: [rs], [s] and the
    iso-orbital indicator [alpha]. Both exchange and correlation interpolate
    between an [alpha = 0] (single-orbital) and an [alpha = 1]
    (slowly-varying) limit through a switching function [f(alpha)] that is
    {e piecewise} with an essential singularity at [alpha = 1]:

    {v
    f(alpha) = exp(-c1 alpha / (1 - alpha))       alpha < 1
             = -d exp(c2 / (1 - alpha))           alpha >= 1
    v}

    This structure (plus [exp], [log] and fractional powers everywhere) is
    why SCAN is an order of magnitude harder for interval solvers than PBE —
    the phenomenon the paper's Section VI-A discusses. *)

(** {1 Exchange} *)

(** Switching-function parameters (shared with the rSCAN extension, which
    keeps the exponential tails). *)
val c1x : float

val c2x : float
val dx : float
val c1c : float
val c2c : float
val dc : float

(** Interpolation switching function [f_x(alpha)] (piecewise). *)
val f_alpha_x : Expr.t

(** Single-orbital exchange limit [h0x = 1.174]. *)
val h0x : float

(** Slowly-varying exchange enhancement [h1x(s, alpha)]. *)
val h1x : Expr.t

(** Nonuniform-scaling damper [gx(s) = 1 - exp(-a1 / sqrt s)]. *)
val g_x : Expr.t

(** Full exchange enhancement factor
    [F_x(s, alpha) = (h1x + f_x(alpha)(h0x - h1x)) gx(s)]. *)
val f_x : Expr.t

val eps_x : Expr.t

(** {1 Correlation} *)

val f_alpha_c : Expr.t

(** Single-orbital correlation limit [eps_c^0(rs, s)]. *)
val eps_c0 : Expr.t

(** Slowly-varying correlation limit [eps_c^1(rs, s)] (PW92 + gradient
    correction with rs-dependent beta). *)
val eps_c1 : Expr.t

(** [eps_c = eps_c1 + f_c(alpha) (eps_c0 - eps_c1)] at zeta = 0. *)
val eps_c : Expr.t

val eps_c_at : rs:float -> s:float -> alpha:float -> float
val eps_x_at : rs:float -> s:float -> alpha:float -> float
