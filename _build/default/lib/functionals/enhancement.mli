(** Enhancement factors — Equation 2 of the paper.

    The local conditions of Section II are stated on the exchange
    (correlation) enhancement factors

    [F_xc = F_x + F_c = eps_xc / eps_x^unif],

    the DFA energy densities normalized by the (negative) uniform-gas
    exchange energy. Because [eps_x^unif < 0], the correlation
    non-positivity [eps_c <= 0] is equivalent to [F_c >= 0], and so on. *)

(** [f_of eps] is [eps / eps_x^unif] as a symbolic expression, simplified. *)
val f_of : Expr.t -> Expr.t

(** [f_c_at_infinity f_c] is the paper's finite stand-in for
    [lim_{rs -> inf} F_c]: the substitution [rs := 100] (Section III-A,
    following Pederson & Burke). *)
val f_c_at_infinity : Expr.t -> Expr.t

(** The substitution value used by {!f_c_at_infinity}. *)
val rs_infinity : float
