(** rSCAN: the regularized SCAN functional of Bartók and Yates (J. Chem.
    Phys. 150, 161101) — implemented as this repository's Section VI-A
    extension.

    The paper's discussion singles out the rSCAN / r2SCAN progression as a
    "fascinating use case": those functionals were redesigned specifically
    to remove SCAN's numerical pathologies, the very pathologies that make
    the solver time out. rSCAN makes two changes visible at our level of
    description:

    + the iso-orbital indicator is regularized,
      [alpha' = alpha^3 / (alpha^2 + alpha_reg)] with [alpha_reg = 1e-3],
      taming the behaviour near [alpha = 0];
    + the switching function's essential singularity at [alpha = 1] is
      replaced by a degree-7 polynomial on [alpha' < 2.5] (smoothly meeting
      the original exponential tail beyond).

    The [scan_challenge] example and the ablation bench measure how much
    easier interval verification becomes after this regularization. *)

val alpha_reg : float

(** Regularized indicator [alpha'] as an expression of [alpha]. *)
val alpha_regularized : Expr.t

(** Polynomial switching functions (piecewise with the exponential tail). *)
val f_alpha_x : Expr.t

val f_alpha_c : Expr.t

val f_x : Expr.t
val eps_x : Expr.t
val eps_c : Expr.t
val eps_c_at : rs:float -> s:float -> alpha:float -> float
val eps_x_at : rs:float -> s:float -> alpha:float -> float
