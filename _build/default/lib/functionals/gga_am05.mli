(** Armiento-Mattsson 2005 functional (Phys. Rev. B 72, 085108) — designed
    from the subsystem-functional scheme to include surface effects; the
    paper's example of a non-empirical GGA with strong performance on
    solids.

    Exchange interpolates between LDA and the Local Airy Approximation using
    an interpolation index [X(s) = 1/(1 + alpha_i s^2)]:

    {v
    F_x(s)     = X(s) + (1 - X(s)) F_x^LAA(s)
    F_x^LAA(s) = (c s^2 + 1) / (c s^2 / F_b(s) + 1)
    F_b(s)     = (pi/3) s / (xi(s) (d + xi(s)^2)^(1/4))
    xi(s)      = ( (3/2) W0( s^(3/2) / (2 sqrt 6) ) )^(2/3)
    v}

    with [W0] the Lambert W function — the reason this library's expression
    language and interval solver support [lambert_w] as a primitive.
    [F_b(0) = 1] in the limit, but the expression is 0/0 at [s = 0]: the
    same removable singularity that makes solvers time out along the s-axis
    in the paper's AM05 experiments.

    Correlation scales PW92 by the same index:
    [eps_c = eps_c^PW92(rs) (X(s) + gamma_c (1 - X(s)))]. *)

val alpha_i : float

(** Exchange parameters [c = 0.7168] and
    [d = ((4/3)^(1/3) 2 pi / 3)^4]. *)
val c_x : float

val d_x : float

(** Correlation parameter [gamma_c = 0.8098]. *)
val gamma_c : float

(** Interpolation index [X(s)]. *)
val index_x : Expr.t

val f_x : Expr.t
val eps_x : Expr.t
val eps_c : Expr.t
val eps_c_at : rs:float -> s:float -> float
val eps_x_at : rs:float -> s:float -> float
