lib/parallel/worklist.ml: Array Condition Domain List Mutex Stdlib
