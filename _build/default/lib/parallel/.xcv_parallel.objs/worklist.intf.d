lib/parallel/worklist.mli:
