lib/parallel/pool.mli:
