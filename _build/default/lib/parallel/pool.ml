let default_workers () = Stdlib.max 1 (Domain.recommended_domain_count ())

let map ~workers f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when workers <= 1 -> List.map f xs
  | _ ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      let cursor = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n && Atomic.get failure = None then begin
            (match f items.(i) with
            | v -> results.(i) <- Some v
            | exception e ->
                (* Keep only the first failure; others are racing losers. *)
                ignore (Atomic.compare_and_set failure None (Some e)));
            loop ()
          end
        in
        loop ()
      in
      let domains =
        List.init (Stdlib.min workers n - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      List.iter Domain.join domains;
      (match Atomic.get failure with Some e -> raise e | None -> ());
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

let iter ~workers f xs = ignore (map ~workers (fun x -> f x; ()) xs)
