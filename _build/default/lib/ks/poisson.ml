let four_pi = 4.0 *. Float.pi

let hartree (grid : Radial_grid.t) density =
  let r = grid.Radial_grid.r in
  let nr2 = Array.mapi (fun i d -> four_pi *. d *. r.(i) *. r.(i)) density in
  let nr1 = Array.mapi (fun i d -> four_pi *. d *. r.(i)) density in
  let q = Radial_grid.integrate_outward grid nr2 in
  let outer = Radial_grid.integrate_inward grid nr1 in
  Array.init grid.Radial_grid.n (fun i -> (q.(i) /. r.(i)) +. outer.(i))

let hartree_energy grid density v_h =
  let r = grid.Radial_grid.r in
  let integrand =
    Array.mapi
      (fun i d -> 0.5 *. four_pi *. d *. v_h.(i) *. r.(i) *. r.(i))
      density
  in
  Radial_grid.integrate grid integrand

let total_charge grid density =
  let r = grid.Radial_grid.r in
  let integrand =
    Array.mapi (fun i d -> four_pi *. d *. r.(i) *. r.(i)) density
  in
  Radial_grid.integrate grid integrand
