let g_array (grid : Radial_grid.t) ~l ~potential ~energy =
  let ll = float_of_int (l * (l + 1)) in
  Array.init grid.Radial_grid.n (fun i ->
      let r = grid.Radial_grid.r.(i) in
      (ll +. (2.0 *. r *. r *. (potential.(i) -. energy))) +. 0.25)

let integrate_outward grid ~l ~potential ~energy =
  let n = grid.Radial_grid.n in
  let h2 = grid.Radial_grid.h *. grid.Radial_grid.h in
  let g = g_array grid ~l ~potential ~energy in
  (* Numerov on y'' = g y; recover u = sqrt(r) y at the end. *)
  let y = Array.make n 0.0 in
  (* Start from the r -> 0 behaviour u ~ r^(l+1), i.e.
     y ~ r^(l + 1/2) = exp((l + 1/2) x); only the growth ratio between the
     first two points matters. *)
  let ratio =
    (grid.Radial_grid.r.(1) /. grid.Radial_grid.r.(0))
    ** (float_of_int l +. 0.5)
  in
  y.(0) <- 1e-20;
  y.(1) <- 1e-20 *. ratio;
  let f i = 1.0 -. (h2 /. 12.0 *. g.(i)) in
  let nodes = ref 0 in
  (try
     for i = 1 to n - 2 do
       y.(i + 1) <-
         (((12.0 -. (10.0 *. f i)) *. y.(i)) -. (f (i - 1) *. y.(i - 1)))
         /. f (i + 1);
       if y.(i + 1) *. y.(i) < 0.0 then incr nodes;
       (* Renormalize to dodge overflow in deep classically-forbidden
          regions; sign structure (nodes) is preserved. *)
       if Float.abs y.(i + 1) > 1e250 then begin
         let scale = 1e-200 in
         y.(i + 1) <- y.(i + 1) *. scale;
         y.(i) <- y.(i) *. scale
       end
     done
   with _ -> ());
  let u =
    Array.mapi (fun i yi -> yi *. Stdlib.sqrt grid.Radial_grid.r.(i)) y
  in
  (u, !nodes)

let solve ?(e_min = -200.0) grid ~l ~potential ~nodes =
  (* Node count is a monotone step function of E; bisect the jump from
     [nodes] to [nodes + 1]. The window floor must respect Numerov's
     stability bound |h^2 g / 12| < 1 at the outer edge, which a physical
     bound (E_1s >= -Z^2/2 for any v >= -Z/r) guarantees: callers pass
     [e_min ~ -(Z^2) - 10]. *)
  let count e = snd (integrate_outward grid ~l ~potential ~energy:e) in
  let e_min = ref e_min and e_max = ref (-1e-9) in
  if count !e_min > nodes then failwith "Numerov.solve: lower bound too high";
  if count !e_max <= nodes then
    failwith "Numerov.solve: no bound state with that node count";
  for _ = 1 to 200 do
    let mid = 0.5 *. (!e_min +. !e_max) in
    if count mid <= nodes then e_min := mid else e_max := mid
  done;
  let energy = 0.5 *. (!e_min +. !e_max) in
  let u, _ = integrate_outward grid ~l ~potential ~energy in
  (* The raw solution diverges in the tail once E is off by the residual
     bisection error; truncate at the last sign-definite minimum of |u|
     after the outer turning point and zero the contaminated tail. *)
  let n = grid.Radial_grid.n in
  let turning = ref (n - 1) in
  (try
     for i = n - 1 downto 1 do
       if potential.(i) < energy then begin
         turning := i;
         raise Exit
       end
     done
   with Exit -> ());
  let cut = ref (n - 1) in
  (try
     for i = !turning to n - 2 do
       if Float.abs u.(i + 1) > Float.abs u.(i) then begin
         cut := i;
         raise Exit
       end
     done
   with Exit -> ());
  for i = !cut + 1 to n - 1 do
    u.(i) <- 0.0
  done;
  (* Normalize ∫ u^2 dr = 1. *)
  let u2 = Array.map (fun x -> x *. x) u in
  let norm = Radial_grid.integrate grid u2 in
  let s = 1.0 /. Stdlib.sqrt norm in
  (energy, Array.map (fun x -> x *. s) u)
