(** LDA exchange-correlation potentials, derived {e symbolically} from the
    registered functionals.

    For an LDA, [E_xc = ∫ n eps_xc(n) d^3r] and the potential is
    [v_xc = d(n eps_xc)/dn = eps_xc - (rs/3) d eps_xc / d rs]
    (using [n d/dn = -(rs/3) d/drs]). Production DFT codes hand-derive and
    hand-code this derivative per functional; here it falls out of
    {!Deriv.diff} applied to the same symbolic [eps_xc] the verifier
    checks — one definition, three consumers (verification, grid baseline,
    Kohn-Sham solver), which is the point of keeping functionals symbolic.

    Exchange is the LDA exchange [eps_x^unif]; correlation comes from the
    chosen registered LDA functional. *)

type t

(** [make dfa] builds the xc machinery for an LDA correlation functional
    (e.g. [Registry.find "vwn5"]).
    @raise Invalid_argument if the functional is not an LDA with a
    correlation part. *)
val make : Registry.t -> t

(** [potential t grid density] tabulates [v_xc(n(r))]. *)
val potential : t -> Radial_grid.t -> float array -> float array

(** [energy t grid density] is [E_xc = ∫ n eps_xc d^3r]. *)
val energy : t -> Radial_grid.t -> float array -> float

(** [eps_xc_at t ~rs] and [v_xc_at t ~rs] — pointwise access for tests. *)
val eps_xc_at : t -> rs:float -> float

val v_xc_at : t -> rs:float -> float
