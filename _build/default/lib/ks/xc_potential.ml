type t = {
  eps_tape : Compile.t;  (** eps_xc(rs) *)
  v_tape : Compile.t;  (** v_xc(rs) *)
}

let rs_of_n n = Float.cbrt (3.0 /. (4.0 *. Float.pi *. n))

let make (dfa : Registry.t) =
  (match dfa.Registry.family, dfa.Registry.eps_c with
  | Registry.Lda, Some _ -> ()
  | _ -> invalid_arg "Xc_potential.make: need an LDA correlation functional");
  let eps_xc = Expr.add Uniform.eps_x (Option.get dfa.Registry.eps_c) in
  let rs = Dft_vars.rs in
  (* v_xc = eps_xc - (rs/3) d eps_xc/d rs, symbolically. *)
  let v_xc =
    Simplify.with_nonneg
      [ Dft_vars.rs_name ]
      (Expr.sub eps_xc
         (Expr.mul
            (Expr.mul (Expr.rat 1 3) rs)
            (Deriv.diff ~wrt:Dft_vars.rs_name eps_xc)))
  in
  let vars = [ Dft_vars.rs_name ] in
  { eps_tape = Compile.compile ~vars eps_xc; v_tape = Compile.compile ~vars v_xc }

let eps_xc_at t ~rs = Compile.run t.eps_tape [| rs |]
let v_xc_at t ~rs = Compile.run t.v_tape [| rs |]

let floor_density = 1e-30

let potential t grid density =
  Array.init grid.Radial_grid.n (fun i ->
      let n = Float.max density.(i) floor_density in
      v_xc_at t ~rs:(rs_of_n n))

let energy t grid density =
  let r = grid.Radial_grid.r in
  let integrand =
    Array.mapi
      (fun i d ->
        let n = Float.max d floor_density in
        4.0 *. Float.pi *. d *. eps_xc_at t ~rs:(rs_of_n n) *. r.(i) *. r.(i))
      density
  in
  Radial_grid.integrate grid integrand
