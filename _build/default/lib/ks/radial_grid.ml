type t = { r : float array; h : float; n : int }

let make ~r_min ~r_max ~n =
  if not (0.0 < r_min && r_min < r_max) || n < 8 then
    invalid_arg "Radial_grid.make";
  let h = Stdlib.log (r_max /. r_min) /. float_of_int (n - 1) in
  let r = Array.init n (fun i -> r_min *. Stdlib.exp (float_of_int i *. h)) in
  { r; h; n }

let for_atom ~z ?(n = 6000) () =
  make ~r_min:(1e-6 /. float_of_int z) ~r_max:40.0 ~n

(* Trapezoid in x with Jacobian dr = r dx. *)
let integrate g f =
  let acc = ref 0.0 in
  for i = 0 to g.n - 2 do
    acc :=
      !acc
      +. (0.5 *. g.h *. ((f.(i) *. g.r.(i)) +. (f.(i + 1) *. g.r.(i + 1))))
  done;
  !acc

let integrate_outward g f =
  let out = Array.make g.n 0.0 in
  for i = 1 to g.n - 1 do
    out.(i) <-
      out.(i - 1)
      +. (0.5 *. g.h *. ((f.(i - 1) *. g.r.(i - 1)) +. (f.(i) *. g.r.(i))))
  done;
  out

let integrate_inward g f =
  let out = Array.make g.n 0.0 in
  for i = g.n - 2 downto 0 do
    out.(i) <-
      out.(i + 1)
      +. (0.5 *. g.h *. ((f.(i) *. g.r.(i)) +. (f.(i + 1) *. g.r.(i + 1))))
  done;
  out

let tabulate g f = Array.map f g.r
