(** Radial Poisson solver: the Hartree potential of a spherical density.

    For a spherically symmetric density [n(r)] the electrostatic potential
    splits into the enclosed-charge and outer-shell contributions:

    [V_H(r) = q(r)/r + 4 pi ∫_r^inf n(r') r' dr'],
    [q(r) = 4 pi ∫_0^r n(r') r'^2 dr'],

    both plain cumulative integrals on the grid. *)

(** [hartree grid density] returns [V_H] on the grid. *)
val hartree : Radial_grid.t -> float array -> float array

(** [hartree_energy grid density v_h] is [1/2 ∫ n V_H d^3r]. *)
val hartree_energy : Radial_grid.t -> float array -> float array -> float

(** [total_charge grid density] is [4 pi ∫ n r^2 dr] — the electron count,
    used as a sanity check. *)
val total_charge : Radial_grid.t -> float array -> float
