(** Self-consistent Kohn-Sham solver for spherical atoms (spin-unpolarized
    LDA) — the "appropriately normed" half of the DFA story.

    Non-empirical functionals are normed on exactly solvable or
    exactly measured systems; the canonical norms are atoms. This solver
    closes the loop: the {e same symbolic functionals} whose exact
    conditions the verifier checks drive a real Kohn-Sham calculation whose
    total energies can be compared against the standard reference values
    (NIST LSD: H -0.4457, He -2.8348 hartree, with VWN correlation).

    Method: central field approximation with Aufbau occupations; radial
    bound states by Numerov node-counting bisection ({!Numerov}); Hartree
    potential by cumulative integration ({!Poisson}); [v_xc] derived
    symbolically ({!Xc_potential}); linear density mixing. *)

type orbital = { n : int; l : int; occ : float }

type result = {
  energy : float;  (** total energy, hartree *)
  eigenvalues : (orbital * float) list;
  e_hartree : float;
  e_xc : float;
  density : float array;
  iterations : int;
  converged : bool;
}

(** Aufbau occupations for [1 <= z <= 18].
    @raise Invalid_argument outside that range. *)
val occupations : int -> orbital list

(** [solve ~z ()] runs the SCF loop for atomic number [z].
    [xc] defaults to VWN5 correlation (the parametrization behind the NIST
    reference energies) on top of LDA exchange; pass any registered LDA to
    compare parametrizations. *)
val solve :
  ?grid:Radial_grid.t -> ?xc:Registry.t -> ?max_iter:int -> ?tol:float ->
  ?mixing:float -> z:int -> unit -> result

val pp_result : Format.formatter -> result -> unit
