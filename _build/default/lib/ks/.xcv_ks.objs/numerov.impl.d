lib/ks/numerov.ml: Array Float Radial_grid Stdlib
