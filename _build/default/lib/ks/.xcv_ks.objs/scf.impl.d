lib/ks/scf.ml: Array Float Format List Numerov Poisson Printf Radial_grid Registry Stdlib Xc_potential
