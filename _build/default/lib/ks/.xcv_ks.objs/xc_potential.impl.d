lib/ks/xc_potential.ml: Array Compile Deriv Dft_vars Expr Float Option Radial_grid Registry Simplify Uniform
