lib/ks/scf.mli: Format Radial_grid Registry
