lib/ks/xc_potential.mli: Radial_grid Registry
