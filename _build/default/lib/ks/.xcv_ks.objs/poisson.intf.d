lib/ks/poisson.mli: Radial_grid
