lib/ks/radial_grid.ml: Array Stdlib
