lib/ks/radial_grid.mli:
