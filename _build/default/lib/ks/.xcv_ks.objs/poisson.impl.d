lib/ks/poisson.ml: Array Float Radial_grid
