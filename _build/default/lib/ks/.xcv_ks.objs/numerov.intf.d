lib/ks/numerov.mli: Radial_grid
