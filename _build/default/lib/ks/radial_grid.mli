(** Logarithmic radial grids for atomic Kohn-Sham calculations.

    Atomic orbitals vary on the scale [1/Z] near the nucleus and decay over
    tens of bohr, so the standard discretization is uniform in [x = ln r]:
    [r_i = r_min exp(i h)]. All integrals then carry the Jacobian [r dx].

    This grid underlies the "appropriate norms" part of the reproduction:
    DFAs are normed against real systems (H, He), and the
    {!Scf} solver evaluates the symbolic functionals of {!Registry} inside
    an actual self-consistent Kohn-Sham loop on this grid. *)

type t = private {
  r : float array;  (** radii, increasing *)
  h : float;  (** logarithmic step *)
  n : int;
}

(** [make ~r_min ~r_max ~n] builds an [n]-point grid.
    @raise Invalid_argument unless [0 < r_min < r_max] and [n >= 8]. *)
val make : r_min:float -> r_max:float -> n:int -> t

(** A grid adequate for elements up to argon: [r_min = 1e-6 / z]. *)
val for_atom : z:int -> ?n:int -> unit -> t

(** [integrate grid f] is the trapezoidal [∫ f(r) dr] with values [f]
    sampled on the grid (Jacobian included). *)
val integrate : t -> float array -> float

(** [integrate_inward grid f] returns the running integral from each point
    to the outer edge: [out.(i) = ∫_{r_i}^{r_max} f dr]. *)
val integrate_inward : t -> float array -> float array

(** [integrate_outward grid f]: [out.(i) = ∫_{r_min}^{r_i} f dr]. *)
val integrate_outward : t -> float array -> float array

(** Map a function of [r] over the grid. *)
val tabulate : t -> (float -> float) -> float array
