type orbital = { n : int; l : int; occ : float }

type result = {
  energy : float;
  eigenvalues : (orbital * float) list;
  e_hartree : float;
  e_xc : float;
  density : float array;
  iterations : int;
  converged : bool;
}

(* Aufbau filling order up to argon. *)
let shells = [ (1, 0); (2, 0); (2, 1); (3, 0); (3, 1) ]

let occupations z =
  if z < 1 || z > 18 then invalid_arg "Scf.occupations: 1 <= z <= 18";
  let rec fill remaining = function
    | [] -> []
    | (n, l) :: rest ->
        if remaining <= 0 then []
        else begin
          let capacity = 2 * ((2 * l) + 1) in
          let occ = Stdlib.min remaining capacity in
          { n; l; occ = float_of_int occ }
          :: fill (remaining - occ) rest
        end
  in
  fill z shells

let four_pi = 4.0 *. Float.pi

let solve ?grid ?xc ?(max_iter = 80) ?(tol = 1e-8) ?(mixing = 0.35) ~z () =
  let grid =
    match grid with Some g -> g | None -> Radial_grid.for_atom ~z ()
  in
  let xc =
    Xc_potential.make
      (match xc with Some f -> f | None -> Registry.find "vwn5")
  in
  let orbitals = occupations z in
  let zf = float_of_int z in
  let npts = grid.Radial_grid.n in
  let v_ext = Radial_grid.tabulate grid (fun r -> -.zf /. r) in
  (* Initial guess: Thomas-Fermi-flavoured screened hydrogenic density
     normalized to z electrons. *)
  let density =
    ref
      (let a = zf in
       let raw =
         Radial_grid.tabulate grid (fun r ->
             Stdlib.exp (-2.0 *. a *. r /. (1.0 +. r)))
       in
       let q =
         Radial_grid.integrate grid
           (Array.mapi
              (fun i d -> four_pi *. d *. grid.Radial_grid.r.(i) ** 2.0)
              raw)
       in
       Array.map (fun d -> d *. zf /. q) raw)
  in
  let energy = ref Float.infinity in
  let eigenvalues = ref [] in
  let e_hartree = ref 0.0 and e_xc_v = ref 0.0 in
  let converged = ref false in
  let iterations = ref 0 in
  (try
     for it = 1 to max_iter do
       iterations := it;
       let v_h = Poisson.hartree grid !density in
       let v_xc = Xc_potential.potential xc grid !density in
       let v_eff =
         Array.init npts (fun i -> v_ext.(i) +. v_h.(i) +. v_xc.(i))
       in
       (* Solve the radial states and rebuild the density. *)
       let new_density = Array.make npts 0.0 in
       let eigs =
         List.map
           (fun orb ->
             let nodes = orb.n - orb.l - 1 in
             let e, u =
               Numerov.solve
                 ~e_min:(-.(zf *. zf) -. 10.0)
                 grid ~l:orb.l ~potential:v_eff ~nodes
             in
             Array.iteri
               (fun i ui ->
                 let r = grid.Radial_grid.r.(i) in
                 new_density.(i) <-
                   new_density.(i) +. (orb.occ *. ui *. ui /. (four_pi *. r *. r)))
               u;
             (orb, e))
           orbitals
       in
       (* Energies from the *output* density. *)
       let v_h_out = Poisson.hartree grid new_density in
       let eh = Poisson.hartree_energy grid new_density v_h_out in
       let exc = Xc_potential.energy xc grid new_density in
       (* Double-counting correction uses the eigenvalues computed in the
          *input* potential; near self-consistency input ~ output and the
          expression converges to the true functional value. *)
       let sum_eig =
         List.fold_left (fun acc (orb, e) -> acc +. (orb.occ *. e)) 0.0 eigs
       in
       let int_n_vh_in =
         Radial_grid.integrate grid
           (Array.mapi
              (fun i d ->
                four_pi *. d *. v_h.(i) *. (grid.Radial_grid.r.(i) ** 2.0))
              new_density)
       in
       let int_n_vxc_in =
         Radial_grid.integrate grid
           (Array.mapi
              (fun i d ->
                four_pi *. d *. v_xc.(i) *. (grid.Radial_grid.r.(i) ** 2.0))
              new_density)
       in
       let e_total = sum_eig -. int_n_vh_in +. eh -. int_n_vxc_in +. exc in
       eigenvalues := eigs;
       e_hartree := eh;
       e_xc_v := exc;
       let delta = Float.abs (e_total -. !energy) in
       energy := e_total;
       (* Linear mixing. *)
       for i = 0 to npts - 1 do
         !density.(i) <-
           ((1.0 -. mixing) *. !density.(i)) +. (mixing *. new_density.(i))
       done;
       if delta < tol && it > 3 then begin
         converged := true;
         raise Exit
       end
     done
   with Exit -> ());
  {
    energy = !energy;
    eigenvalues = !eigenvalues;
    e_hartree = !e_hartree;
    e_xc = !e_xc_v;
    density = !density;
    iterations = !iterations;
    converged = !converged;
  }

let orbital_name orb =
  Printf.sprintf "%d%c" orb.n
    (match orb.l with 0 -> 's' | 1 -> 'p' | 2 -> 'd' | _ -> 'f')

let pp_result ppf r =
  Format.fprintf ppf "E_total = %.6f Ha (E_H = %.6f, E_xc = %.6f)%s@."
    r.energy r.e_hartree r.e_xc
    (if r.converged then "" else "  [NOT CONVERGED]");
  List.iter
    (fun (orb, e) ->
      Format.fprintf ppf "  %s (occ %.0f): eps = %.6f Ha@." (orbital_name orb)
        orb.occ e)
    r.eigenvalues
