(** Bound states of the radial Schrödinger equation on a logarithmic grid.

    With [u(r) = r R(r)] the radial equation is
    [u'' = (l(l+1)/r^2 + 2(v(r) - E)) u] (Hartree atomic units). The
    substitution [u = sqrt r · y(x)], [x = ln r] turns it into
    [y''(x) = g(x) y(x)] with [g = r^2 (l(l+1)/r^2 + 2(v - E)) + 1/4] on a
    uniform [x] grid, which the three-point Numerov scheme integrates with
    O(h^4) local error.

    Eigenvalues are found by node-counting bisection: the energy at which
    the outward solution's node count on the grid jumps from [k] to [k+1]
    is the [k]-node eigenvalue of the finite-box problem, which converges
    to the atomic eigenvalue once the box is large enough to contain the
    decaying tail. *)

(** [solve grid ~l ~potential ~nodes] finds the bound state with the given
    number of radial [nodes] (0 for 1s/2p/3d, 1 for 2s/3p, ...).
    [potential.(i)] is [v(r_i)]. Returns the eigenvalue and the normalized
    radial function [u] ([∫ u^2 dr = 1]). [e_min] (default -200) is the
    bottom of the bisection window; it must stay within Numerov's stability
    region, so callers use a physical lower bound like [-(Z^2) - 10].
    @raise Failure if no such bound state exists in the search window. *)
val solve :
  ?e_min:float -> Radial_grid.t -> l:int -> potential:float array ->
  nodes:int -> float * float array

(** [integrate_outward grid ~l ~potential ~energy] returns the raw outward
    Numerov solution [u] (unnormalized) and its node count — exposed for
    tests. *)
val integrate_outward :
  Radial_grid.t -> l:int -> potential:float array -> energy:float ->
  float array * int
