lib/solver/box.mli: Format Ieval Interval
