lib/solver/form.ml: Box Eval Expr Float Format Ieval Interval List Printer String
