lib/solver/taylor.ml: Array Box Deriv Expr Float Form Hc4 Ieval Interval List Simplify
