lib/solver/hc4.ml: Array Box Eval Expr Float Form Hashtbl Ieval Interval List Rat Stdlib Transcend
