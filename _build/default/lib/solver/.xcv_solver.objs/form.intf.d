lib/solver/form.mli: Box Expr Format
