lib/solver/box.ml: Array Float Format Hashtbl Interval List Printf String
