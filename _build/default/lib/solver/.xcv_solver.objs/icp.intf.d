lib/solver/icp.mli: Box Form Format Hc4
