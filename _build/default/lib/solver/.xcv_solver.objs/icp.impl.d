lib/solver/icp.ml: Box Form Format Hc4 List
