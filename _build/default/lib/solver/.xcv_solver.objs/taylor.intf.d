lib/solver/taylor.mli: Box Form Hc4 Interval
