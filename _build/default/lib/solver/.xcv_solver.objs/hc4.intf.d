lib/solver/hc4.mli: Box Form
