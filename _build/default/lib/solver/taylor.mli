(** Mean-value-form (first-order interval Taylor) contractor.

    The natural interval extension of a DFA expression suffers badly from
    the dependency problem (the same [rs] appears dozens of times). For a
    box [X] with midpoint [m], the mean value theorem gives the alternative
    enclosure

    [f(X) ⊆ f(m) + Σ_i ∂f/∂x_i(X) (X_i − m_i)],

    which is tighter than the natural extension when the box is small (its
    overestimate shrinks quadratically with box width instead of linearly).
    Besides the sharper satisfiability test, the linear form can be solved
    for each variable, contracting [X_i] whenever the gradient component
    does not straddle zero — a Newton-like step the plain HC4 contractor
    cannot make.

    Soundness requires differentiability on the box: a prepared contractor
    detects piecewise subterms whose guards are undecided over the box and
    degrades to a no-op there (SCAN's switching function around
    [alpha = 1]).

    Gradients are computed symbolically at {!prepare} time (on the calling
    domain — expression construction is not thread-safe), so the contractor
    itself is construction-free and can run inside parallel solver calls. *)

type prepared

(** [prepare atom] differentiates the atom's expression with respect to
    each of its free variables and records its piecewise guards. *)
val prepare : Form.atom -> prepared

(** [contract prepared box] returns a contracted box or proves the atom
    unsatisfiable on it. The result never excludes a point of [box]
    satisfying the atom. *)
val contract : prepared -> Box.t -> Hc4.result

(** [contractor prepared] is [contract prepared] as a pipeline stage for
    {!Icp.solve}. *)
val contractor : prepared -> Box.t -> Hc4.result

(** [enclosure prepared box] is the mean-value-form enclosure of the atom's
    expression (already met with the natural extension) — exposed for tests
    and diagnostics. *)
val enclosure : prepared -> Box.t -> Interval.t
