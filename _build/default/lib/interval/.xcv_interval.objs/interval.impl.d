lib/interval/interval.ml: Eval Float Format List
