lib/interval/transcend.ml: Float Interval Lambert List Stdlib
