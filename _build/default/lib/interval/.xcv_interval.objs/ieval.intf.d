lib/interval/ieval.mli: Expr Interval
