lib/interval/ieval.ml: Eval Expr Interval List Rat Transcend
