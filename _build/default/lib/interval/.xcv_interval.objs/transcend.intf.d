lib/interval/transcend.mli: Interval
