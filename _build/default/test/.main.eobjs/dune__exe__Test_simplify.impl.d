test/test_simplify.ml: Alcotest Eval Expr Float List QCheck2 Rat Simplify Stdlib Subst Testutil
