test/test_expr.ml: Alcotest Eval Expr Float List Option QCheck2 Rat Simplify Stdlib Subst Testutil
