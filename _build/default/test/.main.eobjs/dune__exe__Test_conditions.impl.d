test/test_conditions.ml: Alcotest Box Conditions Deriv Dft_vars Domain_spec Dual Encoder Enhancement Eval Extra_conditions Form Icp Interval List Option Outcome Printf Registry Testutil Verify
