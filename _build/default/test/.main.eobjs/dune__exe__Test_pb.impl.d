test/test_pb.ml: Alcotest Array Conditions Dft_vars Float List Mesh Numdiff Pbcheck Printf Registry Stdlib Testutil
