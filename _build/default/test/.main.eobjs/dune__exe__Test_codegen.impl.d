test/test_codegen.ml: Alcotest Array Enhancement Eval Expr Filename Fun Gga_lyp Gga_pbe Lda_vwn List Printer Printf String Sys Testutil Unix
