test/test_spin.ml: Deriv Dft_vars Dual Eval Expr Float Gga_pbe Lda_pw92 List Printf QCheck2 Spin Testutil Uniform
