test/test_parallel.ml: Alcotest Atomic Box Expr Form Fun Icp Int Interval List Outcome Pool Printf QCheck2 String Testutil Verify Worklist
