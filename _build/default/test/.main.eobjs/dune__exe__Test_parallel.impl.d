test/test_parallel.ml: Alcotest Atomic Box Expr Form Fun Icp Interval List Pool Testutil
