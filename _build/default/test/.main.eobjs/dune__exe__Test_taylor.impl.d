test/test_taylor.ml: Alcotest Box Eval Expr Float Form Hc4 Icp Ieval Interval List Outcome Printf QCheck2 Taylor Testutil Verify Xcverifier
