test/test_testutil.ml: Alcotest Float Printf Testutil
