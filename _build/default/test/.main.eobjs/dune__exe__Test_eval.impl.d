test/test_eval.ml: Alcotest Array Compile Eval Expr Float List Parser Printer Printf QCheck2 Rat Stdlib Testutil
