test/test_serialize.ml: Alcotest Box Filename Fun Icp List Option Outcome Parser Render Report Serialize Sys Testutil Verify Xcverifier
