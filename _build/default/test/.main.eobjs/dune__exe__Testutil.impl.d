test/testutil.ml: Alcotest Dft_vars Expr Float Printf QCheck2 QCheck_alcotest String Sys
