test/testutil.ml: Alcotest Dft_vars Expr Float QCheck2 QCheck_alcotest String
