test/test_ks.ml: Alcotest Array Float List Numerov Poisson Printf Radial_grid Registry Scf Stdlib Testutil Xc_potential
