test/test_mutate.ml: Alcotest Box Conditions Dft_vars Encoder Icp Interval Mutate Outcome Printf Registry Testutil Verify
