test/test_outcome.ml: Alcotest Array Box Format Interval List Outcome Render String Testutil
