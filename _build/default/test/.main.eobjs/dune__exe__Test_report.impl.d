test/test_report.ml: Alcotest Conditions Icp List Option Outcome Pbcheck Printf Registry Render Report String Testutil Verify Xcverifier
