test/test_trace.ml: Alcotest Box Expr Form Fun Icp Interval List Outcome Printf Serialize String Sys Testutil Trace Verify
