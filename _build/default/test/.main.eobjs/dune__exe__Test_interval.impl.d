test/test_interval.ml: Alcotest Eval Float Interval Lambert List QCheck2 Stdlib Testutil Transcend
