test/test_witness.ml: Alcotest Box Conditions Encoder Float Format Icp Interval List Option Registry Testutil Verify Witness
