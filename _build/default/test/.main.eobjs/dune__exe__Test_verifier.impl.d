test/test_verifier.ml: Alcotest Array Box Conditions Dft_vars Form Icp Interval List Option Outcome Registry Render String Testutil Verify Xcverifier
