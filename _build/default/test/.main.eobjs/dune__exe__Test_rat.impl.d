test/test_rat.ml: Alcotest Float QCheck2 Rat Stdlib Testutil
