test/main.mli:
