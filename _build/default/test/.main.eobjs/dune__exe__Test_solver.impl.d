test/test_solver.ml: Alcotest Box Expr Form Hc4 Icp Ieval Interval List QCheck2 Stdlib Testutil
