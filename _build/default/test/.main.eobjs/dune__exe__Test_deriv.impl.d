test/test_deriv.ml: Deriv Dft_vars Dual Enhancement Eval Expr Float List Option Printf QCheck2 Registry Testutil
