open Testutil

let iv = Interval.make

let test_construction () =
  check_true "point is degenerate" (Interval.is_point (Interval.point 3.0));
  check_true "empty is empty" (Interval.is_empty Interval.empty);
  check_false "top not empty" (Interval.is_empty Interval.top);
  check_false "top not bounded" (Interval.is_bounded Interval.top);
  Alcotest.check_raises "lo > hi rejected"
    (Invalid_argument "Interval.make: malformed bounds") (fun () ->
      ignore (iv 2.0 1.0))

let test_lattice () =
  let a = iv 0.0 2.0 and b = iv 1.0 3.0 in
  check_true "meet" (Interval.equal (Interval.meet a b) (iv 1.0 2.0));
  check_true "join" (Interval.equal (Interval.join a b) (iv 0.0 3.0));
  check_true "disjoint meet empty"
    (Interval.is_empty (Interval.meet (iv 0.0 1.0) (iv 2.0 3.0)));
  check_true "subset" (Interval.subset (iv 1.0 2.0) a);
  check_false "not subset" (Interval.subset b a);
  check_true "empty subset of all" (Interval.subset Interval.empty a)

let test_measures () =
  check_close "width" 2.0 (Interval.width (iv 1.0 3.0));
  check_close "midpoint" 2.0 (Interval.midpoint (iv 1.0 3.0));
  check_close "mag" 3.0 (Interval.mag (iv (-3.0) 2.0));
  check_close "mig straddling" 0.0 (Interval.mig (iv (-3.0) 2.0));
  check_close "mig positive" 1.0 (Interval.mig (iv 1.0 2.0));
  check_true "midpoint of unbounded is finite"
    (Float.is_finite (Interval.midpoint Interval.top))

let test_arith_basics () =
  check_true "add" (Interval.subset (iv 3.0 5.0) (Interval.add (iv 1.0 2.0) (iv 2.0 3.0)));
  check_true "sub" (Interval.subset (iv (-2.0) 0.0) (Interval.sub (iv 1.0 2.0) (iv 2.0 3.0)));
  check_true "mul signs"
    (Interval.subset (iv (-6.0) 3.0) (Interval.mul (iv (-2.0) 1.0) (iv 0.0 3.0)));
  check_true "div by positive"
    (Interval.subset (iv 0.5 2.0) (Interval.div (iv 1.0 2.0) (iv 1.0 2.0)));
  check_true "div across zero is top"
    (Interval.equal (Interval.div (iv 1.0 2.0) (iv (-1.0) 1.0)) Interval.top);
  check_true "div zero by zero-divisor empty"
    (Interval.is_empty (Interval.div (iv 1.0 2.0) Interval.zero))

let test_zero_times_inf () =
  (* The 0 * inf = 0 convention of interval endpoints. *)
  let z = Interval.zero and t = Interval.top in
  check_true "0 * top = 0" (Interval.equal (Interval.mul z t) Interval.zero);
  check_true "top * top = top" (Interval.equal (Interval.mul t t) t)

let test_powers () =
  check_true "square straddling"
    (Interval.subset (iv 0.0 9.0) (Interval.pow_int (iv (-3.0) 2.0) 2));
  check_true "cube keeps sign"
    (Interval.subset (iv (-27.0) 8.0) (Interval.pow_int (iv (-3.0) 2.0) 3));
  check_true "x^0 = 1" (Interval.equal (Interval.pow_int (iv (-3.0) 2.0) 0) Interval.one);
  check_true "inverse of positive"
    (Interval.subset (iv 0.5 1.0) (Interval.pow_int (iv 1.0 2.0) (-1)));
  (* fractional power restricted to nonneg base *)
  let r = Interval.pow (iv (-4.0) 9.0) 0.5 in
  check_true "sqrt clips to [0,3]" (Interval.subset (iv 0.0 3.0) r);
  check_true "sqrt upper close" (Interval.sup r < 3.0001);
  check_true "fully negative base is empty"
    (Interval.is_empty (Interval.pow (iv (-4.0) (-1.0)) 0.5));
  (* 0^negative = inf *)
  check_true "0 in base, negative exponent"
    (Interval.sup (Interval.pow (iv 0.0 2.0) (-1.0)) = Float.infinity)

let test_sign_tests () =
  check_true "certainly_le" (Interval.certainly_le (iv (-2.0) (-1.0)) 0.0);
  check_false "not certainly_le" (Interval.certainly_le (iv (-1.0) 1.0) 0.0);
  check_true "possibly_le" (Interval.possibly_le (iv (-1.0) 1.0) 0.0);
  check_true "empty certainly everything"
    (Interval.certainly_le Interval.empty 0.0 && Interval.certainly_ge Interval.empty 0.0)

let test_split () =
  let a, b = Interval.split (iv 0.0 4.0) in
  check_close "left hi" 2.0 (Interval.sup a);
  check_close "right lo" 2.0 (Interval.inf b);
  Alcotest.check_raises "split point" (Invalid_argument "Interval.split")
    (fun () -> ignore (Interval.split (Interval.point 1.0)))

(* Containment property: f([a,b]) contains f(x) for sampled x. *)
let containment_qcheck name ixf ff =
  qcheck name
    QCheck2.Gen.(
      tup3 (float_range (-50.0) 50.0) (float_range 0.0 20.0)
        (float_range 0.0 1.0))
    (fun (lo, w, frac) ->
      let hi = lo +. w in
      let x = lo +. (frac *. w) in
      let i = ixf (iv lo hi) in
      let v = ff x in
      Float.is_nan v || Interval.is_empty i = false && Interval.mem v i
      || Interval.is_empty i)

let suite =
  [
    case "construction" test_construction;
    case "lattice operations" test_lattice;
    case "measures" test_measures;
    case "ring arithmetic" test_arith_basics;
    case "zero times infinity" test_zero_times_inf;
    case "powers" test_powers;
    case "sign tests" test_sign_tests;
    case "splitting" test_split;
    containment_qcheck "exp containment" Transcend.exp Stdlib.exp;
    containment_qcheck "log containment" Transcend.log Stdlib.log;
    containment_qcheck "atan containment" Transcend.atan Stdlib.atan;
    containment_qcheck "tanh containment" Transcend.tanh Stdlib.tanh;
    containment_qcheck "sin containment" Transcend.sin Stdlib.sin;
    containment_qcheck "cos containment" Transcend.cos Stdlib.cos;
    containment_qcheck "lambert containment" Transcend.lambert_w Lambert.w0;
    qcheck "mul containment"
      QCheck2.Gen.(
        tup4 (float_range (-10.0) 10.0) (float_range 0.0 5.0)
          (float_range (-10.0) 10.0) (float_range 0.0 5.0))
      (fun (a, wa, b, wb) ->
        let ia = iv a (a +. wa) and ib = iv b (b +. wb) in
        let prod = Interval.mul ia ib in
        (* check all four corners and the midpoints *)
        List.for_all
          (fun (x, y) -> Interval.mem (x *. y) prod)
          [
            (a, b); (a +. wa, b); (a, b +. wb); (a +. wa, b +. wb);
            (a +. (wa /. 2.0), b +. (wb /. 2.0));
          ]);
    qcheck "div containment"
      QCheck2.Gen.(
        tup4 (float_range (-10.0) 10.0) (float_range 0.0 5.0)
          (float_range (-10.0) 10.0) (float_range 0.0 5.0))
      (fun (a, wa, b, wb) ->
        let ia = iv a (a +. wa) and ib = iv b (b +. wb) in
        let q = Interval.div ia ib in
        let check x y =
          y = 0.0 || Interval.mem (x /. y) q
        in
        List.for_all
          (fun (x, y) -> check x y)
          [ (a, b); (a +. wa, b +. wb); (a, b +. wb); (a +. wa, b) ]);
    qcheck "pow containment over nonneg bases"
      QCheck2.Gen.(
        tup3 (float_range 0.0 10.0) (float_range 0.0 5.0)
          (float_range (-3.0) 3.0))
      (fun (a, w, p) ->
        let i = Interval.pow (iv a (a +. w)) p in
        let v = Eval.pow_float (a +. (w /. 2.0)) p in
        Float.is_nan v || Interval.mem v i);
  ]
