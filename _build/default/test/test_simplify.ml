open Testutil
open Expr

let x = var "x"
let y = var "y"

let test_log_exp () =
  check_true "log(exp x) = x" (equal (Simplify.simplify (log (exp x))) x);
  check_true "exp(log x) = x" (equal (Simplify.simplify (exp (log x))) x);
  check_true "(exp x)^3 = exp 3x"
    (equal (Simplify.simplify (powi (exp x) 3)) (exp (mul (int 3) x)))

let test_abs_rules () =
  check_true "abs(abs x) = abs x"
    (equal (Simplify.simplify (abs (abs x))) (abs x));
  check_true "abs(x^2) = x^2" (equal (Simplify.simplify (abs (sqr x))) (sqr x));
  check_true "abs(x)^2 = x^2"
    (equal (Simplify.simplify (sqr (abs x))) (sqr x))

let test_recursive_rebuild () =
  (* After differentiation expressions carry unnormalized debris; simplify
     must fold it away. Build some debris manually. *)
  let e = add (mul (int 0) (exp x)) (mul one (add x (mul y zero))) in
  check_true "debris folds to x" (equal (Simplify.simplify e) x)

let test_piecewise_flattening () =
  let inner = if_lt y zero ~then_:(int 1) ~else_:(int 2) in
  let outer = piecewise [ (guard_lt x, int 0) ] inner in
  let s = Simplify.simplify outer in
  match s.node with
  | Piecewise (branches, _) ->
      Alcotest.(check int) "flattened to two branches" 2 (List.length branches)
  | _ -> Alcotest.fail "expected piecewise"

let test_expand () =
  (* (x+1)^2 = x^2 + 2x + 1 *)
  let e = Simplify.expand (sqr (add x one)) in
  let expected = add_n [ sqr x; mul two x; one ] in
  check_true "binomial square" (equal e expected);
  (* (x+y)(x-y) = x^2 - y^2 *)
  let e2 = Simplify.expand (mul (add x y) (sub x y)) in
  check_true "difference of squares" (equal e2 (sub (sqr x) (sqr y)))

let test_with_nonneg () =
  let nn = Simplify.with_nonneg [ "x" ] in
  check_true "(x^-3)^(1/3) = x^-1 for x >= 0"
    (equal (nn (powr (powi x (-3)) Rat.third)) (inv x));
  check_true "sqrt(x^2) = x for x >= 0" (equal (nn (sqrt (sqr x))) x);
  check_true "abs x = x for x >= 0" (equal (nn (abs x)) x);
  check_true "abs y unchanged (not assumed)" (equal (nn (abs y)) (abs y));
  check_true "(x * exp y)^(1/2) distributes"
    (equal
       (nn (sqrt (mul x (exp y))))
       (mul (sqrt x) (exp (mul (rat 1 2) y))))

let random_value_preservation name f gen_env =
  qcheck (name ^ " preserves value")
    QCheck2.Gen.(pair expr_gen gen_env)
    (fun (e, env) ->
      let v1 = Eval.eval env e and v2 = Eval.eval env (f e) in
      (Float.is_nan v1 && Float.is_nan v2)
      || (not (Float.is_finite v1))
      || v1 = v2
      || Float.abs (v1 -. v2) <= 1e-6 *. (1.0 +. Float.abs v1))

let nonneg_env_gen =
  QCheck2.Gen.(
    map2
      (fun a b -> [ ("x", a); ("y", b) ])
      (float_range 0.0 4.0) (float_range 0.0 4.0))

let test_subst () =
  let e = add (mul x y) (exp x) in
  let s = Subst.subst1 "x" (int 2) e in
  check_close "substituted value" ((2.0 *. 3.0) +. Stdlib.exp 2.0)
    (Eval.eval [ ("y", 3.0) ] s);
  check_true "x is gone" (not (mem_var "x" s));
  (* simultaneous substitution is not sequential *)
  let swap = Subst.subst [ ("x", y); ("y", x) ] (sub x y) in
  check_true "swap" (equal swap (sub y x));
  (* replace a compound subterm *)
  let r = Subst.replace ~from:(exp x) ~into:y e in
  check_true "replace subterm" (equal r (add (mul x y) y));
  check_true "rename" (equal (Subst.rename "x" "z" (sqr x)) (sqr (var "z")))

let test_at_large () =
  let e = div one (add one (var "rs")) in
  check_close "rs -> 100" (1.0 /. 101.0)
    (Eval.eval [] (Subst.at_large "rs" 100.0 e))

let suite =
  [
    case "log/exp inverses" test_log_exp;
    case "abs rules" test_abs_rules;
    case "rebuild folds debris" test_recursive_rebuild;
    case "piecewise flattening" test_piecewise_flattening;
    case "expansion" test_expand;
    case "nonneg-assisted rules" test_with_nonneg;
    case "substitution" test_subst;
    case "limit substitution" test_at_large;
    random_value_preservation "simplify" Simplify.simplify env2_gen;
    random_value_preservation "expand" Simplify.expand env2_gen;
    random_value_preservation "with_nonneg on nonneg box"
      (Simplify.with_nonneg [ "x"; "y" ])
      nonneg_env_gen;
    qcheck "simplify is idempotent" expr_gen (fun e ->
        let s = Simplify.simplify e in
        equal s (Simplify.simplify s));
  ]
