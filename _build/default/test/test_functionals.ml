open Testutil

let rs_n = Dft_vars.rs_name
let s_n = Dft_vars.s_name
let a_n = Dft_vars.alpha_name

(* ---- uniform gas ------------------------------------------------------ *)

let test_uniform () =
  check_close ~tol:1e-6 "prefactor" 0.4581652932831429 Uniform.prefactor;
  check_close "eps_x at rs=1" (-0.4581652932831429) (Uniform.eps_x_at 1.0);
  (* symbolic and numeric forms agree *)
  List.iter
    (fun rs ->
      check_close
        (Printf.sprintf "symbolic eps_x at rs=%g" rs)
        (Uniform.eps_x_at rs)
        (Eval.eval1 rs_n rs Uniform.eps_x))
    [ 0.0001; 0.1; 1.0; 5.0; 100.0 ];
  (* scaling: eps_x ~ 1/rs *)
  check_close "scaling" (2.0 *. Uniform.eps_x_at 2.0) (Uniform.eps_x_at 1.0)

let test_density_conversion () =
  (* n(rs) must invert rs(n) = (3/(4 pi n))^(1/3). *)
  List.iter
    (fun rs ->
      let n = Eval.eval1 rs_n rs Dft_vars.density in
      let rs_back = Float.cbrt (3.0 /. (4.0 *. Float.pi *. n)) in
      check_close (Printf.sprintf "rs round-trip %g" rs) rs rs_back)
    [ 0.001; 0.5; 1.0; 4.7 ]

let test_t2_vs_s () =
  (* t^2 = (pi/4)(9 pi/4)^(1/3) s^2 / rs  ~= 1.50730 s^2/rs *)
  let v =
    Eval.eval [ (rs_n, 2.0); (s_n, 3.0) ] Dft_vars.t2
  in
  check_close ~tol:1e-5 "t2 value" (1.5073009372 *. 9.0 /. 2.0) v

(* ---- LDA correlation --------------------------------------------------- *)

let test_pw92_reference () =
  (* Reference values of eps_c^PW92(rs, zeta=0) in Hartree. *)
  List.iter
    (fun (rs, expect) ->
      check_close ~tol:2e-4 (Printf.sprintf "PW92 rs=%g" rs) expect
        (Lda_pw92.eps_c_at rs))
    [ (1.0, -0.05977); (2.0, -0.04476); (5.0, -0.02822); (10.0, -0.01857) ]

let test_pw92_properties () =
  (* Negative and monotonically increasing toward 0 on the whole domain. *)
  let prev = ref (Lda_pw92.eps_c_at 0.0001) in
  for i = 1 to 200 do
    let rs = 0.0001 +. (float_of_int i *. 0.025) in
    let v = Lda_pw92.eps_c_at rs in
    check_true "negative" (v < 0.0);
    check_true "monotone increasing in rs" (v >= !prev);
    prev := v
  done

let test_vwn () =
  (* RPA overestimates correlation: |eps_RPA| > |eps_CA-fit| everywhere. *)
  List.iter
    (fun rs ->
      let rpa = Lda_vwn.eps_c_at rs in
      let vwn5 = Eval.eval1 rs_n rs Lda_vwn.eps_c_vwn5 in
      check_true "both negative" (rpa < 0.0 && vwn5 < 0.0);
      check_true "RPA deeper" (rpa < vwn5))
    [ 0.01; 0.1; 1.0; 5.0; 50.0 ];
  (* VWN5 should be close to PW92 (both fit Ceperley-Alder). *)
  List.iter
    (fun rs ->
      let d = Float.abs (Eval.eval1 rs_n rs Lda_vwn.eps_c_vwn5 -. Lda_pw92.eps_c_at rs) in
      check_true (Printf.sprintf "VWN5 ~ PW92 at rs=%g (d=%g)" rs d) (d < 1e-3))
    [ 0.5; 1.0; 2.0; 5.0 ]

let test_pz81 () =
  (* continuous at the matching point but with a derivative jump *)
  let below = Lda_pz81.eps_c_at 0.9999999 in
  let above = Lda_pz81.eps_c_at 1.0000001 in
  check_true "nearly continuous" (Float.abs (below -. above) < 1e-4);
  let jump = Lda_pz81.derivative_jump_at_matching_point () in
  check_true "derivative jump exists" (jump > 1e-6);
  check_true "derivative jump small" (jump < 1e-3);
  check_close ~tol:5e-3 "PZ81 ~ CA at rs=2" (-0.0448) (Lda_pz81.eps_c_at 2.0)

(* ---- GGA --------------------------------------------------------------- *)

let test_pbe_exchange () =
  check_close "F_x(0) = 1" 1.0 (Eval.eval1 s_n 0.0 Gga_pbe.f_x);
  (* F_x is bounded by 1 + kappa (the Lieb-Oxford-motivated ceiling). *)
  for i = 0 to 100 do
    let s = float_of_int i *. 0.05 in
    let fx = Eval.eval1 s_n s Gga_pbe.f_x in
    check_true "1 <= F_x" (fx >= 1.0);
    check_true "F_x < 1 + kappa" (fx < 1.0 +. Gga_pbe.kappa)
  done;
  (* small-s expansion: F_x ~ 1 + mu s^2 *)
  let s = 1e-4 in
  check_close ~tol:1e-4 "gradient expansion"
    (1.0 +. (Gga_pbe.mu *. s *. s))
    (Eval.eval1 s_n s Gga_pbe.f_x)

let test_pbe_correlation () =
  (* s = 0 recovers PW92 *)
  List.iter
    (fun rs ->
      check_close
        (Printf.sprintf "LSDA limit rs=%g" rs)
        (Lda_pw92.eps_c_at rs)
        (Gga_pbe.eps_c_at ~rs ~s:0.0))
    [ 0.1; 1.0; 4.0 ];
  (* H >= 0: gradient correction reduces |correlation| *)
  List.iter
    (fun (rs, s) ->
      let h = Eval.eval [ (rs_n, rs); (s_n, s) ] Gga_pbe.h_term in
      check_true (Printf.sprintf "H >= 0 at (%g, %g)" rs s) (h >= 0.0);
      check_true "eps_c stays negative" (Gga_pbe.eps_c_at ~rs ~s <= 1e-12))
    [ (0.5, 0.5); (1.0, 2.0); (3.0, 5.0); (5.0, 1.0) ];
  (* high-gradient limit: correlation vanishes *)
  check_true "eps_c -> 0 at huge s"
    (Float.abs (Gga_pbe.eps_c_at ~rs:1.0 ~s:50.0) < 1e-3)

let test_lyp () =
  (* LSDA-like limit negative at s = 0. *)
  check_true "negative at s=0" (Gga_lyp.eps_c_at ~rs:1.0 ~s:0.0 < 0.0);
  (* the EC1 violation: positive correlation energy at large s *)
  check_true "positive at s=3" (Gga_lyp.eps_c_at ~rs:1.0 ~s:3.0 > 0.0);
  (* crossing boundary near the paper's 1.66 band over mid rs *)
  let c1 = Gga_lyp.s_crossing ~rs:1.0 in
  check_true (Printf.sprintf "crossing at rs=1 is %.3f" c1)
    (c1 > 1.5 && c1 < 2.1);
  let c2 = Gga_lyp.s_crossing ~rs:2.0 in
  check_true "crossing at rs=2 in band" (c2 > 1.5 && c2 < 2.1)

let test_am05 () =
  (* exchange index interpolates: X(0) = 1 (pure LDA), X(inf) = 0 *)
  check_close "X(0)" 1.0 (Eval.eval1 s_n 0.0 Gga_am05.index_x);
  check_true "X decreasing"
    (Eval.eval1 s_n 2.0 Gga_am05.index_x < Eval.eval1 s_n 1.0 Gga_am05.index_x);
  (* correlation: eps_c = PW92 * [X + gamma(1 - X)] with gamma < 1 means
     |eps_c| shrinks with s *)
  let e0 = Gga_am05.eps_c_at ~rs:1.0 ~s:0.0 in
  let e5 = Gga_am05.eps_c_at ~rs:1.0 ~s:5.0 in
  check_close "s=0 is PW92" (Lda_pw92.eps_c_at 1.0) e0;
  check_true "attenuated at s=5" (Float.abs e5 < Float.abs e0);
  check_true "never positive" (e5 < 0.0);
  (* the limit factor is gamma_c *)
  check_close ~tol:1e-3 "s -> inf factor"
    (Gga_am05.gamma_c *. Lda_pw92.eps_c_at 1.0)
    (Gga_am05.eps_c_at ~rs:1.0 ~s:500.0);
  (* exchange F_x(0+) = 1 via the Lambert W limit *)
  check_close ~tol:1e-3 "F_x(0+) = 1" 1.0 (Eval.eval1 s_n 1e-8 Gga_am05.f_x)

(* ---- meta-GGA ---------------------------------------------------------- *)

let scan_env ~rs ~s ~alpha = [ (rs_n, rs); (s_n, s); (a_n, alpha) ]

let test_scan_switching () =
  let f = Mgga_scan.f_alpha_x in
  check_close "f(0) = 1" 1.0 (Eval.eval (scan_env ~rs:1.0 ~s:1.0 ~alpha:0.0) f);
  check_close "f(1) = 0" 0.0 (Eval.eval (scan_env ~rs:1.0 ~s:1.0 ~alpha:1.0) f);
  (* continuous through alpha = 1 *)
  let just_below = Eval.eval (scan_env ~rs:1.0 ~s:1.0 ~alpha:0.999999) f in
  let just_above = Eval.eval (scan_env ~rs:1.0 ~s:1.0 ~alpha:1.000001) f in
  check_true "left limit -> 0" (Float.abs just_below < 1e-6);
  check_true "right limit -> 0" (Float.abs just_above < 1e-6);
  check_close ~tol:1e-5 "f(inf tail) -> -d as alpha grows"
    (-.Mgga_scan.dx)
    (Eval.eval (scan_env ~rs:1.0 ~s:1.0 ~alpha:1e6) f)

let test_scan_limits () =
  (* uniform gas norm: at s=0, alpha=1 SCAN recovers LSDA exactly *)
  List.iter
    (fun rs ->
      check_close ~tol:1e-10
        (Printf.sprintf "LSDA norm rs=%g" rs)
        (Lda_pw92.eps_c_at rs)
        (Mgga_scan.eps_c_at ~rs ~s:0.0 ~alpha:1.0);
      check_close ~tol:1e-9
        (Printf.sprintf "exchange norm rs=%g" rs)
        (Uniform.eps_x_at rs)
        (Mgga_scan.eps_x_at ~rs ~s:1e-14 ~alpha:1.0))
    [ 0.5; 1.0; 3.0 ];
  (* correlation remains non-positive across a sample of the 3D domain (SCAN
     is built to satisfy EC1) *)
  List.iter
    (fun (rs, s, alpha) ->
      check_true
        (Printf.sprintf "eps_c <= 0 at (%g,%g,%g)" rs s alpha)
        (Mgga_scan.eps_c_at ~rs ~s ~alpha <= 1e-12))
    [
      (0.01, 0.3, 0.2); (0.5, 2.0, 0.0); (1.0, 5.0, 1.5); (3.0, 1.0, 4.0);
      (5.0, 4.0, 0.9); (2.0, 0.1, 1.1);
    ]

let test_scan_exchange_bounds () =
  (* F_x must respect the tightened meta-GGA Lieb-Oxford bound ~ 1.174 at
     alpha=0 and stay positive. *)
  List.iter
    (fun (s, alpha) ->
      let fx = Eval.eval (scan_env ~rs:1.0 ~s ~alpha) Mgga_scan.f_x in
      check_true (Printf.sprintf "0 < F_x at (%g,%g)" s alpha) (fx > 0.0);
      check_true (Printf.sprintf "F_x <= 1.174+eps at (%g,%g)" s alpha)
        (fx <= 1.174 +. 1e-6))
    [ (0.1, 0.0); (1.0, 0.5); (2.0, 1.0); (4.0, 3.0); (5.0, 5.0) ]

let test_rscan () =
  (* regularized alpha stays close to alpha away from 0 *)
  let a' x = Eval.eval1 a_n x Mgga_rscan.alpha_regularized in
  check_close ~tol:1e-3 "alpha' ~ alpha at 1" 1.0 (a' 1.0);
  check_true "alpha'(0) = 0" (a' 0.0 = 0.0);
  (* rSCAN tracks SCAN correlation within a few percent at benign points *)
  List.iter
    (fun (rs, s, alpha) ->
      let s1 = Mgga_scan.eps_c_at ~rs ~s ~alpha in
      let s2 = Mgga_rscan.eps_c_at ~rs ~s ~alpha in
      check_true
        (Printf.sprintf "rSCAN ~ SCAN at (%g,%g,%g): %g vs %g" rs s alpha s1 s2)
        (Float.abs (s1 -. s2) < 0.02 *. (1.0 +. Float.abs s1)))
    [ (1.0, 0.5, 0.5); (1.0, 0.5, 2.0); (3.0, 2.0, 0.3) ];
  (* but rSCAN's switching function is smooth at alpha = 1: compare
     derivative magnitudes *)
  let d_scan =
    (Dual.eval (scan_env ~rs:1.0 ~s:1.0 ~alpha:0.999) ~wrt:a_n Mgga_scan.f_alpha_c).Dual.d
  in
  let d_rscan =
    (Dual.eval (scan_env ~rs:1.0 ~s:1.0 ~alpha:0.999) ~wrt:a_n Mgga_rscan.f_alpha_c).Dual.d
  in
  check_true "rSCAN switch is flatter near alpha=1"
    (Float.abs d_rscan < Float.abs d_scan +. 1.0)

(* ---- registry ----------------------------------------------------------- *)

let test_registry () =
  Alcotest.(check int) "five paper DFAs" 5 (List.length Registry.paper_five);
  Alcotest.(check int) "twelve registered" 12 (List.length Registry.all);
  let pbe = Registry.find "pbe" in
  Alcotest.(check (list string)) "PBE variables" [ rs_n; s_n ]
    (Registry.variables pbe);
  check_true "PBE has xc" (Registry.eps_xc pbe <> None);
  let lyp = Registry.find "LYP" in
  check_true "case-insensitive lookup" (String.equal lyp.Registry.name "lyp");
  check_true "LYP has no exchange" (Registry.eps_xc lyp = None);
  Alcotest.(check (option reject)) "unknown" None (Registry.find_opt "b3lyp");
  Alcotest.check_raises "find raises" Not_found (fun () ->
      ignore (Registry.find "nope"));
  let scan = Registry.find "scan" in
  Alcotest.(check (list string)) "SCAN variables" [ rs_n; s_n; a_n ]
    (Registry.variables scan)

let test_b88 () =
  check_close ~tol:1e-6 "F_x(0) = 1" 1.0 (Eval.eval1 s_n 0.0 Gga_b88.f_x);
  (* monotone growth in s; unbounded (the known B88 large-gradient issue) *)
  let f1 = Eval.eval1 s_n 1.0 Gga_b88.f_x in
  let f5 = Eval.eval1 s_n 5.0 Gga_b88.f_x in
  check_true "increasing" (1.0 < f1 && f1 < f5);
  check_true "in sane range at s=1" (f1 > 1.05 && f1 < 1.4);
  (* BLYP is registered with both parts: LO conditions become applicable *)
  let blyp = Registry.find "blyp" in
  check_true "BLYP has xc" (Registry.eps_xc blyp <> None);
  check_true "EC5 applies to BLYP" (Conditions.applies Conditions.Ec5 blyp)

let test_mutate () =
  let e = Expr.add (Expr.mul (Expr.const 0.804) Dft_vars.s) (Expr.const 2.5) in
  let e', n = Mutate.tweak_constant ~from_const:0.804 ~to_const:1.3 e in
  Alcotest.(check int) "one site" 1 n;
  check_close "mutated value" ((1.3 *. 2.0) +. 2.5) (Eval.eval1 s_n 2.0 e');
  check_close "original untouched" ((0.804 *. 2.0) +. 2.5) (Eval.eval1 s_n 2.0 e);
  let e'', n2 = Mutate.flip_constant_sign 2.5 e in
  Alcotest.(check int) "sign site" 1 n2;
  check_close "sign flipped" ((0.804 *. 2.0) -. 2.5) (Eval.eval1 s_n 2.0 e'');
  (* scale_term hits only terms mentioning the variable *)
  let scaled = Mutate.scale_term ~factor:3.0 ~containing:s_n e in
  check_close "term scaled" ((3.0 *. 0.804 *. 2.0) +. 2.5) (Eval.eval1 s_n 2.0 scaled);
  (* mutant_of renames and rewires *)
  let pbe = Registry.find "pbe" in
  let m = Mutate.mutant_of pbe ~name:"pbe-test" ~mutate:(fun x -> Expr.mul Expr.two x) in
  check_true "renamed" (String.equal m.Registry.name "pbe-test");
  check_close "correlation doubled"
    (2.0 *. Gga_pbe.eps_c_at ~rs:1.0 ~s:1.0)
    (Eval.eval [ (rs_n, 1.0); (s_n, 1.0) ] (Option.get m.Registry.eps_c))

let test_enhancement () =
  (* F_c of any correlation functional is -rs eps_c / 0.458..., so F_c >= 0
     iff eps_c <= 0 *)
  let f_c = Enhancement.f_of Lda_pw92.eps_c in
  List.iter
    (fun rs ->
      let fc = Eval.eval1 rs_n rs f_c in
      let expected = -.(Lda_pw92.eps_c_at rs) /. Uniform.eps_x_at rs *. -1.0 in
      check_close (Printf.sprintf "F_c at rs=%g" rs) expected fc;
      check_true "F_c >= 0 for PW92" (fc >= 0.0))
    [ 0.01; 1.0; 5.0 ]

let suite =
  [
    case "uniform electron gas" test_uniform;
    case "density conversion" test_density_conversion;
    case "t^2 relation" test_t2_vs_s;
    case "PW92 reference values" test_pw92_reference;
    case "PW92 monotonicity" test_pw92_properties;
    case "VWN RPA vs VWN5" test_vwn;
    case "PZ81 matching point" test_pz81;
    case "PBE exchange" test_pbe_exchange;
    case "PBE correlation" test_pbe_correlation;
    case "LYP violation structure" test_lyp;
    case "AM05" test_am05;
    case "SCAN switching function" test_scan_switching;
    case "SCAN norms and bounds" test_scan_limits;
    case "SCAN exchange bounds" test_scan_exchange_bounds;
    case "rSCAN regularization" test_rscan;
    case "registry" test_registry;
    case "B88 exchange / BLYP pairing" test_b88;
    case "mutation harness" test_mutate;
    case "enhancement factors" test_enhancement;
    qcheck ~count:100 "PBE correlation non-positive on domain (EC1 holds)"
      dfa_point_gen
      (fun env ->
        let rs = List.assoc rs_n env and s = List.assoc s_n env in
        Gga_pbe.eps_c_at ~rs ~s <= 1e-12);
    qcheck ~count:100 "VWN RPA non-positive on domain" pos_float_gen
      (fun rs -> Lda_vwn.eps_c_at rs < 0.0);
    qcheck ~count:100 "AM05 f_x finite and >= 1 on (0, 5]"
      QCheck2.Gen.(float_range 1e-6 5.0)
      (fun s ->
        let fx = Eval.eval1 s_n s Gga_am05.f_x in
        Float.is_finite fx && fx >= 0.999);
  ]
