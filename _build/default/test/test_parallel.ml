open Testutil

let test_sequential_fallback () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "workers=1 maps in order"
    (List.map (fun x -> x * 2) xs)
    (Pool.map ~workers:1 (fun x -> x * 2) xs)

let test_parallel_map_order () =
  let xs = List.init 500 Fun.id in
  Alcotest.(check (list int)) "workers=4 preserves order"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~workers:4 (fun x -> x * x) xs)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~workers:8 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Pool.map ~workers:8 (fun x -> x) [ 7 ])

let test_more_workers_than_items () =
  Alcotest.(check (list int)) "3 items, 16 workers" [ 2; 4; 6 ]
    (Pool.map ~workers:16 (fun x -> 2 * x) [ 1; 2; 3 ])

exception Boom

let test_exception_propagation () =
  Alcotest.check_raises "first failure re-raised" Boom (fun () ->
      ignore
        (Pool.map ~workers:4
           (fun x -> if x = 37 then raise Boom else x)
           (List.init 100 Fun.id)))

let test_iter_effects () =
  let total = Atomic.make 0 in
  Pool.iter ~workers:4 (fun x -> ignore (Atomic.fetch_and_add total x))
    (List.init 101 Fun.id);
  Alcotest.(check int) "sum via iter" 5050 (Atomic.get total)

let test_default_workers () =
  check_true "at least one worker" (Pool.default_workers () >= 1)

let test_solver_calls_in_parallel () =
  (* Solver calls on prebuilt formulas are construction-free and safe to
     fan out; verify results match the sequential run. *)
  let x = Expr.var "x" in
  let atom = Form.le (Expr.sub (Expr.sqr x) (Expr.int 2)) in
  let boxes =
    List.init 8 (fun i ->
        let lo = float_of_int i in
        Box.make [ ("x", Interval.make lo (lo +. 1.0)) ])
  in
  let solve b = fst (Icp.solve Icp.default_config b [ atom ]) in
  let seq = List.map solve boxes in
  let par = Pool.map ~workers:4 solve boxes in
  List.iter2
    (fun a b ->
      let tag = function
        | Icp.Unsat -> 0
        | Icp.Sat _ -> 1
        | Icp.Timeout -> 2
      in
      Alcotest.(check int) "same verdict" (tag a) (tag b))
    seq par

let suite =
  [
    case "sequential fallback" test_sequential_fallback;
    case "parallel map preserves order" test_parallel_map_order;
    case "empty and singleton" test_empty_and_singleton;
    case "more workers than items" test_more_workers_than_items;
    case "exception propagation" test_exception_propagation;
    case "iter side effects" test_iter_effects;
    case "default workers" test_default_workers;
    case "parallel solver calls" test_solver_calls_in_parallel;
  ]
