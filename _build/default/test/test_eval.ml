open Testutil
open Expr

let x = var "x"
let y = var "y"

let test_basic_eval () =
  let env = [ ("x", 2.0); ("y", 3.0) ] in
  check_close "x+y" 5.0 (Eval.eval env (add x y));
  check_close "x*y^2" 18.0 (Eval.eval env (mul x (sqr y)));
  check_close "exp(log x)" 2.0 (Eval.eval env (exp (log x)));
  check_close "sqrt 2" (Stdlib.sqrt 2.0) (Eval.eval env (sqrt x));
  check_close "atan" (Stdlib.atan 2.0) (Eval.eval env (atan x));
  check_close "2^y" 8.0 (Eval.eval env (pow two y))

let test_unbound () =
  Alcotest.check_raises "unbound variable" (Eval.Unbound_variable "z")
    (fun () -> ignore (Eval.eval [ ("x", 1.0) ] (add x (var "z"))))

let test_pow_float () =
  check_close "integer power exact" 1024.0 (Eval.pow_float 2.0 10.0);
  check_close "negative base integer exponent" (-8.0) (Eval.pow_float (-2.0) 3.0);
  check_close "negative integer exponent" 0.25 (Eval.pow_float 2.0 (-2.0));
  check_true "negative base fractional is nan"
    (Float.is_nan (Eval.pow_float (-2.0) 0.5));
  check_close "zero^positive" 0.0 (Eval.pow_float 0.0 2.5);
  check_true "zero^negative is inf" (Eval.pow_float 0.0 (-1.0) = Float.infinity)

let test_piecewise_eval () =
  let pw = if_lt x y ~then_:(int 1) ~else_:(int 2) in
  check_close "x<y branch" 1.0 (Eval.eval [ ("x", 1.0); ("y", 2.0) ] pw);
  check_close "x>y default" 2.0 (Eval.eval [ ("x", 3.0); ("y", 2.0) ] pw);
  check_close "boundary goes to default" 2.0 (Eval.eval [ ("x", 2.0); ("y", 2.0) ] pw)

let test_compile_agrees () =
  let exprs =
    [
      add (mul x y) (exp (sub x one));
      div (add x (int 3)) (add (sqr y) one);
      if_lt x y ~then_:(sin x) ~else_:(cos y);
      powr (add (sqr x) one) (Rat.make 3 2);
      lambert_w (abs x);
      atan (mul x (tanh y));
    ]
  in
  List.iteri
    (fun i e ->
      let tape = Compile.compile ~vars:[ "x"; "y" ] e in
      List.iter
        (fun (xv, yv) ->
          let direct = Eval.eval [ ("x", xv); ("y", yv) ] e in
          let taped = Compile.run tape [| xv; yv |] in
          check_close
            (Printf.sprintf "expr %d at (%g, %g)" i xv yv)
            direct taped)
        [ (0.5, 1.5); (2.0, -1.0); (-0.3, 0.3); (4.0, 4.0) ])
    exprs

let test_compile_errors () =
  Alcotest.check_raises "missing variable"
    (Invalid_argument "Compile.compile: unbound variable \"y\"") (fun () ->
      ignore (Compile.compile ~vars:[ "x" ] (add x y)));
  let tape = Compile.compile ~vars:[ "x" ] (sqr x) in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Compile.run: arity mismatch") (fun () ->
      ignore (Compile.run tape [| 1.0; 2.0 |]))

let test_compile_sharing () =
  (* A DAG with a shared subterm should produce fewer instructions than the
     tree size. *)
  let shared = exp (mul x y) in
  let e = add (mul shared shared) (add shared one) in
  let tape = Compile.compile ~vars:[ "x"; "y" ] e in
  check_true "tape shorter than tree size"
    (Compile.length tape < tree_size e);
  Alcotest.(check int) "arity" 2 (Compile.arity tape)

let test_parser_roundtrip () =
  List.iter
    (fun src ->
      let e = Parser.of_string src in
      let printed = Printer.to_string e in
      let e2 = Parser.of_string printed in
      check_true (Printf.sprintf "round-trip %S" src) (equal e e2))
    [
      "x + y*2 - 3";
      "exp(x) * log(y + 4)";
      "(x + 1)^2 / (y - 5)^3";
      "-x^2";
      "atan(x/2) + tanh(y)";
      "sqrt(x) * cbrt(y)";
      "lambertw(x + 1)";
      "2e-3 * x + 1.5E2";
      "pi * x";
    ]

let test_parser_errors () =
  let fails s =
    match Parser.of_string s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  fails "x +";
  fails "unknownfn(x)";
  fails "(x";
  fails "x ) y";
  fails "1..2"

let test_sexp_roundtrip () =
  List.iter
    (fun e ->
      let s = Printer.sexp_to_string e in
      let e2 = Parser.sexp_of_string s in
      let env = [ ("x", 0.7); ("y", -1.3) ] in
      check_close
        (Printf.sprintf "sexp round-trip %s" s)
        (Eval.eval env e) (Eval.eval env e2))
    [
      add (mul x y) (int 3);
      if_lt x zero ~then_:(neg x) ~else_:x;
      powr (abs y) (Rat.make 2 3);
      exp (div x (add (sqr y) one));
    ]

let test_run_batch () =
  let e = add (mul x (exp (neg y))) (powr (add (sqr x) one) (Rat.make 1 3)) in
  let tape = Compile.compile ~vars:[ "x"; "y" ] e in
  let n = 257 in
  let xs = Array.init n (fun i -> -2.0 +. (4.0 *. float_of_int i /. float_of_int n)) in
  let ys = Array.init n (fun i -> 3.0 *. Stdlib.sin (float_of_int i)) in
  let out = Array.make n 0.0 in
  Compile.run_batch tape [| xs; ys |] out;
  for i = 0 to n - 1 do
    check_close "batch = pointwise" (Compile.run tape [| xs.(i); ys.(i) |]) out.(i)
  done;
  (* piecewise select per point *)
  let pw = if_lt x y ~then_:(int 1) ~else_:(int 2) in
  let tp = Compile.compile ~vars:[ "x"; "y" ] pw in
  let out2 = Array.make n 0.0 in
  Compile.run_batch tp [| xs; ys |] out2;
  for i = 0 to n - 1 do
    check_close "piecewise batch" (if xs.(i) < ys.(i) then 1.0 else 2.0) out2.(i)
  done;
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Compile.run_batch: arity mismatch") (fun () ->
      Compile.run_batch tape [| xs |] out);
  Alcotest.check_raises "ragged input"
    (Invalid_argument "Compile.run_batch: ragged argument arrays") (fun () ->
      Compile.run_batch tape [| xs; Array.make 3 0.0 |] out)

let suite =
  [
    case "basic evaluation" test_basic_eval;
    case "batch tape evaluation" test_run_batch;
    case "unbound variable" test_unbound;
    case "pow_float semantics" test_pow_float;
    case "piecewise evaluation" test_piecewise_eval;
    case "compile agrees with eval" test_compile_agrees;
    case "compile error handling" test_compile_errors;
    case "compile shares subterms" test_compile_sharing;
    case "parser round-trip" test_parser_roundtrip;
    case "parser errors" test_parser_errors;
    case "sexp round-trip" test_sexp_roundtrip;
    qcheck "compile = eval on random expressions"
      QCheck2.Gen.(pair expr_gen env2_gen)
      (fun (e, env) ->
        let tape = Compile.compile ~vars:[ "x"; "y" ] e in
        let args = [| List.assoc "x" env; List.assoc "y" env |] in
        let a = Eval.eval env e and b = Compile.run tape args in
        (Float.is_nan a && Float.is_nan b)
        || a = b
        || Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a));
    qcheck "printer output reparses to same value"
      QCheck2.Gen.(pair expr_gen env2_gen)
      (fun (e, env) ->
        let e2 = Parser.of_string (Printer.to_string e) in
        let a = Eval.eval env e and b = Eval.eval env e2 in
        (Float.is_nan a && Float.is_nan b)
        || a = b
        || Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a));
  ]
