open Testutil
open Expr

let x = var "x"
let y = var "y"

let test_c_structure () =
  let e = add (mul x (exp y)) (sqrt (add (sqr x) one)) in
  let c = Printer.c_to_string ~name:"f" ~vars:[ "x"; "y" ] e in
  check_true "function header" (contains_sub c "double f(double x, double y)");
  check_true "uses exp" (contains_sub c "exp(");
  check_true "uses sqrt" (contains_sub c "sqrt(");
  check_true "returns" (contains_sub c "return ");
  (* shared subterms become temporaries *)
  let shared = exp (mul x y) in
  let e2 = add (mul shared shared) shared in
  let c2 = Printer.c_to_string ~name:"g" ~vars:[ "x"; "y" ] e2 in
  check_true "temporary emitted" (contains_sub c2 "const double t1");
  (* piecewise becomes a ternary *)
  let pw = if_lt x y ~then_:(int 1) ~else_:(int 2) in
  let c3 = Printer.c_to_string ~name:"h" ~vars:[ "x"; "y" ] pw in
  check_true "ternary" (contains_sub c3 "?")

(* End-to-end: generate C for real functionals, compile with the system cc,
   and compare against the OCaml evaluator at sample points. *)
let test_c_compile_and_compare () =
  let cases =
    [
      ("pbe_fc", Enhancement.f_of Gga_pbe.eps_c, [ "rs"; "s" ]);
      ("lyp_fc", Enhancement.f_of Gga_lyp.eps_c, [ "rs"; "s" ]);
      ("vwn_fc", Enhancement.f_of Lda_vwn.eps_c, [ "rs" ]);
    ]
  in
  let dir = Filename.temp_file "xcvgen" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let src = Filename.concat dir "gen.c" in
      let exe = Filename.concat dir "gen" in
      let oc = open_out src in
      output_string oc "#include <math.h>\n#include <stdio.h>\n";
      List.iter
        (fun (name, e, vars) ->
          output_string oc (Printer.c_to_string ~name ~vars e))
        cases;
      output_string oc
        "int main(void) {\n\
        \  double pts[4][2] = {{0.5, 0.3}, {1.0, 2.0}, {3.0, 4.5}, {4.9, 0.01}};\n\
        \  for (int i = 0; i < 4; i++)\n\
        \    printf(\"%.17g %.17g %.17g\\n\",\n\
        \           pbe_fc(pts[i][0], pts[i][1]),\n\
        \           lyp_fc(pts[i][0], pts[i][1]),\n\
        \           vwn_fc(pts[i][0]));\n\
        \  return 0;\n}\n";
      close_out oc;
      let cmd = Printf.sprintf "cc -O2 -o %s %s -lm 2>/dev/null" exe src in
      Alcotest.(check int) "cc succeeds" 0 (Sys.command cmd);
      let ic = Unix.open_process_in exe in
      let lines = List.init 4 (fun _ -> input_line ic) in
      ignore (Unix.close_process_in ic);
      let pts = [ (0.5, 0.3); (1.0, 2.0); (3.0, 4.5); (4.9, 0.01) ] in
      List.iter2
        (fun line (rs, s) ->
          match String.split_on_char ' ' (String.trim line) with
          | [ a; b; c ] ->
              let env = [ ("rs", rs); ("s", s) ] in
              check_close ~tol:1e-12
                (Printf.sprintf "PBE F_c at (%g, %g)" rs s)
                (Eval.eval env (Enhancement.f_of Gga_pbe.eps_c))
                (float_of_string a);
              check_close ~tol:1e-12
                (Printf.sprintf "LYP F_c at (%g, %g)" rs s)
                (Eval.eval env (Enhancement.f_of Gga_lyp.eps_c))
                (float_of_string b);
              check_close ~tol:1e-12
                (Printf.sprintf "VWN F_c at rs=%g" rs)
                (Eval.eval env (Enhancement.f_of Lda_vwn.eps_c))
                (float_of_string c)
          | _ -> Alcotest.failf "bad output line %S" line)
        lines pts)

let test_c_random_roundtrip =
  (* random expressions: generated C (compiled once per property run would
     be too slow, so this checks the generator doesn't crash and emits
     balanced code) *)
  qcheck ~count:60 "C generator emits balanced code" expr_gen (fun e ->
      let c = Printer.c_to_string ~name:"q" ~vars:[ "x"; "y" ] e in
      let count ch = String.fold_left (fun n c -> if c = ch then n + 1 else n) 0 c in
      count '(' = count ')' && count '{' = count '}')

let suite =
  [
    case "C structure" test_c_structure;
    slow_case "generated C compiles and matches Eval" test_c_compile_and_compare;
    test_c_random_roundtrip;
  ]
