open Testutil
open Expr

let x = var "x"
let y = var "y"

let d e = Deriv.diff ~wrt:"x" e

(* Compare the symbolic derivative against the dual-number derivative at a
   point. *)
let check_against_dual ?(tol = 1e-8) msg e env =
  let sym = Eval.eval env (d e) in
  let dual = (Dual.eval env ~wrt:"x" e).Dual.d in
  if Float.is_nan sym && Float.is_nan dual then ()
  else check_close ~tol msg dual sym

let test_polynomials () =
  check_true "d/dx c = 0" (equal (d (const 3.25)) zero);
  check_true "d/dx x = 1" (equal (d x) one);
  check_true "d/dx y = 0" (equal (d y) zero);
  check_true "d/dx x^2 = 2x" (equal (d (sqr x)) (mul two x));
  check_true "d/dx x^3 = 3x^2" (equal (d (powi x 3)) (mul (int 3) (sqr x)));
  check_true "d/dx (x*y) = y" (equal (d (mul x y)) y);
  check_true "sum rule" (equal (d (add (sqr x) x)) (add (mul two x) one))

let test_quotients () =
  (* d/dx (1/x) = -x^-2 *)
  check_true "d/dx x^-1" (equal (d (inv x)) (neg (powi x (-2))));
  let e = div one (add one (sqr x)) in
  check_against_dual "quotient at 0.3" e [ ("x", 0.3); ("y", 0.0) ];
  check_against_dual "quotient at -2" e [ ("x", -2.0); ("y", 0.0) ]

let test_transcendentals () =
  check_true "d exp = exp" (equal (d (exp x)) (exp x));
  check_true "d log = 1/x" (equal (d (log x)) (inv x));
  check_true "d sin = cos" (equal (d (sin x)) (cos x));
  check_true "d cos = -sin" (equal (d (cos x)) (neg (sin x)));
  List.iter
    (fun xv ->
      let env = [ ("x", xv); ("y", 0.5) ] in
      check_against_dual "tanh" (tanh (mul x y)) env;
      check_against_dual "atan" (atan (sqr x)) env;
      check_against_dual "exp chain" (exp (neg (sqr x))) env;
      check_against_dual "lambert" (lambert_w (add (sqr x) one)) env)
    [ -1.7; -0.2; 0.0; 0.4; 2.9 ]

let test_general_power () =
  (* x^y with both variable: d/dx = y x^(y-1) *)
  let e = pow (add (sqr x) one) y in
  List.iter
    (fun (xv, yv) ->
      check_against_dual "general power" e [ ("x", xv); ("y", yv) ])
    [ (0.5, 1.3); (2.0, -0.7); (1.0, 2.5) ];
  (* c^x *)
  let e2 = pow (const 3.0) (mul x x) in
  check_against_dual "exponential base" e2 [ ("x", 0.8); ("y", 0.0) ]

let test_abs_piecewise () =
  check_against_dual "abs negative side" (abs x) [ ("x", -2.0); ("y", 0.0) ];
  check_against_dual "abs positive side" (abs x) [ ("x", 3.0); ("y", 0.0) ];
  let pw = if_lt x zero ~then_:(neg (powi x 3)) ~else_:(powi x 3) in
  check_against_dual "piecewise cubic left" pw [ ("x", -1.5); ("y", 0.0) ];
  check_against_dual "piecewise cubic right" pw [ ("x", 1.5); ("y", 0.0) ]

let test_sqrt_chain () =
  (* d/dx sqrt(1 + x^2) = x / sqrt(1 + x^2) *)
  let e = sqrt (add one (sqr x)) in
  List.iter
    (fun xv -> check_against_dual "sqrt chain" e [ ("x", xv); ("y", 0.0) ])
    [ 0.0; 0.7; -3.2 ]

let test_second_derivative () =
  (* f = x^4 -> f'' = 12 x^2 *)
  let f2 = Deriv.diff_n ~wrt:"x" 2 (powi x 4) in
  check_true "x^4'' = 12x^2" (equal f2 (mul (int 12) (sqr x)));
  (* f = sin x -> f'''' = sin x *)
  let f4 = Deriv.diff_n ~wrt:"x" 4 (sin x) in
  check_true "sin'''' = sin" (equal f4 (sin x))

let functional_derivative_cases =
  (* The derivatives the paper actually needs: dF_c/drs for each DFA,
     validated against forward AD at representative points. *)
  let points = [ (0.01, 0.5); (0.5, 0.0); (1.0, 1.0); (3.0, 4.5); (5.0, 2.0) ] in
  List.map
    (fun (dfa_name : string) ->
      case (Printf.sprintf "dF_c/drs of %s matches dual AD" dfa_name)
        (fun () ->
          let dfa = Registry.find dfa_name in
          let f_c = Enhancement.f_of (Option.get dfa.Registry.eps_c) in
          let needs_alpha = Expr.mem_var Dft_vars.alpha_name f_c in
          List.iter
            (fun (rs, s) ->
              let env =
                (Dft_vars.rs_name, rs)
                :: (Dft_vars.s_name, s)
                :: (if needs_alpha then [ (Dft_vars.alpha_name, 1.3) ] else [])
              in
              let sym =
                Eval.eval env (Deriv.diff ~wrt:Dft_vars.rs_name f_c)
              in
              let dual = (Dual.eval env ~wrt:Dft_vars.rs_name f_c).Dual.d in
              check_close ~tol:1e-7
                (Printf.sprintf "at rs=%g s=%g" rs s)
                dual sym)
            points))
    [ "pbe"; "lyp"; "am05"; "vwn_rpa"; "pw92"; "scan"; "rscan" ]

let suite =
  [
    case "polynomials" test_polynomials;
    case "quotients" test_quotients;
    case "transcendentals" test_transcendentals;
    case "general powers" test_general_power;
    case "abs and piecewise" test_abs_piecewise;
    case "sqrt chains" test_sqrt_chain;
    case "higher derivatives" test_second_derivative;
    qcheck "symbolic = dual AD on random expressions"
      QCheck2.Gen.(pair expr_gen env2_gen)
      (fun (e, env) ->
        let sym = Eval.eval env (d e) in
        let dual = (Dual.eval env ~wrt:"x" e).Dual.d in
        (Float.is_nan sym && Float.is_nan dual)
        || (not (Float.is_finite dual))
        || sym = dual
        || Float.abs (sym -. dual) <= 1e-5 *. (1.0 +. Float.abs dual));
    qcheck "linearity of differentiation"
      QCheck2.Gen.(pair expr_gen expr_gen)
      (fun (a, b) -> equal (d (add a b)) (add (d a) (d b)));
  ]
  @ functional_derivative_cases
