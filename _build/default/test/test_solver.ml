open Testutil
open Expr

let x = var "x"
let y = var "y"

let iv = Interval.make
let box2 (xl, xh) (yl, yh) = Box.make [ ("x", iv xl xh); ("y", iv yl yh) ]
let unit_box = box2 (0.0, 1.0) (0.0, 1.0)

(* ---- Box ------------------------------------------------------------ *)

let test_box_basics () =
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Box.vars unit_box);
  Alcotest.(check int) "dim" 2 (Box.dim unit_box);
  check_true "get" (Interval.equal (Box.get unit_box "x") (iv 0.0 1.0));
  let b = Box.set unit_box "y" (iv 2.0 3.0) in
  check_true "set" (Interval.equal (Box.get b "y") (iv 2.0 3.0));
  check_true "set is functional"
    (Interval.equal (Box.get unit_box "y") (iv 0.0 1.0));
  Alcotest.check_raises "unknown var" Not_found (fun () ->
      ignore (Box.get unit_box "z"));
  Alcotest.check_raises "duplicate var"
    (Invalid_argument "Box.make: duplicate variable \"x\"") (fun () ->
      ignore (Box.make [ ("x", Interval.one); ("x", Interval.one) ]))

let test_box_split () =
  let b = box2 (0.0, 4.0) (0.0, 1.0) in
  Alcotest.(check int) "widest dim" 0 (Box.widest_dim b);
  let l, r = Box.split b in
  check_close "left boundary" 2.0 (Interval.sup (Box.get l "x"));
  check_close "right boundary" 2.0 (Interval.inf (Box.get r "x"));
  check_true "y untouched" (Interval.equal (Box.get l "y") (iv 0.0 1.0));
  let children = Box.split_all b in
  Alcotest.(check int) "split_all 2^2" 4 (List.length children);
  let vol = List.fold_left (fun acc c -> acc +. Box.volume c) 0.0 children in
  check_close "volume preserved" (Box.volume b) vol

let test_box_point_ops () =
  let mid = Box.midpoint unit_box in
  check_close "mid x" 0.5 (List.assoc "x" mid);
  check_true "mem mid" (Box.mem mid unit_box);
  check_false "mem outside" (Box.mem [ ("x", 2.0); ("y", 0.5) ] unit_box);
  check_close "max_width" 4.0 (Box.max_width (box2 (0.0, 4.0) (0.0, 1.0)))

(* ---- Form ------------------------------------------------------------ *)

let test_form () =
  let f = sub (add (sqr x) (sqr y)) one in
  let a = Form.le f in
  check_true "holds inside" (Form.holds_at [ ("x", 0.1); ("y", 0.2) ] a);
  check_false "fails outside" (Form.holds_at [ ("x", 1.0); ("y", 1.0) ] a);
  let na = Form.negate_atom a in
  check_true "negation flips" (Form.holds_at [ ("x", 1.0); ("y", 1.0) ] na);
  check_false "negation flips back" (Form.holds_at [ ("x", 0.1); ("y", 0.2) ] na);
  Alcotest.check_raises "cannot negate equality"
    (Invalid_argument "Form.negate_atom: cannot negate an equality") (fun () ->
      ignore (Form.negate_atom (Form.eq f)));
  (* status over boxes *)
  (match Form.status_on (box2 (2.0, 3.0) (2.0, 3.0)) a with
  | `Fails -> ()
  | _ -> Alcotest.fail "far box should certainly fail");
  (match Form.status_on (box2 (0.0, 0.1) (0.0, 0.1)) a with
  | `Holds -> ()
  | _ -> Alcotest.fail "tiny box should certainly hold");
  match Form.status_on unit_box a with
  | `Unknown -> ()
  | _ -> Alcotest.fail "unit box should be unknown"

let test_form_nan_semantics () =
  (* log of a negative number: the model is outside the domain, so valid(x)
     must be false — matching Algorithm 1's counterexample check. *)
  let a = Form.ge (log x) in
  check_false "NaN evaluates to false" (Form.holds_at [ ("x", -1.0) ] a)

(* ---- HC4 ------------------------------------------------------------- *)

let contracted_box = function
  | Hc4.Contracted b -> b
  | Hc4.Infeasible -> Alcotest.fail "unexpected infeasible"

let test_hc4_linear () =
  (* x + y <= 0 on [0,1]^2 forces x = y = 0 up to rounding. *)
  let r = Hc4.revise unit_box (Form.le (add x y)) in
  let b = contracted_box r in
  check_true "x pinched" (Interval.sup (Box.get b "x") <= 1e-9);
  check_true "y pinched" (Interval.sup (Box.get b "y") <= 1e-9)

let test_hc4_infeasible () =
  (* x + y + 3 <= 0 impossible on the unit box. *)
  match Hc4.revise unit_box (Form.le (add_n [ x; y; int 3 ])) with
  | Hc4.Infeasible -> ()
  | Hc4.Contracted _ -> Alcotest.fail "should be infeasible"

let test_hc4_quadratic () =
  (* x^2 - 4 >= 0 on x in [0, 10] contracts to [2, 10]. *)
  let b = Box.make [ ("x", iv 0.0 10.0) ] in
  let r = contracted_box (Hc4.revise b (Form.ge (sub (sqr x) (int 4)))) in
  check_true "lower bound near 2" (Interval.inf (Box.get r "x") >= 1.999);
  check_true "lower bound sound" (Interval.inf (Box.get r "x") <= 2.0)

let test_hc4_exp () =
  (* exp x <= 1 forces x <= 0. *)
  let b = Box.make [ ("x", iv (-5.0) 5.0) ] in
  let r = contracted_box (Hc4.revise b (Form.le (sub (exp x) one))) in
  check_true "x <= 0 (+ulp)" (Interval.sup (Box.get r "x") <= 1e-9);
  check_true "lower untouched" (Interval.inf (Box.get r "x") = -5.0)

let test_hc4_shared_subterm () =
  (* (x - 1)^2 + (x - 1) <= -0.25 has the shared subterm (x - 1); solution
     x - 1 = -1/2, i.e. x = 1/2. One linear DAG pass must not diverge. *)
  let t = sub x one in
  let f = add (sqr t) t in
  let b = Box.make [ ("x", iv (-10.0) 10.0) ] in
  let r = Hc4.contract b [ Form.le (add f (rat 1 4)) ] ~rounds:20 in
  let bx = contracted_box r in
  check_true "contains solution 0.5" (Interval.mem 0.5 (Box.get bx "x"));
  check_true "substantially narrowed" (Interval.width (Box.get bx "x") < 10.0)

(* Certified premise: the float check [Form.holds_at] can be fooled by
   underflow (exp(-1092) evaluates to 0.0, "satisfying" exp(..) <= 0 that no
   real point satisfies), so the property quantifies only over points where
   degenerate-interval evaluation certifies strict satisfaction. *)
let certainly_satisfies_le point e =
  let env = List.map (fun (v, x) -> (v, Interval.point x)) point in
  let i = Ieval.eval env e in
  (not (Interval.is_empty i)) && Interval.certainly_lt i 0.0

let test_hc4_soundness_random =
  (* Contraction must never discard a point satisfying the constraint. *)
  qcheck "hc4 never loses solutions"
    QCheck2.Gen.(tup3 expr_gen (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (e, px, py) ->
      let atom = Form.le e in
      let point = [ ("x", px); ("y", py) ] in
      if certainly_satisfies_le point e then
        match Hc4.revise unit_box atom with
        | Hc4.Infeasible -> false
        | Hc4.Contracted b -> Box.mem point b
      else true)

(* ---- ICP ------------------------------------------------------------- *)

let cfg = { Icp.default_config with fuel = 2000 }

let test_icp_unsat () =
  (* circle of radius 1 cannot reach the far corner box *)
  let f = Form.le (sub (add (sqr x) (sqr y)) one) in
  let b = box2 (2.0, 3.0) (2.0, 3.0) in
  match Icp.solve cfg b [ f ] with
  | Icp.Unsat, stats ->
      check_true "few expansions" (stats.Icp.expansions < 10)
  | _ -> Alcotest.fail "expected unsat"

let test_icp_sat_model () =
  let f = Form.le (sub (add (sqr x) (sqr y)) one) in
  match Icp.solve cfg unit_box [ f ] with
  | Icp.Sat { model; _ }, _ ->
      check_true "model satisfies" (Form.holds_at model f);
      check_true "model in box" (Box.mem model unit_box)
  | _ -> Alcotest.fail "expected sat"

let test_icp_conjunction () =
  (* x >= y  /\  y >= x + 1: infeasible. *)
  let f1 = Form.ge (sub x y) and f2 = Form.ge (sub (sub y x) one) in
  (match Icp.solve cfg unit_box [ f1; f2 ] with
  | Icp.Unsat, _ -> ()
  | _ -> Alcotest.fail "expected unsat");
  (* x >= y /\ y >= x is the diagonal: delta-sat. *)
  let f3 = Form.ge (sub y x) in
  match Icp.solve cfg unit_box [ f1; f3 ] with
  | Icp.Sat { model; _ }, _ ->
      let mx = List.assoc "x" model and my = List.assoc "y" model in
      check_close ~tol:1e-2 "on diagonal" mx my
  | _ -> Alcotest.fail "expected (delta-)sat"

let test_icp_timeout () =
  (* Give the solver almost no fuel on an undecidable-at-this-width box. *)
  let f = Form.ge (sub (sin (mul (const 20.0) x)) (const 0.9999999)) in
  let tiny = { Icp.default_config with fuel = 2; sample_check = false } in
  let b = Box.make [ ("x", iv 0.0 10.0) ] in
  match Icp.solve tiny b [ f ] with
  | Icp.Timeout, stats -> check_true "fuel consumed" (stats.Icp.expansions >= 2)
  | Icp.Unsat, _ -> Alcotest.fail "should not decide with fuel 2"
  | Icp.Sat _, _ -> ()

let test_icp_transcendental () =
  (* exp x = 2 has solution ln 2: check sat of conjunction of inequalities. *)
  let f1 = Form.ge (sub (exp x) two) and f2 = Form.le (sub (exp x) two) in
  let b = Box.make [ ("x", iv 0.0 1.0) ] in
  match Icp.solve cfg b [ f1; f2 ] with
  | Icp.Sat { model; _ }, _ ->
      check_close ~tol:1e-2 "ln 2" (Stdlib.log 2.0) (List.assoc "x" model)
  | _ -> Alcotest.fail "expected sat near ln 2"

let test_icp_soundness_random =
  qcheck ~count:100 "unsat verdicts are sound"
    QCheck2.Gen.(tup3 expr_gen (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (e, px, py) ->
      let atom = Form.le e in
      match Icp.solve { cfg with fuel = 300 } unit_box [ atom ] with
      | Icp.Unsat, _ ->
          (* no real point may satisfy the constraint (certified check) *)
          not (certainly_satisfies_le [ ("x", px); ("y", py) ] e)
      | (Icp.Sat _ | Icp.Timeout), _ -> true)

let suite =
  [
    case "box basics" test_box_basics;
    case "box splitting" test_box_split;
    case "box points" test_box_point_ops;
    case "formula atoms" test_form;
    case "NaN model check" test_form_nan_semantics;
    case "hc4 linear" test_hc4_linear;
    case "hc4 infeasible" test_hc4_infeasible;
    case "hc4 quadratic backward" test_hc4_quadratic;
    case "hc4 exp backward" test_hc4_exp;
    case "hc4 shared subterms" test_hc4_shared_subterm;
    test_hc4_soundness_random;
    case "icp unsat" test_icp_unsat;
    case "icp sat with model" test_icp_sat_model;
    case "icp conjunction" test_icp_conjunction;
    case "icp timeout" test_icp_timeout;
    case "icp transcendental root" test_icp_transcendental;
    test_icp_soundness_random;
  ]
