open Testutil

let config =
  {
    Verify.threshold = 0.7;
    solver =
      { Icp.default_config with fuel = 200; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 10.0;
    workers = 1;
    use_taylor = false;
  }

let outcome dfa cond =
  Option.get (Xcverifier.verify ~config ~dfa ~condition:cond ())

let same_status a b =
  match a, b with
  | Outcome.Verified, Outcome.Verified | Outcome.Timeout, Outcome.Timeout ->
      true
  | Outcome.Counterexample m1, Outcome.Counterexample m2
  | Outcome.Inconclusive m1, Outcome.Inconclusive m2 ->
      m1 = m2
  | _ -> false

let check_roundtrip o =
  let o' = Serialize.of_string (Serialize.to_string o) in
  Alcotest.(check string) "dfa" o.Outcome.dfa o'.Outcome.dfa;
  Alcotest.(check string) "condition" o.Outcome.condition o'.Outcome.condition;
  Alcotest.(check int) "calls" o.Outcome.stats.Outcome.solver_calls
    o'.Outcome.stats.Outcome.solver_calls;
  Alcotest.(check int) "expansions" o.Outcome.stats.Outcome.total_expansions
    o'.Outcome.stats.Outcome.total_expansions;
  Alcotest.(check int) "prunes" o.Outcome.stats.Outcome.total_prunes
    o'.Outcome.stats.Outcome.total_prunes;
  Alcotest.(check int) "revise calls" o.Outcome.stats.Outcome.total_revise_calls
    o'.Outcome.stats.Outcome.total_revise_calls;
  check_close "elapsed" o.Outcome.stats.Outcome.elapsed
    o'.Outcome.stats.Outcome.elapsed;
  check_true "domain" (Box.equal o.Outcome.domain o'.Outcome.domain);
  Alcotest.(check int) "region count"
    (List.length o.Outcome.regions)
    (List.length o'.Outcome.regions);
  List.iter2
    (fun (a : Outcome.region) (b : Outcome.region) ->
      check_true "box bit-exact" (Box.equal a.Outcome.box b.Outcome.box);
      Alcotest.(check int) "depth" a.Outcome.depth b.Outcome.depth;
      check_true "status" (same_status a.Outcome.status b.Outcome.status))
    o.Outcome.regions o'.Outcome.regions;
  (* derived artifacts must agree exactly *)
  Alcotest.(check string) "re-rendered map"
    (Render.outcome_map o) (Render.outcome_map o');
  check_true "same classification" (Outcome.classify o = Outcome.classify o')

let test_roundtrip_lyp () = check_roundtrip (outcome "lyp" "ec1")
let test_roundtrip_vwn () = check_roundtrip (outcome "vwn_rpa" "ec7")

let test_label_escaping () =
  (* "VWN RPA" has a space; must survive the atom encoding *)
  let o = outcome "vwn_rpa" "ec1" in
  Alcotest.(check string) "label with space" "VWN RPA"
    (Serialize.of_string (Serialize.to_string o)).Outcome.dfa

let test_file_archive () =
  let outcomes = [ outcome "lyp" "ec1"; outcome "vwn_rpa" "ec1" ] in
  let path = Filename.temp_file "xcv" ".outcomes" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save path outcomes;
      let loaded = Serialize.load path in
      Alcotest.(check int) "count" 2 (List.length loaded);
      (* Table I rebuilt from the archive matches the live one *)
      Alcotest.(check string) "table from archive"
        (Report.table1 outcomes)
        (Report.table1 loaded))

let test_rejects_garbage () =
  let fails s =
    match Serialize.of_string s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "should reject %S" s
  in
  fails "(not-an-outcome)";
  fails "(outcome 999 (dfa x) (condition y))";
  fails "((("

let suite =
  [
    case "round-trip LYP EC1" test_roundtrip_lyp;
    case "round-trip VWN EC7" test_roundtrip_vwn;
    case "label escaping" test_label_escaping;
    case "file archive + table rebuild" test_file_archive;
    case "rejects malformed input" test_rejects_garbage;
  ]
