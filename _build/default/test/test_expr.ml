open Testutil
open Expr

let x = var "x"
let y = var "y"

let test_hash_consing () =
  check_true "identical construction is physically equal"
    (equal (add x (mul y (int 2))) (add x (mul y (int 2))));
  check_true "commutative inputs collect to the same sum"
    (equal (add x y) (add y x));
  check_true "product commutes" (equal (mul x y) (mul y x));
  check_true "ids are stable" (id (add x y) = id (add y x))

let test_constant_folding () =
  check_true "2+3=5" (equal (add (int 2) (int 3)) (int 5));
  check_true "2*3=6" (equal (mul (int 2) (int 3)) (int 6));
  check_true "2^10 exact" (equal (powi (int 2) 10) (int 1024));
  check_true "rational fold" (equal (add (rat 1 2) (rat 1 3)) (rat 5 6));
  check_close "float fold" (Stdlib.exp 1.5)
    (Option.get (as_const (exp (const 1.5))))

let test_identities () =
  check_true "x+0 = x" (equal (add x zero) x);
  check_true "x*1 = x" (equal (mul x one) x);
  check_true "x*0 = 0" (equal (mul x zero) zero);
  check_true "x^0 = 1" (equal (powi x 0) one);
  check_true "x^1 = x" (equal (powi x 1) x);
  check_true "1^y = 1" (equal (pow one y) one);
  check_true "x-x = 0" (equal (sub x x) zero);
  check_true "x/x = 1" (equal (div x x) one)

let test_like_terms () =
  check_true "x+x = 2x" (equal (add x x) (mul two x));
  check_true "2x+3x = 5x" (equal (add (mul (int 2) x) (mul (int 3) x)) (mul (int 5) x));
  check_true "x*x = x^2" (equal (mul x x) (sqr x));
  check_true "x^2*x^3 = x^5" (equal (mul (powi x 2) (powi x 3)) (powi x 5));
  check_true "x * x^-1 = 1" (equal (mul x (inv x)) one);
  check_true "sqrt x * sqrt x = x" (equal (mul (sqrt x) (sqrt x)) x)

let test_flattening () =
  (* (x + (y + 1)) + 2 should flatten to one sum with folded constant *)
  let e = add (add x (add y one)) two in
  (match e.node with
  | Add terms -> Alcotest.(check int) "flattened arity" 3 (List.length terms)
  | _ -> Alcotest.fail "expected Add");
  let p = mul (mul x (mul y two)) (int 3) in
  match p.node with
  | Mul factors -> Alcotest.(check int) "product arity" 3 (List.length factors)
  | _ -> Alcotest.fail "expected Mul"

let test_power_rules () =
  check_true "(x^2)^3 = x^6" (equal (powi (powi x 2) 3) (powi x 6));
  check_false "(x^2)^(1/2) does not collapse"
    (equal (powr (powi x 2) Rat.half) x);
  check_true "(x*y)^2 distributes" (equal (powi (mul x y) 2) (mul (powi x 2) (powi y 2)));
  (* positive constant pulled out of fractional powers *)
  check_true "(4x)^(1/2) = 2 x^(1/2)"
    (equal (sqrt (mul (int 4) x)) (mul two (sqrt x)));
  check_true "neg via mul" (equal (neg x) (mul (int (-1)) x))

let test_piecewise () =
  let pw = if_lt x y ~then_:(int 1) ~else_:(int 2) in
  (match pw.node with Piecewise _ -> () | _ -> Alcotest.fail "kept symbolic");
  (* constant guards resolve statically *)
  check_true "true guard picks branch"
    (equal (if_lt zero one ~then_:x ~else_:y) x);
  check_true "false guard picks default"
    (equal (if_lt one zero ~then_:x ~else_:y) y);
  check_true "identical branches collapse"
    (equal (if_lt x y ~then_:(int 3) ~else_:(int 3)) (int 3))

let test_inspection () =
  let e = add (mul x y) (exp (sub x one)) in
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (vars e);
  check_true "mem_var x" (mem_var "x" e);
  check_false "mem_var z" (mem_var "z" e);
  check_true "size counts dag nodes once" (size (add (sqr x) (sqr x)) <= 4);
  check_true "tree_size >= size" (tree_size e >= size e);
  check_true "depth positive" (depth e >= 3)

let test_unop_folding () =
  check_true "log of negative stays symbolic"
    (match (log (const (-2.0))).node with Apply (Log, _) -> true | _ -> false);
  check_close "abs const" 3.5 (Option.get (as_const (abs (const (-3.5)))));
  check_true "abs of even power strips"
    (equal (Simplify.simplify (abs (sqr x))) (sqr x))

let suite =
  [
    case "hash consing" test_hash_consing;
    case "constant folding" test_constant_folding;
    case "ring identities" test_identities;
    case "like-term collection" test_like_terms;
    case "n-ary flattening" test_flattening;
    case "power rules" test_power_rules;
    case "piecewise" test_piecewise;
    case "inspection" test_inspection;
    case "unop folding" test_unop_folding;
    qcheck "add is evaluated correctly on random exprs"
      QCheck2.Gen.(triple expr_gen expr_gen env2_gen)
      (fun (a, b, env) ->
        let lhs = Eval.eval env (add a b) in
        let rhs = Eval.eval env a +. Eval.eval env b in
        (Float.is_nan lhs && Float.is_nan rhs)
        || lhs = rhs
        || Float.abs (lhs -. rhs) <= 1e-6 *. (1.0 +. Float.abs rhs));
    qcheck "smart-constructor normalization preserves value"
      QCheck2.Gen.(pair expr_gen env2_gen)
      (fun (e, env) ->
        (* Rebuilding through the constructors must not change semantics. *)
        let rebuilt = Subst.subst [] e in
        let v1 = Eval.eval env e and v2 = Eval.eval env rebuilt in
        (Float.is_nan v1 && Float.is_nan v2)
        || v1 = v2
        || Float.abs (v1 -. v2) <= 1e-6 *. (1.0 +. Float.abs v1));
    qcheck "neg is an involution" expr_gen (fun e -> equal (neg (neg e)) e);
    qcheck "hash-consing: equal means same id"
      QCheck2.Gen.(pair expr_gen expr_gen)
      (fun (a, b) -> equal a b = (id a = id b));
  ]
