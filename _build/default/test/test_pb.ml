open Testutil

let rs_n = Dft_vars.rs_name
let s_n = Dft_vars.s_name

(* ---- mesh ------------------------------------------------------------ *)

let test_linspace () =
  let xs = Mesh.linspace 0.0 1.0 5 in
  Alcotest.(check int) "length" 5 (Array.length xs);
  check_close "first" 0.0 xs.(0);
  check_close "last" 1.0 xs.(4);
  check_close "spacing" 0.25 (xs.(1) -. xs.(0));
  Alcotest.check_raises "n < 2"
    (Invalid_argument "Mesh.linspace: need at least two samples") (fun () ->
      ignore (Mesh.linspace 0.0 1.0 1))

let test_mesh_indexing () =
  let m =
    Mesh.make
      [ ("a", Mesh.linspace 0.0 1.0 3); ("b", Mesh.linspace 10.0 12.0 2) ]
  in
  Alcotest.(check (list int)) "shape" [ 3; 2 ] (Mesh.shape m);
  Alcotest.(check int) "size" 6 (Mesh.size m);
  (* row-major: first axis slowest *)
  Alcotest.(check (list (pair string (float 1e-12))))
    "point 0"
    [ ("a", 0.0); ("b", 10.0) ]
    (Mesh.point m 0);
  Alcotest.(check (list (pair string (float 1e-12))))
    "point 1"
    [ ("a", 0.0); ("b", 12.0) ]
    (Mesh.point m 1);
  Alcotest.(check (list (pair string (float 1e-12))))
    "point 2"
    [ ("a", 0.5); ("b", 10.0) ]
    (Mesh.point m 2);
  Alcotest.(check int) "stride of axis 0" 2 (Mesh.stride m 0);
  Alcotest.(check int) "stride of axis 1" 1 (Mesh.stride m 1)

(* ---- numdiff ---------------------------------------------------------- *)

let test_gradient_exact_on_quadratics () =
  (* second-order scheme is exact on degree-2 polynomials *)
  let xs = Mesh.linspace 0.0 2.0 21 in
  let ys = Array.map (fun x -> (3.0 *. x *. x) -. (2.0 *. x) +. 5.0) xs in
  let d = Numdiff.gradient1d ys xs in
  Array.iteri
    (fun i x ->
      check_close ~tol:1e-9
        (Printf.sprintf "d/dx at %g" x)
        ((6.0 *. x) -. 2.0)
        d.(i))
    xs

let test_gradient_convergence () =
  (* error of the central scheme on sin must fall ~ h^2 *)
  let err n =
    let xs = Mesh.linspace 0.0 Float.pi n in
    let ys = Array.map Stdlib.sin xs in
    let d = Numdiff.gradient1d ys xs in
    let worst = ref 0.0 in
    (* interior points only: edges are one-sided and larger *)
    for i = 1 to n - 2 do
      worst := Float.max !worst (Float.abs (d.(i) -. Stdlib.cos xs.(i)))
    done;
    !worst
  in
  let e1 = err 51 and e2 = err 101 in
  check_true
    (Printf.sprintf "error drops ~4x when h halves (%.3g -> %.3g)" e1 e2)
    (e2 < e1 /. 3.0)

let test_second_derivative () =
  let xs = Mesh.linspace 1.0 3.0 201 in
  let ys = Array.map (fun x -> x *. x *. x) xs in
  let d2 = Numdiff.second_derivative1d ys xs in
  (* away from edges d2 = 6x to good accuracy *)
  for i = 5 to 195 do
    check_close ~tol:1e-3 "x^3 second derivative" (6.0 *. xs.(i)) d2.(i)
  done

let test_gradient_axis () =
  (* f(a, b) = a^2 b over a 2D grid; d/da = 2ab along axis 0 *)
  let na = 30 and nb = 7 in
  let axs = Mesh.linspace 1.0 2.0 na and bxs = Mesh.linspace 0.0 3.0 nb in
  let values =
    Array.init (na * nb) (fun k ->
        let i = k / nb and j = k mod nb in
        axs.(i) *. axs.(i) *. bxs.(j))
  in
  let d = Numdiff.gradient_axis values ~shape:[ na; nb ] ~axis:0 ~coords:axs in
  for i = 0 to na - 1 do
    for j = 0 to nb - 1 do
      check_close ~tol:1e-9 "axis-0 gradient"
        (2.0 *. axs.(i) *. bxs.(j))
        d.((i * nb) + j)
    done
  done

(* ---- baseline --------------------------------------------------------- *)

let test_pb_lyp_ec1 () =
  match Pbcheck.check ~n:60 (Registry.find "lyp") Conditions.Ec1 with
  | Some r ->
      check_false "violated" r.Pbcheck.satisfied;
      check_true "sizable violating fraction"
        (r.Pbcheck.violation_fraction > 0.2);
      (match Pbcheck.violation_boundary_s r with
      | Some s ->
          check_true
            (Printf.sprintf "boundary near paper's 1.66 (got %.3f)" s)
            (s > 1.3 && s < 2.1)
      | None -> Alcotest.fail "boundary expected");
      Alcotest.(check int) "ten example violations kept" 10
        (List.length r.Pbcheck.first_violations)
  | None -> Alcotest.fail "applicable"

let test_pb_pbe_ec1 () =
  match Pbcheck.check ~n:60 (Registry.find "pbe") Conditions.Ec1 with
  | Some r -> check_true "PBE satisfies EC1 on the grid" r.Pbcheck.satisfied
  | None -> Alcotest.fail "applicable"

let test_pb_pbe_ec7 () =
  match Pbcheck.check ~n:60 (Registry.find "pbe") Conditions.Ec7 with
  | Some r ->
      check_false "PBE violates conjectured Tc bound" r.Pbcheck.satisfied;
      (* violations live at small rs / high s (upper-left of Figure 1f) *)
      List.iter
        (fun pt ->
          let rs = List.assoc rs_n pt and s = List.assoc s_n pt in
          check_true "violation in upper-left" (s > rs))
        r.Pbcheck.first_violations
  | None -> Alcotest.fail "applicable"

let test_pb_vwn_all () =
  List.iter
    (fun cond ->
      match Pbcheck.check ~n:200 (Registry.find "vwn_rpa") cond with
      | Some r ->
          check_true
            (Printf.sprintf "VWN RPA satisfies %s" (Conditions.name cond))
            r.Pbcheck.satisfied
      | None -> ())
    (Conditions.applicable (Registry.find "vwn_rpa"))

let test_pb_inapplicable () =
  Alcotest.(check (option reject)) "no LO for VWN" None
    (Pbcheck.check (Registry.find "vwn_rpa") Conditions.Ec4)

let test_pb_scan_small () =
  (* meta-GGA grid runs in 3D; keep it tiny for test speed *)
  match Pbcheck.check ~n:12 ~n_alpha:6 (Registry.find "scan") Conditions.Ec1 with
  | Some r ->
      Alcotest.(check (list int)) "3D mesh" [ 12; 12; 6 ]
        (Mesh.shape r.Pbcheck.mesh);
      check_true "SCAN satisfies EC1 on the coarse grid" r.Pbcheck.satisfied
  | None -> Alcotest.fail "applicable"

let suite =
  [
    case "linspace" test_linspace;
    case "mesh indexing" test_mesh_indexing;
    case "gradient exact on quadratics" test_gradient_exact_on_quadratics;
    case "gradient second-order convergence" test_gradient_convergence;
    case "iterated second derivative" test_second_derivative;
    case "gradient along an axis" test_gradient_axis;
    case "PB finds LYP EC1 violations" test_pb_lyp_ec1;
    case "PB passes PBE EC1" test_pb_pbe_ec1;
    case "PB finds PBE EC7 violations" test_pb_pbe_ec7;
    slow_case "PB passes all VWN RPA conditions" test_pb_vwn_all;
    case "PB skips inapplicable pairs" test_pb_inapplicable;
    case "PB handles 3D meshes (SCAN)" test_pb_scan_small;
  ]
