open Testutil

let rs_n = Dft_vars.rs_name
let s_n = Dft_vars.s_name
let z_n = Spin.zeta_name

let test_interp_function () =
  check_close "f(0) = 0" 0.0 (Eval.eval1 z_n 0.0 Spin.f_interp);
  check_close "f(1) = 1" 1.0 (Eval.eval1 z_n 1.0 Spin.f_interp);
  (* convex and increasing on [0, 1] *)
  let prev = ref 0.0 in
  for i = 1 to 20 do
    let z = float_of_int i /. 20.0 in
    let f = Eval.eval1 z_n z Spin.f_interp in
    check_true "increasing" (f > !prev);
    prev := f
  done;
  (* f''(0) check by finite differences *)
  let h = 1e-4 in
  let f h = Eval.eval1 z_n h Spin.f_interp in
  let second = (f h -. (2.0 *. f 0.0) +. f (-.h)) /. (h *. h) in
  check_close ~tol:1e-5 "f''(0)" Spin.fpp0 second

let test_phi () =
  check_close "phi(0) = 1" 1.0 (Eval.eval1 z_n 0.0 Spin.phi);
  check_close ~tol:1e-12 "phi(1) = 2^(-1/3)"
    (Float.pow 2.0 (-1.0 /. 3.0))
    (Eval.eval1 z_n 1.0 Spin.phi);
  (* decreasing in zeta *)
  check_true "phi decreasing"
    (Eval.eval1 z_n 0.8 Spin.phi < Eval.eval1 z_n 0.2 Spin.phi)

let test_lda_exchange_spin () =
  List.iter
    (fun rs ->
      check_close "zeta=0 is unpolarized" (Uniform.eps_x_at rs)
        (Eval.eval [ (rs_n, rs); (z_n, 0.0) ] Spin.eps_x_lda_spin);
      check_close "zeta=1 is 2^(1/3) deeper"
        (Float.cbrt 2.0 *. Uniform.eps_x_at rs)
        (Eval.eval [ (rs_n, rs); (z_n, 1.0) ] Spin.eps_x_lda_spin))
    [ 0.3; 1.0; 4.0 ]

let test_pw92_channels () =
  List.iter
    (fun rs ->
      (* zeta = 0 reduces to the paramagnetic fit *)
      check_close
        (Printf.sprintf "para at rs=%g" rs)
        (Lda_pw92.eps_c_at rs)
        (Eval.eval [ (rs_n, rs); (z_n, 0.0) ] Spin.eps_c_pw92_spin);
      (* zeta = 1 reduces to the ferromagnetic fit *)
      check_close
        (Printf.sprintf "ferro at rs=%g" rs)
        (Eval.eval1 rs_n rs Spin.pw92_ferro)
        (Eval.eval [ (rs_n, rs); (z_n, 1.0) ] Spin.eps_c_pw92_spin);
      (* ferromagnetic correlation is weaker *)
      check_true "|ferro| < |para|"
        (Float.abs (Eval.eval1 rs_n rs Spin.pw92_ferro)
        < Float.abs (Lda_pw92.eps_c_at rs));
      (* spin stiffness positive *)
      check_true "alpha_c > 0" (Eval.eval1 rs_n rs Spin.pw92_alpha_c > 0.0))
    [ 0.1; 1.0; 2.0; 10.0 ]

let test_pw92_monotone_in_zeta () =
  (* at fixed rs the correlation magnitude decreases with polarization *)
  List.iter
    (fun rs ->
      let prev = ref Float.neg_infinity in
      for i = 0 to 10 do
        let z = float_of_int i /. 10.0 in
        let v = Eval.eval [ (rs_n, rs); (z_n, z) ] Spin.eps_c_pw92_spin in
        check_true "negative" (v < 0.0);
        check_true "increasing toward 0 with zeta" (v >= !prev);
        prev := v
      done)
    [ 0.5; 2.0 ]

let test_pbe_spin_reductions () =
  List.iter
    (fun (rs, s) ->
      check_close ~tol:1e-10
        (Printf.sprintf "PBE c spin zeta=0 at (%g, %g)" rs s)
        (Gga_pbe.eps_c_at ~rs ~s)
        (Spin.eval3 ~rs ~s ~zeta:0.0 Spin.eps_c_pbe_spin);
      check_close ~tol:1e-10
        (Printf.sprintf "PBE x spin zeta=0 at (%g, %g)" rs s)
        (Gga_pbe.eps_x_at ~rs ~s)
        (Spin.eval3 ~rs ~s ~zeta:0.0 Spin.eps_x_pbe_spin))
    [ (0.2, 0.1); (1.0, 1.0); (4.0, 3.3) ]

let test_pbe_spin_ec1_samples () =
  (* PBE correlation stays non-positive across the spin domain *)
  List.iter
    (fun (rs, s, z) ->
      check_true
        (Printf.sprintf "eps_c <= 0 at (%g, %g, %g)" rs s z)
        (Spin.eval3 ~rs ~s ~zeta:z Spin.eps_c_pbe_spin <= 1e-12))
    [
      (0.01, 1.0, 0.5); (0.5, 3.0, 0.9); (1.0, 0.0, 0.3); (3.0, 5.0, 0.7);
      (5.0, 2.0, 0.95);
    ]

let test_exchange_scaling_consistency () =
  (* scale_exchange of the trivial enhancement (F = 1) must reproduce the
     closed-form LDA spin exchange *)
  let lda_scaled = Spin.scale_exchange Expr.one in
  List.iter
    (fun (rs, z) ->
      check_close
        (Printf.sprintf "LDA scaling at rs=%g zeta=%g" rs z)
        (Eval.eval [ (rs_n, rs); (z_n, z) ] Spin.eps_x_lda_spin)
        (Eval.eval [ (rs_n, rs); (s_n, 1.23); (z_n, z) ] lda_scaled))
    [ (0.5, 0.0); (1.0, 0.4); (2.0, 1.0) ]

let test_at_zeta () =
  let sliced = Spin.at_zeta 0.0 Spin.eps_c_pw92_spin in
  check_true "zeta eliminated" (not (Expr.mem_var z_n sliced));
  check_close "slice value" (Lda_pw92.eps_c_at 2.0)
    (Eval.eval1 rs_n 2.0 sliced)

let test_spin_derivatives_match_dual () =
  (* the spin forms must differentiate cleanly in all three variables *)
  let env = [ (rs_n, 1.3); (s_n, 0.8); (z_n, 0.45) ] in
  List.iter
    (fun wrt ->
      let sym =
        Eval.eval env (Deriv.diff ~wrt Spin.eps_c_pbe_spin)
      in
      let dual = (Dual.eval env ~wrt Spin.eps_c_pbe_spin).Dual.d in
      check_close ~tol:1e-7 (Printf.sprintf "d/d%s" wrt) dual sym)
    [ rs_n; s_n; z_n ]

let suite =
  [
    case "interpolation function f(zeta)" test_interp_function;
    case "phi(zeta)" test_phi;
    case "LDA exchange spin scaling" test_lda_exchange_spin;
    case "PW92 three channels" test_pw92_channels;
    case "PW92 monotone in zeta" test_pw92_monotone_in_zeta;
    case "PBE spin reduces at zeta=0" test_pbe_spin_reductions;
    case "PBE spin EC1 samples" test_pbe_spin_ec1_samples;
    case "exchange scaling vs closed form" test_exchange_scaling_consistency;
    case "zeta slicing" test_at_zeta;
    case "spin derivatives vs dual AD" test_spin_derivatives_match_dual;
    qcheck ~count:100 "PBE spin correlation non-positive"
      QCheck2.Gen.(
        tup3 (float_range 0.0001 5.0) (float_range 0.0 5.0)
          (float_range 0.0 0.99))
      (fun (rs, s, z) ->
        Spin.eval3 ~rs ~s ~zeta:z Spin.eps_c_pbe_spin <= 1e-12);
    qcheck ~count:100 "spin exchange negative and deepening with zeta"
      QCheck2.Gen.(
        tup3 (float_range 0.01 5.0) (float_range 0.0 5.0)
          (float_range 0.0 0.9))
      (fun (rs, s, z) ->
        let e0 = Spin.eval3 ~rs ~s ~zeta:0.0 Spin.eps_x_pbe_spin in
        let ez = Spin.eval3 ~rs ~s ~zeta:z Spin.eps_x_pbe_spin in
        e0 < 0.0 && ez <= e0 +. 1e-12);
  ]
