open Testutil

let mk = Rat.make

let test_normalization () =
  Alcotest.(check bool) "6/4 = 3/2" true (Rat.equal (mk 6 4) (mk 3 2));
  Alcotest.(check bool) "-1/-2 = 1/2" true (Rat.equal (mk (-1) (-2)) Rat.half);
  Alcotest.(check bool) "1/-2 has positive den" true ((mk 1 (-2)).Rat.den > 0);
  Alcotest.(check int) "0/7 normalizes den" 1 (mk 0 7).Rat.den

let test_zero_den () =
  Alcotest.check_raises "den 0" Division_by_zero (fun () -> ignore (mk 1 0))

let test_arith () =
  check_true "1/2 + 1/3 = 5/6" (Rat.equal (Rat.add Rat.half Rat.third) (mk 5 6));
  check_true "1/2 * 2/3 = 1/3" (Rat.equal (Rat.mul Rat.half (mk 2 3)) Rat.third);
  check_true "1/2 - 1/2 = 0" (Rat.is_zero (Rat.sub Rat.half Rat.half));
  check_true "(2/3) / (4/3) = 1/2"
    (Rat.equal (Rat.div (mk 2 3) (mk 4 3)) Rat.half);
  check_true "inv 2/5 = 5/2" (Rat.equal (Rat.inv (mk 2 5)) (mk 5 2));
  check_true "neg" (Rat.equal (Rat.neg (mk 3 7)) (mk (-3) 7));
  check_true "abs" (Rat.equal (Rat.abs (mk (-3) 7)) (mk 3 7))

let test_compare () =
  check_true "1/3 < 1/2" (Rat.compare Rat.third Rat.half < 0);
  check_true "sign neg" (Rat.sign (mk (-2) 5) = -1);
  check_true "sign zero" (Rat.sign Rat.zero = 0);
  check_true "is_one" (Rat.is_one (mk 7 7))

let test_conversions () =
  check_close "to_float 3/4" 0.75 (Rat.to_float (mk 3 4));
  Alcotest.(check (option int)) "to_int 8/2" (Some 4) (Rat.to_int (mk 8 2));
  Alcotest.(check (option int)) "to_int 1/2" None (Rat.to_int Rat.half);
  (match Rat.of_float 0.804 with
  | Some r -> check_close "of_float decimal" 0.804 (Rat.to_float r)
  | None -> Alcotest.fail "0.804 should round-trip");
  (match Rat.of_float 42.0 with
  | Some r -> check_true "of_float int" (Rat.equal r (Rat.of_int 42))
  | None -> Alcotest.fail "42.0 should round-trip");
  Alcotest.(check (option reject)) "of_float pi" None (Rat.of_float Float.pi)

let test_overflow () =
  (* components above 2^53 are rejected at construction... *)
  Alcotest.check_raises "construction overflow" Rat.Overflow (fun () ->
      ignore (mk max_int 1));
  (* ...and arithmetic that would overflow raises rather than wrapping *)
  let big = mk (1 lsl 40) 1 in
  Alcotest.check_raises "mul overflow" Rat.Overflow (fun () ->
      ignore (Rat.mul big big))

let test_pp () =
  Alcotest.(check string) "pp int" "5" (Rat.to_string (mk 5 1));
  Alcotest.(check string) "pp frac" "-2/3" (Rat.to_string (mk 2 (-3)))

let rat_pair_gen = QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range 1 1000))

let suite =
  [
    case "normalization" test_normalization;
    case "zero denominator" test_zero_den;
    case "field operations" test_arith;
    case "comparisons" test_compare;
    case "conversions" test_conversions;
    case "overflow detection" test_overflow;
    case "printing" test_pp;
    qcheck "add commutes with to_float"
      QCheck2.Gen.(pair rat_pair_gen rat_pair_gen)
      (fun ((a, b), (c, d)) ->
        let r = Rat.add (mk a b) (mk c d) in
        let f = (float_of_int a /. float_of_int b) +. (float_of_int c /. float_of_int d) in
        Float.abs (Rat.to_float r -. f) <= 1e-9 *. (1.0 +. Float.abs f));
    qcheck "mul then div is identity"
      QCheck2.Gen.(pair rat_pair_gen rat_pair_gen)
      (fun ((a, b), (c, d)) ->
        QCheck2.assume (a <> 0);
        let x = mk a b and y = mk c d in
        Rat.equal y (Rat.div (Rat.mul x y) x));
    qcheck "compare consistent with to_float"
      QCheck2.Gen.(pair rat_pair_gen rat_pair_gen)
      (fun ((a, b), (c, d)) ->
        let x = mk a b and y = mk c d in
        let c1 = Stdlib.compare (Rat.to_float x) (Rat.to_float y) in
        (* float comparison may see ties that exact comparison resolves; only
           require agreement when floats differ *)
        c1 = 0 || Stdlib.compare (Rat.compare x y) 0 = c1);
  ]
