open Testutil

(* ---- grid -------------------------------------------------------------- *)

let test_grid () =
  let g = Radial_grid.make ~r_min:1e-5 ~r_max:10.0 ~n:1000 in
  Alcotest.(check int) "points" 1000 g.Radial_grid.n;
  check_close "first" 1e-5 g.Radial_grid.r.(0);
  check_close ~tol:1e-9 "last" 10.0 g.Radial_grid.r.(999);
  (* log spacing: constant ratio *)
  let ratio = g.Radial_grid.r.(1) /. g.Radial_grid.r.(0) in
  check_close "uniform in log"
    (g.Radial_grid.r.(500) /. g.Radial_grid.r.(499))
    ratio;
  Alcotest.check_raises "bad bounds" (Invalid_argument "Radial_grid.make")
    (fun () -> ignore (Radial_grid.make ~r_min:2.0 ~r_max:1.0 ~n:100))

let test_grid_integration () =
  let g = Radial_grid.make ~r_min:1e-7 ~r_max:60.0 ~n:4000 in
  (* ∫ exp(-r) dr = 1 *)
  let f = Radial_grid.tabulate g (fun r -> Stdlib.exp (-.r)) in
  check_close ~tol:1e-6 "exp integral" 1.0 (Radial_grid.integrate g f);
  (* ∫ r^2 exp(-r) dr = 2 *)
  let f2 = Radial_grid.tabulate g (fun r -> r *. r *. Stdlib.exp (-.r)) in
  check_close ~tol:1e-6 "gamma(3)" 2.0 (Radial_grid.integrate g f2);
  (* outward + inward = total *)
  let out = Radial_grid.integrate_outward g f in
  let inw = Radial_grid.integrate_inward g f in
  check_close ~tol:1e-9 "splitting"
    (Radial_grid.integrate g f)
    (out.(2000) +. inw.(2000))

(* ---- eigenvalues -------------------------------------------------------- *)

let hydrogenic_cases =
  (* exact Coulomb spectrum E_{n} = -Z^2 / (2 n^2), degenerate in l *)
  List.map
    (fun (z, l, nodes, n_principal) ->
      case
        (Printf.sprintf "hydrogenic Z=%d l=%d nodes=%d" z l nodes)
        (fun () ->
          let g = Radial_grid.for_atom ~z ~n:4000 () in
          let zf = float_of_int z in
          let v = Radial_grid.tabulate g (fun r -> -.zf /. r) in
          let e, u =
            Numerov.solve
              ~e_min:(-.(zf *. zf) -. 10.0)
              g ~l ~potential:v ~nodes
          in
          let exact =
            -.(zf *. zf) /. (2.0 *. float_of_int (n_principal * n_principal))
          in
          check_close ~tol:1e-5 "eigenvalue" exact e;
          (* u is normalized *)
          let u2 = Array.map (fun x -> x *. x) u in
          check_close ~tol:1e-8 "normalization" 1.0 (Radial_grid.integrate g u2)))
    [
      (1, 0, 0, 1); (1, 0, 1, 2); (1, 1, 0, 2); (1, 2, 0, 3); (2, 0, 0, 1);
      (10, 0, 0, 1); (10, 1, 1, 3);
    ]

let test_hydrogen_1s_wavefunction () =
  (* u_1s(r) = 2 r exp(-r): check a few points *)
  let g = Radial_grid.for_atom ~z:1 ~n:4000 () in
  let v = Radial_grid.tabulate g (fun r -> -1.0 /. r) in
  let _, u = Numerov.solve ~e_min:(-12.0) g ~l:0 ~potential:v ~nodes:0 in
  Array.iteri
    (fun i r ->
      if r > 0.5 && r < 5.0 && i mod 317 = 0 then
        check_close ~tol:1e-3
          (Printf.sprintf "u(%.3f)" r)
          (2.0 *. r *. Stdlib.exp (-.r))
          (Float.abs u.(i)))
    g.Radial_grid.r

(* ---- Poisson ------------------------------------------------------------ *)

let test_poisson_exponential () =
  (* n(r) = exp(-2r)/pi (hydrogen 1s): V_H = 1/r - (1 + 1/r) exp(-2r) *)
  let g = Radial_grid.for_atom ~z:1 ~n:4000 () in
  let dens = Radial_grid.tabulate g (fun r -> Stdlib.exp (-2.0 *. r) /. Float.pi) in
  check_close ~tol:1e-6 "unit charge" 1.0 (Poisson.total_charge g dens);
  let vh = Poisson.hartree g dens in
  Array.iteri
    (fun i r ->
      if i mod 399 = 0 && r < 20.0 then
        check_close ~tol:1e-5
          (Printf.sprintf "V_H(%.4f)" r)
          ((1.0 /. r) -. ((1.0 +. (1.0 /. r)) *. Stdlib.exp (-2.0 *. r)))
          vh.(i))
    g.Radial_grid.r;
  (* Hartree self-energy of the 1s density = 5/16 Ha *)
  check_close ~tol:1e-5 "E_H = 5/16" (5.0 /. 16.0)
    (Poisson.hartree_energy g dens vh)

(* ---- xc potential -------------------------------------------------------- *)

let test_xc_potential_derivative () =
  (* v_xc must equal d(n eps_xc)/dn; compare against a numeric derivative *)
  let t = Xc_potential.make (Registry.find "vwn5") in
  List.iter
    (fun rs ->
      let n_of_rs rs = 3.0 /. (4.0 *. Float.pi *. (rs ** 3.0)) in
      let rs_of_n n = Float.cbrt (3.0 /. (4.0 *. Float.pi *. n)) in
      let n = n_of_rs rs in
      let h = n *. 1e-6 in
      let f n = n *. Xc_potential.eps_xc_at t ~rs:(rs_of_n n) in
      let numeric = (f (n +. h) -. f (n -. h)) /. (2.0 *. h) in
      check_close ~tol:1e-5
        (Printf.sprintf "v_xc at rs=%g" rs)
        numeric
        (Xc_potential.v_xc_at t ~rs))
    [ 0.1; 0.5; 1.0; 2.0; 5.0; 20.0 ];
  (* famous limit: exchange-only v_x = (4/3) eps_x *)
  let tx = Xc_potential.make (Registry.find "vwn5") in
  ignore tx;
  Alcotest.check_raises "GGA rejected"
    (Invalid_argument "Xc_potential.make: need an LDA correlation functional")
    (fun () -> ignore (Xc_potential.make (Registry.find "pbe")))

(* ---- occupations --------------------------------------------------------- *)

let test_occupations () =
  let total z =
    List.fold_left (fun acc o -> acc +. o.Scf.occ) 0.0 (Scf.occupations z)
  in
  for z = 1 to 18 do
    check_close "electron count" (float_of_int z) (total z)
  done;
  let ne = Scf.occupations 10 in
  Alcotest.(check int) "Ne has three shells" 3 (List.length ne);
  let last = List.nth ne 2 in
  Alcotest.(check int) "2p" 1 last.Scf.l;
  check_close "2p full" 6.0 last.Scf.occ;
  Alcotest.check_raises "z too big"
    (Invalid_argument "Scf.occupations: 1 <= z <= 18") (fun () ->
      ignore (Scf.occupations 19))

(* ---- full SCF ------------------------------------------------------------ *)

let test_scf_hydrogen () =
  let r = Scf.solve ~z:1 () in
  check_true "converged" r.Scf.converged;
  (* NIST LDA reference (spin-unpolarized, VWN): -0.445671 Ha *)
  check_close ~tol:1e-4 "H total energy" (-0.445671) r.Scf.energy;
  check_close ~tol:1e-6 "charge conserved" 1.0
    (Poisson.total_charge (Radial_grid.for_atom ~z:1 ()) r.Scf.density)

let test_scf_helium () =
  let r = Scf.solve ~z:2 () in
  check_true "converged" r.Scf.converged;
  check_close ~tol:1e-4 "He total energy (NIST LDA)" (-2.834836) r.Scf.energy;
  (* 1s eigenvalue reference ~ -0.570425 Ha *)
  (match r.Scf.eigenvalues with
  | [ (orb, e) ] ->
      Alcotest.(check int) "1s" 1 orb.Scf.n;
      check_close ~tol:1e-3 "He 1s eigenvalue" (-0.570425) e
  | _ -> Alcotest.fail "one orbital");
  check_true "E_xc negative" (r.Scf.e_xc < 0.0);
  check_true "E_H positive" (r.Scf.e_hartree > 0.0)

let test_scf_correlation_choice () =
  (* VWN-RPA overbinds vs VWN5 (RPA correlation energies are too deep) *)
  let vwn5 = Scf.solve ~z:2 () in
  let rpa = Scf.solve ~z:2 ~xc:(Registry.find "vwn_rpa") () in
  check_true "RPA lower" (rpa.Scf.energy < vwn5.Scf.energy);
  check_true "by tens of mHa"
    (vwn5.Scf.energy -. rpa.Scf.energy > 0.02
    && vwn5.Scf.energy -. rpa.Scf.energy < 0.2);
  (* PW92 ~ VWN5 (same data) *)
  let pw92 = Scf.solve ~z:2 ~xc:(Registry.find "pw92") () in
  check_true "PW92 close to VWN5"
    (Float.abs (pw92.Scf.energy -. vwn5.Scf.energy) < 2e-3)

let test_scf_neon_slow () =
  let r = Scf.solve ~z:10 () in
  check_true "converged" r.Scf.converged;
  check_close ~tol:1e-5 "Ne total energy (NIST LDA)" (-128.233481)
    (r.Scf.energy /. 1.0);
  Alcotest.(check int) "three shells" 3 (List.length r.Scf.eigenvalues)

let suite =
  [
    case "log grid" test_grid;
    case "grid integration" test_grid_integration;
    case "hydrogen 1s wavefunction" test_hydrogen_1s_wavefunction;
    case "poisson: exponential density" test_poisson_exponential;
    case "xc potential = d(n eps)/dn" test_xc_potential_derivative;
    case "aufbau occupations" test_occupations;
    case "SCF hydrogen vs NIST" test_scf_hydrogen;
    case "SCF helium vs NIST" test_scf_helium;
    case "SCF correlation parametrizations" test_scf_correlation_choice;
    slow_case "SCF neon vs NIST" test_scf_neon_slow;
  ]
  @ hydrogenic_cases
