let () =
  Alcotest.run "xcverifier"
    [
      ("rat", Test_rat.suite);
      ("expr", Test_expr.suite);
      ("eval-compile-parse", Test_eval.suite);
      ("deriv", Test_deriv.suite);
      ("simplify-subst", Test_simplify.suite);
      ("interval", Test_interval.suite);
      ("solver", Test_solver.suite);
      ("taylor", Test_taylor.suite);
      ("functionals", Test_functionals.suite);
      ("spin", Test_spin.suite);
      ("conditions", Test_conditions.suite);
      ("verifier", Test_verifier.suite);
      ("outcome", Test_outcome.suite);
      ("witness", Test_witness.suite);
      ("pb-baseline", Test_pb.suite);
      ("report", Test_report.suite);
      ("parallel", Test_parallel.suite);
      ("kohn-sham", Test_ks.suite);
      ("serialize", Test_serialize.suite);
      ("codegen", Test_codegen.suite);
    ]
