examples/lyp_counterexamples.ml: Conditions Form Format Icp List Option Outcome Pbcheck Printf Registry Render String Verify
