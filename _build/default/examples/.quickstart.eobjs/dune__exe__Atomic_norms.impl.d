examples/atomic_norms.ml: Format List Registry Scf
