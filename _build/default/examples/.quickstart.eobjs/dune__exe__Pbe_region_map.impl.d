examples/pbe_region_map.ml: Conditions Format Icp List Option Pbcheck Printf Registry Render Report Sys Verify
