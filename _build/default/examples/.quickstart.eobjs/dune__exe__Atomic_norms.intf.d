examples/atomic_norms.mli:
