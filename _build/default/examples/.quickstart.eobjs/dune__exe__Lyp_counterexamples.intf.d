examples/lyp_counterexamples.mli:
