examples/pz81_discontinuity.ml: Conditions Deriv Dft_vars Float Format Icp Ieval Interval Lda_pw92 Lda_pz81 List Outcome Registry Verify
