examples/pz81_discontinuity.mli:
