examples/scan_challenge.ml: Box Conditions Domain_spec Encoder Expr Form Format Icp Interval List Option Outcome Registry Verify
