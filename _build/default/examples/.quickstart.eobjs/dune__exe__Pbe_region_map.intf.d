examples/pbe_region_map.mli:
