examples/spin_polarized.mli:
