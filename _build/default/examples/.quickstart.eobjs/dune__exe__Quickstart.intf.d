examples/quickstart.mli:
