examples/ci_mutation.ml: Conditions Dft_vars Eval Expr Format Gga_pbe Icp Lda_pw92 List Mutate Option Outcome Registry Uniform Verify
