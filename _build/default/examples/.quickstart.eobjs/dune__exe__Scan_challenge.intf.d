examples/scan_challenge.mli:
