examples/spin_polarized.ml: Box Dft_vars Enhancement Expr Form Format Gga_pbe Icp Interval List Outcome Printf Render Simplify Spin Uniform Verify
