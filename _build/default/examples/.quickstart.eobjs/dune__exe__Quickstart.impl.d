examples/quickstart.ml: Box Conditions Encoder Form Format Option Outcome Registry Render Verify
