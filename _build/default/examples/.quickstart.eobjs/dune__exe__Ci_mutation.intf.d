examples/ci_mutation.mli:
