(* Appropriate norms: DFAs against real atoms.

   The paper's introduction distinguishes exact *conditions* (analytic
   properties of the exact functional — what the verifier checks) from
   *norms* (reproducing known physical systems: "e.g., a hydrogen or a
   helium atom for which exact results are available"). This example closes
   that second loop with the in-repo Kohn-Sham solver: the same symbolic
   functionals the verifier analyzes drive a self-consistent atomic
   calculation, and the total energies land on the standard NIST LDA
   reference values.

   The xc potential v_xc = eps_xc - (rs/3) d eps_xc/d rs is not hand-coded:
   it is produced by symbolic differentiation of the very expression the
   exact-condition encoder uses. One definition of the functional, three
   consumers — verifier, grid baseline, Kohn-Sham solver.

   Run with:  dune exec examples/atomic_norms.exe *)

let nist_lda = [ (1, "H", -0.445671); (2, "He", -2.834836) ]

let () =
  print_endline "=== LDA (exchange + VWN5 correlation) atomic ground states ===";
  List.iter
    (fun (z, name, reference) ->
      let r = Scf.solve ~z () in
      Format.printf "%-2s (Z = %d):@." name z;
      Format.printf "  %a" Scf.pp_result r;
      Format.printf "  NIST LDA reference: %.6f Ha (difference %+.1e)@.@."
        reference
        (r.Scf.energy -. reference))
    nist_lda;

  print_endline "=== Correlation parametrization matters: He with each LDA ===";
  List.iter
    (fun name ->
      let r = Scf.solve ~z:2 ~xc:(Registry.find name) () in
      Format.printf "  %-8s E(He) = %.6f Ha@." name r.Scf.energy)
    [ "vwn5"; "pw92"; "pz81"; "vwn_rpa" ];
  print_newline ();
  print_endline
    "VWN5, PW92 and PZ81 all parametrize the same Ceperley-Alder data and\n\
     land within ~1 mHa of each other; VWN-RPA parametrizes RPA energies\n\
     instead and overbinds by ~60 mHa — the same physics the verifier sees\n\
     abstractly when VWN-RPA's deeper F_c still satisfies every exact\n\
     condition (conditions constrain the form, norms pin the values).";
  print_newline ();

  print_endline "=== A heavier case: neon ===";
  let r = Scf.solve ~z:10 () in
  Format.printf "%a" Scf.pp_result r;
  Format.printf "  NIST LDA reference: -128.233481 Ha (difference %+.1e)@."
    (r.Scf.energy +. 128.233481)
