(* Quickstart: verify one exact condition for one functional, end to end.

   We check the correlation non-positivity condition (EC1, the paper's
   Equation 4) for the VWN RPA local density approximation — the simplest
   DFA in the paper's evaluation, and one the verifier proves correct on the
   entire input domain.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Look the functional up in the registry (the LibXC stand-in). *)
  let dfa = Registry.find "vwn_rpa" in
  Format.printf "Functional: %a@.@." Registry.pp dfa;

  (* 2. Encode the local condition: psi := F_c >= 0 over the input domain.
     Derivative-free for EC1; other conditions differentiate symbolically. *)
  let problem = Option.get (Encoder.encode dfa Conditions.Ec1) in
  Format.printf "Local condition (Eq. %d): %a@."
    (Conditions.equation Conditions.Ec1)
    Form.pp_atom problem.Encoder.psi;
  Format.printf "Domain: %a@.@." Box.pp problem.Encoder.domain;

  (* 3. Run Algorithm 1: domain-splitting verification with the delta-
     complete interval solver standing in for dReal. *)
  let outcome = Verify.run problem in
  Format.printf "%a@.@." Outcome.pp_summary outcome;

  (* 4. Inspect the verdict. *)
  (match Outcome.classify outcome with
  | Outcome.Full_verified ->
      print_endline
        "VERIFIED: eps_c <= 0 holds for every (real) input in the domain —\n\
         not just at sampled grid points. This is the guarantee the grid-\n\
         search baseline cannot give."
  | Outcome.Partial_verified -> print_endline "Partially verified."
  | Outcome.Refuted -> print_endline "Counterexample found!"
  | Outcome.Unknown -> print_endline "Solver budget exhausted.");
  print_newline ();

  (* 5. Region map (trivially all-verified here; see the other examples for
     more interesting pictures). *)
  print_string (Render.outcome_map outcome)
