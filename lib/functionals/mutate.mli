(** Mutation of functional implementations — the test harness for the
    paper's continuous-integration vision (Section VI-B: "integrate our
    verification tool into LibXC, e.g., as part of the continuous
    integration").

    A regression that CI must catch is precisely a {e mutant}: an
    implementation whose code differs from the intended functional by a
    wrong constant, sign, or subexpression. This module builds such mutants
    from the registered functionals; the CI story is then
    "verifier(mutant) flips a Table I cell from OK to X", which the
    [ci_mutation] example and the test suite exercise end to end.

    All mutations operate on the hash-consed expression, so the original
    registered functionals are never affected. *)

(** Replace every occurrence of the constant [from_const] (matched within
    relative tolerance 1e-12) by [to_const]. Returns the mutated expression
    and the number of sites changed. *)
val tweak_constant :
  from_const:float -> to_const:float -> Expr.t -> Expr.t * int

(** Flip the sign of every occurrence of constant [c]. *)
val flip_constant_sign : float -> Expr.t -> Expr.t * int

(** Flip the sign of every constant of magnitude [|c|], in one pass. This
    is the consistent [c := -c] typo even where the smart constructors have
    already folded a surrounding negation into the literal (so the
    expression holds both [c] and [-c] sites); two [flip_constant_sign]
    passes would undo each other on such expressions. *)
val flip_constant_magnitude : float -> Expr.t -> Expr.t * int

(** [scale_term ~factor ~containing e] multiplies by [factor] every
    top-level additive term of [e] that mentions the variable [containing]
    — a "wrong prefactor on the gradient correction" style bug. *)
val scale_term : factor:float -> containing:string -> Expr.t -> Expr.t

(** [mutant_of dfa ~name ~mutate] derives a registry entry from an existing
    one with the correlation (and exchange, when present) mutated. *)
val mutant_of :
  Registry.t -> name:string -> mutate:(Expr.t -> Expr.t) -> Registry.t
