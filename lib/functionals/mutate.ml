open Expr

let const_matches target c =
  c = target
  || Float.abs (c -. target) <= 1e-12 *. (Float.abs target +. Float.abs c)

let tweak_constant ~from_const ~to_const e =
  let count = ref 0 in
  let replaced =
    Subst.(
      replace_map_constants
        (fun c ->
          if const_matches from_const c then begin
            incr count;
            Some to_const
          end
          else None)
        e)
  in
  (replaced, !count)

let flip_constant_sign c e = tweak_constant ~from_const:c ~to_const:(-.c) e

let flip_constant_magnitude c e =
  let count = ref 0 in
  let replaced =
    Subst.(
      replace_map_constants
        (fun k ->
          if const_matches c k || const_matches (-.c) k then begin
            incr count;
            Some (-.k)
          end
          else None)
        e)
  in
  (replaced, !count)

let scale_term ~factor ~containing e =
  match e.node with
  | Add terms ->
      add_n
        (List.map
           (fun t ->
             if mem_var containing t then mul (const factor) t else t)
           terms)
  | _ -> if mem_var containing e then mul (const factor) e else e

let mutant_of (dfa : Registry.t) ~name ~mutate =
  {
    dfa with
    Registry.name;
    label = name;
    eps_c = Option.map mutate dfa.Registry.eps_c;
    eps_x = Option.map mutate dfa.Registry.eps_x;
    description = "mutant of " ^ dfa.Registry.name;
  }
