type kind = Raise | Nan | Timeout

type plan = { seed : int64; rate : float; kinds : kind list }

exception Injected of string

let default_kinds = [ Raise; Nan; Timeout ]

let clamp_rate r = if r < 0.0 then 0.0 else if r > 1.0 then 1.0 else r

let make ?(kinds = default_kinds) ~seed ~rate () =
  {
    seed = Int64.of_int seed;
    rate = clamp_rate rate;
    kinds = (if kinds = [] then default_kinds else kinds);
  }

let default_seed = 0x5eed

let of_env () =
  match Sys.getenv_opt "XCV_FAULT_RATE" with
  | None -> None
  | Some s -> (
      match float_of_string_opt s with
      | None -> None
      | Some r when r <= 0.0 -> None
      | Some r ->
          let seed =
            match Sys.getenv_opt "XCV_FAULT_SEED" with
            | Some s -> (
                match int_of_string_opt s with
                | Some n -> n
                | None -> default_seed)
            | None -> default_seed
          in
          Some (make ~seed ~rate:r ()))

(* splitmix64 finalizer: a full-avalanche bijection on 64 bits. *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let key_of floats =
  List.fold_left
    (fun acc f -> mix (Int64.logxor acc (Int64.bits_of_float f)))
    0x9e3779b97f4a7c15L floats

(* The top 53 bits of the hash as a uniform draw in [0, 1). *)
let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let decide plan ~attempt ~key =
  if plan.rate <= 0.0 then None
  else begin
    let h =
      mix
        (Int64.logxor plan.seed
           (mix (Int64.logxor key (mix (Int64.of_int attempt)))))
    in
    if unit_float h >= plan.rate then None
    else
      let n = List.length plan.kinds in
      let i = Int64.to_int (Int64.rem (Int64.shift_right_logical (mix h) 1) (Int64.of_int n)) in
      Some (List.nth plan.kinds i)
  end

let kind_name = function Raise -> "raise" | Nan -> "nan" | Timeout -> "timeout"

(* ------------------------------------------------------------------ *)
(* I/O fault injection — the same pure-decision discipline applied to the
   byte layer (verdict cache commits, socket frame writes). Kept separate
   from the solver plan so a campaign can run with solver faults only, I/O
   faults only, or both, each under its own seed and rate. *)

type io_kind = Short_write | Enospc | Eintr

type io_plan = { io_seed : int64; io_rate : float; io_kinds : io_kind list }

exception Io_injected of io_kind * string

let default_io_kinds = [ Short_write; Enospc; Eintr ]

let make_io ?(kinds = default_io_kinds) ~seed ~rate () =
  {
    io_seed = Int64.of_int seed;
    io_rate = clamp_rate rate;
    io_kinds = (if kinds = [] then default_io_kinds else kinds);
  }

let io_of_env () =
  match Sys.getenv_opt "XCV_IO_FAULT_RATE" with
  | None -> None
  | Some s -> (
      match float_of_string_opt s with
      | None -> None
      | Some r when r <= 0.0 -> None
      | Some r ->
          let seed =
            match Sys.getenv_opt "XCV_IO_FAULT_SEED" with
            | Some s -> (
                match int_of_string_opt s with
                | Some n -> n
                | None -> default_seed)
            | None -> default_seed
          in
          Some (make_io ~seed ~rate:r ()))

(* Distinct stream constant from the solver plan's decide, so a shared seed
   does not correlate solver and I/O faults. *)
let io_decide plan ~attempt ~key =
  if plan.io_rate <= 0.0 then None
  else begin
    let h =
      mix
        (Int64.logxor
           (Int64.logxor plan.io_seed 0x10fa_17edL)
           (mix (Int64.logxor key (mix (Int64.of_int attempt)))))
    in
    if unit_float h >= plan.io_rate then None
    else
      let n = List.length plan.io_kinds in
      let i =
        Int64.to_int
          (Int64.rem (Int64.shift_right_logical (mix h) 1) (Int64.of_int n))
      in
      Some (List.nth plan.io_kinds i)
  end

let io_kind_name = function
  | Short_write -> "short-write"
  | Enospc -> "enospc"
  | Eintr -> "eintr"

let key_of_string s =
  let h = ref 0x9e3779b97f4a7c15L in
  String.iter
    (fun c -> h := mix (Int64.logxor !h (Int64.of_int (Char.code c))))
    s;
  !h
