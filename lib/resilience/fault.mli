(** Deterministic fault injection for solver calls.

    The resilience layer (error isolation, retry with fuel escalation,
    checkpoint/resume) needs a test substrate that makes solver calls fail
    on demand, repeatably, and independently of scheduling. This module
    provides it: a {e plan} (seed, rate, enabled kinds) and a pure decision
    function keyed on a caller-supplied identity (the solver hashes the box
    bounds) plus the retry attempt number.

    Because the decision is a pure function of [(seed, key, attempt)] — no
    shared mutable PRNG state — the same campaign faults the same boxes at
    every worker count, which is what lets the test suite demand that paint
    logs under fault injection stay deterministic. Including the attempt
    number means a retry of a faulted call re-rolls the dice, so bounded
    retry policies can be shown to recover.

    The environment hook: [XCV_FAULT_RATE] (a probability in [0, 1];
    unset or 0 disables injection) and [XCV_FAULT_SEED] (an integer;
    defaults to a fixed constant) configure the plan picked up by
    {!Icp.default_config}, so any campaign — CLI, tests, benches — can be
    run under faults without code changes. *)

type kind =
  | Raise  (** the solver call raises {!Injected} *)
  | Nan  (** the solver returns a δ-sat model whose coordinates are NaN *)
  | Timeout  (** the solver reports fuel exhaustion without doing work *)

type plan = {
  seed : int64;
  rate : float;  (** per-call fault probability, clamped to [0, 1] *)
  kinds : kind list;  (** non-empty; the faulted call's kind is hashed *)
}

(** Raised by a solver call the plan decided to fault with {!Raise}. *)
exception Injected of string

(** All three kinds — what {!of_env} enables. *)
val default_kinds : kind list

(** [make ~seed ~rate ()] builds a plan with all (or the given) kinds. *)
val make : ?kinds:kind list -> seed:int -> rate:float -> unit -> plan

(** The seed used when [XCV_FAULT_SEED] is unset. *)
val default_seed : int

(** The [XCV_FAULT_RATE] / [XCV_FAULT_SEED] hook; [None] when the rate is
    unset, unparsable, or not positive. *)
val of_env : unit -> plan option

(** [key_of floats] folds a list of floats (e.g. box bounds) into a stable
    64-bit identity, bit-exact in the inputs. *)
val key_of : float list -> int64

(** [decide plan ~attempt ~key] — [Some kind] if this (call, attempt) is to
    be faulted. Pure: same plan, key and attempt always decide alike. *)
val decide : plan -> attempt:int -> key:int64 -> kind option

val kind_name : kind -> string
