(** Deterministic fault injection for solver calls.

    The resilience layer (error isolation, retry with fuel escalation,
    checkpoint/resume) needs a test substrate that makes solver calls fail
    on demand, repeatably, and independently of scheduling. This module
    provides it: a {e plan} (seed, rate, enabled kinds) and a pure decision
    function keyed on a caller-supplied identity (the solver hashes the box
    bounds) plus the retry attempt number.

    Because the decision is a pure function of [(seed, key, attempt)] — no
    shared mutable PRNG state — the same campaign faults the same boxes at
    every worker count, which is what lets the test suite demand that paint
    logs under fault injection stay deterministic. Including the attempt
    number means a retry of a faulted call re-rolls the dice, so bounded
    retry policies can be shown to recover.

    The environment hook: [XCV_FAULT_RATE] (a probability in [0, 1];
    unset or 0 disables injection) and [XCV_FAULT_SEED] (an integer;
    defaults to a fixed constant) configure the plan picked up by
    {!Icp.default_config}, so any campaign — CLI, tests, benches — can be
    run under faults without code changes. *)

type kind =
  | Raise  (** the solver call raises {!Injected} *)
  | Nan  (** the solver returns a δ-sat model whose coordinates are NaN *)
  | Timeout  (** the solver reports fuel exhaustion without doing work *)

type plan = {
  seed : int64;
  rate : float;  (** per-call fault probability, clamped to [0, 1] *)
  kinds : kind list;  (** non-empty; the faulted call's kind is hashed *)
}

(** Raised by a solver call the plan decided to fault with {!Raise}. *)
exception Injected of string

(** All three kinds — what {!of_env} enables. *)
val default_kinds : kind list

(** [make ~seed ~rate ()] builds a plan with all (or the given) kinds. *)
val make : ?kinds:kind list -> seed:int -> rate:float -> unit -> plan

(** The seed used when [XCV_FAULT_SEED] is unset. *)
val default_seed : int

(** The [XCV_FAULT_RATE] / [XCV_FAULT_SEED] hook; [None] when the rate is
    unset, unparsable, or not positive. *)
val of_env : unit -> plan option

(** [key_of floats] folds a list of floats (e.g. box bounds) into a stable
    64-bit identity, bit-exact in the inputs. *)
val key_of : float list -> int64

(** [decide plan ~attempt ~key] — [Some kind] if this (call, attempt) is to
    be faulted. Pure: same plan, key and attempt always decide alike. *)
val decide : plan -> attempt:int -> key:int64 -> kind option

val kind_name : kind -> string

(** {1 I/O fault injection}

    The same pure-decision discipline applied to the byte layer: the verdict
    cache's commit writes and the service protocol's frame writes consult an
    {!io_plan} before touching the file descriptor, so torn cache entries,
    full disks and interrupted writes are injectable deterministically —
    which is what lets the [@service] gate demand that a cache survives a
    kill mid-commit at any seed. A separate plan type (not {!plan}) so
    solver faults and I/O faults are independently seeded and rated.

    Environment hook: [XCV_IO_FAULT_RATE] / [XCV_IO_FAULT_SEED], mirroring
    the solver-fault hook. *)

type io_kind =
  | Short_write
      (** only a prefix of the buffer reaches the file before the writer
          dies — the torn-entry case recovery must absorb *)
  | Enospc  (** the write fails cleanly with ENOSPC; nothing is written *)
  | Eintr
      (** the write is interrupted before any byte lands; a retry (which
          re-rolls the decision) is expected to succeed *)

type io_plan = {
  io_seed : int64;
  io_rate : float;  (** per-write fault probability, clamped to [0, 1] *)
  io_kinds : io_kind list;  (** non-empty *)
}

(** Raised by a faulted I/O operation, carrying the kind and a description
    of the operation (for [Enospc] and unrecovered [Short_write]s). *)
exception Io_injected of io_kind * string

val default_io_kinds : io_kind list

val make_io : ?kinds:io_kind list -> seed:int -> rate:float -> unit -> io_plan

(** The [XCV_IO_FAULT_RATE] / [XCV_IO_FAULT_SEED] hook; [None] when the
    rate is unset, unparsable, or not positive. *)
val io_of_env : unit -> io_plan option

(** [io_decide plan ~attempt ~key] — [Some kind] if this (write, attempt) is
    to be faulted. Pure, and decorrelated from {!decide} under a shared
    seed. Including [attempt] means retries of an [Eintr]-faulted write
    re-roll the dice. *)
val io_decide : io_plan -> attempt:int -> key:int64 -> io_kind option

val io_kind_name : io_kind -> string

(** [key_of_string s] folds bytes (e.g. the serialized cache entry about to
    be committed) into a stable 64-bit identity. *)
val key_of_string : string -> int64
