(* Cross-process fault tolerance for sharded campaigns.

   The supervisor owns nothing about campaigns — it is parameterised over
   [spawn], which forks (or fork/execs) one shard and returns its pid.
   That keeps the policy testable in-process: the kill-a-shard test spawns
   children with Unix.fork and SIGKILLs one of them, and the CLI spawns
   real `campaign --shard i/N` processes through the same interface.

   Restart policy: a shard that dies (non-zero exit or a signal) is
   relaunched with [resume:true], pointing it back at its own checkpoint —
   the torn-tail repair plus per-pair resume in Verify.shard_campaign make
   the restart pick up exactly where the dead process left off. Each shard
   has its own restart budget; exhausting it aborts the whole campaign
   (remaining shards are SIGTERMed and reaped) because a merge would fail
   on the incomplete shard anyway. *)

type event =
  | Started of { shard : int; pid : int; restart : int }
  | Died of { shard : int; pid : int; status : Unix.process_status }
  | Restarting of { shard : int; restart : int }
  | Gave_up of { shard : int }

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

exception Gave_up_on of int

(* Drain every terminated child without blocking: the supervisor must not
   leave zombies behind on the abort path (exiting-0 stragglers and
   grandchildren reparented our way would otherwise linger until the whole
   process exits). ECHILD means the table is clean. *)
let reap_stragglers () =
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> ()
    | _ -> go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let supervise ~count ?(max_restarts = 3) ?(on_event = fun (_ : event) -> ())
    ~spawn () =
  if count <= 0 then invalid_arg "Shard_supervisor.supervise: count <= 0";
  (* pid -> shard, plus per-shard restart counters. *)
  let of_pid = Hashtbl.create 16 in
  let restarts = Array.make count 0 in
  let launch ~shard ~resume =
    let pid = spawn ~shard ~resume in
    Hashtbl.replace of_pid pid shard;
    on_event (Started { shard; pid; restart = restarts.(shard) });
    pid
  in
  let rec waitpid_retry pid =
    match Unix.waitpid [] pid with
    | r -> r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid
  in
  let kill_all () =
    Hashtbl.iter
      (fun pid _ -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
      of_pid;
    Hashtbl.iter
      (fun pid _ ->
        try ignore (waitpid_retry pid) with Unix.Unix_error _ -> ())
      of_pid;
    Hashtbl.reset of_pid;
    reap_stragglers ()
  in
  try
    for shard = 0 to count - 1 do
      ignore (launch ~shard ~resume:false)
    done;
    let live = ref count in
    while !live > 0 do
      match Unix.wait () with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | pid, status -> (
          match Hashtbl.find_opt of_pid pid with
          | None -> () (* not ours — e.g. a grandchild reparented our way;
                          already reaped by the wait itself *)
          | Some shard -> (
              Hashtbl.remove of_pid pid;
              match status with
              | Unix.WEXITED 0 -> decr live
              | status ->
                  on_event (Died { shard; pid; status });
                  if restarts.(shard) >= max_restarts then (
                    on_event (Gave_up { shard });
                    kill_all ();
                    raise (Gave_up_on shard))
                  else (
                    restarts.(shard) <- restarts.(shard) + 1;
                    on_event (Restarting { shard; restart = restarts.(shard) });
                    ignore (launch ~shard ~resume:true))))
    done;
    reap_stragglers ();
    Ok (Array.fold_left ( + ) 0 restarts)
  with
  | Gave_up_on shard ->
      Error
        (Printf.sprintf
           "shard %d died %d times in a row — giving up (see its checkpoint \
            for the completed prefix); remaining shards were terminated"
           shard (max_restarts + 1))
  | e ->
      kill_all ();
      raise e
