(* Cross-process fault tolerance for sharded campaigns.

   The supervisor owns nothing about campaigns — it is parameterised over
   [spawn], which forks (or fork/execs) one shard and returns its pid.
   That keeps the policy testable in-process: the kill-a-shard test spawns
   children with Unix.fork and SIGKILLs one of them, and the CLI spawns
   real `campaign --shard i/N` processes through the same interface.

   Restart policy: a shard that dies (non-zero exit or a signal) is
   relaunched with [resume:true], pointing it back at its own checkpoint —
   the torn-tail repair plus per-pair resume in Verify.shard_campaign make
   the restart pick up exactly where the dead process left off. Each shard
   has its own restart budget; exhausting it aborts the whole campaign
   (remaining shards are SIGTERMed and reaped) because a merge would fail
   on the incomplete shard anyway. *)

type event =
  | Started of { shard : int; pid : int; restart : int }
  | Died of { shard : int; pid : int; status : Unix.process_status }
  | Restarting of { shard : int; restart : int }
  | Gave_up of { shard : int }

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

let supervise ~count ?(max_restarts = 3) ?(on_event = fun (_ : event) -> ())
    ~spawn () =
  if count <= 0 then invalid_arg "Shard_supervisor.supervise: count <= 0";
  (* pid -> shard, plus per-shard restart counters. *)
  let of_pid = Hashtbl.create 16 in
  let restarts = Array.make count 0 in
  let launch ~shard ~resume =
    let pid = spawn ~shard ~resume in
    Hashtbl.replace of_pid pid shard;
    on_event (Started { shard; pid; restart = restarts.(shard) });
    pid
  in
  let kill_all () =
    Hashtbl.iter
      (fun pid _ -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
      of_pid;
    Hashtbl.iter
      (fun pid _ -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      of_pid;
    Hashtbl.reset of_pid
  in
  try
    for shard = 0 to count - 1 do
      ignore (launch ~shard ~resume:false)
    done;
    let live = ref count in
    while !live > 0 do
      let pid, status = Unix.wait () in
      match Hashtbl.find_opt of_pid pid with
      | None -> () (* not ours — e.g. a grandchild reparented our way *)
      | Some shard -> (
          Hashtbl.remove of_pid pid;
          match status with
          | Unix.WEXITED 0 -> decr live
          | status ->
              on_event (Died { shard; pid; status });
              if restarts.(shard) >= max_restarts then (
                on_event (Gave_up { shard });
                kill_all ();
                raise Exit)
              else (
                restarts.(shard) <- restarts.(shard) + 1;
                on_event (Restarting { shard; restart = restarts.(shard) });
                ignore (launch ~shard ~resume:true)))
    done;
    Ok (Array.fold_left ( + ) 0 restarts)
  with
  | Exit ->
      Error
        (Printf.sprintf
           "a shard died %d times in a row — giving up (see the per-shard \
            checkpoint for the completed prefix)"
           (max_restarts + 1))
  | e ->
      kill_all ();
      raise e
