(** Cross-process restart policy for sharded campaigns.

    {!Verify.shard_campaign} makes a shard resumable from its own
    checkpoint after being killed at any point (flushed entry lines, torn
    tails repaired on resume); this module supplies the missing half —
    noticing that a shard process died and relaunching it with resume
    semantics. It is deliberately campaign-agnostic: [spawn] is the only
    coupling, so tests drive it with [Unix.fork]ed children and the CLI
    with fork/exec'd [campaign --shard i/N] processes. *)

(** Lifecycle notifications, for logging and for tests that need a
    deterministic hook (e.g. "kill shard 0 once it has started"). *)
type event =
  | Started of { shard : int; pid : int; restart : int }
  | Died of { shard : int; pid : int; status : Unix.process_status }
  | Restarting of { shard : int; restart : int }
  | Gave_up of { shard : int }

val status_to_string : Unix.process_status -> string

(** [supervise ~count ~spawn ()] launches shards [0..count-1] via
    [spawn ~shard ~resume:false] and waits for all of them. A shard that
    exits non-zero or dies on a signal is relaunched with [resume:true],
    up to [max_restarts] times (default 3) {e per shard}; past that the
    remaining shards are SIGTERMed, reaped, and the whole run fails — an
    incomplete shard would only fail later at merge time.

    Returns [Ok total_restarts] once every shard has exited 0, or
    [Error msg] on give-up — the message names the shard that exhausted its
    budget, so the operator knows which checkpoint to inspect. [spawn] must
    return the pid of a direct child (the supervisor reaps with
    [Unix.wait]); on both exits the supervisor drains every remaining
    zombie ([WNOHANG] sweep), so a caller never inherits unreaped
    children. *)
val supervise :
  count:int ->
  ?max_restarts:int ->
  ?on_event:(event -> unit) ->
  spawn:(shard:int -> resume:bool -> int) ->
  unit ->
  (int, string) result
