(** Interval enclosures for the transcendental functions appearing in density
    functional approximations (exp, log in SCAN and PBE; atan in VWN;
    Lambert W in AM05), plus sin/cos/tanh for engine completeness.

    Monotone functions are enclosed by evaluating libm at the endpoints and
    widening by two ulps (libm is faithfully rounded to within 1 ulp on every
    platform we target; the second ulp is margin). sin/cos use quadrant
    analysis. Every function follows the natural-domain semantics of
    {!Interval}: inputs outside the real domain contribute no values. *)

val exp : Interval.t -> Interval.t
val log : Interval.t -> Interval.t
val sin : Interval.t -> Interval.t
val cos : Interval.t -> Interval.t
val tanh : Interval.t -> Interval.t
val atan : Interval.t -> Interval.t

(** Strictly-inside lower bounds on pi/2 and pi (two ulps below
    round-to-nearest), for guards that must certify containment in a
    principal monotone branch regardless of libm rounding direction. *)
val half_pi_lo : float

val pi_lo : float

(** Above this argument magnitude (2^20) {!sin} and {!cos} give up on
    quadrant analysis and return [[-1, 1]]: the critical-point containment
    test reconstructs [k*2pi] with error proportional to the argument, which
    would otherwise exceed its slack and silently drop interior extrema. *)
val trig_arg_cutoff : float

(** Principal branch [W0]; domain [[-1/e, inf)]. The numeric kernel
    {!Lambert.w0} is certified post-hoc: the returned bounds are widened
    until the defining residual [w e^w - x] brackets zero. *)
val lambert_w : Interval.t -> Interval.t

(** The NaN-robust bound policy of {!lambert_w}, exposed for tests: a NaN
    certification falls back to the sound extreme for its side ([-1.0] for
    the lower bound, [+inf] for the upper), never producing an inverted
    (empty) interval from a failed kernel evaluation. *)
val certified_w_bounds : lo:float -> hi:float -> Interval.t

(** {1 Inverses for backward (HC4) propagation} *)

(** [atanh i]: inverse of {!tanh}, domain [(-1, 1)]. *)
val atanh : Interval.t -> Interval.t

(** [tan_on_principal i]: inverse of {!atan}; [i] is clipped to
    [(-pi/2, pi/2)]. *)
val tan_on_principal : Interval.t -> Interval.t

(** [w_inverse i] is [{ w e^w | w in i }], the inverse image map for
    Lambert W backward propagation (monotone on [w >= -1], which covers the
    range of [W0]). *)
val w_inverse : Interval.t -> Interval.t

(** [asin_hull i]: hull of the preimage of [i] under sin restricted to
    [[-pi/2, pi/2]] — used only as a (sound, weak) backward contractor. *)
val asin_hull : Interval.t -> Interval.t

val acos_hull : Interval.t -> Interval.t
