(** Interval enclosures for the transcendental functions appearing in density
    functional approximations (exp, log in SCAN and PBE; atan in VWN;
    Lambert W in AM05), plus sin/cos/tanh for engine completeness.

    Monotone functions are enclosed by evaluating libm at the endpoints and
    widening by two ulps (libm is faithfully rounded to within 1 ulp on every
    platform we target; the second ulp is margin); on narrow inputs the
    result is met with the dd kernel of {!Certified}, which carries a
    derived error bound instead of the blanket margin. sin/cos use quadrant
    analysis on a certified-reduced argument, valid up to 2^52 — the old
    2^20 collapse to [[-1, 1]] is gone. Every function follows the
    natural-domain semantics of {!Interval}: inputs outside the real domain
    contribute no values. *)

(** {1 Dispatch mode} *)

(** [`Certified] (the default) uses the dd kernels where they help;
    [`Legacy] restores the pre-kernel behavior byte-for-byte. The bench
    harness flips this to measure enclosure-width and expansion deltas. *)
val set_mode : [ `Certified | `Legacy ] -> unit

val current_mode : unit -> [ `Certified | `Legacy ]

(** The pre-certified-kernel implementations, kept verbatim as the "old"
    side of the differential oracle and the bench baseline (lossy escapes
    included: the 2^20 trig cutoff lives on here as
    [Legacy.trig_arg_cutoff]). *)
module Legacy : sig
  val exp : Interval.t -> Interval.t
  val log : Interval.t -> Interval.t
  val sin : Interval.t -> Interval.t
  val cos : Interval.t -> Interval.t
  val trig_arg_cutoff : float
  val lambert_w : Interval.t -> Interval.t
  val atanh : Interval.t -> Interval.t
  val w_inverse : Interval.t -> Interval.t
  val pow_rat : Interval.t -> Rat.t -> Interval.t
end

(** {1 Enclosures} *)

val exp : Interval.t -> Interval.t
val log : Interval.t -> Interval.t
val sin : Interval.t -> Interval.t
val cos : Interval.t -> Interval.t
val tanh : Interval.t -> Interval.t
val atan : Interval.t -> Interval.t

(** Strictly-inside lower bounds on pi/2 and pi (two ulps below
    round-to-nearest), for guards that must certify containment in a
    principal monotone branch regardless of libm rounding direction. *)
val half_pi_lo : float

val pi_lo : float

(** Principal branch [W0]; domain [[-1/e, inf)]. The numeric kernel
    {!Lambert.w0} is certified post-hoc: the returned bounds are widened
    (mixed absolute+relative stride, doubling) until the defining residual
    [w e^w - x] brackets zero; a failed certification is repaired by the
    certified kernel ({!Certified.w_lo} / {!Certified.w_hi}) instead of
    escaping to [-1] / [+inf]. *)
val lambert_w : Interval.t -> Interval.t

(** The NaN-robust bound policy of {!lambert_w}, exposed for tests: a NaN
    certification falls back to the sound extreme for its side ([-1.0] for
    the lower bound, [+inf] for the upper), never producing an inverted
    (empty) interval from a failed kernel evaluation. *)
val certified_w_bounds : lo:float -> hi:float -> Interval.t

(** [pow_rat i r]: enclosure of [x^r] for the exact rational [r]. Integer
    rationals delegate to {!Interval.pow_int} (bit-identical to the
    integer-exponent path); non-integer rationals account for the rounding
    of [r] to a float — which [Interval.pow i (Rat.to_float r)] silently
    drops — and go through the certified exp/log kernel when [i] is
    narrow. Nonnegative-base semantics, as {!Interval.pow}. *)
val pow_rat : Interval.t -> Rat.t -> Interval.t

(** [enclose_rat r]: tight interval enclosure of the exact rational [r]
    (one outward-rounded division of the exact components). For
    derivative rules that must account for the rounding of a rational
    constant. *)
val enclose_rat : Rat.t -> Interval.t

(** {1 Inverses for backward (HC4) propagation} *)

(** [atanh i]: inverse of {!tanh}, domain [(-1, 1)]. Evaluated as an
    interval composition (per-operation outward rounding), so the
    enclosure covers the composite's true rounding budget — it may be
    slightly {e wider} than the old under-covering two-ulp widening. *)
val atanh : Interval.t -> Interval.t

(** [tan_on_principal i]: inverse of {!atan}; [i] is clipped to
    [(-pi/2, pi/2)]. *)
val tan_on_principal : Interval.t -> Interval.t

(** [w_inverse i] is [{ w e^w | w in i }], the inverse image map for
    Lambert W backward propagation (monotone on [w >= -1], which covers the
    range of [W0]). Interval composition, like {!atanh}. *)
val w_inverse : Interval.t -> Interval.t

(** [asin_hull i]: hull of the preimage of [i] under sin restricted to
    [[-pi/2, pi/2]] — used only as a (sound, weak) backward contractor. *)
val asin_hull : Interval.t -> Interval.t

val acos_hull : Interval.t -> Interval.t
