(* Certified transcendental kernels.

   Strategy (Dandelion-style): evaluate a polynomial approximation of the
   function in double-double (dd) arithmetic, then return an interval whose
   radius is a *derived* bound on everything that can have gone wrong:

     radius = truncation (static, from the Taylor remainder on the reduced
              domain)
            + dd rounding (static, from per-operation dd error bounds)
            + reduction defect (dynamic, |k| times the representation error
              of the two-term constant)

   with one extra outward ulp per endpoint for the final double roundings.
   Every bound below is derived in a comment next to the constant that
   carries it and re-checked by the differential oracle in
   test/test_transcend.ml. The kernels rely only on IEEE-754 double
   arithmetic with correctly rounded + - * / and fma (the same trust base as
   Interval's directed rounding via pred/succ); libm enters only inside a
   certified argument window (trig endpoint values, already covered by the
   repo-wide faithful-rounding assumption stated in transcend.mli). *)

(* ------------------------------------------------------------------ *)
(* Error-free transforms and double-double arithmetic                  *)
(* ------------------------------------------------------------------ *)

(* Knuth two_sum: s + e = a + b exactly. *)
let two_sum a b =
  let s = a +. b in
  let b' = s -. a in
  let e = (a -. (s -. b')) +. (b -. b') in
  (s, e)

(* Fast path valid when |a| >= |b|. *)
let quick_two_sum a b =
  let s = a +. b in
  (s, b -. (s -. a))

(* p + e = a * b exactly (glibc fma is correctly rounded). *)
let two_prod a b =
  let p = a *. b in
  (p, Float.fma a b (-.p))

(* dd addition (the accurate variant): relative error <= 3 * 2^-106
   (Joldes-Muller-Popescu). *)
let dd_add (xh, xl) (yh, yl) =
  let sh, se = two_sum xh yh in
  let th, te = two_sum xl yl in
  let c = se +. th in
  let vh, vl = quick_two_sum sh c in
  let w = te +. vl in
  quick_two_sum vh w

let dd_neg (h, l) = (-.h, -.l)
let dd_sub x y = dd_add x (dd_neg y)

(* dd multiplication: relative error <= 7 * 2^-106. *)
let dd_mul (xh, xl) (yh, yl) =
  let ph, pe = two_prod xh yh in
  let pe = pe +. ((xh *. yl) +. (xl *. yh)) in
  quick_two_sum ph pe

(* dd division (one Newton correction): relative error <= 15 * 2^-106. *)
let dd_div (xh, xl) (yh, yl) =
  let th = xh /. yh in
  let rh, rl = dd_sub (xh, xl) (dd_mul (th, 0.0) (yh, yl)) in
  let tl = (rh +. rl) /. yh in
  quick_two_sum th tl

let dd_scale2 (h, l) = (2.0 *. h, 2.0 *. l) (* exact *)

(* ------------------------------------------------------------------ *)
(* Outward rounding of a dd value with an explicit error radius        *)
(* ------------------------------------------------------------------ *)

(* Truth lies in [vh + vl - err, vh + vl + err]. Assembling an endpoint
   takes two roundings: d = RN(vl -/+ e) and c = RN(vh + d). The second
   satisfies pred (RN x) <= x <= succ (RN x) unconditionally, so a single
   outward step covers it exactly; the first perturbs by at most
   2^-53 |d| <= 2^-53 (|vl| + e) <= 2^-105 |vh| + 2^-53 e, which the 25%
   inflation of [err] absorbs whenever err >= 2^-103 |vh| — both call
   sites (exp, log) carry a relative error floor >= 5e-20, far above
   that, plus an absolute floor where the value can vanish. One step
   instead of two is what makes the kernel strictly tighter than the
   legacy blanket two-ulp margin at every point input. *)
let enclose_dd (vh, vl) err =
  let e = 1.25 *. err in
  let lo = Interval.lo_down (vh +. (vl -. e)) in
  let hi = Interval.hi_up (vh +. (vl +. e)) in
  Interval.of_bounds lo hi

let ulp_of v =
  let a = Float.abs v in
  Float.succ a -. a

(* ------------------------------------------------------------------ *)
(* Dispatch counters                                                   *)
(* ------------------------------------------------------------------ *)

let m_exp_kernel = Obs.Metrics.counter "transcend.exp.kernel"
let m_exp_fallback = Obs.Metrics.counter "transcend.exp.fallback"
let m_log_kernel = Obs.Metrics.counter "transcend.log.kernel"
let m_log_fallback = Obs.Metrics.counter "transcend.log.fallback"
let m_pow_rat_kernel = Obs.Metrics.counter "transcend.pow_rat.kernel"
let m_pow_rat_int = Obs.Metrics.counter "transcend.pow_rat.int"
let m_trig_reduced = Obs.Metrics.counter "transcend.trig.reduced"
let m_trig_fallback = Obs.Metrics.counter "transcend.trig.fallback"
let m_w_kernel = Obs.Metrics.counter "transcend.w.kernel"
let m_w_fallback = Obs.Metrics.counter "transcend.w.fallback"
let count_exp_kernel () = Obs.Metrics.incr m_exp_kernel 1
let count_exp_fallback () = Obs.Metrics.incr m_exp_fallback 1
let count_log_kernel () = Obs.Metrics.incr m_log_kernel 1
let count_log_fallback () = Obs.Metrics.incr m_log_fallback 1
let count_pow_rat_kernel () = Obs.Metrics.incr m_pow_rat_kernel 1
let count_pow_rat_int () = Obs.Metrics.incr m_pow_rat_int 1
let count_trig_reduced () = Obs.Metrics.incr m_trig_reduced 1
let count_trig_fallback () = Obs.Metrics.incr m_trig_fallback 1
let count_w_kernel () = Obs.Metrics.incr m_w_kernel 1
let count_w_fallback () = Obs.Metrics.incr m_w_fallback 1

(* ------------------------------------------------------------------ *)
(* Constants                                                           *)
(* ------------------------------------------------------------------ *)

(* ln 2 as a dd: hi is the round-to-nearest double, lo the round-to-nearest
   of the remainder; |ln 2 - (hi + lo)| <= 1/2 ulp(lo) < 2^-106 < 2e-32. *)
let ln2_hi = 0x1.62e42fefa39efp-1
let ln2_lo = 0x1.abc9e3b39803fp-56
let inv_ln2 = 0x1.71547652b82fep+0

(* 2*pi as a dd, same construction: both components are exactly twice the
   canonical (pi_hi, pi_lo) pair, so |2pi - (hi + lo)| <= ulp(lo) < 6e-32.
   two_pi_defect leaves a x2 margin on top. *)
let two_pi_hi = 0x1.921fb54442d18p+2
let two_pi_lo = 0x1.1a62633145c07p-52
let two_pi_defect = 1e-31
let inv_two_pi = 0x1.45f306dc9c883p-3

(* ------------------------------------------------------------------ *)
(* exp                                                                 *)
(* ------------------------------------------------------------------ *)

(* Reduced domain: x = k ln2 + r with |r| <= ln2/2 + slack < 0.35, so
   exp x = 2^k exp r with exp r in [0.70, 1.42].

   Degree-13 Taylor truncation: |exp r - T13(r)| <= |r|^14/14! * e^|r|
   <= 0.35^14 / 8.7e10 * 1.42 < 6e-18, i.e. < 8.6e-18 relative.

   Reduction error (r_dd vs exact x - k ln2): |k| <= 1024, so the ln2
   defect contributes <= 1024 * 2e-32 ~ 2.1e-29; the dd compression of the
   exact three-term sum adds <= 6 * 3 * 2^-106 * 0.35 < 1e-31. Through
   exp's Lipschitz constant (<= 1.42 on the branch) that is < 3.1e-29
   absolute on exp r, i.e. < 4.5e-29 relative.

   dd Horner rounding: 13 iterations of (mul + add), each <= 10 * 2^-106
   relative on magnitudes <= 1.42: < 3e-30 relative. Coefficient dd's are
   computed by dd_div from exact integers (13! < 2^53), each within
   15 * 2^-106 relative — absorbed by the same budget.

   Total relative error of the dd result: < 1e-17; exp_rel_err = 2e-17
   doubles it for margin. *)
let exp_rel_err = 2e-17

(* Beyond these the 2^k scaling of the dd tail would denormalize (low) or
   the value leaves double range (high); the kernel clamps to the edge.
   At 709 the scaled value peaks at 1.415 * 2^1023 ~ 1.27e308 < max_float,
   and at -670 the dd tail stays normal (2.6e-291 * 2^-53 > DBL_MIN). *)
let exp_dom_lo = -670.0
let exp_dom_hi = 709.0

let exp_coeffs =
  (* 1/i!, i = 13 .. 0, as dd (Horner order). *)
  let fact = Array.make 14 1.0 in
  for i = 1 to 13 do
    fact.(i) <- fact.(i - 1) *. float_of_int i (* exact: 13! < 2^53 *)
  done;
  Array.init 14 (fun j -> dd_div (1.0, 0.0) (fact.(13 - j), 0.0))

(* Certified enclosure of exp(t) for a dd argument with its own absolute
   error bound [terr]; requires exp_dom_lo <= t <= exp_dom_hi. *)
let exp_core (th, tl) terr =
  let k = Float.round (th *. inv_ln2) in
  (* r = t - k*ln2 in dd: every product below is exact (two_prod; k is an
     integer < 2^11), so only the dd_add compressions round. *)
  let p, pe = two_prod k ln2_hi in
  let q, qe = two_prod k ln2_lo in
  let s, se = two_sum th (-.p) in
  let r = dd_sub (dd_add (s, se) (tl -. pe, 0.0)) (q, qe) in
  let acc = ref exp_coeffs.(0) in
  for j = 1 to 13 do
    acc := dd_add (dd_mul !acc r) exp_coeffs.(j)
  done;
  let vh, vl = !acc in
  let ik = int_of_float k in
  let sh = Float.ldexp vh ik and sl = Float.ldexp vl ik in
  (* Argument uncertainty terr maps through the Lipschitz constant of exp
     on the result's scale: |d exp| = exp <= 1.01 * |sh| relative-wise. *)
  let err = Float.abs sh *. (exp_rel_err +. (1.01 *. terr)) in
  enclose_dd (sh, sl) err

(* Enclosure of exp at a single endpoint, sound for every float. *)
let exp_point x =
  if x < exp_dom_lo then begin
    count_exp_fallback ();
    Interval.of_bounds 0.0 (Interval.sup (exp_core (exp_dom_lo, 0.0) 0.0))
  end
  else if x > exp_dom_hi then begin
    count_exp_fallback ();
    Interval.of_bounds
      (Interval.inf (exp_core (exp_dom_hi, 0.0) 0.0))
      Float.infinity
  end
  else begin
    count_exp_kernel ();
    exp_core (x, 0.0) 0.0
  end

let exp i =
  if Interval.is_empty i then Interval.empty
  else if Interval.is_point i then begin
    let e = exp_point (Interval.inf i) in
    Interval.of_bounds (Float.max 0.0 (Interval.inf e)) (Interval.sup e)
  end
  else
    Interval.of_bounds
      (Float.max 0.0 (Interval.inf (exp_point (Interval.inf i))))
      (Interval.sup (exp_point (Interval.sup i)))

(* ------------------------------------------------------------------ *)
(* log                                                                 *)
(* ------------------------------------------------------------------ *)

(* x = 2^e m with m in [sqrt(1/2), sqrt 2): ln x = e ln2 + 2 atanh(u),
   u = (m-1)/(m+1), |u| <= 0.1716, s = u^2 <= 0.02945.

   atanh(u)/u = sum s^j/(2j+1), truncated after j = 11: the tail is
   <= s^12 / (25 (1 - s)) < 1.8e-20 on a series value >= 1, i.e.
   < 1.8e-20 relative on the 2u * P(s) part — and when e = 0 that part IS
   the result, so the bound stays relative to the result; when e <> 0,
   |result| >= ln2 - 0.35 > 0.34 >= |2uP|, so it still covers. m - 1 is
   exact (Sterbenz), m + 1 is an exact dd (two_sum), dd_div adds
   15 * 2^-106 relative, Horner rounding ~ 11 * 10 * 2^-106: all dwarfed
   by the truncation term. log_rel_err = 5e-20 more than covers the sum.

   The e * ln2 term carries |e| <= 1074 times the ln2 defect plus dd
   rounding on magnitude <= 745: < 1e-28 absolute = log_abs_err. *)
let log_rel_err = 5e-20
let log_abs_err = 1e-28
let sqrt_half = 0.7071067811865476

let log_coeffs =
  (* 1/(2j+1), j = 11 .. 0, as dd (Horner order in s = u^2). *)
  Array.init 12 (fun j -> dd_div (1.0, 0.0) (float_of_int (2 * (11 - j) + 1), 0.0))

(* dd log of a positive finite float, with its derived error radius. *)
let log_core x =
  let m0, e0 = Float.frexp x in
  let m, e = if m0 < sqrt_half then (m0 *. 2.0, e0 - 1) else (m0, e0) in
  let num = m -. 1.0 in
  let den = two_sum m 1.0 in
  let u = dd_div (num, 0.0) den in
  let s = dd_mul u u in
  let acc = ref log_coeffs.(0) in
  for j = 1 to 11 do
    acc := dd_add (dd_mul !acc s) log_coeffs.(j)
  done;
  let logm = dd_scale2 (dd_mul u !acc) in
  let ef = float_of_int e in
  let p, pe = two_prod ef ln2_hi in
  let q, qe = two_prod ef ln2_lo in
  let v = dd_add (dd_add (p, pe) (q, qe)) logm in
  let vh, _ = v in
  (v, (Float.abs vh *. log_rel_err) +. log_abs_err)

let log_point x =
  count_log_kernel ();
  let v, err = log_core x in
  enclose_dd v err

let log i =
  let i = Interval.meet i Interval.nonneg in
  if Interval.is_empty i then Interval.empty
  else begin
    let a = Interval.inf i and b = Interval.sup i in
    let lo =
      if a = 0.0 then Float.neg_infinity else Interval.inf (log_point a)
    in
    let hi =
      if b = 0.0 then Float.neg_infinity
      else if b = Float.infinity then Float.infinity
      else Interval.sup (log_point b)
    in
    Interval.of_bounds lo hi
  end

(* ------------------------------------------------------------------ *)
(* pow with exact rational exponents                                   *)
(* ------------------------------------------------------------------ *)

(* x^r = exp(r * ln x). Rat components are < 2^53 so float_of_int is
   exact and dd_div gives r to 15 * 2^-106 relative; the exponent
   rounding that the float path ignores (|ln x| * ulp(p/q)/2, up to ~100
   ulps of the result for extreme bases) never enters. The absolute error
   of t = r_dd * ln_dd(x) maps to the same relative error on exp t. *)
let pow_rat_point x rat =
  (* x > 0 finite. *)
  let y = dd_div (float_of_int (Rat.num rat), 0.0) (float_of_int (Rat.den rat), 0.0) in
  let lx, lerr = log_core x in
  let th, tl = dd_mul y lx in
  let yh, _ = y in
  (* |d(y * lx)| <= |y| * lerr + |t| * (rel of y and of the product). *)
  let terr = (Float.abs yh *. lerr) +. (Float.abs th *. 1e-30) in
  if th < exp_dom_lo then begin
    count_exp_fallback ();
    Interval.of_bounds 0.0 (Interval.sup (exp_core (exp_dom_lo, 0.0) 0.0))
  end
  else if th > exp_dom_hi then begin
    count_exp_fallback ();
    Interval.of_bounds
      (Interval.inf (exp_core (exp_dom_hi, 0.0) 0.0))
      Float.infinity
  end
  else exp_core (th, tl) terr

let pow_rat i rat =
  match Rat.to_int rat with
  | Some n ->
      count_pow_rat_int ();
      Interval.pow_int i n
  | None ->
      (* Non-integer rational: nonnegative bases only, matching the
         natural-domain semantics of Interval.pow. *)
      let i = Interval.meet i Interval.nonneg in
      if Interval.is_empty i then Interval.empty
      else begin
        count_pow_rat_kernel ();
        let pos = Rat.sign rat > 0 in
        let at x =
          (* endpoint enclosure of x^r for x >= 0 *)
          if x = 0.0 then
            if pos then Interval.zero
            else Interval.of_bounds Float.infinity Float.infinity
          else if x = Float.infinity then
            if pos then Interval.of_bounds Float.infinity Float.infinity
            else Interval.zero
          else pow_rat_point x rat
        in
        let ia = at (Interval.inf i) and ib = at (Interval.sup i) in
        (* monotone increasing for r > 0, decreasing for r < 0 *)
        if pos then
          Interval.of_bounds
            (Float.max 0.0 (Interval.inf ia))
            (Interval.sup ib)
        else
          Interval.of_bounds
            (Float.max 0.0 (Interval.inf ib))
            (Interval.sup ia)
      end

(* ------------------------------------------------------------------ *)
(* Certified argument reduction and trig                               *)
(* ------------------------------------------------------------------ *)

(* Up to 2^52 the nearest-integer quotient k is exactly representable and
   two_prod keeps every partial product exact. *)
let trig_reduce_max = 0x1p52

(* r = x - k * (two_pi_hi + two_pi_lo) assembled in dd from exact partial
   products; the only approximation is the constant's defect (|k| *
   two_pi_defect) plus two dd_add compressions on magnitudes <= 5:
   < 2e-31. *)
let reduce_shifted k x =
  if k = 0.0 then ((x, 0.0), 0.0)
  else begin
    let p, pe = two_prod k two_pi_hi in
    let q, qe = two_prod k two_pi_lo in
    let s, se = two_sum x (-.p) in
    let r = dd_sub (dd_add (s, se) (-.pe, 0.0)) (q, qe) in
    (r, (Float.abs k *. two_pi_defect) +. 1e-30)
  end

let reduce_two_pi x =
  let k = Float.round (x *. inv_two_pi) in
  let (rh, rl), err = reduce_shifted k x in
  (rh, rl, err)

(* Containment slack for the critical-point test on the *reduced*
   argument: the reduced interval lives in [-16, 16], where reconstructing
   phase + k * two_pi (|k| <= 3) costs at most 3 ulp(16) for the float
   products plus 3 * two_pi_lo's own defect — under 6e-15. 2e-14 keeps a
   x3 margin and is seven orders of magnitude tighter than the old
   absolute 1e-9, so extrema sitting ~1e-10 outside the interval are no
   longer hulled in (regression-tested). *)
let crit_slack = 2e-14

let trig_certified f phase_of_max i =
  if Interval.is_empty i then Interval.empty
  else begin
    let a = Interval.inf i and b = Interval.sup i in
    if
      (not (Interval.is_bounded i))
      || Interval.mag i > trig_reduce_max
    then begin
      count_trig_fallback ();
      Interval.make (-1.0) 1.0
    end
    else if Interval.width i >= two_pi_hi then begin
      (* spans (at least within an ulp) a full period: [-1,1] is exact *)
      count_trig_reduced ();
      Interval.make (-1.0) 1.0
    end
    else begin
      count_trig_reduced ();
      (* One shift k for both endpoints, so the reduced interval is the
         original translated by exactly k * 2pi. *)
      let k = Float.round (Interval.midpoint i *. inv_two_pi) in
      let (rah, ral), ea = reduce_shifted k a in
      let (rbh, rbl), eb = reduce_shifted k b in
      let arg_a = rah +. ral and arg_b = rbh +. rbl in
      (* Endpoint argument uncertainty: reduction error + the rounding of
         collapsing the dd to one double (zero on the k = 0 path). *)
      let da = ea +. (if ral = 0.0 then 0.0 else ulp_of arg_a) in
      let db = eb +. (if rbl = 0.0 then 0.0 else ulp_of arg_b) in
      let fa = f arg_a and fb = f arg_b in
      (* f is 1-Lipschitz: argument slack widens the value directly; two
         pred/succ steps cover libm's faithful rounding as before. *)
      let lo = ref (Float.min (fa -. da) (fb -. db)) in
      let hi = ref (Float.max (fa +. da) (fb +. db)) in
      let r_lo = arg_a -. da and r_hi = arg_b +. db in
      let check_extremum phase value =
        let k0 = Float.floor ((r_lo -. crit_slack -. phase) /. two_pi_hi) in
        let hit = ref false in
        for j = 0 to 3 do
          let x = phase +. ((k0 +. float_of_int j) *. two_pi_hi) in
          if x >= r_lo -. crit_slack && x <= r_hi +. crit_slack then
            hit := true
        done;
        if !hit then begin
          lo := Float.min !lo value;
          hi := Float.max !hi value
        end
      in
      check_extremum phase_of_max 1.0;
      check_extremum (phase_of_max +. (two_pi_hi /. 2.0)) (-1.0);
      Interval.of_bounds
        (Float.max (-1.0) (Interval.lo_down (Interval.lo_down !lo)))
        (Float.min 1.0 (Interval.hi_up (Interval.hi_up !hi)))
    end
  end

let sin i = trig_certified Stdlib.sin (two_pi_hi /. 4.0) i
let cos i = trig_certified Stdlib.cos 0.0 i

(* ------------------------------------------------------------------ *)
(* Lambert W                                                           *)
(* ------------------------------------------------------------------ *)

(* Certification is by interval evaluation of the residual w e^w - x with
   the certified exp: no float-rounding doubt, no NaN. g(w) = w e^w is
   strictly increasing on [-1, inf) (the range of W0), so
     sup g(w) <= x  ==>  w <= W0(x)
     inf g(w) >= x  ==>  w >= W0(x). *)
let residual_le w x =
  let g = Interval.mul (Interval.point w) (exp_point w) in
  Interval.sup g <= x

let residual_ge w x =
  let g = Interval.mul (Interval.point w) (exp_point w) in
  Interval.inf g >= x

(* Mixed absolute+relative stride, doubled each miss (the satellite-1 fix:
   the old pure-relative step was a no-op at w = 0). 60 doublings of the
   base stride exceed any finite distance that matters before the sound
   per-side fallback applies. *)
let stride w = 1e-16 *. (1.0 +. Float.abs w)

let w_lo x =
  if x = Float.infinity then Float.infinity
  else begin
    let guess =
      let w = Lambert.w0 x in
      if Float.is_nan w then -1.0 else Float.max (-1.0) w
    in
    let rec down w step steps =
      if w <= -1.0 then -1.0 (* inf of W0's range: sound floor *)
      else if residual_le w x then w
      else if steps > 60 then -1.0
      else down (Float.max (-1.0) (w -. step)) (2.0 *. step) (steps + 1)
    in
    count_w_kernel ();
    if guess <= -1.0 then
      (* At the branch point the floor itself is the certified bound. *)
      -1.0
    else down guess (stride guess) 0
  end

(* Upper-bound start near the branch point, where the float kernel NaNs:
   W0(x) <= -1 + p with p = sqrt(2 (e x + 1)), evaluated in interval
   arithmetic (upper end). The certification loop *checks* the start, so
   the series inequality need not be trusted — a failed check just steps
   upward. *)
let e_one = lazy (exp Interval.one)

let branch_hi_guess x =
  let e1 = Lazy.force e_one in
  let t =
    Interval.add
      (Interval.mul (Interval.point 2.0)
         (Interval.mul (Interval.point x) e1))
      (Interval.point 2.0)
  in
  let t = Interval.meet t Interval.nonneg in
  if Interval.is_empty t then -1.0
  else -1.0 +. Interval.sup (Interval.pow t 0.5)

let w_hi x =
  if x = Float.infinity then Float.infinity
  else begin
    let w0 = Lambert.w0 x in
    let guess =
      if Float.is_nan w0 then branch_hi_guess x else Float.max (-1.0) w0
    in
    let rec up w step steps =
      if residual_ge w x then w
      else if steps > 60 then begin
        count_w_fallback ();
        Float.infinity
      end
      else up (w +. step) (2.0 *. step) (steps + 1)
    in
    count_w_kernel ();
    up guess (stride guess) 0
  end

let branch_point = -.Stdlib.exp (-1.0)

let lambert_w i =
  let dom = Interval.make branch_point Float.infinity in
  let i = Interval.meet i dom in
  if Interval.is_empty i then Interval.empty
  else
    Interval.of_bounds
      (w_lo (Interval.inf i))
      (w_hi (Interval.sup i))
