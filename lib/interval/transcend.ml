let down2 x = Interval.lo_down (Interval.lo_down x)
let up2 x = Interval.hi_up (Interval.hi_up x)

(* Monotone increasing function on the whole real line. *)
let mono_inc f i =
  if Interval.is_empty i then Interval.empty
  else Interval.of_bounds (down2 (f (Interval.inf i))) (up2 (f (Interval.sup i)))

(* ------------------------------------------------------------------ *)
(* Dispatch mode                                                       *)
(* ------------------------------------------------------------------ *)

(* `Certified (the default) routes through the dd kernels of {!Certified}
   where they help and keeps the libm path elsewhere; `Legacy restores the
   pre-kernel behavior byte-for-byte (including the 2^20 trig cutoff and
   the NaN -> +inf Lambert escape). The Legacy submodule below is the
   differential-oracle and bench reference either way. *)
let mode : [ `Certified | `Legacy ] ref = ref `Certified

let set_mode m = mode := m
let current_mode () = !mode

(* Certified point kernels engage on narrow intervals only — midpoint
   (mean-value form) and endpoint evaluations are where sub-libm-width
   enclosures change contraction; on wide intervals the enclosure width is
   dominated by the function's variation and the cheaper libm path loses
   nothing. *)
let ulp_of v =
  let a = Float.abs v in
  Float.succ a -. a

let narrow i =
  Interval.is_bounded i
  && (Interval.is_point i
     || Interval.width i <= 32.0 *. ulp_of (Interval.mag i))

(* ------------------------------------------------------------------ *)
(* Legacy reference implementations                                    *)
(* ------------------------------------------------------------------ *)

let half_pi_hi = up2 (2.0 *. Stdlib.atan 1.0)

(* Strictly-inside lower bounds on pi/2 and pi: two ulps below the
   round-to-nearest values, so [[-half_pi_lo, half_pi_lo]] is certainly
   contained in the principal monotone branch of sin whatever way libm's
   atan rounded. The HC4 backward guards for Sin/Cos use these. *)
let half_pi_lo = down2 (2.0 *. Stdlib.atan 1.0)
let pi_lo = down2 (4.0 *. Stdlib.atan 1.0)
let two_pi = 8.0 *. Stdlib.atan 1.0
let branch_point = -.Stdlib.exp (-1.0)

module Legacy = struct
  (* The pre-certified-kernel enclosures, kept verbatim as the "old"
     side of the differential oracle (test_transcend) and the bench
     baseline. Everything here is sound but deliberately lossy: trig
     collapses to [-1, 1] past 2^20, Lambert upper bounds escape to +inf
     when the float kernel NaNs, and atanh / w_inverse under-account
     their libm roundings with a blanket two-ulp widening. *)

  let exp i =
    if Interval.is_empty i then Interval.empty
    else begin
      (* exp never goes below 0: clamp the widened lower bound. *)
      let lo = Float.max 0.0 (down2 (Stdlib.exp (Interval.inf i))) in
      let hi = up2 (Stdlib.exp (Interval.sup i)) in
      Interval.of_bounds lo hi
    end

  let log i =
    let i = Interval.meet i Interval.nonneg in
    if Interval.is_empty i then Interval.empty
    else begin
      let lo =
        if Interval.inf i = 0.0 then Float.neg_infinity
        else down2 (Stdlib.log (Interval.inf i))
      in
      let hi =
        if Interval.sup i = 0.0 then Float.neg_infinity
        else up2 (Stdlib.log (Interval.sup i))
      in
      Interval.of_bounds lo hi
    end

  (* Beyond this magnitude the critical-point test below reconstructs
     [k * two_pi] with an error (~ |x| ulps of two_pi, i.e. about one ulp
     of x) that can exceed both its fixed 1e-9 slack and the distance of a
     true extremum from the interval's edge, so an interior maximum can be
     missed entirely. 2^20 leaves the reconstruction error (~ 6e-11)
     comfortably under the slack. *)
  let trig_arg_cutoff = 1048576.0 (* 2^20 *)

  let trig f critical_shift i =
    if Interval.is_empty i then Interval.empty
    else if Interval.width i >= two_pi || Interval.mag i > trig_arg_cutoff
    then Interval.make (-1.0) 1.0
    else begin
      let a = Interval.inf i and b = Interval.sup i in
      let fa = f a and fb = f b in
      let lo = ref (Float.min fa fb) and hi = ref (Float.max fa fb) in
      let check_extremum phase value =
        let k0 = Float.floor ((a -. phase) /. two_pi) in
        let candidates = [ k0; k0 +. 1.0; k0 +. 2.0 ] in
        if
          List.exists
            (fun k ->
              let x = phase +. (k *. two_pi) in
              x >= a -. 1e-9 && x <= b +. 1e-9)
            candidates
        then begin
          lo := Float.min !lo value;
          hi := Float.max !hi value
        end
      in
      check_extremum critical_shift 1.0;
      check_extremum (critical_shift +. (two_pi /. 2.0)) (-1.0);
      Interval.of_bounds
        (Float.max (-1.0) (down2 !lo))
        (Float.min 1.0 (up2 !hi))
    end

  let sin i = trig Stdlib.sin (two_pi /. 4.0) i
  let cos i = trig Stdlib.cos 0.0 i

  let certify_lo x =
    if x = Float.neg_infinity then Float.nan
    else if x = Float.infinity then Float.infinity
    else begin
      let w = Lambert.w0 x in
      if Float.is_nan w then Float.nan
      else begin
        let rec widen w steps =
          if steps > 64 then w -. (1e-9 *. (1.0 +. Float.abs w))
          else if Lambert.residual w x <= 0.0 then w
          else widen (Interval.lo_down (w -. (Float.abs w *. 1e-15))) (steps + 1)
        in
        Float.max (-1.0) (widen (Interval.lo_down w) 0)
      end
    end

  let certify_hi x =
    if x = Float.infinity then Float.infinity
    else begin
      let w = Lambert.w0 x in
      if Float.is_nan w then Float.nan
      else begin
        let rec widen w steps =
          if steps > 64 then w +. (1e-9 *. (1.0 +. Float.abs w))
          else if Lambert.residual w x >= 0.0 then w
          else widen (Interval.hi_up (w +. (Float.abs w *. 1e-15))) (steps + 1)
        in
        widen (Interval.hi_up w) 0
      end
    end

  let certified_w_bounds ~lo ~hi =
    let lo = if Float.is_nan lo then -1.0 else lo in
    let hi = if Float.is_nan hi then Float.infinity else hi in
    Interval.of_bounds lo hi

  let lambert_w i =
    let dom = Interval.make branch_point Float.infinity in
    let i = Interval.meet i dom in
    if Interval.is_empty i then Interval.empty
    else
      certified_w_bounds
        ~lo:(certify_lo (Interval.inf i))
        ~hi:(certify_hi (Interval.sup i))

  let atanh i =
    let dom = Interval.make (-1.0) 1.0 in
    let i = Interval.meet i dom in
    if Interval.is_empty i then Interval.empty
    else begin
      let f x =
        if x <= -1.0 then Float.neg_infinity
        else if x >= 1.0 then Float.infinity
        else 0.5 *. Stdlib.log ((1.0 +. x) /. (1.0 -. x))
      in
      Interval.of_bounds (down2 (f (Interval.inf i))) (up2 (f (Interval.sup i)))
    end

  let w_inverse i =
    let i = Interval.meet i (Interval.make (-1.0) Float.infinity) in
    if Interval.is_empty i then Interval.empty
    else mono_inc (fun w -> w *. Stdlib.exp w) i

  let pow_rat i r =
    match Rat.to_int r with
    | Some n -> Interval.pow_int i n
    | None -> Interval.pow i (Rat.to_float r)
end

(* ------------------------------------------------------------------ *)
(* Monotone kernels: libm enclosure, met with the dd kernel when narrow *)
(* ------------------------------------------------------------------ *)

(* The meet of two sound enclosures is sound and (by construction) never
   wider than the legacy one — the containment oracle relies on this. *)

let exp i =
  let base = Legacy.exp i in
  match !mode with
  | `Legacy -> base
  | `Certified ->
      if Interval.is_empty base then base
      else if narrow i then Interval.meet base (Certified.exp i)
      else begin
        Certified.count_exp_fallback ();
        base
      end

let log i =
  let base = Legacy.log i in
  match !mode with
  | `Legacy -> base
  | `Certified ->
      if Interval.is_empty base then base
      else if narrow i then Interval.meet base (Certified.log i)
      else begin
        Certified.count_log_fallback ();
        base
      end

let tanh i =
  if Interval.is_empty i then Interval.empty
  else begin
    let lo = Float.max (-1.0) (down2 (Stdlib.tanh (Interval.inf i))) in
    let hi = Float.min 1.0 (up2 (Stdlib.tanh (Interval.sup i))) in
    Interval.of_bounds lo hi
  end

let atan i =
  if Interval.is_empty i then Interval.empty
  else begin
    let lo = Float.max (-.half_pi_hi) (down2 (Stdlib.atan (Interval.inf i))) in
    let hi = Float.min half_pi_hi (up2 (Stdlib.atan (Interval.sup i))) in
    Interval.of_bounds lo hi
  end

(* ------------------------------------------------------------------ *)
(* sin / cos: certified argument reduction (no magnitude cutoff)       *)
(* ------------------------------------------------------------------ *)

(* The certified path reduces both endpoints by the same k with the
   two-term 2*pi (Certified.reduce_two_pi machinery), so quadrant
   analysis works for any |x| up to 2^52 — the old 2^20 collapse to
   [-1, 1] is gone. On the small-argument path (k = 0) the reduction is
   exact and the result coincides with the legacy analysis except for the
   critical-point slack, which is now a few ulps of the reduced argument
   (2e-14) instead of the old absolute 1e-9, so extrema slightly outside
   the interval no longer get hulled in. *)

(* Meeting with the legacy analysis keeps the small-argument enclosure at
   least as tight as before (the certified endpoint widening can exceed
   legacy's two value-ulps once a reduction actually happened) while the
   certified side supplies the nontrivial enclosure beyond the old
   cutoff, where legacy is [-1, 1]. *)
let sin i =
  match !mode with
  | `Legacy -> Legacy.sin i
  | `Certified -> Interval.meet (Legacy.sin i) (Certified.sin i)

let cos i =
  match !mode with
  | `Legacy -> Legacy.cos i
  | `Certified -> Interval.meet (Legacy.cos i) (Certified.cos i)

(* ------------------------------------------------------------------ *)
(* Lambert W                                                           *)
(* ------------------------------------------------------------------ *)

(* Certify a numeric W evaluation by widening until the residual of the
   defining equation brackets zero on both sides. The stride is mixed
   absolute+relative (a few ulps of w, whichever is larger) and doubles on
   every miss — the old pure-relative step [|w| * 1e-15] was a no-op at
   w = 0, spinning 64 iterations before escaping with an absolute 1e-9
   slack. A NaN return means the certification failed (float kernel NaN
   near the branch point, or stride exhausted) and the caller repairs it
   with the certified kernel. *)

let w_stride w = Float.max 1e-300 (Float.max (4.0 *. ulp_of w) (Float.abs w *. 4e-17))

let certify_lo x =
  if x = Float.neg_infinity then Float.nan
  else if x = Float.infinity then Float.infinity
  else begin
    let w = Lambert.w0 x in
    if Float.is_nan w then Float.nan
    else begin
      let rec widen w step steps =
        if steps > 64 then Float.nan
        else if Lambert.residual w x <= 0.0 then w
        else widen (Interval.lo_down (w -. step)) (2.0 *. step) (steps + 1)
      in
      let w0 = Interval.lo_down w in
      let r = widen w0 (w_stride w0) 0 in
      if Float.is_nan r then r else Float.max (-1.0) r
    end
  end

let certify_hi x =
  if x = Float.infinity then Float.infinity
  else begin
    let w = Lambert.w0 x in
    if Float.is_nan w then Float.nan
    else begin
      let rec widen w step steps =
        if steps > 64 then Float.nan
        else if Lambert.residual w x >= 0.0 then w
        else widen (Interval.hi_up (w +. step)) (2.0 *. step) (steps + 1)
      in
      let w0 = Interval.hi_up w in
      widen w0 (w_stride w0) 0
    end
  end

(* The NaN-robust bound policy for a failed certification, exposed for
   tests: the sound fallback differs per side — -1.0 (the infimum of W0's
   range) for the lower bound, +inf for the upper — because falling back
   to -1.0 on the upper side as well would invert the bounds and turn a
   nonempty image into the empty interval. In `Certified mode the dd
   kernel repairs the escape *before* this policy applies, so it only
   fires in `Legacy mode or if the kernel itself gives up. *)
let certified_w_bounds ~lo ~hi =
  let lo = if Float.is_nan lo then -1.0 else lo in
  let hi = if Float.is_nan hi then Float.infinity else hi in
  Interval.of_bounds lo hi

let lambert_w i =
  match !mode with
  | `Legacy -> Legacy.lambert_w i
  | `Certified ->
      let dom = Interval.make branch_point Float.infinity in
      let i = Interval.meet i dom in
      if Interval.is_empty i then Interval.empty
      else begin
        let lo_f = certify_lo (Interval.inf i) in
        let lo =
          if Float.is_nan lo_f then Certified.w_lo (Interval.inf i) else lo_f
        in
        let hi_f = certify_hi (Interval.sup i) in
        let hi =
          if Float.is_nan hi_f then Certified.w_hi (Interval.sup i) else hi_f
        in
        (* Both sides are sound; the meet guarantees the result is never
           wider than the legacy enclosure (whose stubborn-certification
           escapes the new stride sequence does not replicate exactly). *)
        Interval.meet (Legacy.lambert_w i) (certified_w_bounds ~lo ~hi)
      end

(* ------------------------------------------------------------------ *)
(* pow with rational exponents                                         *)
(* ------------------------------------------------------------------ *)

(* [Interval.pow i (Rat.to_float r)] silently drops the rounding of the
   exponent itself: x^fl(r) differs from x^r by up to
   |ln x| * ulp(r)/2 relative, which for extreme bases dwarfs the float
   path's one-ulp widening. The wide-interval path repairs this with an
   explicit relative widening; narrow intervals go through the dd kernel
   (exact rational exponent, no correction needed). *)
let widen_exponent_rounding i base p =
  if Interval.is_empty base then base
  else begin
    let ln_extreme x = if x > 0.0 && x < Float.infinity then Float.abs (Stdlib.log x) else 0.0 in
    let lnb = Float.max (ln_extreme (Interval.mig i)) (ln_extreme (Interval.mag i)) in
    let d = (lnb +. 1.0) *. ulp_of p in
    (* base is within [0, +inf] (nonneg-base semantics). *)
    let lo = Interval.inf base and hi = Interval.sup base in
    let lo =
      if Float.is_finite lo then Float.max 0.0 (Interval.lo_down (lo -. (lo *. d)))
      else lo
    in
    let hi = if hi = Float.infinity then hi else Interval.hi_up (hi +. (hi *. d)) in
    Interval.of_bounds lo hi
  end

let pow_rat i r =
  match Rat.to_int r with
  | Some n -> Interval.pow_int i n
  | None -> (
      match !mode with
      | `Legacy -> Legacy.pow_rat i r
      | `Certified ->
          let p = Rat.to_float r in
          let base = widen_exponent_rounding i (Interval.pow i p) p in
          if narrow i then Interval.meet base (Certified.pow_rat i r)
          else base)

(* Tight enclosure of an exact rational value: both components are < 2^53
   so float_of_int is exact and the one division is the only rounding.
   Used by derivative rules that must carry the exponent's rounding
   (d/dx x^r = r x^(r-1) with r exact, not fl(r)). *)
let enclose_rat r =
  Interval.div
    (Interval.point (float_of_int (Rat.num r)))
    (Interval.point (float_of_int (Rat.den r)))

(* ------------------------------------------------------------------ *)
(* Inverses                                                            *)
(* ------------------------------------------------------------------ *)

(* atanh as an interval composition: 0.5 * log((1 + x)/(1 - x)) with
   every operation outward-rounded, so the enclosure is sound for the
   composite's *actual* operation count — the old blanket two-ulp
   widening of the float formula under-covered its 3+ roundings near the
   domain edges. Monotone increasing, so endpoints suffice. *)
let atanh i =
  let dom = Interval.make (-1.0) 1.0 in
  let i = Interval.meet i dom in
  if Interval.is_empty i then Interval.empty
  else begin
    match !mode with
    | `Legacy -> Legacy.atanh i
    | `Certified ->
        let at x =
          if x <= -1.0 then Interval.point Float.neg_infinity
          else if x >= 1.0 then Interval.point Float.infinity
          else begin
            let px = Interval.point x in
            let q =
              Interval.div (Interval.add Interval.one px)
                (Interval.sub Interval.one px)
            in
            Interval.mul (Interval.point 0.5) (log q)
          end
        in
        Interval.of_bounds
          (Interval.inf (at (Interval.inf i)))
          (Interval.sup (at (Interval.sup i)))
  end

let tan_on_principal i =
  let dom = Interval.make (-.half_pi_hi) half_pi_hi in
  let i = Interval.meet i dom in
  if Interval.is_empty i then Interval.empty
  else begin
    let f x = Stdlib.tan x in
    let lo =
      if Interval.inf i <= -.half_pi_hi then Float.neg_infinity
      else down2 (f (Interval.inf i))
    in
    let hi =
      if Interval.sup i >= half_pi_hi then Float.infinity
      else up2 (f (Interval.sup i))
    in
    Interval.of_bounds lo hi
  end

(* w e^w, monotone increasing for w >= -1 (the range of W0), as an
   interval composition for the same reason as atanh: the float formula's
   two roundings plus libm's exp error exceeded the old two-ulp budget. *)
let w_inverse i =
  let i = Interval.meet i (Interval.make (-1.0) Float.infinity) in
  if Interval.is_empty i then Interval.empty
  else begin
    match !mode with
    | `Legacy -> Legacy.w_inverse i
    | `Certified ->
        let at w =
          if w = Float.infinity then Interval.point Float.infinity
          else Interval.mul (Interval.point w) (exp (Interval.point w))
        in
        Interval.of_bounds
          (Interval.inf (at (Interval.inf i)))
          (Interval.sup (at (Interval.sup i)))
  end

let asin_hull i =
  let i = Interval.meet i (Interval.make (-1.0) 1.0) in
  if Interval.is_empty i then Interval.empty
  else mono_inc Stdlib.asin i

let acos_hull i =
  let i = Interval.meet i (Interval.make (-1.0) 1.0) in
  if Interval.is_empty i then Interval.empty
  else
    (* acos is decreasing. *)
    Interval.of_bounds
      (down2 (Stdlib.acos (Interval.sup i)))
      (up2 (Stdlib.acos (Interval.inf i)))
