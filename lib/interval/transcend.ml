let down2 x = Interval.lo_down (Interval.lo_down x)
let up2 x = Interval.hi_up (Interval.hi_up x)

(* Monotone increasing function on the whole real line. *)
let mono_inc f i =
  if Interval.is_empty i then Interval.empty
  else Interval.of_bounds (down2 (f (Interval.inf i))) (up2 (f (Interval.sup i)))

let exp i =
  if Interval.is_empty i then Interval.empty
  else begin
    (* exp never goes below 0: clamp the widened lower bound. *)
    let lo = Float.max 0.0 (down2 (Stdlib.exp (Interval.inf i))) in
    let hi = up2 (Stdlib.exp (Interval.sup i)) in
    Interval.of_bounds lo hi
  end

let log i =
  let i = Interval.meet i Interval.nonneg in
  if Interval.is_empty i then Interval.empty
  else begin
    let lo =
      if Interval.inf i = 0.0 then Float.neg_infinity
      else down2 (Stdlib.log (Interval.inf i))
    in
    let hi =
      if Interval.sup i = 0.0 then Float.neg_infinity
      else up2 (Stdlib.log (Interval.sup i))
    in
    Interval.of_bounds lo hi
  end

let tanh i =
  if Interval.is_empty i then Interval.empty
  else begin
    let lo = Float.max (-1.0) (down2 (Stdlib.tanh (Interval.inf i))) in
    let hi = Float.min 1.0 (up2 (Stdlib.tanh (Interval.sup i))) in
    Interval.of_bounds lo hi
  end

let half_pi_hi = up2 (2.0 *. Stdlib.atan 1.0)

let atan i =
  if Interval.is_empty i then Interval.empty
  else begin
    let lo = Float.max (-.half_pi_hi) (down2 (Stdlib.atan (Interval.inf i))) in
    let hi = Float.min half_pi_hi (up2 (Stdlib.atan (Interval.sup i))) in
    Interval.of_bounds lo hi
  end

(* ------------------------------------------------------------------ *)
(* sin / cos via quadrant analysis                                     *)
(* ------------------------------------------------------------------ *)

let two_pi = 8.0 *. Stdlib.atan 1.0

(* Strictly-inside lower bounds on pi/2 and pi: two ulps below the
   round-to-nearest values, so [[-half_pi_lo, half_pi_lo]] is certainly
   contained in the principal monotone branch of sin whatever way libm's
   atan rounded. The HC4 backward guards for Sin/Cos use these. *)
let half_pi_lo = down2 (2.0 *. Stdlib.atan 1.0)
let pi_lo = down2 (4.0 *. Stdlib.atan 1.0)

(* Beyond this magnitude the critical-point test below reconstructs
   [k * two_pi] with an error (~ |x| ulps of two_pi, i.e. about one ulp of x)
   that can exceed both its fixed 1e-9 slack and the distance of a true
   extremum from the interval's edge, so an interior maximum can be missed
   entirely. 2^20 leaves the reconstruction error (~ 6e-11) comfortably
   under the slack. *)
let trig_arg_cutoff = 1048576.0 (* 2^20 *)

(* Conservative: if the interval spans at least a full period (with slack for
   the argument reduction error) return [-1, 1]; otherwise evaluate endpoints
   and check whether a critical point (odd multiple of pi/2) lies inside. *)
let trig f critical_shift i =
  if Interval.is_empty i then Interval.empty
  else if Interval.width i >= two_pi || Interval.mag i > trig_arg_cutoff then
    Interval.make (-1.0) 1.0
  else begin
    let a = Interval.inf i and b = Interval.sup i in
    let fa = f a and fb = f b in
    let lo = ref (Float.min fa fb) and hi = ref (Float.max fa fb) in
    (* Maxima of sin at pi/2 + 2k pi; of cos at 2k pi: critical_shift gives
       the phase of the maximum; minima are half a period away. *)
    let check_extremum phase value =
      (* Does a + phase + 2k*pi fall in [a, b] for some integer k? *)
      let k0 = Float.floor ((a -. phase) /. two_pi) in
      let candidates = [ k0; k0 +. 1.0; k0 +. 2.0 ] in
      if
        List.exists
          (fun k ->
            let x = phase +. (k *. two_pi) in
            (* Widen the containment test by the argument-reduction slack. *)
            x >= a -. 1e-9 && x <= b +. 1e-9)
          candidates
      then begin
        lo := Float.min !lo value;
        hi := Float.max !hi value
      end
    in
    check_extremum critical_shift 1.0;
    check_extremum (critical_shift +. (two_pi /. 2.0)) (-1.0);
    Interval.of_bounds
      (Float.max (-1.0) (down2 !lo))
      (Float.min 1.0 (up2 !hi))
  end

let sin i = trig Stdlib.sin (two_pi /. 4.0) i
let cos i = trig Stdlib.cos 0.0 i

(* ------------------------------------------------------------------ *)
(* Lambert W                                                           *)
(* ------------------------------------------------------------------ *)

let branch_point = -.Stdlib.exp (-1.0)

(* Certify a numeric W evaluation by widening until the residual of the
   defining equation brackets zero on both sides. *)
let certify_lo x =
  if x = Float.neg_infinity then Float.nan
  else if x = Float.infinity then Float.infinity
  else begin
    let w = Lambert.w0 x in
    if Float.is_nan w then Float.nan
    else begin
      let rec widen w steps =
        (* want a lower bound: residual at w must be <= 0 (W increasing). *)
        if steps > 64 then w -. (1e-9 *. (1.0 +. Float.abs w))
        else if Lambert.residual w x <= 0.0 then w
        else widen (Interval.lo_down (w -. (Float.abs w *. 1e-15))) (steps + 1)
      in
      Float.max (-1.0) (widen (Interval.lo_down w) 0)
    end
  end

let certify_hi x =
  if x = Float.infinity then Float.infinity
  else begin
    let w = Lambert.w0 x in
    if Float.is_nan w then Float.nan
    else begin
      let rec widen w steps =
        if steps > 64 then w +. (1e-9 *. (1.0 +. Float.abs w))
        else if Lambert.residual w x >= 0.0 then w
        else widen (Interval.hi_up (w +. (Float.abs w *. 1e-15))) (steps + 1)
      in
      widen (Interval.hi_up w) 0
    end
  end

(* A NaN certification means the numeric kernel failed (e.g. the
   branch-point series takes sqrt of a tiny negative), not that the image is
   empty. The sound fallback differs per side: -1.0 (the infimum of W0's
   range) for the lower bound, +inf for the upper — falling back to -1.0 on
   the upper side as well would invert the bounds and turn a nonempty image
   into the empty interval. *)
let certified_w_bounds ~lo ~hi =
  let lo = if Float.is_nan lo then -1.0 else lo in
  let hi = if Float.is_nan hi then Float.infinity else hi in
  Interval.of_bounds lo hi

let lambert_w i =
  let dom = Interval.make branch_point Float.infinity in
  let i = Interval.meet i dom in
  if Interval.is_empty i then Interval.empty
  else
    certified_w_bounds
      ~lo:(certify_lo (Interval.inf i))
      ~hi:(certify_hi (Interval.sup i))

(* ------------------------------------------------------------------ *)
(* Inverses                                                            *)
(* ------------------------------------------------------------------ *)

let atanh i =
  let dom = Interval.make (-1.0) 1.0 in
  let i = Interval.meet i dom in
  if Interval.is_empty i then Interval.empty
  else begin
    let f x =
      if x <= -1.0 then Float.neg_infinity
      else if x >= 1.0 then Float.infinity
      else 0.5 *. Stdlib.log ((1.0 +. x) /. (1.0 -. x))
    in
    Interval.of_bounds (down2 (f (Interval.inf i))) (up2 (f (Interval.sup i)))
  end

let tan_on_principal i =
  let dom = Interval.make (-.half_pi_hi) half_pi_hi in
  let i = Interval.meet i dom in
  if Interval.is_empty i then Interval.empty
  else begin
    let f x = Stdlib.tan x in
    let lo =
      if Interval.inf i <= -.half_pi_hi then Float.neg_infinity
      else down2 (f (Interval.inf i))
    in
    let hi =
      if Interval.sup i >= half_pi_hi then Float.infinity
      else up2 (f (Interval.sup i))
    in
    Interval.of_bounds lo hi
  end

let w_inverse i =
  (* w e^w, monotone increasing for w >= -1 (the range of W0). *)
  let i = Interval.meet i (Interval.make (-1.0) Float.infinity) in
  if Interval.is_empty i then Interval.empty
  else mono_inc (fun w -> w *. Stdlib.exp w) i

let asin_hull i =
  let i = Interval.meet i (Interval.make (-1.0) 1.0) in
  if Interval.is_empty i then Interval.empty
  else mono_inc Stdlib.asin i

let acos_hull i =
  let i = Interval.meet i (Interval.make (-1.0) 1.0) in
  if Interval.is_empty i then Interval.empty
  else
    (* acos is decreasing. *)
    Interval.of_bounds
      (down2 (Stdlib.acos (Interval.sup i)))
      (up2 (Stdlib.acos (Interval.inf i)))
