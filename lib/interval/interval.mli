(** Outward-rounded interval arithmetic over the extended reals.

    This is the arithmetic core of the δ-complete solver that stands in for
    dReal: every operation returns an interval guaranteed to contain the exact
    real image of its argument intervals. Soundness is obtained by computing
    each bound in round-to-nearest and then widening outward by one ulp per
    operation (two for the transcendental functions, whose libm
    implementations may be off by one ulp); this over-approximates true
    directed rounding but never under-approximates.

    Domain semantics follow SMT-over-reals: an operation applied outside its
    real domain contributes no values. [log [-2, -1]] is {!empty};
    [log [-1, 4]] is [[-inf, log 4]]. The empty interval propagates through
    every operation and is how the HC4 contractor signals an infeasible
    constraint.

    The interval with [lo = -inf, hi = +inf] is {!top}. Bounds are never NaN
    on non-empty intervals. *)

type t = private { lo : float; hi : float }

(** {1 Construction} *)

(** [make lo hi] with [lo <= hi]; infinite bounds allowed.
    @raise Invalid_argument if [lo > hi] or a bound is NaN. *)
val make : float -> float -> t

(** [point x] is the degenerate interval [[x, x]]. *)
val point : float -> t

val empty : t
val top : t
val zero : t
val one : t

(** [nonneg] is [[0, +inf)]. *)
val nonneg : t

(** {1 Predicates and accessors} *)

val is_empty : t -> bool
val is_point : t -> bool
val is_bounded : t -> bool
val inf : t -> float
val sup : t -> float
val mem : float -> t -> bool

(** [subset a b] holds when every element of [a] is in [b]. *)
val subset : t -> t -> bool

(** [width i] is [sup - inf]; [infinity] for unbounded, [0] for empty. *)
val width : t -> float

(** [midpoint i] is a finite point inside [i] (clamped for unbounded
    intervals).
    @raise Invalid_argument on the empty interval. *)
val midpoint : t -> float

(** [mag i] is the maximum absolute value; [mig i] the minimum. *)
val mag : t -> float

val mig : t -> float

val equal : t -> t -> bool

(** {1 Lattice} *)

val meet : t -> t -> t

(** [join] is the interval hull of the union. *)
val join : t -> t -> t

(** [split i] bisects at the midpoint. Both children are strictly narrower
    than [i] (the midpoint is nudged one ulp inward when rounding lands it on
    an endpoint), so splitting worklists always make progress.
    @raise Invalid_argument on empty or degenerate intervals, and on
    ulp-wide intervals with no float strictly between the bounds. *)
val split : t -> t * t

(** {1 Arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [div a b] is the interval hull of [{ x/y | x in a, y in b, y <> 0 }].
    Note that this is {e value} division: [div a {0}] is {!empty} because no
    quotient by a non-zero divisor exists. Backward constraint propagation
    must use {!div_rel} instead. *)
val div : t -> t -> t

(** [div_rel a b] over-approximates the relational projection
    [{ x | exists y in b, x*y in a }] — what the HC4 backward pass for a
    product needs. When [0] is in both [a] and [b] the result is {!top}
    ([x * 0 = 0] holds for every [x]); otherwise it agrees with {!div}, so
    [0] not in [a] with [b = {0}] is still (correctly) infeasible. *)
val div_rel : t -> t -> t

val abs : t -> t

(** [inv a] is [div one a]. *)
val inv : t -> t

(** [pow_int a n] handles even/odd/negative integer exponents exactly. *)
val pow_int : t -> int -> t

(** [pow a p] for arbitrary real exponent: non-integer exponents restrict the
    base to [[0, inf)] (real-valued power semantics). *)
val pow : t -> float -> t

(** [pow_expr a b] bounds [a^b] where the exponent is itself an interval. *)
val pow_expr : t -> t -> t

(** {1 Sign tests (for constraint checking)} *)

(** [certainly_le i c]: every element of [i] is [<= c]. Empty: vacuously
    true. *)
val certainly_le : t -> float -> bool

val certainly_lt : t -> float -> bool
val certainly_ge : t -> float -> bool
val certainly_gt : t -> float -> bool

(** [possibly_le i c]: some element of [i] is [<= c]. *)
val possibly_le : t -> float -> bool

val possibly_lt : t -> float -> bool

(** {1 Rounding helpers (shared with {!Transcend})} *)

(** [lo_down x] steps [x] one ulp toward [-inf]; [hi_up x] one ulp toward
    [+inf]. Infinities are fixed points. *)
val lo_down : float -> float

val hi_up : float -> float

(** [of_bounds lo hi] builds an interval from already-directed bounds,
    normalizing empty ([lo > hi]) to {!empty}. Used by {!Transcend}. *)
val of_bounds : float -> float -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
