open Expr

type env = (string * Interval.t) list

let apply_unop op i =
  match op with
  | Exp -> Transcend.exp i
  | Log -> Transcend.log i
  | Sin -> Transcend.sin i
  | Cos -> Transcend.cos i
  | Tanh -> Transcend.tanh i
  | Atan -> Transcend.atan i
  | Abs -> Interval.abs i
  | Lambert_w -> Transcend.lambert_w i

(* Shared forward rule for Pow nodes: an exact rational exponent goes
   through {!Transcend.pow_rat} (integer rationals delegate to pow_int
   bit-identically; non-integer ones account for the exponent's own
   rounding, which the float corner analysis silently drops); float or
   variable exponents keep the pow_expr corner analysis. Used by the
   tree walker, the HC4 tree revise and the compiled tape, so the three
   paths cannot drift. *)
let pow_node rat base expo =
  match rat with
  | Some r -> Transcend.pow_rat base r
  | None -> Interval.pow_expr base expo

let guard_status_of_interval rel gi =
  if Interval.is_empty gi then `False
  else
    match rel with
    | Le ->
        if Interval.certainly_le gi 0.0 then `True
        else if Interval.certainly_gt gi 0.0 then `False
        else `Unknown
    | Lt ->
        if Interval.certainly_lt gi 0.0 then `True
        else if Interval.certainly_ge gi 0.0 then `False
        else `Unknown

let eval env e =
  let go =
    memo_fix (fun self e ->
        match e.node with
        | Num r -> Interval.point (Rat.to_float r)
        | Flt f -> Interval.point f
        | Var v -> (
            match List.assoc_opt v env with
            | Some i -> i
            | None -> raise (Eval.Unbound_variable v))
        | Add terms ->
            List.fold_left
              (fun acc t -> Interval.add acc (self t))
              Interval.zero terms
        | Mul factors ->
            List.fold_left
              (fun acc f -> Interval.mul acc (self f))
              Interval.one factors
        | Pow (b, x) -> pow_node (as_rat x) (self b) (self x)
        | Apply (op, a) -> apply_unop op (self a)
        | Piecewise (branches, default) ->
            (* Accumulate the hull of every branch that may be active; stop
               as soon as a guard certainly holds (later branches dead). *)
            let rec walk acc = function
              | [] -> Interval.join acc (self default)
              | (g, body) :: rest -> (
                  match guard_status_of_interval g.grel (self g.cond) with
                  | `True -> Interval.join acc (self body)
                  | `False -> walk acc rest
                  | `Unknown -> walk (Interval.join acc (self body)) rest)
            in
            walk Interval.empty branches)
  in
  go e

let guard_status env g = guard_status_of_interval g.grel (eval env g.cond)
