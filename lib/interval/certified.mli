(** Certified transcendental kernels: double-double polynomial evaluation
    with statically derived error bounds.

    Each kernel evaluates its function in double-double (dd) arithmetic —
    a (hi, lo) pair of doubles built from error-free transforms — and
    returns an {!Interval.t} whose radius is the sum of

    - the {e truncation} error of the polynomial approximation, bounded
      statically from the Taylor remainder on the reduced domain,
    - the {e rounding} error of the dd evaluation, bounded statically from
      the per-operation dd error bounds (each dd add/mul carries a relative
      error of a few units of [2^-104]),
    - the {e reduction} error of the argument reduction, bounded
      dynamically from the actual intermediates (e.g. [|k|] times the
      defect of the two-term [2*pi] constant),

    outward-rounded by one ulp per endpoint. The per-kernel bound is
    exposed as a constant so callers (and the differential oracle in
    [test/test_transcend.ml]) can reason about it. The kernels never
    consult libm for the value they certify, so their enclosures are sound
    under the same trust model as {!Interval} itself (IEEE-754 arithmetic
    with correctly rounded [+ - * /] and [Float.fma]); trig additionally
    evaluates libm {e inside} a certified argument window.

    Kernels return sound enclosures on their stated domains and fall back
    to a conservative hull outside them; dispatch policy (when to run a
    kernel at all) lives in {!Transcend}. *)

(** {1 Per-kernel error bounds}

    Relative bounds apply to the dd value computed by the kernel; see the
    derivations in [certified.ml]. *)

(** Relative error of the dd [exp] kernel on [|x| <= 708]. *)
val exp_rel_err : float

(** Relative error of [log m] on the reduced mantissa, plus the absolute
    error of the [e * ln 2] term; [log_abs_err] absorbs the latter. *)
val log_rel_err : float

val log_abs_err : float

(** Defect bound of the two-term [2*pi] used by {!reduce_two_pi}:
    [|2*pi - (hi + lo)| <= two_pi_defect]. *)
val two_pi_defect : float

(** Arguments beyond this magnitude (2^52) are not reduced — the integer
    quotient [k] would no longer be exactly representable. *)
val trig_reduce_max : float

(** {1 Kernels} *)

(** [exp i]: certified enclosure of [e^x] over [i]. Sound on all inputs;
    the dd kernel engages for endpoint magnitudes [<= 708], outside it
    falls back to the conservative monotone hull [[0, +inf]] seeded with
    the representable extremes. *)
val exp : Interval.t -> Interval.t

(** [log i]: certified enclosure of [ln x] over [i ∩ [0, +inf)]. *)
val log : Interval.t -> Interval.t

(** [pow_rat i r]: certified enclosure of [x^r] for the {e exact} rational
    [r], over nonnegative bases (negative bases contribute no values,
    matching {!Interval.pow}). Unlike [Interval.pow i (Rat.to_float r)]
    this accounts for the rounding of [p/q] to a float — an error of up to
    [|ln x| * ulp(r)/2] relative, which for extreme bases exceeds the
    blanket one-ulp widening of the float path. Integer rationals are
    delegated to {!Interval.pow_int} (bit-identical to the existing
    integer path). *)
val pow_rat : Interval.t -> Rat.t -> Interval.t

(** [reduce_two_pi x]: certified Cody–Waite argument reduction. Returns
    [(r_hi, r_lo, err)] with [x - k * 2 * pi ∈ [r - err, r + err]] for the
    integer [k] chosen nearest [x / (2*pi)], where [r = r_hi + r_lo] in dd.
    Requires [|x| <= trig_reduce_max]. *)
val reduce_two_pi : float -> float * float * float

(** [sin i], [cos i]: quadrant analysis on the certified-reduced argument.
    Valid for any magnitude up to {!trig_reduce_max} — this is what
    retires the old [2^20] cutoff — and [[-1, 1]] beyond (or when the
    width spans a full period, where [[-1, 1]] is exact). *)
val sin : Interval.t -> Interval.t

val cos : Interval.t -> Interval.t

(** [lambert_w i]: principal-branch enclosure with no NaN escapes. Each
    bound is certified by bracketing the interval-evaluated residual
    [w e^w - x] (using the certified {!exp}), stepping outward with a
    mixed absolute+relative stride; near the branch point the initial
    guess comes from the [p = sqrt(2(e x + 1))] series evaluated in
    interval arithmetic, so [x] values where the float kernel NaNs still
    get finite bounds. *)
val lambert_w : Interval.t -> Interval.t

(** [w_lo x] / [w_hi x]: the per-side certified bounds backing
    {!lambert_w}, exposed for {!Transcend}'s escape-repair dispatch. *)
val w_lo : float -> float

val w_hi : float -> float

(** {1 Dispatch counters}

    Registered under [transcend.*]; incremented by the kernels and by
    {!Transcend}'s dispatch. *)

val count_exp_kernel : unit -> unit
val count_exp_fallback : unit -> unit
val count_log_kernel : unit -> unit
val count_log_fallback : unit -> unit
val count_pow_rat_kernel : unit -> unit
val count_pow_rat_int : unit -> unit
val count_trig_reduced : unit -> unit
val count_trig_fallback : unit -> unit
val count_w_kernel : unit -> unit
val count_w_fallback : unit -> unit
