type t = { lo : float; hi : float }

(* Empty is canonically [{lo = +inf; hi = -inf}]. *)
let empty = { lo = Float.infinity; hi = Float.neg_infinity }
let is_empty i = not (i.lo <= i.hi)

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg "Interval.make: malformed bounds";
  { lo; hi }

let point x = make x x
let top = { lo = Float.neg_infinity; hi = Float.infinity }
let zero = point 0.0
let one = point 1.0
let nonneg = { lo = 0.0; hi = Float.infinity }

let of_bounds lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then empty else { lo; hi }

let is_point i = i.lo = i.hi
let is_bounded i = (not (is_empty i)) && Float.is_finite i.lo && Float.is_finite i.hi
let inf i = i.lo
let sup i = i.hi
let mem x i = i.lo <= x && x <= i.hi
let subset a b = is_empty a || (b.lo <= a.lo && a.hi <= b.hi)

let width i = if is_empty i then 0.0 else i.hi -. i.lo

let midpoint i =
  if is_empty i then invalid_arg "Interval.midpoint: empty interval";
  if Float.is_finite i.lo && Float.is_finite i.hi then begin
    let m = 0.5 *. (i.lo +. i.hi) in
    if Float.is_finite m then m else (0.5 *. i.lo) +. (0.5 *. i.hi)
  end
  else if Float.is_finite i.lo then Float.max i.lo 1e150
  else if Float.is_finite i.hi then Float.min i.hi (-1e150)
  else 0.0

let mag i = if is_empty i then 0.0 else Float.max (Float.abs i.lo) (Float.abs i.hi)

let mig i =
  if is_empty i then 0.0
  else if i.lo > 0.0 then i.lo
  else if i.hi < 0.0 then -.i.hi
  else 0.0

let equal a b =
  (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)

let meet a b = of_bounds (Float.max a.lo b.lo) (Float.min a.hi b.hi)

let join a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let split i =
  if is_empty i || is_point i then invalid_arg "Interval.split";
  let m = midpoint i in
  (* For ulp-wide intervals the midpoint rounds onto an endpoint, which
     would hand back a child identical to the parent and never terminate a
     splitting worklist. Nudge one ulp inward; if no interior float exists
     the interval is not splittable at all. *)
  let m =
    if m <= i.lo then Float.succ i.lo
    else if m >= i.hi then Float.pred i.hi
    else m
  in
  if not (i.lo < m && m < i.hi) then
    invalid_arg "Interval.split: no float strictly inside";
  ({ lo = i.lo; hi = m }, { lo = m; hi = i.hi })

(* ------------------------------------------------------------------ *)
(* Outward rounding                                                    *)
(* ------------------------------------------------------------------ *)

let lo_down x = if Float.is_finite x then Float.pred x else x
let hi_up x = if Float.is_finite x then Float.succ x else x

(* ------------------------------------------------------------------ *)
(* Ring operations                                                     *)
(* ------------------------------------------------------------------ *)

let neg i = if is_empty i then empty else { lo = -.i.hi; hi = -.i.lo }

let add a b =
  if is_empty a || is_empty b then empty
  else of_bounds (lo_down (a.lo +. b.lo)) (hi_up (a.hi +. b.hi))

let sub a b = add a (neg b)

(* Endpoint product with the interval-arithmetic convention 0 * inf = 0
   (a zero endpoint means the factor can be exactly 0, and 0 times any finite
   approximant is 0). *)
let xmul x y = if x = 0.0 || y = 0.0 then 0.0 else x *. y

let mul a b =
  if is_empty a || is_empty b then empty
  else if (a.lo = 0.0 && a.hi = 0.0) || (b.lo = 0.0 && b.hi = 0.0) then
    (* {0} * Y = {0} exactly; skipping the outward widening here keeps
       identities like 0 * top = 0 crisp. *)
    { lo = 0.0; hi = 0.0 }
  else begin
    let p1 = xmul a.lo b.lo in
    let p2 = xmul a.lo b.hi in
    let p3 = xmul a.hi b.lo in
    let p4 = xmul a.hi b.hi in
    of_bounds
      (lo_down (Float.min (Float.min p1 p2) (Float.min p3 p4)))
      (hi_up (Float.max (Float.max p1 p2) (Float.max p3 p4)))
  end

let xdiv x y =
  if x = 0.0 then 0.0
  else if y = 0.0 then if x > 0.0 then Float.infinity else Float.neg_infinity
  else x /. y

let div a b =
  if is_empty a || is_empty b then empty
  else if b.lo = 0.0 && b.hi = 0.0 then empty (* no non-zero divisor *)
  else if b.lo < 0.0 && b.hi > 0.0 then
    (* Divisor straddles zero: the true set is a union of two rays; we return
       the hull, which is top unless the numerator is exactly 0. *)
    if a.lo = 0.0 && a.hi = 0.0 then zero else top
  else begin
    (* Divisor has constant sign (possibly with a zero endpoint). *)
    let q1 = xdiv a.lo b.lo in
    let q2 = xdiv a.lo b.hi in
    let q3 = xdiv a.hi b.lo in
    let q4 = xdiv a.hi b.hi in
    of_bounds
      (lo_down (Float.min (Float.min q1 q2) (Float.min q3 q4)))
      (hi_up (Float.max (Float.max q1 q2) (Float.max q3 q4)))
  end

(* Relational division, the projection the HC4 backward pass for products
   needs: [div_rel a b] over-approximates { x | exists y in b, x*y in a }.
   It differs from {!div} — the hull of pointwise quotients — exactly when
   [0] is in both arguments: x*0 = 0 holds for *every* x, so a zero divisor
   is no constraint at all rather than a contradiction. When [0] is not in
   [a], a zero divisor really is infeasible and {!div}'s answer (empty for
   b = {0}) is the right one. *)
let div_rel a b =
  if mem 0.0 a && mem 0.0 b then top else div a b

let inv a = div one a

let abs i =
  if is_empty i then empty
  else if i.lo >= 0.0 then i
  else if i.hi <= 0.0 then neg i
  else { lo = 0.0; hi = Float.max (-.i.lo) i.hi }

(* ------------------------------------------------------------------ *)
(* Powers                                                              *)
(* ------------------------------------------------------------------ *)

let pow_bound b x =
  (* Round-to-nearest power used for both bounds before widening. *)
  Eval.pow_float b x

let pow_int_pos i n =
  (* i^n for n >= 1. *)
  if n land 1 = 1 then
    (* Odd power: monotone increasing. *)
    of_bounds
      (lo_down (pow_bound i.lo (float_of_int n)))
      (hi_up (pow_bound i.hi (float_of_int n)))
  else begin
    (* Even power: behaves like |i|^n. *)
    let a = abs i in
    of_bounds
      (lo_down (pow_bound a.lo (float_of_int n)))
      (hi_up (pow_bound a.hi (float_of_int n)))
  end

let rec pow_int i n =
  if is_empty i then empty
  else if n = 0 then one
  else if n > 0 then pow_int_pos i n
  else inv (pow_int i (-n))

let pow_nonneg_base i p =
  (* i^p for real p, base restricted to [0, inf): monotone in the base. *)
  let i = meet i nonneg in
  if is_empty i then empty
  else if p = 0.0 then one
  else if p > 0.0 then
    of_bounds (lo_down (pow_bound i.lo p)) (hi_up (pow_bound i.hi p))
  else begin
    (* Decreasing; 0^p = +inf. *)
    let hi = if i.lo = 0.0 then Float.infinity else hi_up (pow_bound i.lo p) in
    let lo = lo_down (pow_bound i.hi p) in
    of_bounds lo hi
  end

let pow i p =
  if is_empty i then empty
  else if Float.is_integer p && Float.abs p <= 1073741823.0 then
    pow_int i (int_of_float p)
  else pow_nonneg_base i p

let pow_expr base expo =
  if is_empty base || is_empty expo then empty
  else if is_point expo then pow base expo.lo
  else begin
    (* Variable exponent: x^y = exp(y log x) on x > 0, plus the value at
       x = 0 (0^y = 0 for y > 0). Conservative: monotone corner analysis. *)
    let b = meet base nonneg in
    if is_empty b then empty
    else begin
      let corner bx px = pow_bound bx px in
      let cs =
        [
          corner b.lo expo.lo;
          corner b.lo expo.hi;
          corner b.hi expo.lo;
          corner b.hi expo.hi;
        ]
        |> List.filter (fun v -> not (Float.is_nan v))
      in
      match cs with
      | [] -> empty
      | c :: rest ->
          let lo = List.fold_left Float.min c rest in
          let hi = List.fold_left Float.max c rest in
          (* Interior extrema of x^y on a box lie on the edges x in {b.lo,
             b.hi} or y in {expo.lo, expo.hi}, where the function is monotone
             in the remaining variable — corners suffice except across x = 1,
             which corner evaluation also covers since x^y is monotone in y
             for fixed x. *)
          of_bounds (lo_down lo) (hi_up hi)
    end
  end

(* ------------------------------------------------------------------ *)
(* Sign tests                                                          *)
(* ------------------------------------------------------------------ *)

let certainly_le i c = is_empty i || i.hi <= c
let certainly_lt i c = is_empty i || i.hi < c
let certainly_ge i c = is_empty i || i.lo >= c
let certainly_gt i c = is_empty i || i.lo > c
let possibly_le i c = (not (is_empty i)) && i.lo <= c
let possibly_lt i c = (not (is_empty i)) && i.lo < c

let pp ppf i =
  if is_empty i then Format.pp_print_string ppf "[empty]"
  else Format.fprintf ppf "[%.17g, %.17g]" i.lo i.hi

let to_string i = Format.asprintf "%a" pp i
