(** Interval evaluation of symbolic expressions.

    [eval env e] returns an interval guaranteed to contain the value of [e]
    at every point of the box described by [env] where [e] is defined (the
    fundamental theorem of interval arithmetic, applied to the expression
    DAG with memoization so shared subterms are evaluated once).

    Piecewise expressions evaluate the guard interval first; when the guard
    is decided over the whole box only that branch contributes, otherwise the
    hull of all possibly-active branches is returned. *)

type env = (string * Interval.t) list

(** @raise Eval.Unbound_variable on a variable missing from [env]. *)
val eval : env -> Expr.t -> Interval.t

(** Guard decision on intervals: [`True] if the guard holds on the whole box,
    [`False] if it holds nowhere, [`Unknown] otherwise. *)
val guard_status : env -> Expr.guard -> [ `True | `False | `Unknown ]

(** [guard_status_of_interval rel gi] decides a guard given the interval of
    its condition expression (shared with the HC4 contractor, which keeps its
    own forward cache). *)
val guard_status_of_interval :
  Expr.rel -> Interval.t -> [ `True | `False | `Unknown ]

(** [apply_unop op i] is the interval image of primitive [op] (dispatch into
    {!Interval} / {!Transcend}). *)
val apply_unop : Expr.unop -> Interval.t -> Interval.t

(** [pow_node rat base expo] is the forward rule for [Pow] nodes, shared
    by the tree walker, {!Hc4.revise} and the compiled tape: when the
    exponent is the exact rational [rat] it dispatches to
    {!Transcend.pow_rat} (bit-identical to [pow_int] for integers,
    exponent-rounding-aware otherwise); with [None] it falls back to the
    {!Interval.pow_expr} corner analysis on [expo]. *)
val pow_node : Rat.t option -> Interval.t -> Interval.t -> Interval.t
