type t = { num : int; den : int }

exception Overflow

let max_component = 1 lsl 53

let check n = if abs n >= max_component then raise Overflow else n

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 }
  else { num = check (num / g); den = den / g }

let of_int n = { num = check n; den = 1 }

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let minus_one = { num = -1; den = 1 }
let half = { num = 1; den = 2 }
let third = { num = 1; den = 3 }

let neg r = { r with num = -r.num }

(* Products of components stay below [2^53 * 2^53]; OCaml ints are 63-bit so
   intermediate products can overflow silently. Guard by checking operand
   magnitudes before multiplying. *)
let mul_exact a b =
  if a = 0 || b = 0 then 0
  else begin
    let p = a * b in
    if p / b <> a then raise Overflow else p
  end

let add a b =
  make (mul_exact a.num b.den + mul_exact b.num a.den) (mul_exact a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (mul_exact a.num b.num) (mul_exact a.den b.den)

let inv r =
  if r.num = 0 then raise Division_by_zero;
  make r.den r.num

let div a b = mul a (inv b)
let abs r = { r with num = Stdlib.abs r.num }

let equal a b = a.num = b.num && a.den = b.den

let compare a b =
  Stdlib.compare (mul_exact a.num b.den) (mul_exact b.num a.den)

let sign r = Stdlib.compare r.num 0
let is_zero r = r.num = 0
let is_one r = r.num = 1 && r.den = 1
let is_int r = r.den = 1
let to_int r = if r.den = 1 then Some r.num else None
let num r = r.num
let den r = r.den
let to_float r = float_of_int r.num /. float_of_int r.den

let of_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Some (of_int (int_of_float f))
  else begin
    (* Try denominators that cover the decimal constants appearing in
       functional definitions (10^k up to 10^9). *)
    let rec try_den k den =
      if k > 9 then None
      else
        let scaled = f *. float_of_int den in
        if Float.is_integer scaled && Float.abs scaled < 1e15 then
          Some (make (int_of_float scaled) den)
        else try_den (k + 1) (den * 10)
    in
    try_den 1 10
  end

let pp ppf r =
  if r.den = 1 then Format.fprintf ppf "%d" r.num
  else Format.fprintf ppf "%d/%d" r.num r.den

let to_string r = Format.asprintf "%a" pp r

let hash r = (r.num * 65599) lxor r.den
