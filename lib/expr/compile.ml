open Expr

type instr =
  | Load_const of float
  | Load_var of int  (* argument slot *)
  | Add2 of int * int
  | Mul2 of int * int
  | Pow2 of int * int
  | Powi of int * int  (* register, integer exponent *)
  | Unop of unop * int
  | Select of (int * rel * int) list * int
      (* (guard register, relation, body register) list, default register *)

type t = { instrs : instr array; nvars : int }

(* The single scalar dispatch table for primitive unary functions, shared by
   the scalar and batch interpreters (and anyone else lowering [unop]s to
   floats) so the two cannot disagree on a primitive's meaning. *)
let scalar_of_unop = function
  | Exp -> Stdlib.exp
  | Log -> Stdlib.log
  | Sin -> Stdlib.sin
  | Cos -> Stdlib.cos
  | Tanh -> Stdlib.tanh
  | Atan -> Stdlib.atan
  | Abs -> Float.abs
  | Lambert_w -> Lambert.w0

let compile ~vars e =
  let var_slot v =
    let rec find i = function
      | [] ->
          invalid_arg
            (Printf.sprintf "Compile.compile: unbound variable %S" v)
      | v' :: rest -> if String.equal v v' then i else find (i + 1) rest
    in
    find 0 vars
  in
  let code = ref [] in
  let n = ref 0 in
  let emit i =
    code := i :: !code;
    let r = !n in
    incr n;
    r
  in
  let reg_of =
    memo_fix (fun self e ->
        match e.node with
        | Num r -> emit (Load_const (Rat.to_float r))
        | Flt f -> emit (Load_const f)
        | Var v -> emit (Load_var (var_slot v))
        | Add terms ->
            let regs = List.map self terms in
            let rec chain = function
              | [] -> emit (Load_const 0.0)
              | [ r ] -> r
              | r1 :: r2 :: rest -> chain (emit (Add2 (r1, r2)) :: rest)
            in
            chain regs
        | Mul factors ->
            let regs = List.map self factors in
            let rec chain = function
              | [] -> emit (Load_const 1.0)
              | [ r ] -> r
              | r1 :: r2 :: rest -> chain (emit (Mul2 (r1, r2)) :: rest)
            in
            chain regs
        | Pow (b, x) -> (
            let rb = self b in
            match as_rat x with
            | Some r when Rat.is_int r && Stdlib.abs r.Rat.num <= 64 ->
                emit (Powi (rb, r.Rat.num))
            | _ -> emit (Pow2 (rb, self x)))
        | Apply (op, a) -> emit (Unop (op, self a))
        | Piecewise (branches, default) ->
            let compiled =
              List.map
                (fun (g, body) -> (self g.cond, g.grel, self body))
                branches
            in
            emit (Select (compiled, self default)))
  in
  let _root = reg_of e in
  { instrs = Array.of_list (List.rev !code); nvars = List.length vars }

let length tape = Array.length tape.instrs
let arity tape = tape.nvars

let run_batch tape args out =
  if Array.length args <> tape.nvars then
    invalid_arg "Compile.run_batch: arity mismatch";
  let n = Array.length out in
  Array.iter
    (fun col ->
      if Array.length col <> n then
        invalid_arg "Compile.run_batch: ragged argument arrays")
    args;
  let m = Array.length tape.instrs in
  if m = 0 then Array.fill out 0 n 0.0
  else begin
    (* One row of registers per instruction, each a full column of points.
       Memory is m*n floats; PB meshes are evaluated in row chunks upstream
       if that ever matters (for m ~ 100, n ~ 10^4 this is ~8 MB). *)
    let regs = Array.init m (fun _ -> Array.make n 0.0) in
    for i = 0 to m - 1 do
      let dst = regs.(i) in
      match tape.instrs.(i) with
      | Load_const c -> Array.fill dst 0 n c
      | Load_var slot -> Array.blit args.(slot) 0 dst 0 n
      | Add2 (a, b) ->
          let ra = regs.(a) and rb = regs.(b) in
          for k = 0 to n - 1 do
            dst.(k) <- ra.(k) +. rb.(k)
          done
      | Mul2 (a, b) ->
          let ra = regs.(a) and rb = regs.(b) in
          for k = 0 to n - 1 do
            dst.(k) <- ra.(k) *. rb.(k)
          done
      | Pow2 (a, b) ->
          let ra = regs.(a) and rb = regs.(b) in
          for k = 0 to n - 1 do
            dst.(k) <- Eval.pow_float ra.(k) rb.(k)
          done
      | Powi (a, p) ->
          let ra = regs.(a) and pf = float_of_int p in
          for k = 0 to n - 1 do
            dst.(k) <- Eval.pow_float ra.(k) pf
          done
      | Unop (op, a) ->
          let ra = regs.(a) in
          let f = scalar_of_unop op in
          for k = 0 to n - 1 do
            dst.(k) <- f ra.(k)
          done
      | Select (branches, default) ->
          let rd = regs.(default) in
          for k = 0 to n - 1 do
            let rec pick = function
              | [] -> rd.(k)
              | (g, rel, body) :: rest ->
                  if Eval.guard_holds rel regs.(g).(k) then regs.(body).(k)
                  else pick rest
            in
            dst.(k) <- pick branches
          done
    done;
    Array.blit regs.(m - 1) 0 out 0 n
  end

let run tape args =
  if Array.length args <> tape.nvars then
    invalid_arg "Compile.run: arity mismatch";
  let m = Array.length tape.instrs in
  let regs = Array.make (Stdlib.max m 1) 0.0 in
  for i = 0 to m - 1 do
    regs.(i) <-
      (match tape.instrs.(i) with
      | Load_const c -> c
      | Load_var slot -> args.(slot)
      | Add2 (a, b) -> regs.(a) +. regs.(b)
      | Mul2 (a, b) -> regs.(a) *. regs.(b)
      | Pow2 (a, b) -> Eval.pow_float regs.(a) regs.(b)
      | Powi (a, k) -> Eval.pow_float regs.(a) (float_of_int k)
      | Unop (op, a) -> scalar_of_unop op regs.(a)
      | Select (branches, default) ->
          let rec pick = function
            | [] -> regs.(default)
            | (g, rel, body) :: rest ->
                if Eval.guard_holds rel regs.(g) then regs.(body)
                else pick rest
          in
          pick branches)
  done;
  if m = 0 then 0.0 else regs.(m - 1)
