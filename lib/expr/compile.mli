(** Compilation of expressions to flat evaluation tapes.

    The Pederson-Burke baseline evaluates each functional at 10^4..10^10 grid
    points; walking the hash-consed DAG with an environment lookup per node is
    too slow for that. [compile] performs a topological linearization of the
    DAG into an array of register instructions (one slot per distinct
    subexpression, so common subexpressions are computed once) which then
    evaluates with no allocation.

    Piecewise nodes evaluate all branch bodies and select afterwards; this is
    sound for total float arithmetic (unused NaNs are discarded) and keeps
    the tape branch-free except for the final select. *)

type t

(** The scalar meaning of a primitive unary operation — the single dispatch
    table shared by {!run}, {!run_batch} and {!Eval.eval}-compatible
    lowerings, so independent interpreters cannot disagree on a
    primitive. *)
val scalar_of_unop : Expr.unop -> float -> float

(** [compile ~vars e] compiles [e]; every free variable of [e] must appear in
    [vars]. The order of [vars] fixes the argument order of {!run}.
    @raise Invalid_argument if a free variable is missing from [vars]. *)
val compile : vars:string list -> Expr.t -> t

(** [run tape args] evaluates the compiled expression; [args] are the values
    of [vars] in order. [args] must have the same length as [vars].
    Agrees with {!Eval.eval} to the last ulp (same operations, same order).
    @raise Invalid_argument on arity mismatch. *)
val run : t -> float array -> float

(** [run_batch tape args out] evaluates the tape at many points at once:
    [args.(v)] holds the values of variable [v] across all points, and the
    results are written to [out]. Processing whole arrays per instruction
    moves the interpreter dispatch from per-point to per-instruction; the
    Pederson-Burke baseline evaluates its 10^4-10^5-point meshes this way.
    (Measured on the DFA tapes the win is modest — libm [pow]/[exp] calls
    dominate, not dispatch — but the columnwise layout is also what a
    SIMD/GPU backend would consume.)
    @raise Invalid_argument if array lengths disagree with the tape arity or
    with each other. *)
val run_batch : t -> float array array -> float array -> unit

(** Number of instructions in the tape (a machine-level operation count). *)
val length : t -> int

(** Variables of the tape, in argument order. *)
val arity : t -> int
