(** Small exact rational numbers.

    Used to keep exponents and structural constants exact during symbolic
    manipulation (e.g. the derivative of [x^(1/3)] must carry [-2/3], not a
    rounded float). Numerator and denominator are native [int]s; all
    operations normalize by the gcd and keep the denominator positive.
    Overflow raises {!Overflow}: the functionals in this repository only ever
    produce tiny denominators (powers like 1/3, 8/3, 14/3), so an overflow
    indicates a logic error rather than a representable value. *)

type t = private { num : int; den : int }

exception Overflow

(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)
val make : int -> int -> t

(** [of_int n] is [n/1]. *)
val of_int : int -> t

val zero : t
val one : t
val minus_one : t
val half : t
val third : t

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero on division by {!zero}. *)
val div : t -> t -> t

val inv : t -> t
val abs : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val sign : t -> int
val is_zero : t -> bool
val is_one : t -> bool

(** [is_int r] holds when the denominator is 1. *)
val is_int : t -> bool

(** [to_int r] is the numerator when {!is_int} holds. *)
val to_int : t -> int option

(** Reduced components: [den] is always positive and both are kept below
    [2^53] in magnitude, so [float_of_int] on either is exact. *)
val num : t -> int

val den : t -> int

val to_float : t -> float

(** [of_float f] is the exact rational value of [f] when it has a small
    decimal representation (denominator a power of two times ten up to 10^9);
    [None] for floats that do not round-trip. *)
val of_float : float -> t option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val hash : t -> int
