open Expr

let unop_name = function
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Tanh -> "tanh"
  | Atan -> "atan"
  | Abs -> "abs"
  | Lambert_w -> "lambertw"

let rel_name = function Le -> "<=" | Lt -> "<"

(* Precedence levels: 0 sum, 1 product, 2 power, 3 atom. *)
let prec e =
  match e.node with
  | Add _ -> 0
  | Mul _ -> 1
  | Pow _ -> 2
  | Num r when Rat.sign r < 0 || not (Rat.is_int r) -> 1
  | Flt f when f < 0.0 -> 1
  | Num _ | Flt _ | Var _ | Apply _ | Piecewise _ -> 3

let pp_float ppf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Format.fprintf ppf "%.0f" f
  else Format.fprintf ppf "%.17g" f

let rec pp_at level ppf e =
  if prec e < level then Format.fprintf ppf "(%a)" (pp_at 0) e
  else
    match e.node with
    | Num r -> Rat.pp ppf r
    | Flt f -> pp_float ppf f
    | Var v -> Format.pp_print_string ppf v
    | Add terms -> pp_sum ppf terms
    | Mul factors -> pp_product ppf factors
    | Pow (b, x) ->
        Format.fprintf ppf "%a^%a" (pp_at 3) b (pp_at 3) x
    | Apply (op, a) ->
        Format.fprintf ppf "%s(%a)" (unop_name op) (pp_at 0) a
    | Piecewise (branches, default) ->
        Format.fprintf ppf "piecewise(";
        List.iter
          (fun (g, body) ->
            Format.fprintf ppf "%a %s 0 -> %a; " (pp_at 0) g.cond
              (rel_name g.grel) (pp_at 0) body)
          branches;
        Format.fprintf ppf "else %a)" (pp_at 0) default

and pp_sum ppf terms =
  let pp_term first ppf e =
    (* Fold a leading negative coefficient into a binary minus. *)
    let neg_part =
      match e.node with
      | Num r when Rat.sign r < 0 -> Some (num (Rat.neg r))
      | Flt f when f < 0.0 -> Some (const (-.f))
      | Mul (c :: rest) -> (
          match as_const c with
          | Some f when f < 0.0 ->
              Some (mul_n (const (-.f) :: rest))
          | _ -> None)
      | _ -> None
    in
    match neg_part with
    | Some p ->
        if first then Format.fprintf ppf "-%a" (pp_at 1) p
        else Format.fprintf ppf " - %a" (pp_at 1) p
    | None ->
        if first then pp_at 1 ppf e else Format.fprintf ppf " + %a" (pp_at 1) e
  in
  List.iteri (fun i e -> pp_term (i = 0) ppf e) terms

and pp_product ppf factors =
  (* Render negative exponents as division. *)
  let numerator, denominator =
    List.partition
      (fun f ->
        match f.node with
        | Pow (_, x) -> (
            match as_const x with Some c -> c >= 0.0 | None -> true)
        | _ -> true)
      factors
  in
  let pp_factors ppf = function
    | [] -> Format.pp_print_string ppf "1"
    | fs ->
        List.iteri
          (fun i f ->
            if i > 0 then Format.pp_print_string ppf "*";
            pp_at 2 ppf f)
          fs
  in
  match denominator with
  | [] -> pp_factors ppf numerator
  | _ ->
      let flip f =
        match f.node with
        | Pow (b, x) -> pow b (neg x)
        | _ -> assert false
      in
      Format.fprintf ppf "%a/" pp_factors numerator;
      let den = List.map flip denominator in
      (match den with
      | [ single ] when prec single >= 2 -> pp_at 2 ppf single
      | _ -> Format.fprintf ppf "(%a)" pp_factors den)

let pp ppf e = pp_at 0 ppf e
let to_string e = Format.asprintf "%a" pp e

(* ------------------------------------------------------------------ *)
(* S-expressions                                                       *)
(* ------------------------------------------------------------------ *)

let rec pp_sexp ppf e =
  match e.node with
  | Num r when Rat.is_int r -> Rat.pp ppf r
  | Num r -> Format.fprintf ppf "(/ %d %d)" r.Rat.num r.Rat.den
  | Flt f -> Format.fprintf ppf "%h" f
  | Var v -> Format.pp_print_string ppf v
  | Add terms -> pp_sexp_list ppf "+" terms
  | Mul factors -> pp_sexp_list ppf "*" factors
  | Pow (b, x) -> Format.fprintf ppf "(^ %a %a)" pp_sexp b pp_sexp x
  | Apply (op, a) -> Format.fprintf ppf "(%s %a)" (unop_name op) pp_sexp a
  | Piecewise (branches, default) ->
      Format.fprintf ppf "(piecewise";
      List.iter
        (fun (g, body) ->
          Format.fprintf ppf " (%s %a %a)"
            (match g.grel with Le -> "le" | Lt -> "lt")
            pp_sexp g.cond pp_sexp body)
        branches;
      Format.fprintf ppf " %a)" pp_sexp default

and pp_sexp_list ppf op xs =
  Format.fprintf ppf "(%s" op;
  List.iter (fun x -> Format.fprintf ppf " %a" pp_sexp x) xs;
  Format.fprintf ppf ")"

let sexp_to_string e = Format.asprintf "%a" pp_sexp e

(* ------------------------------------------------------------------ *)
(* Python                                                              *)
(* ------------------------------------------------------------------ *)

let python_unop = function
  | Exp -> "np.exp"
  | Log -> "np.log"
  | Sin -> "np.sin"
  | Cos -> "np.cos"
  | Tanh -> "np.tanh"
  | Atan -> "np.arctan"
  | Abs -> "np.abs"
  | Lambert_w -> "scipy.special.lambertw"

let rec pp_python ppf e =
  match e.node with
  | Num r when Rat.is_int r -> Format.fprintf ppf "%d" r.Rat.num
  | Num r -> Format.fprintf ppf "(%d/%d)" r.Rat.num r.Rat.den
  | Flt f -> Format.fprintf ppf "%.17g" f
  | Var v -> Format.pp_print_string ppf v
  | Add terms ->
      Format.fprintf ppf "(";
      List.iteri
        (fun i t ->
          if i > 0 then Format.pp_print_string ppf " + ";
          pp_python ppf t)
        terms;
      Format.fprintf ppf ")"
  | Mul factors ->
      Format.fprintf ppf "(";
      List.iteri
        (fun i t ->
          if i > 0 then Format.pp_print_string ppf " * ";
          pp_python ppf t)
        factors;
      Format.fprintf ppf ")"
  | Pow (b, x) -> Format.fprintf ppf "(%a ** %a)" pp_python b pp_python x
  | Apply (op, a) -> Format.fprintf ppf "%s(%a)" (python_unop op) pp_python a
  | Piecewise (branches, default) ->
      (* Nested numpy.where chains, innermost being the default. *)
      let rec go = function
        | [] -> pp_python ppf default
        | (g, body) :: rest ->
            Format.fprintf ppf "np.where(%a %s 0, %a, " pp_python g.cond
              (rel_name g.grel) pp_python body;
            go rest;
            Format.fprintf ppf ")"
      in
      go branches

let python_to_string e = Format.asprintf "%a" pp_python e

(* ------------------------------------------------------------------ *)
(* C99                                                                 *)
(* ------------------------------------------------------------------ *)

let c_unop = function
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Tanh -> "tanh"
  | Atan -> "atan"
  | Abs -> "fabs"
  | Lambert_w -> "xcv_lambert_w"

(* Reference runtime for the emitted kernels. Both helpers transliterate
   the OCaml float evaluator operation for operation — [xcv_pow_int] is
   {!Eval.pow_float}'s binary-exponentiation loop (same multiply order,
   hence the same rounding sequence), [xcv_lambert_w] is {!Lambert.w0}'s
   guess-plus-Halley scheme — so generated code stays comparable to [Eval]
   to rounding noise rather than to algorithm choice. *)
let c_prelude =
  "#ifndef XCV_C_PRELUDE\n\
   #define XCV_C_PRELUDE\n\
   static double xcv_pow_int(double b, int n) {\n\
  \  double acc = 1.0;\n\
  \  int m = n < 0 ? -n : n;\n\
  \  while (m > 0) {\n\
  \    if (m & 1) acc *= b;\n\
  \    b *= b;\n\
  \    m >>= 1;\n\
  \  }\n\
  \  return n >= 0 ? acc : 1.0 / acc;\n\
   }\n\
   static double xcv_lambert_w(double x) {\n\
  \  if (isnan(x)) return x;\n\
  \  if (x == (double)INFINITY) return x;\n\
  \  if (x == 0.0) return 0.0;\n\
  \  if (x < -exp(-1.0) - 1e-15) return (double)NAN;\n\
  \  double w;\n\
  \  if (x < -0.25) {\n\
  \    double p = sqrt(2.0 * ((exp(1.0) * x) + 1.0));\n\
  \    w = -1.0 + p - (p * p / 3.0);\n\
  \  } else if (x < 0.25) {\n\
  \    w = x * (1.0 - x + (1.5 * x * x)) / (1.0 + (0.5 * x));\n\
  \  } else if (x < 10.0) {\n\
  \    w = log1p(x);\n\
  \  } else {\n\
  \    double l1 = log(x);\n\
  \    double l2 = log(l1);\n\
  \    w = l1 - l2 + (l2 / l1);\n\
  \  }\n\
  \  if (w <= -1.0) w = -1.0 + 1e-12;\n\
  \  for (int i = 0; i < 8; i++) {\n\
  \    double ew = exp(w);\n\
  \    double f = (w * ew) - x;\n\
  \    if (f != 0.0) {\n\
  \      double w1 = w + 1.0;\n\
  \      double denom = (ew * w1) - ((w + 2.0) * f / (2.0 * w1));\n\
  \      if (denom != 0.0 && isfinite(denom)) w = w - (f / denom);\n\
  \    }\n\
  \  }\n\
  \  return w;\n\
   }\n\
   #endif /* XCV_C_PRELUDE */\n"

let pp_c ~name ~vars ppf e =
  (* Emit one temporary per DAG node with more than one parent; inline the
     rest. First count parents. *)
  let parents : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let bump x = Hashtbl.replace parents x.id (1 + Option.value ~default:0 (Hashtbl.find_opt parents x.id)) in
  ignore
    (fold_dag
       (fun node () ->
         match node.node with
         | Num _ | Flt _ | Var _ -> ()
         | Add xs | Mul xs -> List.iter bump xs
         | Pow (a, b) -> bump a; bump b
         | Apply (_, a) -> bump a
         | Piecewise (branches, d) ->
             List.iter (fun (g, body) -> bump g.cond; bump body) branches;
             bump d)
       e ());
  let shared x =
    match x.node with
    | Num _ | Flt _ | Var _ -> false
    | _ -> Option.value ~default:0 (Hashtbl.find_opt parents x.id) > 1
  in
  let temp_names : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let counter = ref 0 in
  let buf_stmts = Buffer.create 1024 in
  let rec ref_of x =
    match Hashtbl.find_opt temp_names x.id with
    | Some t -> t
    | None ->
        let code = render x in
        if shared x then begin
          incr counter;
          let t = Printf.sprintf "t%d" !counter in
          Hashtbl.add temp_names x.id t;
          Buffer.add_string buf_stmts
            (Printf.sprintf "  const double %s = %s;\n" t code);
          t
        end
        else code
  and render x =
    match x.node with
    | Num r when Rat.is_int r -> Printf.sprintf "%d.0" r.Rat.num
    | Num r -> Printf.sprintf "(%d.0 / %d.0)" r.Rat.num r.Rat.den
    | Flt f when Float.is_nan f -> "((double)NAN)"
    | Flt f when f = Float.infinity -> "((double)INFINITY)"
    | Flt f when f = Float.neg_infinity -> "(-(double)INFINITY)"
    | Flt f -> Printf.sprintf "%.17g" f
    | Var v -> v
    | Add terms -> "(" ^ String.concat " + " (List.map ref_of terms) ^ ")"
    | Mul factors -> "(" ^ String.concat " * " (List.map ref_of factors) ^ ")"
    | Pow (b, x') -> (
        match as_rat x' with
        | Some r when Rat.is_int r && r.Rat.num = 2 ->
            let rb = ref_of b in
            Printf.sprintf "(%s * %s)" rb rb
        | Some r when Rat.is_int r && r.Rat.num = -1 ->
            Printf.sprintf "(1.0 / %s)" (ref_of b)
        | Some r when Rat.is_int r && Stdlib.abs r.Rat.num <= 64 ->
            (* The evaluator's binary-exponentiation cutoff; beyond it both
               sides fall back to libm pow. *)
            Printf.sprintf "xcv_pow_int(%s, %d)" (ref_of b) r.Rat.num
        | Some r when Rat.equal r Rat.half ->
            Printf.sprintf "sqrt(%s)" (ref_of b)
        | Some r when Rat.equal r Rat.third ->
            Printf.sprintf "cbrt(%s)" (ref_of b)
        | Some r when r.Rat.num = -1 && r.Rat.den = 2 ->
            Printf.sprintf "(1.0 / sqrt(%s))" (ref_of b)
        | Some r ->
            Printf.sprintf "pow(%s, (%d.0 / %d.0))" (ref_of b) r.Rat.num
              r.Rat.den
        | None -> Printf.sprintf "pow(%s, %s)" (ref_of b) (ref_of x'))
    | Apply (op, a) -> Printf.sprintf "%s(%s)" (c_unop op) (ref_of a)
    | Piecewise (branches, default) ->
        let rec chain = function
          | [] -> ref_of default
          | (g, body) :: rest ->
              Printf.sprintf "((%s %s 0.0) ? %s : %s)" (ref_of g.cond)
                (match g.grel with Le -> "<=" | Lt -> "<")
                (ref_of body) (chain rest)
        in
        chain branches
  in
  let result = ref_of e in
  Format.fprintf ppf "double %s(%s) {\n%s  return %s;\n}\n" name
    (String.concat ", " (List.map (fun v -> "double " ^ v) vars))
    (Buffer.contents buf_stmts) result

let c_to_string ~name ~vars e = Format.asprintf "%a" (pp_c ~name ~vars) e
