(** Rendering of symbolic expressions.

    Three formats are provided:
    - {!pp} / {!to_string}: human-readable infix notation with minimal
      parentheses,
    - {!pp_sexp}: fully parenthesized s-expressions (stable, parseable by
      {!Parser.sexp_of_string}),
    - {!pp_python}: Python/NumPy syntax, mirroring the paper's
      Maple-[CodeGeneration]-to-Python step so encoded functionals can be
      compared against reference implementations. *)

val pp : Format.formatter -> Expr.t -> unit
val to_string : Expr.t -> string
val pp_sexp : Format.formatter -> Expr.t -> unit
val sexp_to_string : Expr.t -> string
val pp_python : Format.formatter -> Expr.t -> unit
val python_to_string : Expr.t -> string

(** C99 definitions the emitted functions may call: [xcv_pow_int] (the
    evaluator's binary-exponentiation loop, same multiply order as
    {!Eval.eval} so integer powers agree bit for bit) and
    [xcv_lambert_w] (a reference transliteration of {!Lambert.w0}'s
    initial guess plus Halley iteration). Prepend once per translation
    unit, after [#include <math.h>]; the block is include-guarded so
    concatenating generated files stays legal. *)
val c_prelude : string

(** [pp_c ~name ~vars ppf e] emits a complete C99 function
    [double name(double v1, ...)] computing [e] — the reverse of the
    paper's Maple-to-code step, and the shape LibXC itself ships.
    Common subexpressions become local [t<n>] temporaries (one per shared
    DAG node), piecewise bodies become conditional expressions, integer
    powers up to the evaluator's 64 cutoff become [xcv_pow_int] chains,
    rational exponents print as exact [num/den] divisions, and
    [lambert_w] calls [xcv_lambert_w] — both helpers live in
    {!c_prelude}. *)
val pp_c : name:string -> vars:string list -> Format.formatter -> Expr.t -> unit

val c_to_string : name:string -> vars:string list -> Expr.t -> string
