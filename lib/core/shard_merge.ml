(* Merging per-shard campaign checkpoints back into one run.

   The merge contract is byte-identity: the merged paint log, Table I
   render and deterministic metrics section must equal the unsharded run's
   at any shard count and any per-shard worker count. The algebra that
   makes this hold is region interleaving by box path — every shard's
   paint log is a pre-order-sorted slice of the unsharded log with
   pairwise-distinct paths, so a keyed merge of sorted sequences
   reconstructs the full pre-order exactly, independently of shard count,
   merge order, or which shard solved which box. *)

type shard_run = {
  index : int;
  count : int;
  pairs : (Outcome.t * int list list) list;
  metrics : Obs.Metrics.snapshot;
}

type merged = {
  outcomes : Outcome.t list;
  metrics : Obs.Metrics.snapshot;
}

let shard_path base i = Printf.sprintf "%s.shard%d" base i

exception Merge_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Merge_error m)) fmt

let pair_label (o : Outcome.t) = o.Outcome.dfa ^ " / " ^ o.Outcome.condition

let path_to_string p =
  "[" ^ String.concat " " (List.map string_of_int p) ^ "]"

(* Sum the per-shard solver counters; wall clock is the max because the
   shards ran concurrently. Counters partition exactly across shards (the
   trunk is replayed everywhere but counted only by its owner), so the
   merged counters equal the unsharded run's. *)
let merge_stats (a : Outcome.stats) (b : Outcome.stats) : Outcome.stats =
  {
    solver_calls = a.solver_calls + b.solver_calls;
    total_expansions = a.total_expansions + b.total_expansions;
    total_prunes = a.total_prunes + b.total_prunes;
    total_revise_calls = a.total_revise_calls + b.total_revise_calls;
    retries = a.retries + b.retries;
    elapsed = Float.max a.elapsed b.elapsed;
  }

let merge_pair (oa, pa) (ob, pb) =
  let a : Outcome.t = oa and b : Outcome.t = ob in
  if a.Outcome.dfa <> b.Outcome.dfa || a.Outcome.condition <> b.Outcome.condition
  then
    fail "cannot merge outcomes of different pairs (%s vs %s)" (pair_label a)
      (pair_label b);
  if List.length a.Outcome.regions <> List.length pa then
    fail "pair %s: %d regions but %d paths" (pair_label a)
      (List.length a.Outcome.regions)
      (List.length pa);
  if List.length b.Outcome.regions <> List.length pb then
    fail "pair %s: %d regions but %d paths" (pair_label b)
      (List.length b.Outcome.regions)
      (List.length pb);
  (* Merge two path-sorted (path, region) sequences. Each shard's slice is
     already in pre-order, i.e. sorted under Trace.compare_path, so this
     is a plain sorted merge — associative and commutative as long as the
     slices are disjoint, which the duplicate check enforces. *)
  let rec interleave xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (px, _) :: _, (py, _) :: _ when Trace.compare_path px py = 0 ->
        fail "overlapping shard regions for pair %s at box path %s"
          (pair_label a) (path_to_string px)
    | ((px, _) as x) :: xs', (py, _) :: _ when Trace.compare_path px py < 0 ->
        x :: interleave xs' ys
    | _, y :: ys' -> y :: interleave xs ys'
  in
  let tagged o paths = List.combine paths o.Outcome.regions in
  let merged = interleave (tagged a pa) (tagged b pb) in
  let paths = List.map fst merged and regions = List.map snd merged in
  ( {
      a with
      Outcome.regions;
      stats = merge_stats a.Outcome.stats b.Outcome.stats;
    },
    paths )

let check_runs runs =
  (match runs with [] -> fail "no shard runs to merge" | _ -> ());
  let count = (List.hd runs).count in
  List.iter
    (fun r ->
      if r.count <> count then
        fail "shard count mismatch: shard %d says %d shards, shard %d says %d"
          (List.hd runs).index count r.index r.count)
    runs;
  if List.length runs <> count then
    fail "expected %d shards, got %d" count (List.length runs);
  let seen = Array.make count false in
  List.iter
    (fun r ->
      if r.index < 0 || r.index >= count then
        fail "shard index %d out of range 0..%d" r.index (count - 1);
      if seen.(r.index) then
        fail "overlapping shard prefixes: two runs claim shard %d/%d" r.index
          count;
      seen.(r.index) <- true)
    runs;
  let labels r = List.map (fun (o, _) -> pair_label o) r.pairs in
  let reference = labels (List.hd runs) in
  List.iter
    (fun r ->
      if labels r <> reference then
        fail
          "shard %d covers a different pair set than shard %d — partial or \
           mismatched campaign"
          r.index (List.hd runs).index)
    runs

let merge_runs runs =
  try
    check_runs runs;
    let runs = List.sort (fun a b -> Int.compare a.index b.index) runs in
    let first = List.hd runs in
    let pairs =
      List.fold_left
        (fun acc r ->
          List.map2 (fun merged slice -> merge_pair merged slice) acc r.pairs)
        first.pairs (List.tl runs)
    in
    let metrics =
      List.fold_left
        (fun acc (r : shard_run) -> Obs.Metrics.merge acc r.metrics)
        Obs.Metrics.empty_snapshot runs
    in
    Ok { outcomes = List.map fst pairs; metrics }
  with Merge_error m -> Error m

(* File-level loading: `base.shard0` names the campaign (its header says
   how many shards there are); every shard file is then validated against
   shard 0's hashes before any merging happens. *)

let run_of_checkpoint ~path ~file_index (cp : Serialize.checkpoint) =
  let header =
    match cp.Serialize.cp_header with
    | Some h -> h
    | None ->
        fail "%s is not a shard checkpoint (no campaign header line)" path
  in
  let index, count =
    match header.Serialize.shard with
    | Some (i, n) -> (i, n)
    | None ->
        fail "%s is an unsharded checkpoint — nothing to merge" path
  in
  if index <> file_index then
    fail
      "overlapping shard prefixes: %s claims to be shard %d/%d (expected \
       shard %d from its filename)"
      path index count file_index;
  if cp.Serialize.truncated then
    fail
      "shard %d checkpoint %s has a torn tail at byte %d — the shard did \
       not finish; re-run it with --shard %d/%d --resume before merging"
      index path cp.Serialize.valid_bytes index count;
  let pairs =
    List.mapi
      (fun pair_i (e : Serialize.entry) ->
        match e.Serialize.paths with
        | Some paths -> (e.Serialize.outcome, paths)
        | None ->
            fail "shard %d entry %d in %s carries no region paths — not a \
                  shard checkpoint entry"
              index pair_i path)
      cp.Serialize.entries
  in
  let metrics =
    List.fold_left
      (fun acc (e : Serialize.entry) ->
        match e.Serialize.metrics_json with
        | Some j -> Obs.Metrics.merge acc (Serialize.metrics_of_json_string j)
        | None ->
            fail "shard %d checkpoint %s has an entry without a metrics \
                  snapshot"
              index path)
      Obs.Metrics.empty_snapshot cp.Serialize.entries
  in
  ({ index; count; pairs; metrics }, header)

let read_shards ~base =
  try
    let read i =
      let path = shard_path base i in
      if not (Sys.file_exists path) then
        fail "missing shard file %s — expected every shard of %s present"
          path base;
      run_of_checkpoint ~path ~file_index:i (Serialize.read_checkpoint path)
    in
    let run0, header0 = read 0 in
    let runs =
      run0
      :: List.init (run0.count - 1) (fun j ->
             let i = j + 1 in
             let run, header = read i in
             (if header.Serialize.config_hash <> header0.Serialize.config_hash
              then
                fail
                  "shard %d was written under a different configuration \
                   (config hash %s, shard 0 has %s)"
                  i header.Serialize.config_hash header0.Serialize.config_hash);
             (if header.Serialize.formula_hash <> header0.Serialize.formula_hash
              then
                fail
                  "shard %d is from a different campaign (formula hash %s, \
                   shard 0 has %s)"
                  i header.Serialize.formula_hash header0.Serialize.formula_hash);
             run)
    in
    Ok runs
  with Merge_error m -> Error m

let merge_files ~base =
  match read_shards ~base with
  | Error _ as e -> e
  | Ok runs -> merge_runs runs
