(** Persistence of verification outcomes.

    A full campaign is expensive; CI and analysis workflows want to archive
    the verdicts and re-render tables/maps without re-solving. Outcomes are
    written as s-expressions with hex float literals ([%h]) so every bound
    and model coordinate round-trips bit-exactly.

    The format is versioned; {!load} rejects unknown versions rather than
    guessing. Version 3 (current) adds the [error] region status and the
    [retries] stat; version 2 archives are still read (with [retries = 0]). *)

val format_version : int

(** [to_string outcome] serializes one outcome. *)
val to_string : Outcome.t -> string

(** [of_string s] parses a serialized outcome.
    @raise Parser.Parse_error on malformed input or version mismatch. *)
val of_string : string -> Outcome.t

(** [save path outcomes] / [load path] — a campaign archive (one
    s-expression per line). *)
val save : string -> Outcome.t list -> unit

val load : string -> Outcome.t list

(** {1 Checkpoints}

    A campaign checkpoint is the same one-s-expression-per-line format as
    {!save}, but written incrementally: {!append} adds outcomes to the end
    of the file (creating it if absent) and flushes after every line, so a
    killed process leaves a loadable prefix plus at most one torn tail. *)

(** [append path outcomes] appends, flushing per outcome. *)
val append : string -> Outcome.t list -> unit

(** [load_checkpoint path] loads the valid prefix of a checkpoint: [[]] if
    the file does not exist, and parsing stops silently at the first
    malformed line (a torn write from a killed campaign) — unlike {!load},
    which raises. *)
val load_checkpoint : string -> Outcome.t list

(** {1 Trace JSON}

    {!Trace} event logs are exported as JSON for external tooling (jq,
    plotting scripts). Deterministic output: object fields are emitted in a
    fixed order and numbers use the shortest round-tripping decimal, so the
    trace of a deterministic run is byte-identical across runs — which is
    what the golden-file test pins down. *)

(** A minimal JSON document model, sufficient for traces. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** @raise Parser.Parse_error on malformed input. *)
  val of_string : string -> t
end

val trace_format_version : int

val json_of_trace : Trace.event list -> Json.t
val trace_of_json : Json.t -> Trace.event list

(** [trace_to_string events] / [trace_of_string s] — the versioned JSON
    round-trip of an event log. *)
val trace_to_string : Trace.event list -> string

val trace_of_string : string -> Trace.event list

(** [trace_report outcome events] — the [--trace] payload: the pair's
    labels and aggregated {!Outcome.stats} alongside the full event log.
    The report's [stats.total_expansions] equals the sum of the [fuel]
    fields of its [solve] events. *)
val trace_report : Outcome.t -> Trace.event list -> string
