(** Persistence of verification outcomes.

    A full campaign is expensive; CI and analysis workflows want to archive
    the verdicts and re-render tables/maps without re-solving. Outcomes are
    written as s-expressions with hex float literals ([%h]) so every bound
    and model coordinate round-trips bit-exactly.

    The format is versioned; {!load} rejects unknown versions rather than
    guessing. Version 3 (current) adds the [error] region status and the
    [retries] stat; version 2 archives are still read (with [retries = 0]). *)

val format_version : int

(** [to_string outcome] serializes one outcome. *)
val to_string : Outcome.t -> string

(** [of_string s] parses a serialized outcome.
    @raise Parser.Parse_error on malformed input or version mismatch. *)
val of_string : string -> Outcome.t

(** [save path outcomes] / [load path] — a campaign archive (one
    s-expression per line). *)
val save : string -> Outcome.t list -> unit

val load : string -> Outcome.t list

(** {1 Checkpoints}

    A campaign checkpoint is the same one-s-expression-per-line format as
    {!save}, but written incrementally: {!append} adds outcomes to the end
    of the file (creating it if absent) and flushes after every line, so a
    killed process leaves a loadable prefix plus at most one torn tail. *)

(** [append path outcomes] appends, flushing per outcome. *)
val append : string -> Outcome.t list -> unit

(** {1 Crash-safe byte primitives}

    The verdict cache and the service journal are built on two durable
    write shapes: whole-line appends (one [write(2)] on an [O_APPEND]
    descriptor, so concurrent writers interleave lines, never bytes) and
    whole-file replacement (tmp file + [rename], so a reader never sees a
    half-written file). Both consult an optional {!Fault.io_plan} before
    touching the descriptor — torn entries, ENOSPC and EINTR are
    deterministically injectable ([@raise Fault.Io_injected]). *)

(** [append_line ?io_faults ?fsync path line] appends [line ^ "\n"] with a
    single write; [fsync] (default false) syncs the descriptor afterwards —
    the commit barrier of the verdict cache. An injected [Short_write]
    leaves a torn prefix of the line behind, exactly as a kill mid-write
    would; injected [Eintr]s are retried (bounded). *)
val append_line :
  ?io_faults:Fault.io_plan -> ?fsync:bool -> string -> string -> unit

(** [write_file_atomic ?io_faults path content] replaces [path] atomically:
    content goes to a pid-suffixed tmp file, is fsynced, renamed over
    [path], and the directory is fsynced. On any failure (including
    injected faults) the tmp file is removed and [path] is untouched. *)
val write_file_atomic : ?io_faults:Fault.io_plan -> string -> string -> unit

(** [percent_encode s] maps [s] onto a single safe s-expression atom
    (alphanumerics and [_.-+/] kept, everything else [%xx]-escaped) —
    the same encoding outcome labels use. [percent_decode] inverts it.
    The service protocol uses the pair for free-form strings (error
    messages, progress labels) inside its frames. *)
val percent_encode : string -> string

val percent_decode : string -> string

(** {1 Digests and campaign headers}

    Checkpoints carry a header line identifying the run that wrote them:
    a hash of the verdict-relevant configuration, a hash of the encoded
    formula set, and — for sharded campaigns — the shard coordinates.
    Resume and shard merge refuse checkpoints whose hashes do not match,
    instead of silently mixing verdicts from different runs. *)

(** [digest s] — 16 lowercase hex chars of a 64-bit byte fold (FNV-style
    multiply through the splitmix64 finalizer). Stable across processes
    and platforms. *)
val digest : string -> string

type header = {
  config_hash : string;  (** {!digest} of the verdict-relevant config *)
  formula_hash : string;  (** {!digest} of the encoded problem set *)
  shard : (int * int) option;  (** [(index, count)] for shard checkpoints *)
}

val header_to_string : header -> string

(** @raise Parser.Parse_error on malformed input. *)
val header_of_string : string -> header

(** [check_header ~path ~expect h] raises [Failure] with an operator-facing
    message naming [path] when [h]'s config or formula hash differs from
    [expect]'s (the shard field is compared by callers that care). *)
val check_header : path:string -> expect:header -> header -> unit

(** [write_header path header] creates (or truncates) [path] with the
    single header line. [ensure_header] is the idempotent variant: an
    existing header must match ([Failure] otherwise), legacy headerless
    files with content are left untouched, empty or absent files get the
    header. *)
val write_header : string -> header -> unit

val ensure_header : string -> header -> unit

(** {1 Checkpoint entries}

    Sharded checkpoints extend the outcome line with the region paths of
    the paint log (needed to interleave shard logs back into pre-order at
    merge time) and the pair's metrics snapshot JSON (so merged metrics
    reproduce the unsharded run even after a shard was killed and resumed).
    Plain outcome lines read back as entries with both fields [None]. *)

type entry = {
  outcome : Outcome.t;
  paths : int list list option;
      (** one box path per region of [outcome.regions], same order *)
  metrics_json : string option;
      (** [Obs.Metrics.to_json] of the pair's own metrics instance *)
}

val entry_to_string : entry -> string

(** @raise Parser.Parse_error on malformed input. *)
val entry_of_string : string -> entry

(** [append_entries path entries] appends, flushing per entry (same torn-
    tail discipline as {!append}). *)
val append_entries : string -> entry list -> unit

(** The structured view of a checkpoint file: optional leading header, the
    valid entry prefix, whether a torn/malformed tail was skipped, and the
    byte offset where the valid prefix ends (the truncation point for
    {!repair_checkpoint}). A missing file reads as the empty checkpoint. *)
type checkpoint = {
  cp_header : header option;
  entries : entry list;
  truncated : bool;
  valid_bytes : int;
}

val read_checkpoint : string -> checkpoint

(** [repair_checkpoint path] truncates a torn tail off [path] (no-op when
    the file is clean or absent) and returns the repaired view — required
    before appending to a checkpoint that survived a kill, because loaders
    stop at the torn line and would never see entries appended after it. *)
val repair_checkpoint : string -> checkpoint

(** [load_checkpoint path] loads the valid prefix of a checkpoint: [[]] if
    the file does not exist, and parsing stops silently at the first
    malformed line (a torn write from a killed campaign) — unlike {!load},
    which raises. [expect], when given, is checked against the file's
    header with {!check_header} ([Failure] on mismatch); headerless legacy
    checkpoints are accepted as before. *)
val load_checkpoint : ?expect:header -> string -> Outcome.t list

(** [paint_to_string o] — the paint log alone, one region s-expression per
    line. Stats (which carry wall-clock elapsed) are excluded: this is the
    rendering the shard-merge byte-identity contract is stated over. *)
val paint_to_string : Outcome.t -> string

(** [metrics_of_json_string s] parses [Obs.Metrics.to_json] output back
    into a snapshot, for merge-time folding.
    @raise Parser.Parse_error on malformed input. *)
val metrics_of_json_string : string -> Obs.Metrics.snapshot

(** {1 Trace JSON}

    {!Trace} event logs are exported as JSON for external tooling (jq,
    plotting scripts). Deterministic output: object fields are emitted in a
    fixed order and numbers use the shortest round-tripping decimal, so the
    trace of a deterministic run is byte-identical across runs — which is
    what the golden-file test pins down. *)

(** A minimal JSON document model, sufficient for traces. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** @raise Parser.Parse_error on malformed input. *)
  val of_string : string -> t
end

val trace_format_version : int

val json_of_trace : Trace.event list -> Json.t
val trace_of_json : Json.t -> Trace.event list

(** [trace_to_string events] / [trace_of_string s] — the versioned JSON
    round-trip of an event log. *)
val trace_to_string : Trace.event list -> string

val trace_of_string : string -> Trace.event list

(** [trace_report outcome events] — the [--trace] payload: the pair's
    labels and aggregated {!Outcome.stats} alongside the full event log.
    The report's [stats.total_expansions] equals the sum of the [fuel]
    fields of its [solve] events. *)
val trace_report : Outcome.t -> Trace.event list -> string
