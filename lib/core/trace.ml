type kind =
  | Contract of { revise_calls : int; sweeps : int }
  | Solve of { fuel : int; prunes : int }
  | Verdict of string
  | Split of int
  | Retry of { attempt : int; reason : string; fuel : int }

type event = { path : int list; depth : int; step : int; box : Box.t; kind : kind }

type t = { lock : Mutex.t; mutable events : event list }

let create () = { lock = Mutex.create (); events = [] }

let record r ev =
  Mutex.lock r.lock;
  r.events <- ev :: r.events;
  Mutex.unlock r.lock

let rec compare_path a b =
  match a, b with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys -> (
      match Int.compare x y with 0 -> compare_path xs ys | c -> c)

let compare_event a b =
  match compare_path a.path b.path with
  | 0 -> Int.compare a.step b.step
  | c -> c

let events r =
  Mutex.lock r.lock;
  let evs = r.events in
  Mutex.unlock r.lock;
  List.sort compare_event evs

let total_fuel evs =
  List.fold_left
    (fun acc ev ->
      match ev.kind with
      | Solve { fuel; _ } | Retry { fuel; _ } -> acc + fuel
      | _ -> acc)
    0 evs

let kind_name = function
  | Contract _ -> "contract"
  | Solve _ -> "solve"
  | Verdict _ -> "verdict"
  | Split _ -> "split"
  | Retry _ -> "retry"

let pp_event ppf ev =
  Format.fprintf ppf "[%s] depth %d %s"
    (String.concat "." (List.map string_of_int ev.path))
    ev.depth (kind_name ev.kind);
  match ev.kind with
  | Contract { revise_calls; sweeps } ->
      Format.fprintf ppf " revise=%d sweeps=%d" revise_calls sweeps
  | Solve { fuel; prunes } -> Format.fprintf ppf " fuel=%d prunes=%d" fuel prunes
  | Verdict s -> Format.fprintf ppf " %s" s
  | Split n -> Format.fprintf ppf " children=%d" n
  | Retry { attempt; reason; fuel } ->
      Format.fprintf ppf " attempt=%d reason=%s fuel=%d" attempt reason fuel
