type status =
  | Verified
  | Counterexample of (string * float) list
  | Inconclusive of (string * float) list
  | Timeout
  | Error of string

type region = { box : Box.t; status : status; depth : int }

type stats = {
  solver_calls : int;
  total_expansions : int;
  total_prunes : int;
  total_revise_calls : int;
  retries : int;
  elapsed : float;
}

let zero_stats =
  {
    solver_calls = 0;
    total_expansions = 0;
    total_prunes = 0;
    total_revise_calls = 0;
    retries = 0;
    elapsed = 0.0;
  }

type t = {
  dfa : string;
  condition : string;
  domain : Box.t;
  regions : region list;
  stats : stats;
}

type classification = Full_verified | Partial_verified | Unknown | Refuted

let rasterize t ~xdim ~ydim ~nx ~ny =
  let dx = Box.get t.domain xdim and dy = Box.get t.domain ydim in
  let x0 = Interval.inf dx and x1 = Interval.sup dx in
  let y0 = Interval.inf dy and y1 = Interval.sup dy in
  let grid = Array.make_matrix ny nx Timeout in
  let cell_x j = x0 +. ((x1 -. x0) *. (float_of_int j +. 0.5) /. float_of_int nx) in
  let cell_y i = y0 +. ((y1 -. y0) *. (float_of_int i +. 0.5) /. float_of_int ny) in
  (* For 1-D outcomes the caller passes xdim = ydim; the row dimension is
     then a dummy and must not be containment-checked a second time. *)
  let one_dim = String.equal xdim ydim in
  List.iter
    (fun r ->
      let bx = Box.get r.box xdim and by = Box.get r.box ydim in
      for i = 0 to ny - 1 do
        if one_dim || Interval.mem (cell_y i) by then
          for j = 0 to nx - 1 do
            if Interval.mem (cell_x j) bx then grid.(i).(j) <- r.status
          done
      done)
    t.regions;
  grid

type coverage = {
  verified : float;
  counterexample : float;
  inconclusive : float;
  timeout : float;
  error : float;
}

(* Pick the plotting plane: (rs, s) when 2D+, rs alone for LDAs. *)
let plane t =
  match Box.vars t.domain with
  | [ only ] -> (only, only)
  | x :: y :: _ -> (x, y)
  | [] -> assert false

let coverage ?(resolution = 64) t =
  let xdim, ydim = plane t in
  let grid =
    if String.equal xdim ydim then
      rasterize t ~xdim ~ydim ~nx:resolution ~ny:1
    else rasterize t ~xdim ~ydim ~nx:resolution ~ny:resolution
  in
  let counts = [| 0; 0; 0; 0; 0 |] in
  Array.iter
    (Array.iter (fun s ->
         let k =
           match s with
           | Verified -> 0
           | Counterexample _ -> 1
           | Inconclusive _ -> 2
           | Timeout -> 3
           | Error _ -> 4
         in
         counts.(k) <- counts.(k) + 1))
    grid;
  let total = float_of_int (Array.fold_left ( + ) 0 counts) in
  {
    verified = float_of_int counts.(0) /. total;
    counterexample = float_of_int counts.(1) /. total;
    inconclusive = float_of_int counts.(2) /. total;
    timeout = float_of_int counts.(3) /. total;
    error = float_of_int counts.(4) /. total;
  }

let has_counterexample t =
  List.exists
    (fun r -> match r.status with Counterexample _ -> true | _ -> false)
    t.regions

let classify ?(resolution = 64) t =
  if has_counterexample t then Refuted
  else begin
    let c = coverage ~resolution t in
    if c.verified >= 1.0 then Full_verified
    else if c.verified > 0.0 then Partial_verified
    else Unknown
  end

let first_counterexample t =
  List.find_map
    (fun r -> match r.status with Counterexample m -> Some m | _ -> None)
    t.regions

let classification_symbol = function
  | Full_verified -> "OK"
  | Partial_verified -> "OK*"
  | Unknown -> "?"
  | Refuted -> "X"

let status_name = function
  | Verified -> "verified"
  | Counterexample _ -> "counterexample"
  | Inconclusive _ -> "inconclusive"
  | Timeout -> "timeout"
  | Error _ -> "error"

let has_error t =
  List.exists
    (fun r -> match r.status with Error _ -> true | _ -> false)
    t.regions

let first_error t =
  List.find_map
    (fun r -> match r.status with Error m -> Some m | _ -> None)
    t.regions

let pp_summary ppf t =
  let c = coverage t in
  Format.fprintf ppf
    "%s / %s: %s  (verified %.1f%%, cex %.1f%%, inconclusive %.1f%%, timeout \
     %.1f%%; %d solver calls, %d expansions, %.2fs)"
    t.dfa t.condition
    (classification_symbol (classify t))
    (100. *. c.verified) (100. *. c.counterexample)
    (100. *. c.inconclusive) (100. *. c.timeout) t.stats.solver_calls
    t.stats.total_expansions t.stats.elapsed;
  if c.error > 0.0 || t.stats.retries > 0 then
    Format.fprintf ppf " [errors %.1f%%, %d retries]" (100. *. c.error)
      t.stats.retries
