(* Telemetry: box verdict counts, retries and checkpoint writes are
   deterministic (they depend only on the work, identical at every worker
   count for deadline-free campaigns); drained-box counts exist only under
   a deadline and are wall-class. *)
let m_boxes = Obs.Metrics.counter "verify.boxes"
let m_verified = Obs.Metrics.counter "verify.boxes.verified"
let m_counterexample = Obs.Metrics.counter "verify.boxes.counterexample"
let m_inconclusive = Obs.Metrics.counter "verify.boxes.inconclusive"
let m_timeout = Obs.Metrics.counter "verify.boxes.timeout"
let m_error = Obs.Metrics.counter "verify.boxes.error"
let m_subthreshold = Obs.Metrics.counter "verify.subthreshold"
let m_solver_calls = Obs.Metrics.counter "verify.solver_calls"
let m_retries = Obs.Metrics.counter "verify.retry_attempts"
let m_drained = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "verify.drained"
let m_pairs = Obs.Metrics.counter "campaign.pairs"
let m_ckpt = Obs.Metrics.counter "campaign.checkpoint_writes"
let h_depth = Obs.Metrics.histogram "verify.box_depth"

type retry_policy = { max_retries : int; fuel_growth : int }

let no_retry = { max_retries = 0; fuel_growth = 2 }

type config = {
  threshold : float;
  solver : Icp.config;
  deadline_seconds : float option;
  workers : int;
  use_taylor : bool;
  use_tape : bool;
  split_heuristic : [ `Widest | `Smear ];
  retry : retry_policy;
}

let default_config =
  {
    threshold = 0.05;
    solver =
      { Icp.default_config with fuel = 600; delta = 1e-4; contractor_rounds = 3 };
    deadline_seconds = None;
    workers = 1;
    use_taylor = true;
    use_tape = true;
    split_heuristic = `Widest;
    retry = no_retry;
  }

let quick_config =
  {
    threshold = 0.15625;
    solver =
      { Icp.default_config with fuel = 250; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 30.0;
    workers = 1;
    use_taylor = true;
    use_tape = true;
    split_heuristic = `Widest;
    retry = no_retry;
  }

(* Fuel for retry attempt [k]: the base budget escalated by the policy's
   growth factor, saturating well below overflow. *)
let escalated_fuel base growth k =
  let growth = Stdlib.max 1 growth in
  let cap = 1_000_000_000 in
  let rec go fuel k =
    if k <= 0 then fuel
    else if fuel >= cap / growth then cap
    else go (fuel * growth) (k - 1)
  in
  go base (Stdlib.max 0 k)

(* The paper's valid(x): plug the model back into the *negated* condition in
   float arithmetic; a true counterexample violates psi, i.e. satisfies
   not psi. *)
let valid_model negated model = Form.all_hold_at model negated

(* A scheduler task: one box of the splitting tree. [path] is the sequence
   of child indices from the root; it makes the paint log's pre-order
   reconstructible after out-of-order parallel execution. [width] and
   [margin] are cached at task creation so the heap comparator never
   touches the box or the expression. *)
type task = {
  box : Box.t;
  depth : int;
  path : int list;
  width : float;
  margin : float;
  smear : float;  (* max per-dimension smear score; 0.0 under `Widest *)
}

(* Widest-box-first; among boxes of equal width (siblings of one splitting
   generation), most-violating-first — the worklist generalization of the
   old recursion's violation-first child ordering, and what still reaches
   small counterexample pockets (e.g. the LYP T_c-bound corner at rs > 4.8,
   s > 2.4) long before the deadline. *)
let schedule_order a b =
  match Float.compare b.width a.width with
  | 0 -> Float.compare a.margin b.margin
  | c -> c

(* Gradient-magnitude priority for the `Smear heuristic: workers drain the
   boxes where the formula is steepest — the ones most likely to resolve
   into a prune or a counterexample — first; {!schedule_order} breaks ties
   so the order stays total and deterministic. *)
let schedule_order_smear a b =
  match Float.compare b.smear a.smear with
  | 0 -> schedule_order a b
  | c -> c

let run_custom ?(config = default_config) ?recorder ~dfa_label ~condition_label
    ~domain ~(psi : Form.atom) () =
  let negated = [ Form.negate_atom psi ] in
  (* Compile the negated formula once per (DFA, condition) pair — not per
     box — and hand the tape to every solver call through its config. The
     compiled form is immutable and shared by all worker domains. *)
  let tape, contractors =
    Obs.Metrics.time_phase Obs.Metrics.Encode (fun () ->
        let tape =
          if config.use_tape then
            Some (Hc4.compile ~vars:(Box.vars domain) negated)
          else None
        in
        let contractors =
          if not config.use_taylor then []
          else
            match tape with
            | Some compiled ->
                (* tape-native mean-value contractor: one adjoint sweep per
                   atom instead of a symbolic-gradient tree walk per
                   variable *)
                [ Hc4.mean_value_tape compiled ]
            | None ->
                List.map
                  (fun a ->
                    Taylor.contractor
                      (Taylor.prepare ~vars:(Box.vars domain) a))
                  negated
        in
        (tape, contractors))
  in
  let solver_config =
    {
      config.solver with
      Icp.tape;
      split_heuristic = config.split_heuristic;
    }
  in
  (* Campaign-level smear priority: the task's key is its maximum
     per-dimension smear score, from the same compiled tape the solver
     replays. 0.0 (priority off) under `Widest or without a tape. *)
  let smear_of box =
    match (config.split_heuristic, tape) with
    | `Smear, Some compiled ->
        Array.fold_left Float.max 0.0 (Hc4.smear_scores compiled box)
    | _ -> 0.0
  in
  let started = Unix.gettimeofday () in
  let deadline =
    Option.map (fun s -> started +. s) config.deadline_seconds
  in
  let past_deadline () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  let solver_calls = Atomic.make 0
  and total_expansions = Atomic.make 0
  and total_prunes = Atomic.make 0
  and total_revise_calls = Atomic.make 0
  and total_retries = Atomic.make 0 in
  let record path depth box step kind =
    match recorder with
    | Some r -> Trace.record r { Trace.path; depth; step; box; kind }
    | None -> ()
  in
  (* Midpoint margin towards satisfying (not psi): smaller = more violating.
     Pure search heuristic — evaluation only, no expression construction,
     so it is safe on worker domains. *)
  let margin box =
    match negated with
    | [ a ] ->
        let v = Eval.eval (Box.midpoint box) a.Form.expr in
        if Float.is_nan v then Float.infinity
        else (
          match a.Form.rel with
          | Form.Ge0 | Form.Gt0 -> -.v
          | Form.Le0 | Form.Lt0 | Form.Eq0 -> v)
    | _ -> 0.0
  in
  let children t =
    Obs.Metrics.time_phase Obs.Metrics.Split @@ fun () ->
    let boxes =
      match (config.split_heuristic, tape) with
      | `Smear, Some compiled ->
          (* bisect only the dimension of maximal smear: two children that
             cut across the formula's steepest direction, instead of the
             2^k blind split of every dimension *)
          let b1, b2 =
            Box.split_smear t.box ~scores:(Hc4.smear_scores compiled t.box)
          in
          [ b1; b2 ]
      | _ -> Box.split_all t.box
    in
    let boxes =
      List.stable_sort
        (fun (_, m1) (_, m2) -> Float.compare m1 m2)
        (List.map (fun b -> (b, margin b)) boxes)
    in
    record t.path t.depth t.box 3 (Trace.Split (List.length boxes));
    List.mapi
      (fun i (b, m) ->
        {
          box = b;
          depth = t.depth + 1;
          path = t.path @ [ i ];
          width = Box.max_width b;
          margin = m;
          smear = smear_of b;
        })
      boxes
  in
  let add_stats (stats : Icp.stats) =
    ignore (Atomic.fetch_and_add total_expansions stats.Icp.expansions);
    ignore (Atomic.fetch_and_add total_prunes stats.Icp.prunes);
    ignore (Atomic.fetch_and_add total_revise_calls stats.Icp.revise_calls)
  in
  (* Handle one box: solve (with the bounded retry policy), paint, and
     split when unresolved. Runs on worker domains; everything here is
     construction-free (the formula and contractors were built above, on
     the calling domain). A solver call that raises is isolated to this
     box: retried with escalated fuel while attempts remain, then painted
     as an [Error] region; timed-out calls are retried the same way.
     Fault decisions and fuel schedules depend only on the box and the
     attempt ordinal, never on scheduling, so the paint log stays
     identical at every worker count. *)
  let handle t =
    if t.width < config.threshold then begin
      Obs.Metrics.incr m_subthreshold 1;
      (None, [])
    end
    else begin
      let region status subtasks =
        record t.path t.depth t.box 2 (Trace.Verdict (Outcome.status_name status));
        Obs.Metrics.incr m_boxes 1;
        Obs.Metrics.observe h_depth t.depth;
        Obs.Metrics.incr
          (match status with
          | Outcome.Verified -> m_verified
          | Outcome.Counterexample _ -> m_counterexample
          | Outcome.Inconclusive _ -> m_inconclusive
          | Outcome.Timeout -> m_timeout
          | Outcome.Error _ -> m_error)
          1;
        ( Some (t.path, { Outcome.box = t.box; status; depth = t.depth }),
          subtasks )
      in
      (* Retry events get negative steps so a box's failed attempts sort
         before its final contract/solve burst in the path-ordered log. *)
      let record_retry k reason fuel =
        Atomic.incr total_retries;
        Obs.Metrics.incr m_retries 1;
        record t.path t.depth t.box (k + 1 - 1000)
          (Trace.Retry { attempt = k + 1; reason; fuel })
      in
      let rec attempt_solve k =
        Atomic.incr solver_calls;
        Obs.Metrics.incr m_solver_calls 1;
        let scfg =
          {
            solver_config with
            Icp.fuel =
              escalated_fuel solver_config.Icp.fuel config.retry.fuel_growth k;
          }
        in
        let solve () = Icp.solve ~contractors ~attempt:k scfg t.box negated in
        (* re-attempts are additionally attributed to the retry phase (they
           also count towards contract/solve inside the solver) *)
        let solve =
          if k = 0 then solve
          else fun () -> Obs.Metrics.time_phase Obs.Metrics.Retry solve
        in
        match solve () with
        | exception e ->
            if k < config.retry.max_retries then begin
              (* the aborted attempt's counters are lost with the
                 exception; its retry event carries zero fuel *)
              record_retry k "error" 0;
              attempt_solve (k + 1)
            end
            else `Failed (Printexc.to_string e)
        | Icp.Timeout, stats when k < config.retry.max_retries ->
            add_stats stats;
            record_retry k "timeout" stats.Icp.expansions;
            attempt_solve (k + 1)
        | verdict, stats ->
            add_stats stats;
            record t.path t.depth t.box 0
              (Trace.Contract
                 {
                   revise_calls = stats.Icp.revise_calls;
                   sweeps = stats.Icp.sweeps;
                 });
            record t.path t.depth t.box 1
              (Trace.Solve
                 { fuel = stats.Icp.expansions; prunes = stats.Icp.prunes });
            `Solved verdict
      in
      match attempt_solve 0 with
      | `Failed msg ->
          (* error isolation: this box is painted errored and split — its
             children re-roll the dice — while the campaign continues *)
          region (Outcome.Error msg) (children t)
      | `Solved Icp.Unsat -> region Outcome.Verified []
      | `Solved (Icp.Sat { model; _ }) ->
          let status =
            if valid_model negated model then Outcome.Counterexample model
            else Outcome.Inconclusive model
          in
          region status (children t)
      | `Solved Icp.Timeout -> region Outcome.Timeout (children t)
    end
  in
  (* Supervision backstop: a failure outside the retried solver call (e.g.
     in the split heuristic) still only costs its own box. *)
  let recover t e =
    let status = Outcome.Error (Printexc.to_string e) in
    record t.path t.depth t.box 2 (Trace.Verdict (Outcome.status_name status));
    Obs.Metrics.incr m_boxes 1;
    Obs.Metrics.incr m_error 1;
    Obs.Metrics.observe h_depth t.depth;
    (Some (t.path, { Outcome.box = t.box; status; depth = t.depth }), [])
  in
  let root =
    {
      box = domain;
      depth = 0;
      path = [];
      width = Box.max_width domain;
      margin = 0.0;
      smear = smear_of domain;
    }
  in
  let compare =
    match config.split_heuristic with
    | `Widest -> schedule_order
    | `Smear -> schedule_order_smear
  in
  let { Worklist.results; dropped } =
    Worklist.process ~workers:(Stdlib.max 1 config.workers)
      ~compare ~stop:past_deadline ~recover ~handle [ root ]
  in
  (* Graceful drain: boxes still pending at the deadline are painted as
     timeouts (the old recursion's behaviour for boxes it reached after the
     deadline), except sub-threshold boxes, which would not have been
     solved anyway. *)
  let drained =
    List.filter_map
      (fun t ->
        if t.width < config.threshold then None
        else
          Some (t.path, { Outcome.box = t.box; status = Outcome.Timeout;
                          depth = t.depth }))
      dropped
  in
  Obs.Metrics.incr m_drained (List.length drained);
  (* Restore the pre-order paint log: parents (shorter paths) before
     children, siblings in violation-first order — identical to the old
     depth-first recursion's log, and identical at every worker count. *)
  let regions =
    Obs.Metrics.time_phase Obs.Metrics.Paint (fun () ->
        List.filter_map Fun.id results @ drained
        |> List.sort (fun (p1, _) (p2, _) -> Trace.compare_path p1 p2)
        |> List.map snd)
  in
  {
    Outcome.dfa = dfa_label;
    condition = condition_label;
    domain;
    regions;
    stats =
      {
        Outcome.solver_calls = Atomic.get solver_calls;
        total_expansions = Atomic.get total_expansions;
        total_prunes = Atomic.get total_prunes;
        total_revise_calls = Atomic.get total_revise_calls;
        retries = Atomic.get total_retries;
        elapsed = Unix.gettimeofday () -. started;
      };
  }

let run ?config ?recorder (p : Encoder.problem) =
  run_custom ?config ?recorder ~dfa_label:p.Encoder.dfa.Registry.label
    ~condition_label:(Conditions.name p.Encoder.condition)
    ~domain:p.Encoder.domain ~psi:p.Encoder.psi ()

let run_pair ?config ?recorder dfa cond =
  Option.map (run ?config ?recorder) (Encoder.encode dfa cond)

(* A pair whose run failed outright (exception outside the box-level
   isolation, retries exhausted): the whole domain is painted as a single
   error region so the campaign table still has a cell for it. *)
let error_outcome ~dfa ~condition ~domain ~retries msg =
  {
    Outcome.dfa;
    condition;
    domain;
    regions = [ { Outcome.box = domain; status = Outcome.Error msg; depth = 0 } ];
    stats = { Outcome.zero_stats with Outcome.retries };
  }

let load_resumed = function
  | None -> []
  | Some path -> Serialize.load_checkpoint path

let find_resumed resumed ~dfa_label ~condition_name =
  List.find_opt
    (fun (o : Outcome.t) ->
      String.equal o.Outcome.dfa dfa_label
      && String.equal o.Outcome.condition condition_name)
    resumed

(* Pair-level supervision: retry a pair whose run raised with escalated
   fuel, then give up with an [error_outcome]. Box-level isolation inside
   [run] already absorbs solver failures, so this is the outer belt. *)
let run_pair_supervised ~config (p : Encoder.problem) =
  let dfa = p.Encoder.dfa.Registry.label
  and condition = Conditions.name p.Encoder.condition in
  let rec go k =
    let cfg =
      {
        config with
        solver =
          {
            config.solver with
            Icp.fuel =
              escalated_fuel config.solver.Icp.fuel config.retry.fuel_growth k;
          };
      }
    in
    match run ~config:cfg p with
    | o when k = 0 -> o
    | o ->
        (* surface the pair-level attempts alongside the box-level ones *)
        {
          o with
          Outcome.stats =
            {
              o.Outcome.stats with
              Outcome.retries = o.Outcome.stats.Outcome.retries + k;
            };
        }
    | exception e ->
        if k < config.retry.max_retries then go (k + 1)
        else
          error_outcome ~dfa ~condition ~domain:p.Encoder.domain ~retries:k
            (Printexc.to_string e)
  in
  go 0

let campaign ?(config = default_config) ?checkpoint ?resume dfas =
  let resumed = load_resumed resume in
  List.concat_map
    (fun dfa ->
      List.filter_map
        (fun cond ->
          match
            find_resumed resumed ~dfa_label:dfa.Registry.label
              ~condition_name:(Conditions.name cond)
          with
          | Some o -> Some o
          | None -> (
              match
                Obs.Metrics.time_phase Obs.Metrics.Encode (fun () ->
                    Encoder.encode dfa cond)
              with
              | None -> None
              | Some p ->
                  let o = run_pair_supervised ~config p in
                  Obs.Metrics.incr m_pairs 1;
                  (* one flushed line per completed pair: a SIGKILL loses at
                     most the pair in flight, and resume replays the rest *)
                  Option.iter
                    (fun path ->
                      Serialize.append path [ o ];
                      Obs.Metrics.incr m_ckpt 1)
                    checkpoint;
                  Some o))
        Conditions.all)
    dfas

let campaign_parallel ?(config = default_config) ?checkpoint ?resume ~workers
    dfas =
  (* Expressions must be hash-consed on the main domain (the cons table is
     unsynchronized); encode everything first, then fan the construction-free
     solver runs out over the pool. *)
  let problems =
    Obs.Metrics.time_phase Obs.Metrics.Encode (fun () ->
        Encoder.encode_all dfas)
  in
  let resumed = load_resumed resume in
  let fresh, reused =
    List.partition
      (fun (p : Encoder.problem) ->
        Option.is_none
          (find_resumed resumed ~dfa_label:p.Encoder.dfa.Registry.label
             ~condition_name:(Conditions.name p.Encoder.condition)))
      problems
  in
  ignore reused;
  let outcomes =
    List.map2
      (fun (p : Encoder.problem) result ->
        match result with
        | Ok o -> o
        | Error e ->
            error_outcome ~dfa:p.Encoder.dfa.Registry.label
              ~condition:(Conditions.name p.Encoder.condition)
              ~domain:p.Encoder.domain ~retries:config.retry.max_retries
              (Printexc.to_string e))
      fresh
      (Pool.map_result ~workers (run_pair_supervised ~config) fresh)
  in
  Obs.Metrics.incr m_pairs (List.length outcomes);
  Option.iter
    (fun path ->
      Serialize.append path outcomes;
      Obs.Metrics.incr m_ckpt 1)
    checkpoint;
  (* splice resumed outcomes back in canonical pair order *)
  List.filter_map
    (fun (p : Encoder.problem) ->
      match
        find_resumed resumed ~dfa_label:p.Encoder.dfa.Registry.label
          ~condition_name:(Conditions.name p.Encoder.condition)
      with
      | Some o -> Some o
      | None ->
          List.find_opt
            (fun (o : Outcome.t) ->
              String.equal o.Outcome.dfa p.Encoder.dfa.Registry.label
              && String.equal o.Outcome.condition
                   (Conditions.name p.Encoder.condition))
            outcomes)
    problems
