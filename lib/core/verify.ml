(* Telemetry: box verdict counts and retries are deterministic (they
   depend only on the work, identical at every worker count for
   deadline-free campaigns); drained-box counts exist only under a
   deadline, and checkpoint writes depend on how the run is deployed
   (sharded campaigns write one file per shard) — both wall-class. *)
let m_boxes = Obs.Metrics.counter "verify.boxes"
let m_verified = Obs.Metrics.counter "verify.boxes.verified"
let m_counterexample = Obs.Metrics.counter "verify.boxes.counterexample"
let m_inconclusive = Obs.Metrics.counter "verify.boxes.inconclusive"
let m_timeout = Obs.Metrics.counter "verify.boxes.timeout"
let m_error = Obs.Metrics.counter "verify.boxes.error"
let m_subthreshold = Obs.Metrics.counter "verify.subthreshold"
let m_solver_calls = Obs.Metrics.counter "verify.solver_calls"
let m_retries = Obs.Metrics.counter "verify.retry_attempts"
let m_drained = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "verify.drained"
let m_pairs = Obs.Metrics.counter "campaign.pairs"
let m_ckpt = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "campaign.checkpoint_writes"
let h_depth = Obs.Metrics.histogram "verify.box_depth"

type retry_policy = { max_retries : int; fuel_growth : int }

let no_retry = { max_retries = 0; fuel_growth = 2 }

type config = {
  threshold : float;
  solver : Icp.config;
  deadline_seconds : float option;
  workers : int;
  use_taylor : bool;
  use_tape : bool;
  split_heuristic : [ `Widest | `Smear ];
  retry : retry_policy;
  jit : bool;
  jit_cache : string option;
}

let default_config =
  {
    threshold = 0.05;
    solver =
      { Icp.default_config with fuel = 600; delta = 1e-4; contractor_rounds = 3 };
    deadline_seconds = None;
    workers = 1;
    use_taylor = true;
    use_tape = true;
    split_heuristic = `Widest;
    retry = no_retry;
    jit = false;
    jit_cache = None;
  }

let quick_config =
  {
    threshold = 0.15625;
    solver =
      { Icp.default_config with fuel = 250; delta = 1e-3; contractor_rounds = 2 };
    deadline_seconds = Some 30.0;
    workers = 1;
    use_taylor = true;
    use_tape = true;
    split_heuristic = `Widest;
    retry = no_retry;
    jit = false;
    jit_cache = None;
  }

(* Fuel for retry attempt [k]: the base budget escalated by the policy's
   growth factor, saturating well below overflow. *)
let escalated_fuel base growth k =
  let growth = Stdlib.max 1 growth in
  let cap = 1_000_000_000 in
  let rec go fuel k =
    if k <= 0 then fuel
    else if fuel >= cap / growth then cap
    else go (fuel * growth) (k - 1)
  in
  go base (Stdlib.max 0 k)

(* The paper's valid(x): plug the model back into the *negated* condition in
   float arithmetic; a true counterexample violates psi, i.e. satisfies
   not psi. *)
let valid_model negated model = Form.all_hold_at model negated

(* A scheduler task: one box of the splitting tree. [path] is the sequence
   of child indices from the root; it makes the paint log's pre-order
   reconstructible after out-of-order parallel execution. [width] and
   [margin] are cached at task creation so the heap comparator never
   touches the box or the expression. *)
type task = {
  box : Box.t;
  depth : int;
  path : int list;
  width : float;
  margin : float;
  smear : float;  (* max per-dimension smear score; 0.0 under `Widest *)
}

(* Widest-box-first; among boxes of equal width (siblings of one splitting
   generation), most-violating-first — the worklist generalization of the
   old recursion's violation-first child ordering, and what still reaches
   small counterexample pockets (e.g. the LYP T_c-bound corner at rs > 4.8,
   s > 2.4) long before the deadline. *)
let schedule_order a b =
  match Float.compare b.width a.width with
  | 0 -> Float.compare a.margin b.margin
  | c -> c

(* Gradient-magnitude priority for the `Smear heuristic: workers drain the
   boxes where the formula is steepest — the ones most likely to resolve
   into a prune or a counterexample — first; {!schedule_order} breaks ties
   so the order stays total and deterministic. *)
let schedule_order_smear a b =
  match Float.compare b.smear a.smear with
  | 0 -> schedule_order a b
  | c -> c

(* Multi-process sharding: a campaign pair's box tree is partitioned by
   box-path prefix. Every shard deterministically replays the {e trunk} —
   the nodes shallower than [trunk_depth] — because the frontier below a
   node depends on solve results (verified trunk boxes have no children);
   only shard 0 paints and counts the trunk, the others replay it silently
   against scratch stats/metrics. Frontier nodes (depth = [trunk_depth])
   are assigned round-robin in deterministic walk order, so the shards
   partition the frontier exactly and the union of the per-shard paint
   logs is the unsharded log, at any shard count. *)
type shard_spec = { shard_index : int; shard_count : int }

(* Smallest depth whose full frontier has at least two nodes per shard
   (fan-out permitting); 0 for a single shard, which makes 1-sharding
   exactly the unsharded run. *)
let shard_trunk_depth ~fanout ~count =
  if count <= 1 then 0
  else
    let fanout = Stdlib.max 2 fanout in
    let rec go d cells =
      if cells >= 2 * count then d else go (d + 1) (cells * fanout)
    in
    go 0 1

(* Per-run solver statistics, aggregated across worker domains. The silent
   trunk replay of non-owner shards writes to a scratch sink, so each node's
   stats — like its metrics — are counted exactly once across the fleet. *)
type stat_sink = {
  sk_calls : int Atomic.t;
  sk_expansions : int Atomic.t;
  sk_prunes : int Atomic.t;
  sk_revises : int Atomic.t;
  sk_retries : int Atomic.t;
}

let fresh_sink () =
  {
    sk_calls = Atomic.make 0;
    sk_expansions = Atomic.make 0;
    sk_prunes = Atomic.make 0;
    sk_revises = Atomic.make 0;
    sk_retries = Atomic.make 0;
  }

let run_custom_sharded ?(config = default_config) ?recorder ?shard ?stop
    ~dfa_label ~condition_label ~domain ~(psi : Form.atom) () =
  let negated = [ Form.negate_atom psi ] in
  (* Compile the negated formula once per (DFA, condition) pair — not per
     box — and hand the tape to every solver call through its config. The
     compiled form is immutable and shared by all worker domains. *)
  let tape, contractors =
    Obs.Metrics.time_phase Obs.Metrics.Encode (fun () ->
        let tape =
          if config.use_tape then
            Some (Hc4.compile ~vars:(Box.vars domain) negated)
          else None
        in
        let contractors =
          if not config.use_taylor then []
          else
            match tape with
            | Some compiled ->
                (* tape-native mean-value contractor: one adjoint sweep per
                   atom instead of a symbolic-gradient tree walk per
                   variable *)
                [ Hc4.mean_value_tape compiled ]
            | None ->
                List.map
                  (fun a ->
                    Taylor.contractor
                      (Taylor.prepare ~vars:(Box.vars domain) a))
                  negated
        in
        (tape, contractors))
  in
  (* JIT: compile the same tape into a batched native kernel, once per
     pair. The kernel replays the whole contraction pipeline (HC4 agenda
     plus the mean-value stage when [use_taylor]) bit-identically, so
     engaging it never changes paint. Any failure — no C compiler, a
     failing compile, a bad dlopen — leaves [native = None] and the run
     continues on the interpreted tape ([jit.fallbacks] counts it). *)
  let native =
    match (config.jit, tape) with
    | true, Some compiled -> (
        match
          Jit.plan ?cache_dir:config.jit_cache ~mvf:config.use_taylor
            ~rounds:config.solver.Icp.contractor_rounds compiled
        with
        | Ok plan -> Some (Jit.native_batch plan)
        | Error _ -> None)
    | _ -> None
  in
  let solver_config =
    {
      config.solver with
      Icp.tape;
      split_heuristic = config.split_heuristic;
      native;
    }
  in
  (* Campaign-level smear priority: the task's key is its maximum
     per-dimension smear score, from the same compiled tape the solver
     replays. 0.0 (priority off) under `Widest or without a tape. *)
  let smear_of box =
    match (config.split_heuristic, tape) with
    | `Smear, Some compiled ->
        Array.fold_left Float.max 0.0 (Hc4.smear_scores compiled box)
    | _ -> 0.0
  in
  let started = Unix.gettimeofday () in
  let deadline =
    Option.map (fun s -> started +. s) config.deadline_seconds
  in
  (* Cooperative cancellation: the worklist polls this before popping each
     task, so a fired deadline — or an external stop hook (the service
     daemon's per-query cancel flag) — drains the frontier gracefully into
     a partial verdict map instead of aborting. *)
  let past_deadline () =
    (match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false)
    || match stop with Some f -> f () | None -> false
  in
  let sink = fresh_sink () in
  let record path depth box step kind =
    match recorder with
    | Some r -> Trace.record r { Trace.path; depth; step; box; kind }
    | None -> ()
  in
  let no_record _ _ _ _ _ = () in
  (* Midpoint margin towards satisfying (not psi): smaller = more violating.
     Pure search heuristic — evaluation only, no expression construction,
     so it is safe on worker domains. *)
  let margin box =
    match negated with
    | [ a ] ->
        let v = Eval.eval (Box.midpoint box) a.Form.expr in
        if Float.is_nan v then Float.infinity
        else (
          match a.Form.rel with
          | Form.Ge0 | Form.Gt0 -> -.v
          | Form.Le0 | Form.Lt0 | Form.Eq0 -> v)
    | _ -> 0.0
  in
  let children ~record t =
    Obs.Metrics.time_phase Obs.Metrics.Split @@ fun () ->
    let boxes =
      match (config.split_heuristic, tape) with
      | `Smear, Some compiled ->
          (* bisect only the dimension of maximal smear: two children that
             cut across the formula's steepest direction, instead of the
             2^k blind split of every dimension *)
          let b1, b2 =
            Box.split_smear t.box ~scores:(Hc4.smear_scores compiled t.box)
          in
          [ b1; b2 ]
      | _ -> Box.split_all t.box
    in
    let boxes =
      List.stable_sort
        (fun (_, m1) (_, m2) -> Float.compare m1 m2)
        (List.map (fun b -> (b, margin b)) boxes)
    in
    record t.path t.depth t.box 3 (Trace.Split (List.length boxes));
    List.mapi
      (fun i (b, m) ->
        {
          box = b;
          depth = t.depth + 1;
          path = t.path @ [ i ];
          width = Box.max_width b;
          margin = m;
          smear = smear_of b;
        })
      boxes
  in
  (* Handle one box: solve (with the bounded retry policy), paint, and
     split when unresolved. Runs on worker domains; everything here is
     construction-free (the formula and contractors were built above, on
     the calling domain). A solver call that raises is isolated to this
     box: retried with escalated fuel while attempts remain, then painted
     as an [Error] region; timed-out calls are retried the same way.
     Fault decisions and fuel schedules depend only on the box and the
     attempt ordinal, never on scheduling, so the paint log stays
     identical at every worker count — and at every shard count. *)
  let handle_with ~sink ~record t =
    if t.width < config.threshold then begin
      Obs.Metrics.incr m_subthreshold 1;
      (None, [])
    end
    else begin
      let add_stats (stats : Icp.stats) =
        ignore (Atomic.fetch_and_add sink.sk_expansions stats.Icp.expansions);
        ignore (Atomic.fetch_and_add sink.sk_prunes stats.Icp.prunes);
        ignore (Atomic.fetch_and_add sink.sk_revises stats.Icp.revise_calls)
      in
      let region status subtasks =
        record t.path t.depth t.box 2 (Trace.Verdict (Outcome.status_name status));
        Obs.Metrics.incr m_boxes 1;
        Obs.Metrics.observe h_depth t.depth;
        Obs.Metrics.incr
          (match status with
          | Outcome.Verified -> m_verified
          | Outcome.Counterexample _ -> m_counterexample
          | Outcome.Inconclusive _ -> m_inconclusive
          | Outcome.Timeout -> m_timeout
          | Outcome.Error _ -> m_error)
          1;
        ( Some (t.path, { Outcome.box = t.box; status; depth = t.depth }),
          subtasks )
      in
      (* Retry events get negative steps so a box's failed attempts sort
         before its final contract/solve burst in the path-ordered log. *)
      let record_retry k reason fuel =
        Atomic.incr sink.sk_retries;
        Obs.Metrics.incr m_retries 1;
        record t.path t.depth t.box (k + 1 - 1000)
          (Trace.Retry { attempt = k + 1; reason; fuel })
      in
      let rec attempt_solve k =
        Atomic.incr sink.sk_calls;
        Obs.Metrics.incr m_solver_calls 1;
        let scfg =
          {
            solver_config with
            Icp.fuel =
              escalated_fuel solver_config.Icp.fuel config.retry.fuel_growth k;
          }
        in
        let solve () = Icp.solve ~contractors ~attempt:k scfg t.box negated in
        (* re-attempts are additionally attributed to the retry phase (they
           also count towards contract/solve inside the solver) *)
        let solve =
          if k = 0 then solve
          else fun () -> Obs.Metrics.time_phase Obs.Metrics.Retry solve
        in
        match solve () with
        | exception e ->
            if k < config.retry.max_retries then begin
              (* the aborted attempt's counters are lost with the
                 exception; its retry event carries zero fuel *)
              record_retry k "error" 0;
              attempt_solve (k + 1)
            end
            else `Failed (Printexc.to_string e)
        | Icp.Timeout, stats when k < config.retry.max_retries ->
            add_stats stats;
            record_retry k "timeout" stats.Icp.expansions;
            attempt_solve (k + 1)
        | verdict, stats ->
            add_stats stats;
            record t.path t.depth t.box 0
              (Trace.Contract
                 {
                   revise_calls = stats.Icp.revise_calls;
                   sweeps = stats.Icp.sweeps;
                 });
            record t.path t.depth t.box 1
              (Trace.Solve
                 { fuel = stats.Icp.expansions; prunes = stats.Icp.prunes });
            `Solved verdict
      in
      match attempt_solve 0 with
      | `Failed msg ->
          (* error isolation: this box is painted errored and split — its
             children re-roll the dice — while the campaign continues *)
          region (Outcome.Error msg) (children ~record t)
      | `Solved Icp.Unsat -> region Outcome.Verified []
      | `Solved (Icp.Sat { model; _ }) ->
          let status =
            if valid_model negated model then Outcome.Counterexample model
            else Outcome.Inconclusive model
          in
          region status (children ~record t)
      | `Solved Icp.Timeout -> region Outcome.Timeout (children ~record t)
    end
  in
  (* Supervision backstop: a failure outside the retried solver call (e.g.
     in the split heuristic) still only costs its own box. *)
  let recover_with ~record t e =
    let status = Outcome.Error (Printexc.to_string e) in
    record t.path t.depth t.box 2 (Trace.Verdict (Outcome.status_name status));
    Obs.Metrics.incr m_boxes 1;
    Obs.Metrics.incr m_error 1;
    Obs.Metrics.observe h_depth t.depth;
    (Some (t.path, { Outcome.box = t.box; status; depth = t.depth }), [])
  in
  let handle = handle_with ~sink ~record in
  let recover = recover_with ~record in
  let root =
    {
      box = domain;
      depth = 0;
      path = [];
      width = Box.max_width domain;
      margin = 0.0;
      smear = smear_of domain;
    }
  in
  let compare =
    match config.split_heuristic with
    | `Widest -> schedule_order
    | `Smear -> schedule_order_smear
  in
  (* Prefix restriction: replay the trunk, keep the owned frontier slice.
     With no shard spec (or a single shard) the worklist is seeded with the
     root and nothing changes. *)
  let shard =
    match shard with Some s when s.shard_count > 1 -> Some s | _ -> None
  in
  let trunk_painted, init =
    match shard with
    | None -> ([], [ root ])
    | Some { shard_index; shard_count } ->
        let fanout =
          match (config.split_heuristic, tape) with
          | `Smear, Some _ -> 2
          | _ -> List.length (Box.split_all domain)
        in
        let trunk_depth = shard_trunk_depth ~fanout ~count:shard_count in
        let owns_trunk = shard_index = 0 in
        let scratch_sink = fresh_sink () in
        let scratch_metrics = Obs.Metrics.fresh () in
        let silently f =
          let prev = Obs.Metrics.install scratch_metrics in
          Fun.protect
            ~finally:(fun () -> ignore (Obs.Metrics.install prev))
            f
        in
        let painted = ref [] and frontier = ref [] in
        let rec walk t =
          if t.depth >= trunk_depth then frontier := t :: !frontier
          else if owns_trunk then begin
            (* the trunk runs outside the worklist; account for it so the
               merged deterministic task count equals the unsharded run *)
            Worklist.external_task ();
            let r, subs =
              match handle t with res -> res | exception e -> recover t e
            in
            Option.iter (fun r -> painted := r :: !painted) r;
            List.iter walk subs
          end
          else begin
            let subs =
              silently (fun () ->
                  match handle_with ~sink:scratch_sink ~record:no_record t with
                  | _, subs -> subs
                  | exception e ->
                      snd (recover_with ~record:no_record t e))
            in
            List.iter walk subs
          end
        in
        walk root;
        let mine =
          List.filteri
            (fun pos _ -> pos mod shard_count = shard_index)
            (List.rev !frontier)
        in
        (List.rev !painted, mine)
  in
  let { Worklist.results; dropped } =
    Worklist.process ~workers:(Stdlib.max 1 config.workers)
      ~compare ~stop:past_deadline ~recover ~handle init
  in
  (* Graceful drain: boxes still pending at the deadline are painted as
     timeouts (the old recursion's behaviour for boxes it reached after the
     deadline), except sub-threshold boxes, which would not have been
     solved anyway. *)
  let drained =
    List.filter_map
      (fun t ->
        if t.width < config.threshold then None
        else
          Some (t.path, { Outcome.box = t.box; status = Outcome.Timeout;
                          depth = t.depth }))
      dropped
  in
  Obs.Metrics.incr m_drained (List.length drained);
  (* Restore the pre-order paint log: parents (shorter paths) before
     children, siblings in violation-first order — identical to the old
     depth-first recursion's log, identical at every worker count, and
     (unioned across shards) at every shard count. *)
  let painted =
    Obs.Metrics.time_phase Obs.Metrics.Paint (fun () ->
        trunk_painted @ List.filter_map Fun.id results @ drained
        |> List.sort (fun (p1, _) (p2, _) -> Trace.compare_path p1 p2))
  in
  ( {
      Outcome.dfa = dfa_label;
      condition = condition_label;
      domain;
      regions = List.map snd painted;
      stats =
        {
          Outcome.solver_calls = Atomic.get sink.sk_calls;
          total_expansions = Atomic.get sink.sk_expansions;
          total_prunes = Atomic.get sink.sk_prunes;
          total_revise_calls = Atomic.get sink.sk_revises;
          retries = Atomic.get sink.sk_retries;
          elapsed = Unix.gettimeofday () -. started;
        };
    },
    List.map fst painted )

let run_custom ?config ?recorder ?stop ~dfa_label ~condition_label ~domain
    ~psi () =
  fst
    (run_custom_sharded ?config ?recorder ?stop ~dfa_label ~condition_label
       ~domain ~psi ())

let run ?config ?recorder ?stop (p : Encoder.problem) =
  run_custom ?config ?recorder ?stop ~dfa_label:p.Encoder.dfa.Registry.label
    ~condition_label:(Conditions.name p.Encoder.condition)
    ~domain:p.Encoder.domain ~psi:p.Encoder.psi ()

let run_pair ?config ?recorder dfa cond =
  Option.map (run ?config ?recorder) (Encoder.encode dfa cond)

let run_sharded ?config ?shard (p : Encoder.problem) =
  run_custom_sharded ?config ?shard ~dfa_label:p.Encoder.dfa.Registry.label
    ~condition_label:(Conditions.name p.Encoder.condition)
    ~domain:p.Encoder.domain ~psi:p.Encoder.psi ()

(* ------------------------------------------------------------------ *)
(* Campaign identity hashes (checkpoint headers).

   [config_hash] covers exactly the verdict-relevant knobs: threshold,
   solver fuel/delta/rounds/sample-check, the fault plan, contractor and
   tape choices, split heuristic and retry policy. [workers] and
   [deadline_seconds] are deliberately excluded — they change scheduling,
   never verdicts (for deadline-free runs), and a checkpoint taken at -j4
   must be resumable at -j1. [jit] and [jit_cache] are excluded for the
   same reason: the native kernel is bit-identical to the interpreted
   tape, so a checkpoint taken with --jit must be resumable without it. *)

let config_hash (c : config) =
  let b = Buffer.create 128 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '|')
      fmt
  in
  add "%h" c.threshold;
  add "%d" c.solver.Icp.fuel;
  add "%h" c.solver.Icp.delta;
  add "%d" c.solver.Icp.contractor_rounds;
  add "%b" c.solver.Icp.sample_check;
  (match c.solver.Icp.faults with
  | None -> add "faults:none"
  | Some p ->
      add "faults:%Lx:%h:%s" p.Fault.seed p.Fault.rate
        (String.concat ","
           (List.map
              (function
                | Fault.Raise -> "raise"
                | Fault.Nan -> "nan"
                | Fault.Timeout -> "timeout")
              p.Fault.kinds)));
  add "%b" c.use_taylor;
  add "%b" c.use_tape;
  add "%s" (match c.split_heuristic with `Widest -> "widest" | `Smear -> "smear");
  add "%d" c.retry.max_retries;
  add "%d" c.retry.fuel_growth;
  Serialize.digest (Buffer.contents b)

let problem_fingerprint (p : Encoder.problem) =
  let box =
    String.concat ";"
      (List.map
         (fun v ->
           let iv = Box.get p.Encoder.domain v in
           Printf.sprintf "%s=%h..%h" v (Interval.inf iv) (Interval.sup iv))
         (Box.vars p.Encoder.domain))
  in
  let rel =
    match p.Encoder.psi.Form.rel with
    | Form.Ge0 -> ">=0"
    | Form.Gt0 -> ">0"
    | Form.Le0 -> "<=0"
    | Form.Lt0 -> "<0"
    | Form.Eq0 -> "=0"
  in
  Printf.sprintf "%s|%s|%s|%s %s" p.Encoder.dfa.Registry.label
    (Conditions.name p.Encoder.condition)
    box
    (Printer.sexp_to_string p.Encoder.psi.Form.expr)
    rel

let formula_hash problems =
  Serialize.digest (String.concat "\n" (List.map problem_fingerprint problems))

(* A pair whose run failed outright (exception outside the box-level
   isolation, retries exhausted): the whole domain is painted as a single
   error region so the campaign table still has a cell for it. *)
let error_outcome ~dfa ~condition ~domain ~retries msg =
  {
    Outcome.dfa;
    condition;
    domain;
    regions = [ { Outcome.box = domain; status = Outcome.Error msg; depth = 0 } ];
    stats = { Outcome.zero_stats with Outcome.retries };
  }

let find_resumed resumed ~dfa_label ~condition_name =
  List.find_opt
    (fun (o : Outcome.t) ->
      String.equal o.Outcome.dfa dfa_label
      && String.equal o.Outcome.condition condition_name)
    resumed

(* Pair-level supervision: retry a pair whose run raised with escalated
   fuel, then give up with an [error_outcome]. Box-level isolation inside
   [run] already absorbs solver failures, so this is the outer belt. *)
let run_pair_supervised ~config (p : Encoder.problem) =
  let dfa = p.Encoder.dfa.Registry.label
  and condition = Conditions.name p.Encoder.condition in
  let rec go k =
    let cfg =
      {
        config with
        solver =
          {
            config.solver with
            Icp.fuel =
              escalated_fuel config.solver.Icp.fuel config.retry.fuel_growth k;
          };
      }
    in
    match run ~config:cfg p with
    | o when k = 0 -> o
    | o ->
        (* surface the pair-level attempts alongside the box-level ones *)
        {
          o with
          Outcome.stats =
            {
              o.Outcome.stats with
              Outcome.retries = o.Outcome.stats.Outcome.retries + k;
            };
        }
    | exception e ->
        if k < config.retry.max_retries then go (k + 1)
        else
          error_outcome ~dfa ~condition ~domain:p.Encoder.domain ~retries:k
            (Printexc.to_string e)
  in
  go 0

let campaign ?(config = default_config) ?checkpoint ?resume dfas =
  let problems =
    Obs.Metrics.time_phase Obs.Metrics.Encode (fun () ->
        Encoder.encode_all dfas)
  in
  let header =
    {
      Serialize.config_hash = config_hash config;
      formula_hash = formula_hash problems;
      shard = None;
    }
  in
  let resumed =
    match resume with
    | None -> []
    | Some path -> Serialize.load_checkpoint ~expect:header path
  in
  Option.iter
    (fun path ->
      (* a checkpoint that survived a kill may end in a torn line; truncate
         it before appending — unconditionally, not only when resuming from
         the same path, or appends after the torn tail would be invisible
         to every loader (they stop at the first malformed line) *)
      ignore (Serialize.repair_checkpoint path);
      Serialize.ensure_header path header)
    checkpoint;
  List.map
    (fun (p : Encoder.problem) ->
      match
        find_resumed resumed ~dfa_label:p.Encoder.dfa.Registry.label
          ~condition_name:(Conditions.name p.Encoder.condition)
      with
      | Some o -> o
      | None ->
          let o = run_pair_supervised ~config p in
          Obs.Metrics.incr m_pairs 1;
          (* one flushed line per completed pair: a SIGKILL loses at
             most the pair in flight, and resume replays the rest *)
          Option.iter
            (fun path ->
              Serialize.append path [ o ];
              Obs.Metrics.incr m_ckpt 1)
            checkpoint;
          o)
    problems

let campaign_parallel ?(config = default_config) ?checkpoint ?resume ~workers
    dfas =
  (* Expressions must be hash-consed on the main domain (the cons table is
     unsynchronized); encode everything first, then fan the construction-free
     solver runs out over the pool. *)
  let problems =
    Obs.Metrics.time_phase Obs.Metrics.Encode (fun () ->
        Encoder.encode_all dfas)
  in
  let header =
    {
      Serialize.config_hash = config_hash config;
      formula_hash = formula_hash problems;
      shard = None;
    }
  in
  let resumed =
    match resume with
    | None -> []
    | Some path -> Serialize.load_checkpoint ~expect:header path
  in
  Option.iter
    (fun path ->
      (* same torn-tail discipline as [campaign]: repair before appending *)
      ignore (Serialize.repair_checkpoint path);
      Serialize.ensure_header path header)
    checkpoint;
  let fresh, reused =
    List.partition
      (fun (p : Encoder.problem) ->
        Option.is_none
          (find_resumed resumed ~dfa_label:p.Encoder.dfa.Registry.label
             ~condition_name:(Conditions.name p.Encoder.condition)))
      problems
  in
  ignore reused;
  let outcomes =
    List.map2
      (fun (p : Encoder.problem) result ->
        match result with
        | Ok o -> o
        | Error e ->
            error_outcome ~dfa:p.Encoder.dfa.Registry.label
              ~condition:(Conditions.name p.Encoder.condition)
              ~domain:p.Encoder.domain ~retries:config.retry.max_retries
              (Printexc.to_string e))
      fresh
      (Pool.map_result ~workers (run_pair_supervised ~config) fresh)
  in
  Obs.Metrics.incr m_pairs (List.length outcomes);
  Option.iter
    (fun path ->
      Serialize.append path outcomes;
      Obs.Metrics.incr m_ckpt 1)
    checkpoint;
  (* splice resumed outcomes back in canonical pair order *)
  List.filter_map
    (fun (p : Encoder.problem) ->
      match
        find_resumed resumed ~dfa_label:p.Encoder.dfa.Registry.label
          ~condition_name:(Conditions.name p.Encoder.condition)
      with
      | Some o -> Some o
      | None ->
          List.find_opt
            (fun (o : Outcome.t) ->
              String.equal o.Outcome.dfa p.Encoder.dfa.Registry.label
              && String.equal o.Outcome.condition
                   (Conditions.name p.Encoder.condition))
            outcomes)
    problems

(* ------------------------------------------------------------------ *)
(* Sharded campaigns: one process runs [shard i/N] of every pair's box
   tree and appends to its own checkpoint, whose entries carry the paint
   paths and the pair's metrics snapshot. Each pair runs under a fresh
   metrics instance so its snapshot is self-contained: the shard's final
   metrics are the fold of its per-pair snapshots, which makes metrics
   resumable — a killed and restarted shard recovers the metrics of its
   completed pairs from the checkpoint, and the merged deterministic
   section still equals the unsharded run byte for byte. *)

let shard_header ~config ~problems (shard : shard_spec) =
  {
    Serialize.config_hash = config_hash config;
    formula_hash = formula_hash problems;
    shard = Some (shard.shard_index, shard.shard_count);
  }

(* Pair-level supervision for a sharded run, mirroring
   [run_pair_supervised]. *)
let run_sharded_supervised ~config ~shard (p : Encoder.problem) =
  let dfa = p.Encoder.dfa.Registry.label
  and condition = Conditions.name p.Encoder.condition in
  let rec go k =
    let cfg =
      {
        config with
        solver =
          {
            config.solver with
            Icp.fuel =
              escalated_fuel config.solver.Icp.fuel config.retry.fuel_growth k;
          };
      }
    in
    match run_sharded ~config:cfg ~shard p with
    | o, paths when k = 0 -> (o, paths)
    | o, paths ->
        ( {
            o with
            Outcome.stats =
              {
                o.Outcome.stats with
                Outcome.retries = o.Outcome.stats.Outcome.retries + k;
              };
          },
          paths )
    | exception e ->
        if k < config.retry.max_retries then go (k + 1)
        else
          ( error_outcome ~dfa ~condition ~domain:p.Encoder.domain ~retries:k
              (Printexc.to_string e),
            [ [] ] )
  in
  go 0

let shard_campaign ?(config = default_config) ~shard ~checkpoint ?resume
    ?(on_pair = fun (_ : Outcome.t) -> ()) dfas =
  if
    shard.shard_count < 1
    || shard.shard_index < 0
    || shard.shard_index >= shard.shard_count
  then
    invalid_arg
      (Printf.sprintf "Verify.shard_campaign: bad shard %d/%d"
         shard.shard_index shard.shard_count);
  let problems =
    Obs.Metrics.time_phase Obs.Metrics.Encode (fun () ->
        Encoder.encode_all dfas)
  in
  let header = shard_header ~config ~problems shard in
  let resumed =
    match resume with
    | Some path when Sys.file_exists path ->
        let ck = Serialize.read_checkpoint path in
        (match ck.Serialize.cp_header with
        | None ->
            failwith
              (Printf.sprintf "%s: shard checkpoint has no campaign header"
                 path)
        | Some h ->
            Serialize.check_header ~path ~expect:header h;
            (match h.Serialize.shard with
            | Some (i, n)
              when i = shard.shard_index && n = shard.shard_count ->
                ()
            | _ ->
                failwith
                  (Printf.sprintf
                     "%s: checkpoint belongs to a different shard (expected \
                      %d/%d)"
                     path shard.shard_index shard.shard_count)));
        if path = checkpoint then
          (* truncate any torn tail before appending new entries *)
          (Serialize.repair_checkpoint checkpoint).Serialize.entries
        else begin
          (* resuming into a different file: rewrite header + entries so
             the new checkpoint is self-contained for the merge *)
          Serialize.write_header checkpoint header;
          Serialize.append_entries checkpoint ck.Serialize.entries;
          ck.Serialize.entries
        end
    | _ ->
        (* fresh shard run: a stale checkpoint from an earlier attempt must
           not survive underneath the new one *)
        Serialize.write_header checkpoint header;
        []
  in
  let find_entry (p : Encoder.problem) =
    List.find_opt
      (fun (e : Serialize.entry) ->
        String.equal e.Serialize.outcome.Outcome.dfa
          p.Encoder.dfa.Registry.label
        && String.equal e.Serialize.outcome.Outcome.condition
             (Conditions.name p.Encoder.condition))
      resumed
  in
  let pairs =
    List.map
      (fun (p : Encoder.problem) ->
        match find_entry p with
        | Some e ->
            let paths = Option.value e.Serialize.paths ~default:[] in
            let snap =
              match e.Serialize.metrics_json with
              | Some j -> Serialize.metrics_of_json_string j
              | None -> Obs.Metrics.empty_snapshot
            in
            ((e.Serialize.outcome, paths), snap)
        | None ->
            let prev = Obs.Metrics.install (Obs.Metrics.fresh ()) in
            let o, paths, snap =
              Fun.protect
                ~finally:(fun () -> ignore (Obs.Metrics.install prev))
                (fun () ->
                  let o, paths = run_sharded_supervised ~config ~shard p in
                  (* the trunk owner also owns campaign-level accounting:
                     merged pair counts must equal the unsharded run *)
                  if shard.shard_index = 0 then Obs.Metrics.incr m_pairs 1;
                  (o, paths, Obs.Metrics.snapshot ()))
            in
            Serialize.append_entries checkpoint
              [
                {
                  Serialize.outcome = o;
                  paths = Some paths;
                  metrics_json = Some (Obs.Metrics.to_json snap);
                };
              ];
            Obs.Metrics.incr m_ckpt 1;
            on_pair o;
            ((o, paths), snap))
      problems
  in
  ( List.map fst pairs,
    List.fold_left Obs.Metrics.merge Obs.Metrics.empty_snapshot
      (List.map snd pairs) )
