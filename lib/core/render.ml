let status_char = function
  | Outcome.Verified -> '.'
  | Outcome.Counterexample _ -> '#'
  | Outcome.Inconclusive _ -> 'o'
  | Outcome.Timeout -> 'T'
  | Outcome.Error _ -> 'E'

let frame ~xlabel ~ylabel rows =
  (* rows.(0) is the top line. *)
  let buf = Buffer.create 1024 in
  let width = String.length rows.(0) in
  Buffer.add_string buf (Printf.sprintf "  %s ^\n" ylabel);
  Array.iter
    (fun row ->
      Buffer.add_string buf "    |";
      Buffer.add_string buf row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf "    +";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_string buf (Printf.sprintf "> %s\n" xlabel);
  Buffer.contents buf

let outcome_map ?(nx = 48) ?(ny = 16) (t : Outcome.t) =
  match Box.vars t.domain with
  | [ only ] ->
      let grid = Outcome.rasterize t ~xdim:only ~ydim:only ~nx ~ny:1 in
      let row = String.init nx (fun j -> status_char grid.(0).(j)) in
      frame ~xlabel:only ~ylabel:"" [| row |]
  | x :: y :: _ ->
      let grid = Outcome.rasterize t ~xdim:x ~ydim:y ~nx ~ny in
      let rows =
        Array.init ny (fun r ->
            (* row 0 of the frame is the top = high y *)
            let i = ny - 1 - r in
            String.init nx (fun j -> status_char grid.(i).(j)))
      in
      frame ~xlabel:x ~ylabel:y rows
  | [] -> assert false

let pb_map ?(nx = 48) ?(ny = 16) (r : Pbcheck.result) =
  let axes = r.Pbcheck.mesh.Mesh.axes in
  match axes with
  | [ (xname, xs) ] ->
      let n = Array.length xs in
      let row =
        String.init nx (fun j ->
            let i = j * (n - 1) / (Stdlib.max 1 (nx - 1)) in
            if r.Pbcheck.satisfied_mask.(i) then '.' else '#')
      in
      frame ~xlabel:xname ~ylabel:"" [| row |]
  | (xname, xs) :: (yname, ys) :: rest ->
      let n_x = Array.length xs and n_y = Array.length ys in
      let tail = List.fold_left (fun acc (_, a) -> acc * Array.length a) 1 rest in
      (* Project onto the first two axes: violated if any trailing
         coordinate violates. *)
      let cell ix iy =
        let base = ((ix * n_y) + iy) * tail in
        let rec any k =
          k < tail && ((not r.Pbcheck.satisfied_mask.(base + k)) || any (k + 1))
        in
        not (any 0)
      in
      let rows =
        Array.init ny (fun rr ->
            let iy = (ny - 1 - rr) * (n_y - 1) / (Stdlib.max 1 (ny - 1)) in
            String.init nx (fun j ->
                let ix = j * (n_x - 1) / (Stdlib.max 1 (nx - 1)) in
                if cell ix iy then '.' else '#'))
      in
      frame ~xlabel:xname ~ylabel:yname rows
  | [] -> assert false

let figure ~title ~pb outcome =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" title);
  (match pb with
  | Some r ->
      Buffer.add_string buf "--- PB grid search (# violation, . pass) ---\n";
      Buffer.add_string buf (pb_map r)
  | None -> ());
  Buffer.add_string buf
    "--- XCVerifier (. verified, # counterexample, o inconclusive, T \
     timeout, E error) ---\n";
  Buffer.add_string buf (outcome_map outcome);
  Buffer.contents buf
