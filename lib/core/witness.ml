type strength = Certified | Float_only

type witness = {
  point : (string * float) list;
  psi_value : float;
  enclosure : Interval.t;
  strength : strength;
}

type t = { dfa : string; condition : string; witnesses : witness list }

let witness_of psi_expr point =
  let v = Eval.eval point psi_expr in
  if Float.is_nan v || v >= 0.0 then None
  else begin
    let env = List.map (fun (name, x) -> (name, Interval.point x)) point in
    let enclosure = Ieval.eval env psi_expr in
    let strength =
      if Interval.certainly_lt enclosure 0.0 && not (Interval.is_empty enclosure)
      then Certified
      else Float_only
    in
    Some { point; psi_value = v; enclosure; strength }
  end

let extract (p : Encoder.problem) (o : Outcome.t) =
  let dropped = ref 0 in
  let witnesses =
    List.filter_map
      (fun (r : Outcome.region) ->
        match r.Outcome.status with
        | Outcome.Counterexample model -> (
            match witness_of p.Encoder.psi.Form.expr model with
            | Some w -> Some w
            | None ->
                incr dropped;
                None)
        | Outcome.Verified | Outcome.Inconclusive _ | Outcome.Timeout
        | Outcome.Error _ -> None)
      o.Outcome.regions
  in
  ( { dfa = o.Outcome.dfa; condition = o.Outcome.condition; witnesses },
    !dropped )

let recheck t (p : Encoder.problem) =
  t.witnesses <> []
  && List.for_all
       (fun w ->
         match witness_of p.Encoder.psi.Form.expr w.point with
         | Some _ -> true
         | None -> false)
       t.witnesses

let pp ppf t =
  Format.fprintf ppf "certificate: %s violates %s at %d point(s)@." t.dfa
    t.condition (List.length t.witnesses);
  List.iteri
    (fun i w ->
      Format.fprintf ppf "  [%d]" (i + 1);
      List.iter (fun (v, x) -> Format.fprintf ppf " %s=%.8g" v x) w.point;
      Format.fprintf ppf " : psi = %.6g, enclosed in %a (%s)@." w.psi_value
        Interval.pp w.enclosure
        (match w.strength with
        | Certified -> "certified"
        | Float_only -> "float-only"))
    t.witnesses
