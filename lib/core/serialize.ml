module S = Parser.Sexp

let format_version = 3

(* v2 archives (no [error] status, no [retries] stat) are still loadable;
   anything else is rejected rather than guessed at. *)
let readable_versions = [ 2; 3 ]

let fail fmt = Format.kasprintf (fun s -> raise (Parser.Parse_error s)) fmt

(* Labels may contain spaces ("VWN RPA") or parentheses, which would break
   atom lexing; percent-encode everything outside a safe set. *)
let encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' | '+' | '/' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)))
    s;
  Buffer.contents buf

let decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf
          (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

(* Hex float atoms round-trip bit-exactly. *)
let atom_of_float f = S.Atom (Printf.sprintf "%h" f)

let float_of_atom = function
  | S.Atom a -> (
      match float_of_string_opt a with
      | Some f -> f
      | None -> fail "expected float, got %S" a)
  | S.List _ -> fail "expected float atom"

let sexp_of_interval name iv =
  S.List [ S.Atom name; atom_of_float (Interval.inf iv); atom_of_float (Interval.sup iv) ]

let sexp_of_box box =
  S.List
    (S.Atom "box"
    :: List.map (fun v -> sexp_of_interval v (Box.get box v)) (Box.vars box))

let box_of_sexp = function
  | S.List (S.Atom "box" :: dims) ->
      Box.make
        (List.map
           (function
             | S.List [ S.Atom v; lo; hi ] ->
                 (v, Interval.make (float_of_atom lo) (float_of_atom hi))
             | _ -> fail "malformed box dimension")
           dims)
  | _ -> fail "expected (box ...)"

let sexp_of_model model =
  S.List
    (S.Atom "model"
    :: List.map
         (fun (v, x) -> S.List [ S.Atom v; atom_of_float x ])
         model)

let model_of_sexp = function
  | S.List (S.Atom "model" :: bindings) ->
      List.map
        (function
          | S.List [ S.Atom v; x ] -> (v, float_of_atom x)
          | _ -> fail "malformed model binding")
        bindings
  | _ -> fail "expected (model ...)"

let sexp_of_status = function
  | Outcome.Verified -> S.List [ S.Atom "verified" ]
  | Outcome.Timeout -> S.List [ S.Atom "timeout" ]
  | Outcome.Counterexample m -> S.List [ S.Atom "counterexample"; sexp_of_model m ]
  | Outcome.Inconclusive m -> S.List [ S.Atom "inconclusive"; sexp_of_model m ]
  | Outcome.Error msg -> S.List [ S.Atom "error"; S.Atom (encode msg) ]

let status_of_sexp = function
  | S.List [ S.Atom "verified" ] -> Outcome.Verified
  | S.List [ S.Atom "timeout" ] -> Outcome.Timeout
  | S.List [ S.Atom "counterexample"; m ] -> Outcome.Counterexample (model_of_sexp m)
  | S.List [ S.Atom "inconclusive"; m ] -> Outcome.Inconclusive (model_of_sexp m)
  | S.List [ S.Atom "error"; S.Atom msg ] -> Outcome.Error (decode msg)
  | _ -> fail "malformed status"

let sexp_of_region (r : Outcome.region) =
  S.List
    [
      S.Atom "region";
      S.Atom (string_of_int r.Outcome.depth);
      sexp_of_status r.Outcome.status;
      sexp_of_box r.Outcome.box;
    ]

let region_of_sexp = function
  | S.List [ S.Atom "region"; S.Atom depth; status; box ] ->
      {
        Outcome.depth = int_of_string depth;
        status = status_of_sexp status;
        box = box_of_sexp box;
      }
  | _ -> fail "malformed region"

let sexp_of_outcome (o : Outcome.t) =
  S.List
    [
      S.Atom "outcome";
      S.Atom (string_of_int format_version);
      S.List [ S.Atom "dfa"; S.Atom (encode o.Outcome.dfa) ];
      S.List [ S.Atom "condition"; S.Atom (encode o.Outcome.condition) ];
      sexp_of_box o.Outcome.domain;
      S.List
        [
          S.Atom "stats";
          S.Atom (string_of_int o.Outcome.stats.Outcome.solver_calls);
          S.Atom (string_of_int o.Outcome.stats.Outcome.total_expansions);
          S.Atom (string_of_int o.Outcome.stats.Outcome.total_prunes);
          S.Atom (string_of_int o.Outcome.stats.Outcome.total_revise_calls);
          S.Atom (string_of_int o.Outcome.stats.Outcome.retries);
          atom_of_float o.Outcome.stats.Outcome.elapsed;
        ];
      S.List (S.Atom "regions" :: List.map sexp_of_region o.Outcome.regions);
    ]

(* v2 stats carry four counters + elapsed; v3 adds [retries] before
   [elapsed] (0 when reading a v2 archive). *)
let stats_of_sexp = function
  | S.List
      [
        S.Atom "stats"; S.Atom calls; S.Atom expansions; S.Atom prunes;
        S.Atom revise; elapsed;
      ] ->
      {
        Outcome.solver_calls = int_of_string calls;
        total_expansions = int_of_string expansions;
        total_prunes = int_of_string prunes;
        total_revise_calls = int_of_string revise;
        retries = 0;
        elapsed = float_of_atom elapsed;
      }
  | S.List
      [
        S.Atom "stats"; S.Atom calls; S.Atom expansions; S.Atom prunes;
        S.Atom revise; S.Atom retries; elapsed;
      ] ->
      {
        Outcome.solver_calls = int_of_string calls;
        total_expansions = int_of_string expansions;
        total_prunes = int_of_string prunes;
        total_revise_calls = int_of_string revise;
        retries = int_of_string retries;
        elapsed = float_of_atom elapsed;
      }
  | _ -> fail "malformed stats"

let outcome_of_sexp = function
  | S.List
      [
        S.Atom "outcome"; S.Atom version;
        S.List [ S.Atom "dfa"; S.Atom dfa ];
        S.List [ S.Atom "condition"; S.Atom condition ];
        domain;
        stats;
        S.List (S.Atom "regions" :: regions);
      ] ->
      if not (List.mem (int_of_string version) readable_versions) then
        fail "unsupported outcome format version %s" version;
      {
        Outcome.dfa = decode dfa;
        condition = decode condition;
        domain = box_of_sexp domain;
        regions = List.map region_of_sexp regions;
        stats = stats_of_sexp stats;
      }
  | _ -> fail "malformed outcome"

let to_string o =
  let buf = Buffer.create 4096 in
  S.print buf (sexp_of_outcome o);
  Buffer.contents buf

let of_string s = outcome_of_sexp (S.parse s)

let save path outcomes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun o ->
          output_string oc (to_string o);
          output_char oc '\n')
        outcomes)

let append path outcomes =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun o ->
          output_string oc (to_string o);
          output_char oc '\n';
          (* flush per outcome: a killed campaign leaves only whole lines
             plus possibly one torn tail, which [load_checkpoint] skips *)
          flush oc)
        outcomes)

(* ------------------------------------------------------------------ *)
(* Crash-safe byte primitives — the substrate the verdict cache and the
   service journal are built on. Both honour an optional I/O fault plan
   (Fault.io_plan): every write consults the plan first, so torn entries,
   full disks and interrupted writes are deterministically injectable. *)

(* One logical write. EINTR faults re-roll (bounded); a short write lands a
   prefix of the buffer and then raises — exactly the bytes a process
   killed mid-write would leave behind. *)
let faulted_write ?io_faults ~what fd bytes =
  let len = String.length bytes in
  let write_all () =
    let rec go off =
      if off < len then
        let n =
          try Unix.write_substring fd bytes off (len - off)
          with Unix.Unix_error (Unix.EINTR, _, _) -> 0
        in
        go (off + n)
    in
    go 0
  in
  match io_faults with
  | None -> write_all ()
  | Some plan ->
      let key = Fault.key_of_string bytes in
      let rec attempt k =
        match Fault.io_decide plan ~attempt:k ~key with
        | None -> write_all ()
        | Some Fault.Eintr ->
            (* interrupted before any byte landed; retry re-rolls the dice,
               bounded so a rate-1.0 plan still terminates *)
            if k >= 8 then raise (Fault.Io_injected (Fault.Eintr, what))
            else attempt (k + 1)
        | Some Fault.Enospc ->
            raise (Fault.Io_injected (Fault.Enospc, what))
        | Some Fault.Short_write ->
            let torn = Stdlib.max 1 (len / 2) in
            let rec go off =
              if off < torn then
                let n =
                  try Unix.write_substring fd bytes off (torn - off)
                  with Unix.Unix_error (Unix.EINTR, _, _) -> 0
                in
                go (off + n)
            in
            go 0;
            raise (Fault.Io_injected (Fault.Short_write, what))
      in
      attempt 0

let append_line ?io_faults ?(fsync = false) path line =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      (* one write(2) for the whole line: O_APPEND positions atomically, so
         concurrent writers interleave whole lines, never bytes *)
      faulted_write ?io_faults ~what:path fd (line ^ "\n");
      if fsync then Unix.fsync fd)

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
      Fun.protect
        ~finally:(fun () -> Unix.close dfd)
        (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())

let write_file_atomic ?io_faults path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     Fun.protect
       ~finally:(fun () -> Unix.close fd)
       (fun () ->
         faulted_write ?io_faults ~what:tmp fd content;
         Unix.fsync fd)
   with e ->
     (* destination untouched on any failure — that is the whole point *)
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp path;
  (* make the rename itself durable *)
  fsync_dir path

let percent_encode = encode
let percent_decode = decode

(* ------------------------------------------------------------------ *)
(* Digests — the identity of a campaign's configuration and formula set,
   carried in checkpoint headers so resume and shard merge can refuse
   checkpoints from a different run. FNV-style byte fold through the
   splitmix64 finalizer; 16 hex chars, safe as an s-expression atom. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let digest s =
  let h = ref 0x9e3779b97f4a7c15L in
  String.iter
    (fun c ->
      h :=
        mix64
          (Int64.add
             (Int64.mul !h 0x100000001b3L)
             (Int64.of_int (Char.code c))))
    s;
  Printf.sprintf "%016Lx" !h

(* ------------------------------------------------------------------ *)
(* Campaign headers and sharded checkpoint entries *)

type header = {
  config_hash : string;
  formula_hash : string;
  shard : (int * int) option;
}

let sexp_of_header h =
  S.List
    ((S.Atom "campaign-header"
     :: S.Atom (string_of_int format_version)
     :: S.List [ S.Atom "config"; S.Atom h.config_hash ]
     :: S.List [ S.Atom "formula"; S.Atom h.formula_hash ]
     :: [])
    @
    match h.shard with
    | None -> []
    | Some (i, n) ->
        [
          S.List
            [ S.Atom "shard"; S.Atom (string_of_int i); S.Atom (string_of_int n) ];
        ])

let header_of_sexp = function
  | S.List (S.Atom "campaign-header" :: S.Atom version :: fields) ->
      if not (List.mem (int_of_string version) readable_versions) then
        fail "unsupported campaign header version %s" version;
      let config = ref None and formula = ref None and shard = ref None in
      List.iter
        (function
          | S.List [ S.Atom "config"; S.Atom h ] -> config := Some h
          | S.List [ S.Atom "formula"; S.Atom h ] -> formula := Some h
          | S.List [ S.Atom "shard"; S.Atom i; S.Atom n ] ->
              shard := Some (int_of_string i, int_of_string n)
          | _ -> fail "malformed campaign header field")
        fields;
      (match (!config, !formula) with
      | Some c, Some f -> { config_hash = c; formula_hash = f; shard = !shard }
      | _ -> fail "campaign header missing config/formula hash")
  | _ -> fail "expected (campaign-header ...)"

let header_to_string h =
  let buf = Buffer.create 128 in
  S.print buf (sexp_of_header h);
  Buffer.contents buf

let header_of_string s = header_of_sexp (S.parse s)

(* A header mismatch is an operator error (resuming with different flags,
   merging files from different campaigns), not a parse error. *)
let check_header ~path ~expect (h : header) =
  if not (String.equal h.config_hash expect.config_hash) then
    failwith
      (Printf.sprintf
         "%s: checkpoint was written under a different configuration \
          (config hash %s, expected %s) — match the original flags or start \
          a fresh run"
         path h.config_hash expect.config_hash);
  if not (String.equal h.formula_hash expect.formula_hash) then
    failwith
      (Printf.sprintf
         "%s: checkpoint is from a different campaign (formula hash %s, \
          expected %s)"
         path h.formula_hash expect.formula_hash)

type entry = {
  outcome : Outcome.t;
  paths : int list list option;
  metrics_json : string option;
}

let sexp_of_path p = S.List (List.map (fun i -> S.Atom (string_of_int i)) p)

let path_of_sexp = function
  | S.List l ->
      List.map
        (function
          | S.Atom a -> int_of_string a | S.List _ -> fail "malformed path")
        l
  | S.Atom _ -> fail "malformed region path"

let sexp_of_entry e =
  S.List
    ((S.Atom "entry" :: sexp_of_outcome e.outcome :: [])
    @ (match e.paths with
      | None -> []
      | Some ps -> [ S.List (S.Atom "paths" :: List.map sexp_of_path ps) ])
    @
    match e.metrics_json with
    | None -> []
    | Some j -> [ S.List [ S.Atom "metrics"; S.Atom (encode j) ] ])

let entry_of_sexp = function
  | S.List (S.Atom "entry" :: outcome :: rest) ->
      let paths = ref None and metrics = ref None in
      List.iter
        (function
          | S.List (S.Atom "paths" :: ps) ->
              paths := Some (List.map path_of_sexp ps)
          | S.List [ S.Atom "metrics"; S.Atom j ] -> metrics := Some (decode j)
          | _ -> fail "malformed checkpoint entry field")
        rest;
      { outcome = outcome_of_sexp outcome; paths = !paths; metrics_json = !metrics }
  (* plain outcome lines (archives, pre-shard checkpoints) read as entries
     without paths or metrics *)
  | sexp -> { outcome = outcome_of_sexp sexp; paths = None; metrics_json = None }

let entry_to_string e =
  let buf = Buffer.create 4096 in
  S.print buf (sexp_of_entry e);
  Buffer.contents buf

let entry_of_string s = entry_of_sexp (S.parse s)

let append_entries path entries =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (entry_to_string e);
          output_char oc '\n';
          flush oc)
        entries)

type line = Header of header | Entry of entry

let line_of_string s =
  let sexp = S.parse s in
  match sexp with
  | S.List (S.Atom "campaign-header" :: _) -> Header (header_of_sexp sexp)
  | _ -> Entry (entry_of_sexp sexp)

type checkpoint = {
  cp_header : header option;
  entries : entry list;
  truncated : bool;
  valid_bytes : int;
}

let read_checkpoint path =
  if not (Sys.file_exists path) then
    { cp_header = None; entries = []; truncated = false; valid_bytes = 0 }
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go header acc valid first =
          match input_line ic with
          | exception End_of_file ->
              {
                cp_header = header;
                entries = List.rev acc;
                truncated = false;
                valid_bytes = valid;
              }
          | line -> (
              if String.trim line = "" then go header acc (pos_in ic) first
              else
                match line_of_string line with
                | Header h when first -> go (Some h) acc (pos_in ic) false
                | Header _ ->
                    (* a header below the first line can only be torn-write
                       debris *)
                    {
                      cp_header = header;
                      entries = List.rev acc;
                      truncated = true;
                      valid_bytes = valid;
                    }
                | Entry e -> go header (e :: acc) (pos_in ic) false
                | exception _ ->
                    (* stop at the first malformed line — anything after a
                       torn write is untrustworthy; the valid prefix is the
                       resume point *)
                    {
                      cp_header = header;
                      entries = List.rev acc;
                      truncated = true;
                      valid_bytes = valid;
                    })
        in
        go None [] 0 true)

let repair_checkpoint path =
  let ck = read_checkpoint path in
  if ck.truncated then Unix.truncate path ck.valid_bytes;
  ck

let write_header path header =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header_to_string header);
      output_char oc '\n')

let ensure_header path header =
  let ck = read_checkpoint path in
  match ck.cp_header with
  | Some h -> check_header ~path ~expect:header h
  | None ->
      (* legacy headerless checkpoints with content are left as-is; empty
         or absent files get the header *)
      if ck.entries = [] && ck.valid_bytes = 0 then write_header path header

(* Strict archive loading: malformed lines raise; header lines (written by
   checkpointing campaigns) are skipped and entry wrappers unwrapped, so a
   finished checkpoint doubles as an archive for [replay]. *)
let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line ->
            let acc =
              if String.trim line = "" then acc
              else
                match line_of_string line with
                | Header _ -> acc
                | Entry e -> e.outcome :: acc
            in
            go acc
        | exception End_of_file -> List.rev acc
      in
      go [])

let load_checkpoint ?expect path =
  let ck = read_checkpoint path in
  (match (expect, ck.cp_header) with
  | Some e, Some h -> check_header ~path ~expect:e h
  | _ -> ());
  List.map (fun e -> e.outcome) ck.entries

(* ------------------------------------------------------------------ *)
(* Paint log — the region lines alone, one s-expression per line: the
   byte-comparable rendering shard-merge certification pins down (stats
   carry wall-clock elapsed and are excluded by design). *)

let paint_to_string (o : Outcome.t) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      S.print buf (sexp_of_region r);
      Buffer.add_char buf '\n')
    o.Outcome.regions;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON — the trace export format. S-expressions stay the archival
   format for outcomes; traces are meant for external tooling (jq,
   plotting scripts), where JSON is the lingua franca. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Shortest decimal that round-trips; integers without a fraction part
     so counters read naturally. JSON has no NaN/infinity — encode them as
     strings, which the parser maps back. *)
  let number f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else Printf.sprintf "%.17g" f

  let rec print buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num f ->
        if Float.is_nan f then Buffer.add_string buf "\"nan\""
        else if f = Float.infinity then Buffer.add_string buf "\"inf\""
        else if f = Float.neg_infinity then Buffer.add_string buf "\"-inf\""
        else Buffer.add_string buf (number f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            print buf item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            print buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 1024 in
    print buf j;
    Buffer.contents buf

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if !pos >= n || s.[!pos] <> c then fail "JSON: expected %c at %d" c !pos;
      advance ()
    in
    let literal lit v =
      String.iter (fun c -> expect c) lit;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "JSON: unterminated string";
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then fail "JSON: dangling escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= n then fail "JSON: truncated \\u escape";
                let code =
                  int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                in
                pos := !pos + 4;
                (* traces only ever escape control bytes *)
                if code < 0x100 then Buffer.add_char buf (Char.chr code)
                else fail "JSON: non-latin \\u escape unsupported"
            | c -> fail "JSON: bad escape \\%c" c);
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let lexeme = String.sub s start (!pos - start) in
      match float_of_string_opt lexeme with
      | Some f -> f
      | None -> fail "JSON: bad number %S" lexeme
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> (
          let str = parse_string () in
          (* the encodings of the three non-finite numbers *)
          match str with
          | "nan" -> Num Float.nan
          | "inf" -> Num Float.infinity
          | "-inf" -> Num Float.neg_infinity
          | _ -> Str str)
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "JSON: expected , or ] at %d" !pos
            in
            items []
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "JSON: expected , or } at %d" !pos
            in
            fields []
      | Some _ -> Num (parse_number ())
      | None -> fail "JSON: unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "JSON: trailing garbage at %d" !pos;
    v

  let member key = function
    | Obj fields -> (
        match List.assoc_opt key fields with
        | Some v -> v
        | None -> fail "JSON: missing field %S" key)
    | _ -> fail "JSON: expected object for field %S" key

  let to_float = function
    | Num f -> f
    | _ -> fail "JSON: expected number"

  let to_int j =
    let f = to_float j in
    if Float.is_integer f then int_of_float f
    else fail "JSON: expected integer, got %g" f

  let to_str = function Str s -> s | _ -> fail "JSON: expected string"
  let to_list = function Arr l -> l | _ -> fail "JSON: expected array"
end

let trace_format_version = 2

(* v1 traces (no [retry] events) are still loadable. *)
let readable_trace_versions = [ 1; 2 ]

let json_of_box box =
  Json.Obj
    (List.map
       (fun v ->
         let iv = Box.get box v in
         (v, Json.Arr [ Json.Num (Interval.inf iv); Json.Num (Interval.sup iv) ]))
       (Box.vars box))

let box_of_json = function
  | Json.Obj dims ->
      Box.make
        (List.map
           (fun (v, bounds) ->
             match bounds with
             | Json.Arr [ lo; hi ] ->
                 (v, Interval.make (Json.to_float lo) (Json.to_float hi))
             | _ -> fail "JSON: malformed box dimension %S" v)
           dims)
  | _ -> fail "JSON: expected box object"

let json_of_event (ev : Trace.event) =
  let base =
    [
      ("path", Json.Arr (List.map (fun i -> Json.Num (float_of_int i)) ev.Trace.path));
      ("depth", Json.Num (float_of_int ev.Trace.depth));
      ("step", Json.Num (float_of_int ev.Trace.step));
      ("box", json_of_box ev.Trace.box);
      ("kind", Json.Str (Trace.kind_name ev.Trace.kind));
    ]
  in
  let payload =
    match ev.Trace.kind with
    | Trace.Contract { revise_calls; sweeps } ->
        [
          ("revise_calls", Json.Num (float_of_int revise_calls));
          ("sweeps", Json.Num (float_of_int sweeps));
        ]
    | Trace.Solve { fuel; prunes } ->
        [
          ("fuel", Json.Num (float_of_int fuel));
          ("prunes", Json.Num (float_of_int prunes));
        ]
    | Trace.Verdict status -> [ ("status", Json.Str status) ]
    | Trace.Split children -> [ ("children", Json.Num (float_of_int children)) ]
    | Trace.Retry { attempt; reason; fuel } ->
        [
          ("attempt", Json.Num (float_of_int attempt));
          ("reason", Json.Str reason);
          ("fuel", Json.Num (float_of_int fuel));
        ]
  in
  Json.Obj (base @ payload)

let event_of_json j =
  let kind =
    match Json.to_str (Json.member "kind" j) with
    | "contract" ->
        Trace.Contract
          {
            revise_calls = Json.to_int (Json.member "revise_calls" j);
            sweeps = Json.to_int (Json.member "sweeps" j);
          }
    | "solve" ->
        Trace.Solve
          {
            fuel = Json.to_int (Json.member "fuel" j);
            prunes = Json.to_int (Json.member "prunes" j);
          }
    | "verdict" -> Trace.Verdict (Json.to_str (Json.member "status" j))
    | "split" -> Trace.Split (Json.to_int (Json.member "children" j))
    | "retry" ->
        Trace.Retry
          {
            attempt = Json.to_int (Json.member "attempt" j);
            reason = Json.to_str (Json.member "reason" j);
            fuel = Json.to_int (Json.member "fuel" j);
          }
    | k -> fail "JSON: unknown event kind %S" k
  in
  {
    Trace.path = List.map Json.to_int (Json.to_list (Json.member "path" j));
    depth = Json.to_int (Json.member "depth" j);
    step = Json.to_int (Json.member "step" j);
    box = box_of_json (Json.member "box" j);
    kind;
  }

let json_of_trace events =
  Json.Obj
    [
      ("version", Json.Num (float_of_int trace_format_version));
      ("events", Json.Arr (List.map json_of_event events));
    ]

let trace_of_json j =
  let version = Json.to_int (Json.member "version" j) in
  if not (List.mem version readable_trace_versions) then
    fail "unsupported trace format version %d" version;
  List.map event_of_json (Json.to_list (Json.member "events" j))

let trace_to_string events = Json.to_string (json_of_trace events)
let trace_of_string s = trace_of_json (Json.of_string s)

let trace_report (o : Outcome.t) events =
  Json.to_string
    (Json.Obj
       [
         ("dfa", Json.Str o.Outcome.dfa);
         ("condition", Json.Str o.Outcome.condition);
         ( "stats",
           Json.Obj
             [
               ("solver_calls", Json.Num (float_of_int o.Outcome.stats.Outcome.solver_calls));
               ( "total_expansions",
                 Json.Num (float_of_int o.Outcome.stats.Outcome.total_expansions) );
               ("total_prunes", Json.Num (float_of_int o.Outcome.stats.Outcome.total_prunes));
               ( "total_revise_calls",
                 Json.Num (float_of_int o.Outcome.stats.Outcome.total_revise_calls) );
               ("retries", Json.Num (float_of_int o.Outcome.stats.Outcome.retries));
               ("elapsed", Json.Num o.Outcome.stats.Outcome.elapsed);
             ] );
         ("trace", json_of_trace events);
       ])

(* ------------------------------------------------------------------ *)
(* Metrics snapshots — parse the JSON that [Obs.Metrics.to_json] emits
   back into a snapshot, so per-shard metrics files (and the per-pair
   snapshots embedded in shard checkpoints) can be folded with
   [Obs.Metrics.merge] at merge time. *)

let metrics_of_json_string s =
  let j = Json.of_string s in
  (match Json.to_int (Json.member "version" j) with
  | 1 -> ()
  | v -> fail "unsupported metrics snapshot version %d" v);
  let int_assoc what = function
    | Json.Obj fields -> List.map (fun (k, v) -> (k, Json.to_int v)) fields
    | _ -> fail "JSON: expected object of integers for %s" what
  in
  let det = Json.member "deterministic" j in
  let wall = Json.member "wall" j in
  let histograms =
    match Json.member "histograms" det with
    | Json.Obj hs ->
        List.map
          (fun (name, buckets) ->
            ( name,
              List.map
                (fun (bk, c) -> (int_of_string bk, c))
                (int_assoc name buckets) ))
          hs
    | _ -> fail "JSON: expected histograms object"
  in
  {
    Obs.Metrics.counters = int_assoc "counters" (Json.member "counters" det);
    histograms;
    wall_counters = int_assoc "wall counters" (Json.member "counters" wall);
    gauges = int_assoc "gauges" (Json.member "gauges" wall);
    timers = int_assoc "timers" (Json.member "timers_ns" wall);
    elapsed_ns = Json.to_int (Json.member "elapsed_ns" wall);
  }
