(** Per-box trace telemetry for the worklist verifier.

    Every box the scheduler hands to the solver produces a small burst of
    events — contraction effort, fuel spent, the verdict, and (when the box
    is split) the number of children. Events carry the box's {e path}: the
    sequence of child indices from the root domain, which identifies the box
    uniquely and orders events deterministically regardless of which worker
    domain produced them. A recorder is thread-safe; {!events} returns the
    log sorted in pre-order (path, then per-box step), so traces of the same
    campaign are identical at any worker count.

    Serialization to JSON lives in {!Serialize} ({e trace} functions); the
    CLI's [verify --trace FILE] and the bench's [scheduler] target consume
    it. The invariant checked by the test suite: the {!Solve} fuel summed
    over a pair's events equals [Outcome.stats.total_expansions]. *)

type kind =
  | Contract of { revise_calls : int; sweeps : int }
      (** HC4 effort of this box's solver call *)
  | Solve of { fuel : int; prunes : int }
      (** fuel (box expansions) and prunes of this box's final solver call *)
  | Verdict of string  (** {!Outcome.status_name} of the region painted *)
  | Split of int  (** the box was split into this many children *)
  | Retry of { attempt : int; reason : string; fuel : int }
      (** a failed solver call (reason ["error"] or ["timeout"]) was
          re-run; [attempt] is the upcoming attempt's ordinal and [fuel]
          the expansions burned by the failed attempt. Emitted with
          negative steps so retries sort before the box's final
          contract/solve burst. *)

type event = {
  path : int list;  (** child indices from the root domain; [[]] = root *)
  depth : int;
  step : int;  (** emission order within one box's burst *)
  box : Box.t;
  kind : kind;
}

(** A thread-safe event collector. *)
type t

val create : unit -> t

(** [record t event] appends; safe from any domain. *)
val record : t -> event -> unit

(** The recorded log, sorted pre-order by (path, step) — deterministic for
    a given campaign regardless of scheduling. *)
val events : t -> event list

(** Pre-order comparison on box paths (prefix first). *)
val compare_path : int list -> int list -> int

(** Sum of {!Solve} and {!Retry} fuel over the log; equals the outcome's
    [total_expansions] for the pair the trace was recorded from (failed
    attempts burn real fuel too). *)
val total_fuel : event list -> int

val kind_name : kind -> string
val pp_event : Format.formatter -> event -> unit
