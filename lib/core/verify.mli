(** Algorithm 1 of the paper on a deadline-aware priority worklist.

    For a box [D] and encoded condition [psi]:

    + if [max_width D < t] — below the splitting threshold — the box is
      discarded;
    + otherwise the δ-complete solver runs on [D /\ not psi];
    + UNSAT: [D] is painted {e verified} and closed;
    + SAT with model [x]: re-check [x] in float arithmetic ([valid(x)]);
      paint a {e counterexample} (valid) or {e inconclusive} (spurious
      δ-sat model), then split;
    + timeout: paint a {e timeout}, then split;
    + splitting halves every dimension of [D]; the children are re-queued
      rather than recursed into.

    The queue is a priority worklist ({!Worklist}): widest box first, and
    among equal widths most-violating first (midpoint margin), so the search
    sharpens the region map breadth-first and reaches violation pockets
    early. Sub-box tasks are executed by [config.workers] OCaml domains;
    all formulas and contractors are built on the calling domain before the
    fan-out (expression hash-consing is not thread-safe), workers only
    evaluate. The painted log is re-sorted by box path afterwards, so
    outcomes are {e identical at every worker count}, including the
    pre-order parent-before-children property rasterization relies on.

    Differences from the paper's setup, by necessity of substrate: the
    per-call two-hour dReal limit becomes a deterministic fuel budget
    ([solver.fuel] box expansions per call), and the optional global
    wall-clock deadline drains the worklist gracefully — boxes still
    pending (at or above the threshold) are painted as timeouts rather
    than dropped silently. *)

(** Bounded, deterministic retry of failed solver calls. An errored or
    timed-out call on a box is re-run up to [max_retries] times with the
    fuel budget multiplied by [fuel_growth] per attempt (saturating);
    attempts are keyed by their ordinal so fault-injection decisions
    ({!Fault.decide}) re-roll deterministically. Exhausted retries paint
    the box {!Outcome.Error} (errors) or {!Outcome.Timeout}. *)
type retry_policy = {
  max_retries : int;  (** additional attempts after the first; 0 = off *)
  fuel_growth : int;  (** fuel multiplier per escalation step; >= 1 *)
}

(** The default: no retries ([max_retries = 0]) — failures surface on the
    first attempt, exactly the pre-retry behaviour. *)
val no_retry : retry_policy

type config = {
  threshold : float;  (** the paper's [t]; default 0.05 *)
  solver : Icp.config;
  deadline_seconds : float option;
      (** global wall budget for one (DFA, condition) pair *)
  workers : int;  (** OCaml domains executing sub-box solver calls *)
  use_taylor : bool;
      (** add the mean-value-form contractor to the solver's contraction
          pipeline. With [use_tape] it is the tape-native
          {!Hc4.mean_value_tape} (one adjoint sweep per atom); without, the
          tree-walk {!Taylor.contractor} (one symbolic-gradient tree walk
          per variable). On by default — the adjoint sweep made it cheap. *)
  use_tape : bool;
      (** compile the negated condition once per pair into an interval tape
          ({!Hc4.compile}) and have every solver call replay it instead of
          walking the expression trees — bit-identical paint logs, much
          cheaper contraction. On by default; turn off to run the reference
          tree-walking path (the equivalence tests do). *)
  split_heuristic : [ `Widest | `Smear ];
      (** how boxes split, at both levels of the search. [`Widest] (default):
          the paper's blind split — campaign tasks split every dimension
          ({!Box.split_all}), solver boxes bisect the widest dimension.
          [`Smear]: Kearfott's maximal-smear rule — both levels bisect the
          dimension maximizing [|∂f/∂x_i| * width(x_i)] (adjoint-tape
          scores, {!Hc4.smear_scores}), and the worklist drains
          steepest-boxes-first. Needs [use_tape]; degrades to widest-first
          without it. Sound either way: the heuristic changes exploration
          order, never verdict soundness. *)
  retry : retry_policy;
  jit : bool;
      (** compile the pair's tape into a batched native C kernel ({!Jit})
          and contract boxes through it. Bit-identical paint at any worker
          count — the kernel replays the interpreted pipeline operation
          for operation — just faster. Needs [use_tape]; when no C
          compiler is available or compilation fails the run silently
          stays on the interpreted tape ([jit.fallbacks] in the metrics
          counts it). Off by default. *)
  jit_cache : string option;
      (** directory for compiled kernels, content-addressed by source
          digest: campaigns over the same formulas reuse the [.so] instead
          of invoking the compiler again. [None] (default): a private temp
          workspace, removed at exit. *)
}

val default_config : config

(** A quick preset for demos and benches: coarser threshold, smaller fuel. *)
val quick_config : config

(** [run ~config problem] executes Algorithm 1 and returns the full outcome
    (paint log + aggregated {!Outcome.stats}). [recorder], when given,
    collects the per-box {!Trace} events of the run. [stop], when given, is
    polled alongside the deadline by every worker before popping a task —
    cooperative cancellation: once it returns true the frontier drains
    gracefully into timeout paint, yielding a {e partial} verdict map
    instead of an error (the service daemon's cancel/deadline hook). It is
    called from worker domains and must be thread-safe (e.g. an
    [Atomic.t] read). *)
val run :
  ?config:config -> ?recorder:Trace.t -> ?stop:(unit -> bool) ->
  Encoder.problem -> Outcome.t

(** [run_custom ~dfa_label ~condition_label ~domain ~psi ()] runs
    Algorithm 1 on an arbitrary local condition [psi] (an [expr >= 0]-style
    atom) over an arbitrary box — the entry point for conditions outside the
    registry pipeline, e.g. spin-resolved slices or user-supplied
    inequalities from the CLI. Labels are only used in the outcome record.
    [stop] as in {!run}. *)
val run_custom :
  ?config:config -> ?recorder:Trace.t -> ?stop:(unit -> bool) ->
  dfa_label:string -> condition_label:string -> domain:Box.t ->
  psi:Form.atom -> unit -> Outcome.t

(** [run_pair ~config dfa cond] encodes and runs; [None] if the condition
    does not apply. *)
val run_pair :
  ?config:config -> ?recorder:Trace.t -> Registry.t -> Conditions.id ->
  Outcome.t option

(** {1 Multi-process sharding}

    A campaign pair's box tree is partitioned by box-path prefix across
    [shard_count] cooperating processes. Every shard deterministically
    replays the {e trunk} — the nodes shallower than the shard frontier
    depth — because which frontier nodes exist depends on solve results;
    only shard 0 paints and counts trunk nodes (the others replay them
    silently against scratch stats and a scratch metrics instance), and
    frontier nodes are assigned round-robin in deterministic walk order.
    Consequences, certified by the [@shard] test gate: the per-shard paint
    logs partition the unsharded log exactly; deterministic metrics and
    stats merge (by summation) to the unsharded values; and all of this
    holds at any shard count x any per-shard worker count, for
    deadline-free runs. *)

type shard_spec = {
  shard_index : int;  (** 0-based; shard 0 owns the trunk *)
  shard_count : int;  (** [1] behaves exactly like an unsharded run *)
}

(** [run_custom_sharded ~shard ...] is {!run_custom} restricted to the
    shard's slice, additionally returning the box path of every region of
    the paint log (in the same order as [regions]) — the sort key a merge
    needs to interleave shard logs back into pre-order. *)
val run_custom_sharded :
  ?config:config -> ?recorder:Trace.t -> ?shard:shard_spec ->
  ?stop:(unit -> bool) -> dfa_label:string -> condition_label:string ->
  domain:Box.t -> psi:Form.atom -> unit -> Outcome.t * int list list

(** [run_sharded ~shard problem] — {!run} for one shard; as
    {!run_custom_sharded} for an encoded problem. *)
val run_sharded :
  ?config:config -> ?shard:shard_spec -> Encoder.problem ->
  Outcome.t * int list list

(** [config_hash config] — {!Serialize.digest} of the verdict-relevant
    configuration: threshold, solver fuel/delta/rounds/sample-check, fault
    plan, contractor and tape choices, split heuristic, retry policy.
    [workers] and [deadline_seconds] are excluded: they change scheduling,
    never verdicts (for deadline-free runs), so a checkpoint taken at -j4
    resumes at -j1. *)
val config_hash : config -> string

(** [formula_hash problems] — {!Serialize.digest} over the encoded problem
    set (labels, domains, condition expressions); two campaigns share it
    iff they verify the same formulas over the same boxes. *)
val formula_hash : Encoder.problem list -> string

(** [campaign ~config dfas] runs every applicable pair (Table I's rows x
    columns), sequentially per pair (each pair still uses
    [config.workers] domains internally).

    Supervision: a pair whose run raises (outside the box-level isolation)
    is retried per [config.retry] with escalated fuel and finally recorded
    as a single whole-domain {!Outcome.Error} region — the campaign never
    aborts on one pair.

    [checkpoint], when given, appends each completed outcome to the file
    (one s-expression line, flushed) as the campaign proceeds; a killed
    campaign loses at most the pair in flight. [resume], when given, loads
    outcomes from a previous checkpoint and reuses them for already-completed
    (dfa, condition) pairs instead of re-running; the returned list is in the
    same canonical pair order either way. Typically the same path is passed
    as both. *)
val campaign :
  ?config:config -> ?checkpoint:string -> ?resume:string ->
  Registry.t list -> Outcome.t list

(** [campaign_parallel ~config ~workers dfas] — as {!campaign}, but fanned
    out over a {!Pool} of domains at pair granularity. All formulas are
    encoded on the calling domain first (expression hash-consing is not
    thread-safe); the solver itself never builds expressions, so the
    parallel runs are safe. Prefer per-pair workers ([config.workers]) for
    few long pairs, this for many short ones.

    Supervision, [checkpoint] and [resume] as in {!campaign}, except the
    checkpoint is written once, after the pool drains (resume granularity
    is the whole batch of fresh pairs). *)
val campaign_parallel :
  ?config:config -> ?checkpoint:string -> ?resume:string -> workers:int ->
  Registry.t list -> Outcome.t list

(** [shard_campaign ~shard ~checkpoint dfas] runs shard
    [shard.shard_index] of [shard.shard_count] of the campaign,
    sequentially per pair. Each pair runs under a private fresh metrics
    instance; the completed pair is appended to [checkpoint] as one
    flushed {!Serialize.entry} line carrying the outcome, its region
    paths, and the pair's metrics snapshot JSON. The checkpoint starts
    with a shard-coordinated {!Serialize.header}; a fresh run truncates
    whatever was at [checkpoint] before.

    [resume], when given, must be a shard checkpoint with a matching
    header ([Failure] otherwise — config hash, formula hash and shard
    coordinates are all checked); its completed pairs are reused, {e
    including their metrics snapshots}, which is what keeps the merged
    deterministic metrics byte-identical to the unsharded run even after
    a shard was SIGKILLed and restarted. When [resume] is the checkpoint
    path itself, a torn tail from the kill is truncated
    ({!Serialize.repair_checkpoint}) before new entries are appended.

    [on_pair] fires after each fresh (non-resumed) pair is checkpointed —
    the supervisor tests use it to kill a shard at a deterministic point.

    Returns the per-pair [(outcome, paths)] list in canonical pair order
    and the shard's folded metrics snapshot (the fold of its per-pair
    snapshots — what a per-shard [--metrics] file should contain). *)
val shard_campaign :
  ?config:config -> shard:shard_spec -> checkpoint:string ->
  ?resume:string -> ?on_pair:(Outcome.t -> unit) -> Registry.t list ->
  (Outcome.t * int list list) list * Obs.Metrics.snapshot
