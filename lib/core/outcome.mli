(** Verification outcomes and region bookkeeping for Algorithm 1.

    The verifier emits a {e paint log}: a pre-order sequence of
    (box, status) pairs. A parent box's status is recorded before its
    children's, so re-painting the log in order yields the final region map
    — children refine (overwrite) the parts of a parent that further
    splitting resolved, exactly as the paper's Figures 1 and 2 are drawn. *)

type status =
  | Verified  (** solver proved the condition on the box *)
  | Counterexample of (string * float) list
      (** a model that passed the [valid(x)] float re-check *)
  | Inconclusive of (string * float) list
      (** δ-sat model that failed [valid(x)] — the paper's yellow regions *)
  | Timeout  (** solver fuel exhausted on the box *)
  | Error of string
      (** the solver call raised (after the retry policy was exhausted);
        carries the exception message. Isolated to this box — the rest of
        the campaign is unaffected. *)

type region = { box : Box.t; status : status; depth : int }

(** Aggregated solver telemetry for one (DFA, condition) pair: the sums of
    the per-call {!Icp.stats} counters over every solver call the scheduler
    made, plus the wall clock. When tracing is enabled, the per-box
    {!Trace.Solve} fuel events sum to [total_expansions] exactly. *)
type stats = {
  solver_calls : int;
      (** solver invocations, counting each retry attempt separately *)
  total_expansions : int;  (** summed solver fuel consumed *)
  total_prunes : int;  (** boxes the solver discarded as infeasible *)
  total_revise_calls : int;  (** HC4 revise invocations *)
  retries : int;
      (** re-runs of errored or timed-out solver calls made by the retry
        policy ({!Verify.retry_policy}); 0 when retries are disabled *)
  elapsed : float;  (** wall-clock seconds *)
}

(** All counters zero — a convenience for hand-built outcomes in tests. *)
val zero_stats : stats

type t = {
  dfa : string;
  condition : string;
  domain : Box.t;
  regions : region list;  (** pre-order paint log *)
  stats : stats;
}

(** Table I classification symbols. *)
type classification =
  | Full_verified  (** ✓ — verified on the entire domain *)
  | Partial_verified  (** ✓* — partly verified, rest timeout/inconclusive *)
  | Unknown  (** ? — timeout/inconclusive everywhere *)
  | Refuted  (** ✗ — a counterexample was found *)

(** {1 Rasterization} *)

(** [rasterize t ~xdim ~ydim ~nx ~ny] paints the region log onto an
    [nx * ny] cell grid over the two named dimensions (cells without any
    painted status — possible only for a pair that never resolved — default
    to {!Timeout}). Row index 0 is the {e low} end of [ydim]. For boxes of
    more than two dimensions the projection paints a cell with the status of
    the last region covering the cell centre in the projected plane. *)
val rasterize :
  t -> xdim:string -> ydim:string -> nx:int -> ny:int -> status array array

(** Fractions of the domain (by rasterized area) in each status. *)
type coverage = {
  verified : float;
  counterexample : float;
  inconclusive : float;
  timeout : float;
  error : float;
}

val coverage : ?resolution:int -> t -> coverage

(** [classify t] derives the Table I symbol: any counterexample region means
    {!Refuted}; otherwise full/partial/none verified coverage. *)
val classify : ?resolution:int -> t -> classification

(** First counterexample model of the log, if any. *)
val first_counterexample : t -> (string * float) list option

(** Whether any region of the log carries an {!Error} paint. *)
val has_error : t -> bool

(** First error message of the log, if any. *)
val first_error : t -> string option

val classification_symbol : classification -> string
val status_name : status -> string
val pp_summary : Format.formatter -> t -> unit
