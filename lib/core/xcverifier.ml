let verify ?config ~dfa ~condition () =
  let f = Registry.find dfa in
  let c = Conditions.of_name condition in
  Verify.run_pair ?config f c

let verify_all ?config ?checkpoint ?resume () =
  Verify.campaign ?config ?checkpoint ?resume Registry.paper_five

let baseline ?n ~dfa ~condition () =
  let f = Registry.find dfa in
  let c = Conditions.of_name condition in
  Pbcheck.check ?n f c

let table1 = Report.table1
let table2 = Report.table2

let figure outcome pb =
  let title =
    Printf.sprintf "%s / %s" outcome.Outcome.dfa outcome.Outcome.condition
  in
  Render.figure ~title ~pb outcome

let version = "0.1.0"
