(** Merging per-shard campaign checkpoints back into one run.

    A sharded campaign ({!Verify.shard_campaign}) leaves one checkpoint per
    shard ([base.shard0] .. [base.shardN-1]). This module joins them into a
    single run whose paint log, Table I render and deterministic metrics
    section are byte-identical to the unsharded campaign — the certified
    contract of the [@shard] test gate.

    Why it works: each shard's per-pair paint log is a pre-order-sorted
    slice of the unsharded log with pairwise-disjoint box paths, so a keyed
    merge of sorted sequences is associative, commutative and
    partition-independent. Merge never re-solves anything; it only
    interleaves and sums. All validation is strict — a missing shard,
    overlapping slices, a torn tail, or checkpoints from different
    configurations or campaigns fail with an operator-facing error instead
    of silently producing a partial table. *)

(** One shard's contribution, in memory. *)
type shard_run = {
  index : int;
  count : int;
  pairs : (Outcome.t * int list list) list;
      (** per pair: the shard's outcome slice and the box path of each of
          its regions (same order) — the interleaving key *)
  metrics : Obs.Metrics.snapshot;  (** the shard's folded metrics *)
}

type merged = {
  outcomes : Outcome.t list;  (** canonical pair order, full paint logs *)
  metrics : Obs.Metrics.snapshot;
      (** deterministic section equals the unsharded run's byte-for-byte *)
}

(** [shard_path base i] — the per-shard checkpoint filename convention,
    [base.shard<i>]. *)
val shard_path : string -> int -> string

(** [merge_pair a b] interleaves two disjoint slices of the same pair by
    box-path order and sums their stats counters (wall clock takes the
    max). Associative and commutative; raises [Failure]-free — errors
    surface through {!merge_runs}. Exposed for the QCheck algebra tests.
    @raise Merge_error on overlapping paths or mismatched pairs. *)
val merge_pair :
  Outcome.t * int list list ->
  Outcome.t * int list list ->
  Outcome.t * int list list

exception Merge_error of string

(** [merge_runs runs] validates (exactly shards [0..count-1], no duplicate
    or out-of-range indices, agreeing shard counts and pair sets) and
    merges. The result is independent of the order of [runs]. *)
val merge_runs : shard_run list -> (merged, string) result

(** [read_shards ~base] loads [base.shard0 .. base.shard<N-1>] where [N]
    comes from shard 0's header. Errors (as [Error msg]) name the failing
    shard: missing file, absent or unsharded header, filename/header shard
    index disagreement (overlap), torn tail (with the byte offset and the
    [--resume] remedy), config-hash or formula-hash mismatch against shard
    0, and entries missing paths or metrics. *)
val read_shards : base:string -> (shard_run list, string) result

(** [merge_files ~base] = {!read_shards} then {!merge_runs}. *)
val merge_files : base:string -> (merged, string) result
