type consistency = Consistent | Not_inconsistent | Undecidable | Inconsistent

let consistency_symbol = function
  | Consistent -> "C"
  | Not_inconsistent -> "C*"
  | Undecidable -> "?"
  | Inconsistent -> "!"

(* Final painted status at a point: the last region of the pre-order log
   containing it. *)
let final_status (t : Outcome.t) point =
  List.fold_left
    (fun acc (r : Outcome.region) ->
      if Box.mem point r.box then Some r.status else acc)
    None t.regions

let overlap_fraction (t : Outcome.t) (pb : Pbcheck.result) =
  let viol = ref [] and nv = ref 0 in
  Array.iteri
    (fun i ok ->
      if not ok then begin
        incr nv;
        (* Subsample: containment checks over the full 10^4-point mesh are
           wasteful; 2000 violating points give the fraction to +-2%. *)
        if !nv mod 5 = 1 || !nv <= 2000 then
          viol := Mesh.point pb.Pbcheck.mesh i :: !viol
      end)
    pb.Pbcheck.satisfied_mask;
  match !viol with
  | [] -> 1.0
  | points ->
      let hits =
        List.fold_left
          (fun acc p ->
            match final_status t p with
            | Some (Outcome.Counterexample _) -> acc + 1
            | Some (Outcome.Inconclusive _ | Outcome.Timeout | Outcome.Error _)
              -> acc + 1
            | Some Outcome.Verified | None -> acc)
          0 points
      in
      float_of_int hits /. float_of_int (List.length points)

let consistency_of (t : Outcome.t) (pb : Pbcheck.result) =
  match Outcome.classify t with
  | Outcome.Unknown -> (Undecidable, 0.0)
  | Outcome.Refuted ->
      if pb.Pbcheck.satisfied then (Inconsistent, 0.0)
      else (Consistent, overlap_fraction t pb)
  | Outcome.Full_verified | Outcome.Partial_verified ->
      if pb.Pbcheck.satisfied then (Not_inconsistent, 1.0)
      else
        (* PB sees violations where we verified: inconsistent unless the
           violations fall in unverified (timeout/inconclusive) regions. *)
        let f = overlap_fraction t pb in
        if f > 0.99 then (Not_inconsistent, f) else (Inconsistent, f)

(* ------------------------------------------------------------------ *)
(* Table formatting                                                    *)
(* ------------------------------------------------------------------ *)

let dfa_columns = List.map (fun f -> f.Registry.label) Registry.paper_five

let grid_of_cells lookup =
  let buf = Buffer.create 2048 in
  let col_width = 9 in
  let pad s w =
    let n = String.length s in
    if n >= w then s else s ^ String.make (w - n) ' '
  in
  Buffer.add_string buf (pad "Local condition" 32);
  List.iter (fun d -> Buffer.add_string buf (pad d col_width)) dfa_columns;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (32 + (col_width * List.length dfa_columns)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun cond ->
      Buffer.add_string buf (pad (Conditions.label cond) 32);
      List.iter
        (fun dfa -> Buffer.add_string buf (pad (lookup cond dfa) col_width))
        dfa_columns;
      Buffer.add_char buf '\n')
    Conditions.all;
  Buffer.contents buf

let find_outcome outcomes cond dfa_label =
  List.find_opt
    (fun (t : Outcome.t) ->
      String.equal t.dfa dfa_label
      && String.equal t.condition (Conditions.name cond))
    outcomes

let table1 outcomes =
  "Table I: verifying local conditions with XCVerifier\n"
  ^ "(OK verified; OK* partially verified; ? timeout/inconclusive "
  ^ "everywhere; X counterexample; - not applicable)\n\n"
  ^ grid_of_cells (fun cond dfa ->
        match find_outcome outcomes cond dfa with
        | Some t -> Outcome.classification_symbol (Outcome.classify t)
        | None -> "-")

let find_pb pb_results cond dfa_label =
  List.find_opt
    (fun (r : Pbcheck.result) ->
      String.equal r.Pbcheck.dfa dfa_label && r.Pbcheck.condition = cond)
    pb_results

let table2 outcomes pb_results =
  "Table II: consistency of XCVerifier and the PB grid baseline\n"
  ^ "(C consistent counterexamples; C* neither finds counterexamples; "
  ^ "? XCVerifier timed out; ! inconsistent; - not applicable)\n\n"
  ^ grid_of_cells (fun cond dfa ->
        match find_outcome outcomes cond dfa, find_pb pb_results cond dfa with
        | Some t, Some pb -> consistency_symbol (fst (consistency_of t pb))
        | _ -> "-")

let paper_table1 =
  let row cond cells = List.map2 (fun d c -> ((d, cond), c)) dfa_columns cells in
  List.concat
    [
      row "ec1" [ "OK*"; "?"; "X"; "OK"; "OK" ];
      row "ec2" [ "OK*"; "?"; "X"; "OK*"; "OK" ];
      row "ec3" [ "?"; "?"; "X"; "?"; "OK" ];
      row "ec6" [ "OK*"; "?"; "X"; "OK"; "OK" ];
      row "ec7" [ "X"; "?"; "X"; "OK*"; "OK*" ];
      row "ec4" [ "OK*"; "?"; "-"; "-"; "-" ];
      row "ec5" [ "OK"; "?"; "-"; "-"; "-" ];
    ]
