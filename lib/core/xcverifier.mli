(** XCVerifier — public façade.

    One-call entry points over the full pipeline
    (registry → encoder → Algorithm 1 → report), for users who do not need
    the individual stages. The underlying modules remain available:
    {!Registry} (functionals), {!Conditions} (exact conditions),
    {!Encoder}, {!Verify} (Algorithm 1), {!Outcome}, {!Render}, {!Report},
    {!Pbcheck} (grid baseline), and below them {!Expr}/{!Deriv} (symbolic
    engine) and {!Icp}/{!Hc4} (δ-complete solver). *)

(** [verify ~dfa ~condition ()] runs Algorithm 1 for a functional and
    condition named as in the paper (e.g. ["pbe"], ["ec1"]).
    @raise Not_found for unknown names; returns [None] when the condition
    does not apply to the functional. *)
val verify :
  ?config:Verify.config -> dfa:string -> condition:string -> unit ->
  Outcome.t option

(** [verify_all ()] runs the paper's full campaign: every applicable
    condition for the five DFAs of Table I. [checkpoint]/[resume] as in
    {!Verify.campaign}. *)
val verify_all :
  ?config:Verify.config -> ?checkpoint:string -> ?resume:string -> unit ->
  Outcome.t list

(** [baseline ~dfa ~condition ()] runs the Pederson-Burke grid check. *)
val baseline :
  ?n:int -> dfa:string -> condition:string -> unit -> Pbcheck.result option

(** [table1 outcomes] / [table2 outcomes pb] — formatted result tables. *)
val table1 : Outcome.t list -> string

val table2 : Outcome.t list -> Pbcheck.result list -> string

(** [figure ~dfa ~condition outcome pb] — ASCII region map in the layout of
    the paper's figures. *)
val figure : Outcome.t -> Pbcheck.result option -> string

(** Library version. *)
val version : string
