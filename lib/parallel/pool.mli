(** Minimal multicore work distribution over OCaml 5 domains.

    The verification campaign is embarrassingly parallel across
    (DFA, condition) pairs and across subdomains, so a shared-counter
    work-pulling map is all the structure needed. With [workers = 1] (the
    default on single-core hosts) everything degrades to plain sequential
    evaluation with no domains spawned — important because spawning domains
    has a fixed cost and the solver itself is allocation-heavy.

    Note: expression hash-consing ({!Expr}) uses an unsynchronized global
    table, so tasks executed on secondary domains must not {e build} new
    expressions; the verifier respects this by encoding all formulas on the
    main domain before fanning out solver calls, which only read them. *)

(** Recommended worker count: [Domain.recommended_domain_count ()], at
    least 1. *)
val default_workers : unit -> int

(** [map ~workers f xs] applies [f] to every element, distributing items to
    [workers] domains through a shared atomic cursor. Results preserve input
    order. Fail-fast: the first exception raised by any task is re-raised
    after all domains are joined, and a worker that observes the failure
    stops claiming new items immediately (in-flight items on other workers
    still finish). For supervision — every item attempted, all failures
    collected — use {!map_result}. *)
val map : workers:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_result ~workers f xs] — supervised map: every item is attempted
    regardless of other items' failures, and each failure is captured in
    place as [Error exn] rather than aborting the run. Results preserve
    input order; no exception escapes. *)
val map_result :
  workers:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** [iter ~workers f xs] — as {!map}, discarding results. *)
val iter : workers:int -> ('a -> unit) -> 'a list -> unit
