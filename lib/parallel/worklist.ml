(* Priority worklist over OCaml 5 domains; see the interface for the
   scheduling contract. *)

module Heap = struct
  (* Array-backed binary min-heap with a hard capacity bound. *)
  type 'a t = {
    compare : 'a -> 'a -> int;
    capacity : int;
    mutable arr : 'a array;  (* physical storage; slots >= size are junk *)
    mutable size : int;
  }

  let create ~capacity compare = { compare; capacity; arr = [||]; size = 0 }

  let swap h i j =
    let t = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- t

  let rec sift_up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if h.compare h.arr.(i) h.arr.(p) < 0 then begin
        swap h i p;
        sift_up h p
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let best = ref i in
    if l < h.size && h.compare h.arr.(l) h.arr.(!best) < 0 then best := l;
    if r < h.size && h.compare h.arr.(r) h.arr.(!best) < 0 then best := r;
    if !best <> i then begin
      swap h i !best;
      sift_down h !best
    end

  (* Returns false (and drops nothing — the caller keeps the element) when
     the heap is at capacity. *)
  let push h x =
    if h.size >= h.capacity then false
    else begin
      if h.size >= Array.length h.arr then begin
        let cap = Stdlib.min h.capacity (Stdlib.max 64 (2 * h.size)) in
        let arr = Array.make cap x in
        Array.blit h.arr 0 arr 0 h.size;
        h.arr <- arr
      end;
      h.arr.(h.size) <- x;
      h.size <- h.size + 1;
      sift_up h (h.size - 1);
      true
    end

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.arr.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.arr.(0) <- h.arr.(h.size);
        sift_down h 0
      end;
      Some top
    end

  let drain h =
    let rec go acc = match pop h with None -> acc | Some x -> go (x :: acc) in
    List.rev (go [])
end

type ('task, 'result) outcome = {
  results : 'result list;
  dropped : 'task list;
}

(* Heap slots carry the pushing domain's id so a pop by a different domain
   can be counted as a steal (wall-class telemetry only — scheduling order
   itself is unaffected). *)
type 'task slot = { producer : int; task : 'task }

(* Telemetry. [worklist.tasks] counts every handled task (shared-heap and
   local-overflow paths alike) and is deterministic for deadline-free runs;
   the rest depends on scheduling or heap fullness and is wall-class. *)
let m_tasks = Obs.Metrics.counter "worklist.tasks"
let m_pushed = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "worklist.pushed"
let m_steals = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "worklist.steals"
let m_drained = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "worklist.drained"
let m_overflow = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "worklist.overflow"

(* Trunk-replay accounting for the sharded verifier: a task handled outside
   any worklist (the shard-owned prefix walk) still counts towards
   [worklist.tasks], so sharded metrics merge to the unsharded totals. *)
let external_task () =
  Obs.Metrics.incr m_tasks 1;
  Obs.Progress.tick ()
let g_depth = Obs.Metrics.gauge "worklist.depth"

type ('task, 'result) state = {
  heap : 'task slot Heap.t;
  lock : Mutex.t;
  wake : Condition.t;
  mutable in_flight : int;
  mutable results : 'result list;
  mutable dropped : 'task list;
  mutable stopped : bool;
  mutable failed : exn option;
}

let default_capacity = 1 lsl 16

let process ~workers ~compare ?(stop = fun () -> false)
    ?(capacity = default_capacity) ?recover ~handle init =
  (* Supervision: a raising handler is routed through [recover] when given;
     only when [recover] is absent (or itself raises) does the failure
     abort the whole run. *)
  let protected t =
    match handle t with
    | r -> Ok r
    | exception e -> (
        match recover with
        | None -> Error e
        | Some f -> ( match f t e with r -> Ok r | exception e2 -> Error e2))
  in
  let st =
    {
      heap = Heap.create ~capacity (fun a b -> compare a.task b.task);
      lock = Mutex.create ();
      wake = Condition.create ();
      in_flight = 0;
      results = [];
      dropped = [];
      stopped = false;
      failed = None;
    }
  in
  let self_id () = (Domain.self () :> int) in
  let caller = self_id () in
  let leftover =
    List.filter
      (fun t -> not (Heap.push st.heap { producer = caller; task = t }))
      init
  in
  Obs.Metrics.incr m_pushed (List.length init - List.length leftover);
  Obs.Metrics.gauge_set g_depth st.heap.Heap.size;
  (* Capacity-overflow fallback: process a task and its descendants locally,
     LIFO, without touching the shared heap. Priority order is lost for the
     overflow subtree but no work is; with the default capacity this path is
     never taken by realistic verification frontiers. *)
  let run_local t =
    let results = ref [] and dropped = ref [] in
    let rec go stack =
      match stack with
      | [] -> ()
      | t :: rest ->
          if stop () then begin
            Obs.Metrics.incr m_drained 1;
            dropped := t :: !dropped;
            go rest
          end
          else begin
            Obs.Metrics.incr m_tasks 1;
            Obs.Metrics.incr m_overflow 1;
            Obs.Progress.tick ();
            match protected t with
            | Error e -> raise e
            | Ok (r, children) ->
                results := r :: !results;
                go (List.rev_append children rest)
          end
    in
    go [ t ];
    (List.rev !results, List.rev !dropped)
  in
  let worker () =
    let me = self_id () in
    let running = ref true in
    while !running do
      Mutex.lock st.lock;
      let action =
        if st.failed <> None || st.stopped then `Quit
        else if stop () then begin
          st.stopped <- true;
          Condition.broadcast st.wake;
          `Quit
        end
        else
          match Heap.pop st.heap with
          | Some s ->
              st.in_flight <- st.in_flight + 1;
              Obs.Metrics.gauge_set g_depth st.heap.Heap.size;
              `Run s
          | None ->
              if st.in_flight = 0 then begin
                Condition.broadcast st.wake;
                `Quit
              end
              else `Wait
      in
      match action with
      | `Quit ->
          Mutex.unlock st.lock;
          running := false
      | `Wait ->
          Condition.wait st.wake st.lock;
          Mutex.unlock st.lock
      | `Run { producer; task = t } -> (
          Mutex.unlock st.lock;
          if producer <> me then Obs.Metrics.incr m_steals 1;
          Obs.Metrics.incr m_tasks 1;
          Obs.Progress.tick ();
          match protected t with
          | Error e ->
              Mutex.lock st.lock;
              if st.failed = None then st.failed <- Some e;
              st.in_flight <- st.in_flight - 1;
              Condition.broadcast st.wake;
              Mutex.unlock st.lock;
              running := false
          | Ok (r, children) -> (
              Mutex.lock st.lock;
              st.results <- r :: st.results;
              let overflow =
                List.filter
                  (fun c ->
                    not (Heap.push st.heap { producer = me; task = c }))
                  children
              in
              Obs.Metrics.incr m_pushed
                (List.length children - List.length overflow);
              Obs.Metrics.gauge_set g_depth st.heap.Heap.size;
              Mutex.unlock st.lock;
              (* handle overflow children outside the lock *)
              match
                match overflow with
                | [] -> ([], [])
                | _ ->
                    List.fold_left
                      (fun (rs, ds) c ->
                        let r, d = run_local c in
                        (List.rev_append r rs, List.rev_append d ds))
                      ([], []) overflow
              with
              | exception e ->
                  Mutex.lock st.lock;
                  if st.failed = None then st.failed <- Some e;
                  st.in_flight <- st.in_flight - 1;
                  Condition.broadcast st.wake;
                  Mutex.unlock st.lock;
                  running := false
              | extra_r, extra_d ->
                  Mutex.lock st.lock;
                  st.results <- List.rev_append extra_r st.results;
                  st.dropped <- List.rev_append extra_d st.dropped;
                  st.in_flight <- st.in_flight - 1;
                  Condition.broadcast st.wake;
                  Mutex.unlock st.lock))
    done
  in
  (* Initial tasks beyond capacity run locally on the caller. *)
  List.iter
    (fun t ->
      let r, d = run_local t in
      st.results <- List.rev_append r st.results;
      st.dropped <- List.rev_append d st.dropped)
    leftover;
  let domains =
    if workers <= 1 then []
    else List.init (workers - 1) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join domains;
  (match st.failed with Some e -> raise e | None -> ());
  let leftover = List.map (fun s -> s.task) (Heap.drain st.heap) in
  Obs.Metrics.incr m_drained (List.length leftover);
  Obs.Metrics.gauge_set g_depth 0;
  { results = List.rev st.results; dropped = leftover @ st.dropped }
