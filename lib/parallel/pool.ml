let default_workers () = Stdlib.max 1 (Domain.recommended_domain_count ())

(* Shared-cursor work pulling over [items], with a per-item [run] that never
   raises (it returns a value or records a failure itself) and a [continue]
   probe checked *before* claiming: a worker that observes a fail-fast flag
   stops immediately, without advancing the cursor past items it would then
   abandon. *)
let distribute ~workers ~continue ~run n =
  let cursor = Atomic.make 0 in
  let worker () =
    let rec loop () =
      if continue () then begin
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          run i;
          loop ()
        end
      end
    in
    loop ()
  in
  let domains =
    List.init (Stdlib.min workers n - 1) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join domains

let map ~workers f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when workers <= 1 -> List.map f xs
  | _ ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      let failure = Atomic.make None in
      distribute ~workers n
        ~continue:(fun () -> Atomic.get failure = None)
        ~run:(fun i ->
          match f items.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              (* Keep only the first failure; others are racing losers. *)
              ignore (Atomic.compare_and_set failure None (Some e)));
      (match Atomic.get failure with Some e -> raise e | None -> ());
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

let map_result ~workers f xs =
  let wrap x = match f x with v -> Ok v | exception e -> Error e in
  match xs with
  | [] -> []
  | [ x ] -> [ wrap x ]
  | _ when workers <= 1 -> List.map wrap xs
  | _ ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      distribute ~workers n
        ~continue:(fun () -> true)
        ~run:(fun i -> results.(i) <- Some (wrap items.(i)));
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

let iter ~workers f xs = ignore (map ~workers (fun x -> f x; ()) xs)
