(** Deadline-aware priority worklist over OCaml 5 domains.

    {!Pool.map} distributes a {e fixed} list of independent items; this
    module schedules a {e growing} frontier: handling one task may spawn
    subtasks (Algorithm 1's box splitting), and the scheduler always runs
    the highest-priority pending task next, across all workers. The
    verifier uses it at sub-box granularity with widest-box-first ordering,
    so large unresolved subdomains are attacked before small ones and the
    frontier shrinks roughly breadth-first.

    Same hash-consing caveat as {!Pool}: [handle] runs on secondary domains
    and must not build new expressions — callers encode formulas up front
    and pass construction-free closures.

    The work-deque is bounded ([capacity]): tasks beyond the bound are not
    lost but processed immediately by the worker that produced them (LIFO,
    outside the priority order), which bounds memory without sacrificing
    completeness. *)

type ('task, 'result) outcome = {
  results : 'result list;
      (** one result per handled task, in unspecified order — callers that
          need a deterministic order should tag tasks and sort *)
  dropped : 'task list;
      (** tasks still pending when [stop] fired — the graceful drain:
          nothing is lost mid-recursion, the caller records these (e.g. as
          timeout regions) *)
}

(** [external_task ()] accounts for one task handled outside any worklist
    (the sharded verifier's trunk replay): increments the deterministic
    [worklist.tasks] counter and ticks the progress line, exactly as a
    worker would for a popped task — so a campaign sharded across processes
    merges to the same deterministic task count as the unsharded run. *)
val external_task : unit -> unit

(** [process ~workers ~compare ~stop ~handle init] runs [handle] over the
    task frontier seeded with [init] until it is exhausted or [stop ()]
    turns true.

    - [compare]: scheduling priority; the pending task that compares
      {e smallest} runs first (pass "wider box ⇒ smaller" for
      widest-box-first).
    - [stop]: polled by every worker before popping the next task (e.g. a
      wall-clock deadline probe). Once true, in-flight tasks finish, every
      pending task is returned in [dropped], and no further tasks start.
    - [handle t] returns [(result, subtasks)]; subtasks are pushed back
      into the shared deque.
    - [recover t exn], when given, supervises failures: a raising [handle]
      is converted into [(result, subtasks)] (e.g. an error-painted region)
      and the run continues — no other task is affected. Without [recover]
      (or if [recover] itself raises), the first failure aborts the run and
      is re-raised on the caller after all domains are joined.
    - [workers = 1] runs everything on the calling domain (no domains are
      spawned); with [n > 1] workers, [n - 1] domains are spawned and the
      caller participates. *)
val process :
  workers:int ->
  compare:('task -> 'task -> int) ->
  ?stop:(unit -> bool) ->
  ?capacity:int ->
  ?recover:('task -> exn -> 'result * 'task list) ->
  handle:('task -> 'result * 'task list) ->
  'task list ->
  ('task, 'result) outcome
