(* One checkpoint-format file per (config_hash, formula_hash) key group;
   atomic creation, fsynced O_APPEND commits, repair-on-open. *)

let m_hits = Obs.Metrics.counter "service.cache.hits"
let m_subbox = Obs.Metrics.counter "service.cache.subbox_hits"
let m_misses = Obs.Metrics.counter "service.cache.misses"
let m_commits = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.cache.commits"
let m_repairs = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.cache.repairs"

type group = {
  g_file : string;
  g_header : Serialize.header;
  (* oldest first; lookups scan in file order so the choice of subsuming
     entry is stable across restarts *)
  mutable g_entries : Outcome.t list;
  mutable g_exists : bool;
}

type t = {
  dir : string;
  io_faults : Fault.io_plan option;
  groups : (string, group) Hashtbl.t;  (* keyed by group digest *)
  mutable commits : int;
}

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let open_dir ?io_faults dir =
  mkdir_p dir;
  { dir; io_faults; groups = Hashtbl.create 16; commits = 0 }

let dir t = t.dir
let commits t = t.commits
let refresh t = Hashtbl.reset t.groups

let group_key ~config_hash ~formula_hash =
  Serialize.digest (config_hash ^ ":" ^ formula_hash)

let group_file t ~config_hash ~formula_hash =
  Filename.concat t.dir
    (Printf.sprintf "group-%s.ckpt" (group_key ~config_hash ~formula_hash))

(* Load (or reload) a group from disk, repairing a torn tail first so
   subsequent appends are visible to every loader. *)
let load_group t ~config_hash ~formula_hash =
  let key = group_key ~config_hash ~formula_hash in
  match Hashtbl.find_opt t.groups key with
  | Some g -> g
  | None ->
      let file = group_file t ~config_hash ~formula_hash in
      let header = Serialize.{ config_hash; formula_hash; shard = None } in
      let exists = Sys.file_exists file in
      let entries =
        if not exists then []
        else begin
          let cp = Serialize.repair_checkpoint file in
          if cp.Serialize.truncated then Obs.Metrics.incr m_repairs 1;
          (match cp.Serialize.cp_header with
          | Some h -> Serialize.check_header ~path:file ~expect:header h
          | None ->
              failwith
                (Printf.sprintf "cache file %s has no header — not a cache \
                                 group file" file));
          List.map (fun e -> e.Serialize.outcome) cp.Serialize.entries
        end
      in
      let g = { g_file = file; g_header = header; g_entries = entries;
                g_exists = exists }
      in
      Hashtbl.replace t.groups key g;
      g

(* Atomic create-if-absent: write the header to a tmp file, then [link] it
   into place. Unlike rename, link fails with EEXIST instead of replacing,
   so a concurrent creator's already-appended entries can never be lost. *)
let ensure_file g =
  if not g.g_exists then begin
    if not (Sys.file_exists g.g_file) then begin
      let tmp =
        Printf.sprintf "%s.tmp.%d" g.g_file (Unix.getpid ())
      in
      let oc = open_out tmp in
      output_string oc (Serialize.header_to_string g.g_header ^ "\n");
      flush oc;
      (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
      close_out oc;
      (try Unix.link tmp g.g_file
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      (try Sys.remove tmp with Sys_error _ -> ())
    end;
    g.g_exists <- true
  end

let entries t ~config_hash ~formula_hash =
  (load_group t ~config_hash ~formula_hash).g_entries

let box_contains ~outer ~inner =
  Box.vars outer = Box.vars inner
  && List.for_all
       (fun v ->
         let o = Box.get outer v and i = Box.get inner v in
         Interval.inf o <= Interval.inf i && Interval.sup i <= Interval.sup o)
       (Box.vars outer)

type hit = Exact of Outcome.t | Subsumed of Outcome.t

(* A query box inside a cached Verified region is verified: synthesize a
   one-region outcome over the query box. Deterministic given the file
   (oldest subsuming entry wins), so restarts serve identical bytes. *)
let synthesize ~src ~box =
  Outcome.
    {
      dfa = src.dfa;
      condition = src.condition;
      domain = box;
      regions = [ { box; status = Verified; depth = 0 } ];
      stats = zero_stats;
    }

let find t ~config_hash ~formula_hash ~box =
  let g = load_group t ~config_hash ~formula_hash in
  let exact =
    List.find_opt (fun o -> Box.equal o.Outcome.domain box) g.g_entries
  in
  match exact with
  | Some o ->
      Obs.Metrics.incr m_hits 1;
      Some (Exact o)
  | None -> (
      let subsuming =
        List.find_opt
          (fun o ->
            List.exists
              (fun r ->
                r.Outcome.status = Outcome.Verified
                && box_contains ~outer:r.Outcome.box ~inner:box)
              o.Outcome.regions)
          g.g_entries
      in
      match subsuming with
      | Some src ->
          Obs.Metrics.incr m_subbox 1;
          Some (Subsumed (synthesize ~src ~box))
      | None ->
          Obs.Metrics.incr m_misses 1;
          None)

let put t ~config_hash ~formula_hash outcome =
  let key = group_key ~config_hash ~formula_hash in
  let g = load_group t ~config_hash ~formula_hash in
  if
    List.exists
      (fun o -> Box.equal o.Outcome.domain outcome.Outcome.domain)
      g.g_entries
  then () (* first commit wins; a duplicate would shadow nothing *)
  else begin
    ensure_file g;
    let line =
      Serialize.entry_to_string
        Serialize.{ outcome; paths = None; metrics_json = None }
    in
    match
      Serialize.append_line ?io_faults:t.io_faults ~fsync:true g.g_file line
    with
    | () ->
        g.g_entries <- g.g_entries @ [ outcome ];
        t.commits <- t.commits + 1;
        Obs.Metrics.incr m_commits 1
    | exception e ->
        (* the on-disk tail may be torn: drop the in-memory view so the
           next access re-reads and repairs the file *)
        Hashtbl.remove t.groups key;
        raise e
  end
