(** Query execution engine of the verification service.

    The daemon is split in two: a socket front-end ({!Daemon}) and this
    engine, which owns the bounded admission queue, the per-client fuel
    quotas, the verdict cache and the crash-recovery journal. The engine is
    transport-agnostic — tests drive it directly, in process.

    {b Threading.} [submit] / [cancel] / [stats] are called from the
    daemon's socket thread; [step] runs on a single runner thread (solver
    fan-out happens {e inside} a query via [config.verify.workers] domains
    — expression encoding is not thread-safe, so queries never encode
    concurrently). Shared state is guarded by one mutex; [step ~block:true]
    sleeps on a condition variable until work arrives or {!shutdown}.

    {b Admission control.} At most [max_inflight] queries may be queued or
    running; a submit beyond that is rejected immediately with
    [Overloaded] — callers retry, the daemon never buffers unboundedly.

    {b Degradation ladder.} When a client's fuel quota no longer covers a
    full-fidelity solve, the engine degrades before refusing: rung [r]
    multiplies the splitting threshold by [2^r] and divides solver fuel by
    [2^r] (rungs 1 and 2), so the client still gets a sound — coarser —
    verdict map. Only below a quarter of the configured fuel is the query
    [Refused]. Degraded configurations hash differently, so cached coarse
    verdicts never shadow full-fidelity ones.

    {b Journal.} Admitted queries are appended to [cache_dir/journal]
    before execution and marked done after; {!create} replays unfinished
    queries from the journal (warming the verdict cache) and truncates it.
    A daemon SIGKILLed mid-solve thus re-solves exactly the queries whose
    results were lost. *)

type config = {
  cache_dir : string;
  max_inflight : int;  (** queued + running bound; >= 1 *)
  default_deadline_ms : int option;  (** per-query wall budget *)
  fuel_quota : int option;  (** per-client solver-fuel allowance *)
  verify : Verify.config;  (** base verification configuration *)
  io_faults : Fault.io_plan option;  (** injected into cache + journal *)
  kill_after : int option;
      (** test hook ([XCV_SERVE_KILL_AFTER]): after the Nth cache commit,
          append a torn line to the group file and SIGKILL the process *)
}

(** [cache_dir "xcv-cache"], [max_inflight 4], no deadline, no quota,
    {!Verify.default_config}, no faults. *)
val default_config : config

type t
type client

(** [create config] opens the verdict cache (repairing torn tails),
    replays any unfinished journal entries, then truncates the journal. *)
val create : config -> t

val new_client : t -> client

(** Stable identity of a client within one engine (the daemon keys its
    connection table on it). *)
val client_id : client -> int

(** This client's remaining fuel quota ([None] = unlimited). *)
val quota_remaining : client -> int option

(** [submit t client req] — admission. Returns an immediate response
    ([Pong], [Stats_reply], [Overloaded]...) or [None] when the query was
    enqueued (its responses arrive via {!step}'s callback). [Cancel]
    returns [None] after flagging the target query. *)
val submit : t -> client -> Protocol.request -> Protocol.response option

(** [step t ~on_response ()] executes the next queued query, emitting its
    responses (including the terminal one) to [on_response]. Returns
    [false] when the queue was empty (after blocking, if [block], until
    work arrived or {!shutdown} was called). Never raises on query
    failure — errors become [Failed] responses. *)
val step :
  ?block:bool -> t -> on_response:(client -> Protocol.response -> unit) ->
  unit -> bool

(** [drain t ~on_response ()] steps until the queue is empty — the
    in-process test loop. *)
val drain :
  t -> on_response:(client -> Protocol.response -> unit) -> unit -> unit

(** Queued + running query count. *)
val pending : t -> int

(** The query currently being solved, if any: [(protocol id, client)]. *)
val running : t -> (int * client) option

(** [cancel t client ~id] flags the queued-or-running query with protocol
    id [id] submitted by [client]; its run drains cooperatively into a
    partial verdict map. *)
val cancel : t -> client -> id:int -> unit

(** [cancel_client t client] cancels everything [client] submitted — the
    daemon calls this when a connection drops. *)
val cancel_client : t -> client -> unit

(** Wake a blocked {!step} and make all future steps return [false]. *)
val shutdown : t -> unit

val stats : t -> client -> Protocol.stats_payload
