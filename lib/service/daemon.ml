(* Socket front-end: the main thread owns every descriptor (select loop,
   all frame writes); the runner thread only executes engine queries and
   drops responses into the outbox, waking the select via a self-pipe. *)

let m_boxes = Obs.Metrics.counter "verify.boxes"
let m_solver_calls = Obs.Metrics.counter "verify.solver_calls"

type config = {
  engine : Engine.config;
  socket_path : string;
  progress_interval_ms : int;
}

let default_config =
  {
    engine = Engine.default_config;
    socket_path = "xcv.sock";
    progress_interval_ms = 500;
  }

type conn = { fd : Unix.file_descr; client : Engine.client }

type state = {
  engine : Engine.t;
  conns : (int, conn) Hashtbl.t;  (* keyed by Engine.client_id *)
  outbox_mutex : Mutex.t;
  mutable outbox : (Engine.client * Protocol.response) list;  (* reversed *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let wake st =
  try ignore (Unix.write_substring st.wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

let runner st =
  let on_response client resp =
    Mutex.lock st.outbox_mutex;
    st.outbox <- (client, resp) :: st.outbox;
    Mutex.unlock st.outbox_mutex;
    wake st
  in
  while Engine.step ~block:true st.engine ~on_response () do
    ()
  done

let drop_conn st conn =
  Hashtbl.remove st.conns (Engine.client_id conn.client);
  (* queries of a vanished client drain cooperatively instead of burning
     their full budget into a result nobody will read *)
  Engine.cancel_client st.engine conn.client;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send st conn resp =
  try Protocol.write_frame conn.fd (Protocol.response_to_string resp)
  with Unix.Unix_error _ | Fault.Io_injected _ -> drop_conn st conn

let flush_outbox st =
  (* drain the wake pipe, then the queued responses, in arrival order *)
  let buf = Bytes.create 64 in
  (try
     while Unix.read st.wake_r buf 0 64 = 64 do
       ()
     done
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
     ());
  Mutex.lock st.outbox_mutex;
  let pending = List.rev st.outbox in
  st.outbox <- [];
  Mutex.unlock st.outbox_mutex;
  List.iter
    (fun (client, resp) ->
      match Hashtbl.find_opt st.conns (Engine.client_id client) with
      | Some conn -> send st conn resp
      | None -> () (* client disconnected while its query ran *))
    pending

let handle_frame st conn payload =
  match Protocol.request_of_string payload with
  | exception Parser.Parse_error msg ->
      send st conn (Protocol.Failed { id = 0; message = msg })
  | req -> (
      match Engine.submit st.engine conn.client req with
      | Some resp -> send st conn resp
      | None -> ())

let read_client st conn =
  match Protocol.read_frame conn.fd with
  | None -> drop_conn st conn
  | Some payload -> handle_frame st conn payload
  | exception (Failure _ | Unix.Unix_error _ | End_of_file) -> drop_conn st conn

let emit_progress st =
  match Engine.running st.engine with
  | None -> ()
  | Some (id, client) -> (
      match Hashtbl.find_opt st.conns (Engine.client_id client) with
      | None -> ()
      | Some conn ->
          send st conn
            (Protocol.Progress
               {
                 id;
                 label = Printf.sprintf "query %d" id;
                 boxes = Obs.Metrics.read m_boxes;
                 solver_calls = Obs.Metrics.read m_solver_calls;
               }))

let terminating = Atomic.make false

let install_signals () =
  let previous = ref [] in
  let install s =
    let old =
      Sys.signal s (Sys.Signal_handle (fun _ -> Atomic.set terminating true))
    in
    previous := (s, old) :: !previous
  in
  (try install Sys.sigterm with Invalid_argument _ | Sys_error _ -> ());
  (try install Sys.sigint with Invalid_argument _ | Sys_error _ -> ());
  (try
     previous := (Sys.sigpipe, Sys.signal Sys.sigpipe Sys.Signal_ignore)
                 :: !previous
   with Invalid_argument _ | Sys_error _ -> ());
  fun () ->
    List.iter
      (fun (s, old) -> try Sys.set_signal s old with _ -> ())
      !previous

let run ?(stop = fun () -> false) (config : config) =
  Atomic.set terminating false;
  let engine = Engine.create config.engine in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     if Sys.file_exists config.socket_path then Sys.remove config.socket_path;
     Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     failwith
       (Printf.sprintf "serve: cannot bind %s: %s" config.socket_path
          (Printexc.to_string e)));
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  let st =
    {
      engine;
      conns = Hashtbl.create 16;
      outbox_mutex = Mutex.create ();
      outbox = [];
      wake_r;
      wake_w;
    }
  in
  let restore_signals = install_signals () in
  let runner_thread = Thread.create runner st in
  let last_progress = ref (Unix.gettimeofday ()) in
  let tick =
    if config.progress_interval_ms <= 0 then 0.1
    else min 0.1 (float_of_int config.progress_interval_ms /. 1000.)
  in
  (try
     while not (Atomic.get terminating || stop ()) do
       let client_fds =
         Hashtbl.fold (fun _ c acc -> c.fd :: acc) st.conns []
       in
       let readable =
         match
           Unix.select (listen_fd :: st.wake_r :: client_fds) [] [] tick
         with
         | r, _, _ -> r
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
       in
       if List.mem listen_fd readable then begin
         match Unix.accept listen_fd with
         | fd, _ ->
             let client = Engine.new_client st.engine in
             Hashtbl.replace st.conns (Engine.client_id client) { fd; client }
         | exception Unix.Unix_error _ -> ()
       end;
       if List.mem st.wake_r readable then flush_outbox st;
       List.iter
         (fun fd ->
           if fd <> listen_fd && fd <> st.wake_r then
             let conn =
               Hashtbl.fold
                 (fun _ c acc -> if c.fd = fd then Some c else acc)
                 st.conns None
             in
             match conn with Some c -> read_client st c | None -> ())
         readable;
       (* results can land while we were reading requests *)
       flush_outbox st;
       if config.progress_interval_ms > 0 then begin
         let now = Unix.gettimeofday () in
         if now -. !last_progress
            >= float_of_int config.progress_interval_ms /. 1000.
         then begin
           last_progress := now;
           emit_progress st
         end
       end
     done
   with e ->
     Engine.shutdown engine;
     raise e);
  Engine.shutdown engine;
  Thread.join runner_thread;
  flush_outbox st;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    st.conns;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ listen_fd; st.wake_r; st.wake_w ];
  (try Sys.remove config.socket_path with Sys_error _ -> ());
  restore_signals ()
