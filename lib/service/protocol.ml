module S = Parser.Sexp

let fail fmt = Format.kasprintf (fun s -> raise (Parser.Parse_error s)) fmt

type query_opts = {
  deadline_ms : int option;
  fuel : int option;
  threshold : float option;
}

let no_opts = { deadline_ms = None; fuel = None; threshold = None }

type request =
  | Ping
  | Stats of int
  | Cancel of int
  | Verify of { id : int; dfa : string; condition : string; opts : query_opts }
  | Campaign of { id : int; dfa : string; opts : query_opts }

type stats_payload = {
  cache_hits : int;
  cache_misses : int;
  solver_calls : int;
  pending : int;
  quota_remaining : int option;
}

type response =
  | Pong
  | Progress of { id : int; label : string; boxes : int; solver_calls : int }
  | Result of {
      id : int;
      cached : bool;
      degraded : int;
      partial : bool;
      outcome : Outcome.t;
    }
  | Done of { id : int; count : int }
  | Overloaded of { id : int; inflight : int; max_inflight : int }
  | Refused of { id : int; reason : string }
  | Stats_reply of { id : int; stats : stats_payload }
  | Failed of { id : int; message : string }

(* ---- sexp building blocks ------------------------------------------- *)

let atom_int n = S.Atom (string_of_int n)

(* a bare "%" marks the empty string — percent_encode never emits a '%'
   without two hex digits, and the lexer cannot carry an empty atom *)
let atom_str s = S.Atom (if s = "" then "%" else Serialize.percent_encode s)
let field name v = S.List [ S.Atom name; v ]
let int_field name n = field name (atom_int n)
let str_field name s = field name (atom_str s)
let bool_field name b = field name (S.Atom (if b then "1" else "0"))

let int_of_atom what = function
  | S.Atom a -> (
      match int_of_string_opt a with
      | Some n -> n
      | None -> fail "service: %s: not an integer: %s" what a)
  | S.List _ -> fail "service: %s: expected integer atom" what

let str_of_atom what = function
  | S.Atom "%" -> ""
  | S.Atom a -> Serialize.percent_decode a
  | S.List _ -> fail "service: %s: expected atom" what

(* fields are (name value) pairs; unknown names are ignored so the codec
   tolerates additive protocol evolution *)
let assoc fields =
  List.filter_map
    (function
      | S.List [ S.Atom k; v ] -> Some (k, v)
      | _ -> None)
    fields

let get what kvs k =
  match List.assoc_opt k kvs with
  | Some v -> v
  | None -> fail "service: %s: missing field %s" what k

let get_int what kvs k = int_of_atom (what ^ "." ^ k) (get what kvs k)
let get_str what kvs k = str_of_atom (what ^ "." ^ k) (get what kvs k)

let opt_int kvs k = Option.map (int_of_atom k) (List.assoc_opt k kvs)

let sexp_to_string sexp =
  let buf = Buffer.create 256 in
  S.print buf sexp;
  Buffer.contents buf

(* ---- query options --------------------------------------------------- *)

let opts_fields o =
  List.concat
    [
      (match o.deadline_ms with
      | Some d -> [ int_field "deadline-ms" d ]
      | None -> []);
      (match o.fuel with Some f -> [ int_field "fuel" f ] | None -> []);
      (match o.threshold with
      | Some t -> [ field "threshold" (S.Atom (Printf.sprintf "%h" t)) ]
      | None -> []);
    ]

let opts_of kvs =
  {
    deadline_ms = opt_int kvs "deadline-ms";
    fuel = opt_int kvs "fuel";
    threshold =
      Option.map
        (function
          | S.Atom a -> (
              match float_of_string_opt a with
              | Some f -> f
              | None -> fail "service: threshold: not a float: %s" a)
          | S.List _ -> fail "service: threshold: expected atom")
        (List.assoc_opt "threshold" kvs);
  }

(* ---- requests -------------------------------------------------------- *)

let request_to_sexp = function
  | Ping -> S.List [ S.Atom "ping" ]
  | Stats id -> S.List [ S.Atom "stats"; atom_int id ]
  | Cancel id -> S.List [ S.Atom "cancel"; atom_int id ]
  | Verify { id; dfa; condition; opts } ->
      S.List
        (S.Atom "verify" :: int_field "id" id :: str_field "dfa" dfa
        :: str_field "condition" condition :: opts_fields opts)
  | Campaign { id; dfa; opts } ->
      S.List
        (S.Atom "campaign" :: int_field "id" id :: str_field "dfa" dfa
        :: opts_fields opts)

let request_of_sexp = function
  | S.List [ S.Atom "ping" ] -> Ping
  | S.List [ S.Atom "stats"; id ] -> Stats (int_of_atom "stats.id" id)
  | S.List [ S.Atom "cancel"; id ] -> Cancel (int_of_atom "cancel.id" id)
  | S.List (S.Atom "verify" :: fields) ->
      let kvs = assoc fields in
      Verify
        {
          id = get_int "verify" kvs "id";
          dfa = get_str "verify" kvs "dfa";
          condition = get_str "verify" kvs "condition";
          opts = opts_of kvs;
        }
  | S.List (S.Atom "campaign" :: fields) ->
      let kvs = assoc fields in
      Campaign
        {
          id = get_int "campaign" kvs "id";
          dfa = get_str "campaign" kvs "dfa";
          opts = opts_of kvs;
        }
  | _ -> fail "service: unknown request"

let request_to_string r = sexp_to_string (request_to_sexp r)
let request_of_string s = request_of_sexp (S.parse s)

(* ---- responses ------------------------------------------------------- *)

let response_to_sexp = function
  | Pong -> S.List [ S.Atom "pong" ]
  | Progress { id; label; boxes; solver_calls } ->
      S.List
        [
          S.Atom "progress"; int_field "id" id; str_field "label" label;
          int_field "boxes" boxes; int_field "solver-calls" solver_calls;
        ]
  | Result { id; cached; degraded; partial; outcome } ->
      S.List
        [
          S.Atom "result"; int_field "id" id; bool_field "cached" cached;
          int_field "degraded" degraded; bool_field "partial" partial;
          (* splice the Serialize v3 outcome sexp: a cached reply is
             byte-identical to the freshly solved one *)
          S.parse (Serialize.to_string outcome);
        ]
  | Done { id; count } ->
      S.List [ S.Atom "done"; int_field "id" id; int_field "count" count ]
  | Overloaded { id; inflight; max_inflight } ->
      S.List
        [
          S.Atom "overloaded"; int_field "id" id; int_field "inflight" inflight;
          int_field "max" max_inflight;
        ]
  | Refused { id; reason } ->
      S.List [ S.Atom "refused"; int_field "id" id; str_field "reason" reason ]
  | Stats_reply { id; stats } ->
      S.List
        [
          S.Atom "stats"; int_field "id" id;
          int_field "cache-hits" stats.cache_hits;
          int_field "cache-misses" stats.cache_misses;
          int_field "solver-calls" stats.solver_calls;
          int_field "pending" stats.pending;
          field "quota"
            (match stats.quota_remaining with
            | Some q -> atom_int q
            | None -> S.Atom "none");
        ]
  | Failed { id; message } ->
      S.List [ S.Atom "failed"; int_field "id" id; str_field "message" message ]

let response_of_sexp = function
  | S.List [ S.Atom "pong" ] -> Pong
  | S.List (S.Atom "progress" :: fields) ->
      let kvs = assoc fields in
      Progress
        {
          id = get_int "progress" kvs "id";
          label = get_str "progress" kvs "label";
          boxes = get_int "progress" kvs "boxes";
          solver_calls = get_int "progress" kvs "solver-calls";
        }
  | S.List (S.Atom "result" :: rest) ->
      let fields, outcome_sexp =
        match List.rev rest with
        | outcome :: rev_fields -> (List.rev rev_fields, outcome)
        | [] -> fail "service: result: empty"
      in
      let kvs = assoc fields in
      Result
        {
          id = get_int "result" kvs "id";
          cached = get_int "result" kvs "cached" <> 0;
          degraded = get_int "result" kvs "degraded";
          partial = get_int "result" kvs "partial" <> 0;
          outcome = Serialize.of_string (sexp_to_string outcome_sexp);
        }
  | S.List (S.Atom "done" :: fields) ->
      let kvs = assoc fields in
      Done { id = get_int "done" kvs "id"; count = get_int "done" kvs "count" }
  | S.List (S.Atom "overloaded" :: fields) ->
      let kvs = assoc fields in
      Overloaded
        {
          id = get_int "overloaded" kvs "id";
          inflight = get_int "overloaded" kvs "inflight";
          max_inflight = get_int "overloaded" kvs "max";
        }
  | S.List (S.Atom "refused" :: fields) ->
      let kvs = assoc fields in
      Refused
        {
          id = get_int "refused" kvs "id";
          reason = get_str "refused" kvs "reason";
        }
  | S.List (S.Atom "stats" :: fields) ->
      let kvs = assoc fields in
      Stats_reply
        {
          id = get_int "stats" kvs "id";
          stats =
            {
              cache_hits = get_int "stats" kvs "cache-hits";
              cache_misses = get_int "stats" kvs "cache-misses";
              solver_calls = get_int "stats" kvs "solver-calls";
              pending = get_int "stats" kvs "pending";
              quota_remaining =
                (match get "stats" kvs "quota" with
                | S.Atom "none" -> None
                | v -> Some (int_of_atom "stats.quota" v));
            };
        }
  | S.List (S.Atom "failed" :: fields) ->
      let kvs = assoc fields in
      Failed
        {
          id = get_int "failed" kvs "id";
          message = get_str "failed" kvs "message";
        }
  | _ -> fail "service: unknown response"

let response_to_string r = sexp_to_string (response_to_sexp r)
let response_of_string s = response_of_sexp (S.parse s)

let request_id = function
  | Ping -> None
  | Stats id | Cancel id | Verify { id; _ } | Campaign { id; _ } -> Some id

let response_id = function
  | Pong -> None
  | Progress { id; _ }
  | Result { id; _ }
  | Done { id; _ }
  | Overloaded { id; _ }
  | Refused { id; _ }
  | Stats_reply { id; _ }
  | Failed { id; _ } ->
      Some id

let is_terminal req resp =
  match (req, resp) with
  | _, (Overloaded _ | Refused _ | Failed _) -> true
  | Ping, Pong -> true
  | Stats _, Stats_reply _ -> true
  | Verify _, Result _ -> true
  | Campaign _, Done _ -> true
  | Cancel _, _ -> true (* cancel gets no reply of its own *)
  | _, _ -> false

(* ---- framing --------------------------------------------------------- *)

let max_payload = 16 * 1024 * 1024

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)
  end

let write_frame ?io_faults fd payload =
  if String.length payload > max_payload then
    invalid_arg "Protocol.write_frame: payload too large";
  let s = Printf.sprintf "%08x\n%s\n" (String.length payload) payload in
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  match io_faults with
  | None -> write_all fd b 0 len
  | Some plan ->
      let key = Fault.key_of_string s in
      let rec attempt k =
        if k > 8 then
          raise (Fault.Io_injected (Fault.Eintr, "socket write: EINTR storm"));
        match Fault.io_decide plan ~attempt:k ~key with
        | None -> write_all fd b 0 len
        | Some Fault.Eintr -> attempt (k + 1)
        | Some Fault.Enospc ->
            raise (Fault.Io_injected (Fault.Enospc, "socket write"))
        | Some Fault.Short_write ->
            (* tear the frame mid-payload, as a dying peer would *)
            write_all fd b 0 (max 1 (len / 2));
            raise (Fault.Io_injected (Fault.Short_write, "socket write"))
      in
      attempt 0

let read_exactly fd n ~what =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      let k =
        try Unix.read fd b off (n - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      if k = 0 && off < n then
        if off = 0 then raise End_of_file
        else failwith (Printf.sprintf "service: EOF mid-%s" what)
      else go (off + k)
    end
  in
  go 0;
  Bytes.unsafe_to_string b

let read_frame fd =
  match read_exactly fd 9 ~what:"frame header" with
  | exception End_of_file -> None
  | header ->
      if header.[8] <> '\n' then failwith "service: malformed frame header";
      let len =
        match int_of_string_opt ("0x" ^ String.sub header 0 8) with
        | Some n when n >= 0 && n <= max_payload -> n
        | _ -> failwith "service: malformed frame length"
      in
      let payload =
        try read_exactly fd (len + 1) ~what:"frame payload"
        with End_of_file -> failwith "service: EOF mid-frame payload"
      in
      if payload.[len] <> '\n' then
        failwith "service: malformed frame terminator";
      Some (String.sub payload 0 len)

(* ---- client helpers -------------------------------------------------- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  fd

let call ?(on_progress = fun _ -> ()) fd req =
  write_frame fd (request_to_string req);
  if match req with Cancel _ -> true | _ -> false then []
  else begin
    let acc = ref [] in
    let rec loop () =
      match read_frame fd with
      | None -> failwith "service: connection closed before terminal response"
      | Some payload ->
          let resp = response_of_string payload in
          (* responses to other ids may interleave on a shared connection *)
          let mine =
            match (request_id req, response_id resp) with
            | Some rid, Some id -> rid = id
            | _ -> true
          in
          if not mine then loop ()
          else begin
            (match resp with
            | Progress _ -> on_progress resp
            | r -> acc := r :: !acc);
            if is_terminal req resp then List.rev !acc else loop ()
          end
    in
    loop ()
  end
