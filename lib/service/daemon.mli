(** Unix-domain-socket front-end of the verification service.

    One process, two threads: the main thread multiplexes the listening
    socket and every client connection with [select] (reading request
    frames, writing response frames, emitting throttled [Progress] frames
    for the query being solved); a single runner thread executes queries
    via {!Engine.step ~block:true}. Runner-to-main handoff is a
    mutex-guarded outbox drained through a self-pipe, so the select loop
    wakes the moment a result is ready.

    Robustness properties, all engine-inherited: admission control
    ([Overloaded] instead of unbounded buffering), per-client quotas with
    graceful degradation, cooperative cancellation on [cancel] frames
    {e and} on client disconnect, crash-safe verdict cache and journal
    replay on restart. [SIGTERM] / [SIGINT] shut the daemon down cleanly
    (socket unlinked, clients closed); [SIGPIPE] is ignored — a client
    vanishing mid-write only closes that client. *)

type config = {
  engine : Engine.config;
  socket_path : string;
  progress_interval_ms : int;
      (** cadence of [Progress] frames for the running query (0 = off) *)
}

val default_config : config

(** [run config] serves until SIGTERM/SIGINT (or [stop] returns true,
    polled once per select tick — the embedded/test entry point).
    @raise Failure when the socket path cannot be bound. *)
val run : ?stop:(unit -> bool) -> config -> unit
