(** Persistent content-addressed verdict cache.

    A verdict is immutable knowledge: once the solver has proved (or
    refuted) a condition over a box under a given configuration, the answer
    never changes. The cache keys each outcome by
    [config_hash x formula_hash] — the same two digests campaign
    checkpoint headers carry — and stores one checkpoint-format file per
    key group under the cache directory, so every existing loader
    ({!Serialize.read_checkpoint}, the [inspect] tooling) reads cache files
    unmodified.

    {b Crash safety.} Group files are created atomically (tmp file +
    [link(2)], which never overwrites a concurrent creator's entries) and
    extended with single-[write(2)] [O_APPEND] appends fsynced on commit
    ({!Serialize.append_line}) — concurrent daemon processes sharing a
    cache directory interleave whole lines, never bytes. Every open repairs
    a torn tail first ({!Serialize.repair_checkpoint}), so a SIGKILL or an
    injected I/O fault mid-commit costs at most the entry being written.

    {b Sub-box reuse.} A box proved [Verified] is verified forever for the
    same key: a lookup whose query box is contained in a cached verified
    region synthesizes the verdict without a solver call. *)

type t

(** What a lookup found. *)
type hit =
  | Exact of Outcome.t
      (** a cached outcome whose domain equals the query box *)
  | Subsumed of Outcome.t
      (** no exact entry, but the query box lies inside a cached
          [Verified] region of the same key — the returned outcome is
          synthesized (single verified region over the query box, zero
          stats) deterministically from the oldest subsuming entry, so a
          restarted daemon serves byte-identical verdicts *)

(** [open_dir ?io_faults dir] opens (creating if needed) a cache rooted at
    [dir]. Group files are loaded lazily, each repaired on first touch.
    [io_faults], when given, is consulted by every subsequent write. *)
val open_dir : ?io_faults:Fault.io_plan -> string -> t

val dir : t -> string

(** The group file backing a key (whether or not it exists yet):
    [dir/group-<digest(config_hash : formula_hash)>.ckpt]. *)
val group_file : t -> config_hash:string -> formula_hash:string -> string

(** [find t ~config_hash ~formula_hash ~box] — cached verdict for [box]
    under the key, if any. Bumps the [service.cache.hits] /
    [service.cache.subbox_hits] / [service.cache.misses] counters. *)
val find :
  t -> config_hash:string -> formula_hash:string -> box:Box.t -> hit option

(** [put t ~config_hash ~formula_hash outcome] commits one verdict:
    ensures the group file exists (with a matching header), appends the
    entry with a single fsynced write, then updates the in-memory view.
    Duplicate domains are skipped (first commit wins — what makes
    concurrent writers converge). On an injected I/O fault the in-memory
    group is invalidated so the next access re-reads (and repairs) the
    file, and the exception propagates. *)
val put : t -> config_hash:string -> formula_hash:string -> Outcome.t -> unit

(** All cached outcomes for a key, oldest first (file order). *)
val entries : t -> config_hash:string -> formula_hash:string -> Outcome.t list

(** Successful commits made through this handle (the daemon's
    [XCV_SERVE_KILL_AFTER] hook counts these). *)
val commits : t -> int

(** Drop the in-memory view of every group (next access re-reads from
    disk) — lets tests observe another process's appends. *)
val refresh : t -> unit
