(** Wire protocol of the verification service.

    Length-prefixed s-expression frames over a Unix-domain socket:

    {v frame := 8 lowercase hex digits (payload byte length) '\n'
             payload bytes '\n' v}

    The fixed-width prefix makes framing trivially incremental and the
    trailing newline keeps captures readable with [cat]. Payloads are
    single s-expressions in the {!Parser.Sexp} syntax; free-form strings
    (labels, error messages) ride as {!Serialize.percent_encode}d atoms,
    and outcomes embed in the {!Serialize} v3 format, so a cached reply is
    byte-identical to the freshly solved one.

    One request yields one or more responses tagged with the request's
    [id] (client-chosen, echoed verbatim): zero or more [Progress] frames,
    then exactly one terminal frame — [Result] for [verify] ([Done] closes
    a [campaign]'s result stream), or [Overloaded] / [Refused] / [Failed].
    Responses to different ids may interleave on one connection. *)

type query_opts = {
  deadline_ms : int option;  (** per-query wall budget *)
  fuel : int option;  (** solver fuel override *)
  threshold : float option;  (** splitting threshold override *)
}

val no_opts : query_opts

type request =
  | Ping
  | Stats of int
  | Cancel of int
      (** cooperative: the query drains and returns a partial verdict map *)
  | Verify of { id : int; dfa : string; condition : string; opts : query_opts }
  | Campaign of { id : int; dfa : string; opts : query_opts }
      (** all applicable conditions for [dfa]; one [Result] per pair, then
          [Done] *)

type stats_payload = {
  cache_hits : int;
  cache_misses : int;
  solver_calls : int;
  pending : int;  (** queued + running queries *)
  quota_remaining : int option;  (** this client's fuel quota, if any *)
}

type response =
  | Pong
  | Progress of { id : int; label : string; boxes : int; solver_calls : int }
  | Result of {
      id : int;
      cached : bool;  (** served from the verdict cache, zero solver calls *)
      degraded : int;  (** degradation-ladder rung (0 = full fidelity) *)
      partial : bool;
          (** deadline or cancellation drained the run: painted regions so
              far, remainder painted [Timeout] *)
      outcome : Outcome.t;
    }
  | Done of { id : int; count : int }
  | Overloaded of { id : int; inflight : int; max_inflight : int }
      (** admission control: the bounded queue is full; retry later *)
  | Refused of { id : int; reason : string }
      (** quota exhausted beyond the last degradation rung *)
  | Stats_reply of { id : int; stats : stats_payload }
  | Failed of { id : int; message : string }

val request_to_string : request -> string

(** @raise Parser.Parse_error on malformed input. *)
val request_of_string : string -> request

val response_to_string : response -> string

(** @raise Parser.Parse_error on malformed input. *)
val response_of_string : string -> response

val request_id : request -> int option
val response_id : response -> int option

(** Whether [resp] ends the response stream of [req]. *)
val is_terminal : request -> response -> bool

(** {1 Framing} *)

(** [write_frame ?io_faults fd payload] writes one frame with a single
    [write(2)] (header and payload together), retrying [EINTR]; injected
    I/O faults tear or abort the write exactly as {!Serialize.append_line}
    does. *)
val write_frame : ?io_faults:Fault.io_plan -> Unix.file_descr -> string -> unit

(** [read_frame fd] reads exactly one frame. [None] on EOF at a frame
    boundary.
    @raise Failure on a malformed prefix or mid-frame EOF. *)
val read_frame : Unix.file_descr -> string option

(** Payloads above this size (16 MiB) are rejected as malformed rather
    than allocated. *)
val max_payload : int

(** {1 Client helpers} *)

(** [connect path] opens a client connection to the daemon socket. *)
val connect : string -> Unix.file_descr

(** [call fd ?on_progress req] sends [req] and collects responses until
    the terminal one (per {!is_terminal}), returning them in arrival order
    (progress frames go to [on_progress] instead, default drop).
    @raise Failure on EOF before the terminal response. *)
val call :
  ?on_progress:(response -> unit) -> Unix.file_descr -> request ->
  response list
