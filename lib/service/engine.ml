module S = Parser.Sexp

let m_queries = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.queries"
let m_results = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.results"

let m_overloaded =
  Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.overloaded"

let m_refused = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.refused"

let m_cancelled =
  Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.cancelled"

let m_degraded = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.degraded"

let m_replays =
  Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.journal_replays"

let m_journal_faults =
  Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.journal_faults"

let m_cache_faults =
  Obs.Metrics.counter ~clas:Obs.Metrics.Wall "service.cache_faults"

let m_query_boxes = Obs.Metrics.histogram "service.query.boxes"

(* aliases of counters registered by the verifier (registration is
   idempotent by name) — the engine reads deltas around each run *)
let m_hits = Obs.Metrics.counter "service.cache.hits"
let m_misses = Obs.Metrics.counter "service.cache.misses"
let m_solver_calls = Obs.Metrics.counter "verify.solver_calls"
let m_drained = Obs.Metrics.counter ~clas:Obs.Metrics.Wall "verify.drained"

type config = {
  cache_dir : string;
  max_inflight : int;
  default_deadline_ms : int option;
  fuel_quota : int option;
  verify : Verify.config;
  io_faults : Fault.io_plan option;
  kill_after : int option;
}

let default_config =
  {
    cache_dir = "xcv-cache";
    max_inflight = 4;
    default_deadline_ms = None;
    fuel_quota = None;
    verify = Verify.default_config;
    io_faults = None;
    kill_after = None;
  }

type client = { c_id : int; mutable c_quota : int option }

type job = {
  j_seq : int;  (** journal key, unique within one daemon lifetime *)
  j_id : int;  (** protocol id, client-chosen *)
  j_client : client;
  j_req : Protocol.request;
  j_cancel : bool Atomic.t;
}

type t = {
  config : config;
  cache : Verdict_cache.t;
  journal : string;
  mutex : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  mutable current : job option;
  mutable closing : bool;
  mutable next_seq : int;
  mutable next_client : int;
}

(* ---- journal --------------------------------------------------------- *)

let journal_append t line =
  try Serialize.append_line ?io_faults:t.config.io_faults ~fsync:true t.journal line
  with Fault.Io_injected _ ->
    (* durability of the journal is best-effort: a lost entry only means a
       lost replay after a crash, never a lost or wrong verdict *)
    Obs.Metrics.incr m_journal_faults 1

let journal_inflight t ~seq req =
  journal_append t
    (Printf.sprintf "(inflight (seq %d) %s)" seq
       (Protocol.request_to_string req))

let journal_done t ~seq =
  journal_append t (Printf.sprintf "(done (seq %d))" seq)

(* valid lines of the journal file, torn tail (and any malformed line)
   skipped — the loader mirrors the checkpoint torn-tail discipline *)
let journal_pending path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    let inflight = Hashtbl.create 16 in
    let order = ref [] in
    String.split_on_char '\n' content
    |> List.iter (fun line ->
           if line <> "" then
             match S.parse line with
             | S.List
                 [ S.Atom "inflight"; S.List [ S.Atom "seq"; S.Atom n ]; req ]
               -> (
                 match int_of_string_opt n with
                 | Some seq ->
                     let buf = Buffer.create 128 in
                     S.print buf req;
                     (try
                        let r =
                          Protocol.request_of_string (Buffer.contents buf)
                        in
                        Hashtbl.replace inflight seq r;
                        order := seq :: !order
                      with Parser.Parse_error _ -> ())
                 | None -> ())
             | S.List [ S.Atom "done"; S.List [ S.Atom "seq"; S.Atom n ] ]
               -> (
                 match int_of_string_opt n with
                 | Some seq -> Hashtbl.remove inflight seq
                 | None -> ())
             | _ -> ()
             | exception Parser.Parse_error _ -> ());
    List.rev !order
    |> List.filter_map (fun seq ->
           match Hashtbl.find_opt inflight seq with
           | Some req ->
               Hashtbl.remove inflight seq;
               (* keep first occurrence only *)
               Some req
           | None -> None)
  end

(* ---- configuration shaping ------------------------------------------ *)

let effective_config t (opts : Protocol.query_opts) =
  let base = t.config.verify in
  let base =
    match opts.Protocol.threshold with
    | Some th -> { base with Verify.threshold = th }
    | None -> base
  in
  let base =
    match opts.Protocol.fuel with
    | Some f -> { base with Verify.solver = { base.Verify.solver with Icp.fuel = f } }
    | None -> base
  in
  let deadline_ms =
    match opts.Protocol.deadline_ms with
    | Some d -> Some d
    | None -> t.config.default_deadline_ms
  in
  {
    base with
    Verify.deadline_seconds =
      Option.map (fun ms -> float_of_int ms /. 1000.) deadline_ms;
  }

(* Degradation ladder: rung r halves fuel and doubles the splitting
   threshold r times. Full fidelity while the quota covers the configured
   fuel; refuse only below a quarter of it. *)
let rung_for t client ~fuel =
  match (t.config.fuel_quota, client.c_quota) with
  | None, _ | _, None -> Some 0
  | Some _, Some q ->
      if q >= fuel then Some 0
      else if 2 * q >= fuel then Some 1
      else if 4 * q >= fuel then Some 2
      else None

let apply_rung cfg rung =
  if rung = 0 then cfg
  else
    let k = 1 lsl rung in
    {
      cfg with
      Verify.threshold = cfg.Verify.threshold *. float_of_int k;
      Verify.solver =
        { cfg.Verify.solver with Icp.fuel = max 1 (cfg.Verify.solver.Icp.fuel / k) };
    }

let charge client spent =
  match client.c_quota with
  | None -> ()
  | Some q -> client.c_quota <- Some (max 0 (q - spent))

(* ---- the kill-after test hook --------------------------------------- *)

(* After the Nth successful commit: tear the group file's tail exactly as
   a kill mid-write would, then SIGKILL ourselves. The restarted daemon
   must repair the tear and still serve every committed verdict. *)
let maybe_kill t ~group_file =
  match t.config.kill_after with
  | Some n when Verdict_cache.commits t.cache >= n ->
      let fd =
        Unix.openfile group_file [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
      in
      let torn = "(entry (version 3) (outcome (dfa pbe" in
      ignore (Unix.write_substring fd torn 0 (String.length torn));
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd;
      Unix.kill (Unix.getpid ()) Sys.sigkill
  | _ -> ()

(* ---- query execution ------------------------------------------------- *)

(* Solve one encoded problem for [client], consulting the verdict cache
   first. Returns [`Refused] when the quota ladder bottomed out. *)
let solve_problem t client ~id ~cancel ~opts ~emit problem =
  let base = effective_config t opts in
  match rung_for t client ~fuel:base.Verify.solver.Icp.fuel with
  | None ->
      Obs.Metrics.incr m_refused 1;
      emit (Protocol.Refused { id; reason = "fuel quota exhausted" });
      `Refused
  | Some rung ->
      if rung > 0 then Obs.Metrics.incr m_degraded 1;
      let cfg = apply_rung base rung in
      let config_hash = Verify.config_hash cfg in
      let formula_hash = Verify.formula_hash [ problem ] in
      let box = problem.Encoder.domain in
      match Verdict_cache.find t.cache ~config_hash ~formula_hash ~box with
      | Some (Verdict_cache.Exact o | Verdict_cache.Subsumed o) ->
          emit
            (Protocol.Result
               { id; cached = true; degraded = rung; partial = false;
                 outcome = o });
          Obs.Metrics.incr m_results 1;
          `Ok
      | None ->
          Obs.Progress.relabel (Printf.sprintf "query %d" id);
          let drained0 = Obs.Metrics.read m_drained in
          let stop () = Atomic.get cancel in
          let outcome = Verify.run ~config:cfg ~stop problem in
          let drained = Obs.Metrics.read m_drained - drained0 in
          let cancelled = Atomic.get cancel in
          let partial = drained > 0 || cancelled in
          if cancelled then Obs.Metrics.incr m_cancelled 1;
          charge client outcome.Outcome.stats.Outcome.total_expansions;
          Obs.Metrics.observe m_query_boxes
            (List.length outcome.Outcome.regions);
          if not partial then begin
            (* a partial map is deadline-shaped, and the cache key excludes
               the deadline — caching it would poison full-budget queries *)
            (try
               Verdict_cache.put t.cache ~config_hash ~formula_hash outcome;
               maybe_kill t
                 ~group_file:
                   (Verdict_cache.group_file t.cache ~config_hash
                      ~formula_hash)
             with Fault.Io_injected _ -> Obs.Metrics.incr m_cache_faults 1)
          end;
          emit
            (Protocol.Result
               { id; cached = false; degraded = rung; partial; outcome });
          Obs.Metrics.incr m_results 1;
          `Ok

let exec_request t client ~cancel ~emit req =
  match req with
  | Protocol.Ping | Protocol.Stats _ | Protocol.Cancel _ ->
      () (* answered at submission; never queued *)
  | Protocol.Verify { id; dfa; condition; opts } -> (
      match Registry.find_opt dfa with
      | None ->
          emit
            (Protocol.Failed
               { id; message = Printf.sprintf "unknown functional %S" dfa })
      | Some f -> (
          match Conditions.of_name condition with
          | exception Not_found ->
              emit
                (Protocol.Failed
                   {
                     id;
                     message = Printf.sprintf "unknown condition %S" condition;
                   })
          | c -> (
              match Encoder.encode f c with
              | None ->
                  emit
                    (Protocol.Failed
                       {
                         id;
                         message =
                           Printf.sprintf "condition %s does not apply to %s"
                             condition dfa;
                       })
              | Some problem ->
                  ignore (solve_problem t client ~id ~cancel ~opts ~emit problem)
              )))
  | Protocol.Campaign { id; dfa; opts } -> (
      match Registry.find_opt dfa with
      | None ->
          emit
            (Protocol.Failed
               { id; message = Printf.sprintf "unknown functional %S" dfa })
      | Some f ->
          let problems = Encoder.encode_all [ f ] in
          let count = ref 0 in
          let refused = ref false in
          List.iter
            (fun problem ->
              if not !refused then
                match solve_problem t client ~id ~cancel ~opts ~emit problem with
                | `Ok -> incr count
                | `Refused -> refused := true)
            problems;
          (* a refusal is already the stream's terminal response *)
          if not !refused then emit (Protocol.Done { id; count = !count }))

let exec t job ~emit =
  (try exec_request t job.j_client ~cancel:job.j_cancel ~emit job.j_req
   with e ->
     let id = Option.value ~default:0 (Protocol.request_id job.j_req) in
     emit (Protocol.Failed { id; message = Printexc.to_string e }));
  journal_done t ~seq:job.j_seq

(* ---- lifecycle ------------------------------------------------------- *)

let create config =
  if config.max_inflight < 1 then
    invalid_arg "Engine.create: max_inflight must be >= 1";
  let cache = Verdict_cache.open_dir ?io_faults:config.io_faults config.cache_dir in
  let t =
    {
      config;
      cache;
      journal = Filename.concat config.cache_dir "journal";
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      current = None;
      closing = false;
      next_seq = 0;
      next_client = 0;
    }
  in
  (* replay queries that were admitted but not finished when the previous
     daemon died; their verdicts land in the cache, then the journal resets *)
  let pending = journal_pending t.journal in
  if pending <> [] then begin
    let replay_client = { c_id = -1; c_quota = None } in
    List.iter
      (fun req ->
        Obs.Metrics.incr m_replays 1;
        try
          exec_request t replay_client ~cancel:(Atomic.make false)
            ~emit:(fun _ -> ())
            req
        with _ -> ())
      pending
  end;
  if Sys.file_exists t.journal then begin
    try Serialize.write_file_atomic ?io_faults:config.io_faults t.journal ""
    with Fault.Io_injected _ -> Obs.Metrics.incr m_journal_faults 1
  end;
  t

let new_client t =
  Mutex.lock t.mutex;
  let c = { c_id = t.next_client; c_quota = t.config.fuel_quota } in
  t.next_client <- t.next_client + 1;
  Mutex.unlock t.mutex;
  c

let client_id client = client.c_id
let quota_remaining client = client.c_quota

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue + match t.current with Some _ -> 1 | None -> 0 in
  Mutex.unlock t.mutex;
  n

let running t =
  Mutex.lock t.mutex;
  let r =
    match t.current with
    | Some j -> Option.map (fun id -> (id, j.j_client)) (Protocol.request_id j.j_req)
    | None -> None
  in
  Mutex.unlock t.mutex;
  r

let stats t client =
  Protocol.
    {
      cache_hits = Obs.Metrics.read m_hits;
      cache_misses = Obs.Metrics.read m_misses;
      solver_calls = Obs.Metrics.read m_solver_calls;
      pending = pending t;
      quota_remaining = client.c_quota;
    }

let cancel_matching t pred =
  Mutex.lock t.mutex;
  Queue.iter (fun j -> if pred j then Atomic.set j.j_cancel true) t.queue;
  (match t.current with
  | Some j when pred j -> Atomic.set j.j_cancel true
  | _ -> ());
  Mutex.unlock t.mutex

let cancel t client ~id =
  cancel_matching t (fun j ->
      j.j_client == client && Protocol.request_id j.j_req = Some id)

let cancel_client t client = cancel_matching t (fun j -> j.j_client == client)

let submit t client req =
  match req with
  | Protocol.Ping -> Some Protocol.Pong
  | Protocol.Stats id -> Some (Protocol.Stats_reply { id; stats = stats t client })
  | Protocol.Cancel id ->
      cancel t client ~id;
      None
  | Protocol.Verify { id; _ } | Protocol.Campaign { id; _ } ->
      Obs.Metrics.incr m_queries 1;
      Mutex.lock t.mutex;
      if t.closing then begin
        Mutex.unlock t.mutex;
        Some (Protocol.Failed { id; message = "service shutting down" })
      end
      else begin
        let inflight =
          Queue.length t.queue
          + match t.current with Some _ -> 1 | None -> 0
        in
        if inflight >= t.config.max_inflight then begin
          Mutex.unlock t.mutex;
          Obs.Metrics.incr m_overloaded 1;
          Some
            (Protocol.Overloaded
               { id; inflight; max_inflight = t.config.max_inflight })
        end
        else begin
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          let job =
            { j_seq = seq; j_id = id; j_client = client; j_req = req;
              j_cancel = Atomic.make false }
          in
          (* journaled before it can run: a crash between here and the
             matching done line makes the query replayable *)
          journal_inflight t ~seq req;
          Queue.add job t.queue;
          Condition.signal t.cond;
          Mutex.unlock t.mutex;
          None
        end
      end

let step ?(block = false) t ~on_response () =
  Mutex.lock t.mutex;
  let rec take () =
    if t.closing then None
    else if Queue.is_empty t.queue then
      if block then begin
        Condition.wait t.cond t.mutex;
        take ()
      end
      else None
    else Some (Queue.pop t.queue)
  in
  match take () with
  | None ->
      Mutex.unlock t.mutex;
      false
  | Some job ->
      t.current <- Some job;
      Mutex.unlock t.mutex;
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.mutex;
          t.current <- None;
          Mutex.unlock t.mutex)
        (fun () -> exec t job ~emit:(fun r -> on_response job.j_client r));
      true

let drain t ~on_response () =
  while step t ~on_response () do
    ()
  done

let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex
