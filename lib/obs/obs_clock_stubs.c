/* Monotonic clock for the metrics layer.
 *
 * CLOCK_MONOTONIC never jumps backwards on NTP adjustments, which is what
 * phase timers and the progress line need. The value is returned as a
 * tagged OCaml int: 62 bits of nanoseconds is ~146 years of uptime, so no
 * boxing is required and the primitive can be [@@noalloc]. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value xcv_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
