(* Observability substrate: injectable monotonic clock, lock-free
   per-domain-sharded metrics registry, throttled progress line.

   The registry separates two metric classes. [Deterministic] metrics
   depend only on the work performed (boxes handled, contractions applied,
   fuel burned) — for a deterministic campaign (no deadline) their snapshot
   is identical at every worker count, which the test harness checks
   byte-for-byte. [Wall] metrics are everything scheduling- or
   clock-dependent: timers, gauges, steal counts. The JSON export keeps the
   two in separate objects so the deterministic section can be compared
   verbatim across runs. *)

module Clock = struct
  external monotonic_ns : unit -> int = "xcv_obs_monotonic_ns" [@@noalloc]

  (* Test hook: an injected clock replaces the monotonic source process-wide
     (e.g. frozen at 0 so golden files carry no timings). *)
  let override : (unit -> int) option Atomic.t = Atomic.make None

  let now_ns () =
    match Atomic.get override with None -> monotonic_ns () | Some f -> f ()

  let set f = Atomic.set override (Some f)
  let reset () = Atomic.set override None

  let with_frozen ns f =
    let prev = Atomic.get override in
    Atomic.set override (Some (fun () -> ns));
    Fun.protect ~finally:(fun () -> Atomic.set override prev) f
end

module Metrics = struct
  type clas = Deterministic | Wall

  type counter = int
  type histogram = int
  type gauge = int
  type timer = int

  type phase = Encode | Contract | Solve | Split | Paint | Retry

  (* ---- schema ----------------------------------------------------------
     Process-global name tables, one per metric kind; a handle is the index
     of its name. Registration happens at module-initialization time (all
     instrumented libraries register their metrics in top-level bindings),
     so by the time worker domains run, the schema is effectively frozen. *)

  type table = {
    mutable names : string array;
    mutable clases : clas array;
    index : (string, int) Hashtbl.t;
  }

  let mk_table () = { names = [||]; clases = [||]; index = Hashtbl.create 16 }
  let counters_tbl = mk_table ()
  let hists_tbl = mk_table ()
  let gauges_tbl = mk_table ()
  let timers_tbl = mk_table ()
  let reg_lock = Mutex.create ()

  let register tbl name clas =
    Mutex.lock reg_lock;
    let h =
      match Hashtbl.find_opt tbl.index name with
      | Some i -> i
      | None ->
          let i = Array.length tbl.names in
          tbl.names <- Array.append tbl.names [| name |];
          tbl.clases <- Array.append tbl.clases [| clas |];
          Hashtbl.add tbl.index name i;
          i
    in
    Mutex.unlock reg_lock;
    h

  let counter ?(clas = Deterministic) name = register counters_tbl name clas
  let histogram name = register hists_tbl name Deterministic
  let gauge name = register gauges_tbl name Wall
  let timer name = register timers_tbl name Wall

  let phase_name = function
    | Encode -> "encode"
    | Contract -> "contract"
    | Solve -> "solve"
    | Split -> "split"
    | Paint -> "paint"
    | Retry -> "retry"

  let phase_encode = timer "phase.encode"
  let phase_contract = timer "phase.contract"
  let phase_solve = timer "phase.solve"
  let phase_split = timer "phase.split"
  let phase_paint = timer "phase.paint"
  let phase_retry = timer "phase.retry"

  let phase_timer = function
    | Encode -> phase_encode
    | Contract -> phase_contract
    | Solve -> phase_solve
    | Split -> phase_split
    | Paint -> phase_paint
    | Retry -> phase_retry

  (* ---- instances and shards --------------------------------------------
     An instance is one registry's worth of cells. Each domain lazily
     appends a private shard to the current instance and thereafter writes
     only to its own shard — plain stores, no locks or atomics on the hot
     path. Readers fold over all shards; reads concurrent with writes may
     observe a slightly stale sum (fine for the progress line), while
     snapshots taken after the worker domains are joined are exact. *)

  let buckets = 64

  type shard = {
    mutable counters : int array;
    mutable hists : int array array;
    mutable gmax : int array;
    mutable timers : int array;
  }

  type t = {
    uid : int;
    lock : Mutex.t;
    mutable shards : shard list;
    mutable gcur : int Atomic.t array; (* instance-wide live gauge values *)
    created_ns : int;
  }

  let next_uid = Atomic.make 0

  let fresh () =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      lock = Mutex.create ();
      shards = [];
      gcur = [||];
      created_ns = Clock.now_ns ();
    }

  let current_instance = Atomic.make (fresh ())
  let current () = Atomic.get current_instance

  let install t =
    let prev = Atomic.get current_instance in
    Atomic.set current_instance t;
    prev

  let new_shard () =
    { counters = [||]; hists = [||]; gmax = [||]; timers = [||] }

  (* Per-domain cache of (instance, shard): re-resolved whenever a new
     instance has been installed since this domain last wrote a metric. *)
  let dls : (t * shard) option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let shard_for inst =
    let cell = Domain.DLS.get dls in
    match !cell with
    | Some (i, s) when i == inst -> s
    | _ ->
        let s = new_shard () in
        Mutex.lock inst.lock;
        inst.shards <- s :: inst.shards;
        Mutex.unlock inst.lock;
        cell := Some (inst, s);
        s

  (* Owner-only growth: the outer arrays are replaced, never mutated in
     place, so a concurrent reader sees either the old or the new array. *)
  let grown arr n fill =
    if n < Array.length arr then arr
    else begin
      let fresh = Array.make (Stdlib.max 8 (2 * (n + 1))) fill in
      Array.blit arr 0 fresh 0 (Array.length arr);
      fresh
    end

  let incr c n =
    let s = shard_for (current ()) in
    s.counters <- grown s.counters c 0;
    s.counters.(c) <- s.counters.(c) + n

  (* log2 buckets: 0 holds non-positive observations, bucket b >= 1 holds
     [2^(b-1), 2^b - 1], saturating at the top. *)
  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 and x = ref v in
      while !x > 0 do
        Stdlib.incr b;
        x := !x lsr 1
      done;
      Stdlib.min (buckets - 1) !b
    end

  let observe h v =
    let s = shard_for (current ()) in
    s.hists <- grown s.hists h [||];
    if Array.length s.hists.(h) = 0 then s.hists.(h) <- Array.make buckets 0;
    let b = bucket_of v in
    s.hists.(h).(b) <- s.hists.(h).(b) + 1

  let add_ns t ns =
    let s = shard_for (current ()) in
    s.timers <- grown s.timers t 0;
    s.timers.(t) <- s.timers.(t) + ns

  let add_phase p ns = add_ns (phase_timer p) ns

  let time_phase p f =
    let t0 = Clock.now_ns () in
    Fun.protect ~finally:(fun () -> add_phase p (Clock.now_ns () - t0)) f

  let gauge_cell inst g =
    if g < Array.length inst.gcur then inst.gcur.(g)
    else begin
      Mutex.lock inst.lock;
      if g >= Array.length inst.gcur then begin
        let fresh =
          Array.init (Stdlib.max 8 (2 * (g + 1))) (fun i ->
              if i < Array.length inst.gcur then inst.gcur.(i)
              else Atomic.make 0)
        in
        inst.gcur <- fresh
      end;
      let cell = inst.gcur.(g) in
      Mutex.unlock inst.lock;
      cell
    end

  let gauge_set g v =
    let inst = current () in
    Atomic.set (gauge_cell inst g) v;
    let s = shard_for inst in
    s.gmax <- grown s.gmax g 0;
    if v > s.gmax.(g) then s.gmax.(g) <- v

  let gauge_get g = Atomic.get (gauge_cell (current ()) g)

  let read c =
    let inst = current () in
    Mutex.lock inst.lock;
    let shards = inst.shards in
    Mutex.unlock inst.lock;
    List.fold_left
      (fun acc s -> if c < Array.length s.counters then acc + s.counters.(c) else acc)
      0 shards

  (* ---- snapshots -------------------------------------------------------
     A snapshot is plain sorted data; [merge] is the shard-combining
     algebra: counters, histogram buckets and timers add, gauge watermarks
     and elapsed take the max. All fields are integers (timers in
     nanoseconds), so merge is exactly associative and commutative. *)

  type snapshot = {
    counters : (string * int) list;
    histograms : (string * (int * int) list) list;
    wall_counters : (string * int) list;
    gauges : (string * int) list;
    timers : (string * int) list;
    elapsed_ns : int;
  }

  let empty_snapshot =
    {
      counters = [];
      histograms = [];
      wall_counters = [];
      gauges = [];
      timers = [];
      elapsed_ns = 0;
    }

  let sorted l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

  (* Union of two sorted assoc lists, combining collisions with [f]. *)
  let rec merge_assoc cmp f a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (ka, va) :: ta, (kb, vb) :: tb ->
        let c = cmp ka kb in
        if c = 0 then (ka, f va vb) :: merge_assoc cmp f ta tb
        else if c < 0 then (ka, va) :: merge_assoc cmp f ta b
        else (kb, vb) :: merge_assoc cmp f a tb

  let merge s1 s2 =
    {
      counters = merge_assoc String.compare ( + ) s1.counters s2.counters;
      histograms =
        merge_assoc String.compare
          (merge_assoc Int.compare ( + ))
          s1.histograms s2.histograms;
      wall_counters =
        merge_assoc String.compare ( + ) s1.wall_counters s2.wall_counters;
      gauges = merge_assoc String.compare Stdlib.max s1.gauges s2.gauges;
      timers = merge_assoc String.compare ( + ) s1.timers s2.timers;
      elapsed_ns = Stdlib.max s1.elapsed_ns s2.elapsed_ns;
    }

  let table_entries tbl =
    Mutex.lock reg_lock;
    let names = tbl.names and clases = tbl.clases in
    Mutex.unlock reg_lock;
    (names, clases)

  (* Every registered metric appears in a snapshot, at 0 when untouched, so
     two runs of the same binary always produce the same key set. *)
  let zeros ~elapsed_ns =
    let cn, cc = table_entries counters_tbl in
    let det = ref [] and wall = ref [] in
    Array.iteri
      (fun i name ->
        match cc.(i) with
        | Deterministic -> det := (name, 0) :: !det
        | Wall -> wall := (name, 0) :: !wall)
      cn;
    let names tbl = fst (table_entries tbl) in
    {
      counters = sorted !det;
      histograms =
        sorted (Array.to_list (Array.map (fun n -> (n, [])) (names hists_tbl)));
      wall_counters = sorted !wall;
      gauges =
        sorted (Array.to_list (Array.map (fun n -> (n, 0)) (names gauges_tbl)));
      timers =
        sorted (Array.to_list (Array.map (fun n -> (n, 0)) (names timers_tbl)));
      elapsed_ns;
    }

  let shard_snapshot ~elapsed_ns (shard : shard) =
    let cn, cc = table_entries counters_tbl in
    let det = ref [] and wall = ref [] in
    Array.iteri
      (fun i name ->
        let v = if i < Array.length shard.counters then shard.counters.(i) else 0 in
        match cc.(i) with
        | Deterministic -> det := (name, v) :: !det
        | Wall -> wall := (name, v) :: !wall)
      cn;
    let hn, _ = table_entries hists_tbl in
    let hists =
      Array.to_list
        (Array.mapi
           (fun i name ->
             let cells =
               if i < Array.length shard.hists then shard.hists.(i) else [||]
             in
             let sparse = ref [] in
             Array.iteri
               (fun b c -> if c > 0 then sparse := (b, c) :: !sparse)
               cells;
             (name, List.rev !sparse))
           hn)
    in
    let gn, _ = table_entries gauges_tbl in
    let gauges =
      Array.to_list
        (Array.mapi
           (fun i name ->
             (name, if i < Array.length shard.gmax then shard.gmax.(i) else 0))
           gn)
    in
    let tn, _ = table_entries timers_tbl in
    let timers =
      Array.to_list
        (Array.mapi
           (fun i name ->
             (name, if i < Array.length shard.timers then shard.timers.(i) else 0))
           tn)
    in
    {
      counters = sorted !det;
      histograms = sorted hists;
      wall_counters = sorted !wall;
      gauges = sorted gauges;
      timers = sorted timers;
      elapsed_ns;
    }

  let shard_snapshots ?registry () =
    let inst = match registry with Some r -> r | None -> current () in
    let elapsed_ns = Stdlib.max 0 (Clock.now_ns () - inst.created_ns) in
    Mutex.lock inst.lock;
    let shards = inst.shards in
    Mutex.unlock inst.lock;
    List.map (shard_snapshot ~elapsed_ns) shards

  let snapshot ?registry () =
    let inst = match registry with Some r -> r | None -> current () in
    let elapsed_ns = Stdlib.max 0 (Clock.now_ns () - inst.created_ns) in
    List.fold_left merge (zeros ~elapsed_ns) (shard_snapshots ?registry ())

  (* ---- JSON export -----------------------------------------------------
     Hand-rolled writer (this library sits below the serializer): keys are
     emitted in sorted order, two-space indentation, so exports are
     line-diffable and the deterministic section is byte-comparable. *)

  let escape b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let obj b ~indent fields =
    let pad = String.make indent ' ' in
    if fields = [] then Buffer.add_string b "{}"
    else begin
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, emit) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          Buffer.add_string b "  ";
          escape b k;
          Buffer.add_string b ": ";
          emit ())
        fields;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b '}'
    end

  let int_fields b ~indent kvs =
    obj b ~indent
      (List.map
         (fun (k, v) -> (k, fun () -> Buffer.add_string b (string_of_int v)))
         kvs)

  let hist_fields b ~indent hs =
    obj b ~indent
      (List.map
         (fun (name, sparse) ->
           ( name,
             fun () ->
               int_fields b ~indent:(indent + 2)
                 (List.map (fun (bk, c) -> (string_of_int bk, c)) sparse) ))
         hs)

  let emit_deterministic b ~indent s =
    obj b ~indent
      [
        ("counters", fun () -> int_fields b ~indent:(indent + 2) s.counters);
        ("histograms", fun () -> hist_fields b ~indent:(indent + 2) s.histograms);
      ]

  let deterministic_json s =
    let b = Buffer.create 1024 in
    emit_deterministic b ~indent:0 s;
    Buffer.add_char b '\n';
    Buffer.contents b

  let to_json s =
    let b = Buffer.create 4096 in
    obj b ~indent:0
      [
        ("version", fun () -> Buffer.add_string b "1");
        ("deterministic", fun () -> emit_deterministic b ~indent:2 s);
        ( "wall",
          fun () ->
            obj b ~indent:2
              [
                ( "counters",
                  fun () -> int_fields b ~indent:4 s.wall_counters );
                ( "elapsed_ns",
                  fun () -> Buffer.add_string b (string_of_int s.elapsed_ns) );
                ("gauges", fun () -> int_fields b ~indent:4 s.gauges);
                ("timers_ns", fun () -> int_fields b ~indent:4 s.timers);
              ] );
      ];
    Buffer.add_char b '\n';
    Buffer.contents b
end

module Progress = struct
  (* Throttled one-line campaign status on stderr. Reads well-known metric
     names; registration is idempotent, so these handles alias the ones the
     instrumented modules use. *)
  let c_boxes = Metrics.counter "verify.boxes"
  let c_pairs = Metrics.counter "campaign.pairs"
  let g_frontier = Metrics.gauge "worklist.depth"

  type cfg = {
    interval_ns : int;
    out : out_channel;
    total_pairs : int;
    start_ns : int;
    label : string;  (* e.g. "shard 1/4"; "" for unsharded campaigns *)
  }

  let state : cfg option Atomic.t = Atomic.make None
  let last_emit = Atomic.make 0

  let enable ?(interval_ns = 1_000_000_000) ?(out = stderr) ?(label = "")
      ~total_pairs () =
    Atomic.set last_emit (Clock.now_ns ());
    Atomic.set state
      (Some { interval_ns; out; total_pairs; start_ns = Clock.now_ns (); label })

  let disable () = Atomic.set state None

  (* Retag the active line without restarting the rate/ETA baseline: the
     service daemon multiplexes many clients' queries through one progress
     line and relabels it per query id, so interleaved stderr stays
     attributable. Lost races with a concurrent disable are harmless (the
     relabel is dropped). *)
  let relabel label =
    match Atomic.get state with
    | None -> ()
    | Some cfg -> Atomic.set state (Some { cfg with label })

  let emit cfg now =
    let boxes = Metrics.read c_boxes in
    let pairs = Metrics.read c_pairs in
    let frontier = Metrics.gauge_get g_frontier in
    let elapsed = float_of_int (now - cfg.start_ns) /. 1e9 in
    let rate = if elapsed > 0.0 then float_of_int boxes /. elapsed else 0.0 in
    let eta =
      if rate > 0.0 then float_of_int frontier /. rate else Float.infinity
    in
    Printf.fprintf cfg.out
      "[campaign%s] pairs %d/%d  boxes %d (%.0f/s)  frontier %d  eta>=%.0fs\n%!"
      (if cfg.label = "" then "" else " " ^ cfg.label)
      pairs cfg.total_pairs boxes rate frontier
      (if Float.is_finite eta then eta else 0.0)

  (* CAS on the last-emit stamp: at most one domain wins each interval, and
     losing domains pay two atomic reads. *)
  let tick () =
    match Atomic.get state with
    | None -> ()
    | Some cfg ->
        let now = Clock.now_ns () in
        let last = Atomic.get last_emit in
        if now - last >= cfg.interval_ns
           && Atomic.compare_and_set last_emit last now
        then emit cfg now
end

(* Up-front writability check for CLI output paths ([--metrics],
   [--checkpoint], ...): fail at argument parsing, not mid-campaign. *)
let validate_output_path path =
  if String.equal path "-" then Ok ()
  else
    let dir = Filename.dirname path in
    if not (Sys.file_exists dir) then
      Error (Printf.sprintf "directory %s does not exist" dir)
    else if not (Sys.is_directory dir) then
      Error (Printf.sprintf "%s is not a directory" dir)
    else if Sys.file_exists path && Sys.is_directory path then
      Error (Printf.sprintf "%s is a directory" path)
    else
      let probe = if Sys.file_exists path then path else dir in
      match Unix.access probe [ Unix.W_OK ] with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "%s is not writable (%s)" probe
               (Unix.error_message e))
