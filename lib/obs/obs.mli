(** Observability substrate: metrics registry, monotonic clock, progress.

    Three pieces: an injectable monotonic clock ({!Clock}), a lock-free
    per-domain-sharded metrics registry with a snapshot/merge algebra
    ({!Metrics}), and a throttled campaign progress line ({!Progress}).

    {b Determinism contract.} Metrics declared [Deterministic] must depend
    only on the work performed — boxes handled, contractions applied, fuel
    burned — never on scheduling, wall time or worker count. For a
    deterministic campaign (no deadline) the deterministic section of a
    snapshot is byte-identical at every worker count; the test harness
    locks this in. Anything clock- or scheduling-dependent (timers, gauges,
    steals, queue depths) must be classified [Wall]. *)

module Clock : sig
  (** [now_ns ()] is the current monotonic time in integer nanoseconds
      (CLOCK_MONOTONIC via a C stub), unless an override is installed. *)
  val now_ns : unit -> int

  (** [set f] replaces the clock process-wide (test hook: golden files are
      produced under a clock frozen at 0 so they carry no timings). *)
  val set : (unit -> int) -> unit

  val reset : unit -> unit

  (** [with_frozen ns f] runs [f] under a clock stuck at [ns], restoring
      the previous clock afterwards (also on exceptions). *)
  val with_frozen : int -> (unit -> 'a) -> 'a
end

module Metrics : sig
  type clas = Deterministic | Wall

  type counter
  type histogram
  type gauge
  type timer

  (** Campaign phases, each backed by a pre-registered [Wall] timer
      ("phase.encode", ...). encode / contract / solve / split / paint are
      disjoint; retry is an attribution view (the wall time of re-attempted
      solver calls, which also count towards contract/solve). *)
  type phase = Encode | Contract | Solve | Split | Paint | Retry

  (** Registration is idempotent by name and normally happens in top-level
      bindings of the instrumented modules, i.e. before any worker domain
      exists. Counters default to [Deterministic]; histograms are always
      deterministic; gauges and timers are always [Wall]. *)

  val counter : ?clas:clas -> string -> counter

  val histogram : string -> histogram
  val gauge : string -> gauge
  val timer : string -> timer

  (** {2 Hot-path operations}

      Each writing domain owns a private shard of the current registry
      instance: plain stores, no locks or atomics (except the gauge's live
      cell). *)

  val incr : counter -> int -> unit

  (** [observe h v] adds [v] to its log2 bucket: bucket 0 holds [v <= 0],
      bucket [b >= 1] holds [2^(b-1) .. 2^b - 1], saturating at bucket 63. *)
  val observe : histogram -> int -> unit

  (** [gauge_set g v] publishes the live value (read by the progress line)
      and tracks the per-shard high watermark. *)
  val gauge_set : gauge -> int -> unit

  val gauge_get : gauge -> int
  val add_ns : timer -> int -> unit
  val phase_timer : phase -> timer
  val phase_name : phase -> string
  val add_phase : phase -> int -> unit

  (** [time_phase p f] runs [f], charging its wall time to phase [p] (also
      on exceptions). *)
  val time_phase : phase -> (unit -> 'a) -> 'a

  (** [read c] sums [c] over all shards of the current instance. Reads
      concurrent with writers may be slightly stale; after the writing
      domains are joined the value is exact. *)
  val read : counter -> int

  (** {2 Instances}

      An instance is one registry's worth of cells. The process starts with
      a default instance; tests and the bench harness install a fresh one
      to measure in isolation and restore the previous one afterwards. *)

  type t

  val fresh : unit -> t

  (** [install t] makes [t] the current instance and returns the previous
      one. *)
  val install : t -> t

  val current : unit -> t

  (** {2 Snapshots}

      Plain sorted data. [merge] is the shard-combining algebra — counters,
      histogram buckets and timers add; gauge watermarks and elapsed take
      the max. All fields are integers (timers in nanoseconds), so [merge]
      is exactly associative and commutative, which the QCheck suite
      verifies. *)

  type snapshot = {
    counters : (string * int) list;  (** deterministic counters, sorted *)
    histograms : (string * (int * int) list) list;
        (** sparse (bucket, count) lists, both levels sorted *)
    wall_counters : (string * int) list;
    gauges : (string * int) list;  (** high watermarks *)
    timers : (string * int) list;  (** nanoseconds *)
    elapsed_ns : int;
  }

  val empty_snapshot : snapshot

  (** [snapshot ()] reads the current (or given) instance: the merge of all
      its shards over a zero baseline that lists every registered metric,
      so equal workloads yield equal key sets. *)
  val snapshot : ?registry:t -> unit -> snapshot

  (** One snapshot per domain-shard; folding {!merge} over them (plus the
      zero baseline) is exactly [snapshot ()]. *)
  val shard_snapshots : ?registry:t -> unit -> snapshot list

  val merge : snapshot -> snapshot -> snapshot

  (** Counters + histograms only — the byte-comparable section. Keys are
      emitted in sorted order with fixed layout. *)
  val deterministic_json : snapshot -> string

  (** Full export: [{"version":1, "deterministic":{...}, "wall":{...}}],
      deterministic key order throughout. *)
  val to_json : snapshot -> string
end

module Progress : sig
  (** Throttled campaign status line (boxes/s, frontier size, ETA lower
      bound), emitted to [out] at most once per [interval_ns]. [tick] is
      called by the worklist once per task and is a single atomic load when
      disabled (the default). *)

  (** [label], when given, tags the line (e.g. ["shard 1/4"] renders as
      ["[campaign shard 1/4] ..."]) so interleaved stderr from concurrent
      shard processes stays attributable. *)
  val enable :
    ?interval_ns:int -> ?out:out_channel -> ?label:string ->
    total_pairs:int -> unit -> unit

  val disable : unit -> unit

  (** [relabel l] swaps the label of the active line without resetting the
      rate/ETA baseline — the service daemon retags the line with the query
      id it is currently solving ("query 17"), so a multiplexed stderr
      stream stays attributable per client query. No-op when disabled. *)
  val relabel : string -> unit

  val tick : unit -> unit
end

(** [validate_output_path p] checks up front that [p] could be created or
    overwritten: the parent directory exists and is writable, and [p] is
    not itself a directory. ["-"] (stdout) is always accepted. Returns a
    human-readable reason on [Error]. *)
val validate_output_path : string -> (unit, string) result
